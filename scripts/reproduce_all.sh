#!/usr/bin/env bash
# Builds everything, runs the full test suite and regenerates every table
# and figure of the paper. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  echo "==== $(basename "$b") ====" | tee -a bench_output.txt
  if [ "$(basename "$b")" = "bench_micro_sim" ]; then
    "$b" --benchmark_min_time=0.1 2>&1 | tee -a bench_output.txt
  else
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done
echo "done: see test_output.txt and bench_output.txt"
