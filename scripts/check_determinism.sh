#!/usr/bin/env bash
# Determinism audit driver: runs every auditable scenario twice with the
# same seed through `gridsim audit` and fails on any digest divergence.
#
# Usage: scripts/check_determinism.sh [path/to/gridsim] [seed]
#   GRIDSIM_CLI overrides the default binary location (build/src/tools/gridsim).
set -euo pipefail

cd "$(dirname "$0")/.."

CLI="${1:-${GRIDSIM_CLI:-build/src/tools/gridsim}}"
SEED="${2:-1}"

if [[ ! -x "$CLI" ]]; then
  echo "check_determinism: gridsim binary not found at '$CLI'" >&2
  echo "build it first: cmake --preset release && cmake --build --preset release" >&2
  exit 2
fi

"$CLI" audit --scenario all --seed "$SEED"
echo "check_determinism: all scenarios deterministic (seed $SEED)"
