#!/usr/bin/env bash
# Campaign schedule-independence check: runs the same scenario selection
# serially and on N worker threads and fails unless every per-scenario trace
# digest is byte-identical. This is the executable form of the campaign
# engine's core claim — the thread schedule changes nothing.
#
# Usage: scripts/check_campaign.sh [filter] [jobs] [path/to/gridsim]
#   FILTER  glob over scenario names/groups (default: table4*)
#   JOBS    parallel worker count to compare against --jobs 1 (default: nproc)
#   GRIDSIM_CLI overrides the default binary location.
set -euo pipefail

cd "$(dirname "$0")/.."

FILTER="${1:-table4*}"
JOBS="${2:-$(nproc)}"
CLI="${3:-${GRIDSIM_CLI:-build/src/tools/gridsim}}"

if [[ ! -x "$CLI" ]]; then
  echo "check_campaign: gridsim binary not found at '$CLI'" >&2
  echo "build it first: cmake --preset release && cmake --build --preset release" >&2
  exit 2
fi

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

"$CLI" campaign --filter "$FILTER" --jobs 1 --out "$WORKDIR/serial" >/dev/null
"$CLI" campaign --filter "$FILTER" --jobs "$JOBS" --out "$WORKDIR/parallel" \
  >/dev/null

# The report keeps one scenario object per line, so name+digest pairs fall
# out with grep/sed — no JSON parser needed.
extract() {
  grep -o '"name": "[^"]*", "group": "[^"]*", "ok": [a-z]*, "digest": "[0-9a-f]*"' \
    "$1/CAMPAIGN.json"
}

extract "$WORKDIR/serial" > "$WORKDIR/serial.digests"
extract "$WORKDIR/parallel" > "$WORKDIR/parallel.digests"

if [[ ! -s "$WORKDIR/serial.digests" ]]; then
  echo "check_campaign: no scenarios matched filter '$FILTER'" >&2
  exit 2
fi

if ! diff -u "$WORKDIR/serial.digests" "$WORKDIR/parallel.digests"; then
  echo "check_campaign: digest mismatch between --jobs 1 and --jobs $JOBS" >&2
  exit 1
fi

COUNT="$(wc -l < "$WORKDIR/serial.digests")"
echo "check_campaign: $COUNT scenario digests identical at --jobs 1 and --jobs $JOBS (filter '$FILTER')"
