#!/usr/bin/env bash
# Cross-checks the scenario count the docs state against the registered
# catalog (`gridsim campaign --list`), so the prose cannot drift from the
# code. Any doc listed below that says "<N> scenarios" must agree with the
# catalog footer exactly.
#
# Usage: scripts/check_catalog_counts.sh [path/to/gridsim]
set -euo pipefail

cd "$(dirname "$0")/.."

BIN="${1:-build/src/tools/gridsim}"
if [[ ! -x "$BIN" ]]; then
  echo "check_catalog_counts: gridsim binary not found at $BIN" >&2
  echo "check_catalog_counts: build it first (cmake --build --preset release --target gridsim)" >&2
  exit 2
fi

# The list ends with a "<N> scenarios" footer; that is the ground truth.
ACTUAL=$("$BIN" campaign --list | tail -1 | awk '{print $1}')
if ! [[ "$ACTUAL" =~ ^[0-9]+$ ]]; then
  echo "check_catalog_counts: could not parse catalog size from" \
       "'$BIN campaign --list'" >&2
  exit 2
fi

# Docs that state the catalog size. Each must contain at least one
# "<N> scenarios" phrase, and every such phrase must match the catalog.
DOCS=(docs/architecture.md docs/usage.md)

STATUS=0
for doc in "${DOCS[@]}"; do
  mapfile -t COUNTS < <(grep -oE '[0-9]+ scenarios' "$doc" | awk '{print $1}')
  if [[ "${#COUNTS[@]}" -eq 0 ]]; then
    echo "check_catalog_counts: $doc no longer states a scenario count" \
         "(expected \"$ACTUAL scenarios\" somewhere)" >&2
    STATUS=1
    continue
  fi
  for count in "${COUNTS[@]}"; do
    if [[ "$count" != "$ACTUAL" ]]; then
      echo "check_catalog_counts: $doc says \"$count scenarios\" but the" \
           "catalog registers $ACTUAL" >&2
      STATUS=1
    fi
  done
done

# The coll/* group is documented separately (docs/collectives.md states
# "<N> scenarios" for the group); keep that number honest too.
COLL_ACTUAL=$("$BIN" campaign --list --filter 'coll/*' | grep -c '^coll/' || true)
COLL_DOC=$(grep -oE '`coll/\*` catalog group \([0-9]+ scenarios' docs/collectives.md \
           | grep -oE '[0-9]+' || true)
if [[ -z "$COLL_DOC" ]]; then
  echo "check_catalog_counts: docs/collectives.md no longer states the" \
       "coll/* group size" >&2
  STATUS=1
elif [[ "$COLL_DOC" != "$COLL_ACTUAL" ]]; then
  echo "check_catalog_counts: docs/collectives.md says the coll/* group has" \
       "$COLL_DOC scenarios but the catalog registers $COLL_ACTUAL" >&2
  STATUS=1
fi

if [[ "$STATUS" -ne 0 ]]; then
  echo "check_catalog_counts: FAILED (update the docs or the catalog)" >&2
else
  echo "check_catalog_counts: docs agree with the catalog ($ACTUAL scenarios," \
       "coll group $COLL_ACTUAL)"
fi
exit "$STATUS"
