#!/usr/bin/env bash
# Network-solver digest check: runs the same scenario selection with the
# incremental max-min solver (default) and with the retained global oracle
# (GRIDSIM_NET_ORACLE=1) and fails unless every per-scenario trace digest is
# byte-identical. This is the executable form of the incremental solver's
# core claim — the dirty-set/component re-solve changes nothing, down to the
# last ulp of every flow rate.
#
# Usage: scripts/check_net_oracle.sh [filter] [jobs] [path/to/gridsim]
#   FILTER  glob over scenario names/groups (default: table4*)
#   JOBS    parallel worker count used for both runs (default: nproc)
#   GRIDSIM_CLI overrides the default binary location.
set -euo pipefail

cd "$(dirname "$0")/.."

FILTER="${1:-table4*}"
JOBS="${2:-$(nproc)}"
CLI="${3:-${GRIDSIM_CLI:-build/src/tools/gridsim}}"

if [[ ! -x "$CLI" ]]; then
  echo "check_net_oracle: gridsim binary not found at '$CLI'" >&2
  echo "build it first: cmake --preset release && cmake --build --preset release" >&2
  exit 2
fi

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

GRIDSIM_NET_ORACLE=0 "$CLI" campaign --filter "$FILTER" --jobs "$JOBS" \
  --out "$WORKDIR/incremental" >/dev/null
GRIDSIM_NET_ORACLE=1 "$CLI" campaign --filter "$FILTER" --jobs "$JOBS" \
  --out "$WORKDIR/oracle" >/dev/null

# The report keeps one scenario object per line, so name+digest pairs fall
# out with grep/sed — no JSON parser needed.
extract() {
  grep -o '"name": "[^"]*", "group": "[^"]*", "ok": [a-z]*, "digest": "[0-9a-f]*"' \
    "$1/CAMPAIGN.json"
}

extract "$WORKDIR/incremental" > "$WORKDIR/incremental.digests"
extract "$WORKDIR/oracle" > "$WORKDIR/oracle.digests"

if [[ ! -s "$WORKDIR/incremental.digests" ]]; then
  echo "check_net_oracle: no scenarios matched filter '$FILTER'" >&2
  exit 2
fi

if ! diff -u "$WORKDIR/oracle.digests" "$WORKDIR/incremental.digests"; then
  echo "check_net_oracle: digest mismatch between oracle and incremental solver" >&2
  exit 1
fi

COUNT="$(wc -l < "$WORKDIR/incremental.digests")"
echo "check_net_oracle: $COUNT scenario digests identical for incremental and oracle solvers (filter '$FILTER', --jobs $JOBS)"
