#!/usr/bin/env bash
# Static-analysis driver: clang-tidy over every translation unit plus a
# clang-format conformance check. Exits non-zero on any diagnostic.
#
# Usage: scripts/run_static_analysis.sh [--tidy-only|--format-only]
#
# Tools are gated: a missing clang-tidy/clang-format is reported and that
# stage is skipped (exit 0), so the script is safe to call from environments
# that only carry the compiler toolchain. CI installs both tools and
# therefore runs both stages for real.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-all}"
STATUS=0

# Sources under analysis: everything we compile, not the build trees.
mapfile -t SOURCES < <(find src tests bench examples \
  \( -name '*.cpp' -o -name '*.hpp' \) | sort)

run_format() {
  if ! command -v clang-format > /dev/null 2>&1; then
    echo "run_static_analysis: clang-format not found; skipping format check"
    return 0
  fi
  echo "run_static_analysis: clang-format --dry-run over ${#SOURCES[@]} files"
  if ! clang-format --dry-run -Werror "${SOURCES[@]}"; then
    echo "run_static_analysis: formatting violations found (fix with" \
         "clang-format -i)" >&2
    STATUS=1
  fi
}

run_tidy() {
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "run_static_analysis: clang-tidy not found; skipping lint pass"
    return 0
  fi
  # clang-tidy needs a compilation database; configure the tidy preset
  # without CMAKE_CXX_CLANG_TIDY so the build itself stays fast and we
  # drive the tool over the database instead.
  local db_dir=build-tidy
  if [[ ! -f "$db_dir/compile_commands.json" ]]; then
    cmake -B "$db_dir" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  fi
  mapfile -t CPP_SOURCES < <(printf '%s\n' "${SOURCES[@]}" | grep '\.cpp$')
  echo "run_static_analysis: clang-tidy over ${#CPP_SOURCES[@]}" \
       "translation units"
  local runner
  if command -v run-clang-tidy > /dev/null 2>&1; then
    runner=(run-clang-tidy -quiet -p "$db_dir")
    if ! "${runner[@]}" "${CPP_SOURCES[@]}"; then
      STATUS=1
    fi
  else
    for f in "${CPP_SOURCES[@]}"; do
      if ! clang-tidy -quiet -p "$db_dir" "$f"; then
        STATUS=1
      fi
    done
  fi
}

case "$MODE" in
  --format-only) run_format ;;
  --tidy-only) run_tidy ;;
  all) run_format; run_tidy ;;
  *) echo "usage: $0 [--tidy-only|--format-only]" >&2; exit 2 ;;
esac

if [[ "$STATUS" -ne 0 ]]; then
  echo "run_static_analysis: FAILED" >&2
else
  echo "run_static_analysis: clean"
fi
exit "$STATUS"
