// The four MPI implementations the paper compares (Table 1), encoded as
// ImplProfiles, plus a zero-overhead "raw TCP" baseline, and the tuning
// levels of Section 4.2 applied as configuration transforms.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mpi/profile.hpp"
#include "simfault/injector.hpp"
#include "simtcp/tcp.hpp"

namespace gridsim::profiles {

/// The paper's tuning stages.
enum class TuningLevel {
  kDefault,    ///< stock kernel, stock implementation parameters (Fig 3/5)
  kTcpTuned,   ///< 4 MB socket buffers via the per-impl knob (Fig 6)
  kFullyTuned, ///< + eager/rendez-vous thresholds raised (Fig 7, Table 5)
};

std::string to_string(TuningLevel level);

/// A profile + kernel pair ready to build a Job with, plus the fault
/// schedule to install on the deployment (inactive by default — see
/// simfault/injector.hpp and topo::install_faults).
struct ExperimentConfig {
  mpi::ImplProfile profile;
  tcp::KernelTunables kernel;
  simfault::FaultPlan faults;
};

/// MPICH2 1.0.5: the reference implementation. No grid awareness; kernel
/// auto-tuned buffers; 256 kB eager limit (MPIDI_CH3_EAGER_MAX_MSG_SIZE).
mpi::ImplProfile mpich2();

/// GridMPI 1.1: software pacing, buffers locked to the kernel initial size,
/// no rendez-vous by default (_YAMPI_RSIZE), WAN-aware collectives.
mpi::ImplProfile gridmpi();

/// MPICH-Madeleine (svn 2006-12-06): thread-based progression costs extra
/// CPU per message that hides under WAN latency; 128 kB eager limit
/// (DEFAULT_SWITCH); MPICH-1-era binomial collectives.
mpi::ImplProfile mpich_madeleine();

/// OpenMPI 1.1.4: explicit 128 kB setsockopt buffers (btl_tcp_sndbuf/rcvbuf),
/// 64 kB eager limit (btl_tcp_eager_limit, capped at 32 MB when tuned).
mpi::ImplProfile openmpi();

/// Raw TCP baseline: no MPI overheads, no rendez-vous, auto-tuned buffers.
mpi::ImplProfile raw_tcp();

/// MPICH-G2 (Karonis et al.): the paper's planned follow-up. Globus-layer
/// per-message costs, topology-aware collectives (WAN < LAN ordering), and
/// GridFTP-style parallel TCP streams for large WAN messages. Not part of
/// all_implementations() — the paper evaluates four implementations; this
/// profile backs the extension bench.
mpi::ImplProfile mpich_g2();

/// The four MPI implementations, in the paper's order.
std::vector<mpi::ImplProfile> all_implementations();

/// Applies a tuning level: selects the kernel tunables and adjusts the
/// per-implementation knobs exactly as Section 4.2 describes.
ExperimentConfig configure(mpi::ImplProfile base, TuningLevel level);

/// Fluent ExperimentConfig builder — the one construction API for benches,
/// scenarios and tests:
///
///   auto cfg = experiment(mpich2()).tuning(TuningLevel::kTcpTuned);
///   auto abl = experiment(gridmpi()).pacing(false).label("GridMPI (no pacing)");
///   auto buf = experiment(openmpi())
///                  .tuning(TuningLevel::kTcpTuned)
///                  .setsockopt_bytes(512e3)    // override after tuning
///                  .eager_threshold(1e12);
///
/// Semantics: profile identity knobs (label, pacing, collective algorithms)
/// are applied to the base profile *before* `configure`, and ablation
/// overrides (eager threshold, socket buffers, WAN overhead, kernel
/// tunables) *after* it, so an override always wins over what the tuning
/// level would choose — matching how every hand-written bench mutated the
/// configure() result. `build()` is explicit; the implicit conversion lets
/// a builder expression be passed anywhere an ExperimentConfig is expected.
class ExperimentBuilder {
 public:
  explicit ExperimentBuilder(mpi::ImplProfile base) : base_(std::move(base)) {}

  ExperimentBuilder& tuning(TuningLevel level) {
    level_ = level;
    return *this;
  }
  /// Renames the profile (ablation rows: "GridMPI (pacing off)").
  ExperimentBuilder& label(std::string name) {
    base_.name = std::move(name);
    return *this;
  }
  ExperimentBuilder& pacing(bool on) {
    base_.pacing = on;
    return *this;
  }
  ExperimentBuilder& bcast(mpi::BcastAlgo algo) {
    base_.collectives.bcast = algo;
    return *this;
  }
  ExperimentBuilder& allreduce(mpi::AllreduceAlgo algo) {
    base_.collectives.allreduce = algo;
    return *this;
  }
  ExperimentBuilder& alltoall(mpi::AlltoallAlgo algo) {
    base_.collectives.alltoall = algo;
    return *this;
  }
  /// Name-based algorithm selection (the registry's vocabulary, aliases
  /// accepted): `.bcast_algo("vandegeijn")` is the modern spelling of
  /// `.bcast(mpi::BcastAlgo::kVanDeGeijn)`. Each name selects the enum
  /// *policy* — the named algorithm for large messages with the layer's
  /// usual small-message fallback — so digests match the enum spelling
  /// exactly. Throws std::invalid_argument on an unknown name.
  ExperimentBuilder& bcast_algo(std::string_view name);
  ExperimentBuilder& allreduce_algo(std::string_view name);
  ExperimentBuilder& alltoall_algo(std::string_view name);
  ExperimentBuilder& barrier_algo(std::string_view name);
  /// Replaces the profile's declarative selector rules, scanned
  /// first-match-wins before the enum-derived defaults
  /// (collectives/selector.hpp).
  ExperimentBuilder& selector(mpi::CollRules rules) {
    base_.collectives.selector = std::move(rules);
    return *this;
  }
  /// Replaces the kernel tunables the tuning level selected.
  ExperimentBuilder& kernel(tcp::KernelTunables tunables) {
    kernel_ = tunables;
    return *this;
  }
  ExperimentBuilder& congestion(tcp::CongestionAlgo algo) {
    congestion_ = algo;
    return *this;
  }
  /// Post-tuning overrides (win over the tuning level's choices).
  ExperimentBuilder& eager_threshold(double bytes) {
    eager_threshold_ = bytes;
    return *this;
  }
  ExperimentBuilder& setsockopt_bytes(double bytes) {
    setsockopt_bytes_ = bytes;
    return *this;
  }
  ExperimentBuilder& wan_extra_overhead(SimTime cost) {
    wan_extra_overhead_ = cost;
    return *this;
  }
  /// Fault knobs (applied after tuning, like the other overrides; they do
  /// not interact with the tuning level). `faults` replaces the whole plan;
  /// the granular setters edit one spec each and compose.
  ExperimentBuilder& faults(simfault::FaultPlan plan) {
    faults_ = std::move(plan);
    return *this;
  }
  ExperimentBuilder& jitter(simfault::JitterSpec spec) {
    faults_.jitter = std::move(spec);
    return *this;
  }
  ExperimentBuilder& flap(simfault::FlapSpec spec) {
    faults_.flap = std::move(spec);
    return *this;
  }
  ExperimentBuilder& loss_episodes(simfault::LossEpisodeSpec spec) {
    faults_.loss_episodes = std::move(spec);
    return *this;
  }
  ExperimentBuilder& cross_traffic(simfault::CrossTrafficSpec spec) {
    faults_.cross = std::move(spec);
    return *this;
  }
  ExperimentBuilder& fault_seed(std::uint64_t seed) {
    faults_.seed = seed;
    return *this;
  }

  ExperimentConfig build() const;
  // NOLINTNEXTLINE(google-explicit-constructor): terse call sites by design.
  operator ExperimentConfig() const { return build(); }

 private:
  mpi::ImplProfile base_;
  TuningLevel level_ = TuningLevel::kDefault;
  std::optional<tcp::KernelTunables> kernel_;
  std::optional<tcp::CongestionAlgo> congestion_;
  std::optional<double> eager_threshold_;
  std::optional<double> setsockopt_bytes_;
  std::optional<SimTime> wan_extra_overhead_;
  simfault::FaultPlan faults_;
};

/// Entry point of the fluent API: `experiment(mpich2()).tuning(...)`.
inline ExperimentBuilder experiment(mpi::ImplProfile base) {
  return ExperimentBuilder(std::move(base));
}

}  // namespace gridsim::profiles
