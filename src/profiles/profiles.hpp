// The four MPI implementations the paper compares (Table 1), encoded as
// ImplProfiles, plus a zero-overhead "raw TCP" baseline, and the tuning
// levels of Section 4.2 applied as configuration transforms.
#pragma once

#include <string>
#include <vector>

#include "mpi/profile.hpp"
#include "simtcp/tcp.hpp"

namespace gridsim::profiles {

/// The paper's tuning stages.
enum class TuningLevel {
  kDefault,    ///< stock kernel, stock implementation parameters (Fig 3/5)
  kTcpTuned,   ///< 4 MB socket buffers via the per-impl knob (Fig 6)
  kFullyTuned, ///< + eager/rendez-vous thresholds raised (Fig 7, Table 5)
};

std::string to_string(TuningLevel level);

/// A profile + kernel pair ready to build a Job with.
struct ExperimentConfig {
  mpi::ImplProfile profile;
  tcp::KernelTunables kernel;
};

/// MPICH2 1.0.5: the reference implementation. No grid awareness; kernel
/// auto-tuned buffers; 256 kB eager limit (MPIDI_CH3_EAGER_MAX_MSG_SIZE).
mpi::ImplProfile mpich2();

/// GridMPI 1.1: software pacing, buffers locked to the kernel initial size,
/// no rendez-vous by default (_YAMPI_RSIZE), WAN-aware collectives.
mpi::ImplProfile gridmpi();

/// MPICH-Madeleine (svn 2006-12-06): thread-based progression costs extra
/// CPU per message that hides under WAN latency; 128 kB eager limit
/// (DEFAULT_SWITCH); MPICH-1-era binomial collectives.
mpi::ImplProfile mpich_madeleine();

/// OpenMPI 1.1.4: explicit 128 kB setsockopt buffers (btl_tcp_sndbuf/rcvbuf),
/// 64 kB eager limit (btl_tcp_eager_limit, capped at 32 MB when tuned).
mpi::ImplProfile openmpi();

/// Raw TCP baseline: no MPI overheads, no rendez-vous, auto-tuned buffers.
mpi::ImplProfile raw_tcp();

/// MPICH-G2 (Karonis et al.): the paper's planned follow-up. Globus-layer
/// per-message costs, topology-aware collectives (WAN < LAN ordering), and
/// GridFTP-style parallel TCP streams for large WAN messages. Not part of
/// all_implementations() — the paper evaluates four implementations; this
/// profile backs the extension bench.
mpi::ImplProfile mpich_g2();

/// The four MPI implementations, in the paper's order.
std::vector<mpi::ImplProfile> all_implementations();

/// Applies a tuning level: selects the kernel tunables and adjusts the
/// per-implementation knobs exactly as Section 4.2 describes.
ExperimentConfig configure(mpi::ImplProfile base, TuningLevel level);

}  // namespace gridsim::profiles
