#include "profiles/profiles.hpp"

#include <algorithm>
#include <limits>

#include "collectives/registry.hpp"

namespace gridsim::profiles {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double k4MB = 4.0 * 1024 * 1024;
constexpr double kTunedThreshold = 65.0 * 1024 * 1024;  // Table 5
}  // namespace

std::string to_string(TuningLevel level) {
  switch (level) {
    case TuningLevel::kDefault:
      return "default";
    case TuningLevel::kTcpTuned:
      return "tcp-tuned";
    case TuningLevel::kFullyTuned:
      return "fully-tuned";
  }
  return "?";
}

mpi::ImplProfile mpich2() {
  mpi::ImplProfile p;
  p.name = "MPICH2";
  p.send_overhead = p.recv_overhead = microseconds(2) + nanoseconds(500);
  p.eager_threshold = 256 * 1024;
  p.buffers = mpi::BufferStrategy::kAutoTune;
  p.collectives.bcast = mpi::BcastAlgo::kVanDeGeijn;  // ring for large msgs
  p.collectives.allreduce = mpi::AllreduceAlgo::kRabenseifner;
  p.collectives.alltoall = mpi::AlltoallAlgo::kPairwise;
  return p;
}

mpi::ImplProfile gridmpi() {
  mpi::ImplProfile p;
  p.name = "GridMPI";
  p.send_overhead = p.recv_overhead = microseconds(2) + nanoseconds(500);
  p.eager_threshold = kInf;  // no rendez-vous for MPI_Send by default
  p.buffers = mpi::BufferStrategy::kLockToInitial;
  p.pacing = true;
  p.collectives.bcast = mpi::BcastAlgo::kHierarchical;
  p.collectives.allreduce = mpi::AllreduceAlgo::kHierarchical;
  p.collectives.alltoall = mpi::AlltoallAlgo::kPairwise;  // not optimised
  p.collectives.topology_aware = true;
  return p;
}

mpi::ImplProfile mpich_madeleine() {
  mpi::ImplProfile p;
  p.name = "MPICH-Madeleine";
  p.send_overhead = p.recv_overhead = microseconds(7);
  p.lan_extra_overhead = microseconds(3) + nanoseconds(500);
  p.eager_threshold = 128 * 1024;
  p.buffers = mpi::BufferStrategy::kAutoTune;
  p.collectives.bcast = mpi::BcastAlgo::kBinomial;
  p.collectives.allreduce = mpi::AllreduceAlgo::kRecursiveDoubling;
  p.collectives.alltoall = mpi::AlltoallAlgo::kPairwise;
  return p;
}

mpi::ImplProfile openmpi() {
  mpi::ImplProfile p;
  p.name = "OpenMPI";
  p.send_overhead = p.recv_overhead = microseconds(2) + nanoseconds(500);
  p.eager_threshold = 64 * 1024;
  p.eager_threshold_max = 32.0 * 1024 * 1024;  // btl_tcp_eager_limit cap
  p.buffers = mpi::BufferStrategy::kSetsockopt;
  p.setsockopt_bytes = 128 * 1024;
  p.collectives.bcast = mpi::BcastAlgo::kVanDeGeijn;
  p.collectives.allreduce = mpi::AllreduceAlgo::kRabenseifner;
  p.collectives.alltoall = mpi::AlltoallAlgo::kPairwise;
  return p;
}

mpi::ImplProfile raw_tcp() {
  mpi::ImplProfile p;
  p.name = "TCP";
  p.send_overhead = p.recv_overhead = 0;
  p.eager_threshold = kInf;
  p.header_bytes = 0;
  p.buffers = mpi::BufferStrategy::kAutoTune;
  return p;
}

mpi::ImplProfile mpich_g2() {
  mpi::ImplProfile p;
  p.name = "MPICH-G2";
  // The Globus layers (security contexts, vMPI dispatch) cost more CPU per
  // message than a bare ch3/tcp stack.
  p.send_overhead = p.recv_overhead = microseconds(4);
  p.eager_threshold = 256 * 1024;  // MPICH lineage
  p.buffers = mpi::BufferStrategy::kAutoTune;
  // Topology-aware collectives: WAN < LAN < intra-machine (Section 2.1.5).
  p.collectives.bcast = mpi::BcastAlgo::kHierarchical;
  p.collectives.allreduce = mpi::AllreduceAlgo::kHierarchical;
  p.collectives.topology_aware = true;
  // "Support for large messages using several TCP streams" (GridFTP).
  p.wan_parallel_streams = 4;
  p.stripe_threshold = 256 * 1024;
  return p;
}

std::vector<mpi::ImplProfile> all_implementations() {
  return {mpich2(), gridmpi(), mpich_madeleine(), openmpi()};
}

ExperimentConfig configure(mpi::ImplProfile base, TuningLevel level) {
  ExperimentConfig cfg;
  cfg.kernel = tcp::KernelTunables::linux_2_6_18_default();
  if (level == TuningLevel::kDefault) {
    cfg.profile = std::move(base);
    return cfg;
  }
  // TCP tuning (4.2.1): 4 MB core max + auto-tuning bounds + initial value
  // (the GridMPI requirement), and the OpenMPI MCA buffer parameters.
  cfg.kernel = tcp::KernelTunables::grid_tuned();
  if (base.buffers == mpi::BufferStrategy::kSetsockopt)
    base.setsockopt_bytes = k4MB;
  if (level == TuningLevel::kFullyTuned) {
    // MPI tuning (4.2.2, Table 5): raise the eager/rendez-vous threshold,
    // clamped to the implementation's knob range. Implementations already
    // at or above the target (GridMPI's infinity) are left alone.
    if (base.eager_threshold < kTunedThreshold)
      base.eager_threshold =
          std::min(kTunedThreshold, base.eager_threshold_max);
  }
  cfg.profile = std::move(base);
  return cfg;
}

// Name-based knobs resolve through the registry's enum bridge so
// `.bcast_algo("vandegeijn")` and `.bcast(BcastAlgo::kVanDeGeijn)` are the
// same profile (byte-identical digests). Defined out of line to keep the
// collectives registry out of this widely-included header.
ExperimentBuilder& ExperimentBuilder::bcast_algo(std::string_view name) {
  base_.collectives.bcast = coll::bcast_policy_by_name(name);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::allreduce_algo(std::string_view name) {
  base_.collectives.allreduce = coll::allreduce_policy_by_name(name);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::alltoall_algo(std::string_view name) {
  base_.collectives.alltoall = coll::alltoall_policy_by_name(name);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::barrier_algo(std::string_view name) {
  base_.collectives.barrier = coll::barrier_policy_by_name(name);
  return *this;
}

ExperimentConfig ExperimentBuilder::build() const {
  ExperimentConfig cfg = configure(base_, level_);
  if (kernel_) cfg.kernel = *kernel_;
  if (congestion_) cfg.kernel.algo = *congestion_;
  if (eager_threshold_) cfg.profile.eager_threshold = *eager_threshold_;
  if (setsockopt_bytes_) cfg.profile.setsockopt_bytes = *setsockopt_bytes_;
  if (wan_extra_overhead_)
    cfg.profile.wan_extra_overhead = *wan_extra_overhead_;
  cfg.faults = faults_;
  return cfg;
}

}  // namespace gridsim::profiles
