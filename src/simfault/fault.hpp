// Seeded, deterministic fault models.
//
// The paper's WAN numbers were taken on a shared RENATER link whose
// effective behaviour — loss, jitter, competing flows — is exactly what
// made default-tuned MPI collapse below 120 Mbps. This layer provides the
// *models* for that behaviour; simfault/injector.hpp schedules them onto a
// live Network. Everything is driven by the repo's own xoshiro256** Rng, so
// a fault schedule is a pure function of its seed: two runs with the same
// seed inject byte-identical fault sequences on every platform, which is
// what lets the campaign digests stay schedule-independent with faults on.
#pragma once

#include <cstdint>
#include <string>

#include "simcore/rng.hpp"
#include "simcore/time.hpp"

namespace gridsim::simfault {

/// Per-packet loss model for the packet-level TCP reference simulation.
///
///  * kIid: every transmission attempt drops independently with probability
///    `iid_rate` — the memoryless baseline.
///  * kGilbertElliott: a two-state Markov channel (Gilbert & Elliott). The
///    channel flips between a Good state (loss `ge_loss_good`, near zero)
///    and a Bad state (loss `ge_loss_bad`, heavy) with per-packet
///    transition probabilities; bursts of loss emerge from dwell time in
///    the Bad state, which is what congested WAN routers actually produce
///    and what fast retransmit handles worst.
struct PacketLossSpec {
  enum class Model : std::uint8_t { kNone, kIid, kGilbertElliott };
  Model model = Model::kNone;
  double iid_rate = 0.0;         ///< P(drop) per attempt, kIid
  double ge_good_to_bad = 0.01;  ///< P(G->B) per attempt
  double ge_bad_to_good = 0.25;  ///< P(B->G) per attempt
  double ge_loss_good = 0.0005;  ///< P(drop | Good)
  double ge_loss_bad = 0.30;     ///< P(drop | Bad)
  std::uint64_t seed = 1;

  bool active() const { return model != Model::kNone; }

  static PacketLossSpec iid(double rate, std::uint64_t seed) {
    PacketLossSpec s;
    s.model = Model::kIid;
    s.iid_rate = rate;
    s.seed = seed;
    return s;
  }
  static PacketLossSpec gilbert_elliott(double good_to_bad, double bad_to_good,
                                        double loss_bad, std::uint64_t seed) {
    PacketLossSpec s;
    s.model = Model::kGilbertElliott;
    s.ge_good_to_bad = good_to_bad;
    s.ge_bad_to_good = bad_to_good;
    s.ge_loss_bad = loss_bad;
    s.seed = seed;
    return s;
  }
};

/// Sequential sampler over a PacketLossSpec: one `drop()` decision per
/// transmission attempt, in attempt order. Stateful (the Gilbert-Elliott
/// channel state advances per attempt) and deterministic per seed.
class LossProcess {
 public:
  explicit LossProcess(const PacketLossSpec& spec)
      : spec_(spec), rng_(spec.seed) {}

  /// Consumes one per-attempt decision. Always false for an inactive spec.
  bool drop() {
    switch (spec_.model) {
      case PacketLossSpec::Model::kNone:
        return false;
      case PacketLossSpec::Model::kIid:
        return rng_.uniform() < spec_.iid_rate;
      case PacketLossSpec::Model::kGilbertElliott: {
        // Transition first, then emit from the new state's loss rate.
        const double flip = rng_.uniform();
        if (bad_) {
          if (flip < spec_.ge_bad_to_good) bad_ = false;
        } else {
          if (flip < spec_.ge_good_to_bad) bad_ = true;
        }
        const double rate = bad_ ? spec_.ge_loss_bad : spec_.ge_loss_good;
        return rng_.uniform() < rate;
      }
    }
    return false;
  }

  bool in_bad_state() const { return bad_; }

 private:
  PacketLossSpec spec_;
  Rng rng_;
  bool bad_ = false;  // Gilbert-Elliott channel state; starts Good
};

/// Shell-style glob over link names (`*` and `?`), used by the injector
/// specs to select target links ("*-*" matches the WAN backbone links,
/// "rennes.up" one site uplink). Kept here so simfault does not depend on
/// the harness layer's identical matcher.
bool link_glob_match(const std::string& pattern, const std::string& text);

}  // namespace gridsim::simfault
