// Fault-injection engine: schedules seeded WAN variability onto a Network.
//
// A `FaultPlan` aggregates the knobs; a `FaultInjector` constructed over a
// live Network resolves each spec's link glob against the topology and
// installs the corresponding processes on the simulation's event queue:
//
//  * jitter        — periodic redraws of matched links' propagation latency
//  * flap          — matched links collapse to a trickle capacity and come
//                    back (down -> timeout -> up), repeatable
//  * loss episodes — a Poisson process of short capacity dips on matched
//                    links: the fluid analogue of bursty WAN packet loss
//                    (un-paced senders overflow the shrunken pipe and the
//                    TCP model takes real loss events)
//  * cross traffic — background flow generators with random bursts and gaps
//                    between caller-supplied host pairs
//
// Every process is finite (bounded repeats or a stop_after horizon), so
// `Simulation::run()` still terminates, and every random draw comes from
// Rngs derived from `FaultPlan::seed` — the whole schedule is deterministic
// per seed and is recorded as TraceKind::kFault events, so campaign digests
// capture injected faults bit for bit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "simcore/rng.hpp"
#include "simcore/time.hpp"
#include "simfault/fault.hpp"
#include "simnet/network.hpp"

namespace gridsim::simfault {

/// RTT jitter / delay variation: every `period`, each matched link's
/// propagation latency is redrawn uniformly in
/// [nominal*(1-amplitude), nominal*(1+amplitude)].
struct JitterSpec {
  double amplitude = 0.0;  ///< 0 disables; must stay < 1
  SimTime period = milliseconds(50);
  SimTime stop_after = seconds(60);  ///< horizon so the run terminates
  std::string link_glob = "*-*";     ///< WAN backbone links by default
  bool active() const { return amplitude > 0; }
};

/// Link flap: at `down_at` the matched links collapse to `down_capacity`
/// (a trickle, never zero — control traffic still crawls and deadlock stays
/// visible); `down_for` later they are restored. Repeats `repeats` times
/// every `repeat_every`.
struct FlapSpec {
  SimTime down_at = 0;
  SimTime down_for = 0;  ///< 0 disables
  SimTime repeat_every = 0;
  int repeats = 1;
  double down_capacity = 1.0;  ///< B/s while down; must stay positive
  std::string link_glob = "*-*";
  bool active() const { return down_for > 0 && repeats > 0; }
};

/// Random WAN loss episodes: a Poisson process (mean `rate_per_s` episodes
/// per second, exponential inter-arrivals) of `duration`-long capacity dips
/// to `capacity_factor` of nominal on one random matched link per episode.
struct LossEpisodeSpec {
  double rate_per_s = 0;  ///< 0 disables
  SimTime duration = milliseconds(40);
  double capacity_factor = 0.05;  ///< must stay positive
  SimTime stop_after = seconds(60);
  std::string link_glob = "*-*";
  bool active() const { return rate_per_s > 0; }
};

/// Background cross-traffic: `flows` independent generators, each looping
/// "send a uniform random burst between a random host pair, idle a uniform
/// random gap" until `stop_after`. Bursts ride raw fluid flows (plain bulk
/// transfers), so they contend with the experiment's TCP traffic for link
/// capacity exactly like competing RENATER flows did in the paper.
struct CrossTrafficSpec {
  int flows = 0;  ///< 0 disables
  double min_burst_bytes = 1e6;
  double max_burst_bytes = 16e6;
  SimTime min_gap = milliseconds(50);
  SimTime max_gap = milliseconds(500);
  SimTime stop_after = seconds(30);
  bool active() const { return flows > 0; }
};

/// The whole fault schedule for one experiment. Inactive by default, so an
/// `ExperimentConfig` without fault knobs behaves exactly as before.
struct FaultPlan {
  JitterSpec jitter;
  FlapSpec flap;
  LossEpisodeSpec loss_episodes;
  CrossTrafficSpec cross;
  std::uint64_t seed = 1;

  bool active() const {
    return jitter.active() || flap.active() || loss_episodes.active() ||
           cross.active();
  }
};

/// Installs a FaultPlan's processes on `net`'s simulation. Construct after
/// the topology is built and before `Simulation::run()`; keep it alive until
/// the run drains (the scheduled callbacks point back into it).
/// `cross_pairs` are the candidate (src, dst) host pairs for cross-traffic
/// generators (see topo::wan_host_pairs for grid deployments); required only
/// when the plan's cross-traffic spec is active.
class FaultInjector {
 public:
  FaultInjector(net::Network& net, FaultPlan plan,
                std::vector<std::pair<net::HostId, net::HostId>> cross_pairs =
                    {});
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- observability ------------------------------------------------------
  int jitter_redraws() const { return jitter_redraws_; }
  int flap_transitions() const { return flap_transitions_; }
  int loss_episodes_started() const { return episodes_; }
  int cross_bursts() const { return cross_bursts_; }

 private:
  /// Per-target-link bookkeeping: the nominal values plus which fault
  /// sources currently hold the link degraded, so overlapping flap and loss
  /// episodes compose instead of clobbering each other's restores.
  struct LinkState {
    net::LinkId id = -1;
    double nominal_capacity = 0;
    SimTime nominal_latency = 0;
    bool flapped_down = false;
    int active_dips = 0;
  };

  LinkState& state_of(net::LinkId id);
  /// Re-derives and applies the link's effective capacity from its state.
  void apply_capacity(LinkState& st);
  std::vector<net::LinkId> match_links(const std::string& glob) const;
  void record(TraceKind kind, const std::string& subject, double value,
              const char* detail);

  void install_jitter();
  void install_flap();
  void install_loss_episodes();
  void install_cross_traffic();

  void jitter_tick();
  void schedule_next_episode(SimTime horizon);
  void cross_burst(int generator);

  net::Network& net_;
  Simulation& sim_;
  FaultPlan plan_;
  std::vector<std::pair<net::HostId, net::HostId>> cross_pairs_;
  std::vector<std::unique_ptr<LinkState>> links_;  // stable addresses
  std::vector<net::LinkId> jitter_targets_;
  std::vector<net::LinkId> flap_targets_;
  std::vector<net::LinkId> episode_targets_;
  Rng jitter_rng_;
  Rng episode_rng_;
  std::vector<Rng> cross_rngs_;  // one per generator
  int jitter_redraws_ = 0;
  int flap_transitions_ = 0;
  int episodes_ = 0;
  int cross_bursts_ = 0;
};

}  // namespace gridsim::simfault
