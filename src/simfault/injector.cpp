#include "simfault/injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gridsim::simfault {

bool link_glob_match(const std::string& pattern, const std::string& text) {
  // Iterative glob with star backtracking (same semantics as the harness
  // registry matcher: `*` and `?`, no character classes).
  std::size_t p = 0, t = 0, star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

FaultInjector::FaultInjector(
    net::Network& net, FaultPlan plan,
    std::vector<std::pair<net::HostId, net::HostId>> cross_pairs)
    : net_(net),
      sim_(net.sim()),
      plan_(plan),
      cross_pairs_(std::move(cross_pairs)),
      jitter_rng_(Rng(plan.seed).split(1)),
      episode_rng_(Rng(plan.seed).split(2)) {
  if (plan_.jitter.active()) {
    if (plan_.jitter.amplitude >= 1.0)
      throw std::invalid_argument("jitter amplitude must stay below 1");
    jitter_targets_ = match_links(plan_.jitter.link_glob);
    install_jitter();
  }
  if (plan_.flap.active()) {
    if (plan_.flap.down_capacity <= 0)
      throw std::invalid_argument("flap down capacity must stay positive");
    flap_targets_ = match_links(plan_.flap.link_glob);
    install_flap();
  }
  if (plan_.loss_episodes.active()) {
    if (plan_.loss_episodes.capacity_factor <= 0)
      throw std::invalid_argument("loss episode factor must stay positive");
    episode_targets_ = match_links(plan_.loss_episodes.link_glob);
    install_loss_episodes();
  }
  if (plan_.cross.active()) {
    if (cross_pairs_.empty())
      throw std::invalid_argument(
          "cross traffic requires candidate host pairs");
    install_cross_traffic();
  }
}

FaultInjector::LinkState& FaultInjector::state_of(net::LinkId id) {
  for (auto& st : links_)
    if (st->id == id) return *st;
  auto st = std::make_unique<LinkState>();
  st->id = id;
  st->nominal_capacity = net_.link(id).capacity;
  st->nominal_latency = net_.link(id).latency;
  links_.push_back(std::move(st));
  return *links_.back();
}

void FaultInjector::apply_capacity(LinkState& st) {
  double cap = st.nominal_capacity;
  if (st.active_dips > 0)
    cap = std::min(cap,
                   st.nominal_capacity * plan_.loss_episodes.capacity_factor);
  if (st.flapped_down) cap = std::min(cap, plan_.flap.down_capacity);
  if (net_.link(st.id).capacity != cap) net_.set_link_capacity(st.id, cap);
}

std::vector<net::LinkId> FaultInjector::match_links(
    const std::string& glob) const {
  std::vector<net::LinkId> out;
  for (net::LinkId l = 0; l < net_.link_count(); ++l)
    if (link_glob_match(glob, net_.link(l).name)) out.push_back(l);
  if (out.empty())
    throw std::invalid_argument("fault link glob '" + glob +
                                "' matches no link");
  return out;
}

void FaultInjector::record(TraceKind kind, const std::string& subject,
                           double value, const char* detail) {
  sim_.tracer().record(sim_.now(), kind, subject, value, detail);
}

// --- jitter -----------------------------------------------------------------

void FaultInjector::install_jitter() {
  for (net::LinkId l : jitter_targets_) state_of(l);  // snapshot nominals
  sim_.after(plan_.jitter.period, [this] { jitter_tick(); });
}

void FaultInjector::jitter_tick() {
  if (sim_.now() > plan_.jitter.stop_after) {
    // Settle matched links back to their nominal latency so post-horizon
    // behaviour is clean.
    for (net::LinkId l : jitter_targets_)
      net_.set_link_latency(l, state_of(l).nominal_latency);
    return;
  }
  for (net::LinkId l : jitter_targets_) {
    const LinkState& st = state_of(l);
    const double factor =
        1.0 + jitter_rng_.uniform(-plan_.jitter.amplitude,
                                  plan_.jitter.amplitude);
    const SimTime lat = std::max<SimTime>(
        0, from_seconds(to_seconds(st.nominal_latency) * factor));
    net_.set_link_latency(l, lat);
    ++jitter_redraws_;
    record(TraceKind::kFault, net_.link(l).name,
           static_cast<double>(lat), "jitter");
  }
  sim_.after(plan_.jitter.period, [this] { jitter_tick(); });
}

// --- flap -------------------------------------------------------------------

void FaultInjector::install_flap() {
  for (net::LinkId l : flap_targets_) state_of(l);
  const SimTime stride =
      plan_.flap.repeat_every > 0
          ? plan_.flap.repeat_every
          : plan_.flap.down_for + plan_.flap.down_at + 1;
  for (int r = 0; r < plan_.flap.repeats; ++r) {
    const SimTime down_at = plan_.flap.down_at + r * stride;
    sim_.at(down_at, [this] {
      for (net::LinkId l : flap_targets_) {
        LinkState& st = state_of(l);
        st.flapped_down = true;
        apply_capacity(st);
        ++flap_transitions_;
        record(TraceKind::kFault, net_.link(l).name, 0.0, "link-down");
      }
    });
    sim_.at(down_at + plan_.flap.down_for, [this] {
      for (net::LinkId l : flap_targets_) {
        LinkState& st = state_of(l);
        st.flapped_down = false;
        apply_capacity(st);
        ++flap_transitions_;
        record(TraceKind::kFault, net_.link(l).name, 1.0, "link-up");
      }
    });
  }
}

// --- loss episodes ----------------------------------------------------------

void FaultInjector::install_loss_episodes() {
  for (net::LinkId l : episode_targets_) state_of(l);
  schedule_next_episode(plan_.loss_episodes.stop_after);
}

void FaultInjector::schedule_next_episode(SimTime horizon) {
  // Exponential inter-arrival; 1 - uniform() is in (0, 1], so the log is
  // finite.
  const double gap_s =
      -std::log(1.0 - episode_rng_.uniform()) / plan_.loss_episodes.rate_per_s;
  const SimTime at = sim_.now() + from_seconds(gap_s);
  if (at > horizon) return;
  const std::size_t pick = static_cast<std::size_t>(episode_rng_.uniform_int(
      0, static_cast<std::int64_t>(episode_targets_.size()) - 1));
  const net::LinkId target = episode_targets_[pick];
  sim_.at(at, [this, target, horizon] {
    LinkState& st = state_of(target);
    ++st.active_dips;
    apply_capacity(st);
    ++episodes_;
    record(TraceKind::kFault, net_.link(target).name,
           plan_.loss_episodes.capacity_factor, "loss-episode");
    sim_.after(plan_.loss_episodes.duration, [this, target] {
      LinkState& inner = state_of(target);
      --inner.active_dips;
      apply_capacity(inner);
    });
    schedule_next_episode(horizon);
  });
}

// --- cross traffic ----------------------------------------------------------

void FaultInjector::install_cross_traffic() {
  cross_rngs_.reserve(static_cast<std::size_t>(plan_.cross.flows));
  Rng base(plan_.seed);
  for (int g = 0; g < plan_.cross.flows; ++g) {
    cross_rngs_.push_back(base.split(static_cast<std::uint64_t>(16 + g)));
    // Stagger starts inside the first gap window so the generators do not
    // fire in lockstep.
    const SimTime first = cross_rngs_.back().uniform_int(
        plan_.cross.min_gap, plan_.cross.max_gap);
    sim_.after(first, [this, g] { cross_burst(g); });
  }
}

void FaultInjector::cross_burst(int generator) {
  if (sim_.now() > plan_.cross.stop_after) return;
  Rng& rng = cross_rngs_[static_cast<std::size_t>(generator)];
  const auto& pair = cross_pairs_[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(cross_pairs_.size()) - 1))];
  const double burst =
      rng.uniform(plan_.cross.min_burst_bytes, plan_.cross.max_burst_bytes);
  const SimTime gap = rng.uniform_int(plan_.cross.min_gap, plan_.cross.max_gap);
  ++cross_bursts_;
  record(TraceKind::kFault,
         net_.host(pair.first).name + "->" + net_.host(pair.second).name,
         burst, "cross-traffic");
  net_.start_flow(pair.first, pair.second, burst, net::kUnlimitedRate,
                  [this, generator, gap] {
                    sim_.after(gap, [this, generator] {
                      cross_burst(generator);
                    });
                  });
}

}  // namespace gridsim::simfault
