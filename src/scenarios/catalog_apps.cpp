// ray2mesh scenarios: Tables 6 and 7 — rays per cluster and phase times as
// a function of the master's location on the four-cluster deployment.
#include "apps/ray2mesh.hpp"
#include "scenarios/catalog_internal.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::scenarios::detail {

namespace {

using harness::ScenarioContext;
using harness::ScenarioRegistry;
using harness::ScenarioResult;
using harness::ScenarioSpec;

// Site order in our spec: rennes(0), nancy(1), sophia(2), toulouse(3);
// Tables 6 and 7 list Nancy, Rennes, Sophia, Toulouse.
constexpr int kTableOrder[4] = {1, 0, 2, 3};

profiles::ExperimentConfig ray2mesh_config() {
  return profiles::experiment(profiles::gridmpi())
      .tuning(profiles::TuningLevel::kTcpTuned);
}

apps::Ray2MeshResult run_for_master(int master_site, const SimHooks& hooks) {
  return apps::run_ray2mesh(topo::GridSpec::ray2mesh_quad(8), master_site,
                            ray2mesh_config(), {}, hooks);
}

void register_table6(ScenarioRegistry& reg) {
  const auto spec_topo = topo::GridSpec::ray2mesh_quad(8);
  for (int col = 0; col < 4; ++col) {
    const int master_site = kTableOrder[col];
    const std::string master_name =
        spec_topo.sites[static_cast<size_t>(master_site)].name;
    ScenarioSpec spec;
    spec.group = "table6";
    spec.name = "table6/master-" + master_name;
    spec.description =
        "ray2mesh rays per cluster, master at " + master_name;
    for (const auto& site : spec_topo.sites)
      spec.expected_metrics.push_back("rays_" + site.name);
    // Master/worker self-scheduling: the workers' result messages race at
    // the master's wildcard receive by design (that is the load balancer).
    spec.races_expected = true;
    spec.run = [master_site](const ScenarioContext& ctx) {
      const auto topo = topo::GridSpec::ray2mesh_quad(8);
      const auto r = run_for_master(master_site, ctx.hooks);
      ScenarioResult res;
      for (std::size_t site = 0; site < topo.sites.size(); ++site) {
        // Table 6 reports the *average rays per node* of each cluster (the
        // paper's columns sum to 1M / 8 nodes).
        res.add("rays_" + topo.sites[site].name,
                double(r.rays_per_site[site]) / topo.sites[site].nodes,
                "rays/node");
      }
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer("table6", [](const auto& specs, const auto& results) {
    const double paper[4][4] = {
        // master: Nancy   Rennes   Sophia   Toulouse   (cluster rows)
        {29650, 27937.5, 29343.75, 28781.25},  // Nancy
        {30225, 30625, 29437.5, 29468.75},     // Rennes
        {35375, 36562.5, 37343.75, 36437.5},   // Sophia
        {29750, 29875, 28875, 30312.5},        // Toulouse
    };
    const auto topo = topo::GridSpec::ray2mesh_quad(8);
    std::vector<std::string> headers{"cluster"};
    std::vector<std::vector<std::string>> rows(4);
    for (int row = 0; row < 4; ++row)
      rows[static_cast<size_t>(row)].push_back(
          topo.sites[static_cast<size_t>(kTableOrder[row])].name);
    for (std::size_t col = 0; col < specs.size(); ++col) {
      headers.push_back("master=" +
                        topo.sites[static_cast<size_t>(kTableOrder[col])]
                            .name);
      for (int row = 0; row < 4; ++row) {
        const auto& site_name =
            topo.sites[static_cast<size_t>(kTableOrder[row])].name;
        rows[static_cast<size_t>(row)].push_back(
            harness::format_double(
                results[col]->metric("rays_" + site_name), 0) +
            " (" + harness::format_double(paper[row][col], 0) + ")");
      }
    }
    std::string out = harness::render_table(
        "Table 6: rays computed per cluster vs master location -- model "
        "(paper)",
        headers, rows);
    out +=
        "\nPaper shape: Sophia (fastest nodes) computes the most rays; a\n"
        "cluster computes slightly more when the master is local.\n";
    return out;
  });
}

void register_table7(ScenarioRegistry& reg) {
  const auto spec_topo = topo::GridSpec::ray2mesh_quad(8);
  for (int col = 0; col < 4; ++col) {
    const int master_site = kTableOrder[col];
    const std::string master_name =
        spec_topo.sites[static_cast<size_t>(master_site)].name;
    ScenarioSpec spec;
    spec.group = "table7";
    spec.name = "table7/master-" + master_name;
    spec.description = "ray2mesh phase times, master at " + master_name;
    spec.expected_metrics = {"compute_s", "merge_s", "total_s"};
    spec.races_expected = true;  // same self-scheduling races as table6
    spec.run = [master_site](const ScenarioContext& ctx) {
      const auto r = run_for_master(master_site, ctx.hooks);
      ScenarioResult res;
      res.add("compute_s", to_seconds(r.compute_time), "s");
      res.add("merge_s", to_seconds(r.merge_time), "s");
      res.add("total_s", to_seconds(r.total_time), "s");
      res.note = "total " + harness::format_double(to_seconds(r.total_time),
                                                   1) +
                 " s";
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer("table7", [](const auto& specs, const auto& results) {
    const double paper_comp[4] = {185.11, 185.16, 186.03, 186.97};
    const double paper_merge[4] = {168.85, 162.59, 168.38, 165.99};
    const double paper_total[4] = {361.52, 355.14, 361.72, 360.24};
    const auto topo = topo::GridSpec::ray2mesh_quad(8);
    std::vector<std::string> headers{"phase"};
    std::vector<std::vector<std::string>> rows{
        {"compute (s)"}, {"paper comp"}, {"merge (s)"}, {"paper merge"},
        {"total (s)"},   {"paper total"}};
    for (std::size_t col = 0; col < specs.size(); ++col) {
      headers.push_back(
          "master=" +
          topo.sites[static_cast<size_t>(kTableOrder[col])].name);
      rows[0].push_back(
          harness::format_double(results[col]->metric("compute_s"), 1));
      rows[1].push_back(harness::format_double(paper_comp[col], 1));
      rows[2].push_back(
          harness::format_double(results[col]->metric("merge_s"), 1));
      rows[3].push_back(harness::format_double(paper_merge[col], 1));
      rows[4].push_back(
          harness::format_double(results[col]->metric("total_s"), 1));
      rows[5].push_back(harness::format_double(paper_total[col], 1));
    }
    std::string out = harness::render_table(
        "Table 7: ray2mesh phase times vs master location", headers, rows);
    out +=
        "\nPaper shape: compute ~185 s and total ~360 s regardless of the\n"
        "master's location -- the task placement does not matter much.\n";
    return out;
  });
}

}  // namespace

void register_apps_catalog(ScenarioRegistry& reg) {
  register_table6(reg);
  register_table7(reg);
}

}  // namespace gridsim::scenarios::detail
