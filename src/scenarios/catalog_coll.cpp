// The collective-algorithm layer's catalog group (`coll/*`): guideline
// verification per implementation, the deliberately mis-ruled negative
// fixture, algorithm-equivalence sweeps over the registry, and the
// selector / fluent-builder API surface — all digest-pinned like every
// other campaign scenario (tests/catalog_test.cpp).
//
//  * coll/verify-<impl> — the Hunold-style guideline sweep
//    (collectives/guidelines.hpp) over cluster, grid and cyclic-placement
//    grid; the scenario THROWS on any violation, so the campaign fails if
//    a rule-table change breaks a guideline.
//  * coll/misrule-fixture — the inverted van de Geijn cutoff; the scenario
//    throws unless the sweep catches it as a "monotone-bcast" violation,
//    proving the harness can detect a bad selector.
//  * coll/equiv-* — every registered algorithm per operation, selected by
//    name through declarative selector rules, must complete and move the
//    operation's lower-bound traffic.
//  * coll/decision-table, coll/selector-rules, coll/builder-knobs — the
//    registry/selector introspection surface and the name-based builder
//    knobs (enum spelling and name spelling must be indistinguishable).
#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "collectives/collectives.hpp"
#include "collectives/guidelines.hpp"
#include "collectives/registry.hpp"
#include "collectives/selector.hpp"
#include "mpi/mpi.hpp"
#include "scenarios/catalog_internal.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::scenarios::detail {

namespace {

using harness::ScenarioContext;
using harness::ScenarioRegistry;
using harness::ScenarioResult;
using harness::ScenarioSpec;
using mpi::CollOp;
using mpi::Rank;

constexpr int kCollRanks = 16;
constexpr double kQuickSizes[] = {1e3, 64e3};

mpi::CollRule pure_rule(CollOp op, const std::string& algo) {
  mpi::CollRule r;
  r.op = op;
  r.algo = algo;
  return r;
}

/// Runs one SPMD body under the context's digest hooks; returns the max
/// per-rank finish time in seconds.
double run_timed(const ScenarioContext& ctx, const topo::GridSpec& spec,
                 int nranks, const profiles::ExperimentConfig& cfg,
                 const std::function<Task<void>(Rank&)>& body,
                 mpi::TrafficStats* stats = nullptr) {
  Simulation sim;
  if (ctx.hooks.on_start) ctx.hooks.on_start(sim);
  topo::Grid grid(sim, spec);
  mpi::Job job(grid, mpi::block_placement(grid, nranks), cfg.profile,
               cfg.kernel);
  std::vector<SimTime> finish(static_cast<size_t>(nranks), 0);
  job.launch([&body, &finish](Rank& r) -> Task<void> {
    co_await body(r);
    finish[static_cast<size_t>(r.rank())] = r.sim().now();
  });
  sim.run();
  if (ctx.hooks.on_finish) ctx.hooks.on_finish(sim);
  if (stats) *stats = job.traffic();
  return to_seconds(*std::max_element(finish.begin(), finish.end()));
}

/// The three deployments the guideline sweep covers: one cluster, the 8+8
/// grid, and the same grid with ranks interleaved across sites (the
/// adversarial order where rank-ordered rings cross the WAN every hop).
struct Deployment {
  const char* label;
  topo::GridSpec spec;
  bool cyclic;
};

std::vector<Deployment> deployments() {
  return {{"cluster", topo::GridSpec::single_cluster(16), false},
          {"grid", topo::GridSpec::rennes_nancy(8), false},
          {"grid-cyclic", topo::GridSpec::rennes_nancy(8), true}};
}

coll::GuidelineReport sweep(const ScenarioContext& ctx,
                            const mpi::ImplProfile& impl) {
  const profiles::ExperimentConfig cfg =
      profiles::experiment(impl).tuning(profiles::TuningLevel::kTcpTuned);
  coll::GuidelineReport all;
  for (const auto& d : deployments()) {
    coll::GuidelineOptions opt;
    opt.sizes.assign(std::begin(kQuickSizes), std::end(kQuickSizes));
    opt.cyclic = d.cyclic;
    opt.hooks = ctx.hooks;
    const coll::GuidelineReport rep =
        coll::verify_guidelines(d.spec, d.label, cfg.profile, cfg.kernel, opt);
    all.cells.insert(all.cells.end(), rep.cells.begin(), rep.cells.end());
  }
  return all;
}

double worst_ratio(const coll::GuidelineReport& rep) {
  double worst = 0;
  for (const auto& c : rep.cells) worst = std::max(worst, c.ratio);
  return worst;
}

void register_verify(ScenarioRegistry& reg, const mpi::ImplProfile& impl) {
  ScenarioSpec spec;
  spec.group = "coll";
  spec.name = "coll/verify-" + impl.name;
  spec.description = "performance-guideline sweep for " + impl.name +
                     " over cluster/grid/cyclic; fails on any violation";
  spec.expected_metrics = {"cells", "violations", "worst_ratio"};
  spec.ranks = kCollRanks;
  spec.run = [impl](const ScenarioContext& ctx) {
    const coll::GuidelineReport rep = sweep(ctx, impl);
    ScenarioResult res;
    res.add("cells", static_cast<double>(rep.cells.size()));
    res.add("violations", rep.violations());
    res.add("worst_ratio", worst_ratio(rep));
    if (rep.violations() > 0) {
      for (const auto& c : rep.cells)
        if (c.violated)
          throw std::runtime_error(impl.name + ": guideline '" + c.guideline +
                                   "' violated on " + c.topology + " (" +
                                   c.detail + ")");
    }
    res.note = impl.name + ": " + std::to_string(rep.cells.size()) +
               " cells clean, worst ratio " +
               harness::format_double(worst_ratio(rep), 2);
    return res;
  };
  reg.add(std::move(spec));
}

void register_misrule(ScenarioRegistry& reg) {
  ScenarioSpec spec;
  spec.group = "coll";
  spec.name = "coll/misrule-fixture";
  spec.description =
      "inverted bcast cutoff must be CAUGHT as a monotone-bcast violation "
      "on the cyclic grid (negative fixture)";
  spec.expected_metrics = {"violations", "monotone_bcast_ratio"};
  spec.ranks = kCollRanks;
  spec.run = [](const ScenarioContext& ctx) {
    mpi::ImplProfile impl = profiles::mpich2();
    impl.collectives.selector = coll::misruled_selector();
    const profiles::ExperimentConfig cfg =
        profiles::experiment(impl).tuning(profiles::TuningLevel::kTcpTuned);
    coll::GuidelineOptions opt;
    opt.sizes.assign(std::begin(kQuickSizes), std::end(kQuickSizes));
    opt.cyclic = true;
    opt.hooks = ctx.hooks;
    const coll::GuidelineReport rep = coll::verify_guidelines(
        topo::GridSpec::rennes_nancy(8), "grid-cyclic", cfg.profile,
        cfg.kernel, opt);
    double ratio = 0;
    for (const auto& c : rep.cells)
      if (c.violated && c.guideline == "monotone-bcast")
        ratio = std::max(ratio, c.ratio);
    if (ratio == 0)
      throw std::runtime_error(
          "the misruled selector was NOT caught: no monotone-bcast "
          "violation on the cyclic grid");
    ScenarioResult res;
    res.add("violations", rep.violations());
    res.add("monotone_bcast_ratio", ratio);
    res.note = "misrule caught: monotone-bcast ratio " +
               harness::format_double(ratio, 2) + " > " +
               harness::format_double(coll::kMonotoneTolerance, 2);
    return res;
  };
  reg.add(std::move(spec));
}

void register_equiv_bcast(ScenarioRegistry& reg) {
  ScenarioSpec spec;
  spec.group = "coll";
  spec.name = "coll/equiv-bcast";
  spec.description =
      "every registered bcast algorithm, selected by name, moves >= (p-1)*b "
      "on the grid";
  spec.expected_metrics = {"algos", "min_traffic_ratio"};
  spec.ranks = kCollRanks;
  spec.run = [](const ScenarioContext& ctx) {
    const double bytes = 256e3;
    const double floor = (kCollRanks - 1) * bytes;
    double min_ratio = 1e9;
    const auto names = coll::AlgorithmRegistry::instance().names("bcast");
    for (const auto& name : names) {
      mpi::TrafficStats stats;
      run_timed(ctx, topo::GridSpec::rennes_nancy(8), kCollRanks,
                profiles::experiment(profiles::mpich2())
                    .selector({pure_rule(CollOp::kBcast, name)}),
                [bytes](Rank& r) -> Task<void> {
                  co_await coll::bcast(r, 0, bytes);
                },
                &stats);
      const double ratio = stats.collective_bytes / floor;
      min_ratio = std::min(min_ratio, ratio);
      if (ratio < 0.99)
        throw std::runtime_error("bcast '" + name +
                                 "' moved less than (p-1)*payload");
    }
    ScenarioResult res;
    res.add("algos", static_cast<double>(names.size()));
    res.add("min_traffic_ratio", min_ratio);
    res.note = std::to_string(names.size()) +
               " bcast algorithms complete; min traffic ratio " +
               harness::format_double(min_ratio, 2);
    return res;
  };
  reg.add(std::move(spec));
}

void register_equiv_allreduce(ScenarioRegistry& reg) {
  ScenarioSpec spec;
  spec.group = "coll";
  spec.name = "coll/equiv-allreduce";
  spec.description =
      "every registered allreduce algorithm, selected by name, completes on "
      "pow2 and non-pow2 communicators";
  spec.expected_metrics = {"algos", "max_s"};
  spec.ranks = kCollRanks;
  spec.run = [](const ScenarioContext& ctx) {
    double max_s = 0;
    const auto names = coll::AlgorithmRegistry::instance().names("allreduce");
    for (const auto& name : names) {
      for (int nranks : {6, kCollRanks}) {
        const double s =
            run_timed(ctx, topo::GridSpec::rennes_nancy(8), nranks,
                      profiles::experiment(profiles::mpich2())
                          .selector({pure_rule(CollOp::kAllreduce, name)}),
                      [](Rank& r) -> Task<void> {
                        co_await coll::allreduce(r, 64e3);
                      });
        if (s <= 0)
          throw std::runtime_error("allreduce '" + name + "' did nothing (" +
                                   std::to_string(nranks) + " ranks)");
        max_s = std::max(max_s, s);
      }
    }
    ScenarioResult res;
    res.add("algos", static_cast<double>(names.size()));
    res.add("max_s", max_s, "s");
    res.note = std::to_string(names.size()) +
               " allreduce algorithms complete on 6 and 16 ranks";
    return res;
  };
  reg.add(std::move(spec));
}

void register_equiv_alltoall(ScenarioRegistry& reg) {
  ScenarioSpec spec;
  spec.group = "coll";
  spec.name = "coll/equiv-alltoall";
  spec.description =
      "every registered alltoall algorithm, selected by name, delivers all "
      "p*(p-1) blocks";
  spec.expected_metrics = {"algos", "min_traffic_B"};
  spec.ranks = 8;
  spec.run = [](const ScenarioContext& ctx) {
    const int nranks = 8;
    const double per_pair = 500;
    const double floor = nranks * (nranks - 1) * per_pair;
    double min_traffic = 1e18;
    const auto names = coll::AlgorithmRegistry::instance().names("alltoall");
    for (const auto& name : names) {
      mpi::TrafficStats stats;
      run_timed(ctx, topo::GridSpec::single_cluster(8), nranks,
                profiles::experiment(profiles::mpich2())
                    .selector({pure_rule(CollOp::kAlltoall, name)}),
                [per_pair](Rank& r) -> Task<void> {
                  co_await coll::alltoall(r, per_pair);
                },
                &stats);
      min_traffic = std::min(min_traffic, stats.collective_bytes);
      if (stats.collective_bytes < floor * 0.99)
        throw std::runtime_error("alltoall '" + name +
                                 "' moved less than p*(p-1)*payload");
    }
    ScenarioResult res;
    res.add("algos", static_cast<double>(names.size()));
    res.add("min_traffic_B", min_traffic, "B");
    res.note = std::to_string(names.size()) +
               " alltoall algorithms deliver every block";
    return res;
  };
  reg.add(std::move(spec));
}

void register_equiv_barrier(ScenarioRegistry& reg) {
  ScenarioSpec spec;
  spec.group = "coll";
  spec.name = "coll/equiv-barrier";
  spec.description =
      "every registered barrier algorithm, selected by name, holds every "
      "rank until the last arrival";
  spec.expected_metrics = {"algos", "min_exit_ms"};
  spec.ranks = 8;
  spec.run = [](const ScenarioContext& ctx) {
    const int nranks = 8;
    double min_exit_ms = 1e18;
    const auto names = coll::AlgorithmRegistry::instance().names("barrier");
    for (const auto& name : names) {
      std::vector<SimTime> after(static_cast<size_t>(nranks), -1);
      run_timed(ctx, topo::GridSpec::rennes_nancy(4), nranks,
                profiles::experiment(profiles::mpich2())
                    .selector({pure_rule(CollOp::kBarrier, name)}),
                [&after](Rank& r) -> Task<void> {
                  // Stagger arrival: rank i waits i ms first.
                  co_await r.sim().delay(milliseconds(r.rank()));
                  co_await coll::barrier(r);
                  after[static_cast<size_t>(r.rank())] = r.sim().now();
                });
      for (SimTime t : after) {
        min_exit_ms = std::min(min_exit_ms, to_seconds(t) * 1e3);
        if (t < milliseconds(nranks - 1))
          throw std::runtime_error("barrier '" + name +
                                   "' released a rank before the last "
                                   "arrival");
      }
    }
    ScenarioResult res;
    res.add("algos", static_cast<double>(names.size()));
    res.add("min_exit_ms", min_exit_ms, "ms");
    res.note = std::to_string(names.size()) +
               " barrier algorithms synchronise staggered arrivals";
    return res;
  };
  reg.add(std::move(spec));
}

void register_decision_table(ScenarioRegistry& reg) {
  ScenarioSpec spec;
  spec.group = "coll";
  spec.name = "coll/decision-table";
  spec.description =
      "registry introspection + default-table spot checks: the enum-derived "
      "rules reproduce the historic cutoffs";
  spec.expected_metrics = {"bcast_algos", "allreduce_algos", "alltoall_algos",
                           "barrier_algos", "rules_total"};
  spec.run = [](const ScenarioContext&) {
    const auto& registry = coll::AlgorithmRegistry::instance();
    int rules_total = 0;
    for (const auto& impl : profiles::all_implementations())
      for (auto op : {CollOp::kBcast, CollOp::kAllreduce, CollOp::kAlltoall,
                      CollOp::kBarrier})
        rules_total += static_cast<int>(
            coll::Selector::effective_rules(impl.collectives, op).size());
    // The historic cutoffs, as decision-table facts: MPICH2 broadcasts
    // binomially at the 12 kB cutoff and switches to the ring just above
    // it; allreduce switches at 2 kB.
    const auto& suite = profiles::mpich2().collectives;
    const auto pick = [&suite](CollOp op, double bytes) {
      return coll::Selector::pick(suite, op, bytes, kCollRanks, 2).algo;
    };
    if (pick(CollOp::kBcast, coll::kBcastSmallCutoff) != "binomial" ||
        pick(CollOp::kBcast, coll::kBcastSmallCutoff + 1) != "scatter-ring" ||
        pick(CollOp::kAllreduce, coll::kAllreduceSmallCutoff) !=
            "recursive-doubling" ||
        pick(CollOp::kAllreduce, coll::kAllreduceSmallCutoff + 1) !=
            "rabenseifner")
      throw std::runtime_error(
          "default decision table does not reproduce the historic cutoffs");
    ScenarioResult res;
    res.add("bcast_algos", static_cast<double>(registry.bcast().size()));
    res.add("allreduce_algos",
            static_cast<double>(registry.allreduce().size()));
    res.add("alltoall_algos", static_cast<double>(registry.alltoall().size()));
    res.add("barrier_algos", static_cast<double>(registry.barrier().size()));
    res.add("rules_total", rules_total);
    res.note = std::to_string(registry.bcast().size()) + "+" +
               std::to_string(registry.allreduce().size()) + "+" +
               std::to_string(registry.alltoall().size()) + "+" +
               std::to_string(registry.barrier().size()) +
               " algorithms; cutoffs reproduced";
    return res;
  };
  reg.add(std::move(spec));
}

void register_selector_rules(ScenarioRegistry& reg) {
  ScenarioSpec spec;
  spec.group = "coll";
  spec.name = "coll/selector-rules";
  spec.description =
      "topology-scoped rules: one rule set broadcasts hierarchically on the "
      "grid and via the ring inside a cluster";
  spec.expected_metrics = {"grid_s", "cluster_s"};
  spec.ranks = kCollRanks;
  spec.run = [](const ScenarioContext& ctx) {
    mpi::CollRule multi = pure_rule(CollOp::kBcast, "hierarchical");
    multi.topo = mpi::TopoScope::kMultiSite;
    mpi::CollRule single = pure_rule(CollOp::kBcast, "scatter-ring");
    single.topo = mpi::TopoScope::kSingleSite;
    const mpi::CollRules rules = {multi, single};
    // The pick is topology-dependent even though the suite is identical.
    const auto& suite = profiles::experiment(profiles::mpich2())
                            .selector(rules)
                            .build()
                            .profile.collectives;
    if (coll::Selector::pick(suite, CollOp::kBcast, 256e3, kCollRanks, 2)
                .algo != "hierarchical" ||
        coll::Selector::pick(suite, CollOp::kBcast, 256e3, kCollRanks, 1)
                .algo != "scatter-ring")
      throw std::runtime_error("topology-scoped rules picked wrong entries");
    const auto body = [](Rank& r) -> Task<void> {
      co_await coll::bcast(r, 0, 256e3);
    };
    const double grid_s =
        run_timed(ctx, topo::GridSpec::rennes_nancy(8), kCollRanks,
                  profiles::experiment(profiles::mpich2()).selector(rules),
                  body);
    const double cluster_s =
        run_timed(ctx, topo::GridSpec::single_cluster(16), kCollRanks,
                  profiles::experiment(profiles::mpich2()).selector(rules),
                  body);
    if (grid_s <= 0 || cluster_s <= 0)
      throw std::runtime_error("selector-ruled broadcast did nothing");
    ScenarioResult res;
    res.add("grid_s", grid_s, "s");
    res.add("cluster_s", cluster_s, "s");
    res.note = "multi-site -> hierarchical (" +
               harness::format_double(grid_s * 1e3, 1) +
               " ms), single-site -> scatter-ring (" +
               harness::format_double(cluster_s * 1e3, 1) + " ms)";
    return res;
  };
  reg.add(std::move(spec));
}

void register_builder_knobs(ScenarioRegistry& reg) {
  ScenarioSpec spec;
  spec.group = "coll";
  spec.name = "coll/builder-knobs";
  spec.description =
      "name-based builder knobs are byte-identical to the enum spelling "
      "(.bcast_algo(\"vandegeijn\") == .bcast(kVanDeGeijn))";
  spec.expected_metrics = {"makespan_s", "delta_s"};
  spec.ranks = kCollRanks;
  spec.run = [](const ScenarioContext& ctx) {
    const auto body = [](Rank& r) -> Task<void> {
      for (int i = 0; i < 3; ++i) {
        co_await coll::bcast(r, 0, 128e3);
        co_await coll::allreduce(r, 32e3);
      }
    };
    const double by_enum =
        run_timed(ctx, topo::GridSpec::rennes_nancy(8), kCollRanks,
                  profiles::experiment(profiles::mpich_madeleine())
                      .bcast(mpi::BcastAlgo::kVanDeGeijn)
                      .allreduce(mpi::AllreduceAlgo::kRabenseifner),
                  body);
    const double by_name =
        run_timed(ctx, topo::GridSpec::rennes_nancy(8), kCollRanks,
                  profiles::experiment(profiles::mpich_madeleine())
                      .bcast_algo("vandegeijn")
                      .allreduce_algo("rabenseifner"),
                  body);
    if (by_enum != by_name)
      throw std::runtime_error(
          "name-based knobs diverged from the enum spelling");
    bool threw = false;
    try {
      profiles::experiment(profiles::mpich2()).bcast_algo("no-such-algo");
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    if (!threw)
      throw std::runtime_error("unknown algorithm name did not throw");
    ScenarioResult res;
    res.add("makespan_s", by_name, "s");
    res.add("delta_s", by_enum - by_name, "s");
    res.note = "enum and name spellings identical at " +
               harness::format_double(by_name, 4) + " s";
    return res;
  };
  reg.add(std::move(spec));
}

}  // namespace

void register_coll_catalog(ScenarioRegistry& reg) {
  for (const auto& impl : profiles::all_implementations())
    register_verify(reg, impl);
  register_misrule(reg);
  register_equiv_bcast(reg);
  register_equiv_allreduce(reg);
  register_equiv_alltoall(reg);
  register_equiv_barrier(reg);
  register_decision_table(reg);
  register_selector_rules(reg);
  register_builder_knobs(reg);

  reg.set_renderer("coll", [](const auto& specs, const auto& results) {
    std::string out =
        "Collective selector verification (see `gridsim coll`):\n";
    for (std::size_t i = 0; i < specs.size(); ++i)
      out += "  " + variant_of(specs[i]->name) + ": " + results[i]->note +
             "\n";
    return out;
  });
}

}  // namespace gridsim::scenarios::detail
