#include "scenarios/catalog.hpp"

#include <cstdio>
#include <set>

#include "harness/campaign.hpp"
#include "scenarios/catalog_internal.hpp"

namespace gridsim::scenarios {

namespace detail {

std::vector<mpi::ImplProfile> profiles_with_tcp() {
  std::vector<mpi::ImplProfile> v;
  v.push_back(profiles::raw_tcp());
  for (auto& p : profiles::all_implementations()) v.push_back(p);
  return v;
}

std::string render_kernel_table(
    const std::string& title, const std::vector<std::string>& impl_names,
    const std::vector<std::map<npb::Kernel, double>>& per_impl,
    int precision) {
  std::vector<std::string> headers{"kernel"};
  for (const auto& n : impl_names) headers.push_back(n);
  std::vector<std::vector<std::string>> rows;
  for (npb::Kernel k : npb::all_kernels()) {
    rows.push_back({npb::name(k)});
    for (const auto& m : per_impl)
      rows.back().push_back(harness::format_double(m.at(k), precision));
  }
  return harness::render_table(title, headers, rows);
}

}  // namespace detail

const harness::ScenarioRegistry& paper_registry() {
  static const harness::ScenarioRegistry registry = [] {
    harness::ScenarioRegistry reg;
    detail::register_pingpong_catalog(reg);
    detail::register_slowstart_catalog(reg);
    detail::register_nas_catalog(reg);
    detail::register_apps_catalog(reg);
    detail::register_robust_catalog(reg);
    detail::register_mc_catalog(reg);
    detail::register_lint_catalog(reg);
    detail::register_coll_catalog(reg);
    return reg;
  }();
  return registry;
}

int run_and_print(const std::string& filter) {
  const auto& reg = paper_registry();
  const auto selected = reg.match(filter);
  if (selected.empty()) {
    std::fprintf(stderr, "no scenario matches '%s'\n", filter.c_str());
    return -1;
  }
  harness::CampaignOptions options;
  options.filter = filter;
  options.jobs = 1;
  options.digests = false;
  options.lint = false;  // bench shims: no recording overhead
  const auto report = harness::run_campaign(reg, options);

  std::set<std::string> seen;
  for (const auto& outcome : report.outcomes) {
    if (!seen.insert(outcome.group).second) continue;
    std::fputs(harness::render_group(reg, outcome.group, report).c_str(),
               stdout);
  }
  return static_cast<int>(report.failures());
}

}  // namespace gridsim::scenarios
