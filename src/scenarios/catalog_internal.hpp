// Internals shared by the catalog translation units. Each register_*
// function adds one slice of the paper's experiments to the registry;
// catalog.cpp calls them in the paper's order.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "npb/npb.hpp"
#include "profiles/profiles.hpp"

namespace gridsim::scenarios::detail {

/// Ping-pong figures and tables: fig3/5/6/7, table4, table5, plus the
/// buffer-size ablation and the MPICH-G2 extension.
void register_pingpong_catalog(harness::ScenarioRegistry& reg);

/// Slow-start studies: fig9, the pacing ablation, the TCP-algorithm
/// extension.
void register_slowstart_catalog(harness::ScenarioRegistry& reg);

/// NPB campaigns: table2, fig10..fig13, the collective/heterogeneity
/// ablations, the placement and traffic-matrix extensions.
void register_nas_catalog(harness::ScenarioRegistry& reg);

/// The ray2mesh application: table6, table7.
void register_apps_catalog(harness::ScenarioRegistry& reg);

/// Robustness under injected WAN faults: loss-episode sweeps per
/// implementation, RTT jitter, link flap, background cross traffic, and the
/// packet-level loss models (simfault).
void register_robust_catalog(harness::ScenarioRegistry& reg);

/// Model-checking targets for `gridsim mc`: small-rank wildcard-racing
/// workloads with interleaving-invariant metrics, plus a seeded deadlock
/// fixture. Also runnable (and digest-pinned) under the default
/// arrival-order arbiter like any other scenario.
void register_mc_catalog(harness::ScenarioRegistry& reg);

/// Lint fixtures for `gridsim lint` (docs/race-detection.md): one
/// deliberately racy wildcard workload (R1 fires, races_expected) and its
/// race-free twin whose candidate sends are happens-before-ordered through
/// a token, so the analyzer proves zero races and the model-checker's HB
/// persistent sets collapse the exploration to one execution.
void register_lint_catalog(harness::ScenarioRegistry& reg);

/// The collective-algorithm layer (`gridsim coll`, docs/collectives.md):
/// per-implementation performance-guideline sweeps that fail the campaign
/// on any violation, the deliberately mis-ruled negative fixture that must
/// be caught, registry-driven algorithm-equivalence sweeps, and the
/// selector / fluent-builder API surface.
void register_coll_catalog(harness::ScenarioRegistry& reg);

/// TCP baseline + the four implementations, in the paper's order.
std::vector<mpi::ImplProfile> profiles_with_tcp();

/// The implementation behind a "group/variant" scenario name.
inline std::string variant_of(const std::string& scenario_name) {
  const auto slash = scenario_name.find('/');
  return slash == std::string::npos ? scenario_name
                                    : scenario_name.substr(slash + 1);
}

/// Per-kernel seconds recovered from a scenario's metrics ("<kernel><suffix>").
inline std::map<npb::Kernel, double> kernel_metrics(
    const harness::ScenarioResult& res, const std::string& suffix) {
  std::map<npb::Kernel, double> out;
  for (npb::Kernel k : npb::all_kernels())
    out[k] = res.metric(npb::name(k) + suffix);
  return out;
}

/// Renders a kernel x implementation table of values.
std::string render_kernel_table(
    const std::string& title, const std::vector<std::string>& impl_names,
    const std::vector<std::map<npb::Kernel, double>>& per_impl,
    int precision = 2);

}  // namespace gridsim::scenarios::detail
