// Slow-start scenarios: Fig 9 (cold-connection convergence under bursty
// cross traffic), the pacing ablation (slow start + IS), and the
// congestion-algorithm extension.
#include <algorithm>

#include "harness/npb_campaign.hpp"
#include "harness/pingpong.hpp"
#include "scenarios/catalog_internal.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::scenarios::detail {

namespace {

using harness::ScenarioContext;
using harness::ScenarioRegistry;
using harness::ScenarioResult;
using harness::ScenarioSpec;
using profiles::TuningLevel;

/// The shared-bottleneck topology of the slow-start studies: Rennes--Nancy
/// with 1 Gbps site uplinks so the cross flow actually contends.
topo::GridSpec shared_bottleneck_spec() {
  auto spec = topo::GridSpec::rennes_nancy(2);
  for (auto& site : spec.sites) site.uplink_bps = 1e9;
  return spec;
}

harness::CrossTraffic fig9_cross() {
  harness::CrossTraffic cross;
  cross.burst_bytes = 24e6;
  cross.period = milliseconds(600);
  return cross;
}

/// 200 x 1 MB messages from cold connections; returns the series plus the
/// first time the per-message bandwidth durably exceeds 500 Mbps (-1 =
/// never) and the peak.
struct SlowstartSummary {
  std::vector<harness::SlowstartSample> series;
  double t500_s = -1;
  double peak_mbps = 0;
  double mean_mbps = 0;
};

SlowstartSummary slowstart_run(const profiles::ExperimentConfig& cfg,
                               const SimHooks& hooks) {
  SlowstartSummary out;
  out.series = harness::slowstart_series(shared_bottleneck_spec(),
                                         {0, 0, 1, 0}, cfg, 1e6, 200,
                                         fig9_cross(), hooks);
  for (const auto& s : out.series) {
    if (out.t500_s < 0 && s.mbps >= 500) out.t500_s = to_seconds(s.at);
    out.peak_mbps = std::max(out.peak_mbps, s.mbps);
    out.mean_mbps += s.mbps;
  }
  out.mean_mbps /= out.series.empty() ? 1 : double(out.series.size());
  return out;
}

std::string t500_str(double t500_s) {
  return t500_s < 0 ? "never" : harness::format_double(t500_s, 2);
}

// ---------------------------------------------------------------------------
// Fig 9: slow-start convergence per implementation.
// ---------------------------------------------------------------------------

void register_fig9(ScenarioRegistry& reg) {
  for (const auto& impl : profiles_with_tcp()) {
    ScenarioSpec spec;
    spec.group = "fig9";
    spec.name = "fig9/" + impl.name;
    spec.description =
        "slow start under bursty cross traffic -- " + impl.name;
    spec.expected_metrics = {"t500_s", "peak_mbps"};
    spec.run = [impl](const ScenarioContext& ctx) {
      const auto sum = slowstart_run(
          profiles::experiment(impl).tuning(TuningLevel::kFullyTuned),
          ctx.hooks);
      ScenarioResult res;
      res.add("t500_s", sum.t500_s, "s");
      res.add("peak_mbps", sum.peak_mbps, "Mbps");
      std::vector<std::vector<std::string>> rows;
      for (const auto& s : sum.series)
        rows.push_back({harness::format_double(to_seconds(s.at), 3),
                        harness::format_double(s.mbps, 1)});
      res.text = harness::render_csv(
          "Fig 9 series: " + impl.name + " (time s, Mbps)", {"t", "mbps"},
          rows);
      res.note = "t_500Mbps " + t500_str(sum.t500_s) + " s, peak " +
                 harness::format_double(sum.peak_mbps, 0) + " Mbps";
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer("fig9", [](const auto& specs, const auto& results) {
    const char* paper_t500[] = {"~4-5 (max)", "~4", "~2", "~4", "~4"};
    std::string out;
    std::vector<std::vector<std::string>> summary;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      out += results[i]->text;
      summary.push_back(
          {variant_of(specs[i]->name), t500_str(results[i]->metric("t500_s")),
           paper_t500[i],
           harness::format_double(results[i]->metric("peak_mbps"), 0)});
    }
    out += harness::render_table(
        "Fig 9 summary: time to reach 500 Mbps per-message bandwidth",
        {"impl", "t_500Mbps (s)", "paper (s)", "peak (Mbps)"}, summary);
    out +=
        "\nPaper shape: GridMPI reaches 500 Mbps ~2x sooner than the other\n"
        "implementations (pacing avoids the slow-start overshoot and burst\n"
        "losses); all implementations need seconds, not round trips.\n";
    return out;
  });
}

// ---------------------------------------------------------------------------
// Ablation: GridMPI's software pacing, isolated.
// ---------------------------------------------------------------------------

mpi::ImplProfile pacing_profile(bool pacing) {
  mpi::ImplProfile p = profiles::gridmpi();
  p.name = pacing ? "GridMPI (pacing on)" : "GridMPI (pacing off)";
  p.pacing = pacing;
  return p;
}

void register_ablation_pacing(ScenarioRegistry& reg) {
  for (bool pacing : {false, true}) {
    ScenarioSpec spec;
    spec.group = "ablation_pacing";
    spec.name = std::string("ablation_pacing/slowstart-") +
                (pacing ? "on" : "off");
    spec.description = std::string("Fig 9 slow-start scenario with pacing ") +
                       (pacing ? "on" : "off");
    spec.expected_metrics = {"t500_s"};
    spec.run = [pacing](const ScenarioContext& ctx) {
      const auto sum = slowstart_run(profiles::experiment(pacing_profile(pacing))
                                         .tuning(TuningLevel::kTcpTuned),
                                     ctx.hooks);
      ScenarioResult res;
      res.add("t500_s", sum.t500_s, "s");
      res.cells.push_back(pacing_profile(pacing).name);
      res.cells.push_back(t500_str(sum.t500_s));
      res.note = "t_500Mbps " + t500_str(sum.t500_s) + " s";
      return res;
    };
    reg.add(std::move(spec));
  }
  for (bool pacing : {false, true}) {
    ScenarioSpec spec;
    spec.group = "ablation_pacing";
    spec.name = std::string("ablation_pacing/is-") + (pacing ? "on" : "off");
    spec.description =
        std::string("IS class B on 8+8 nodes with pacing ") +
        (pacing ? "on" : "off");
    spec.expected_metrics = {"runtime_s"};
    spec.run = [pacing](const ScenarioContext& ctx) {
      const auto res_npb = harness::run_npb(
          topo::GridSpec::rennes_nancy(8), 16, npb::Kernel::kIS,
          npb::Class::kB,
          profiles::experiment(pacing_profile(pacing))
              .tuning(TuningLevel::kTcpTuned),
          0, ctx.hooks);
      ScenarioResult res;
      res.add("runtime_s", to_seconds(res_npb.makespan), "s");
      res.cells.push_back(pacing_profile(pacing).name);
      res.cells.push_back(
          harness::format_double(to_seconds(res_npb.makespan), 2));
      res.note = res.cells.back() + " s";
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer(
      "ablation_pacing", [](const auto& specs, const auto& results) {
        // Registration order: slowstart off/on, then IS off/on.
        std::string out = harness::render_table(
            "Ablation: pacing vs slow-start convergence",
            {"profile", "t_500Mbps (s)"},
            {{results[0]->cells.at(0), results[0]->cells.at(1)},
             {results[1]->cells.at(0), results[1]->cells.at(1)}});
        out += harness::render_table(
            "Ablation: pacing vs IS class B on 8+8 nodes",
            {"profile", "runtime (s)"},
            {{results[2]->cells.at(0), results[2]->cells.at(1)},
             {results[3]->cells.at(0), results[3]->cells.at(1)}});
        (void)specs;
        return out;
      });
}

// ---------------------------------------------------------------------------
// Extension: congestion-control algorithm under burst losses.
// ---------------------------------------------------------------------------

void register_ablation_tcp_algo(ScenarioRegistry& reg) {
  struct AlgoCase {
    const char* label;
    tcp::CongestionAlgo algo;
  };
  for (const AlgoCase c : {AlgoCase{"BIC", tcp::CongestionAlgo::kBic},
                           AlgoCase{"Reno", tcp::CongestionAlgo::kReno},
                           AlgoCase{"CUBIC", tcp::CongestionAlgo::kCubic}}) {
    ScenarioSpec spec;
    spec.group = "ablation_tcp_algo";
    spec.name = std::string("ablation_tcp_algo/") + c.label;
    spec.description =
        std::string("bulk transfer under burst losses with ") + c.label;
    spec.expected_metrics = {"t500_s", "mean_mbps"};
    const tcp::CongestionAlgo algo = c.algo;
    spec.run = [algo](const ScenarioContext& ctx) {
      const auto sum = slowstart_run(profiles::experiment(profiles::raw_tcp())
                                         .tuning(TuningLevel::kFullyTuned)
                                         .congestion(algo),
                                     ctx.hooks);
      ScenarioResult res;
      res.add("t500_s", sum.t500_s, "s");
      res.add("mean_mbps", sum.mean_mbps, "Mbps");
      res.note = "t_500Mbps " + t500_str(sum.t500_s) + " s, mean " +
                 harness::format_double(sum.mean_mbps, 0) + " Mbps";
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer(
      "ablation_tcp_algo", [](const auto& specs, const auto& results) {
        std::vector<std::vector<std::string>> rows;
        for (std::size_t i = 0; i < specs.size(); ++i)
          rows.push_back(
              {variant_of(specs[i]->name),
               t500_str(results[i]->metric("t500_s")),
               harness::format_double(results[i]->metric("mean_mbps"), 0)});
        std::string out = harness::render_table(
            "Extension: congestion control algorithm under burst losses",
            {"algorithm", "t_500Mbps (s)", "mean per-msg bandwidth (Mbps)"},
            rows);
        out +=
            "\nBIC's binary-increase recovery reclaims the window faster "
            "after a\nburst loss than Reno's linear growth; on long-RTT "
            "paths that is the\ndifference between seconds and tens of "
            "seconds of degraded\nbandwidth (the motivation for the "
            "2.6-series kernels adopting it).\n";
        return out;
      });
}

}  // namespace

void register_slowstart_catalog(ScenarioRegistry& reg) {
  register_fig9(reg);
  register_ablation_pacing(reg);
  register_ablation_tcp_algo(reg);
}

}  // namespace gridsim::scenarios::detail
