// Robustness scenarios: the four implementations under injected WAN faults
// (simfault). The paper measured on a shared RENATER backbone — loss,
// jitter and competing flows were the environment, not an option. These
// scenarios put that environment back under the tuned configurations and
// check that the ranking the paper establishes survives degraded networks.
//
// Every fault schedule derives its seed from ScenarioContext::seed, so
// `gridsim campaign --seed N` varies the injected faults and the campaign
// digests stay schedule-independent for a fixed seed.
#include <algorithm>
#include <string>
#include <vector>

#include "apps/ray2mesh.hpp"
#include "harness/pingpong.hpp"
#include "scenarios/catalog_internal.hpp"
#include "simtcp/packet_sim.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::scenarios::detail {

namespace {

using harness::ScenarioContext;
using harness::ScenarioRegistry;
using harness::ScenarioResult;
using harness::ScenarioSpec;
using profiles::TuningLevel;

/// Message series workload shared by the loss/flap/cross scenarios:
/// back-to-back 1 MB messages Rennes -> Nancy from cold connections, small
/// enough to keep the sweep cheap, long enough to cross several fault
/// episodes.
constexpr double kSeriesBytes = 1e6;
constexpr int kSeriesCount = 60;

struct SeriesStats {
  double mean_mbps = 0;
  double min_mbps = 0;
  int completed = 0;
};

SeriesStats run_series(const profiles::ExperimentConfig& cfg,
                       const SimHooks& hooks) {
  const auto series =
      harness::slowstart_series(topo::GridSpec::rennes_nancy(2), {0, 0, 1, 0},
                                cfg, kSeriesBytes, kSeriesCount, {}, hooks);
  SeriesStats out;
  out.completed = static_cast<int>(series.size());
  out.min_mbps = series.empty() ? 0 : series.front().mbps;
  for (const auto& s : series) {
    out.mean_mbps += s.mbps;
    out.min_mbps = std::min(out.min_mbps, s.mbps);
  }
  out.mean_mbps /= series.empty() ? 1 : double(series.size());
  return out;
}

// ---------------------------------------------------------------------------
// Loss-episode sweep per implementation.
// ---------------------------------------------------------------------------

constexpr double kLossRates[3] = {0.5, 2.0, 8.0};  // episodes per second

void register_loss_sweep(ScenarioRegistry& reg) {
  for (const auto& impl : profiles::all_implementations()) {
    ScenarioSpec spec;
    spec.group = "robust";
    spec.name = "robust/loss-" + impl.name;
    spec.description =
        "1 MB message series under a WAN loss-episode sweep -- " + impl.name;
    spec.expected_metrics = {"mbps_low", "mbps_mid", "mbps_high",
                             "mean_mbps"};
    spec.run = [impl](const ScenarioContext& ctx) {
      const char* labels[3] = {"mbps_low", "mbps_mid", "mbps_high"};
      ScenarioResult res;
      double mean = 0;
      for (int i = 0; i < 3; ++i) {
        simfault::LossEpisodeSpec episodes;
        episodes.rate_per_s = kLossRates[i];
        episodes.duration = milliseconds(40);
        episodes.stop_after = seconds(30);
        const auto stats =
            run_series(profiles::experiment(impl)
                           .tuning(TuningLevel::kFullyTuned)
                           .loss_episodes(episodes)
                           .fault_seed(ctx.seed * 11 +
                                       static_cast<std::uint64_t>(i)),
                       ctx.hooks);
        res.add(labels[i], stats.mean_mbps, "Mbps");
        mean += stats.mean_mbps;
      }
      res.add("mean_mbps", mean / 3, "Mbps");
      res.note = "mean over sweep " +
                 harness::format_double(mean / 3, 0) + " Mbps";
      return res;
    };
    reg.add(std::move(spec));
  }
}

// ---------------------------------------------------------------------------
// RTT jitter.
// ---------------------------------------------------------------------------

simfault::JitterSpec wan_jitter(double amplitude) {
  simfault::JitterSpec j;
  j.amplitude = amplitude;
  j.period = milliseconds(50);
  j.stop_after = seconds(60);
  return j;
}

void register_jitter(ScenarioRegistry& reg) {
  {
    ScenarioSpec spec;
    spec.group = "robust";
    spec.name = "robust/jitter-pingpong";
    spec.description =
        "grid ping-pong with +/-30% WAN delay variation -- MPICH2 tuned";
    spec.expected_metrics = {"latency_ms", "bandwidth_mbps"};
    spec.run = [](const ScenarioContext& ctx) {
      harness::PingpongOptions options;
      options.sizes = harness::pow2_sizes(1e3, 4e6);
      options.rounds = 10;
      const auto points = harness::pingpong_sweep(
          topo::GridSpec::rennes_nancy(2), {0, 0, 1, 0},
          profiles::experiment(profiles::mpich2())
              .tuning(TuningLevel::kFullyTuned)
              .jitter(wan_jitter(0.30))
              .fault_seed(ctx.seed * 17),
          options, ctx.hooks);
      double best_bw = 0;
      for (const auto& p : points)
        best_bw = std::max(best_bw, p.max_bandwidth_mbps);
      ScenarioResult res;
      res.add("latency_ms", to_milliseconds(points.front().min_one_way),
              "ms");
      res.add("bandwidth_mbps", best_bw, "Mbps");
      res.note = harness::format_double(
                     to_milliseconds(points.front().min_one_way), 2) +
                 " ms min one-way, peak " +
                 harness::format_double(best_bw, 0) + " Mbps";
      return res;
    };
    reg.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.group = "robust";
    spec.name = "robust/jitter-gridmpi";
    spec.description =
        "1 MB message series with +/-30% WAN delay variation -- GridMPI";
    spec.expected_metrics = {"mean_mbps", "min_mbps"};
    spec.run = [](const ScenarioContext& ctx) {
      const auto stats =
          run_series(profiles::experiment(profiles::gridmpi())
                         .tuning(TuningLevel::kFullyTuned)
                         .jitter(wan_jitter(0.30))
                         .fault_seed(ctx.seed * 19),
                     ctx.hooks);
      ScenarioResult res;
      res.add("mean_mbps", stats.mean_mbps, "Mbps");
      res.add("min_mbps", stats.min_mbps, "Mbps");
      res.note = "mean " + harness::format_double(stats.mean_mbps, 0) +
                 " Mbps, worst message " +
                 harness::format_double(stats.min_mbps, 0) + " Mbps";
      return res;
    };
    reg.add(std::move(spec));
  }
}

// ---------------------------------------------------------------------------
// Link flap.
// ---------------------------------------------------------------------------

void register_flap(ScenarioRegistry& reg) {
  {
    ScenarioSpec spec;
    spec.group = "robust";
    spec.name = "robust/flap-pingpong";
    spec.description =
        "1 MB message series across a mid-series WAN outage -- MPICH2";
    spec.expected_metrics = {"completed", "mean_mbps"};
    spec.run = [](const ScenarioContext& ctx) {
      simfault::FlapSpec flap;
      flap.down_at = seconds(1);
      flap.down_for = milliseconds(400);
      const auto stats =
          run_series(profiles::experiment(profiles::mpich2())
                         .tuning(TuningLevel::kFullyTuned)
                         .flap(flap)
                         .fault_seed(ctx.seed * 23),
                     ctx.hooks);
      ScenarioResult res;
      res.add("completed", stats.completed);
      res.add("mean_mbps", stats.mean_mbps, "Mbps");
      res.note = std::to_string(stats.completed) + "/" +
                 std::to_string(kSeriesCount) +
                 " messages through the outage, mean " +
                 harness::format_double(stats.mean_mbps, 0) + " Mbps";
      return res;
    };
    reg.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.group = "robust";
    spec.name = "robust/flap-ray2mesh";
    spec.description =
        "ray2mesh on the quad deployment with a repeating WAN flap -- "
        "GridMPI";
    spec.expected_metrics = {"total_time_s", "degraded_events"};
    spec.races_expected = true;  // master/worker self-scheduling races
    spec.run = [](const ScenarioContext& ctx) {
      apps::Ray2MeshConfig app;
      app.total_rays = 20'000;
      app.merge_traffic_bytes = 20e6;
      app.merge_compute_seconds = 5.0;
      app.init_write_seconds = 1.0;
      // Long, repeating outages so some inevitably overlap the work
      // distribution and merge phases' WAN transfers.
      simfault::FlapSpec flap;
      flap.down_at = seconds(2);
      flap.down_for = seconds(2);
      flap.repeat_every = seconds(6);
      flap.repeats = 5;
      const auto result = apps::run_ray2mesh(
          topo::GridSpec::ray2mesh_quad(2), 0,
          profiles::experiment(profiles::gridmpi())
              .tuning(TuningLevel::kFullyTuned)
              .flap(flap)
              .fault_seed(ctx.seed * 29),
          app, ctx.hooks);
      ScenarioResult res;
      res.add("total_time_s", to_seconds(result.total_time), "s");
      res.add("degraded_events", result.degraded_progress_events);
      res.note = harness::format_double(to_seconds(result.total_time), 1) +
                 " s total, " +
                 std::to_string(result.degraded_progress_events) +
                 " degraded-progress events";
      return res;
    };
    reg.add(std::move(spec));
  }
}

// ---------------------------------------------------------------------------
// Background cross traffic.
// ---------------------------------------------------------------------------

void register_cross(ScenarioRegistry& reg) {
  ScenarioSpec spec;
  spec.group = "robust";
  spec.name = "robust/cross-traffic";
  spec.description =
      "1 MB message series against seeded background WAN bursts -- GridMPI";
  spec.expected_metrics = {"mean_mbps", "min_mbps"};
  spec.run = [](const ScenarioContext& ctx) {
    simfault::CrossTrafficSpec cross;
    cross.flows = 2;
    cross.stop_after = seconds(30);
    const auto stats = run_series(profiles::experiment(profiles::gridmpi())
                                      .tuning(TuningLevel::kFullyTuned)
                                      .cross_traffic(cross)
                                      .fault_seed(ctx.seed * 31),
                                  ctx.hooks);
    ScenarioResult res;
    res.add("mean_mbps", stats.mean_mbps, "Mbps");
    res.add("min_mbps", stats.min_mbps, "Mbps");
    res.note = "mean " + harness::format_double(stats.mean_mbps, 0) +
               " Mbps under background bursts";
    return res;
  };
  reg.add(std::move(spec));
}

// ---------------------------------------------------------------------------
// Packet-level loss models.
// ---------------------------------------------------------------------------

void register_packet_loss(ScenarioRegistry& reg) {
  ScenarioSpec spec;
  spec.group = "robust";
  spec.name = "robust/packet-loss";
  spec.description =
      "packet-level 8 MB transfer under i.i.d. and Gilbert-Elliott loss";
  spec.expected_metrics = {"iid_low_s", "iid_mid_s", "iid_high_s", "ge_s",
                           "retransmits"};
  spec.run = [](const ScenarioContext& ctx) {
    constexpr double kBytes = 8e6;
    tcp::PacketSimConfig base;
    base.one_way = microseconds(5800);  // the paper's grid path
    int retransmits = 0;
    ScenarioResult res;
    const double iid_rates[3] = {0.001, 0.01, 0.05};
    const char* labels[3] = {"iid_low_s", "iid_mid_s", "iid_high_s"};
    for (int i = 0; i < 3; ++i) {
      tcp::PacketSimConfig cfg = base;
      cfg.loss = simfault::PacketLossSpec::iid(
          iid_rates[i], ctx.seed * 37 + static_cast<std::uint64_t>(i));
      const auto r = tcp::packet_level_transfer(kBytes, cfg, ctx.hooks);
      res.add(labels[i], to_seconds(r.completion), "s");
      retransmits += r.retransmits;
    }
    tcp::PacketSimConfig ge = base;
    ge.loss = simfault::PacketLossSpec::gilbert_elliott(0.01, 0.25, 0.30,
                                                        ctx.seed * 41);
    const auto r = tcp::packet_level_transfer(kBytes, ge, ctx.hooks);
    res.add("ge_s", to_seconds(r.completion), "s");
    retransmits += r.retransmits;
    res.add("retransmits", retransmits);
    res.note = "GE-burst completion " +
               harness::format_double(to_seconds(r.completion), 2) + " s, " +
               std::to_string(retransmits) + " retransmits over all models";
    return res;
  };
  reg.add(std::move(spec));
}

}  // namespace

void register_robust_catalog(ScenarioRegistry& reg) {
  register_loss_sweep(reg);
  register_jitter(reg);
  register_flap(reg);
  register_cross(reg);
  register_packet_loss(reg);

  reg.set_renderer("robust", [](const auto& specs, const auto& results) {
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < specs.size(); ++i)
      rows.push_back({variant_of(specs[i]->name), results[i]->note});
    std::string out = harness::render_table(
        "Robustness: tuned implementations under injected WAN faults",
        {"scenario", "outcome"}, rows);
    out +=
        "\nEvery fault schedule is a pure function of the campaign seed;\n"
        "rerun with --seed N to sample a different WAN. The paper's tuned\n"
        "configurations should degrade gracefully, not collapse: transfers\n"
        "complete once faults clear and GridMPI's pacing keeps its edge\n"
        "under loss episodes.\n";
    return out;
  });
}

}  // namespace gridsim::scenarios::detail
