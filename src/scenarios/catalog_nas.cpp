// NPB scenarios: the communication-feature table (2), the campaign figures
// (10..13), the collective and heterogeneity ablations, and the placement
// and traffic-matrix extensions.
//
// The paper runs NPB 2.4 class B on 16 processes (8+8 across the WAN, or
// all 16 in one cluster) and on 4 processes, with the TCP tuning of
// Section 4.2.1 applied (the campaign postdates the tuning study).
#include <algorithm>
#include <cstdio>

#include "collectives/collectives.hpp"
#include "harness/npb_campaign.hpp"
#include "mpi/mpi.hpp"
#include "scenarios/catalog_internal.hpp"
#include "simcore/simulation.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::scenarios::detail {

namespace {

using harness::ScenarioContext;
using harness::ScenarioRegistry;
using harness::ScenarioResult;
using harness::ScenarioSpec;
using profiles::TuningLevel;

profiles::ExperimentConfig nas_config(const mpi::ImplProfile& impl) {
  return profiles::experiment(impl).tuning(TuningLevel::kTcpTuned);
}

/// Runtime of every kernel for one implementation on one deployment.
std::map<npb::Kernel, double> nas_suite_seconds(
    const topo::GridSpec& spec, int nranks, npb::Class cls,
    const mpi::ImplProfile& impl, const SimHooks& hooks) {
  std::map<npb::Kernel, double> out;
  const auto cfg = nas_config(impl);
  for (npb::Kernel k : npb::all_kernels()) {
    const auto res = harness::run_npb(spec, nranks, k, cls, cfg, 0, hooks);
    out[k] = to_seconds(res.makespan);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Table 2: NPB communication features, per kernel.
// ---------------------------------------------------------------------------

std::string size_range(const std::map<long long, std::uint64_t>& sizes) {
  if (sizes.empty()) return "-";
  const auto lo = sizes.begin()->first;
  const auto hi = sizes.rbegin()->first;
  if (lo == hi) return harness::format_bytes(double(lo)) + "B";
  return harness::format_bytes(double(lo)) + "B.." +
         harness::format_bytes(double(hi)) + "B";
}

void register_table2(ScenarioRegistry& reg) {
  for (npb::Kernel k : npb::all_kernels()) {
    ScenarioSpec spec;
    spec.group = "table2";
    spec.name = "table2/" + npb::name(k);
    spec.description =
        "NPB communication features, 16 ranks -- " + npb::name(k);
    spec.expected_metrics = {"messages"};
    spec.run = [k](const ScenarioContext& ctx) {
      // The paper's Table 2 mixes class A (counts from [11]) and class B
      // (their instrumented sizes); we report class B except IS, whose
      // 30 MB aggregate matches class A.
      const npb::Class cls =
          (k == npb::Kernel::kIS) ? npb::Class::kA : npb::Class::kB;
      const auto res =
          harness::run_npb(topo::GridSpec::single_cluster(16), 16, k, cls,
                           nas_config(profiles::mpich2()), 0, ctx.hooks);
      const auto& t = res.traffic;
      const bool collective = t.collective_messages > t.p2p_messages;
      const std::uint64_t count =
          collective ? t.collective_messages : t.p2p_messages;
      ScenarioResult out;
      out.add("messages", double(count));
      out.cells.push_back(collective ? "Collective" : "P. to P.");
      out.cells.push_back(std::to_string(count));
      out.cells.push_back(
          size_range(collective ? t.collective_sizes : t.p2p_sizes));
      out.note = out.cells[0] + ", " + out.cells[1] + " messages";
      return out;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer("table2", [](const auto& specs, const auto& results) {
    struct PaperRow {
      const char* type;
      const char* sizes;
    };
    const PaperRow paper[] = {
        {"P2P(coll impl)", "192 x 8 B + 68 x 80 B"},                // EP
        {"P. to P.", "126479 x 8 B + 86944 x 147 kB"},              // CG
        {"P. to P.", "50809 x 4 B .. 130 kB"},                      // MG
        {"P. to P.", "1.2M x 960..1040 B"},                         // LU
        {"P. to P.", "57744 x 45-54 kB + 96336 x 100-160 kB"},      // SP
        {"P. to P.", "28944 x 26 kB + 48336 x 146-156 kB"},         // BT
        {"Collective", "176 x 1 kB + 176 x 30 MB(aggregate)"},      // IS
        {"Collective", "320 x 1 B + 352 x 128 kB"},                 // FT
    };
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < specs.size(); ++i)
      rows.push_back({variant_of(specs[i]->name), results[i]->cells.at(0),
                      results[i]->cells.at(1), results[i]->cells.at(2),
                      paper[i].type, paper[i].sizes});
    std::string out = harness::render_table(
        "Table 2: NPB communication features (measured on our skeletons, 16 "
        "ranks)",
        {"kernel", "type", "messages", "sizes", "paper type", "paper counts"},
        rows);
    out +=
        "\nNote: paper counts aggregate differently per source ([11] "
        "counts\nclass A point-to-point sends; IS volume is the aggregate "
        "alltoallv\npayload). The kernel ordering by message count and the "
        "size bands\nare the comparable quantities.\n";
    return out;
  });
}

// ---------------------------------------------------------------------------
// Figs 10/11: class B runtimes + speed-up relative to MPICH2.
// ---------------------------------------------------------------------------

struct SuiteFigure {
  const char* group;
  int nodes_per_site;
  int nranks;
  const char* runtime_title;
  const char* relative_title;
  const char* paper_note;  ///< may be empty
};

void register_suite_figure(ScenarioRegistry& reg, const SuiteFigure& fig) {
  for (const auto& impl : profiles::all_implementations()) {
    ScenarioSpec spec;
    spec.group = fig.group;
    spec.name = std::string(fig.group) + "/" + impl.name;
    spec.description = std::string("NPB class B suite, ") +
                       std::to_string(fig.nranks) + " ranks across the WAN -- " +
                       impl.name;
    for (npb::Kernel k : npb::all_kernels())
      spec.expected_metrics.push_back(npb::name(k) + "_s");
    const int nodes = fig.nodes_per_site;
    const int nranks = fig.nranks;
    spec.run = [impl, nodes, nranks](const ScenarioContext& ctx) {
      const auto seconds = nas_suite_seconds(
          topo::GridSpec::rennes_nancy(nodes), nranks, npb::Class::kB, impl,
          ctx.hooks);
      ScenarioResult res;
      for (const auto& [k, s] : seconds) res.add(npb::name(k) + "_s", s, "s");
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer(fig.group, [fig](const auto& specs, const auto& results) {
    std::vector<std::string> names;
    std::vector<std::map<npb::Kernel, double>> seconds;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      names.push_back(variant_of(specs[i]->name));
      seconds.push_back(kernel_metrics(*results[i], "_s"));
    }
    // Relative to MPICH2 (reference = 1.0, the first registered impl).
    std::vector<std::map<npb::Kernel, double>> relative = seconds;
    for (auto& m : relative)
      for (auto& [k, v] : m) v = seconds[0].at(k) / v;
    std::string out =
        render_kernel_table(fig.runtime_title, names, seconds, 1);
    out += render_kernel_table(fig.relative_title, names, relative);
    out += fig.paper_note;
    return out;
  });
}

// ---------------------------------------------------------------------------
// Figs 12/13: grid deployment vs cluster deployment ratios.
// ---------------------------------------------------------------------------

struct RatioFigure {
  const char* group;
  int cluster_nodes;
  int cluster_ranks;
  const char* metric_suffix;
  const char* title;
  const char* paper_note;
};

void register_ratio_figure(ScenarioRegistry& reg, const RatioFigure& fig) {
  for (const auto& impl : profiles::all_implementations()) {
    ScenarioSpec spec;
    spec.group = fig.group;
    spec.name = std::string(fig.group) + "/" + impl.name;
    spec.description = std::string("NPB class B, 8+8 grid nodes vs ") +
                       std::to_string(fig.cluster_nodes) +
                       " cluster nodes -- " + impl.name;
    for (npb::Kernel k : npb::all_kernels())
      spec.expected_metrics.push_back(npb::name(k) + fig.metric_suffix);
    const int cluster_nodes = fig.cluster_nodes;
    const int cluster_ranks = fig.cluster_ranks;
    const std::string suffix = fig.metric_suffix;
    spec.run = [impl, cluster_nodes, cluster_ranks,
                suffix](const ScenarioContext& ctx) {
      const auto grid = nas_suite_seconds(topo::GridSpec::rennes_nancy(8), 16,
                                          npb::Class::kB, impl, ctx.hooks);
      const auto cluster = nas_suite_seconds(
          topo::GridSpec::single_cluster(cluster_nodes), cluster_ranks,
          npb::Class::kB, impl, ctx.hooks);
      ScenarioResult res;
      for (npb::Kernel k : npb::all_kernels())
        res.add(npb::name(k) + suffix, cluster.at(k) / grid.at(k));
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer(fig.group, [fig](const auto& specs, const auto& results) {
    std::vector<std::string> names;
    std::vector<std::map<npb::Kernel, double>> ratios;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      names.push_back(variant_of(specs[i]->name));
      ratios.push_back(kernel_metrics(*results[i], fig.metric_suffix));
    }
    std::string out = render_kernel_table(fig.title, names, ratios);
    out += fig.paper_note;
    return out;
  });
}

// ---------------------------------------------------------------------------
// Ablation: collective algorithm suites on the grid.
// ---------------------------------------------------------------------------

void register_ablation_collectives(ScenarioRegistry& reg) {
  struct BcastCase {
    const char* slug;
    const char* label;
    const char* algo;  ///< registry name (collectives/registry.hpp)
  };
  for (const BcastCase c :
       {BcastCase{"bcast-binomial", "binomial tree", "binomial"},
        BcastCase{"bcast-vandegeijn",
                  "scatter + ring allgather (WAN-oblivious)", "vandegeijn"},
        BcastCase{"bcast-pipeline", "segmented pipeline chain", "pipeline"},
        BcastCase{"bcast-hierarchical",
                  "hierarchical, parallel WAN streams (GridMPI)",
                  "hierarchical"}}) {
    ScenarioSpec spec;
    spec.group = "ablation_collectives";
    spec.name = std::string("ablation_collectives/") + c.slug;
    spec.description =
        std::string("FT class B on 8+8 nodes, bcast = ") + c.label;
    spec.expected_metrics = {"ft_s"};
    const std::string label = c.label;
    const std::string algo = c.algo;
    spec.run = [label, algo](const ScenarioContext& ctx) {
      const auto res_npb = harness::run_npb(
          topo::GridSpec::rennes_nancy(8), 16, npb::Kernel::kFT,
          npb::Class::kB,
          profiles::experiment(profiles::mpich2())
              .bcast_algo(algo)
              .tuning(TuningLevel::kTcpTuned),
          0, ctx.hooks);
      ScenarioResult res;
      res.add("ft_s", to_seconds(res_npb.makespan), "s");
      res.cells.push_back(label);
      res.cells.push_back(
          harness::format_double(to_seconds(res_npb.makespan), 2));
      res.note = res.cells.back() + " s";
      return res;
    };
    reg.add(std::move(spec));
  }

  struct ArCase {
    const char* slug;
    const char* label;
    const char* algo;  ///< registry name (collectives/registry.hpp)
  };
  for (const ArCase c :
       {ArCase{"allreduce-recursive-doubling", "recursive doubling",
               "recursive-doubling"},
        ArCase{"allreduce-rabenseifner", "Rabenseifner", "rabenseifner"},
        ArCase{"allreduce-hierarchical", "hierarchical (GridMPI)",
               "hierarchical"}}) {
    ScenarioSpec spec;
    spec.group = "ablation_collectives";
    spec.name = std::string("ablation_collectives/") + c.slug;
    spec.description =
        std::string("100 x 64 kB allreduce on 8+8 nodes, allreduce = ") +
        c.label;
    spec.expected_metrics = {"total_s"};
    const std::string label = c.label;
    const std::string algo = c.algo;
    spec.run = [label, algo](const ScenarioContext& ctx) {
      const profiles::ExperimentConfig cfg =
          profiles::experiment(profiles::mpich2())
              .allreduce_algo(algo)
              .tuning(TuningLevel::kTcpTuned);
      // 100 back-to-back 64 kB allreduces over 8+8 nodes, timed directly
      // on a raw Simulation (so the hooks are invoked manually).
      Simulation sim;
      if (ctx.hooks.on_start) ctx.hooks.on_start(sim);
      topo::Grid grid(sim, topo::GridSpec::rennes_nancy(8));
      mpi::Job job(grid, mpi::block_placement(grid, 16), cfg.profile,
                   cfg.kernel);
      std::vector<SimTime> finish(16, 0);
      for (int rank = 0; rank < 16; ++rank) {
        sim.spawn([](mpi::Rank& r, SimTime* out) -> Task<void> {
          for (int i = 0; i < 100; ++i) co_await coll::allreduce(r, 64e3);
          *out = r.sim().now();
        }(job.rank(rank), &finish[static_cast<size_t>(rank)]));
      }
      sim.run();
      if (ctx.hooks.on_finish) ctx.hooks.on_finish(sim);
      const SimTime makespan = *std::max_element(finish.begin(), finish.end());
      ScenarioResult res;
      res.add("total_s", to_seconds(makespan), "s");
      res.cells.push_back(label);
      res.cells.push_back(harness::format_double(to_seconds(makespan), 2));
      res.note = res.cells.back() + " s";
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer(
      "ablation_collectives", [](const auto& specs, const auto& results) {
        // Registration order: four bcast cases, then three allreduce cases.
        std::vector<std::vector<std::string>> bcast_rows, ar_rows;
        for (std::size_t i = 0; i < specs.size(); ++i) {
          auto& rows = results[i]->has_metric("ft_s") ? bcast_rows : ar_rows;
          rows.push_back({results[i]->cells.at(0), results[i]->cells.at(1)});
        }
        std::string out = harness::render_table(
            "Ablation: bcast algorithm vs FT class B on 8+8 nodes",
            {"bcast algorithm", "FT runtime (s)"}, bcast_rows);
        out += harness::render_table(
            "Ablation: allreduce algorithm, 100 x 64 kB allreduce on 8+8 "
            "nodes",
            {"allreduce algorithm", "total (s)"}, ar_rows);
        return out;
      });
}

// ---------------------------------------------------------------------------
// Extension: heterogeneity management (native fabric + gateway sweep).
// ---------------------------------------------------------------------------

topo::GridSpec hetero_spec(bool native) {
  auto spec = topo::GridSpec::rennes_nancy(8);
  if (native) {
    spec.prefer_native_intra = true;
    for (auto& site : spec.sites) site.native_bps = 2e9;  // Myrinet 2000
  }
  return spec;
}

const std::vector<npb::Kernel>& hetero_kernels() {
  static const std::vector<npb::Kernel> kernels = {
      npb::Kernel::kCG, npb::Kernel::kLU, npb::Kernel::kMG, npb::Kernel::kBT};
  return kernels;
}

const std::vector<double>& gateway_costs_us() {
  static const std::vector<double> costs = {0.0,   25.0,  50.0,
                                            100.0, 200.0, 400.0};
  return costs;
}

std::string gw_metric(double gw_us) {
  return "gw" + harness::format_double(gw_us, 0) + "us_s";
}

void register_ablation_heterogeneity(ScenarioRegistry& reg) {
  {
    ScenarioSpec spec;
    spec.group = "ablation_heterogeneity";
    spec.name = "ablation_heterogeneity/fabric";
    spec.description =
        "Myrinet-class intra-site fabric vs ethernet, MPICH-Madeleine, NPB "
        "class A 8+8";
    for (npb::Kernel k : hetero_kernels()) {
      spec.expected_metrics.push_back(npb::name(k) + "_eth_s");
      spec.expected_metrics.push_back(npb::name(k) + "_native_s");
    }
    spec.run = [](const ScenarioContext& ctx) {
      const auto cfg = profiles::experiment(profiles::mpich_madeleine())
                           .tuning(TuningLevel::kTcpTuned)
                           .build();
      ScenarioResult res;
      for (npb::Kernel k : hetero_kernels()) {
        const auto eth = harness::run_npb(hetero_spec(false), 16, k,
                                          npb::Class::kA, cfg, 0, ctx.hooks);
        const auto mx = harness::run_npb(hetero_spec(true), 16, k,
                                         npb::Class::kA, cfg, 0, ctx.hooks);
        res.add(npb::name(k) + "_eth_s", to_seconds(eth.makespan), "s");
        res.add(npb::name(k) + "_native_s", to_seconds(mx.makespan), "s");
      }
      return res;
    };
    reg.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.group = "ablation_heterogeneity";
    spec.name = "ablation_heterogeneity/gateway";
    spec.description =
        "gateway-cost sweep: per-message WAN overhead before the native "
        "fabric is a net loss on CG";
    spec.expected_metrics = {"baseline_s"};
    for (double gw_us : gateway_costs_us())
      spec.expected_metrics.push_back(gw_metric(gw_us));
    spec.run = [](const ScenarioContext& ctx) {
      const auto base = profiles::experiment(profiles::mpich_madeleine())
                            .tuning(TuningLevel::kTcpTuned);
      const auto eth_cg =
          harness::run_npb(hetero_spec(false), 16, npb::Kernel::kCG,
                           npb::Class::kA, base, 0, ctx.hooks);
      ScenarioResult res;
      res.add("baseline_s", to_seconds(eth_cg.makespan), "s");
      for (double gw_us : gateway_costs_us()) {
        auto cfg = base;
        cfg.wan_extra_overhead(
            microseconds(static_cast<std::int64_t>(gw_us)));
        const auto mx =
            harness::run_npb(hetero_spec(true), 16, npb::Kernel::kCG,
                             npb::Class::kA, cfg, 0, ctx.hooks);
        res.add(gw_metric(gw_us), to_seconds(mx.makespan), "s");
      }
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer(
      "ablation_heterogeneity", [](const auto& specs, const auto& results) {
        (void)specs;
        const auto& fabric = *results.at(0);
        std::vector<std::vector<std::string>> rows;
        for (npb::Kernel k : hetero_kernels()) {
          const double eth = fabric.metric(npb::name(k) + "_eth_s");
          const double mx = fabric.metric(npb::name(k) + "_native_s");
          rows.push_back({npb::name(k), harness::format_double(eth, 2),
                          harness::format_double(mx, 2),
                          harness::format_double(eth / mx, 2)});
        }
        std::string out = harness::render_table(
            "Extension: Myrinet-class intra-site fabric, MPICH-Madeleine, "
            "NPB class A 8+8",
            {"kernel", "ethernet (s)", "native intra (s)", "speed-up"}, rows);

        const auto& gw = *results.at(1);
        const double baseline = gw.metric("baseline_s");
        std::vector<std::vector<std::string>> sweep;
        for (double gw_us : gateway_costs_us()) {
          const double s = gw.metric(gw_metric(gw_us));
          sweep.push_back({harness::format_double(gw_us, 0) + " us",
                           harness::format_double(s, 2),
                           s < baseline ? "yes" : "no"});
        }
        out += harness::render_table(
            "Extension: gateway overhead sweep, CG class A (ethernet "
            "baseline: " +
                harness::format_double(baseline, 2) + " s)",
            {"gateway cost/msg", "runtime (s)", "native still wins?"}, sweep);
        return out;
      });
}

// ---------------------------------------------------------------------------
// Extension: block vs cyclic task placement.
// ---------------------------------------------------------------------------

Task<void> placement_kernel_body(mpi::Rank& rank, npb::Kernel k,
                                 SimTime* out) {
  co_await npb::run_kernel(rank, k, npb::Class::kA);
  *out = rank.sim().now();
}

double run_with_placement(npb::Kernel k, bool cyclic, const SimHooks& hooks) {
  Simulation sim;
  if (hooks.on_start) hooks.on_start(sim);
  topo::Grid grid(sim, topo::GridSpec::rennes_nancy(8));
  const auto cfg = nas_config(profiles::mpich2());
  const auto placement = cyclic ? mpi::cyclic_placement(grid, 16)
                                : mpi::block_placement(grid, 16);
  mpi::Job job(grid, placement, cfg.profile, cfg.kernel);
  std::vector<SimTime> finish(16, 0);
  for (int r = 0; r < 16; ++r)
    sim.spawn(placement_kernel_body(job.rank(r), k,
                                    &finish[static_cast<size_t>(r)]));
  sim.run();
  if (hooks.on_finish) hooks.on_finish(sim);
  return to_seconds(*std::max_element(finish.begin(), finish.end()));
}

void register_ext_placement(ScenarioRegistry& reg) {
  for (npb::Kernel k : {npb::Kernel::kCG, npb::Kernel::kMG, npb::Kernel::kLU,
                        npb::Kernel::kSP, npb::Kernel::kBT}) {
    ScenarioSpec spec;
    spec.group = "ext_placement";
    spec.name = "ext_placement/" + npb::name(k);
    spec.description =
        "block vs cyclic placement, class A, 8+8 nodes -- " + npb::name(k);
    spec.expected_metrics = {"block_s", "cyclic_s"};
    spec.run = [k](const ScenarioContext& ctx) {
      const double block = run_with_placement(k, false, ctx.hooks);
      const double cyclic = run_with_placement(k, true, ctx.hooks);
      ScenarioResult res;
      res.add("block_s", block, "s");
      res.add("cyclic_s", cyclic, "s");
      res.note = "cyclic/block " + harness::format_double(cyclic / block, 2);
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer(
      "ext_placement", [](const auto& specs, const auto& results) {
        std::vector<std::vector<std::string>> rows;
        for (std::size_t i = 0; i < specs.size(); ++i) {
          const double block = results[i]->metric("block_s");
          const double cyclic = results[i]->metric("cyclic_s");
          rows.push_back({variant_of(specs[i]->name),
                          harness::format_double(block, 2),
                          harness::format_double(cyclic, 2),
                          harness::format_double(cyclic / block, 2)});
        }
        std::string out = harness::render_table(
            "Extension: block vs cyclic placement, NPB class A, 8+8 nodes "
            "(MPICH2)",
            {"kernel", "block (s)", "cyclic (s)", "cyclic/block"}, rows);
        out +=
            "\nBlock placement keeps mesh neighbours on the same cluster; "
            "cyclic\nplacement forces nearest-neighbour traffic across the "
            "11.6 ms WAN.\nThe gap is the value of topology-aware task "
            "placement.\n";
        return out;
      });
}

// ---------------------------------------------------------------------------
// Extension: traffic locality per kernel.
// ---------------------------------------------------------------------------

Task<void> traffic_kernel_body(mpi::Rank* r, npb::Kernel k) {
  co_await npb::run_kernel(*r, k, npb::Class::kA);
}

void register_ext_traffic_matrix(ScenarioRegistry& reg) {
  for (npb::Kernel k : npb::all_kernels()) {
    ScenarioSpec spec;
    spec.group = "ext_traffic_matrix";
    spec.name = "ext_traffic_matrix/" + npb::name(k);
    spec.description =
        "traffic locality, class A, 8+8 block placement -- " + npb::name(k);
    spec.expected_metrics = {"lan_mb", "wan_mb", "wan_share_pct",
                             "wan_pairs"};
    spec.run = [k](const ScenarioContext& ctx) {
      Simulation sim;
      if (ctx.hooks.on_start) ctx.hooks.on_start(sim);
      topo::Grid grid(sim, topo::GridSpec::rennes_nancy(8));
      const auto cfg = nas_config(profiles::mpich2());
      mpi::Job job(grid, mpi::block_placement(grid, 16), cfg.profile,
                   cfg.kernel);
      for (int r = 0; r < 16; ++r)
        sim.spawn(traffic_kernel_body(&job.rank(r), k));
      sim.run();
      if (ctx.hooks.on_finish) ctx.hooks.on_finish(sim);
      double lan = 0, wan = 0;
      std::uint64_t wan_pairs = 0;
      for (const auto& [pair, bytes] : job.traffic().pair_bytes) {
        const bool crosses = grid.site_of(job.rank(pair.first).host()) !=
                             grid.site_of(job.rank(pair.second).host());
        (crosses ? wan : lan) += bytes;
        if (crosses) ++wan_pairs;
      }
      ScenarioResult res;
      res.add("lan_mb", lan / 1e6, "MB");
      res.add("wan_mb", wan / 1e6, "MB");
      res.add("wan_share_pct",
              (lan + wan) > 0 ? wan / (lan + wan) * 100 : 0, "%");
      res.add("wan_pairs", double(wan_pairs));
      res.note = "WAN share " +
                 harness::format_double(res.metric("wan_share_pct"), 1) + "%";
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer(
      "ext_traffic_matrix", [](const auto& specs, const auto& results) {
        std::vector<std::vector<std::string>> rows;
        for (std::size_t i = 0; i < specs.size(); ++i) {
          char pairs[16];
          std::snprintf(pairs, sizeof pairs, "%.0f",
                        results[i]->metric("wan_pairs"));
          rows.push_back(
              {variant_of(specs[i]->name),
               harness::format_double(results[i]->metric("lan_mb"), 1),
               harness::format_double(results[i]->metric("wan_mb"), 1),
               harness::format_double(results[i]->metric("wan_share_pct"),
                                      1) +
                   "%",
               pairs});
        }
        std::string out = harness::render_table(
            "Extension: traffic locality per kernel, class A, 8+8 block "
            "placement",
            {"kernel", "intra-site (MB)", "WAN (MB)", "WAN share",
             "WAN pairs"},
            rows);
        out +=
            "\nKernels whose WAN share is small and in large messages (LU, "
            "BT,\nSP) tolerate the grid; kernels pushing collective volume "
            "across the\nWAN (IS, FT) or many small messages (CG) do not -- "
            "Fig 12's story\nin bytes.\n";
        return out;
      });
}

}  // namespace

void register_nas_catalog(ScenarioRegistry& reg) {
  register_table2(reg);
  register_suite_figure(
      reg, {"fig10", 8, 16,
            "NPB class B runtimes, 8+8 nodes across the WAN (s)",
            "Fig 10: speed-up relative to MPICH2 (>1 = faster than MPICH2)",
            "\nPaper shape: GridMPI >> 1 on FT and IS; near 1 elsewhere;\n"
            "MPICH-Madeleine degraded on BT/SP (timed out in the paper).\n"});
  register_suite_figure(
      reg, {"fig11", 2, 4,
            "NPB class B runtimes, 2+2 nodes across the WAN (s)",
            "Fig 11: speed-up relative to MPICH2 (>1 = faster than MPICH2)",
            ""});
  register_ratio_figure(
      reg, {"fig12", 16, 16, "_ratio",
            "Fig 12: 8+8 grid nodes relative to 16 cluster nodes (1.0 = no "
            "WAN penalty)",
            "\nPaper shape: EP ~1; CG/MG low; LU/SP/BT high; IS low; FT "
            "better\nunder GridMPI. Grid overhead < 20% for about half the "
            "kernels.\n"});
  register_ratio_figure(
      reg, {"fig13", 4, 4, "_speedup",
            "Fig 13: speed-up of 8+8 grid nodes over 4 cluster nodes (4.0 = "
            "perfect)",
            "\nPaper shape: LU/BT near 4; FT/SP >= 3; CG/MG small; all > 1 "
            "--\nrunning on the grid pays off despite the latency.\n"});
  register_ablation_collectives(reg);
  register_ablation_heterogeneity(reg);
  register_ext_placement(reg);
  register_ext_traffic_matrix(reg);
}

}  // namespace gridsim::scenarios::detail
