// Ping-pong scenarios: the bandwidth figures (3, 5, 6, 7), the latency
// table (4), the threshold study (Table 5), the socket-buffer ablation and
// the MPICH-G2 extension. One scenario per implementation per artifact;
// the group renderers reassemble the paper's tables/charts from the
// per-implementation results.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "harness/pingpong.hpp"
#include "scenarios/catalog_internal.hpp"
#include "simtcp/tcp.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::scenarios::detail {

namespace {

using harness::ScenarioContext;
using harness::ScenarioRegistry;
using harness::ScenarioResult;
using harness::ScenarioSpec;
using profiles::TuningLevel;

// ---------------------------------------------------------------------------
// Figs 3/5/6/7: the 1 kB..64 MB bandwidth sweep per implementation.
// ---------------------------------------------------------------------------

struct BandwidthFigure {
  const char* group;
  const char* title;
  bool grid;
  TuningLevel level;
  const char* paper_note;
};

std::vector<double> figure_sizes() {
  return harness::pow2_sizes(1024, 64.0 * 1024 * 1024);
}

void register_bandwidth_figure(ScenarioRegistry& reg,
                               const BandwidthFigure& fig) {
  for (const auto& impl : profiles_with_tcp()) {
    ScenarioSpec spec;
    spec.group = fig.group;
    spec.name = std::string(fig.group) + "/" + impl.name;
    spec.description =
        std::string(fig.title) + " -- " + impl.name + " on TCP";
    spec.expected_metrics = {"peak_mbps"};
    const bool grid = fig.grid;
    const TuningLevel level = fig.level;
    spec.run = [impl, grid, level](const ScenarioContext& ctx) {
      const auto topo = grid ? topo::GridSpec::rennes_nancy(1)
                             : topo::GridSpec::single_cluster(2);
      const harness::PingpongEndpoints ends =
          grid ? harness::PingpongEndpoints{0, 0, 1, 0}
               : harness::PingpongEndpoints{0, 0, 0, 1};
      harness::PingpongOptions options;
      options.sizes = figure_sizes();
      options.rounds = 12;
      const auto points = harness::pingpong_sweep(
          topo, ends, profiles::experiment(impl).tuning(level), options,
          ctx.hooks);
      ScenarioResult res;
      double peak = 0;
      for (const auto& p : points) {
        res.add("mbps_" + harness::format_bytes(p.bytes),
                p.max_bandwidth_mbps, "Mbps");
        peak = std::max(peak, p.max_bandwidth_mbps);
      }
      res.add("peak_mbps", peak, "Mbps");
      res.note = "peak " + harness::format_double(peak, 1) + " Mbps";
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer(fig.group, [fig](const auto& specs, const auto& results) {
    const auto sizes = figure_sizes();
    std::vector<std::string> series_names;
    std::vector<std::vector<double>> values;
    for (std::size_t s = 0; s < specs.size(); ++s) {
      series_names.push_back(variant_of(specs[s]->name) + " on TCP");
      values.emplace_back();
      for (double size : sizes)
        values.back().push_back(
            results[s]->metric("mbps_" + harness::format_bytes(size)));
    }
    std::vector<std::string> headers{"size"};
    for (const auto& n : series_names) headers.push_back(n);
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> x_labels;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      x_labels.push_back(harness::format_bytes(sizes[i]));
      rows.push_back({x_labels.back()});
      for (auto& v : values)
        rows.back().push_back(harness::format_double(v[i], 1));
    }
    std::string out = harness::render_csv(
        std::string(fig.title) + " -- MPI bandwidth (Mbps)", headers, rows);
    out += harness::render_ascii_chart(fig.title, series_names, x_labels,
                                       values, 1000, "Mbps");
    out += fig.paper_note;
    return out;
  });
}

// ---------------------------------------------------------------------------
// Table 4: one-way 1-byte latency, cluster and grid, per implementation.
// ---------------------------------------------------------------------------

void register_table4(ScenarioRegistry& reg) {
  for (const auto& impl : profiles_with_tcp()) {
    ScenarioSpec spec;
    spec.group = "table4";
    spec.name = "table4/" + impl.name;
    spec.description =
        "one-way 1-byte latency, cluster and grid -- " + impl.name;
    spec.expected_metrics = {"lan_us", "wan_us"};
    spec.run = [impl](const ScenarioContext& ctx) {
      const profiles::ExperimentConfig cfg = profiles::experiment(impl);
      const SimTime lan = harness::pingpong_min_latency(
          topo::GridSpec::single_cluster(2), {0, 0, 0, 1}, cfg, 20,
          ctx.hooks);
      const SimTime wan = harness::pingpong_min_latency(
          topo::GridSpec::rennes_nancy(1), {0, 0, 1, 0}, cfg, 20, ctx.hooks);
      ScenarioResult res;
      res.add("lan_us", to_microseconds(lan), "us");
      res.add("wan_us", to_microseconds(wan), "us");
      res.note = "cluster " + harness::format_double(to_microseconds(lan), 1) +
                 " us, grid " +
                 harness::format_double(to_microseconds(wan), 1) + " us";
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer("table4", [](const auto& specs, const auto& results) {
    struct PaperRow {
      double lan_us, wan_us;
    };
    const PaperRow paper[] = {
        {41, 5812}, {46, 5818}, {46, 5819}, {62, 5826}, {46, 5820}};
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      rows.push_back(
          {variant_of(specs[i]->name),
           harness::format_double(results[i]->metric("lan_us"), 1),
           harness::format_double(paper[i].lan_us, 0),
           harness::format_double(results[i]->metric("wan_us"), 1),
           harness::format_double(paper[i].wan_us, 0)});
    }
    std::string out = harness::render_table(
        "Table 4: one-way latency in a cluster and in the grid (us)",
        {"implementation", "cluster (model)", "cluster (paper)",
         "grid (model)", "grid (paper)"},
        rows);
    out +=
        "\nNote: the model attributes ~6 us less fixed kernel cost on the "
        "WAN\npath than the testbed measured; the per-implementation deltas "
        "are\nthe quantity Table 4 demonstrates.\n";
    return out;
  });
}

// ---------------------------------------------------------------------------
// Table 5: ideal eager/rendez-vous threshold per implementation.
// ---------------------------------------------------------------------------

/// Sum of per-size transfer times with one candidate threshold: lower is
/// better.
double sweep_score(const mpi::ImplProfile& base, double threshold,
                   const std::vector<double>& sizes, const SimHooks& hooks) {
  harness::PingpongOptions options;
  options.sizes = sizes;
  options.rounds = 6;
  const auto points = harness::pingpong_sweep(
      topo::GridSpec::rennes_nancy(1), {0, 0, 1, 0},
      profiles::experiment(base)
          .tuning(TuningLevel::kTcpTuned)
          .eager_threshold(std::min(threshold, base.eager_threshold_max)),
      options, hooks);
  double total = 0;
  for (const auto& p : points) total += to_seconds(p.min_one_way);
  return total;
}

void register_table5(ScenarioRegistry& reg) {
  for (const auto& impl : profiles::all_implementations()) {
    ScenarioSpec spec;
    spec.group = "table5";
    spec.name = "table5/" + impl.name;
    spec.description = "ideal eager/rndv threshold sweep -- " + impl.name;
    spec.expected_metrics = {"ideal_bytes"};
    spec.run = [impl](const ScenarioContext& ctx) {
      const auto sizes = figure_sizes();
      const std::vector<double> candidates = {
          64e3, 128e3, 256e3, 512e3, 1024e3, 4.0 * 1024 * 1024,
          32.0 * 1024 * 1024, 65.0 * 1024 * 1024};
      double best = candidates.front();
      double best_score = 1e300;
      for (double cand : candidates) {
        const double score = sweep_score(impl, cand, sizes, ctx.hooks);
        if (score < best_score - 1e-9) {
          best_score = score;
          best = std::min(cand, impl.eager_threshold_max);
        }
      }
      const bool no_rndv = std::isinf(impl.eager_threshold);
      ScenarioResult res;
      res.add("ideal_bytes", best, "B");
      // "original" / "ideal" as the table prints them; an implementation
      // with no rendez-vous by default needs no tuning (any threshold >=
      // the largest message scores identically).
      res.cells.push_back(no_rndv ? "inf"
                                  : harness::format_bytes(
                                        impl.eager_threshold) + "B");
      res.cells.push_back(no_rndv ? "- (unchanged)"
                                  : harness::format_bytes(best) + "B");
      res.note = "ideal " + res.cells[1];
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer("table5", [](const auto& specs, const auto& results) {
    struct PaperRow {
      const char* original;
      const char* ideal;
    };
    const PaperRow paper[] = {{"256 kB", "65 MB"},
                              {"inf", "- (unchanged)"},
                              {"128 kB", "65 MB"},
                              {"64 kB", "32 MB"}};
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      rows.push_back({variant_of(specs[i]->name), results[i]->cells.at(0),
                      paper[i].original, results[i]->cells.at(1),
                      paper[i].ideal});
    }
    return harness::render_table(
        "Table 5: ideal eager/rndv threshold per implementation (grid)",
        {"implementation", "original (model)", "original (paper)",
         "ideal (model)", "ideal (paper)"},
        rows);
  });
}

// ---------------------------------------------------------------------------
// Ablation: socket buffer size vs peak grid bandwidth.
// ---------------------------------------------------------------------------

void register_ablation_buffers(ScenarioRegistry& reg) {
  const std::vector<double> buffers = {64e3,   128e3,  256e3,  512e3,
                                       1024e3, 2048e3, 4096e3, 8192e3};
  for (double buf : buffers) {
    ScenarioSpec spec;
    spec.group = "ablation_buffers";
    spec.name = "ablation_buffers/" + harness::format_bytes(buf) + "B";
    spec.description = "socket buffer sweep, 64 MB messages, buffer " +
                       harness::format_bytes(buf) + "B";
    spec.expected_metrics = {"measured_mbps", "bound_mbps"};
    spec.run = [buf](const ScenarioContext& ctx) {
      const double rtt_s = 11.6e-3;
      harness::PingpongOptions options;
      options.sizes = {64e6};
      options.rounds = 8;
      const auto points = harness::pingpong_sweep(
          topo::GridSpec::rennes_nancy(1), {0, 0, 1, 0},
          profiles::experiment(profiles::openmpi())  // setsockopt strategy
              .tuning(TuningLevel::kTcpTuned)
              .setsockopt_bytes(buf)
              .eager_threshold(1e12),  // isolate the buffer effect
          options, ctx.hooks);
      const double predicted =
          std::min(buf * 8.0 / rtt_s, tcp::ethernet_goodput(1e9) * 8.0) / 1e6;
      ScenarioResult res;
      res.add("measured_mbps", points.at(0).max_bandwidth_mbps, "Mbps");
      res.add("bound_mbps", predicted, "Mbps");
      res.note = harness::format_double(points.at(0).max_bandwidth_mbps, 1) +
                 " Mbps (bound " + harness::format_double(predicted, 1) + ")";
      return res;
    };
    reg.add(std::move(spec));
  }

  reg.set_renderer(
      "ablation_buffers", [](const auto& specs, const auto& results) {
        std::vector<std::vector<std::string>> rows;
        for (std::size_t i = 0; i < specs.size(); ++i) {
          rows.push_back(
              {variant_of(specs[i]->name),
               harness::format_double(results[i]->metric("measured_mbps"), 1),
               harness::format_double(results[i]->metric("bound_mbps"), 1)});
        }
        std::string out = harness::render_table(
            "Ablation: socket buffer size vs peak grid bandwidth (64 MB "
            "messages)",
            {"buffer", "measured (Mbps)", "window/RTT bound (Mbps)"}, rows);
        out +=
            "\nThe paper's rule (Section 4.2.1): buffers must reach RTT x\n"
            "bandwidth = 1.45 MB on this path; 4 MB was chosen for "
            "headroom.\n";
        return out;
      });
}

// ---------------------------------------------------------------------------
// Extension: MPICH-G2 parallel WAN streams vs MPICH2.
// ---------------------------------------------------------------------------

std::vector<double> g2_sizes() {
  return harness::pow2_sizes(64e3, 64.0 * 1024 * 1024);
}

void register_ext_mpich_g2(ScenarioRegistry& reg) {
  for (TuningLevel level : {TuningLevel::kDefault, TuningLevel::kFullyTuned}) {
    for (const auto& impl : {profiles::mpich2(), profiles::mpich_g2()}) {
      ScenarioSpec spec;
      spec.group = "ext_mpich_g2";
      spec.name = "ext_mpich_g2/" + impl.name + " (" +
                  profiles::to_string(level) + ")";
      spec.description = "WAN bandwidth 64 kB..64 MB -- " + impl.name +
                         ", " + profiles::to_string(level) + " configuration";
      spec.expected_metrics = {"peak_mbps"};
      spec.run = [impl, level](const ScenarioContext& ctx) {
        harness::PingpongOptions options;
        options.sizes = g2_sizes();
        options.rounds = 10;
        const auto points = harness::pingpong_sweep(
            topo::GridSpec::rennes_nancy(1), {0, 0, 1, 0},
            profiles::experiment(impl).tuning(level), options, ctx.hooks);
        ScenarioResult res;
        double peak = 0;
        for (const auto& p : points) {
          res.add("mbps_" + harness::format_bytes(p.bytes),
                  p.max_bandwidth_mbps, "Mbps");
          peak = std::max(peak, p.max_bandwidth_mbps);
        }
        res.add("peak_mbps", peak, "Mbps");
        res.note = "peak " + harness::format_double(peak, 1) + " Mbps";
        return res;
      };
      reg.add(std::move(spec));
    }
  }

  reg.set_renderer("ext_mpich_g2", [](const auto& specs, const auto& results) {
    const auto sizes = g2_sizes();
    std::vector<std::string> headers{"size"};
    for (const auto* s : specs) headers.push_back(variant_of(s->name));
    std::vector<std::vector<std::string>> rows;
    for (double size : sizes) {
      rows.push_back({harness::format_bytes(size)});
      for (const auto* r : results)
        rows.back().push_back(harness::format_double(
            r->metric("mbps_" + harness::format_bytes(size)), 1));
    }
    std::string out = harness::render_table(
        "Extension: MPICH-G2 parallel WAN streams vs MPICH2 (Mbps)", headers,
        rows);
    out +=
        "\nExpected shape: with default kernels MPICH-G2's 4 streams lift\n"
        "large messages ~4x above the single-connection ceiling; with full\n"
        "tuning both implementations converge near line rate.\n";
    return out;
  });
}

}  // namespace

void register_pingpong_catalog(ScenarioRegistry& reg) {
  register_bandwidth_figure(
      reg,
      {"fig3", "Fig 3: grid (Rennes--Nancy), default parameters", true,
       TuningLevel::kDefault,
       "\nPaper shape: no curve exceeds ~120 Mbps; the 174760 B auto-tuning\n"
       "bound caps the window on the 11.6 ms path.\n"});
  register_bandwidth_figure(
      reg,
      {"fig5", "Fig 5: cluster (Rennes), default parameters", false,
       TuningLevel::kDefault,
       "\nPaper shape: all curves saturate at ~940 Mbps (1 GbE goodput);\n"
       "small dips above 64-256 kB mark each implementation's rendez-vous\n"
       "threshold; GridMPI has none.\n"});
  register_bandwidth_figure(
      reg,
      {"fig6", "Fig 6: grid (Rennes--Nancy), after TCP tuning", true,
       TuningLevel::kTcpTuned,
       "\nPaper shape: peaks ~900 Mbps; half bandwidth around 1 MB (vs 8 "
       "kB\nin the cluster); deep dips above each implementation's eager "
       "limit\n(the rendez-vous handshake costs an extra 11.6 ms round "
       "trip);\nGridMPI closest to raw TCP.\n"});
  register_bandwidth_figure(
      reg,
      {"fig7", "Fig 7: grid (Rennes--Nancy), after TCP tuning + MPI tuning",
       true, TuningLevel::kFullyTuned,
       "\nPaper shape: every curve tracks raw TCP; OpenMPI alone sags at\n"
       "64 MB (32 MB eager-limit cap).\n"});
  register_table4(reg);
  register_table5(reg);
  register_ablation_buffers(reg);
  register_ext_mpich_g2(reg);
}

}  // namespace gridsim::scenarios::detail
