// The paper's experiment catalog: every figure/table cell of "Comparison
// and tuning of MPI implementations in a grid context" (and this repo's
// ablation/extension studies) registered as a ScenarioSpec in one
// ScenarioRegistry. Consumers — the per-figure bench shims, `gridsim
// campaign`, the tests — select from this registry by glob instead of
// hand-rolling experiment mains.
#pragma once

#include <string>

#include "harness/scenario.hpp"

namespace gridsim::scenarios {

/// The process-wide catalog, built on first use. Groups are registered in
/// the paper's order: fig3, fig5, fig6, fig7, table4, table5, fig9,
/// table2, fig10..fig13, table6, table7, then the ablation_* and ext_*
/// studies.
const harness::ScenarioRegistry& paper_registry();

/// Serial convenience for the bench shims: runs every catalog scenario
/// matching `filter` (digests off, caller thread) and prints each matched
/// group's rendering in registration order. Returns the number of failed
/// scenarios (0 = success), or -1 if the filter matched nothing.
int run_and_print(const std::string& filter);

}  // namespace gridsim::scenarios
