// Lint fixtures for `gridsim lint` (simlint/lint.hpp,
// docs/race-detection.md): a deliberately racy wildcard workload and its
// race-free twin. The pair pins the analyzer's verdict boundary from both
// sides (tests/lint_test.cpp):
//
//  * lint/wildcard-race — ranks 1 and 2 send concurrently into rank 0's
//    two kAnySource receives. Neither send happens-before the other, so
//    rule R1 fires and names both send sites. Registered with
//    races_expected: the race is the fixture's purpose, and its metrics
//    are commutative, so the scenario still passes lint and campaign.
//
//  * lint/scripted-order — the same traffic, serialized through a token:
//    rank 1 sends to rank 0, then passes a token to rank 2, which sends to
//    rank 0 only after receiving it. The candidate sends are HB-ordered
//    (send#0@1 -> token -> send#1@2), so the analyzer proves zero races —
//    and the model-checker's HB persistent sets collapse the exploration
//    of this workload to a single execution (the second matching order
//    would deliver a causally-later message first).
#include <functional>
#include <string>

#include "mpi/mpi.hpp"
#include "scenarios/catalog_internal.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::scenarios::detail {

namespace {

using harness::ScenarioContext;
using harness::ScenarioRegistry;
using harness::ScenarioResult;
using harness::ScenarioSpec;

constexpr int kDataTag = 1;
constexpr int kTokenTag = 7;
constexpr int kLintRanks = 3;

/// Runs `body` on a 3-rank job spanning both sites (rank 0 + rank 1 in
/// Rennes, rank 2 in Nancy — so the two candidate sends take LAN and WAN
/// paths of genuinely different latency).
ScenarioResult run_lint_job(
    const ScenarioContext& ctx,
    const std::function<Task<void>(mpi::Rank&)>& body, int* recvs,
    double* sum_bytes) {
  Simulation sim;
  if (ctx.hooks.on_start) ctx.hooks.on_start(sim);
  topo::Grid grid(sim, topo::GridSpec::rennes_nancy(2));
  mpi::Job job(grid, mpi::block_placement(grid, kLintRanks),
               profiles::mpich2(), tcp::KernelTunables::grid_tuned());
  job.launch(body);
  sim.run();
  if (ctx.hooks.on_finish) ctx.hooks.on_finish(sim);
  ScenarioResult res;
  res.add("recvs", *recvs);
  res.add("sum_bytes", *sum_bytes, "B");
  return res;
}

void register_wildcard_race(ScenarioRegistry& reg) {
  ScenarioSpec spec;
  spec.group = "lint";
  spec.name = "lint/wildcard-race";
  spec.description =
      "2 concurrent senders into 2 wildcard receives: rule R1 must fire "
      "naming both send sites";
  spec.expected_metrics = {"recvs", "sum_bytes"};
  spec.ranks = kLintRanks;
  spec.races_expected = true;
  spec.run = [](const ScenarioContext& ctx) {
    int recvs = 0;
    double sum_bytes = 0;
    auto res = run_lint_job(
        ctx,
        [&](mpi::Rank& r) -> Task<void> {
          if (r.rank() == 0) {
            for (int i = 0; i < kLintRanks - 1; ++i) {
              const mpi::RecvInfo info =
                  co_await r.recv(mpi::kAnySource, kDataTag);
              ++recvs;
              sum_bytes += info.bytes;
            }
          } else {
            co_await r.send(0, 500.0 * r.rank(), kDataTag);
          }
        },
        &recvs, &sum_bytes);
    res.note = "R1 expected: rank 1 send#0 races rank 2 send#0";
    return res;
  };
  reg.add(std::move(spec));
}

void register_scripted_order(ScenarioRegistry& reg) {
  ScenarioSpec spec;
  spec.group = "lint";
  spec.name = "lint/scripted-order";
  spec.description =
      "race-free twin: the candidate sends are serialized through a token, "
      "zero findings";
  spec.expected_metrics = {"recvs", "sum_bytes"};
  spec.ranks = kLintRanks;
  spec.run = [](const ScenarioContext& ctx) {
    int recvs = 0;
    double sum_bytes = 0;
    auto res = run_lint_job(
        ctx,
        [&](mpi::Rank& r) -> Task<void> {
          if (r.rank() == 0) {
            for (int i = 0; i < kLintRanks - 1; ++i) {
              const mpi::RecvInfo info =
                  co_await r.recv(mpi::kAnySource, kDataTag);
              ++recvs;
              sum_bytes += info.bytes;
            }
          } else if (r.rank() == 1) {
            co_await r.send(0, 500, kDataTag);
            co_await r.send(2, 64, kTokenTag);  // HB edge to rank 2's send
          } else {
            (void)co_await r.recv(1, kTokenTag);
            co_await r.send(0, 1000, kDataTag);
          }
        },
        &recvs, &sum_bytes);
    res.note = "token-serialized: the wildcard receives have one enabled "
               "candidate each";
    return res;
  };
  reg.add(std::move(spec));
}

}  // namespace

void register_lint_catalog(ScenarioRegistry& reg) {
  register_wildcard_race(reg);
  register_scripted_order(reg);

  reg.set_renderer("lint", [](const auto& specs, const auto& results) {
    std::string out = "Lint fixtures (see `gridsim lint`):\n";
    for (std::size_t i = 0; i < specs.size(); ++i)
      out += "  " + variant_of(specs[i]->name) + ": " + results[i]->note +
             "\n";
    return out;
  });
}

}  // namespace gridsim::scenarios::detail
