// Model-checking targets for `gridsim mc` (simmc/mc.hpp): small-rank
// workloads whose wildcard receives genuinely race, registered like any
// other scenario so the campaign pins their default-arbiter digests while
// the checker explores their alternative matching orders.
//
// Contract for this group: every metric is interleaving-invariant — counts,
// byte totals and commutative (order-independent) reductions only, never
// completion times. That is what makes "result-digest stability across all
// explored interleavings" a meaningful assertion rather than a tautology.
//
// mc/deadlock-fixture is special: it is *clean under arrival order* (the
// LAN sender's message always arrives before the WAN sender's) but carries
// a real ordering bug — if the wildcard receive matches the WAN sender, the
// following recv(src=2) starves. The checker must find it, minimize it to
// the one forced choice, and emit a replayable witness; see
// tests/simmc_test.cpp and docs/model-checking.md.
#include <cctype>
#include <functional>
#include <string>
#include <vector>

#include "collectives/collectives.hpp"
#include "harness/npb_campaign.hpp"
#include "mpi/mpi.hpp"
#include "scenarios/catalog_internal.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::scenarios::detail {

namespace {

using harness::ScenarioContext;
using harness::ScenarioRegistry;
using harness::ScenarioResult;
using harness::ScenarioSpec;
using profiles::TuningLevel;

constexpr int kDataTag = 1;
constexpr int kAckTag = 2;
constexpr int kRanks = 4;  // 2 sites x 2 hosts: racing LAN + WAN senders

/// The two implementations whose matching stacks the checker exercises:
/// the reference (MPICH2) and the grid-aware one (GridMPI) — their eager
/// thresholds and collective algorithms take different engine paths.
std::vector<mpi::ImplProfile> mc_profiles() {
  return {profiles::mpich2(), profiles::gridmpi()};
}

/// Runs `body` on every rank of a 4-rank job spanning both sites and
/// returns the job's traffic stats as interleaving-invariant metrics.
ScenarioResult run_traffic_job(
    const profiles::ExperimentConfig& cfg, const SimHooks& hooks, int nranks,
    const std::function<Task<void>(mpi::Rank&)>& body) {
  Simulation sim;
  if (hooks.on_start) hooks.on_start(sim);
  topo::Grid grid(sim, topo::GridSpec::rennes_nancy(2));
  mpi::Job job(grid, mpi::block_placement(grid, nranks), cfg.profile,
               cfg.kernel);
  job.launch(body);
  sim.run();
  if (hooks.on_finish) hooks.on_finish(sim);
  const mpi::TrafficStats& t = job.traffic();
  ScenarioResult res;
  res.add("coll_msgs", static_cast<double>(t.collective_messages));
  res.add("coll_mb", t.collective_bytes / 1e6, "MB");
  res.add("ctrl_msgs", static_cast<double>(t.control_messages));
  return res;
}

// ---------------------------------------------------------------------------
// Wildcard ping-pong: three senders race into one receiver's kAnySource
// loop. 3! = 6 legal matching orders; the commutative checksum must not
// care which one the engine picks.
// ---------------------------------------------------------------------------

void register_wildcard_pingpong(ScenarioRegistry& reg) {
  for (const auto& impl : mc_profiles()) {
    ScenarioSpec spec;
    spec.group = "mc";
    spec.name = "mc/pingpong-wild-" + impl.name;
    spec.description =
        "3 racing senders into one wildcard receive loop, acked -- " +
        impl.name;
    spec.expected_metrics = {"recvs", "sum_bytes", "weighted_sum", "acks"};
    spec.ranks = kRanks;
    spec.races_expected = true;  // the racing senders are the point
    spec.run = [impl](const ScenarioContext& ctx) {
      const profiles::ExperimentConfig cfg =
          profiles::experiment(impl).tuning(TuningLevel::kTcpTuned);
      Simulation sim;
      if (ctx.hooks.on_start) ctx.hooks.on_start(sim);
      topo::Grid grid(sim, topo::GridSpec::rennes_nancy(2));
      mpi::Job job(grid, mpi::block_placement(grid, kRanks), cfg.profile,
                   cfg.kernel);
      int recvs = 0, acks = 0;
      double sum_bytes = 0, weighted_sum = 0;
      job.launch([&](mpi::Rank& r) -> Task<void> {
        if (r.rank() == 0) {
          for (int i = 0; i < kRanks - 1; ++i) {
            const mpi::RecvInfo info =
                co_await r.recv(mpi::kAnySource, kDataTag);
            ++recvs;
            sum_bytes += info.bytes;
            weighted_sum += info.source * info.bytes;
            co_await r.send(info.source, 64, kAckTag);
          }
        } else {
          co_await r.send(0, 1e3 * r.rank(), kDataTag);
          (void)co_await r.recv(0, kAckTag);
          ++acks;
        }
      });
      sim.run();
      if (ctx.hooks.on_finish) ctx.hooks.on_finish(sim);
      ScenarioResult res;
      res.add("recvs", recvs);
      res.add("sum_bytes", sum_bytes, "B");
      res.add("weighted_sum", weighted_sum);
      res.add("acks", acks);
      res.note = std::to_string(recvs) + " wildcard matches, checksum " +
                 harness::format_double(weighted_sum, 0);
      return res;
    };
    reg.add(std::move(spec));
  }
}

// ---------------------------------------------------------------------------
// Collectives: the profile-selected Bcast/Allreduce algorithms over both
// sites. Traffic counts are a pure function of the algorithm, so they pin
// the collective's shape under any matching order.
// ---------------------------------------------------------------------------

void register_collectives(ScenarioRegistry& reg) {
  for (const auto& impl : mc_profiles()) {
    {
      ScenarioSpec spec;
      spec.group = "mc";
      spec.name = "mc/bcast-" + impl.name;
      spec.description =
          "64 kB broadcast over 2 sites, traffic-shape pinned -- " +
          impl.name;
      spec.expected_metrics = {"coll_msgs", "coll_mb", "ctrl_msgs"};
      spec.ranks = kRanks;
      spec.run = [impl](const ScenarioContext& ctx) {
        auto res = run_traffic_job(
            profiles::experiment(impl).tuning(TuningLevel::kTcpTuned),
            ctx.hooks, kRanks, [](mpi::Rank& r) -> Task<void> {
              co_await coll::bcast(r, 0, 64e3);
            });
        res.note = harness::format_double(res.metric("coll_msgs"), 0) +
                   " collective messages, " +
                   harness::format_double(res.metric("coll_mb"), 2) + " MB";
        return res;
      };
      reg.add(std::move(spec));
    }
    {
      ScenarioSpec spec;
      spec.group = "mc";
      spec.name = "mc/allreduce-" + impl.name;
      spec.description =
          "256 kB allreduce over 2 sites, traffic-shape pinned -- " +
          impl.name;
      spec.expected_metrics = {"coll_msgs", "coll_mb", "ctrl_msgs"};
      spec.ranks = kRanks;
      spec.run = [impl](const ScenarioContext& ctx) {
        auto res = run_traffic_job(
            profiles::experiment(impl).tuning(TuningLevel::kTcpTuned),
            ctx.hooks, kRanks, [](mpi::Rank& r) -> Task<void> {
              co_await coll::allreduce(r, 256e3);
            });
        res.note = harness::format_double(res.metric("coll_msgs"), 0) +
                   " collective messages, " +
                   harness::format_double(res.metric("coll_mb"), 2) + " MB";
        return res;
      };
      reg.add(std::move(spec));
    }
  }
}

// ---------------------------------------------------------------------------
// NPB skeletons: CG (point-to-point halo) and IS (alltoall-heavy) at class
// S on 4 ranks — the smallest real communication patterns in the repo.
// ---------------------------------------------------------------------------

void register_npb_skeletons(ScenarioRegistry& reg) {
  const npb::Kernel kernels[2] = {npb::Kernel::kCG, npb::Kernel::kIS};
  for (const npb::Kernel k : kernels) {
    for (const auto& impl : mc_profiles()) {
      ScenarioSpec spec;
      spec.group = "mc";
      spec.name = "mc/" + [&] {
        std::string n = npb::name(k);
        for (char& c : n) c = static_cast<char>(std::tolower(c));
        return n;
      }() + "-" + impl.name;
      spec.description = "NPB " + npb::name(k) +
                         " class S skeleton on 4 ranks, traffic pinned -- " +
                         impl.name;
      spec.expected_metrics = {"p2p_msgs", "p2p_mb", "coll_msgs", "coll_mb"};
      spec.ranks = kRanks;
      spec.run = [impl, k](const ScenarioContext& ctx) {
        const auto r = harness::run_npb(
            topo::GridSpec::rennes_nancy(2), kRanks, k, npb::Class::kS,
            profiles::experiment(impl).tuning(TuningLevel::kTcpTuned), 0,
            ctx.hooks);
        ScenarioResult res;
        res.add("p2p_msgs", static_cast<double>(r.traffic.p2p_messages));
        res.add("p2p_mb", r.traffic.p2p_bytes / 1e6, "MB");
        res.add("coll_msgs",
                static_cast<double>(r.traffic.collective_messages));
        res.add("coll_mb", r.traffic.collective_bytes / 1e6, "MB");
        res.note =
            harness::format_double(
                static_cast<double>(r.traffic.p2p_messages), 0) +
            " p2p + " +
            harness::format_double(
                static_cast<double>(r.traffic.collective_messages), 0) +
            " collective messages";
        return res;
      };
      reg.add(std::move(spec));
    }
  }
}

// ---------------------------------------------------------------------------
// Seeded deadlock: clean under arrival order, wedged when the wildcard
// matches the WAN sender first.
// ---------------------------------------------------------------------------

void register_deadlock_fixture(ScenarioRegistry& reg) {
  ScenarioSpec spec;
  spec.group = "mc";
  spec.name = "mc/deadlock-fixture";
  spec.description =
      "wildcard recv that starves a following recv(src=2) in one matching "
      "order (checker must produce a witness)";
  spec.expected_metrics = {"recvs", "sum_bytes"};
  spec.ranks = 3;
  spec.races_expected = true;  // the hidden ordering bug *is* an R1 race
  spec.run = [](const ScenarioContext& ctx) {
    Simulation sim;
    if (ctx.hooks.on_start) ctx.hooks.on_start(sim);
    topo::Grid grid(sim, topo::GridSpec::rennes_nancy(2));
    mpi::Job job(grid, mpi::block_placement(grid, 3),
                 profiles::mpich2(), tcp::KernelTunables::grid_tuned());
    int recvs = 0;
    double sum_bytes = 0;
    job.launch([&](mpi::Rank& r) -> Task<void> {
      if (r.rank() == 0) {
        // Arrival order matches rank 1 (LAN, arrives first) here, leaving
        // rank 2's message for the specific receive below. The *other*
        // matching order consumes rank 2's only message and starves it.
        const mpi::RecvInfo first =
            co_await r.recv(mpi::kAnySource, kDataTag);
        const mpi::RecvInfo second = co_await r.recv(2, kDataTag);
        recvs = 2;
        sum_bytes = first.bytes + second.bytes;
      } else {
        co_await r.send(0, r.rank() == 1 ? 111 : 222, kDataTag);
      }
    });
    sim.run();
    if (ctx.hooks.on_finish) ctx.hooks.on_finish(sim);
    ScenarioResult res;
    res.add("recvs", recvs);
    res.add("sum_bytes", sum_bytes, "B");
    res.note = "clean under arrival order (" +
               harness::format_double(sum_bytes, 0) + " B received)";
    return res;
  };
  reg.add(std::move(spec));
}

}  // namespace

void register_mc_catalog(ScenarioRegistry& reg) {
  register_wildcard_pingpong(reg);
  register_collectives(reg);
  register_npb_skeletons(reg);
  register_deadlock_fixture(reg);

  reg.set_renderer("mc", [](const auto& specs, const auto& results) {
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < specs.size(); ++i)
      rows.push_back({variant_of(specs[i]->name), results[i]->note});
    std::string out = harness::render_table(
        "Model-checking targets (arrival-order baseline run)",
        {"scenario", "outcome"}, rows);
    out +=
        "\nThese scenarios exist to be *explored*, not just run: `gridsim\n"
        "mc --scenario 'mc/*'` re-executes each one under every legal\n"
        "wildcard matching order and asserts the metrics above never\n"
        "change. mc/deadlock-fixture deliberately hides an ordering\n"
        "deadlock that arrival order never triggers.\n";
    return out;
  });
}

}  // namespace gridsim::scenarios::detail
