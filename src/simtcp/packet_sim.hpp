// Packet-level TCP reference simulation.
//
// The fluid TcpChannel model makes several approximations (per-RTT cwnd
// epochs, rate caps instead of packets, analytic loss detection). This
// module is its ground truth: a single-path, packet-granular TCP sender —
// droptail bottleneck queue, per-packet cumulative acks, slow start, Reno
// congestion avoidance, fast retransmit on three duplicate acks and a
// coarse retransmission timeout.
//
// It is deliberately limited to one connection on one path: its job is to
// validate the fluid model's transfer times and loss behaviour
// (tests/packet_sim_test.cpp), not to run experiments.
#pragma once

#include "simcore/simulation.hpp"
#include "simtcp/tcp.hpp"

namespace gridsim::tcp {

struct PacketSimConfig {
  double capacity = ethernet_goodput(1e9);  ///< payload bytes/s
  SimTime one_way = microseconds(5800);     ///< propagation, each direction
  int queue_packets = 690;                  ///< droptail bottleneck (~1 MB)
  double mss = 1448;
  double window_limit_bytes = 4e6;          ///< socket buffer bound
  int initial_window_packets = 2;
  SimTime rto = milliseconds(200);
};

struct PacketSimResult {
  SimTime completion = 0;  ///< last byte acked
  int packets_sent = 0;    ///< including retransmits
  int losses = 0;          ///< queue drops
  int retransmits = 0;
  double max_cwnd_packets = 0;
};

/// Runs one bulk transfer of `bytes` to completion inside `sim` (which
/// must be otherwise idle) and returns the outcome.
PacketSimResult packet_level_transfer(double bytes,
                                      const PacketSimConfig& cfg);

}  // namespace gridsim::tcp
