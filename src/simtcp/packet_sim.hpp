// Packet-level TCP reference simulation.
//
// The fluid TcpChannel model makes several approximations (per-RTT cwnd
// epochs, rate caps instead of packets, analytic loss detection). This
// module is its ground truth: a single-path, packet-granular TCP sender —
// droptail bottleneck queue, per-packet cumulative acks, slow start, Reno
// congestion avoidance, fast retransmit on three duplicate acks and a
// coarse retransmission timeout.
//
// Timer discipline: each connection keeps a single outstanding RTO timer
// event. Forward progress re-arms it by pushing a deadline; a fire before
// the deadline reschedules itself instead of acting. The receiver also
// stops emitting duplicate acks beyond the third for the same cumulative
// value (they are inert in this model — there is no window inflation), so
// a bulk transfer schedules O(packets) events with O(window) of them
// pending at any instant, instead of accumulating one live 200 ms timer
// closure per ack.
//
// It is deliberately limited to one connection on one path: its job is to
// validate the fluid model's transfer times and loss behaviour
// (tests/packet_sim_test.cpp), not to run experiments.
#pragma once

#include <vector>

#include "simcore/simulation.hpp"
#include "simfault/fault.hpp"
#include "simtcp/tcp.hpp"

namespace gridsim::tcp {

struct PacketSimConfig {
  double capacity = ethernet_goodput(1e9);  ///< payload bytes/s
  SimTime one_way = microseconds(5800);     ///< propagation, each direction
  int queue_packets = 690;                  ///< droptail bottleneck (~1 MB)
  double mss = 1448;
  double window_limit_bytes = 4e6;          ///< socket buffer bound
  int initial_window_packets = 2;
  SimTime rto = milliseconds(200);
  /// Test hook: sequence numbers dropped on their first enqueue attempt
  /// (counted as losses). Retransmissions of the same sequence go through,
  /// so each entry injects exactly one deterministic, isolated loss.
  std::vector<int> forced_drops;
  /// Random channel loss (i.i.d. or Gilbert-Elliott bursts), sampled on
  /// EVERY transmission attempt including retransmits — the RTO path
  /// retries until a copy survives, so transfers still complete for any
  /// loss rate below 1. Inactive by default.
  simfault::PacketLossSpec loss;
};

struct PacketSimResult {
  SimTime completion = 0;  ///< last byte acked
  int packets_sent = 0;    ///< transmission attempts, including retransmits
  int losses = 0;          ///< queue drops (droptail + forced)
  int retransmits = 0;
  int rto_timeouts = 0;      ///< genuine RTO expiries (cwnd collapses)
  int retransmit_drops = 0;  ///< recovery retransmits lost to a full queue
  int injected_losses = 0;   ///< drops taken from PacketSimConfig::loss
  double max_cwnd_packets = 0;
};

/// Runs one bulk transfer of `bytes` to completion in a private Simulation
/// and returns the outcome. `hooks` observe that engine (same contract as
/// the harness runners): `on_start` fires before the first packet is sent,
/// `on_finish` after the event loop drains.
PacketSimResult packet_level_transfer(double bytes, const PacketSimConfig& cfg,
                                      const SimHooks& hooks = {});

}  // namespace gridsim::tcp
