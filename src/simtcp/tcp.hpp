// TCP connection model on top of the fluid network.
//
// A `TcpChannel` is one direction of a TCP connection. Application bytes are
// queued as FIFO segments; the head segment drains through a fluid flow
// whose rate is capped at `window / RTT`, where
//
//   window = min(cwnd, effective send buffer, effective receive buffer).
//
// The congestion window evolves in per-RTT epochs (slow start doubling,
// then BIC or Reno congestion avoidance) and suffers a loss whenever it
// exceeds the path's achievable bandwidth-delay product plus the usable
// queue budget — the budget is smaller for un-paced senders, which is how
// GridMPI's software pacing [Takano et al., PFLDnet'05] shows up in the
// model (Fig 9 of the paper).
//
// Socket buffer sizing reproduces Section 4.2.1 of the paper:
//  * no setsockopt           -> kernel auto-tuning, bounded by tcp_*mem[2]
//  * setsockopt(SO_*BUF)     -> fixed size, clamped to *mem_max, no tuning
//  * lock_buffers_to_initial -> fixed at tcp_*mem[1] (GridMPI behaviour:
//                               "the middle value ... has to be increased")
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"
#include "simcore/task.hpp"
#include "simnet/network.hpp"

namespace gridsim::tcp {

enum class CongestionAlgo { kReno, kBic, kCubic };

/// Host-level kernel tunables (the /proc/sys knobs of Section 4.2.1).
struct KernelTunables {
  double rmem_max = 131071;  ///< /proc/sys/net/core/rmem_max
  double wmem_max = 131071;  ///< /proc/sys/net/core/wmem_max
  double tcp_rmem[3] = {4096, 87380, 174760};   ///< min, initial, max
  double tcp_wmem[3] = {4096, 87380, 174760};   ///< min, initial, max
  CongestionAlgo algo = CongestionAlgo::kBic;   ///< 2.6.18 default: BIC

  /// Stock Linux 2.6.18 values (the paper's "default parameters").
  static KernelTunables linux_2_6_18_default() { return {}; }

  /// The paper's grid tuning: 4 MB everywhere, including the initial value
  /// (which GridMPI needs).
  static KernelTunables grid_tuned() {
    KernelTunables k;
    k.rmem_max = k.wmem_max = 4 * 1024 * 1024;
    k.tcp_rmem[1] = k.tcp_rmem[2] = 4 * 1024 * 1024;
    k.tcp_wmem[1] = k.tcp_wmem[2] = 4 * 1024 * 1024;
    return k;
  }
};

/// Per-connection options chosen by the application (the MPI library).
struct SocketOptions {
  /// Explicit SO_SNDBUF / SO_RCVBUF request in bytes; 0 = let the kernel
  /// auto-tune. OpenMPI sets 128 kB by default (btl_tcp_sndbuf/rcvbuf).
  double sndbuf = 0;
  double rcvbuf = 0;
  /// GridMPI-style: buffers frozen at the kernel initial size tcp_*mem[1].
  bool lock_buffers_to_initial = false;
  /// GridMPI software pacing: bursts are smoothed, so the full bottleneck
  /// queue is usable before a loss and slow-start exits without collapse.
  bool pacing = false;
};

/// Model constants; exposed for ablation studies.
struct TcpModelParams {
  double mss = 1448;  ///< Ethernet MSS (1500 - IP/TCP headers, timestamps)
  /// Fraction of the bottleneck queue a bursty (un-paced) sender can use
  /// before overflowing it.
  double unpaced_queue_fraction = 0.5;
  /// BIC binary-increase cap per RTT, in MSS units. Conservative: long-RTT
  /// recovery takes seconds, as observed on Grid'5000 (paper Fig 9).
  double bic_smax_mss = 2.0;
  double bic_beta = 0.8;  ///< multiplicative decrease factor
  /// Fixed per-message kernel/stack cost applied by callers per endpoint.
  SimTime stack_overhead = microseconds(3);
  /// Initial congestion window in MSS units (2007-era kernels: 2).
  double initial_window_mss = 2.0;
  /// Idle period after which cwnd decays toward the restart window.
  SimTime idle_rto = milliseconds(200);
};

/// Wire goodput of a payload byte stream on Ethernet: 1448 payload bytes per
/// 1538 on-wire bytes (preamble + IFG + MAC/IP/TCP headers). 1 GbE -> ~941
/// Mbps of application goodput, the paper's "940 Mbps".
constexpr double ethernet_goodput(double raw_bits_per_sec) {
  return raw_bits_per_sec / 8.0 * (1448.0 / 1538.0);
}

/// One direction of a TCP connection between two hosts.
class TcpChannel {
 public:
  TcpChannel(net::Network& network, net::HostId src, net::HostId dst,
             const KernelTunables& snd_kernel, const KernelTunables& rcv_kernel,
             SocketOptions options, TcpModelParams params = {});
  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  /// Queues `bytes` for transmission.
  ///  * `on_buffered`  fires when the last byte has been accepted into the
  ///    send socket buffer (where a blocking eager MPI_Send returns);
  ///  * `on_delivered` fires when the last byte arrives at the receiver.
  /// Either callback may be null. Delivery order is FIFO.
  void send(double bytes, std::function<void()> on_buffered,
            std::function<void()> on_delivered);

  /// Coroutine helpers over send().
  Task<void> send_buffered(double bytes);
  Task<void> send_delivered(double bytes);

  // --- observability -----------------------------------------------------
  double cwnd() const { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  /// Effective window: min(cwnd, send buffer, receive buffer).
  double window() const;
  double effective_sndbuf() const { return snd_limit_; }
  double effective_rcvbuf() const { return rcv_limit_; }
  SimTime rtt() const { return rtt_; }
  int loss_events() const { return loss_events_; }
  /// Ticks that found the flow's allocation collapsed to (near) zero — the
  /// path flapped down or was swallowed by an injected fault. Each one is an
  /// RTO-like restart; surfaced by mpi::Job as degraded-progress events.
  int stall_events() const { return stall_events_; }
  double bytes_delivered() const { return bytes_delivered_; }
  bool idle() const { return segments_.empty(); }
  net::HostId source() const { return src_; }
  net::HostId destination() const { return dst_; }
  const TcpModelParams& params() const { return params_; }

 private:
  struct Segment {
    double bytes = 0;
    double buffered_threshold = 0;  ///< fire on_buffered once drained_ >= this
    bool buffered_fired = false;
    std::function<void()> on_buffered;
    std::function<void()> on_delivered;
  };

  void start_head_segment();
  void on_head_drained();
  void schedule_tick();
  void schedule_tick(SimTime delay);
  void on_tick(std::uint64_t gen);
  void on_loss();
  void grow_window();
  void apply_idle_decay();
  void update_flow_cap();
  double rate_cap(double remaining_bytes) const;

  net::Network& net_;
  Simulation& sim_;
  net::HostId src_;
  net::HostId dst_;
  TcpModelParams params_;
  SocketOptions options_;
  bool pacing_ = false;
  CongestionAlgo algo_ = CongestionAlgo::kBic;

  double snd_limit_ = 0;  ///< effective send buffer bound on the window
  double rcv_limit_ = 0;
  SimTime rtt_ = 0;
  double queue_budget_ = 0;  ///< bottleneck queue along the path

  // Congestion state.
  double cwnd_ = 0;
  double ssthresh_ = 0;
  double bic_wmax_ = 0;
  SimTime cubic_epoch_start_ = 0;  ///< time of the last loss (CUBIC clock)
  bool in_slow_start_ = true;

  // Segment pipeline.
  std::deque<Segment> segments_;  // head is in flight
  net::FlowId flow_ = net::kInvalidFlow;
  double enqueued_total_ = 0;  ///< cumulative bytes ever queued
  double drained_ = 0;         ///< cumulative bytes drained into the pipe
  std::uint64_t tick_gen_ = 0;
  SimTime last_active_ = 0;

  // Degraded-progress state: exponential probe backoff while stalled.
  SimTime stall_backoff_ = 0;  ///< 0 = not currently backing off

  // Stats.
  int loss_events_ = 0;
  int stall_events_ = 0;
  double bytes_delivered_ = 0;
};

/// A bidirectional TCP connection: two channels sharing configuration.
/// `a_to_b()` sends from a to b and vice versa.
class TcpConnection {
 public:
  TcpConnection(net::Network& network, net::HostId a, net::HostId b,
                const KernelTunables& kernel_a, const KernelTunables& kernel_b,
                SocketOptions options, TcpModelParams params = {})
      : ab_(network, a, b, kernel_a, kernel_b, options, params),
        ba_(network, b, a, kernel_b, kernel_a, options, params) {}

  TcpChannel& a_to_b() { return ab_; }
  TcpChannel& b_to_a() { return ba_; }
  /// The channel that sends *from* `host`.
  TcpChannel& from(net::HostId host);

 private:
  TcpChannel ab_;
  TcpChannel ba_;
};

}  // namespace gridsim::tcp
