#include "simtcp/packet_sim.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gridsim::tcp {

namespace {

/// The whole connection state machine; lives for one transfer.
class PacketTcp {
 public:
  PacketTcp(Simulation& sim, double bytes, const PacketSimConfig& cfg)
      : sim_(sim),
        cfg_(cfg),
        total_packets_(static_cast<int>(std::ceil(bytes / cfg.mss))),
        received_(static_cast<size_t>(total_packets_), false),
        cwnd_(cfg.initial_window_packets),
        window_limit_(std::max(1.0, cfg.window_limit_bytes / cfg.mss)) {}

  PacketSimResult run() {
    try_send();
    arm_rto();
    sim_.run();
    result_.completion = done_at_;
    return result_;
  }

 private:
  double service_time_s() const { return cfg_.mss / cfg_.capacity; }

  int inflight() const { return next_seq_ - highest_acked_; }

  void try_send() {
    while (next_seq_ < total_packets_ &&
           inflight() < static_cast<int>(std::min(cwnd_, window_limit_))) {
      transmit(next_seq_++);
    }
  }

  void transmit(int seq) {
    ++result_.packets_sent;
    if (queue_len_ >= cfg_.queue_packets) {
      ++result_.losses;  // droptail
      return;
    }
    ++queue_len_;
    // Bottleneck serves packets back to back.
    const SimTime service = from_seconds(service_time_s());
    server_free_ = std::max(server_free_, sim_.now()) + service;
    const SimTime departure = server_free_;
    sim_.at(departure, [this, seq] {
      --queue_len_;
      sim_.after(cfg_.one_way, [this, seq] { on_receive(seq); });
    });
  }

  void on_receive(int seq) {
    if (seq < total_packets_) received_[static_cast<size_t>(seq)] = true;
    while (cum_ack_ < total_packets_ &&
           received_[static_cast<size_t>(cum_ack_)]) {
      ++cum_ack_;
    }
    const int ack = cum_ack_;
    sim_.after(cfg_.one_way, [this, ack] { on_ack(ack); });
  }

  void on_ack(int ack) {
    if (done_at_ >= 0) return;
    if (ack > highest_acked_) {
      highest_acked_ = ack;
      dup_acks_ = 0;
      progress_gen_++;
      if (in_recovery_) {
        if (highest_acked_ >= recovery_end_) {
          in_recovery_ = false;
        } else {
          // NewReno partial ack: the next hole is known lost; retransmit
          // immediately instead of waiting for an RTO.
          ++result_.retransmits;
          transmit(highest_acked_);
        }
      }
      // Window growth per newly acked packet.
      if (cwnd_ < ssthresh_) {
        cwnd_ += 1;  // slow start: +1 per ack
      } else {
        cwnd_ += 1.0 / cwnd_;  // Reno congestion avoidance
      }
      result_.max_cwnd_packets = std::max(result_.max_cwnd_packets, cwnd_);
      if (highest_acked_ >= total_packets_) {
        done_at_ = sim_.now();
        return;
      }
      try_send();
      arm_rto();
      return;
    }
    // Duplicate cumulative ack: a later packet arrived out of order.
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      // Fast retransmit + recovery (Reno).
      ssthresh_ = std::max(cwnd_ / 2, 2.0);
      cwnd_ = ssthresh_;
      in_recovery_ = true;
      recovery_end_ = next_seq_;
      ++result_.retransmits;
      transmit(highest_acked_);  // the missing packet
    }
  }

  void arm_rto() {
    const std::uint64_t gen = progress_gen_;
    sim_.after(cfg_.rto, [this, gen] {
      if (done_at_ >= 0 || gen != progress_gen_) return;
      // No progress for a full RTO: retransmit the missing packet and
      // collapse to slow start.
      ssthresh_ = std::max(cwnd_ / 2, 2.0);
      cwnd_ = cfg_.initial_window_packets;
      in_recovery_ = false;
      ++result_.retransmits;
      ++progress_gen_;
      transmit(highest_acked_);
      arm_rto();
    });
  }

  Simulation& sim_;
  PacketSimConfig cfg_;
  int total_packets_;
  std::vector<bool> received_;

  // Sender state.
  int next_seq_ = 0;
  int highest_acked_ = 0;
  int cum_ack_ = 0;
  double cwnd_;
  double ssthresh_ = 1e18;
  double window_limit_;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  int recovery_end_ = 0;
  std::uint64_t progress_gen_ = 0;

  // Bottleneck state.
  int queue_len_ = 0;
  SimTime server_free_ = 0;

  SimTime done_at_ = -1;
  PacketSimResult result_;
};

}  // namespace

PacketSimResult packet_level_transfer(double bytes,
                                      const PacketSimConfig& cfg) {
  Simulation sim;
  PacketTcp conn(sim, bytes, cfg);
  return conn.run();
}

}  // namespace gridsim::tcp
