#include "simtcp/packet_sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace gridsim::tcp {

namespace {

/// The whole connection state machine; lives for one transfer.
class PacketTcp {
 public:
  PacketTcp(Simulation& sim, double bytes, const PacketSimConfig& cfg)
      : sim_(sim),
        cfg_(cfg),
        total_packets_(static_cast<int>(std::ceil(bytes / cfg.mss))),
        received_(static_cast<size_t>(total_packets_), 0),
        forced_drop_(static_cast<size_t>(total_packets_), 0),
        cwnd_(cfg.initial_window_packets),
        window_limit_(std::max(1.0, cfg.window_limit_bytes / cfg.mss)),
        loss_(cfg.loss) {
    for (int seq : cfg.forced_drops) {
      if (seq >= 0 && seq < total_packets_)
        forced_drop_[static_cast<size_t>(seq)] = 1;
    }
  }

  PacketSimResult run() {
    if (total_packets_ == 0) return result_;
    try_send();
    arm_rto();
    sim_.run();
    result_.completion = done_at_;
    return result_;
  }

 private:
  double service_time_s() const { return cfg_.mss / cfg_.capacity; }

  int inflight() const { return next_seq_ - highest_acked_; }

  void try_send() {
    while (next_seq_ < total_packets_ &&
           inflight() < static_cast<int>(std::min(cwnd_, window_limit_))) {
      transmit(next_seq_++, /*retransmission=*/false);
    }
  }

  /// Attempts to enqueue `seq` at the bottleneck. Returns false when the
  /// packet was dropped (droptail overflow, or a forced first-transmission
  /// loss) — the caller decides whether a timer must be re-armed for it.
  bool transmit(int seq, bool retransmission) {
    ++result_.packets_sent;
    if (!retransmission && seq < total_packets_ &&
        forced_drop_[static_cast<size_t>(seq)] != 0) {
      forced_drop_[static_cast<size_t>(seq)] = 0;
      ++result_.losses;
      return false;
    }
    // Random channel loss: one decision per attempt (first transmissions
    // AND retransmits), so burst losses can eat a retransmit too and only
    // the RTO rescue path guarantees eventual delivery.
    if (loss_.drop()) {
      ++result_.losses;
      ++result_.injected_losses;
      sim_.tracer().record(sim_.now(), TraceKind::kFault, "packet",
                           static_cast<double>(seq), "injected-loss");
      return false;
    }
    if (queue_len_ >= cfg_.queue_packets) {
      ++result_.losses;  // droptail
      return false;
    }
    ++queue_len_;
    // Bottleneck serves packets back to back.
    const SimTime service = from_seconds(service_time_s());
    server_free_ = std::max(server_free_, sim_.now()) + service;
    const SimTime departure = server_free_;
    sim_.at(departure, [this, seq] {
      --queue_len_;
      sim_.after(cfg_.one_way, [this, seq] { on_receive(seq); });
    });
    return true;
  }

  void on_receive(int seq) {
    if (seq < total_packets_) received_[static_cast<size_t>(seq)] = 1;
    while (cum_ack_ < total_packets_ &&
           received_[static_cast<size_t>(cum_ack_)] != 0) {
      ++cum_ack_;
    }
    // Duplicate-ack batching: past the third dup for the same cumulative
    // value the sender learns nothing new (fast retransmit has fired and
    // this model has no per-dup window inflation), so stop scheduling the
    // ack events at all.
    if (cum_ack_ == last_ack_emitted_) {
      if (++dups_emitted_ > 3) return;
    } else {
      last_ack_emitted_ = cum_ack_;
      dups_emitted_ = 0;
    }
    const int ack = cum_ack_;
    sim_.after(cfg_.one_way, [this, ack] { on_ack(ack); });
  }

  void on_ack(int ack) {
    if (done_at_ >= 0) return;
    if (ack > highest_acked_) {
      highest_acked_ = ack;
      dup_acks_ = 0;
      if (in_recovery_) {
        if (highest_acked_ >= recovery_end_) {
          in_recovery_ = false;
        } else {
          // NewReno partial ack: the next hole is known lost; retransmit
          // immediately instead of waiting for an RTO. A drop of this
          // retransmit needs no special handling — arm_rto() below pushes
          // a fresh deadline that rescues it.
          ++result_.retransmits;
          if (!transmit(highest_acked_, /*retransmission=*/true))
            ++result_.retransmit_drops;
        }
      }
      // Window growth per newly acked packet.
      if (cwnd_ < ssthresh_) {
        cwnd_ += 1;  // slow start: +1 per ack
      } else {
        cwnd_ += 1.0 / cwnd_;  // Reno congestion avoidance
      }
      result_.max_cwnd_packets = std::max(result_.max_cwnd_packets, cwnd_);
      if (highest_acked_ >= total_packets_) {
        done_at_ = sim_.now();
        return;
      }
      try_send();
      arm_rto();
      return;
    }
    // Duplicate cumulative ack: a later packet arrived out of order.
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      // Fast retransmit + recovery (Reno).
      ssthresh_ = std::max(cwnd_ / 2, 2.0);
      cwnd_ = ssthresh_;
      in_recovery_ = true;
      recovery_end_ = next_seq_;
      ++result_.retransmits;
      const bool queued = transmit(highest_acked_, /*retransmission=*/true);
      if (!queued) ++result_.retransmit_drops;
      // Fast retransmit is forward progress: push the RTO deadline so the
      // timer armed before recovery cannot expire mid-recovery, collapse
      // cwnd and send a second copy. When the retransmit itself was
      // dropped at a full queue, the fresh deadline doubles as its rescue
      // — one RTO from now rather than from some stale pre-recovery ack.
      arm_rto();
    }
  }

  /// Declares forward progress: the connection is owed a quiet period of
  /// one full RTO before the timeout path may act. Keeps at most one timer
  /// event outstanding — re-arming moves the deadline, it does not stack
  /// another closure in the event queue.
  void arm_rto() {
    rto_deadline_ = sim_.now() + cfg_.rto;
    if (!rto_timer_pending_) schedule_rto_timer(rto_deadline_);
  }

  void schedule_rto_timer(SimTime at) {
    rto_timer_pending_ = true;
    sim_.at(at, [this] { on_rto_timer(); });
  }

  void on_rto_timer() {
    rto_timer_pending_ = false;
    if (done_at_ >= 0) return;
    if (sim_.now() < rto_deadline_) {
      // Progress since this timer was scheduled pushed the deadline; chase
      // it with the single timer instead of acting on stale state.
      schedule_rto_timer(rto_deadline_);
      return;
    }
    // No progress for a full RTO: retransmit the missing packet and
    // collapse to slow start.
    ++result_.rto_timeouts;
    ssthresh_ = std::max(cwnd_ / 2, 2.0);
    cwnd_ = cfg_.initial_window_packets;
    in_recovery_ = false;
    ++result_.retransmits;
    if (!transmit(highest_acked_, /*retransmission=*/true))
      ++result_.retransmit_drops;
    arm_rto();
  }

  Simulation& sim_;
  PacketSimConfig cfg_;
  int total_packets_;
  std::vector<std::uint8_t> received_;
  std::vector<std::uint8_t> forced_drop_;  // pending injected losses, by seq

  // Sender state.
  int next_seq_ = 0;
  int highest_acked_ = 0;
  int cum_ack_ = 0;
  double cwnd_;
  double ssthresh_ = 1e18;
  double window_limit_;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  int recovery_end_ = 0;

  // Receiver ack-batching state.
  int last_ack_emitted_ = 0;
  int dups_emitted_ = 0;

  // Timer state: one outstanding timer event, chasing rto_deadline_.
  SimTime rto_deadline_ = 0;
  bool rto_timer_pending_ = false;

  // Bottleneck state.
  int queue_len_ = 0;
  SimTime server_free_ = 0;

  simfault::LossProcess loss_;  // random channel drops, one draw per attempt

  SimTime done_at_ = -1;
  PacketSimResult result_;
};

}  // namespace

PacketSimResult packet_level_transfer(double bytes, const PacketSimConfig& cfg,
                                      const SimHooks& hooks) {
  Simulation sim;
  if (hooks.on_start) hooks.on_start(sim);
  PacketTcp conn(sim, bytes, cfg);
  PacketSimResult result = conn.run();
  if (hooks.on_finish) hooks.on_finish(sim);
  return result;
}

}  // namespace gridsim::tcp
