#include "simtcp/tcp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "simcore/check.hpp"

namespace gridsim::tcp {

namespace {

/// Below this allocated rate (B/s) a tick counts as a stall: unreachable in
/// any healthy configuration (the smallest window cap is ~2 MSS per RTT, a
/// few kB/s even on second-long RTTs), but safely above the trickle
/// capacity a flapped-down link leaves behind (FlapSpec::down_capacity,
/// default 1 B/s).
constexpr double kStallRate = 8.0;

double effective_buffer(double setsockopt_request, double core_max,
                        const double auto_bounds[3], bool lock_to_initial) {
  if (setsockopt_request > 0) {
    // Explicit setsockopt: clamped by the core limit, auto-tuning disabled.
    return std::min(setsockopt_request, core_max);
  }
  if (lock_to_initial) return auto_bounds[1];
  // Kernel auto-tuning: the buffer grows on demand up to the bound, so the
  // bound is the binding value for a long transfer.
  return auto_bounds[2];
}

}  // namespace

TcpChannel::TcpChannel(net::Network& network, net::HostId src, net::HostId dst,
                       const KernelTunables& snd_kernel,
                       const KernelTunables& rcv_kernel, SocketOptions options,
                       TcpModelParams params)
    : net_(network),
      sim_(network.sim()),
      src_(src),
      dst_(dst),
      params_(params),
      options_(options),
      pacing_(options.pacing),
      algo_(snd_kernel.algo) {
  snd_limit_ = effective_buffer(options.sndbuf, snd_kernel.wmem_max,
                                snd_kernel.tcp_wmem,
                                options.lock_buffers_to_initial);
  rcv_limit_ = effective_buffer(options.rcvbuf, rcv_kernel.rmem_max,
                                rcv_kernel.tcp_rmem,
                                options.lock_buffers_to_initial);
  rtt_ = 2 * net_.path_latency(src, dst);
  queue_budget_ = net_.path_queue(src, dst);
  cwnd_ = params_.initial_window_mss * params_.mss;
  ssthresh_ = std::numeric_limits<double>::infinity();
  bic_wmax_ = 0;
  last_active_ = sim_.now();
}

double TcpChannel::window() const {
  return std::min({cwnd_, snd_limit_, rcv_limit_});
}

double TcpChannel::rate_cap(double remaining_bytes) const {
  // A transfer that fits inside the window streams at line rate, as does
  // any transfer whose window exceeds the path BDP (acks return before the
  // window drains, so the ack clock never stalls the sender). Only when
  // W < C * RTT does the window bind:
  //   duration(b) = max(RTT + b/C, b * RTT / W)
  // -- at least one full RTT to ack the tail beyond the first window, and
  // asymptotically the classic W-per-RTT rate.
  const double w = window();
  if (remaining_bytes <= w) return net::kUnlimitedRate;
  const double rtt_s = to_seconds(std::max<SimTime>(rtt_, 1));
  const double c = net_.path_capacity(src_, dst_);
  if (w >= c * rtt_s) return net::kUnlimitedRate;
  const double duration =
      std::max(rtt_s + remaining_bytes / c, remaining_bytes * rtt_s / w);
  return remaining_bytes / duration;
}

void TcpChannel::send(double bytes, std::function<void()> on_buffered,
                      std::function<void()> on_delivered) {
  GRIDSIM_CHECK(bytes >= 0 && std::isfinite(bytes),
                "TcpChannel::send: bad byte count %g", bytes);
  Segment seg;
  seg.bytes = bytes;
  // The segment is fully resident in the send buffer once everything queued
  // before it, minus the buffer space it does not itself need, has drained.
  seg.buffered_threshold = enqueued_total_ + bytes - snd_limit_;
  seg.on_buffered = std::move(on_buffered);
  seg.on_delivered = std::move(on_delivered);
  enqueued_total_ += bytes;

  if (drained_ >= seg.buffered_threshold && seg.on_buffered) {
    seg.buffered_fired = true;
    sim_.post(std::move(seg.on_buffered));
    seg.on_buffered = nullptr;
  } else if (!seg.on_buffered) {
    seg.buffered_fired = true;
  }

  segments_.push_back(std::move(seg));
  if (flow_ == net::kInvalidFlow) {
    apply_idle_decay();
    start_head_segment();
    schedule_tick();
  }
}

Task<void> TcpChannel::send_buffered(double bytes) {
  Trigger done(sim_);
  send(bytes, [&done] { done.fire(); }, nullptr);
  co_await done.wait();
}

Task<void> TcpChannel::send_delivered(double bytes) {
  Trigger done(sim_);
  send(bytes, nullptr, [&done] { done.fire(); });
  co_await done.wait();
}

void TcpChannel::start_head_segment() {
  GRIDSIM_DCHECK(!segments_.empty());
  GRIDSIM_DCHECK(flow_ == net::kInvalidFlow);
  flow_ = net_.start_flow(src_, dst_, segments_.front().bytes,
                          rate_cap(segments_.front().bytes),
                          [this] { on_head_drained(); });
}

void TcpChannel::on_head_drained() {
  flow_ = net::kInvalidFlow;
  GRIDSIM_CHECK(!segments_.empty(),
                "TcpChannel: flow completion with no segment in flight");
  Segment seg = std::move(segments_.front());
  segments_.pop_front();
  drained_ += seg.bytes;
  last_active_ = sim_.now();

  // Byte conservation: the pipe can never have drained more than was
  // enqueued, and when the pipeline empties the two must agree exactly
  // (both sides sum the same segment sizes in the same order).
  GRIDSIM_CHECK(drained_ <= enqueued_total_,
                "TcpChannel: drained %.17g of %.17g enqueued bytes",
                drained_, enqueued_total_);
  GRIDSIM_CHECK(!segments_.empty() || drained_ == enqueued_total_,
                "TcpChannel: idle with %.17g bytes unaccounted for",
                enqueued_total_ - drained_);

  // The head segment itself is certainly resident (in fact gone) now.
  if (!seg.buffered_fired && seg.on_buffered) {
    sim_.post(std::move(seg.on_buffered));
    seg.on_buffered = nullptr;
  }

  // Space freed in the send buffer: fire pending on_buffered callbacks whose
  // thresholds are now met (FIFO, thresholds are monotonic).
  for (auto& pending : segments_) {
    if (pending.buffered_fired) continue;
    if (drained_ >= pending.buffered_threshold) {
      pending.buffered_fired = true;
      if (pending.on_buffered) {
        sim_.post(std::move(pending.on_buffered));
        pending.on_buffered = nullptr;
      }
    } else {
      break;
    }
  }

  // The last byte left the fluid pipe now; it reaches the receiver one
  // propagation delay later.
  const double bytes = seg.bytes;
  if (seg.on_delivered) {
    sim_.after(net_.path_latency(src_, dst_),
               [this, bytes, cb = std::move(seg.on_delivered)] {
                 bytes_delivered_ += bytes;
                 GRIDSIM_CHECK(bytes_delivered_ <= drained_,
                               "TcpChannel: delivered %.17g bytes but only "
                               "%.17g ever drained",
                               bytes_delivered_, drained_);
                 cb();
               });
  } else {
    bytes_delivered_ += bytes;
  }

  if (!segments_.empty()) start_head_segment();
}

void TcpChannel::schedule_tick() { schedule_tick(std::max<SimTime>(rtt_, 1)); }

void TcpChannel::schedule_tick(SimTime delay) {
  const std::uint64_t gen = ++tick_gen_;
  sim_.after(std::max<SimTime>(delay, 1), [this, gen] { on_tick(gen); });
}

void TcpChannel::on_tick(std::uint64_t gen) {
  if (gen != tick_gen_) return;  // superseded
  if (flow_ == net::kInvalidFlow) return;  // went idle; next send restarts

  // WAN jitter moves propagation latency under the connection's feet;
  // re-read it so the window/RTT cap and the tick cadence track the path.
  // Without fault injection latencies are static and this is a no-op.
  rtt_ = 2 * net_.path_latency(src_, dst_);

  const net::FlowInfo info = net_.flow_info(flow_);

  // Degraded progress: the allocation collapsed to (near) nothing — a link
  // flapped down or a loss episode swallowed the path. Behave like a real
  // sender taking back-to-back RTOs: drop to the restart window, retry at
  // exponentially backed-off intervals, and surface the event.
  if (info.rate < kStallRate) {
    ++stall_events_;
    ssthresh_ = std::max(cwnd_ / 2, 2 * params_.mss);
    cwnd_ = params_.initial_window_mss * params_.mss;
    in_slow_start_ = true;
    if (sim_.tracer().enabled(TraceKind::kFault)) {
      sim_.tracer().record(sim_.now(), TraceKind::kFault,
                           net_.host(src_).name + "->" + net_.host(dst_).name,
                           static_cast<double>(stall_events_), "tcp-retry");
    }
    stall_backoff_ = stall_backoff_ == 0
                         ? std::max<SimTime>(rtt_, params_.idle_rto)
                         : std::min<SimTime>(stall_backoff_ * 2, seconds(2));
    update_flow_cap();
    schedule_tick(stall_backoff_);
    return;
  }
  stall_backoff_ = 0;
  const double rtt_s = to_seconds(std::max<SimTime>(rtt_, 1));
  const double bdp_share = info.achievable_rate * rtt_s;
  const double queue_frac = pacing_ ? 1.0 : params_.unpaced_queue_fraction;
  const double loss_point = bdp_share + queue_budget_ * queue_frac;

  if (sim_.tracer().enabled(TraceKind::kCwnd)) {
    sim_.tracer().record(sim_.now(), TraceKind::kCwnd,
                         net_.host(src_).name + "->" + net_.host(dst_).name,
                         cwnd_);
  }

  // Packets only enter the network through the effective window: a cwnd
  // that the socket buffers cannot back never overflows a queue. This is
  // why the default grid configuration plateaus stably at ~120 Mbps.
  if (window() > loss_point) {
    on_loss();
  } else if (cwnd_ < std::min(snd_limit_, rcv_limit_)) {
    grow_window();
  }
  cwnd_ = std::max(cwnd_, 2 * params_.mss);
  update_flow_cap();
  schedule_tick();
}

void TcpChannel::on_loss() {
  ++loss_events_;
  if (sim_.tracer().enabled(TraceKind::kLoss)) {
    sim_.tracer().record(sim_.now(), TraceKind::kLoss,
                         net_.host(src_).name + "->" + net_.host(dst_).name,
                         cwnd_, in_slow_start_ ? "slow-start" : "ca");
  }
  if (in_slow_start_) {
    // Slow-start overshoot. An un-paced sender dumps a full doubled window
    // into the bottleneck queue: many segments drop, recovery degenerates
    // to an RTO-like restart. A paced sender loses a single segment and
    // exits cleanly at half the overshoot window.
    ssthresh_ = std::max(cwnd_ / 2, 2 * params_.mss);
    bic_wmax_ = cwnd_;
    cwnd_ = pacing_ ? ssthresh_ : params_.initial_window_mss * params_.mss;
    in_slow_start_ = !pacing_ && cwnd_ < ssthresh_;
  } else {
    bic_wmax_ = cwnd_;
    const double beta =
        algo_ == CongestionAlgo::kCubic ? 0.7 : params_.bic_beta;
    cwnd_ = std::max(cwnd_ * beta, 2 * params_.mss);
    ssthresh_ = cwnd_;
  }
  cubic_epoch_start_ = sim_.now();
}

void TcpChannel::grow_window() {
  const double mss = params_.mss;
  if (in_slow_start_ && cwnd_ < ssthresh_) {
    cwnd_ = std::min(cwnd_ * 2, ssthresh_);
    if (cwnd_ >= ssthresh_) in_slow_start_ = false;
    return;
  }
  in_slow_start_ = false;
  switch (algo_) {
    case CongestionAlgo::kReno:
      cwnd_ += mss;
      break;
    case CongestionAlgo::kBic: {
      if (bic_wmax_ > cwnd_) {
        const double step = std::clamp((bic_wmax_ - cwnd_) / 2, mss * 0.25,
                                       params_.bic_smax_mss * mss);
        cwnd_ += step;
      } else {
        cwnd_ += mss;  // max probing beyond the last known maximum
      }
      break;
    }
    case CongestionAlgo::kCubic: {
      // W(t) = C_cubic (t - K)^3 + Wmax, K = cbrt(Wmax * (1-beta) / C),
      // with the RFC 8312 constants (C = 0.4 MSS/s^3, beta = 0.7).
      const double c_cubic = 0.4 * mss;
      const double wmax = std::max(bic_wmax_, cwnd_);
      const double t = to_seconds(sim_.now() - cubic_epoch_start_);
      const double k = std::cbrt(wmax * 0.3 / c_cubic);
      const double target = c_cubic * (t - k) * (t - k) * (t - k) + wmax;
      // Grow toward the cubic target, at least Reno-fair, without jumps.
      const double next = std::max(cwnd_ + mss * 0.3,
                                   std::min(target, cwnd_ * 1.5));
      cwnd_ = std::max(cwnd_, next);
      break;
    }
  }
}

void TcpChannel::apply_idle_decay() {
  // RFC 2861-style: after each full idle RTO the restart window halves,
  // bounded below by the initial window. ssthresh is retained, so the ramp
  // back is fast (slow start to ssthresh).
  const SimTime idle = sim_.now() - last_active_;
  if (idle < params_.idle_rto) return;
  const double iw = params_.initial_window_mss * params_.mss;
  double w = cwnd_;
  for (SimTime t = 0; t + params_.idle_rto <= idle && w > iw;
       t += params_.idle_rto) {
    w /= 2;
  }
  cwnd_ = std::max(w, iw);
  if (cwnd_ < ssthresh_) in_slow_start_ = true;
}

void TcpChannel::update_flow_cap() {
  if (flow_ == net::kInvalidFlow) return;
  // flow_remaining() is quantized at the network's last settle point, so
  // the cap computed here — and with it the solved rates and every pinned
  // campaign digest — is identical under the incremental solver and the
  // eager-settling oracle.
  const double remaining = net_.flow_remaining(flow_);
  net_.set_rate_cap(flow_, rate_cap(remaining));
}

TcpChannel& TcpConnection::from(net::HostId host) {
  if (ab_.source() == host) return ab_;
  assert(ba_.source() == host);
  return ba_;
}

}  // namespace gridsim::tcp
