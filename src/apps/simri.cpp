#include "apps/simri.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "mpi/mpi.hpp"
#include "simcore/simulation.hpp"

namespace gridsim::apps {

namespace {

using mpi::Rank;

constexpr int kTagWork = 1;
constexpr int kTagResult = 2;

struct Shared {
  const SimriConfig* app;
  SimTime distribute_done = 0;
  SimTime compute_results_in = 0;
  SimTime total_done = 0;
};

Task<void> master_body(Rank& r, Shared* sh) {
  const int slaves = r.size() - 1;
  const double vectors = double(sh->app->object_n) * sh->app->object_n;
  const double per_slave = vectors / slaves;
  // Static division: one set per slave.
  for (int s = 1; s <= slaves; ++s)
    co_await r.send(s, per_slave * sh->app->bytes_per_vector, kTagWork);
  sh->distribute_done = r.sim().now();
  for (int s = 1; s <= slaves; ++s)
    (void)co_await r.recv(mpi::kAnySource, kTagResult);
  sh->compute_results_in = r.sim().now();
  sh->total_done = r.sim().now();
}

Task<void> slave_body(Rank& r, const SimriConfig* app) {
  const int slaves = r.size() - 1;
  const double vectors = double(app->object_n) * app->object_n / slaves;
  (void)co_await r.recv(0, kTagWork);
  co_await r.compute(vectors * app->vector_compute_seconds);
  co_await r.send(0, vectors * app->result_bytes_per_vector, kTagResult);
}

}  // namespace

SimriResult run_simri(const topo::GridSpec& spec, int nodes,
                      const profiles::ExperimentConfig& cfg,
                      const SimriConfig& app) {
  if (nodes < 2) throw std::invalid_argument("simri needs >= 2 nodes");
  if (spec.sites.empty() || spec.sites[0].nodes < nodes)
    throw std::invalid_argument("first site too small for requested nodes");
  Simulation sim;
  topo::Grid grid(sim, spec);
  std::vector<net::HostId> placement;
  for (int n = 0; n < nodes; ++n) placement.push_back(grid.node(0, n));
  mpi::Job job(grid, placement, cfg.profile, cfg.kernel);

  Shared sh;
  sh.app = &app;
  sim.spawn(master_body(job.rank(0), &sh));
  for (int s = 1; s < nodes; ++s) sim.spawn(slave_body(job.rank(s), &app));
  sim.run();

  SimriResult res;
  res.total_time = sh.total_done;
  // Communication = everything that is not slave compute: distribution plus
  // the result collection tail beyond the slowest slave's compute.
  const int slaves = nodes - 1;
  const double vectors = double(app.object_n) * app.object_n;
  const double slave_compute_ref =
      vectors / slaves * app.vector_compute_seconds;
  const double speed = grid.cpu_speed(grid.node(0, 1));
  const SimTime compute_span = from_seconds(slave_compute_ref / speed);
  res.comm_time = res.total_time - compute_span;
  res.comm_fraction = to_seconds(res.comm_time) / to_seconds(res.total_time);
  // One slave doing all vectors, no communication:
  const double t1 = vectors * app.vector_compute_seconds / speed;
  res.speedup = t1 / to_seconds(res.total_time);
  res.efficiency = res.speedup / slaves;
  return res;
}

}  // namespace gridsim::apps
