// Simri: 3D Magnetic Resonance Imaging simulator (paper Section 2.2.2,
// Benoit-Cattin et al.).
//
// Master/slave with static work division: the master splits the virtual
// object into vector sets, sends one set to each slave, the slaves compute
// the magnetization evolution and return radio-frequency signals. The
// paper reports that on an 8-node cluster the simulator reaches ~100%
// efficiency (the master does not compute) and that synchronisation +
// communication cost only ~1.5% of the runtime once the object is at
// least 256x256.
#pragma once

#include "profiles/profiles.hpp"
#include "simcore/time.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::apps {

struct SimriConfig {
  /// Object edge: the object has object_n^2 vectors (the paper's "size of
  /// the input object", e.g. 256*256).
  int object_n = 256;
  /// Bytes per vector sent to a slave (3D magnetization vector + params).
  double bytes_per_vector = 48;
  /// Bytes per vector returned (RF signal contribution).
  double result_bytes_per_vector = 16;
  /// Reference compute seconds per vector.
  double vector_compute_seconds = 200e-6;
};

struct SimriResult {
  SimTime total_time = 0;
  SimTime comm_time = 0;  ///< distribute + collect (master-observed)
  /// Fraction of the runtime spent communicating/synchronising.
  double comm_fraction = 0;
  /// Speed-up over a single slave doing everything.
  double speedup = 0;
  /// speedup / slave count: ~1.0 on a homogeneous cluster (paper).
  double efficiency = 0;
};

/// Runs Simri on `nodes` nodes of the first site of `spec` (one master +
/// nodes-1 slaves; the master does not compute).
SimriResult run_simri(const topo::GridSpec& spec, int nodes,
                      const profiles::ExperimentConfig& cfg,
                      const SimriConfig& app = {});

}  // namespace gridsim::apps
