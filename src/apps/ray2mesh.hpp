// ray2mesh: the paper's real application (Sections 2.2.1 and 4.4).
//
// A master/worker seismic ray tracer: the master hands out sets of 1000
// rays (69 kB per set message) to 32 slaves on demand — a faster slave (or
// one closer to the master) turns sets around quicker and therefore
// computes more rays (Table 6). When the 1M rays are exhausted, every node
// merges the submesh information (~235 MB of traffic per node) (Table 7).
#pragma once

#include <vector>

#include "profiles/profiles.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::apps {

struct Ray2MeshConfig {
  int total_rays = 1'000'000;
  int rays_per_set = 1000;
  double request_bytes = 64;    ///< slave -> master work request
  double set_bytes = 69'000;    ///< master -> slave: one set of 1000 rays
  /// Reference compute time per ray (calibrated so the four-cluster
  /// deployment's compute phase lasts ~185 s, Table 7).
  double ray_compute_seconds = 6.17e-3;
  /// Merge-phase traffic per node (the paper: ~235 MB).
  double merge_traffic_bytes = 235e6;
  /// Reference merge computation per node (mesh cell merging dominates the
  /// paper's ~166 s merge phase; the network moves 235 MB in seconds).
  double merge_compute_seconds = 160.0;
  /// Initialisation + final write phases (total - comp - merge in Table 7).
  double init_write_seconds = 8.0;
};

struct Ray2MeshResult {
  /// Rays computed by each slave (index = slave id, 0-based).
  std::vector<int> rays_per_slave;
  /// Rays computed per site.
  std::vector<int> rays_per_site;
  SimTime compute_time = 0;  ///< work distribution phase duration
  SimTime merge_time = 0;    ///< merge phase duration
  SimTime total_time = 0;    ///< compute + merge + init/write
  /// TCP stall (RTO-like) events across the job: nonzero when a fault plan
  /// degraded the WAN during the run (see mpi::Job).
  int degraded_progress_events = 0;
};

/// Runs ray2mesh over every node of `spec` (one slave per node, plus a
/// master co-located on node 0 of `master_site`).
Ray2MeshResult run_ray2mesh(const topo::GridSpec& spec, int master_site,
                            const profiles::ExperimentConfig& cfg,
                            const Ray2MeshConfig& app = {},
                            const SimHooks& hooks = {});

}  // namespace gridsim::apps
