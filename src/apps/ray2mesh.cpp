#include "apps/ray2mesh.hpp"

#include <algorithm>
#include <cassert>

#include "collectives/collectives.hpp"
#include "mpi/mpi.hpp"
#include "simcore/simulation.hpp"

namespace gridsim::apps {

namespace {

using mpi::Rank;

constexpr int kTagRequest = 1;
constexpr int kTagSet = 2;
constexpr int kTagStop = 3;

struct Shared {
  const Ray2MeshConfig* app;
  std::vector<int> sets_per_slave;
  SimTime compute_done = 0;
  SimTime merge_done = 0;
  SimTime total_done = 0;
};

Task<void> master_body(Rank& r, Shared* sh) {
  const int slaves = r.size() - 1;
  int sets_left = sh->app->total_rays / sh->app->rays_per_set;
  int stopped = 0;
  co_await r.compute(sh->app->init_write_seconds / 2);
  while (stopped < slaves) {
    const mpi::RecvInfo req = co_await r.recv(mpi::kAnySource, kTagRequest);
    if (sets_left > 0) {
      --sets_left;
      ++sh->sets_per_slave[static_cast<size_t>(req.source - 1)];
      co_await r.send(req.source, sh->app->set_bytes, kTagSet);
    } else {
      ++stopped;
      co_await r.send(req.source, 8, kTagStop);
    }
  }
  sh->compute_done = r.sim().now();
  // Merge phase: the master participates in the submesh exchange.
  co_await coll::barrier(r);
  co_await coll::alltoall(r, sh->app->merge_traffic_bytes / (r.size() - 1));
  co_await r.compute(sh->app->merge_compute_seconds);
  co_await coll::barrier(r);
  sh->merge_done = r.sim().now();
  co_await r.compute(sh->app->init_write_seconds / 2);
  sh->total_done = r.sim().now();
}

Task<void> slave_body(Rank& r, const Ray2MeshConfig* app) {
  const double per_set = app->rays_per_set * app->ray_compute_seconds;
  while (true) {
    co_await r.send(0, app->request_bytes, kTagRequest);
    const mpi::RecvInfo got = co_await r.recv(0, mpi::kAnyTag);
    if (got.tag == kTagStop) break;
    co_await r.compute(per_set);
  }
  co_await coll::barrier(r);
  co_await coll::alltoall(r, app->merge_traffic_bytes / (r.size() - 1));
  co_await r.compute(app->merge_compute_seconds);
  co_await coll::barrier(r);
}

}  // namespace

Ray2MeshResult run_ray2mesh(const topo::GridSpec& spec, int master_site,
                            const profiles::ExperimentConfig& cfg,
                            const Ray2MeshConfig& app, const SimHooks& hooks) {
  Simulation sim;
  if (hooks.on_start) hooks.on_start(sim);
  topo::Grid grid(sim, spec);
  auto faults = topo::install_faults(grid, cfg.faults);
  // Rank 0: master, co-located with the first slave of its cluster.
  std::vector<net::HostId> placement;
  placement.push_back(grid.node(master_site, 0));
  for (int s = 0; s < grid.site_count(); ++s)
    for (int n = 0; n < grid.nodes_at(s); ++n)
      placement.push_back(grid.node(s, n));
  mpi::Job job(grid, placement, cfg.profile, cfg.kernel);

  Shared sh;
  sh.app = &app;
  sh.sets_per_slave.assign(static_cast<size_t>(job.size() - 1), 0);
  sim.spawn(master_body(job.rank(0), &sh));
  for (int s = 1; s < job.size(); ++s)
    sim.spawn(slave_body(job.rank(s), &app));
  sim.run();
  if (hooks.on_finish) hooks.on_finish(sim);

  Ray2MeshResult result;
  result.rays_per_slave.reserve(sh.sets_per_slave.size());
  for (int sets : sh.sets_per_slave)
    result.rays_per_slave.push_back(sets * app.rays_per_set);
  result.rays_per_site.assign(static_cast<size_t>(grid.site_count()), 0);
  for (int s = 1; s < job.size(); ++s) {
    const int site = grid.site_of(job.rank(s).host());
    result.rays_per_site[static_cast<size_t>(site)] +=
        result.rays_per_slave[static_cast<size_t>(s - 1)];
  }
  result.compute_time = sh.compute_done;
  result.merge_time = sh.merge_done - sh.compute_done;
  result.total_time = sh.total_done;
  result.degraded_progress_events = job.degraded_progress_events();
  return result;
}

}  // namespace gridsim::apps
