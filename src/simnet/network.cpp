#include "simnet/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gridsim::net {

namespace {
constexpr double kByteEpsilon = 1e-6;  // below this a flow counts as done
constexpr double kMinRate = 1e-3;      // B/s floor to avoid infinite etas
// Completion checks are never scheduled further out than this. A flow
// crawling at a fault-collapsed rate would otherwise park an event at its
// astronomically distant eta; since stale events cannot be removed from the
// queue, that event would keep the simulation alive (and its clock running)
// long after every process finished. Clamped checks simply re-settle and
// re-arm, so genuinely slow flows still complete. No healthy flow's eta
// comes close to this horizon (the longest clean transfers are seconds).
constexpr gridsim::SimTime kMaxCompletionCheck = gridsim::seconds(60);
}  // namespace

HostId Network::add_host(std::string name, double cpu_speed) {
  hosts_.push_back(Host{std::move(name), cpu_speed});
  return static_cast<HostId>(hosts_.size()) - 1;
}

LinkId Network::add_link(std::string name, double capacity_bytes_per_sec,
                         SimTime latency, double queue_bytes) {
  if (capacity_bytes_per_sec <= 0)
    throw std::invalid_argument("link capacity must be positive");
  Link l;
  l.name = std::move(name);
  l.capacity = capacity_bytes_per_sec;
  l.latency = latency;
  l.queue_bytes = queue_bytes;
  links_.push_back(std::move(l));
  return static_cast<LinkId>(links_.size()) - 1;
}

void Network::add_route(HostId src, HostId dst, std::vector<LinkId> links,
                        bool symmetric) {
  Route r;
  r.links = links;
  for (LinkId l : links) r.latency += link(l).latency;
  routes_[route_key(src, dst)] = r;
  if (symmetric) {
    Route back;
    back.links.assign(links.rbegin(), links.rend());
    back.latency = r.latency;
    routes_[route_key(dst, src)] = std::move(back);
  }
}

bool Network::has_route(HostId src, HostId dst) const {
  return routes_.count(route_key(src, dst)) != 0;
}

const Route& Network::route(HostId src, HostId dst) const {
  auto it = routes_.find(route_key(src, dst));
  if (it == routes_.end())
    throw std::out_of_range("no route between " +
                            hosts_.at(static_cast<size_t>(src)).name + " and " +
                            hosts_.at(static_cast<size_t>(dst)).name);
  return it->second;
}

double Network::path_capacity(HostId src, HostId dst) const {
  const Route& r = route(src, dst);
  double cap = kUnlimitedRate;
  for (LinkId l : r.links) cap = std::min(cap, link(l).capacity);
  return cap;
}

double Network::path_queue(HostId src, HostId dst) const {
  const Route& r = route(src, dst);
  double q = std::numeric_limits<double>::infinity();
  for (LinkId l : r.links) q = std::min(q, link(l).queue_bytes);
  return std::isfinite(q) ? q : 0.0;
}

void Network::set_link_capacity(LinkId l, double capacity_bytes_per_sec) {
  if (capacity_bytes_per_sec <= 0)
    throw std::invalid_argument("link capacity must stay positive");
  settle();
  links_.at(static_cast<size_t>(l)).capacity = capacity_bytes_per_sec;
  solve_and_schedule();
}

void Network::set_link_latency(LinkId l, SimTime latency) {
  if (latency < 0) throw std::invalid_argument("link latency must be >= 0");
  Link& link_ref = links_.at(static_cast<size_t>(l));
  if (link_ref.latency == latency) return;
  link_ref.latency = latency;
  for (auto& [key, r] : routes_) {
    if (std::find(r.links.begin(), r.links.end(), l) == r.links.end())
      continue;
    SimTime sum = 0;
    for (LinkId rl : r.links) sum += links_[static_cast<size_t>(rl)].latency;
    r.latency = sum;
  }
}

FlowId Network::start_flow(HostId src, HostId dst, double bytes,
                           double rate_cap, std::function<void()> on_complete) {
  if (bytes < 0) throw std::invalid_argument("negative flow size");
  const Route& r = route(src, dst);  // throws if unknown
  Flow f;
  f.id = next_flow_id_++;
  f.links = r.links;
  f.remaining = bytes;
  f.rate_cap = std::max(rate_cap, kMinRate);
  f.on_complete = std::move(on_complete);
  const FlowId id = f.id;
  settle();
  flows_.emplace(id, std::move(f));
  solve_and_schedule();
  return id;
}

void Network::set_rate_cap(FlowId id, double rate_cap) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  settle();
  it->second.rate_cap = std::max(rate_cap, kMinRate);
  solve_and_schedule();
}

void Network::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  settle();
  flows_.erase(it);
  solve_and_schedule();
}

FlowInfo Network::flow_info(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return {};
  // Report remaining as of the last settle; callers that need byte-exact
  // values should not race completions anyway.
  return FlowInfo{it->second.rate, it->second.achievable,
                  it->second.remaining};
}

double Network::link_utilization(LinkId l) const {
  double sum = 0;
  for (const auto& [id, f] : flows_)
    if (std::find(f.links.begin(), f.links.end(), l) != f.links.end())
      sum += f.rate;
  return sum;
}

void Network::settle() {
  const SimTime now = sim_.now();
  if (now == last_settle_) return;
  const double dt = to_seconds(now - last_settle_);
  last_settle_ = now;
  for (auto& [id, f] : flows_) {
    const double moved = f.rate * dt;
    f.remaining = std::max(0.0, f.remaining - moved);
    for (LinkId l : f.links)
      links_[static_cast<size_t>(l)].bytes_carried += moved;
  }
}

void Network::solve_and_schedule() {
  // Progressive-filling max-min with per-flow rate caps.
  //
  // Repeatedly find the tightest constraint — either a link's equal share
  // (residual / unfrozen-flow-count) or an unfrozen flow's cap — and freeze
  // at it. A frozen flow's rate is subtracted from all links it crosses.
  const std::size_t nl = links_.size();
  std::vector<double> residual(nl);
  std::vector<int> nflows(nl, 0);
  for (std::size_t i = 0; i < nl; ++i) residual[i] = links_[i].capacity;

  std::vector<Flow*> unfrozen;
  unfrozen.reserve(flows_.size());
  // Iterate in id order for determinism (unordered_map order is not stable).
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (auto& [id, f] : flows_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (FlowId id : ids) {
    Flow& f = flows_[id];
    f.rate = 0;
    unfrozen.push_back(&f);
    for (LinkId l : f.links) ++nflows[static_cast<size_t>(l)];
  }

  while (!unfrozen.empty()) {
    // Tightest link share.
    double best_link_share = std::numeric_limits<double>::infinity();
    LinkId best_link = -1;
    for (std::size_t i = 0; i < nl; ++i) {
      if (nflows[i] <= 0) continue;
      const double share = std::max(0.0, residual[i]) / nflows[i];
      if (share < best_link_share) {
        best_link_share = share;
        best_link = static_cast<LinkId>(i);
      }
    }
    // Tightest flow cap.
    double best_cap = std::numeric_limits<double>::infinity();
    Flow* capped = nullptr;
    for (Flow* f : unfrozen) {
      if (f->rate_cap < best_cap) {
        best_cap = f->rate_cap;
        capped = f;
      }
    }

    if (capped != nullptr && best_cap <= best_link_share) {
      capped->rate = best_cap;
      for (LinkId l : capped->links) {
        residual[static_cast<size_t>(l)] -= best_cap;
        --nflows[static_cast<size_t>(l)];
      }
      unfrozen.erase(std::find(unfrozen.begin(), unfrozen.end(), capped));
    } else if (best_link >= 0) {
      // Freeze every unfrozen flow crossing the bottleneck link.
      std::vector<Flow*> still;
      still.reserve(unfrozen.size());
      for (Flow* f : unfrozen) {
        const bool on_bottleneck =
            std::find(f->links.begin(), f->links.end(), best_link) !=
            f->links.end();
        if (on_bottleneck) {
          f->rate = best_link_share;
          for (LinkId l : f->links) {
            residual[static_cast<size_t>(l)] -= best_link_share;
            --nflows[static_cast<size_t>(l)];
          }
        } else {
          still.push_back(f);
        }
      }
      unfrozen.swap(still);
    } else {
      // Flows with no links (same-host loopback handled by caller); give
      // them their cap.
      for (Flow* f : unfrozen) f->rate = f->rate_cap;
      unfrozen.clear();
    }
  }

  // Post-solve: achievable rate = own rate + slack at the tightest crossed
  // link (what the flow could claim if its window were unlimited).
  for (FlowId id : ids) {
    Flow& f = flows_[id];
    double slack = std::numeric_limits<double>::infinity();
    for (LinkId l : f.links)
      slack = std::min(slack, std::max(0.0, residual[static_cast<size_t>(l)]));
    if (!std::isfinite(slack)) slack = 0.0;  // linkless flow
    f.achievable = f.rate + slack;
    schedule_completion(f);
  }
}

void Network::schedule_completion(Flow& f) {
  const FlowId id = f.id;
  if (f.remaining <= kByteEpsilon) {
    const std::uint64_t gen = ++f.completion_gen;
    sim_.post([this, id, gen] {
      auto it = flows_.find(id);
      if (it != flows_.end() && it->second.completion_gen == gen)
        finish_flow(id);
    });
    return;
  }
  const double rate = std::max(f.rate, kMinRate);
  const SimTime dur = from_seconds(f.remaining / rate);
  const SimTime eta = sim_.now() + std::min(dur, kMaxCompletionCheck);
  // Only schedule if this beats the already-pending check: keeps the event
  // horizon monotonically shrinking per flow (rate drops are handled by the
  // earlier event firing, re-settling and rescheduling).
  if (eta >= f.scheduled_eta) return;
  const std::uint64_t gen = ++f.completion_gen;
  f.scheduled_eta = eta;
  sim_.at(eta, [this, id, gen] {
    auto it = flows_.find(id);
    if (it == flows_.end() || it->second.completion_gen != gen) return;
    settle();
    if (it->second.remaining <= kByteEpsilon) {
      finish_flow(id);
    } else {
      it->second.scheduled_eta = kSimTimeNever;
      schedule_completion(it->second);
    }
  });
}

void Network::finish_flow(FlowId id) {
  settle();
  auto it = flows_.find(id);
  assert(it != flows_.end());
  assert(it->second.remaining <= 1.0 + 1e-9 * it->second.rate);
  std::function<void()> cb = std::move(it->second.on_complete);
  flows_.erase(it);
  solve_and_schedule();
  if (cb) cb();
}

}  // namespace gridsim::net
