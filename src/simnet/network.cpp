#include "simnet/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "simcore/check.hpp"

namespace gridsim::net {

namespace {
constexpr double kByteEpsilon = 1e-6;  // below this a flow counts as done
constexpr double kMinRate = 1e-3;      // B/s floor to avoid infinite etas
// Completion checks are never scheduled further out than this. A flow
// crawling at a fault-collapsed rate would otherwise park an event at its
// astronomically distant eta; since stale events cannot be removed from the
// queue, that event would keep the simulation alive (and its clock running)
// long after every process finished. Clamped checks simply re-settle and
// re-arm, so genuinely slow flows still complete. No healthy flow's eta
// comes close to this horizon (the longest clean transfers are seconds).
constexpr gridsim::SimTime kMaxCompletionCheck = gridsim::seconds(60);

SolverMode initial_solver_mode() {
  const char* v = std::getenv("GRIDSIM_NET_ORACLE");
  if (v == nullptr || *v == '\0') {
#if defined(GRIDSIM_NET_ORACLE_DEFAULT)
    return SolverMode::kGlobalOracle;
#else
    return SolverMode::kIncremental;
#endif
  }
  if (std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
      std::strcmp(v, "off") == 0)
    return SolverMode::kIncremental;
  return SolverMode::kGlobalOracle;
}
}  // namespace

Network::Network(Simulation& sim) : sim_(sim), mode_(initial_solver_mode()) {}

HostId Network::add_host(std::string name, double cpu_speed) {
  hosts_.push_back(Host{std::move(name), cpu_speed});
  return static_cast<HostId>(hosts_.size()) - 1;
}

LinkId Network::add_link(std::string name, double capacity_bytes_per_sec,
                         SimTime latency, double queue_bytes) {
  if (capacity_bytes_per_sec <= 0)
    throw std::invalid_argument("link capacity must be positive");
  Link l;
  l.name = std::move(name);
  l.capacity = capacity_bytes_per_sec;
  l.latency = latency;
  l.queue_bytes = queue_bytes;
  links_.push_back(std::move(l));
  link_capacity_.push_back(capacity_bytes_per_sec);
  index_.ensure_links(links_.size());
  solver_.ensure_links(links_.size());
  return static_cast<LinkId>(links_.size()) - 1;
}

void Network::add_route(HostId src, HostId dst, std::vector<LinkId> links,
                        bool symmetric) {
  // The bipartite index keeps one (flow, position) entry per link crossing,
  // so a route visiting the same link twice would corrupt its swap-pop
  // bookkeeping — and means a modelling error anyway.
  for (std::size_t i = 0; i < links.size(); ++i)
    for (std::size_t j = i + 1; j < links.size(); ++j)
      if (links[i] == links[j])
        throw std::invalid_argument("route crosses link '" +
                                    link(links[i]).name + "' twice");
  Route r;
  r.links = links;
  for (LinkId l : links) r.latency += link(l).latency;
  routes_[route_key(src, dst)] = r;
  if (symmetric) {
    Route back;
    back.links.assign(links.rbegin(), links.rend());
    back.latency = r.latency;
    routes_[route_key(dst, src)] = std::move(back);
  }
}

bool Network::has_route(HostId src, HostId dst) const {
  return routes_.count(route_key(src, dst)) != 0;
}

const Route& Network::route(HostId src, HostId dst) const {
  auto it = routes_.find(route_key(src, dst));
  if (it == routes_.end())
    throw std::out_of_range("no route between " +
                            hosts_.at(static_cast<size_t>(src)).name + " and " +
                            hosts_.at(static_cast<size_t>(dst)).name);
  return it->second;
}

double Network::path_capacity(HostId src, HostId dst) const {
  const Route& r = route(src, dst);
  double cap = kUnlimitedRate;
  for (LinkId l : r.links) cap = std::min(cap, link(l).capacity);
  return cap;
}

double Network::path_queue(HostId src, HostId dst) const {
  const Route& r = route(src, dst);
  double q = std::numeric_limits<double>::infinity();
  for (LinkId l : r.links) q = std::min(q, link(l).queue_bytes);
  return std::isfinite(q) ? q : 0.0;
}

void Network::set_link_capacity(LinkId l, double capacity_bytes_per_sec) {
  if (capacity_bytes_per_sec <= 0)
    throw std::invalid_argument("link capacity must stay positive");
  const std::vector<LinkId> seed{l};
  begin_mutation(seed, nullptr);
  links_.at(static_cast<size_t>(l)).capacity = capacity_bytes_per_sec;
  link_capacity_[static_cast<size_t>(l)] = capacity_bytes_per_sec;
  solve_and_schedule();
}

void Network::set_link_latency(LinkId l, SimTime latency) {
  if (latency < 0) throw std::invalid_argument("link latency must be >= 0");
  Link& link_ref = links_.at(static_cast<size_t>(l));
  if (link_ref.latency == latency) return;
  link_ref.latency = latency;
  for (auto& [key, r] : routes_) {
    if (std::find(r.links.begin(), r.links.end(), l) == r.links.end())
      continue;
    SimTime sum = 0;
    for (LinkId rl : r.links) sum += links_[static_cast<size_t>(rl)].latency;
    r.latency = sum;
  }
}

FlowId Network::start_flow(HostId src, HostId dst, double bytes,
                           double rate_cap, std::function<void()> on_complete) {
  if (bytes < 0) throw std::invalid_argument("negative flow size");
  const Route& r = route(src, dst);  // throws if unknown
  Flow f;
  f.id = next_flow_id_++;
  f.links = r.links;
  f.remaining = bytes;
  f.rate_cap = std::max(rate_cap, kMinRate);
  f.on_complete = std::move(on_complete);
  f.order = f.id;  // progressive filling breaks cap ties by arrival order
  f.last_settle = sim_.now();
  f.settle_idx = touch_times_.size();
  const FlowId id = f.id;
  Flow& flow = flows_.emplace(id, std::move(f)).first->second;
  index_.add(&flow);
  begin_mutation(flow.links, &flow);
  solve_and_schedule();
  return id;
}

void Network::set_rate_cap(FlowId id, double rate_cap) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  begin_mutation(it->second.links, &it->second);
  it->second.rate_cap = std::max(rate_cap, kMinRate);
  solve_and_schedule();
}

void Network::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& f = it->second;
  // The dying flow is settled with its component (its final byte chunk must
  // land in bytes_carried) but is excluded from the re-solve.
  begin_mutation(f.links, &f);
  index_.remove(&f);
  if (mode_ == SolverMode::kIncremental) solver_.remove_from_component(&f);
  forget_done_pending(id);
  flows_.erase(it);
  solve_and_schedule();
}

FlowInfo Network::flow_info(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return {};
  const Flow& f = it->second;
  return FlowInfo{f.rate, f.achievable, projected_remaining(f)};
}

double Network::flow_remaining(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0;
  return projected_remaining(it->second);
}

double Network::link_utilization(LinkId l) const {
  double sum = 0;
  for (const maxmin::FlowState* f : index_.flows_on(l)) sum += f->rate;
  return sum;
}

void Network::set_solver_mode(SolverMode mode) {
  GRIDSIM_CHECK(flows_.empty(),
                "solver mode can only change while no flows are active");
  mode_ = mode;
  done_pending_.clear();
  eta_heap_ = {};
  touch_times_.clear();
}

void Network::register_touch() {
  const SimTime now = sim_.now();
  last_touch_ = now;
  if (touch_times_.empty() || touch_times_.back() != now)
    touch_times_.push_back(now);
  // Compact once the touch log outgrows the flow population: settling
  // everything replays each pending (flow, segment) pair — work the lazy
  // scheme owes anyway — after which the log can restart empty.
  if (touch_times_.size() >= 4096 &&
      touch_times_.size() >= 4 * flows_.size()) {
    for (auto& [id, f] : flows_) settle_flow(f);
    touch_times_.clear();
    for (auto& [id, f] : flows_) f.settle_idx = 0;
  }
}

double Network::projected_remaining(const Flow& f) const {
  // `remaining` is anchored at the flow's own last settle; reads are
  // quantized at the network-wide last touch, which is exactly where the
  // eager-settle oracle would have settled everything. Replays the global
  // settle points in between (see touch_times_) without mutating the flow.
  if (last_touch_ == f.last_settle) return f.remaining;
  double rem = f.remaining;
  SimTime prev = f.last_settle;
  for (std::size_t i = f.settle_idx; i < touch_times_.size(); ++i) {
    const SimTime t = touch_times_[i];
    if (t <= prev) continue;
    if (t > last_touch_) break;
    rem = std::max(0.0, rem - f.rate * to_seconds(t - prev));
    prev = t;
  }
  if (last_touch_ > prev)
    rem = std::max(0.0, rem - f.rate * to_seconds(last_touch_ - prev));
  return rem;
}

void Network::settle_flow(Flow& f) {
  const SimTime now = sim_.now();
  if (now == f.last_settle) {
    f.settle_idx = touch_times_.size();
    return;
  }
  // Replay the oracle's settle points one segment at a time: the same
  // max(0, rem - rate*dt) fold the eager settle performs, so `remaining`
  // stays bit-identical to the oracle's (a single fused subtraction over
  // the whole quiet interval differs in ulps).
  double rem = f.remaining;
  double moved_total = 0;
  SimTime prev = f.last_settle;
  const std::size_t n = touch_times_.size();
  for (std::size_t i = f.settle_idx; i < n; ++i) {
    const SimTime t = touch_times_[i];
    if (t <= prev) continue;
    if (t > now) break;
    const double moved = f.rate * to_seconds(t - prev);
    rem = std::max(0.0, rem - moved);
    moved_total += moved;
    prev = t;
  }
  if (now > prev) {
    const double moved = f.rate * to_seconds(now - prev);
    rem = std::max(0.0, rem - moved);
    moved_total += moved;
  }
  f.settle_idx = n;
  f.last_settle = now;
  f.remaining = rem;
  for (LinkId l : f.links)
    links_[static_cast<size_t>(l)].bytes_carried += moved_total;
}

void Network::settle_all() {
  const SimTime now = sim_.now();
  last_touch_ = now;
  if (now == last_settle_) return;
  const double dt = to_seconds(now - last_settle_);
  last_settle_ = now;
  for (auto& [id, f] : flows_) {
    const double moved = f.rate * dt;
    f.remaining = std::max(0.0, f.remaining - moved);
    f.last_settle = now;
    for (LinkId l : f.links)
      links_[static_cast<size_t>(l)].bytes_carried += moved;
  }
}

void Network::begin_mutation(const std::vector<LinkId>& seed_links,
                             Flow* seed_flow) {
  if (mode_ == SolverMode::kGlobalOracle) {
    settle_all();
    return;
  }
  register_touch();
  solver_.collect_component(index_, seed_links, seed_flow);
  // Settle before the re-solve overwrites rates: bytes moved so far were
  // moved at the *old* rates.
  for (maxmin::FlowState* fs : solver_.comp_flows())
    settle_flow(*static_cast<Flow*>(fs));
}

void Network::solve_and_schedule() {
  if (mode_ == SolverMode::kGlobalOracle) {
    solve_global_reference();
    return;
  }
  solver_.solve_component(link_capacity_);
  schedule_after_component_solve();
}

void Network::schedule_after_component_solve() {
#if defined(GRIDSIM_ENABLE_DCHECKS)
  // Per-link conservation, checked incrementally: the just-solved component
  // must not oversubscribe any of its links (frozen outside flows kept
  // their rates, so the whole link sum is live).
  for (LinkId l : solver_.comp_links()) {
    double sum = 0;
    for (const maxmin::FlowState* f : index_.flows_on(l)) sum += f->rate;
    GRIDSIM_DCHECK(
        approx_le(sum, link_capacity_[static_cast<std::size_t>(l)]),
        "link '%s' oversubscribed: %.17g > %.17g",
        links_[static_cast<std::size_t>(l)].name.c_str(), sum,
        link_capacity_[static_cast<std::size_t>(l)]);
  }
#endif
  // Bulk completion path. The oracle's post-solve loop visits *every* flow
  // in id order; besides the component, it inserts queue events for two
  // kinds of outside flows: done-pending ones (each visit re-posts,
  // invalidating the previous post via the generation counter) and flows
  // its global settle just pushed across the done threshold — only
  // possible when their completion check is due at this exact instant.
  // Merge all three sets in the oracle's id order; every other flow
  // contributes no insertion there (the eta guard returns), so skipping
  // them changes nothing.
  sched_scratch_.clear();
  for (maxmin::FlowState* fs : solver_.comp_flows())
    sched_scratch_.push_back(static_cast<Flow*>(fs));
  const SimTime now = sim_.now();
  while (!eta_heap_.empty() && eta_heap_.top().first <= now) {
    const auto [eta, id] = eta_heap_.top();
    eta_heap_.pop();
    auto it = flows_.find(id);
    if (it == flows_.end() || it->second.scheduled_eta != eta) continue;
    Flow& f = it->second;
    if (solver_.in_component(&f)) continue;
    settle_flow(f);
    if (f.remaining > kByteEpsilon) continue;  // re-arms from its own check
    if (std::find(done_pending_.begin(), done_pending_.end(), id) !=
        done_pending_.end())
      continue;
    if (std::find(sched_scratch_.begin(), sched_scratch_.end(), &f) ==
        sched_scratch_.end())
      sched_scratch_.push_back(&f);
  }
  for (FlowId id : done_pending_) {
    auto it = flows_.find(id);
    assert(it != flows_.end());
    if (!solver_.in_component(&it->second))
      sched_scratch_.push_back(&it->second);
  }
  if (sched_scratch_.size() > solver_.comp_flows().size())
    std::sort(sched_scratch_.begin(), sched_scratch_.end(),
              [](const Flow* a, const Flow* b) { return a->order < b->order; });
  for (Flow* f : sched_scratch_) schedule_completion(*f);
}

void Network::solve_global_reference() {
  // Iterate in id order for determinism (unordered_map order is not stable).
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (auto& [id, f] : flows_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  std::vector<maxmin::FlowState*> by_order;
  by_order.reserve(ids.size());
  for (FlowId id : ids) by_order.push_back(&flows_[id]);
  maxmin::solve_global_reference(by_order, links_.size(), link_capacity_);
  for (FlowId id : ids) schedule_completion(flows_[id]);
}

void Network::schedule_completion(Flow& f) {
  const FlowId id = f.id;
  if (f.remaining <= kByteEpsilon) {
    const std::uint64_t gen = ++f.completion_gen;
    if (mode_ == SolverMode::kIncremental &&
        std::find(done_pending_.begin(), done_pending_.end(), id) ==
            done_pending_.end())
      done_pending_.push_back(id);
    sim_.post([this, id, gen] {
      auto it = flows_.find(id);
      if (it != flows_.end() && it->second.completion_gen == gen)
        finish_flow(id);
    });
    return;
  }
  const double rate = std::max(f.rate, kMinRate);
  const SimTime dur = from_seconds(f.remaining / rate);
  const SimTime eta = sim_.now() + std::min(dur, kMaxCompletionCheck);
  // Only schedule if this beats the already-pending check: keeps the event
  // horizon monotonically shrinking per flow (rate drops are handled by the
  // earlier event firing, re-settling and rescheduling).
  if (eta >= f.scheduled_eta) return;
  const std::uint64_t gen = ++f.completion_gen;
  f.scheduled_eta = eta;
  if (mode_ == SolverMode::kIncremental) eta_heap_.emplace(eta, id);
  sim_.at(eta, [this, id, gen] {
    auto it = flows_.find(id);
    if (it == flows_.end() || it->second.completion_gen != gen) return;
    if (mode_ == SolverMode::kGlobalOracle) {
      settle_all();
    } else {
      // Only this flow's remaining is inspected; everyone else's rate is
      // untouched, so nothing forces them to settle here.
      register_touch();
      settle_flow(it->second);
    }
    if (it->second.remaining <= kByteEpsilon) {
      finish_flow(id);
    } else {
      it->second.scheduled_eta = kSimTimeNever;
      schedule_completion(it->second);
    }
  });
}

void Network::finish_flow(FlowId id) {
  auto it = flows_.find(id);
  assert(it != flows_.end());
  Flow& f = it->second;
  begin_mutation(f.links, &f);
  assert(f.remaining <= 1.0 + 1e-9 * f.rate);
  std::function<void()> cb = std::move(f.on_complete);
  index_.remove(&f);
  if (mode_ == SolverMode::kIncremental) solver_.remove_from_component(&f);
  forget_done_pending(id);
  flows_.erase(it);
  solve_and_schedule();
  if (cb) cb();
}

void Network::forget_done_pending(FlowId id) {
  auto it = std::find(done_pending_.begin(), done_pending_.end(), id);
  if (it != done_pending_.end()) done_pending_.erase(it);
}

}  // namespace gridsim::net
