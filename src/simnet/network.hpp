// Flow-level (fluid) network model.
//
// The network is a set of hosts joined by point-to-point links; a *flow* is
// an in-progress byte transfer along a fixed route. Whenever the set of
// flows (or a flow's rate cap) changes, bandwidth is re-allocated with
// progressive-filling max-min fairness, honouring each flow's rate cap (the
// TCP layer caps a flow at window/RTT). Flow completions are scheduled from
// the allocation and invalidated by a generation counter when a re-solve
// moves them.
//
// This is the same modelling level as SimGrid's network model: accurate for
// the first-order effects the paper studies (window-limited throughput on
// long fat networks, fair sharing of a WAN bottleneck, transfer times),
// while cheap enough to simulate full NPB runs.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace gridsim::net {

using HostId = int;
using LinkId = int;
using FlowId = std::uint64_t;

inline constexpr FlowId kInvalidFlow = 0;
inline constexpr double kUnlimitedRate =
    std::numeric_limits<double>::infinity();

struct Host {
  std::string name;
  /// Relative compute speed (1.0 = reference node). Used by application
  /// models to scale compute phases; the network layer ignores it.
  double cpu_speed = 1.0;
};

struct Link {
  std::string name;
  double capacity = 0;   ///< bytes per second
  SimTime latency = 0;   ///< one-way propagation delay
  double queue_bytes = 0;  ///< router/NIC buffer; bounds loss-free bursts
  // Lifetime statistics.
  double bytes_carried = 0;
};

struct Route {
  std::vector<LinkId> links;
  SimTime latency = 0;  ///< sum of link latencies
};

/// Snapshot of one flow's allocation, used by the TCP layer.
struct FlowInfo {
  double rate = 0;             ///< currently allocated rate (B/s)
  double achievable_rate = 0;  ///< rate if this flow's cap were removed
  double remaining = 0;        ///< bytes not yet transferred
};

class Network {
 public:
  explicit Network(Simulation& sim) : sim_(sim) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology construction -------------------------------------------
  HostId add_host(std::string name, double cpu_speed = 1.0);
  LinkId add_link(std::string name, double capacity_bytes_per_sec,
                  SimTime latency, double queue_bytes);
  /// Registers the path src -> dst (and, if `symmetric`, dst -> src with the
  /// links reversed). Re-registering overwrites.
  void add_route(HostId src, HostId dst, std::vector<LinkId> links,
                 bool symmetric = true);

  int host_count() const { return static_cast<int>(hosts_.size()); }
  int link_count() const { return static_cast<int>(links_.size()); }
  /// First link whose name matches exactly; -1 if absent.
  LinkId find_link(const std::string& name) const {
    for (std::size_t i = 0; i < links_.size(); ++i)
      if (links_[i].name == name) return static_cast<LinkId>(i);
    return -1;
  }
  const Host& host(HostId h) const { return hosts_.at(static_cast<size_t>(h)); }
  const Link& link(LinkId l) const { return links_.at(static_cast<size_t>(l)); }
  bool has_route(HostId src, HostId dst) const;
  const Route& route(HostId src, HostId dst) const;
  SimTime path_latency(HostId src, HostId dst) const {
    return route(src, dst).latency;
  }
  /// Smallest link capacity along the route (B/s).
  double path_capacity(HostId src, HostId dst) const;
  /// Smallest queue along the route (bytes); the burst budget for TCP.
  double path_queue(HostId src, HostId dst) const;

  // --- flows -------------------------------------------------------------
  /// Changes a link's capacity at runtime (degradation, failure drill, or
  /// recovery); active flows are re-allocated immediately. The capacity
  /// must stay positive — model a failed link as a tiny capacity rather
  /// than zero so control traffic still trickles and deadlock is visible.
  void set_link_capacity(LinkId l, double capacity_bytes_per_sec);

  /// Changes a link's propagation latency at runtime (WAN jitter / delay
  /// variation injection). Every registered route crossing the link has its
  /// cached latency sum recomputed; in-flight fluid transfers pick the new
  /// value up at delivery time because propagation is applied by the caller
  /// when the last byte leaves the pipe.
  void set_link_latency(LinkId l, SimTime latency);

  /// Starts transferring `bytes` from src to dst. `on_complete` fires (via
  /// the event queue) when the last byte has left the sender-side fluid
  /// pipe; propagation latency is applied by the caller (the TCP layer).
  FlowId start_flow(HostId src, HostId dst, double bytes, double rate_cap,
                    std::function<void()> on_complete);
  /// Updates a flow's rate cap (TCP window changes). No-op on unknown ids.
  void set_rate_cap(FlowId id, double rate_cap);
  /// Aborts a flow without firing its completion.
  void cancel_flow(FlowId id);
  bool flow_active(FlowId id) const { return flows_.count(id) != 0; }
  FlowInfo flow_info(FlowId id) const;

  int active_flow_count() const { return static_cast<int>(flows_.size()); }
  /// Total allocated rate crossing `l` right now (<= capacity).
  double link_utilization(LinkId l) const;

  Simulation& sim() { return sim_; }

 private:
  struct Flow {
    FlowId id = kInvalidFlow;
    std::vector<LinkId> links;
    double remaining = 0;
    double rate_cap = kUnlimitedRate;
    double rate = 0;
    double achievable = 0;
    std::function<void()> on_complete;
    std::uint64_t completion_gen = 0;
    SimTime scheduled_eta = kSimTimeNever;  ///< earliest pending check
  };

  /// Applies elapsed time to all flows' remaining-byte counters.
  void settle();
  /// Recomputes the max-min allocation and (re)schedules completions.
  void solve_and_schedule();
  void schedule_completion(Flow& f);
  void finish_flow(FlowId id);

  Simulation& sim_;
  std::vector<Host> hosts_;
  std::vector<Link> links_;
  std::unordered_map<std::uint64_t, Route> routes_;  // key = src<<32 | dst
  std::unordered_map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;
  SimTime last_settle_ = 0;

  static std::uint64_t route_key(HostId src, HostId dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(dst);
  }
};

/// Convenience: converts megabits per second to bytes per second.
constexpr double mbps(double v) { return v * 1e6 / 8.0; }
/// Convenience: converts gigabits per second to bytes per second.
constexpr double gbps(double v) { return v * 1e9 / 8.0; }

}  // namespace gridsim::net
