// Flow-level (fluid) network model.
//
// The network is a set of hosts joined by point-to-point links; a *flow* is
// an in-progress byte transfer along a fixed route. Whenever the set of
// flows (or a flow's rate cap, or a link's capacity) changes, bandwidth is
// re-allocated with progressive-filling max-min fairness, honouring each
// flow's rate cap (the TCP layer caps a flow at window/RTT). Flow
// completions are scheduled from the allocation and invalidated by a
// generation counter when a re-solve moves them.
//
// The re-solve is *incremental* (simnet/maxmin.hpp): a persistent
// flow<->link bipartite index tracks which flows cross which links, each
// mutation seeds a dirty set, and only the connected component of
// links/flows reachable from it is settled and re-solved — flows outside
// the component keep their frozen rates, and an uncontended flow takes a
// constant-time fast path. The pre-incremental global solver is retained
// as a differential-testing oracle behind the `GRIDSIM_NET_ORACLE` knob
// (environment variable, or `set_solver_mode()`); both solvers produce
// bit-identical rates, a guarantee enforced by the differential churn
// suite and the campaign-digest oracle check in CI.
//
// This is the same modelling level as SimGrid's network model: accurate for
// the first-order effects the paper studies (window-limited throughput on
// long fat networks, fair sharing of a WAN bottleneck, transfer times),
// while cheap enough to simulate full NPB runs.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/simulation.hpp"
#include "simcore/time.hpp"
#include "simnet/maxmin.hpp"

namespace gridsim::net {

using HostId = int;
using LinkId = int;
using FlowId = std::uint64_t;

inline constexpr FlowId kInvalidFlow = 0;
inline constexpr double kUnlimitedRate =
    std::numeric_limits<double>::infinity();

struct Host {
  std::string name;
  /// Relative compute speed (1.0 = reference node). Used by application
  /// models to scale compute phases; the network layer ignores it.
  double cpu_speed = 1.0;
};

struct Link {
  std::string name;
  double capacity = 0;   ///< bytes per second
  SimTime latency = 0;   ///< one-way propagation delay
  double queue_bytes = 0;  ///< router/NIC buffer; bounds loss-free bursts
  // Lifetime statistics.
  double bytes_carried = 0;
};

struct Route {
  std::vector<LinkId> links;
  SimTime latency = 0;  ///< sum of link latencies
};

/// Snapshot of one flow's allocation, used by the TCP layer.
struct FlowInfo {
  double rate = 0;             ///< currently allocated rate (B/s)
  double achievable_rate = 0;  ///< rate if this flow's cap were removed
  double remaining = 0;        ///< bytes not yet transferred
};

/// Which max-min solver drives the allocation. The incremental solver is
/// the default; the global-resolve oracle is the pre-incremental code path
/// kept for differential testing and as the bench baseline.
enum class SolverMode {
  kIncremental,
  kGlobalOracle,
};

class Network {
 public:
  explicit Network(Simulation& sim);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology construction -------------------------------------------
  HostId add_host(std::string name, double cpu_speed = 1.0);
  LinkId add_link(std::string name, double capacity_bytes_per_sec,
                  SimTime latency, double queue_bytes);
  /// Registers the path src -> dst (and, if `symmetric`, dst -> src with the
  /// links reversed). Re-registering overwrites. A route must not cross the
  /// same link twice (the bipartite index keeps one entry per crossing).
  void add_route(HostId src, HostId dst, std::vector<LinkId> links,
                 bool symmetric = true);

  int host_count() const { return static_cast<int>(hosts_.size()); }
  int link_count() const { return static_cast<int>(links_.size()); }
  /// First link whose name matches exactly; -1 if absent.
  LinkId find_link(const std::string& name) const {
    for (std::size_t i = 0; i < links_.size(); ++i)
      if (links_[i].name == name) return static_cast<LinkId>(i);
    return -1;
  }
  const Host& host(HostId h) const { return hosts_.at(static_cast<size_t>(h)); }
  const Link& link(LinkId l) const { return links_.at(static_cast<size_t>(l)); }
  bool has_route(HostId src, HostId dst) const;
  const Route& route(HostId src, HostId dst) const;
  SimTime path_latency(HostId src, HostId dst) const {
    return route(src, dst).latency;
  }
  /// Smallest link capacity along the route (B/s).
  double path_capacity(HostId src, HostId dst) const;
  /// Smallest queue along the route (bytes); the burst budget for TCP.
  double path_queue(HostId src, HostId dst) const;

  // --- flows -------------------------------------------------------------
  /// Changes a link's capacity at runtime (degradation, failure drill, or
  /// recovery); active flows are re-allocated immediately. The capacity
  /// must stay positive — model a failed link as a tiny capacity rather
  /// than zero so control traffic still trickles and deadlock is visible.
  void set_link_capacity(LinkId l, double capacity_bytes_per_sec);

  /// Changes a link's propagation latency at runtime (WAN jitter / delay
  /// variation injection). Every registered route crossing the link has its
  /// cached latency sum recomputed; in-flight fluid transfers pick the new
  /// value up at delivery time because propagation is applied by the caller
  /// when the last byte leaves the pipe.
  void set_link_latency(LinkId l, SimTime latency);

  /// Starts transferring `bytes` from src to dst. `on_complete` fires (via
  /// the event queue) when the last byte has left the sender-side fluid
  /// pipe; propagation latency is applied by the caller (the TCP layer).
  FlowId start_flow(HostId src, HostId dst, double bytes, double rate_cap,
                    std::function<void()> on_complete);
  /// Updates a flow's rate cap (TCP window changes). No-op on unknown ids.
  void set_rate_cap(FlowId id, double rate_cap);
  /// Aborts a flow without firing its completion.
  void cancel_flow(FlowId id);
  bool flow_active(FlowId id) const { return flows_.count(id) != 0; }
  FlowInfo flow_info(FlowId id) const;

  /// Bytes not yet transferred, quantized at the network's last settle
  /// point (the most recent mutation or completion check anywhere) — the
  /// exact value the global-resolve oracle reports. Settling is lazy per
  /// flow, so this projects from the flow's own settle anchor without
  /// mutating it; 0 for unknown ids.
  double flow_remaining(FlowId id) const;

  int active_flow_count() const { return static_cast<int>(flows_.size()); }
  /// Total allocated rate crossing `l` right now (<= capacity). Reads the
  /// persistent per-link flow list: O(flows on l), not O(flows x links).
  double link_utilization(LinkId l) const;

  // --- solver mode -------------------------------------------------------
  SolverMode solver_mode() const { return mode_; }
  /// Switches between the incremental solver and the global oracle. Only
  /// legal while no flows are active (mid-run switching would mix settle
  /// disciplines). The initial mode comes from the GRIDSIM_NET_ORACLE
  /// environment variable (or the GRIDSIM_NET_ORACLE_DEFAULT build knob).
  void set_solver_mode(SolverMode mode);
  /// Incremental-solver statistics: re-solve count, fast-path hits and the
  /// peak dirty-component size (the churn micro-bench reports these).
  const maxmin::SolverStats& solver_stats() const { return solver_.stats(); }

  Simulation& sim() { return sim_; }

 private:
  struct Flow : maxmin::FlowState {
    FlowId id = kInvalidFlow;
    double remaining = 0;
    std::function<void()> on_complete;
    std::uint64_t completion_gen = 0;
    SimTime scheduled_eta = kSimTimeNever;  ///< earliest pending check
    SimTime last_settle = 0;  ///< per-flow settle anchor (lazy settle)
    /// First entry of `touch_times_` not yet applied to this flow.
    std::size_t settle_idx = 0;
  };

  /// Oracle mode: applies elapsed time to all flows' remaining-byte
  /// counters (the historical eager settle).
  void settle_all();
  /// Incremental mode: settles one flow to `sim_.now()` — only flows whose
  /// rate is about to change are settled, so quiet flows cost nothing.
  void settle_flow(Flow& f);
  /// `remaining` as the oracle's eager settle would report it, without
  /// mutating the flow's settle anchor.
  double projected_remaining(const Flow& f) const;

  /// Incremental mode: records `sim_.now()` as a global settle point (the
  /// instant the oracle's eager settle would run) and bumps `last_touch_`.
  /// Compacts `touch_times_` when it outgrows the active-flow population.
  void register_touch();

  /// Collects + settles the dirty component seeded by `seed_links` /
  /// `seed_flow` (incremental), or settles everything (oracle). Every
  /// mutation calls this before touching solver inputs.
  void begin_mutation(const std::vector<LinkId>& seed_links, Flow* seed_flow);
  /// Re-solves (component or global, by mode) and (re)schedules
  /// completions for every flow whose allocation was recomputed.
  void solve_and_schedule();
  /// The oracle path: global progressive filling over all links and flows.
  void solve_global_reference();
  /// Post-solve scheduling for the incremental path: completion checks for
  /// component flows, merged with the bulk re-post of done-pending flows.
  void schedule_after_component_solve();

  void schedule_completion(Flow& f);
  void finish_flow(FlowId id);
  void forget_done_pending(FlowId id);

  Simulation& sim_;
  std::vector<Host> hosts_;
  std::vector<Link> links_;
  /// Capacities mirrored by LinkId for the solver (kept in sync by
  /// add_link / set_link_capacity).
  std::vector<double> link_capacity_;
  std::unordered_map<std::uint64_t, Route> routes_;  // key = src<<32 | dst
  std::unordered_map<FlowId, Flow> flows_;
  maxmin::BipartiteIndex index_;
  maxmin::Solver solver_;
  /// Flows whose completion post is in flight (remaining hit zero, the
  /// finish callback not yet drained). The historical solver re-posted
  /// every such flow on *every* re-solve — each re-post invalidates the
  /// previous one via the generation counter, deferring the finish past
  /// same-timestamp events inserted in between — so the incremental solver
  /// must re-post them too (the bulk completion path), or completion order
  /// and the engine's event count drift from the oracle.
  std::vector<FlowId> done_pending_;
  std::vector<Flow*> sched_scratch_;
  /// Completion-check etas, lazily invalidated (an entry is live iff the
  /// flow still exists with that exact scheduled_eta). The oracle's global
  /// settle can push a flow in a *disjoint* component across the done
  /// threshold when its check is due at the current instant — symmetric
  /// transfers finishing at the same quantized eta make this common — and
  /// then posts its completion from the post-solve loop. Draining due
  /// entries at each solve finds those flows in O(log n) amortized without
  /// touching quiet ones.
  std::priority_queue<std::pair<SimTime, FlowId>,
                      std::vector<std::pair<SimTime, FlowId>>, std::greater<>>
      eta_heap_;
  /// Global settle points since the last compaction (incremental mode),
  /// strictly increasing. The oracle settles *every* flow at *every* touch,
  /// so its remaining-byte counters are folds of per-segment subtractions;
  /// a lazily settled flow replays exactly those segments (each flow keeps
  /// its resume position in Flow::settle_idx) so `remaining` stays
  /// bit-identical to the oracle — one fused subtraction over the whole
  /// quiet interval differs in ulps, which a `ceil` at a nanosecond
  /// boundary turns into a 1 ns completion shift. Replay is segment-exact
  /// regardless of when it runs, so the vector is compacted (settle all,
  /// clear) whenever it outgrows the flow population.
  std::vector<SimTime> touch_times_;
  SolverMode mode_;
  FlowId next_flow_id_ = 1;
  /// When the oracle's global settle would last have run: every mutation
  /// and completion check bumps it (lazy settle quantizes reads here).
  SimTime last_touch_ = 0;
  SimTime last_settle_ = 0;  ///< oracle-mode global settle anchor

  static std::uint64_t route_key(HostId src, HostId dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(dst);
  }
};

/// Convenience: converts megabits per second to bytes per second.
constexpr double mbps(double v) { return v * 1e6 / 8.0; }
/// Convenience: converts gigabits per second to bytes per second.
constexpr double gbps(double v) { return v * 1e9 / 8.0; }

}  // namespace gridsim::net
