#include "simnet/maxmin.hpp"

#include <algorithm>
#include <cmath>

#include "simcore/check.hpp"

namespace gridsim::net::maxmin {

void BipartiteIndex::add(FlowState* f) {
  f->link_pos.resize(f->links.size());
  for (std::size_t i = 0; i < f->links.size(); ++i) {
    auto& list = flows_on_[static_cast<std::size_t>(f->links[i])];
    f->link_pos[i] = static_cast<std::uint32_t>(list.size());
    list.push_back(f);
  }
}

void BipartiteIndex::remove(FlowState* f) {
  for (std::size_t i = 0; i < f->links.size(); ++i) {
    const LinkId l = f->links[i];
    auto& list = flows_on_[static_cast<std::size_t>(l)];
    const std::uint32_t pos = f->link_pos[i];
    GRIDSIM_DCHECK(pos < list.size() && list[pos] == f,
                   "BipartiteIndex: corrupt back-reference on link %d", l);
    const std::uint32_t tail = static_cast<std::uint32_t>(list.size()) - 1;
    if (pos != tail) {
      FlowState* moved = list[tail];
      list[pos] = moved;
      // Repoint the moved flow's back-reference for *this* link. Routes
      // never repeat a link, so exactly one entry matches.
      for (std::size_t j = 0; j < moved->links.size(); ++j) {
        if (moved->links[j] == l && moved->link_pos[j] == tail) {
          moved->link_pos[j] = pos;
          break;
        }
      }
    }
    list.pop_back();
  }
  f->link_pos.clear();
}

void Solver::ensure_links(std::size_t n) {
  if (link_mark_.size() < n) {
    link_mark_.resize(n, 0);
    link_slot_.resize(n, 0);
  }
}

void Solver::collect_component(const BipartiteIndex& index,
                               const std::vector<LinkId>& seed_links,
                               FlowState* seed_flow) {
  ++epoch_;
  comp_flows_.clear();
  comp_links_.clear();
  bfs_stack_.clear();

  const auto visit_link = [this](LinkId l) {
    auto& mark = link_mark_[static_cast<std::size_t>(l)];
    if (mark == epoch_) return;
    mark = epoch_;
    comp_links_.push_back(l);
    bfs_stack_.push_back(l);
  };
  const auto visit_flow = [this, &visit_link](FlowState* f) {
    if (f->mark == epoch_) return;
    f->mark = epoch_;
    comp_flows_.push_back(f);
    for (LinkId l : f->links) visit_link(l);
  };

  if (seed_flow != nullptr) visit_flow(seed_flow);
  for (LinkId l : seed_links) visit_link(l);
  while (!bfs_stack_.empty()) {
    const LinkId l = bfs_stack_.back();
    bfs_stack_.pop_back();
    for (FlowState* f : index.flows_on(l)) visit_flow(f);
  }

  // The reference solver iterates links by ascending index and flows by
  // ascending id; replicate both so tie-breaks land identically.
  std::sort(comp_links_.begin(), comp_links_.end());
  std::sort(comp_flows_.begin(), comp_flows_.end(),
            [](const FlowState* a, const FlowState* b) {
              return a->order < b->order;
            });

  stats_.peak_component_flows =
      std::max(stats_.peak_component_flows, comp_flows_.size());
  stats_.peak_component_links =
      std::max(stats_.peak_component_links, comp_links_.size());
}

void Solver::remove_from_component(FlowState* f) {
  const auto it = std::find(comp_flows_.begin(), comp_flows_.end(), f);
  if (it != comp_flows_.end()) comp_flows_.erase(it);
}

bool Solver::component_is_uncontended() const {
  return comp_flows_.size() == 1;
}

void Solver::solve_uncontended(FlowState& f,
                               const std::vector<double>& capacity) {
  // One flow, no sharing: its fair share is the tightest crossed capacity,
  // clipped by its cap. The arithmetic mirrors the general loop exactly —
  // share = residual / 1 per link, cap freeze wins ties, slack = residual
  // after subtracting the frozen rate — so the result is bit-identical.
  double share = std::numeric_limits<double>::infinity();
  for (LinkId l : f.links)
    share = std::min(
        share, std::max(0.0, capacity[static_cast<std::size_t>(l)]) / 1);
  f.rate = f.rate_cap <= share ? f.rate_cap : share;
  double slack = std::numeric_limits<double>::infinity();
  for (LinkId l : f.links)
    slack = std::min(
        slack,
        std::max(0.0, capacity[static_cast<std::size_t>(l)] - f.rate));
  if (!std::isfinite(slack)) slack = 0.0;  // linkless flow
  f.achievable = f.rate + slack;
}

void Solver::solve_component(const std::vector<double>& capacity) {
  ++stats_.solves;
  if (comp_flows_.empty()) return;
  if (comp_flows_.size() == 1) {
    ++stats_.fast_solves;
    solve_uncontended(*comp_flows_.front(), capacity);
    return;
  }

  const std::size_t nl = comp_links_.size();
  residual_.resize(nl);
  nflows_.resize(nl);
  for (std::size_t i = 0; i < nl; ++i) {
    const LinkId l = comp_links_[i];
    link_slot_[static_cast<std::size_t>(l)] = static_cast<std::uint32_t>(i);
    residual_[i] = capacity[static_cast<std::size_t>(l)];
    nflows_[i] = 0;
  }

  unfrozen_.clear();
  for (FlowState* f : comp_flows_) {
    f->rate = 0;
    unfrozen_.push_back(f);
    for (LinkId l : f->links)
      ++nflows_[link_slot_[static_cast<std::size_t>(l)]];
  }

  // Progressive filling, restricted to the component. Identical structure
  // and arithmetic to solve_global_reference(): repeatedly freeze at the
  // tightest constraint — a link's equal share or an unfrozen flow's cap.
  while (!unfrozen_.empty()) {
    double best_link_share = std::numeric_limits<double>::infinity();
    std::ptrdiff_t best_link = -1;
    for (std::size_t i = 0; i < nl; ++i) {
      if (nflows_[i] <= 0) continue;
      const double share = std::max(0.0, residual_[i]) / nflows_[i];
      if (share < best_link_share) {
        best_link_share = share;
        best_link = static_cast<std::ptrdiff_t>(i);
      }
    }
    double best_cap = std::numeric_limits<double>::infinity();
    FlowState* capped = nullptr;
    for (FlowState* f : unfrozen_) {
      if (f->rate_cap < best_cap) {
        best_cap = f->rate_cap;
        capped = f;
      }
    }

    if (capped != nullptr && best_cap <= best_link_share) {
      capped->rate = best_cap;
      for (LinkId l : capped->links) {
        const std::size_t i = link_slot_[static_cast<std::size_t>(l)];
        residual_[i] -= best_cap;
        --nflows_[i];
      }
      unfrozen_.erase(std::find(unfrozen_.begin(), unfrozen_.end(), capped));
    } else if (best_link >= 0) {
      const LinkId bottleneck = comp_links_[static_cast<std::size_t>(best_link)];
      still_.clear();
      for (FlowState* f : unfrozen_) {
        const bool on_bottleneck =
            std::find(f->links.begin(), f->links.end(), bottleneck) !=
            f->links.end();
        if (on_bottleneck) {
          f->rate = best_link_share;
          for (LinkId l : f->links) {
            const std::size_t i = link_slot_[static_cast<std::size_t>(l)];
            residual_[i] -= best_link_share;
            --nflows_[i];
          }
        } else {
          still_.push_back(f);
        }
      }
      unfrozen_.swap(still_);
    } else {
      // Flows with no links (same-host loopback handled by caller); give
      // them their cap.
      for (FlowState* f : unfrozen_) f->rate = f->rate_cap;
      unfrozen_.clear();
    }
  }

  // Post-solve: achievable rate = own rate + slack at the tightest crossed
  // link (what the flow could claim if its window were unlimited).
  for (FlowState* f : comp_flows_) {
    double slack = std::numeric_limits<double>::infinity();
    for (LinkId l : f->links)
      slack = std::min(
          slack,
          std::max(0.0, residual_[link_slot_[static_cast<std::size_t>(l)]]));
    if (!std::isfinite(slack)) slack = 0.0;  // linkless flow
    f->achievable = f->rate + slack;
  }
}

void solve_global_reference(const std::vector<FlowState*>& flows_by_order,
                            std::size_t num_links,
                            const std::vector<double>& capacity) {
  // The pre-incremental solver, verbatim: progressive-filling max-min with
  // per-flow rate caps over the whole network, O(flows) route scans
  // included. Kept as the oracle the incremental solver is differentially
  // tested against — do not "optimise" it.
  const std::size_t nl = num_links;
  std::vector<double> residual(nl);
  std::vector<int> nflows(nl, 0);
  for (std::size_t i = 0; i < nl; ++i) residual[i] = capacity[i];

  std::vector<FlowState*> unfrozen;
  unfrozen.reserve(flows_by_order.size());
  for (FlowState* f : flows_by_order) {
    f->rate = 0;
    unfrozen.push_back(f);
    for (LinkId l : f->links) ++nflows[static_cast<std::size_t>(l)];
  }

  while (!unfrozen.empty()) {
    // Tightest link share.
    double best_link_share = std::numeric_limits<double>::infinity();
    LinkId best_link = -1;
    for (std::size_t i = 0; i < nl; ++i) {
      if (nflows[i] <= 0) continue;
      const double share = std::max(0.0, residual[i]) / nflows[i];
      if (share < best_link_share) {
        best_link_share = share;
        best_link = static_cast<LinkId>(i);
      }
    }
    // Tightest flow cap.
    double best_cap = std::numeric_limits<double>::infinity();
    FlowState* capped = nullptr;
    for (FlowState* f : unfrozen) {
      if (f->rate_cap < best_cap) {
        best_cap = f->rate_cap;
        capped = f;
      }
    }

    if (capped != nullptr && best_cap <= best_link_share) {
      capped->rate = best_cap;
      for (LinkId l : capped->links) {
        residual[static_cast<std::size_t>(l)] -= best_cap;
        --nflows[static_cast<std::size_t>(l)];
      }
      unfrozen.erase(std::find(unfrozen.begin(), unfrozen.end(), capped));
    } else if (best_link >= 0) {
      // Freeze every unfrozen flow crossing the bottleneck link.
      std::vector<FlowState*> still;
      still.reserve(unfrozen.size());
      for (FlowState* f : unfrozen) {
        const bool on_bottleneck =
            std::find(f->links.begin(), f->links.end(), best_link) !=
            f->links.end();
        if (on_bottleneck) {
          f->rate = best_link_share;
          for (LinkId l : f->links) {
            residual[static_cast<std::size_t>(l)] -= best_link_share;
            --nflows[static_cast<std::size_t>(l)];
          }
        } else {
          still.push_back(f);
        }
      }
      unfrozen.swap(still);
    } else {
      for (FlowState* f : unfrozen) f->rate = f->rate_cap;
      unfrozen.clear();
    }
  }

  for (FlowState* f : flows_by_order) {
    double slack = std::numeric_limits<double>::infinity();
    for (LinkId l : f->links)
      slack = std::min(slack, std::max(0.0, residual[static_cast<std::size_t>(l)]));
    if (!std::isfinite(slack)) slack = 0.0;  // linkless flow
    f->achievable = f->rate + slack;
  }
}

}  // namespace gridsim::net::maxmin
