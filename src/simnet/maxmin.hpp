// Progressive-filling max-min fairness solver, incremental edition.
//
// The allocator's job: given flows crossing fixed sets of links, assign each
// flow the max-min fair rate honouring per-flow rate caps. Historically the
// Network re-ran a global progressive-filling pass over *all* links and
// *all* flows on every mutation (flow arrival/departure, cap change, link
// capacity change) — O(bottlenecks x (links + flows)) per event, the wall
// between the simulator and 100k-rank / 1M-flow campaigns.
//
// This module supplies the pieces of the incremental scheme:
//
//  - `FlowState`: the solver-relevant slice of a flow (route, cap, rate),
//    embedded by the Network's Flow via inheritance.
//  - `BipartiteIndex`: persistent per-link flow lists with O(route) add and
//    swap-pop remove, replacing the O(flows x links) `std::find` scans.
//  - `Solver`: collects the connected component of links/flows reachable
//    from a mutation's dirty set and re-solves *only that component*; flows
//    outside it keep their frozen rates. Uncontended flows (no link shared
//    with any other flow) take a constant-time fast path, SimGrid-surf
//    style.
//  - `solve_global_reference()`: the historical global pass, kept verbatim
//    as the differential-testing oracle (`GRIDSIM_NET_ORACLE`).
//
// Bit-exactness contract: progressive filling touches a component's
// residuals and caps only through that component's own flows, so the global
// pass decomposes into independent per-component passes with *identical*
// floating-point arithmetic. `solve_component()` replicates the reference
// loop's iteration order (links ascending, flows by stable order) and
// operations exactly; the differential churn suite and the campaign-digest
// oracle check in CI enforce that the two solvers agree to the last bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace gridsim::net::maxmin {

using LinkId = int;

inline constexpr double kUnlimited = std::numeric_limits<double>::infinity();

/// The solver-visible slice of a flow. `links` and `rate_cap` are inputs;
/// `rate` and `achievable` are outputs. The remaining fields are
/// bookkeeping owned by BipartiteIndex (`link_pos`) and Solver (`mark`).
struct FlowState {
  std::vector<LinkId> links;
  double rate_cap = kUnlimited;
  double rate = 0;
  double achievable = 0;

  /// Position of this flow inside each crossed link's flow list, parallel
  /// to `links`. Maintained by BipartiteIndex.
  std::vector<std::uint32_t> link_pos;
  /// Stable solve order (the Network uses the flow id): progressive filling
  /// breaks cap ties by the first flow in this order, so it must match the
  /// reference solver's sorted-id iteration for bit-identical results.
  std::uint64_t order = 0;
  /// Component-BFS epoch stamp (Solver-internal).
  std::uint64_t mark = 0;
};

/// Persistent flow<->link incidence lists: for every link, the flows that
/// cross it. Replaces the per-event `std::find` route scans. Routes must
/// not repeat a link (Network::add_route rejects duplicates): a repeated
/// link would double-count the flow in its own list.
class BipartiteIndex {
 public:
  /// Grows the per-link table; existing lists are untouched.
  void ensure_links(std::size_t n) {
    if (flows_on_.size() < n) flows_on_.resize(n);
  }

  /// O(route length): appends `f` to each crossed link's list.
  void add(FlowState* f);
  /// O(route length): swap-pop removal from each crossed link's list.
  void remove(FlowState* f);

  const std::vector<FlowState*>& flows_on(LinkId l) const {
    return flows_on_[static_cast<std::size_t>(l)];
  }

 private:
  std::vector<std::vector<FlowState*>> flows_on_;
};

/// Statistics the churn micro-bench and tests read back.
struct SolverStats {
  std::uint64_t solves = 0;          ///< component re-solves run
  std::uint64_t fast_solves = 0;     ///< of which took the 1-flow fast path
  std::size_t peak_component_flows = 0;  ///< peak dirty-component flow count
  std::size_t peak_component_links = 0;  ///< peak dirty-component link count
};

/// Component-restricted progressive-filling solver. Scratch buffers persist
/// across solves so a steady-state re-solve performs no allocations.
class Solver {
 public:
  /// Grows the link-indexed scratch tables (call when links are added).
  void ensure_links(std::size_t n);

  /// Gathers the connected component of flows/links reachable from the
  /// dirty set: `seed_links` (the mutated link, or a mutated flow's route)
  /// plus an optional `seed_flow` (covers linkless flows). After this call
  /// `comp_flows()` is sorted by FlowState::order and `comp_links()`
  /// ascending — the orders the reference solver iterates in.
  void collect_component(const BipartiteIndex& index,
                         const std::vector<LinkId>& seed_links,
                         FlowState* seed_flow);

  /// Drops one flow from the collected component (a departing flow is
  /// settled as part of its component but must not participate in the
  /// re-solve). The component stays valid: solving the remainder as one
  /// subset equals solving its split parts independently.
  void remove_from_component(FlowState* f);

  /// True when the collected component is a single flow none of whose
  /// links carry any other flow — the constant-time fast path applies.
  bool component_is_uncontended() const;

  /// True when `f` was gathered by the latest collect_component().
  bool in_component(const FlowState* f) const { return f->mark == epoch_; }

  /// Re-solves the collected component. `capacity[l]` must give every
  /// link's capacity indexed by LinkId. Writes FlowState::rate/achievable
  /// for component flows only; everything else keeps its frozen rate.
  void solve_component(const std::vector<double>& capacity);

  const std::vector<FlowState*>& comp_flows() const { return comp_flows_; }
  const std::vector<LinkId>& comp_links() const { return comp_links_; }

  const SolverStats& stats() const { return stats_; }

 private:
  void solve_uncontended(FlowState& f, const std::vector<double>& capacity);

  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> link_mark_;   // epoch stamps, by LinkId
  std::vector<std::uint32_t> link_slot_;   // dense index, valid iff marked
  std::vector<LinkId> bfs_stack_;
  std::vector<FlowState*> comp_flows_;
  std::vector<LinkId> comp_links_;
  // Dense per-component scratch, parallel to comp_links_.
  std::vector<double> residual_;
  std::vector<int> nflows_;
  std::vector<FlowState*> unfrozen_;
  std::vector<FlowState*> still_;
  SolverStats stats_;
};

/// The historical global solver, kept verbatim (including its O(flows)
/// route scans) as the differential-testing oracle and the baseline the
/// `flow_churn` micro-bench measures the incremental solver against.
/// `flows_by_order` must be sorted by FlowState::order; `capacity[l]` is
/// indexed by LinkId over all `num_links` links.
void solve_global_reference(const std::vector<FlowState*>& flows_by_order,
                            std::size_t num_links,
                            const std::vector<double>& capacity);

}  // namespace gridsim::net::maxmin
