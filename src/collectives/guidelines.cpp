#include "collectives/guidelines.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "collectives/collectives.hpp"
#include "collectives/selector.hpp"
#include "mpi/mpi.hpp"

namespace gridsim::coll {

namespace {

using mpi::CollOp;
using mpi::Rank;

/// Makespan of one SPMD body: max per-rank finish time (stale network
/// bookkeeping events can outlive the application, so Simulation::run()'s
/// return value is not the app's makespan).
double measure(const topo::GridSpec& spec, const mpi::ImplProfile& profile,
               const tcp::KernelTunables& kernel, int nranks, bool cyclic,
               const SimHooks& hooks,
               const std::function<Task<void>(Rank&)>& body) {
  Simulation sim;
  if (hooks.on_start) hooks.on_start(sim);
  topo::Grid grid(sim, spec);
  mpi::Job job(grid,
               cyclic ? mpi::cyclic_placement(grid, nranks)
                      : mpi::block_placement(grid, nranks),
               profile, kernel);
  std::vector<SimTime> finish(static_cast<size_t>(nranks), 0);
  job.launch([&body, &finish](Rank& r) -> Task<void> {
    co_await body(r);
    finish[static_cast<size_t>(r.rank())] = r.sim().now();
  });
  sim.run();
  if (hooks.on_finish) hooks.on_finish(sim);
  SimTime worst = 0;
  for (SimTime t : finish) worst = std::max(worst, t);
  return to_seconds(worst);
}

/// Times for one probe size, measured as independent simulations so a
/// composition's cost includes its own cold-start like the collective it
/// is compared against.
struct SizeTimes {
  double allreduce = 0;
  double bcast = 0;
  double reduce_scatter = 0;
  double reduce_then_bcast = 0;
  double scatter_then_allgather = 0;
  double reduce_then_scatter = 0;
};

SizeTimes measure_size(const topo::GridSpec& spec,
                       const mpi::ImplProfile& profile,
                       const tcp::KernelTunables& kernel,
                       const GuidelineOptions& opt, double bytes) {
  const int p = opt.nranks;
  const double per_rank = bytes / p;
  auto run = [&](std::function<Task<void>(Rank&)> body) {
    return measure(spec, profile, kernel, p, opt.cyclic, opt.hooks,
                   std::move(body));
  };
  SizeTimes t;
  t.allreduce = run(
      [bytes](Rank& r) -> Task<void> { co_await allreduce(r, bytes); });
  t.bcast =
      run([bytes](Rank& r) -> Task<void> { co_await bcast(r, 0, bytes); });
  t.reduce_scatter = run(
      [bytes](Rank& r) -> Task<void> { co_await reduce_scatter(r, bytes); });
  t.reduce_then_bcast = run([bytes](Rank& r) -> Task<void> {
    co_await reduce(r, 0, bytes);
    co_await bcast(r, 0, bytes);
  });
  t.scatter_then_allgather = run([per_rank](Rank& r) -> Task<void> {
    co_await scatter(r, 0, per_rank);
    co_await allgather(r, per_rank);
  });
  t.reduce_then_scatter = run([bytes, per_rank](Rank& r) -> Task<void> {
    co_await reduce(r, 0, bytes);
    co_await scatter(r, 0, per_rank);
  });
  return t;
}

/// The algorithm the selector would choose, for the cell's detail string.
/// `nsites` comes from the deployment spec (block placement fills sites in
/// order, so 16 ranks over these catalog specs reach every site).
std::string chosen(const mpi::CollectiveSuite& suite, CollOp op, double bytes,
                   int nranks, int nsites) {
  return std::string(to_string(op)) + "=" +
         Selector::pick(suite, op, bytes, nranks, nsites).algo;
}

}  // namespace

GuidelineReport verify_guidelines(const topo::GridSpec& spec,
                                  const std::string& topology_label,
                                  const mpi::ImplProfile& profile,
                                  const tcp::KernelTunables& kernel,
                                  const GuidelineOptions& opt) {
  if (opt.sizes.empty())
    throw std::invalid_argument("verify_guidelines: no probe sizes");
  const int nsites = static_cast<int>(spec.sites.size());
  GuidelineReport report;

  auto add = [&](const char* guideline, double bytes, double lhs, double rhs,
                 double tol, std::string detail) {
    GuidelineCell c;
    c.guideline = guideline;
    c.profile = profile.name;
    c.topology = topology_label;
    c.bytes = bytes;
    c.lhs_s = lhs;
    c.rhs_s = rhs;
    c.ratio = rhs > 0 ? lhs / rhs : 0;
    c.tolerance = tol;
    c.violated = lhs > tol * rhs;
    c.detail = std::move(detail);
    report.cells.push_back(std::move(c));
  };

  const auto& suite = profile.collectives;
  std::vector<SizeTimes> times;
  times.reserve(opt.sizes.size());
  for (double bytes : opt.sizes)
    times.push_back(measure_size(spec, profile, kernel, opt, bytes));

  const double ctol = opt.composition_tolerance;
  for (size_t i = 0; i < opt.sizes.size(); ++i) {
    const double bytes = opt.sizes[i];
    const SizeTimes& t = times[i];
    add("allreduce<=reduce+bcast", bytes, t.allreduce, t.reduce_then_bcast,
        ctol,
        chosen(suite, CollOp::kAllreduce, bytes, opt.nranks, nsites) + ", " +
            chosen(suite, CollOp::kBcast, bytes, opt.nranks, nsites));
    add("bcast<=scatter+allgather", bytes, t.bcast, t.scatter_then_allgather,
        ctol, chosen(suite, CollOp::kBcast, bytes, opt.nranks, nsites));
    add("reduce_scatter<=reduce+scatter", bytes, t.reduce_scatter,
        t.reduce_then_scatter, ctol, "reduce_scatter=recursive-halving");
  }

  const double mtol = opt.monotone_tolerance;
  for (size_t i = 0; i + 1 < opt.sizes.size(); ++i) {
    const double small = opt.sizes[i];
    const double large = opt.sizes[i + 1];
    add("monotone-bcast", small, times[i].bcast, times[i + 1].bcast, mtol,
        chosen(suite, CollOp::kBcast, small, opt.nranks, nsites) + " vs " +
            chosen(suite, CollOp::kBcast, large, opt.nranks, nsites));
    add("monotone-allreduce", small, times[i].allreduce,
        times[i + 1].allreduce, mtol,
        chosen(suite, CollOp::kAllreduce, small, opt.nranks, nsites) +
            " vs " +
            chosen(suite, CollOp::kAllreduce, large, opt.nranks, nsites));
  }
  return report;
}

mpi::CollRules misruled_selector() {
  mpi::CollRule small;
  small.op = mpi::CollOp::kBcast;
  small.algo = "scatter-ring";
  small.max_bytes = kBcastSmallCutoff;
  mpi::CollRule large;
  large.op = mpi::CollOp::kBcast;
  large.algo = "binomial";
  return {small, large};
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

bool write_coll_json(const std::string& path, const GuidelineReport& report) {
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"schema\": \"gridsim-coll/1\",\n");
  std::fprintf(f, "  \"violations\": %d,\n", report.violations());
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < report.cells.size(); ++i) {
    const GuidelineCell& c = report.cells[i];
    std::fprintf(
        f,
        "    {\"guideline\": \"%s\", \"profile\": \"%s\", "
        "\"topology\": \"%s\", \"bytes\": %.0f, \"lhs_s\": %.9f, "
        "\"rhs_s\": %.9f, \"ratio\": %.4f, \"tolerance\": %.2f, "
        "\"violated\": %s, \"detail\": \"%s\"}%s\n",
        json_escape(c.guideline).c_str(), json_escape(c.profile).c_str(),
        json_escape(c.topology).c_str(), c.bytes, c.lhs_s, c.rhs_s, c.ratio,
        c.tolerance, c.violated ? "true" : "false",
        json_escape(c.detail).c_str(),
        i + 1 < report.cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace gridsim::coll
