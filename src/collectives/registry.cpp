#include "collectives/registry.hpp"

#include <stdexcept>

#include "collectives/algorithms.hpp"

namespace gridsim::coll {

namespace {

template <typename Entry>
const Entry* find_in(const std::vector<Entry>& entries,
                     std::string_view name) {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
    for (const std::string& alias : e.aliases)
      if (alias == name) return &e;
  }
  return nullptr;
}

[[noreturn]] void unknown(const char* op, std::string_view name) {
  throw std::invalid_argument(std::string(op) + ": unknown algorithm '" +
                              std::string(name) + "'");
}

}  // namespace

AlgorithmRegistry::AlgorithmRegistry() {
  bcast_ = {
      {"binomial",
       {},
       "log2(p) tree; WAN-oblivious but only one WAN crossing per subtree "
       "edge",
       false,
       &algo::bcast_binomial},
      {"scatter-ring",
       {"vandegeijn"},
       "van de Geijn: binomial scatter + rank-ordered ring allgather; the "
       "ring crosses the WAN ~every step",
       false,
       &algo::bcast_scatter_ring},
      {"hierarchical",
       {},
       "per-site scatter, parallel node-to-node WAN streams, intra-site "
       "ring reassembly (GridMPI)",
       true,
       &algo::bcast_hierarchical},
      {"pipeline",
       {},
       "segmented chain in rank order; crosses the WAN once on block "
       "placement",
       false,
       &algo::bcast_pipeline},
  };
  allreduce_ = {
      {"recursive-doubling",
       {},
       "log2(p) pairwise exchange rounds at full message size",
       false,
       &algo::allreduce_recursive_doubling},
      {"rabenseifner",
       {},
       "reduce-scatter by recursive halving + allgather by recursive "
       "doubling",
       false,
       &algo::allreduce_rabenseifner},
      {"hierarchical",
       {},
       "per-site reduce, site-leader exchange across the WAN, per-site "
       "bcast (GridMPI)",
       true,
       &algo::allreduce_hierarchical},
  };
  alltoall_ = {
      {"pairwise",
       {},
       "p-1 steps; step s pairs me with me+s (send) and me-s (recv)",
       false,
       &algo::alltoallv_pairwise},
      {"ring",
       {},
       "neighbour-only relaying, blocks forwarded hop by hop",
       false,
       &algo::alltoallv_ring},
      {"bruck",
       {},
       "log2(p) rounds of aggregated blocks; wins for tiny payloads",
       false,
       &algo::alltoallv_bruck},
  };
  barrier_ = {
      {"dissemination",
       {},
       "log2(p) rounds, every rank active each round",
       false,
       &algo::barrier_dissemination},
      {"tree",
       {},
       "binomial reduce + binomial broadcast of a token",
       false,
       &algo::barrier_tree},
  };
}

const AlgorithmRegistry& AlgorithmRegistry::instance() {
  static const AlgorithmRegistry registry;
  return registry;
}

const BcastAlgorithm* AlgorithmRegistry::find_bcast(
    std::string_view name) const {
  return find_in(bcast_, name);
}

const AllreduceAlgorithm* AlgorithmRegistry::find_allreduce(
    std::string_view name) const {
  return find_in(allreduce_, name);
}

const AlltoallAlgorithm* AlgorithmRegistry::find_alltoall(
    std::string_view name) const {
  return find_in(alltoall_, name);
}

const BarrierAlgorithm* AlgorithmRegistry::find_barrier(
    std::string_view name) const {
  return find_in(barrier_, name);
}

std::vector<std::string> AlgorithmRegistry::names(
    const std::string& op) const {
  std::vector<std::string> out;
  if (op == "bcast") {
    for (const auto& e : bcast_) out.push_back(e.name);
  } else if (op == "allreduce") {
    for (const auto& e : allreduce_) out.push_back(e.name);
  } else if (op == "alltoall") {
    for (const auto& e : alltoall_) out.push_back(e.name);
  } else if (op == "barrier") {
    for (const auto& e : barrier_) out.push_back(e.name);
  } else {
    throw std::invalid_argument("names: unknown operation '" + op + "'");
  }
  return out;
}

// --- enum <-> name bridge --------------------------------------------------

std::string_view name_of(mpi::BcastAlgo algo) {
  switch (algo) {
    case mpi::BcastAlgo::kBinomial:
      return "binomial";
    case mpi::BcastAlgo::kVanDeGeijn:
      return "vandegeijn";
    case mpi::BcastAlgo::kHierarchical:
      return "hierarchical";
    case mpi::BcastAlgo::kPipeline:
      return "pipeline";
  }
  return "?";
}

std::string_view name_of(mpi::AllreduceAlgo algo) {
  switch (algo) {
    case mpi::AllreduceAlgo::kRecursiveDoubling:
      return "recursive-doubling";
    case mpi::AllreduceAlgo::kRabenseifner:
      return "rabenseifner";
    case mpi::AllreduceAlgo::kHierarchical:
      return "hierarchical";
  }
  return "?";
}

std::string_view name_of(mpi::AlltoallAlgo algo) {
  switch (algo) {
    case mpi::AlltoallAlgo::kPairwise:
      return "pairwise";
    case mpi::AlltoallAlgo::kRing:
      return "ring";
    case mpi::AlltoallAlgo::kBruck:
      return "bruck";
  }
  return "?";
}

std::string_view name_of(mpi::BarrierAlgo algo) {
  switch (algo) {
    case mpi::BarrierAlgo::kDissemination:
      return "dissemination";
    case mpi::BarrierAlgo::kTree:
      return "tree";
  }
  return "?";
}

mpi::BcastAlgo bcast_policy_by_name(std::string_view name) {
  if (name == "binomial") return mpi::BcastAlgo::kBinomial;
  if (name == "vandegeijn" || name == "scatter-ring")
    return mpi::BcastAlgo::kVanDeGeijn;
  if (name == "hierarchical") return mpi::BcastAlgo::kHierarchical;
  if (name == "pipeline") return mpi::BcastAlgo::kPipeline;
  unknown("bcast", name);
}

mpi::AllreduceAlgo allreduce_policy_by_name(std::string_view name) {
  if (name == "recursive-doubling") return mpi::AllreduceAlgo::kRecursiveDoubling;
  if (name == "rabenseifner") return mpi::AllreduceAlgo::kRabenseifner;
  if (name == "hierarchical") return mpi::AllreduceAlgo::kHierarchical;
  unknown("allreduce", name);
}

mpi::AlltoallAlgo alltoall_policy_by_name(std::string_view name) {
  if (name == "pairwise") return mpi::AlltoallAlgo::kPairwise;
  if (name == "ring") return mpi::AlltoallAlgo::kRing;
  if (name == "bruck") return mpi::AlltoallAlgo::kBruck;
  unknown("alltoall", name);
}

mpi::BarrierAlgo barrier_policy_by_name(std::string_view name) {
  if (name == "dissemination") return mpi::BarrierAlgo::kDissemination;
  if (name == "tree") return mpi::BarrierAlgo::kTree;
  unknown("barrier", name);
}

}  // namespace gridsim::coll
