// Self-verifying performance guidelines for the collective selector.
//
// In the spirit of Hunold et al., "Tuning MPI Collectives by Verifying
// Performance Guidelines": a selector that picks algorithms per size and
// topology must not contradict itself. We check two guideline families by
// running the real simulation for each (profile, topology, size) cell:
//
//  * composition guidelines — a specialised collective must not lose badly
//    to its own composition from simpler collectives:
//      Allreduce       <= c * (Reduce + Bcast)
//      Bcast           <= c * (Scatter + Allgather)
//      Reduce_scatter  <= c * (Reduce + Scatter)
//  * size-monotonicity guidelines — sending less must not take much
//    longer: T(op, s) <= c' * T(op, s_next) for consecutive probe sizes.
//
// Tolerances are deliberately generous: the WAN-oblivious profiles the
// paper measures are *legitimately* slow on the grid (that is the paper's
// point), and a guideline harness that flagged MPICH2's ring broadcast as
// a bug would be re-litigating Table 1 instead of catching selector
// mistakes. What the harness must catch is a self-contradictory rule table
// — e.g. the deliberately inverted cutoff of `misruled_selector()`, which
// runs the latency-bound scatter-ring for 1 kB payloads. With ranks
// interleaved across sites (GuidelineOptions::cyclic) the ring then pays a
// WAN bubble on ~every hop and a 1 kB broadcast costs 1.67x a 64 kB one —
// a "monotone-bcast" violation, well clear of the honest worst case 0.56.
//
// `gridsim coll --verify` and the coll/* catalog scenarios drive this
// sweep; write_coll_json emits the "gridsim-coll/1" report.
#pragma once

#include <string>
#include <vector>

#include "mpi/coll_rules.hpp"
#include "mpi/profile.hpp"
#include "simcore/simulation.hpp"
#include "simtcp/tcp.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::coll {

/// Composition slack: the specialised collective may cost up to this factor
/// of its composition before the guideline fires. Calibrated against the
/// shipped tables: the worst honest cell is MPICH-Madeleine's binomial-only
/// 1 MB broadcast on a cluster at ratio ~3.3 (a binomial tree moves each
/// byte log2(p) times where scatter+allgather moves it ~twice), so 4.5
/// leaves >35% headroom while still firing on selections that lose the
/// composition race outright.
constexpr double kCompositionTolerance = 4.5;
/// Monotonicity slack: a smaller payload may cost up to this factor of the
/// next larger probe. Shipped selections are monotone (worst honest ratio
/// ~0.56, on the cyclic grid); the misruled fixture reaches ~1.67 there.
constexpr double kMonotoneTolerance = 1.25;

struct GuidelineOptions {
  /// Probe payload sizes (bytes), ascending. Spans both sides of every
  /// default cutoff (12 kB bcast, 2 kB allreduce).
  std::vector<double> sizes = {1e3, 64e3, 1e6};
  int nranks = 16;
  /// Interleave ranks across sites (mpi::cyclic_placement) instead of the
  /// default block placement. This is the adversarial rank order the
  /// paper's introduction motivates: rank-ordered algorithms (the ring
  /// allgather) then cross the WAN on ~every step, which is what exposes a
  /// WAN-oblivious rule table.
  bool cyclic = false;
  double composition_tolerance = kCompositionTolerance;
  double monotone_tolerance = kMonotoneTolerance;
  /// Observed around every Simulation the sweep runs (campaign digesting).
  SimHooks hooks;
};

/// One evaluated guideline instance.
struct GuidelineCell {
  std::string guideline;  ///< "allreduce<=reduce+bcast", "monotone-bcast", ...
  std::string profile;
  std::string topology;  ///< "cluster", "grid", ...
  double bytes = 0;      ///< probe size (monotone: the smaller of the pair)
  double lhs_s = 0;      ///< measured seconds, left-hand side
  double rhs_s = 0;      ///< measured seconds, right-hand side
  double ratio = 0;      ///< lhs / rhs
  double tolerance = 0;
  bool violated = false;
  std::string detail;  ///< algorithms the selector chose for the cell
};

struct GuidelineReport {
  std::vector<GuidelineCell> cells;
  int violations() const {
    int n = 0;
    for (const auto& c : cells) n += c.violated ? 1 : 0;
    return n;
  }
};

/// Runs the guideline sweep for one profile on one deployment. Builds its
/// own Simulations (one per measured composition), so it composes with the
/// campaign's digest hooks via `opt.hooks`.
GuidelineReport verify_guidelines(const topo::GridSpec& spec,
                                  const std::string& topology_label,
                                  const mpi::ImplProfile& profile,
                                  const tcp::KernelTunables& kernel,
                                  const GuidelineOptions& opt = {});

/// The deliberately mis-ruled selector fixture: inverts the van de Geijn
/// cutoff so the latency-bound scatter-ring runs for small broadcasts and
/// binomial for large ones. On the cyclic-placement grid this must trip
/// the "monotone-bcast" guideline — the harness proving it can catch a bad
/// rule table.
mpi::CollRules misruled_selector();

/// Writes the "gridsim-coll/1" JSON report. Returns false on I/O failure.
bool write_coll_json(const std::string& path, const GuidelineReport& report);

}  // namespace gridsim::coll
