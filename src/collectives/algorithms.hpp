// Collective algorithm implementations — the building blocks behind the
// registry (registry.hpp).
//
// This header is private to the collectives layer: consumers dispatch
// through `coll::AlgorithmRegistry` entries (or the public entry points in
// collectives.hpp), never by naming these functions directly. Two tiers
// live here:
//
//  * group primitives (`group_*`): operate on an explicit member list of
//    global ranks, so the hierarchical algorithms can run them per site or
//    over the site leaders. Every member of `group` must call the function
//    with identical arguments, and the caller keeps the vector alive across
//    the co_await.
//  * whole-communicator algorithms (flat signatures): what the registry
//    entries point at. Pure algorithms with no size cutoffs — switching
//    (e.g. binomial below 12 kB) is the selector's job (selector.hpp).
#pragma once

#include <vector>

#include "mpi/mpi.hpp"
#include "simcore/task.hpp"

namespace gridsim::coll::algo {

/// Reduction arithmetic cost: combining two b-byte operands on a reference
/// node streams at ~1 GB/s.
Task<void> reduce_compute(mpi::Rank& r, double bytes);

bool is_pow2(int v);

/// Position of `rank` inside `group`; asserts membership.
int index_in(const std::vector<int>& group, int rank);

/// The whole communicator, 0..size()-1.
std::vector<int> full_group(mpi::Rank& r);

// --- group primitives ------------------------------------------------------

Task<void> group_bcast_binomial(mpi::Rank& r, const std::vector<int>& group,
                                int root_idx, double bytes, int tag);

/// Binomial scatter leaving each group member with bytes/p (van de Geijn
/// phase 1). Chunk counts follow the MPICH subtree rule.
Task<void> group_scatter_for_bcast(mpi::Rank& r, const std::vector<int>& group,
                                   int root_idx, double total, int tag);

/// Ring allgather of one `chunk`-sized block per member, `steps` rounds.
Task<void> group_ring_allgather(mpi::Rank& r, const std::vector<int>& group,
                                double chunk, int steps, int tag);

Task<void> group_reduce_binomial(mpi::Rank& r, const std::vector<int>& group,
                                 int root_idx, double bytes, int tag);

/// Recursive doubling; non-power-of-two groups fall back to binomial
/// reduce + binomial bcast through member 0.
Task<void> group_allreduce_recdbl(mpi::Rank& r, const std::vector<int>& group,
                                  double bytes, int tag);

/// Reduce-scatter by recursive halving + allgather by recursive doubling;
/// non-power-of-two groups fall back to recursive doubling.
Task<void> group_allreduce_rabenseifner(mpi::Rank& r,
                                        const std::vector<int>& group,
                                        double bytes, int tag);

// --- site grouping for topology-aware algorithms ---------------------------

struct SiteGroups {
  std::vector<std::vector<int>> members;  ///< per represented site, by rank
  int my_group = -1;
  std::vector<int> group_of_rank;
};

SiteGroups group_by_site(mpi::Rank& r);

// --- whole-communicator algorithms (registry entry points) -----------------

Task<void> bcast_binomial(mpi::Rank& r, int root, double bytes, int tag);
/// WAN-oblivious van de Geijn: binomial scatter + rank-ordered ring
/// allgather. On a block-placed grid job the ring repeatedly hands chunks
/// across the WAN: p-1 latency-bound steps.
Task<void> bcast_scatter_ring(mpi::Rank& r, int root, double bytes, int tag);
/// Root site scatters, chunks cross the WAN on parallel node-to-node
/// connections, remote sites reassemble with an intra-site ring.
Task<void> bcast_hierarchical(mpi::Rank& r, int root, double bytes, int tag);
/// Segmented chain broadcast: rank-ordered pipeline relative to the root.
Task<void> bcast_pipeline(mpi::Rank& r, int root, double bytes, int tag);

Task<void> allreduce_recursive_doubling(mpi::Rank& r, double bytes, int tag);
Task<void> allreduce_rabenseifner(mpi::Rank& r, double bytes, int tag);
/// Per-site reduce, exchange among site leaders, per-site bcast.
Task<void> allreduce_hierarchical(mpi::Rank& r, double bytes, int tag);

/// Pairwise exchange: step s pairs me with me+s (send) and me-s (recv).
Task<void> alltoallv_pairwise(mpi::Rank& r,
                              const std::vector<double>& send_bytes, int tag);
/// Neighbour-only relaying ring (see collectives.hpp commentary).
Task<void> alltoallv_ring(mpi::Rank& r, const std::vector<double>& send_bytes,
                          int tag);
/// Bruck: ceil(log2 p) rounds of aggregated blocks.
Task<void> alltoallv_bruck(mpi::Rank& r, const std::vector<double>& send_bytes,
                           int tag);

/// Dissemination barrier: ceil(log2 p) rounds of 1-byte messages.
Task<void> barrier_dissemination(mpi::Rank& r, int tag);
/// Binomial reduce + binomial broadcast of a 1-byte token.
Task<void> barrier_tree(mpi::Rank& r, int tag);

}  // namespace gridsim::coll::algo
