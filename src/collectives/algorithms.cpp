#include "collectives/algorithms.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gridsim::coll::algo {

using mpi::Rank;

Task<void> reduce_compute(Rank& r, double bytes) {
  co_await r.compute(bytes / 1e9);
}

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int index_in(const std::vector<int>& group, int rank) {
  const auto it = std::find(group.begin(), group.end(), rank);
  assert(it != group.end());
  return static_cast<int>(it - group.begin());
}

std::vector<int> full_group(Rank& r) {
  std::vector<int> g(static_cast<size_t>(r.size()));
  for (int i = 0; i < r.size(); ++i) g[static_cast<size_t>(i)] = i;
  return g;
}

// ---------------------------------------------------------------------------
// Group primitives. `group` lists global ranks; every member of the group
// calls the function with identical arguments.
// ---------------------------------------------------------------------------

Task<void> group_bcast_binomial(Rank& r, const std::vector<int>& group,
                                int root_idx, double bytes, int tag) {
  const int p = static_cast<int>(group.size());
  if (p <= 1) co_return;
  const int me = index_in(group, r.rank());
  const int rel = (me - root_idx + p) % p;
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      const int src = ((rel - mask) + root_idx) % p;
      (void)co_await r.recv(group[static_cast<size_t>(src)], tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      const int dst = ((rel + mask) + root_idx) % p;
      co_await r.send(group[static_cast<size_t>(dst)], bytes, tag);
    }
    mask >>= 1;
  }
}

Task<void> group_scatter_for_bcast(Rank& r, const std::vector<int>& group,
                                   int root_idx, double total, int tag) {
  const int p = static_cast<int>(group.size());
  if (p <= 1) co_return;
  const int me = index_in(group, r.rank());
  const int rel = (me - root_idx + p) % p;
  const double chunk = total / p;
  int mask = 1;
  if (rel != 0) {
    while (mask < p) {
      if (rel & mask) {
        const int src = ((rel - mask) + root_idx) % p;
        (void)co_await r.recv(group[static_cast<size_t>(src)], tag);
        break;
      }
      mask <<= 1;
    }
  } else {
    while (mask < p) mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      const int count = std::min(mask, p - (rel + mask));
      const int dst = ((rel + mask) + root_idx) % p;
      co_await r.send(group[static_cast<size_t>(dst)], count * chunk, tag);
    }
    mask >>= 1;
  }
}

Task<void> group_ring_allgather(Rank& r, const std::vector<int>& group,
                                double chunk, int steps, int tag) {
  const int p = static_cast<int>(group.size());
  if (p <= 1 || steps <= 0) co_return;
  const int me = index_in(group, r.rank());
  const int right = group[static_cast<size_t>((me + 1) % p)];
  const int left = group[static_cast<size_t>((me - 1 + p) % p)];
  for (int s = 0; s < steps; ++s) {
    mpi::Request req = r.isend(right, chunk, tag);
    (void)co_await r.recv(left, tag);
    (void)co_await r.wait(req);
  }
}

Task<void> group_reduce_binomial(Rank& r, const std::vector<int>& group,
                                 int root_idx, double bytes, int tag) {
  const int p = static_cast<int>(group.size());
  if (p <= 1) co_return;
  const int me = index_in(group, r.rank());
  const int rel = (me - root_idx + p) % p;
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      const int dst = ((rel - mask) + root_idx) % p;
      co_await r.send(group[static_cast<size_t>(dst)], bytes, tag);
      break;
    }
    if (rel + mask < p) {
      const int src = ((rel + mask) + root_idx) % p;
      (void)co_await r.recv(group[static_cast<size_t>(src)], tag);
      co_await reduce_compute(r, bytes);
    }
    mask <<= 1;
  }
}

Task<void> group_allreduce_recdbl(Rank& r, const std::vector<int>& group,
                                  double bytes, int tag) {
  const int p = static_cast<int>(group.size());
  if (p <= 1) co_return;
  const int me = index_in(group, r.rank());
  if (!is_pow2(p)) {
    // Fallback: binomial reduce to member 0 + binomial bcast.
    co_await group_reduce_binomial(r, group, 0, bytes, tag);
    co_await group_bcast_binomial(r, group, 0, bytes, tag);
    co_return;
  }
  for (int mask = 1; mask < p; mask <<= 1) {
    const int partner = group[static_cast<size_t>(me ^ mask)];
    mpi::Request req = r.isend(partner, bytes, tag);
    (void)co_await r.recv(partner, tag);
    (void)co_await r.wait(req);
    co_await reduce_compute(r, bytes);
  }
}

Task<void> group_allreduce_rabenseifner(Rank& r, const std::vector<int>& group,
                                        double bytes, int tag) {
  const int p = static_cast<int>(group.size());
  if (p <= 1) co_return;
  if (!is_pow2(p)) {
    co_await group_allreduce_recdbl(r, group, bytes, tag);
    co_return;
  }
  const int me = index_in(group, r.rank());
  // Reduce-scatter by recursive halving.
  double size = bytes / 2;
  for (int dist = p / 2; dist >= 1; dist /= 2) {
    const int partner = group[static_cast<size_t>(me ^ dist)];
    mpi::Request req = r.isend(partner, size, tag);
    (void)co_await r.recv(partner, tag);
    (void)co_await r.wait(req);
    co_await reduce_compute(r, size);
    size /= 2;
  }
  // Allgather by recursive doubling.
  size = bytes / p;
  for (int dist = 1; dist < p; dist *= 2) {
    const int partner = group[static_cast<size_t>(me ^ dist)];
    mpi::Request req = r.isend(partner, size, tag);
    (void)co_await r.recv(partner, tag);
    (void)co_await r.wait(req);
    size *= 2;
  }
}

// ---------------------------------------------------------------------------
// Site grouping.
// ---------------------------------------------------------------------------

SiteGroups group_by_site(Rank& r) {
  SiteGroups g;
  auto& job = r.job();
  std::vector<int> site_to_group;
  g.group_of_rank.resize(static_cast<size_t>(job.size()));
  for (int rk = 0; rk < job.size(); ++rk) {
    const int site = job.grid().site_of(job.rank(rk).host());
    if (site >= static_cast<int>(site_to_group.size()))
      site_to_group.resize(static_cast<size_t>(site) + 1, -1);
    if (site_to_group[static_cast<size_t>(site)] < 0) {
      site_to_group[static_cast<size_t>(site)] =
          static_cast<int>(g.members.size());
      g.members.emplace_back();
    }
    const int grp = site_to_group[static_cast<size_t>(site)];
    g.group_of_rank[static_cast<size_t>(rk)] = grp;
    g.members[static_cast<size_t>(grp)].push_back(rk);
  }
  g.my_group = g.group_of_rank[static_cast<size_t>(r.rank())];
  return g;
}

// ---------------------------------------------------------------------------
// Whole-communicator algorithms.
// ---------------------------------------------------------------------------

Task<void> bcast_binomial(Rank& r, int root, double bytes, int tag) {
  co_await group_bcast_binomial(r, full_group(r), root, bytes, tag);
}

Task<void> bcast_scatter_ring(Rank& r, int root, double bytes, int tag) {
  std::vector<int> group = full_group(r);
  co_await group_scatter_for_bcast(r, group, root, bytes, tag);
  co_await group_ring_allgather(r, group, bytes / r.size(), r.size() - 1, tag);
}

Task<void> bcast_hierarchical(Rank& r, int root, double bytes, int tag) {
  SiteGroups g = group_by_site(r);
  const int root_grp = g.group_of_rank[static_cast<size_t>(root)];
  const auto& home = g.members[static_cast<size_t>(root_grp)];
  const int k = static_cast<int>(home.size());
  const double chunk = bytes / k;
  const int me = r.rank();

  // Phase 1: intra-site scatter at the root site.
  if (g.my_group == root_grp) {
    co_await group_scatter_for_bcast(r, home, index_in(home, root), bytes,
                                     tag);
  }

  // Phase 2: home member c streams its chunk to member c % m of every other
  // site; all k WAN streams run simultaneously.
  if (g.my_group == root_grp) {
    const int c = index_in(home, me);
    std::vector<mpi::Request> reqs;
    for (int s = 0; s < static_cast<int>(g.members.size()); ++s) {
      if (s == root_grp) continue;
      const auto& remote = g.members[static_cast<size_t>(s)];
      const int m = static_cast<int>(remote.size());
      reqs.push_back(r.isend(remote[static_cast<size_t>(c % m)], chunk, tag));
    }
    co_await r.wait_all(std::move(reqs));
  } else {
    const auto& mine = g.members[static_cast<size_t>(g.my_group)];
    const int m = static_cast<int>(mine.size());
    const int my_idx = index_in(mine, me);
    for (int c = 0; c < k; ++c) {
      if (c % m == my_idx)
        (void)co_await r.recv(home[static_cast<size_t>(c)], tag);
    }
  }

  // Phase 3: every site reassembles the k chunks with an intra-site ring.
  const auto& mine = g.members[static_cast<size_t>(g.my_group)];
  co_await group_ring_allgather(r, mine, chunk, k - 1, tag);
}

Task<void> bcast_pipeline(Rank& r, int root, double bytes, int tag) {
  // With k segments the last rank finishes after (p - 2 + k) segment hops;
  // on a block-placed grid the chain crosses the WAN exactly once.
  const std::vector<int> group = full_group(r);
  const int p = static_cast<int>(group.size());
  if (p <= 1) co_return;
  constexpr int kSegments = 8;
  const double seg = bytes / kSegments;
  const int me = index_in(group, r.rank());
  const int rel = (me - root + p) % p;
  const int prev = group[static_cast<size_t>((me - 1 + p) % p)];
  const int next = group[static_cast<size_t>((me + 1) % p)];
  for (int s = 0; s < kSegments; ++s) {
    if (rel != 0) (void)co_await r.recv(prev, tag);
    if (rel != p - 1) co_await r.send(next, seg, tag);
  }
}

Task<void> allreduce_recursive_doubling(Rank& r, double bytes, int tag) {
  co_await group_allreduce_recdbl(r, full_group(r), bytes, tag);
}

Task<void> allreduce_rabenseifner(Rank& r, double bytes, int tag) {
  co_await group_allreduce_rabenseifner(r, full_group(r), bytes, tag);
}

Task<void> allreduce_hierarchical(Rank& r, double bytes, int tag) {
  SiteGroups g = group_by_site(r);
  const auto& mine = g.members[static_cast<size_t>(g.my_group)];
  co_await group_reduce_binomial(r, mine, 0, bytes, tag);
  if (r.rank() == mine[0]) {
    std::vector<int> leaders;
    for (const auto& m : g.members) leaders.push_back(m[0]);
    co_await group_allreduce_recdbl(r, leaders, bytes, tag);
  }
  co_await group_bcast_binomial(r, mine, 0, bytes, tag);
}

Task<void> alltoallv_pairwise(Rank& r, const std::vector<double>& send_bytes,
                              int tag) {
  const int p = r.size();
  const int me = r.rank();
  // Zero-sized entries still travel as empty messages so the peer's recv
  // always has a match.
  for (int s = 1; s < p; ++s) {
    const int dst = (me + s) % p;
    const int src = (me - s + p) % p;
    mpi::Request req = r.isend(dst, send_bytes[static_cast<size_t>(dst)], tag);
    (void)co_await r.recv(src, tag);
    (void)co_await r.wait(req);
  }
}

Task<void> alltoallv_ring(Rank& r, const std::vector<double>& send_bytes,
                          int tag) {
  // Only neighbour links are used; blocks are relayed hop by hop, so a
  // block for distance d crosses d links. Modelled with uniform relaying:
  // at step s each rank forwards the fraction of its total volume that
  // still has further to travel. Cheap on a physical ring, wasteful when
  // neighbours sit across a WAN.
  const int p = r.size();
  const int me = r.rank();
  double total = 0;
  for (double b : send_bytes) total += b;
  const int right = (me + 1) % p;
  const int left = (me - 1 + p) % p;
  for (int s = 1; s < p; ++s) {
    const double step_bytes = total * double(p - s) / double(p - 1);
    mpi::Request req = r.isend(right, step_bytes, tag);
    (void)co_await r.recv(left, tag);
    (void)co_await r.wait(req);
  }
}

Task<void> alltoallv_bruck(Rank& r, const std::vector<double>& send_bytes,
                           int tag) {
  // In round k every rank sends to (me + 2^k) the aggregate of all blocks
  // whose relative destination has bit k set — about half the total volume
  // per round, but only log2(p) latency hits. The classic choice for small
  // payloads.
  const int p = r.size();
  const int me = r.rank();
  double total = 0;
  for (double b : send_bytes) total += b;
  for (int k = 1; k < p; k <<= 1) {
    const int dst = (me + k) % p;
    const int src = (me - k + p) % p;
    // Fraction of relative destinations 1..p-1 with bit k set.
    int with_bit = 0;
    for (int rel = 1; rel < p; ++rel)
      if (rel & k) ++with_bit;
    const double bytes = total * with_bit / std::max(1, p - 1);
    mpi::Request req = r.isend(dst, bytes, tag);
    (void)co_await r.recv(src, tag);
    (void)co_await r.wait(req);
  }
}

Task<void> barrier_dissemination(Rank& r, int tag) {
  const int p = r.size();
  const int me = r.rank();
  for (int k = 1; k < p; k <<= 1) {
    mpi::Request req = r.isend((me + k) % p, 1, tag);
    (void)co_await r.recv((me - k + p) % p, tag);
    (void)co_await r.wait(req);
  }
}

Task<void> barrier_tree(Rank& r, int tag) {
  const std::vector<int> group = full_group(r);
  co_await group_reduce_binomial(r, group, 0, 1, tag);
  co_await group_bcast_binomial(r, group, 0, 1, tag);
}

}  // namespace gridsim::coll::algo
