// Collective operations over the point-to-point engine.
//
// Every rank of a communicator must call the same collectives in the same
// order (SPMD); tags are derived from a per-rank collective sequence number.
//
// The algorithm used for each operation comes from the implementation
// profile's CollectiveSuite:
//
//  * WAN-oblivious defaults (MPICH2/OpenMPI-style): binomial trees for
//    small messages, scatter + rank-ordered ring allgather for large
//    broadcasts — the ring crosses the WAN once per step, which is the
//    paper's explanation for poor FT performance on the grid.
//  * GridMPI (topology-aware): hierarchical algorithms that cross the WAN
//    once, using one simultaneous stream per node pair ("multiple
//    node-to-node connections", Matsuda et al. Cluster'06).
#pragma once

#include <vector>

#include "mpi/mpi.hpp"
#include "simcore/task.hpp"

namespace gridsim::coll {

/// Dissemination barrier: ceil(log2 p) rounds of 1-byte messages.
Task<void> barrier(mpi::Rank& r);

/// Broadcast `bytes` from `root` to all ranks.
Task<void> bcast(mpi::Rank& r, int root, double bytes);

/// Reduce `bytes` from all ranks onto `root` (binomial tree).
Task<void> reduce(mpi::Rank& r, int root, double bytes);

/// Allreduce `bytes` across all ranks.
Task<void> allreduce(mpi::Rank& r, double bytes);

/// Root gathers `bytes_per_rank` from everyone (binomial).
Task<void> gather(mpi::Rank& r, int root, double bytes_per_rank);

/// Root scatters `bytes_per_rank` to everyone (binomial).
Task<void> scatter(mpi::Rank& r, int root, double bytes_per_rank);

/// Everyone ends with everyone's block (ring).
Task<void> allgather(mpi::Rank& r, double bytes_per_rank);

/// Personalised exchange: every rank sends `bytes_per_pair` to every other.
Task<void> alltoall(mpi::Rank& r, double bytes_per_pair);

/// Vector variant: `send_bytes[d]` goes to rank d (size() entries).
Task<void> alltoallv(mpi::Rank& r, const std::vector<double>& send_bytes);

/// Root gathers `bytes[i]` from rank i (linear: the classic
/// non-topology-aware implementation the paper notes for MPICH-G2).
Task<void> gatherv(mpi::Rank& r, int root, const std::vector<double>& bytes);

/// Root sends `bytes[i]` to rank i (linear).
Task<void> scatterv(mpi::Rank& r, int root, const std::vector<double>& bytes);

/// Reduce + scatter of the result: every rank ends with bytes/size() of
/// the reduced vector (recursive halving on powers of two).
Task<void> reduce_scatter(mpi::Rank& r, double bytes);

namespace detail {
// Exposed for unit tests and the ablation bench.
Task<void> bcast_binomial(mpi::Rank& r, int root, double bytes, int tag);
Task<void> bcast_scatter_ring(mpi::Rank& r, int root, double bytes, int tag);
Task<void> bcast_hierarchical(mpi::Rank& r, int root, double bytes, int tag);
Task<void> bcast_pipeline(mpi::Rank& r, int root, double bytes, int tag);
Task<void> allreduce_recursive_doubling(mpi::Rank& r, double bytes, int tag);
Task<void> allreduce_rabenseifner(mpi::Rank& r, double bytes, int tag);
Task<void> allreduce_hierarchical(mpi::Rank& r, double bytes, int tag);
}  // namespace detail

}  // namespace gridsim::coll
