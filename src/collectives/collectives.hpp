// Collective operations over the point-to-point engine.
//
// Every rank of a communicator must call the same collectives in the same
// order (SPMD); tags are derived from a per-rank collective sequence number.
//
// The algorithm behind each operation comes from the algorithm layer:
//
//  * `AlgorithmRegistry` (registry.hpp) — every implemented algorithm is a
//    named, introspectable entry (binomial, scatter-ring/van de Geijn,
//    pipeline, hierarchical, recursive-doubling, rabenseifner, ...).
//  * `Selector` (selector.hpp) — picks the entry per (operation, message
//    size, communicator size, topology shape) from the profile's
//    declarative rules, falling back to default tables derived from the
//    profile's `CollectiveSuite` enums:
//      - WAN-oblivious defaults (MPICH2/OpenMPI-style): binomial trees for
//        small messages, scatter + rank-ordered ring allgather for large
//        broadcasts — the ring crosses the WAN once per step, which is the
//        paper's explanation for poor FT performance on the grid.
//      - GridMPI (topology-aware): hierarchical algorithms that cross the
//        WAN once, using one simultaneous stream per node pair ("multiple
//        node-to-node connections", Matsuda et al. Cluster'06).
//  * guideline verification (guidelines.hpp) — `gridsim coll --verify`
//    sweeps profile x size x topology and flags self-contradictory
//    selections (e.g. Allreduce slower than Reduce+Bcast).
#pragma once

#include <vector>

#include "mpi/mpi.hpp"
#include "simcore/task.hpp"

namespace gridsim::coll {

/// Barrier (algorithm chosen by the selector: dissemination or tree).
Task<void> barrier(mpi::Rank& r);

/// Broadcast `bytes` from `root` to all ranks.
Task<void> bcast(mpi::Rank& r, int root, double bytes);

/// Reduce `bytes` from all ranks onto `root` (binomial tree).
Task<void> reduce(mpi::Rank& r, int root, double bytes);

/// Allreduce `bytes` across all ranks.
Task<void> allreduce(mpi::Rank& r, double bytes);

/// Root gathers `bytes_per_rank` from everyone (binomial).
Task<void> gather(mpi::Rank& r, int root, double bytes_per_rank);

/// Root scatters `bytes_per_rank` to everyone (binomial).
Task<void> scatter(mpi::Rank& r, int root, double bytes_per_rank);

/// Everyone ends with everyone's block (ring).
Task<void> allgather(mpi::Rank& r, double bytes_per_rank);

/// Personalised exchange: every rank sends `bytes_per_pair` to every other.
Task<void> alltoall(mpi::Rank& r, double bytes_per_pair);

/// Vector variant: `send_bytes[d]` goes to rank d (size() entries).
Task<void> alltoallv(mpi::Rank& r, const std::vector<double>& send_bytes);

/// Root gathers `bytes[i]` from rank i (linear: the classic
/// non-topology-aware implementation the paper notes for MPICH-G2).
Task<void> gatherv(mpi::Rank& r, int root, const std::vector<double>& bytes);

/// Root sends `bytes[i]` to rank i (linear).
Task<void> scatterv(mpi::Rank& r, int root, const std::vector<double>& bytes);

/// Reduce + scatter of the result: every rank ends with bytes/size() of
/// the reduced vector (recursive halving on powers of two).
Task<void> reduce_scatter(mpi::Rank& r, double bytes);

}  // namespace gridsim::coll
