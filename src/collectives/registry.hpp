// The collective-algorithm registry: every algorithm the layer implements
// is a named, introspectable entry.
//
// Entries are typed per operation (a bcast algorithm and an allreduce
// algorithm have different signatures) and carry the metadata the selector
// and the `gridsim coll --list` table need: a canonical name, optional
// aliases, a one-line description and whether the algorithm is WAN-aware
// (splits the communicator by site). The registry is immutable and
// process-wide — the algorithm set is the layer's API surface, pinned by
// tests/coll_registry_test.cpp.
//
// Names are what selector rules (mpi/coll_rules.hpp) and the fluent
// builder knobs (`profiles::experiment().bcast_algo("hierarchical")`)
// speak; the legacy `CollectiveSuite` enums are thin aliases resolved
// through `name_of` / `*_policy_by_name` below.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "mpi/mpi.hpp"
#include "mpi/profile.hpp"
#include "simcore/task.hpp"

namespace gridsim::coll {

struct BcastAlgorithm {
  std::string name;
  std::vector<std::string> aliases;
  std::string description;
  bool wan_aware = false;
  Task<void> (*run)(mpi::Rank&, int root, double bytes, int tag) = nullptr;
};

struct AllreduceAlgorithm {
  std::string name;
  std::vector<std::string> aliases;
  std::string description;
  bool wan_aware = false;
  Task<void> (*run)(mpi::Rank&, double bytes, int tag) = nullptr;
};

struct AlltoallAlgorithm {
  std::string name;
  std::vector<std::string> aliases;
  std::string description;
  bool wan_aware = false;
  Task<void> (*run)(mpi::Rank&, const std::vector<double>& send_bytes,
                    int tag) = nullptr;
};

struct BarrierAlgorithm {
  std::string name;
  std::vector<std::string> aliases;
  std::string description;
  bool wan_aware = false;
  Task<void> (*run)(mpi::Rank&, int tag) = nullptr;
};

class AlgorithmRegistry {
 public:
  /// The process-wide registry (immutable after construction).
  static const AlgorithmRegistry& instance();

  const std::vector<BcastAlgorithm>& bcast() const { return bcast_; }
  const std::vector<AllreduceAlgorithm>& allreduce() const {
    return allreduce_;
  }
  const std::vector<AlltoallAlgorithm>& alltoall() const { return alltoall_; }
  const std::vector<BarrierAlgorithm>& barrier() const { return barrier_; }

  /// Lookup by canonical name or alias; nullptr if absent.
  const BcastAlgorithm* find_bcast(std::string_view name) const;
  const AllreduceAlgorithm* find_allreduce(std::string_view name) const;
  const AlltoallAlgorithm* find_alltoall(std::string_view name) const;
  const BarrierAlgorithm* find_barrier(std::string_view name) const;

  /// Canonical names of every registered algorithm for one operation
  /// ("bcast", "allreduce", "alltoall", "barrier"); throws on an unknown
  /// operation. Test parameterisation iterates these instead of hardcoding.
  std::vector<std::string> names(const std::string& op) const;

 private:
  AlgorithmRegistry();
  std::vector<BcastAlgorithm> bcast_;
  std::vector<AllreduceAlgorithm> allreduce_;
  std::vector<AlltoallAlgorithm> alltoall_;
  std::vector<BarrierAlgorithm> barrier_;
};

// --- enum <-> name bridge --------------------------------------------------
//
// Each `CollectiveSuite` enum value names a *policy*: the registered
// algorithm it reaches for large messages plus the layer's small-message
// fallback (see selector.hpp for the default rule tables). The bridge keeps
// existing profiles source-compatible while everything new speaks names.

std::string_view name_of(mpi::BcastAlgo algo);
std::string_view name_of(mpi::AllreduceAlgo algo);
std::string_view name_of(mpi::AlltoallAlgo algo);
std::string_view name_of(mpi::BarrierAlgo algo);

/// Inverse mapping; accepts canonical names and aliases, throws
/// std::invalid_argument on an unknown name.
mpi::BcastAlgo bcast_policy_by_name(std::string_view name);
mpi::AllreduceAlgo allreduce_policy_by_name(std::string_view name);
mpi::AlltoallAlgo alltoall_policy_by_name(std::string_view name);
mpi::BarrierAlgo barrier_policy_by_name(std::string_view name);

}  // namespace gridsim::coll
