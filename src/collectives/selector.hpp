// WAN-aware collective-algorithm selection.
//
// Every public collective entry point (collectives.cpp) asks the selector
// which registered algorithm to run for (operation, message size,
// communicator size, topology shape). Selection is declarative: an ordered
// `mpi::CollRules` list, first match wins.
//
//  1. The profile's custom rules (`suite.selector`) are scanned first —
//     this is how experiments override per-size/per-topology behaviour
//     without touching the algorithms.
//  2. A call no custom rule matches falls back to the *default table*
//     derived from the suite's legacy enums. The default tables reproduce
//     the historic switch statements exactly (e.g. `kVanDeGeijn` = binomial
//     at or below 12 kB, scatter-ring above), which is what keeps every
//     pre-registry catalog digest byte-identical.
//
// The default tables are total (their last rule is unbounded), so `pick`
// always returns a rule.
#pragma once

#include "mpi/coll_rules.hpp"
#include "mpi/mpi.hpp"
#include "mpi/profile.hpp"

namespace gridsim::coll {

/// Small-message cutoffs of the default tables (bytes, inclusive): at or
/// below the cutoff the latency-optimal algorithm wins (binomial bcast,
/// recursive-doubling allreduce); above it the enum's bandwidth algorithm
/// takes over.
constexpr double kBcastSmallCutoff = 12 * 1024;
constexpr double kAllreduceSmallCutoff = 2 * 1024;

class Selector {
 public:
  /// The rule that decides (op, bytes, nranks, nsites) under `suite`:
  /// custom rules first, then the enum-derived default table. The returned
  /// reference lives as long as `suite` (custom match) or the process
  /// (default match).
  static const mpi::CollRule& pick(const mpi::CollectiveSuite& suite,
                                   mpi::CollOp op, double bytes, int nranks,
                                   int nsites);

  /// The default table the suite's enum implies for one operation.
  static const mpi::CollRules& default_rules(const mpi::CollectiveSuite& suite,
                                             mpi::CollOp op);

  /// Custom rules for `op` followed by the default table — the full
  /// decision list `pick` scans, for `gridsim coll --list` and tests.
  static mpi::CollRules effective_rules(const mpi::CollectiveSuite& suite,
                                        mpi::CollOp op);

  /// True if any custom rule for `op` discriminates on topology — only
  /// then does a collective call need to count sites before picking.
  static bool needs_sites(const mpi::CollectiveSuite& suite, mpi::CollOp op);

  /// Whether one rule matches the given call.
  static bool matches(const mpi::CollRule& rule, mpi::CollOp op, double bytes,
                      int nranks, int nsites);
};

/// Distinct sites hosting this job's ranks.
int site_count(mpi::Job& job);

}  // namespace gridsim::coll
