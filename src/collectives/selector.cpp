#include "collectives/selector.hpp"

#include <algorithm>
#include <limits>

#include "topology/grid5000.hpp"

namespace gridsim::coll {

namespace {

using mpi::CollOp;
using mpi::CollRule;
using mpi::CollRules;

CollRule rule(CollOp op, const char* algo, double min_bytes = 0,
              double max_bytes = std::numeric_limits<double>::infinity()) {
  CollRule r;
  r.op = op;
  r.algo = algo;
  r.min_bytes = min_bytes;
  r.max_bytes = max_bytes;
  return r;
}

/// Default tables, one per legacy enum value. Each reproduces the historic
/// switch statement: the latency algorithm at or below the cutoff, the
/// enum's bandwidth algorithm above. Tables are total — the last rule is
/// unbounded.
const CollRules& bcast_table(mpi::BcastAlgo algo) {
  static const CollRules binomial = {rule(CollOp::kBcast, "binomial")};
  static const CollRules vandegeijn = {
      rule(CollOp::kBcast, "binomial", 0, kBcastSmallCutoff),
      rule(CollOp::kBcast, "scatter-ring")};
  static const CollRules hierarchical = {
      rule(CollOp::kBcast, "binomial", 0, kBcastSmallCutoff),
      rule(CollOp::kBcast, "hierarchical")};
  static const CollRules pipeline = {
      rule(CollOp::kBcast, "binomial", 0, kBcastSmallCutoff),
      rule(CollOp::kBcast, "pipeline")};
  switch (algo) {
    case mpi::BcastAlgo::kBinomial:
      return binomial;
    case mpi::BcastAlgo::kVanDeGeijn:
      return vandegeijn;
    case mpi::BcastAlgo::kHierarchical:
      return hierarchical;
    case mpi::BcastAlgo::kPipeline:
      return pipeline;
  }
  return binomial;
}

const CollRules& allreduce_table(mpi::AllreduceAlgo algo) {
  static const CollRules recdbl = {
      rule(CollOp::kAllreduce, "recursive-doubling")};
  static const CollRules rabenseifner = {
      rule(CollOp::kAllreduce, "recursive-doubling", 0,
           kAllreduceSmallCutoff),
      rule(CollOp::kAllreduce, "rabenseifner")};
  static const CollRules hierarchical = {
      rule(CollOp::kAllreduce, "hierarchical")};
  switch (algo) {
    case mpi::AllreduceAlgo::kRecursiveDoubling:
      return recdbl;
    case mpi::AllreduceAlgo::kRabenseifner:
      return rabenseifner;
    case mpi::AllreduceAlgo::kHierarchical:
      return hierarchical;
  }
  return recdbl;
}

const CollRules& alltoall_table(mpi::AlltoallAlgo algo) {
  static const CollRules pairwise = {rule(CollOp::kAlltoall, "pairwise")};
  static const CollRules ring = {rule(CollOp::kAlltoall, "ring")};
  static const CollRules bruck = {rule(CollOp::kAlltoall, "bruck")};
  switch (algo) {
    case mpi::AlltoallAlgo::kPairwise:
      return pairwise;
    case mpi::AlltoallAlgo::kRing:
      return ring;
    case mpi::AlltoallAlgo::kBruck:
      return bruck;
  }
  return pairwise;
}

const CollRules& barrier_table(mpi::BarrierAlgo algo) {
  static const CollRules dissemination = {
      rule(CollOp::kBarrier, "dissemination")};
  static const CollRules tree = {rule(CollOp::kBarrier, "tree")};
  switch (algo) {
    case mpi::BarrierAlgo::kDissemination:
      return dissemination;
    case mpi::BarrierAlgo::kTree:
      return tree;
  }
  return dissemination;
}

}  // namespace

bool Selector::matches(const CollRule& r, CollOp op, double bytes, int nranks,
                       int nsites) {
  if (r.op != op) return false;
  if (bytes < r.min_bytes || bytes > r.max_bytes) return false;
  if (nranks < r.min_ranks || nranks > r.max_ranks) return false;
  switch (r.topo) {
    case mpi::TopoScope::kAny:
      return true;
    case mpi::TopoScope::kSingleSite:
      return nsites <= 1;
    case mpi::TopoScope::kMultiSite:
      return nsites >= 2;
  }
  return true;
}

const CollRules& Selector::default_rules(const mpi::CollectiveSuite& suite,
                                         CollOp op) {
  switch (op) {
    case CollOp::kBcast:
      return bcast_table(suite.bcast);
    case CollOp::kAllreduce:
      return allreduce_table(suite.allreduce);
    case CollOp::kAlltoall:
      return alltoall_table(suite.alltoall);
    case CollOp::kBarrier:
      return barrier_table(suite.barrier);
  }
  return bcast_table(suite.bcast);
}

const CollRule& Selector::pick(const mpi::CollectiveSuite& suite, CollOp op,
                               double bytes, int nranks, int nsites) {
  for (const CollRule& r : suite.selector)
    if (matches(r, op, bytes, nranks, nsites)) return r;
  const CollRules& defaults = default_rules(suite, op);
  for (const CollRule& r : defaults)
    if (matches(r, op, bytes, nranks, nsites)) return r;
  // Unreachable: default tables are total.
  return defaults.back();
}

CollRules Selector::effective_rules(const mpi::CollectiveSuite& suite,
                                    CollOp op) {
  CollRules out;
  for (const CollRule& r : suite.selector)
    if (r.op == op) out.push_back(r);
  for (const CollRule& r : default_rules(suite, op)) out.push_back(r);
  return out;
}

bool Selector::needs_sites(const mpi::CollectiveSuite& suite, CollOp op) {
  for (const CollRule& r : suite.selector)
    if (r.op == op && r.topo != mpi::TopoScope::kAny) return true;
  return false;
}

int site_count(mpi::Job& job) {
  std::vector<int> seen;
  for (int rk = 0; rk < job.size(); ++rk) {
    const int site = job.grid().site_of(job.rank(rk).host());
    if (std::find(seen.begin(), seen.end(), site) == seen.end())
      seen.push_back(site);
  }
  return static_cast<int>(seen.size());
}

}  // namespace gridsim::coll
