#include "collectives/collectives.hpp"

#include <algorithm>
#include <stdexcept>

#include "collectives/algorithms.hpp"
#include "collectives/registry.hpp"
#include "collectives/selector.hpp"

namespace gridsim::coll {

namespace {

using mpi::CollOp;
using mpi::Rank;

/// Sites are only counted when a custom rule actually discriminates on
/// topology — the default tables never do, so the historic hot path stays
/// free of the O(p) site scan.
int sites_for(Rank& r, const mpi::CollectiveSuite& suite, CollOp op) {
  return Selector::needs_sites(suite, op) ? site_count(r.job()) : 1;
}

[[noreturn]] void unknown_algorithm(const char* op, const std::string& name) {
  throw std::invalid_argument(std::string(op) +
                              ": selector rule names unknown algorithm '" +
                              name + "'");
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points: take the collective tag, consult the selector,
// dispatch through the registry entry. Tag acquisition order (before any
// early return) is part of the pinned event sequence — do not reorder.
// ---------------------------------------------------------------------------

Task<void> barrier(Rank& r) {
  const int p = r.size();
  const int tag = r.next_collective_tag();
  if (p <= 1) co_return;
  const auto& suite = r.job().profile().collectives;
  const mpi::CollRule& rule = Selector::pick(
      suite, CollOp::kBarrier, 0, p, sites_for(r, suite, CollOp::kBarrier));
  const BarrierAlgorithm* a =
      AlgorithmRegistry::instance().find_barrier(rule.algo);
  if (a == nullptr) unknown_algorithm("barrier", rule.algo);
  co_await a->run(r, tag);
}

Task<void> bcast(Rank& r, int root, double bytes) {
  const int tag = r.next_collective_tag();
  const auto& suite = r.job().profile().collectives;
  if (r.size() <= 1) co_return;
  const mpi::CollRule& rule =
      Selector::pick(suite, CollOp::kBcast, bytes, r.size(),
                     sites_for(r, suite, CollOp::kBcast));
  const BcastAlgorithm* a = AlgorithmRegistry::instance().find_bcast(rule.algo);
  if (a == nullptr) unknown_algorithm("bcast", rule.algo);
  co_await a->run(r, root, bytes, tag);
}

Task<void> reduce(Rank& r, int root, double bytes) {
  const int tag = r.next_collective_tag();
  co_await algo::group_reduce_binomial(r, algo::full_group(r), root, bytes,
                                       tag);
}

Task<void> allreduce(Rank& r, double bytes) {
  const int tag = r.next_collective_tag();
  const auto& suite = r.job().profile().collectives;
  if (r.size() <= 1) co_return;
  const mpi::CollRule& rule =
      Selector::pick(suite, CollOp::kAllreduce, bytes, r.size(),
                     sites_for(r, suite, CollOp::kAllreduce));
  const AllreduceAlgorithm* a =
      AlgorithmRegistry::instance().find_allreduce(rule.algo);
  if (a == nullptr) unknown_algorithm("allreduce", rule.algo);
  co_await a->run(r, bytes, tag);
}

Task<void> gather(Rank& r, int root, double bytes_per_rank) {
  // Binomial gather: subtree payloads aggregate toward the root.
  const int tag = r.next_collective_tag();
  const int p = r.size();
  if (p <= 1) co_return;
  const int me = r.rank();
  const int rel = (me - root + p) % p;
  int held = 1;  // blocks currently held (own block)
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      const int dst = ((rel - mask) + root) % p;
      co_await r.send(dst, held * bytes_per_rank, tag);
      break;
    }
    if (rel + mask < p) {
      const int src = ((rel + mask) + root) % p;
      (void)co_await r.recv(src, tag);
      held += std::min(mask, p - (rel + mask));
    }
    mask <<= 1;
  }
}

Task<void> scatter(Rank& r, int root, double bytes_per_rank) {
  const int tag = r.next_collective_tag();
  const int p = r.size();
  if (p <= 1) co_return;
  std::vector<int> group = algo::full_group(r);
  co_await algo::group_scatter_for_bcast(r, group, root, bytes_per_rank * p,
                                         tag);
}

Task<void> allgather(Rank& r, double bytes_per_rank) {
  const int tag = r.next_collective_tag();
  co_await algo::group_ring_allgather(r, algo::full_group(r), bytes_per_rank,
                                      r.size() - 1, tag);
}

Task<void> alltoall(Rank& r, double bytes_per_pair) {
  std::vector<double> v(static_cast<size_t>(r.size()), bytes_per_pair);
  v[static_cast<size_t>(r.rank())] = 0;
  co_await alltoallv(r, v);
}

Task<void> alltoallv(Rank& r, const std::vector<double>& send_bytes) {
  const int tag = r.next_collective_tag();
  const int p = r.size();
  if (static_cast<int>(send_bytes.size()) != p)
    throw std::invalid_argument("alltoallv: send_bytes.size() != size()");
  if (p <= 1) co_return;
  const auto& suite = r.job().profile().collectives;
  // The size a rule matches on is the caller's total send volume.
  double total = 0;
  for (double b : send_bytes) total += b;
  const mpi::CollRule& rule =
      Selector::pick(suite, CollOp::kAlltoall, total, p,
                     sites_for(r, suite, CollOp::kAlltoall));
  const AlltoallAlgorithm* a =
      AlgorithmRegistry::instance().find_alltoall(rule.algo);
  if (a == nullptr) unknown_algorithm("alltoall", rule.algo);
  co_await a->run(r, send_bytes, tag);
}

Task<void> gatherv(Rank& r, int root, const std::vector<double>& bytes) {
  const int tag = r.next_collective_tag();
  const int p = r.size();
  if (static_cast<int>(bytes.size()) != p)
    throw std::invalid_argument("gatherv: bytes.size() != size()");
  if (p <= 1) co_return;
  if (r.rank() == root) {
    std::vector<mpi::Request> reqs;
    for (int s = 0; s < p; ++s)
      if (s != root) reqs.push_back(r.irecv(s, tag));
    co_await r.wait_all(std::move(reqs));
  } else {
    co_await r.send(root, bytes[static_cast<size_t>(r.rank())], tag);
  }
}

Task<void> scatterv(Rank& r, int root, const std::vector<double>& bytes) {
  const int tag = r.next_collective_tag();
  const int p = r.size();
  if (static_cast<int>(bytes.size()) != p)
    throw std::invalid_argument("scatterv: bytes.size() != size()");
  if (p <= 1) co_return;
  if (r.rank() == root) {
    std::vector<mpi::Request> reqs;
    for (int d = 0; d < p; ++d)
      if (d != root)
        reqs.push_back(r.isend(d, bytes[static_cast<size_t>(d)], tag));
    co_await r.wait_all(std::move(reqs));
  } else {
    (void)co_await r.recv(root, tag);
  }
}

Task<void> reduce_scatter(Rank& r, double bytes) {
  const int tag = r.next_collective_tag();
  const int p = r.size();
  if (p <= 1) co_return;
  const std::vector<int> group = algo::full_group(r);
  if (!algo::is_pow2(p)) {
    // Fallback: full reduce to 0, then scatter the blocks.
    co_await algo::group_reduce_binomial(r, group, 0, bytes, tag);
    co_await algo::group_scatter_for_bcast(r, group, 0, bytes, tag);
    co_return;
  }
  // Recursive halving (the first phase of Rabenseifner's allreduce).
  const int me = algo::index_in(group, r.rank());
  double size = bytes / 2;
  for (int dist = p / 2; dist >= 1; dist /= 2) {
    const int partner = group[static_cast<size_t>(me ^ dist)];
    mpi::Request req = r.isend(partner, size, tag);
    (void)co_await r.recv(partner, tag);
    (void)co_await r.wait(req);
    co_await algo::reduce_compute(r, size);
    size /= 2;
  }
}

}  // namespace gridsim::coll
