// The message-passing engine: a simulated MPI job.
//
// A `Job` maps `size()` ranks onto grid hosts and owns one TCP connection
// pair per communicating rank pair (created lazily, as the real
// implementations do at first contact). Each `Rank` is the per-process MPI
// endpoint: blocking send/recv, non-blocking isend/irecv + wait, tag
// matching with MPI's non-overtaking semantics, an unexpected-message queue
// and the eager / rendez-vous protocol of Fig 4:
//
//  * eager: the payload is pushed immediately; MPI_Send returns when the
//    bytes fit into the TCP send buffer. If no matching receive is posted
//    on arrival, the receiver pays an extra memory copy.
//  * rendez-vous: a small RTS control message travels first; the payload is
//    only sent after the receiver posts a matching receive and returns a
//    CTS. Costs at least one extra round trip -- the reason the threshold
//    must be raised on high-latency paths (Table 5).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mpi/comm_log.hpp"
#include "mpi/match_arbiter.hpp"
#include "mpi/message.hpp"
#include "mpi/profile.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"
#include "simcore/task.hpp"
#include "simtcp/tcp.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::mpi {

class Job;

/// Handle for a non-blocking operation. Copyable; wait via Rank::wait.
class Request {
 public:
  Request() = default;
  bool valid() const { return done_ != nullptr; }
  bool complete() const { return done_ && done_->fired(); }

 private:
  friend class Rank;
  std::shared_ptr<Trigger> done_;
  std::shared_ptr<RecvInfo> info_;  // set for receives
};

/// Aggregate traffic statistics for a job (drives the Table 2 bench).
struct TrafficStats {
  std::uint64_t p2p_messages = 0;
  double p2p_bytes = 0;
  std::uint64_t collective_messages = 0;
  double collective_bytes = 0;
  std::uint64_t control_messages = 0;
  /// Message-size histogram: payload size (rounded to bytes) -> count,
  /// split by point-to-point vs collective tag space.
  std::map<long long, std::uint64_t> p2p_sizes;
  std::map<long long, std::uint64_t> collective_sizes;
  /// Payload bytes per directed rank pair (all tag spaces).
  std::map<std::pair<int, int>, double> pair_bytes;
};

/// Per-process MPI endpoint.
class Rank {
 public:
  int rank() const { return rank_; }
  int size() const;
  net::HostId host() const { return host_; }
  Job& job() { return *job_; }
  Simulation& sim();

  /// Blocking standard-mode send (eager or rendez-vous by size).
  Task<void> send(int dst, double bytes, int tag = 0);
  /// Blocking receive; kAnySource / kAnyTag wildcards supported.
  Task<RecvInfo> recv(int src = kAnySource, int tag = kAnyTag);

  /// Combined send + receive (MPI_Sendrecv): both progress concurrently.
  Task<RecvInfo> sendrecv(int dst, double send_bytes, int send_tag, int src,
                          int recv_tag);

  Request isend(int dst, double bytes, int tag = 0);
  Request irecv(int src = kAnySource, int tag = kAnyTag);
  /// Completes when the request does; returns RecvInfo (empty for sends).
  Task<RecvInfo> wait(Request req);
  Task<void> wait_all(std::vector<Request> reqs);
  /// Completes when any request does; returns its index (MPI_Waitany).
  Task<int> wait_any(std::vector<Request> reqs);
  /// Non-blocking completion check (MPI_Test).
  static bool test(const Request& req) { return req.complete(); }

  /// Waits until a matching message is available *without* consuming it
  /// (MPI_Probe). Simplification vs the standard: a message handed
  /// directly to an already-posted receive never wakes a prober.
  Task<RecvInfo> probe(int src = kAnySource, int tag = kAnyTag);
  /// Non-blocking probe of the unexpected queue (MPI_Iprobe).
  bool iprobe(int src = kAnySource, int tag = kAnyTag,
              RecvInfo* out = nullptr) const;

  /// Burns `ref_seconds` of CPU time scaled by this host's speed.
  Task<void> compute(double ref_seconds);

  /// Monotonic per-rank collective sequence number (collective algorithms
  /// use it to derive matching tags; every rank must call collectives in
  /// the same order). Logged as a kCollPhase comm event.
  int next_collective_tag();

 private:
  friend class Job;
  Rank(Job& job, int rank, net::HostId host)
      : job_(&job), rank_(rank), host_(host) {}

  // Engine guts -----------------------------------------------------------
  void on_arrival(const MsgMeta& meta);
  /// Handles a match-triggering message that is now in order.
  void deliver_in_order(const MsgMeta& meta);
  /// Stamps the match order on an outgoing match-triggering message.
  std::uint64_t next_order_to(int dst) {
    if (order_out_.size() <= static_cast<size_t>(dst))
      order_out_.resize(static_cast<size_t>(dst) + 1, 0);
    return order_out_[static_cast<size_t>(dst)]++;
  }
  bool matches(int want_src, int want_tag, const MsgMeta& m) const {
    return (want_src == kAnySource || want_src == m.src_rank) &&
           (want_tag == kAnyTag || want_tag == m.tag);
  }
  SimTime side_overhead(SimTime base, int peer) const;
  SimTime copy_time(double bytes) const;

  struct Posted {
    int src;
    int tag;
    Trigger* done;
    MsgMeta* slot;
    int wseq = -1;  ///< wildcard posting index (>= 0 only under deferral)
  };
  using Prober = Posted;  ///< same shape; never consumes the message

  // Deferred-matching engine (active only when the Job's arbiter defers
  // wildcards; see match_arbiter.hpp). Called from the Job's idle hook.
  bool mc_resolve_one(MatchArbiter& arbiter);
  /// After an arbitrated match consumed a parked wildcard, messages that
  /// were held behind it may now belong to later-posted specific receives.
  void mc_rematch();
  void report_blocked(std::vector<std::string>* out) const;
  /// Finalize-time leak events (R3): unmatched messages still queued and
  /// receives/probes that never completed. Called from ~Job.
  void record_finalize(JobCommTrace& log) const;

  Job* job_;
  int rank_;
  net::HostId host_;
  JobCommTrace* comm_ = nullptr;  ///< per-Job comm-event trace (may be null)
  int coll_seq_ = 0;
  int wildcard_seq_ = 0;  ///< wildcard receives posted so far (site ids)
  int send_seq_ = 0;      ///< sends issued so far (send-site ids)
  int recv_seq_ = 0;      ///< receives posted so far (recv-site ids)

  std::deque<MsgMeta> arrived_;  // unexpected eager payloads + unmatched RTS
  std::deque<Posted> posted_;
  std::deque<Prober> probers_;
  std::unordered_map<std::uint64_t, Trigger*> cts_waiters_;
  struct DataWaiter {
    Trigger* done;
    MsgMeta* slot;
  };
  std::unordered_map<std::uint64_t, DataWaiter> data_waiters_;
  std::uint64_t next_seq_ = 1;
  // Non-overtaking enforcement per peer: outgoing match-order stamps,
  // expected incoming order, and a reorder buffer for early arrivals.
  std::vector<std::uint64_t> order_out_;
  std::vector<std::uint64_t> order_in_;
  std::vector<std::map<std::uint64_t, MsgMeta>> reorder_;
};

/// A simulated MPI job: ranks, their placement, the implementation profile
/// and the kernel tunables in effect.
class Job {
 public:
  Job(topo::Grid& grid, std::vector<net::HostId> placement,
      ImplProfile profile, tcp::KernelTunables kernel,
      tcp::TcpModelParams tcp_params = {});
  ~Job();
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// The match arbiter in effect (the thread's ambient arbiter at
  /// construction time, or the shared arrival-order default).
  MatchArbiter& arbiter() { return *arbiter_; }

  int size() const { return static_cast<int>(ranks_.size()); }
  Rank& rank(int r) { return *ranks_.at(static_cast<size_t>(r)); }
  const ImplProfile& profile() const { return profile_; }
  const tcp::KernelTunables& kernel() const { return kernel_; }
  const tcp::TcpModelParams& tcp_params() const { return tcp_params_; }
  topo::Grid& grid() { return *grid_; }
  Simulation& sim() { return grid_->network().sim(); }
  TrafficStats& traffic() { return traffic_; }

  /// Total TCP stall (RTO-like retry) events across this job's channels:
  /// the MPI-visible face of injected WAN faults (simfault). Zero on a
  /// healthy network.
  int degraded_progress_events() const {
    int n = 0;
    for (const auto& [key, ch] : channels_) n += ch->stall_events();
    return n;
  }

  /// Spawns `rank_main(rank)` for every rank.
  void launch(std::function<Task<void>(Rank&)> rank_main);

  /// The TCP channel carrying traffic from rank `from` to rank `to`
  /// (created on first use). `stream` selects one of the parallel WAN
  /// connections when the profile stripes large messages.
  tcp::TcpChannel& channel(int from, int to, int stream = 0);

  /// Fire-and-forget wire transfer with metadata delivery at the peer.
  void transmit(int from, int to, double wire_bytes, MsgMeta meta);
  /// Same, but completes when the bytes are accepted by the send buffer.
  Task<void> transmit_buffered(int from, int to, double wire_bytes,
                               MsgMeta meta);
  /// Striped transfer over `streams` parallel connections: completes when
  /// every chunk is buffered; the peer sees one arrival once every chunk
  /// has been delivered (MPICH-G2's large-message path).
  Task<void> transmit_striped(int from, int to, double wire_bytes,
                              MsgMeta meta, int streams);

  /// Round-trip time between two ranks' hosts.
  SimTime pair_rtt(int r1, int r2) const;

  void record_payload(int src, int dst, double bytes, int tag);

  /// Optional hook invoked for every application payload send (used by the
  /// trace recorder; see harness/replay.hpp).
  using MessageRecorder =
      std::function<void(SimTime, int src, int dst, double bytes, int tag)>;
  void set_message_recorder(MessageRecorder recorder) {
    recorder_ = std::move(recorder);
  }

 private:
  static Task<void> run_rank(std::function<Task<void>(Rank&)> main,
                             Rank* rank);
  /// Idle hook: resolves one parked wildcard receive through the arbiter
  /// (deferred matching only). Returns true if a match was made.
  bool mc_resolve_one();
  void report_blocked(std::vector<std::string>* out) const;

  topo::Grid* grid_;
  ImplProfile profile_;
  tcp::KernelTunables kernel_;
  tcp::TcpModelParams tcp_params_;
  MatchArbiter* arbiter_;
  JobCommTrace* comm_trace_ = nullptr;  ///< ambient CommLog's trace, if any
  std::uint64_t idle_hook_id_ = 0;
  std::uint64_t blocked_reporter_id_ = 0;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::map<std::pair<int, int>, std::unique_ptr<tcp::TcpChannel>> channels_;
  TrafficStats traffic_;
  MessageRecorder recorder_;
};

/// Fills ranks onto the grid site by site, node by node — the paper's
/// "PR1..PR8 then PN1..PN8" block placement.
std::vector<net::HostId> block_placement(const topo::Grid& grid, int nranks);

/// Round-robin placement across sites: rank i on site i mod nsites. The
/// adversarial case for WAN traffic (neighbouring ranks are remote), used
/// by the task-placement study the paper's introduction motivates.
std::vector<net::HostId> cyclic_placement(const topo::Grid& grid, int nranks);

}  // namespace gridsim::mpi
