// Communication event log: the raw material for happens-before analysis.
//
// When a CommLog is ambient (ScopedCommLog, mirroring ScopedArbiter), every
// Job constructed on the thread appends one CommEvent per MPI-visible
// event — send posting, receive posting, receive match, collective phase
// entry, the rendez-vous CTS handshake, and finalize-time leftovers — to a
// per-Job trace. Recording is passive: it never touches the Tracer, the
// event queue or any matching decision, so a logged run is event-for-event
// identical to an unlogged one (campaign and audit digests are unchanged).
//
// The log is consumed offline by src/simlint (vector clocks, the R1-R3
// communication-race rules, docs/race-detection.md) and by the
// model-checker's HB-derived persistent sets (src/simmc). Site ids are
// stable across executions: "rank r, k-th send" names the same source line
// in every interleaving, which is what lets one execution's happens-before
// relation prune another execution's branches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "mpi/message.hpp"

namespace gridsim::mpi {

enum class CommEventKind : std::uint8_t {
  kSendPost,       ///< send initiated (eager, striped or rendez-vous RTS)
  kSendCts,        ///< rendez-vous sender resumed by the receiver's CTS
  kRecvPost,       ///< receive posted (filter in want_src / want_tag)
  kRecvMatch,      ///< receive matched a message (peer/peer_site = its send)
  kRecvCts,        ///< receiver answered an RTS with a CTS
  kRecvData,       ///< receiver resumed by the rendez-vous payload
  kCollPhase,      ///< collective phase entered (next_collective_tag)
  kUnmatchedSend,  ///< finalize: message left in the unexpected queue
  kUnmatchedRecv,  ///< finalize: posted receive or probe never completed
};

/// One MPI-visible event. Field meaning varies slightly by kind; unused
/// fields keep their defaults. `site` is the per-rank operation index
/// (k-th send / k-th receive / k-th collective of `rank`), stable across
/// interleavings.
struct CommEvent {
  CommEventKind kind = CommEventKind::kSendPost;
  int rank = -1;       ///< rank the event occurred on
  int peer = -1;       ///< send: destination; match: matched source
  int tag = 0;         ///< message tag (match: the matched tag)
  int want_src = 0;    ///< receive events: source filter (kAnySource = *)
  int want_tag = 0;    ///< receive events: tag filter (kAnyTag = *)
  int site = -1;       ///< per-rank operation index
  int peer_site = -1;  ///< kRecvMatch/kUnmatchedSend: the send's site
  double bytes = 0;
  std::uint64_t seq = 0;  ///< rendez-vous handshake id (CTS/data pairing)
};

/// The event stream of one Job. Bounded: a runaway workload flips
/// `truncated` instead of exhausting memory, and the analysis reports the
/// truncation rather than pretending completeness. Finalize-time
/// leftovers (kUnmatchedSend/kUnmatchedRecv) survive the cap: one event
/// per still-live pending operation, so recording them adds no asymptotic
/// memory — and they are exactly what R3 leak detection must never lose.
/// A dropped wildcard receive additionally flips `dropped_wildcard`,
/// telling the analysis that the coverage only wildcard receives can
/// trigger (R1/R2, tag conflicts) is incomplete.
struct JobCommTrace {
  int nranks = 0;
  bool truncated = false;         ///< ordinary events were dropped
  bool dropped_wildcard = false;  ///< a dropped event was a wildcard recv
  std::size_t max_events = std::size_t{1} << 21;
  std::vector<CommEvent> events;

  void push(const CommEvent& e) {
    if (events.size() >= max_events &&
        e.kind != CommEventKind::kUnmatchedSend &&
        e.kind != CommEventKind::kUnmatchedRecv) {
      truncated = true;
      if ((e.kind == CommEventKind::kRecvPost ||
           e.kind == CommEventKind::kRecvMatch) &&
          (e.want_src == kAnySource || e.want_tag == kAnyTag))
        dropped_wildcard = true;
      return;
    }
    events.push_back(e);
  }
};

/// Collects one JobCommTrace per Job constructed while the log is ambient.
/// A deque keeps trace pointers stable while later Jobs open theirs.
class CommLog {
 public:
  JobCommTrace* open_job(int nranks) {
    jobs_.emplace_back();
    jobs_.back().nranks = nranks;
    return &jobs_.back();
  }
  const std::deque<JobCommTrace>& jobs() const { return jobs_; }

 private:
  std::deque<JobCommTrace> jobs_;
};

/// The CommLog Jobs constructed on this thread will record into (nullptr =
/// recording off). Thread-local so campaign worker threads stay isolated.
CommLog* ambient_comm_log();

/// Installs `log` as this thread's ambient CommLog for the guard's lifetime
/// (restores the previous one on destruction) — the same ambient pattern as
/// ScopedArbiter, so no Job or scenario signature changes.
class ScopedCommLog {
 public:
  explicit ScopedCommLog(CommLog* log);
  ~ScopedCommLog();
  ScopedCommLog(const ScopedCommLog&) = delete;
  ScopedCommLog& operator=(const ScopedCommLog&) = delete;

 private:
  CommLog* previous_;
};

}  // namespace gridsim::mpi
