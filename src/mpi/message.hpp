// Wire-level message metadata exchanged between rank engines.
#pragma once

#include <cstdint>

#include "simcore/time.hpp"

namespace gridsim::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;
/// Tags at or above this value are reserved for collective operations.
inline constexpr int kCollectiveTagBase = 1 << 24;

enum class MsgKind : std::uint8_t {
  kEager,     ///< payload sent immediately
  kRndvRts,   ///< rendez-vous request-to-send (control)
  kRndvCts,   ///< rendez-vous clear-to-send (control)
  kRndvData,  ///< rendez-vous payload
};

struct MsgMeta {
  MsgKind kind = MsgKind::kEager;
  int src_rank = -1;
  int dst_rank = -1;
  int tag = 0;
  double bytes = 0;       ///< application payload size
  std::uint64_t seq = 0;  ///< rendez-vous handshake id
  /// Per-(src,dst) match order. Striped messages travel over several
  /// connections and can physically overtake; the receiver restores MPI's
  /// non-overtaking order from this sequence number before matching.
  std::uint64_t order = 0;
  /// Sender-side operation index: this is the `send_site`-th send the
  /// source rank issued (any destination). Stable across interleavings, so
  /// the happens-before analysis (src/simlint) can join a receive match
  /// back to the exact send event that produced the message. -1 for
  /// control-only messages that are never matched (CTS).
  int send_site = -1;
};

/// What a completed receive reports back to the application.
struct RecvInfo {
  int source = -1;
  int tag = 0;
  double bytes = 0;
};

}  // namespace gridsim::mpi
