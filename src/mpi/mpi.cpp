#include "mpi/mpi.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "simcore/check.hpp"

namespace gridsim::mpi {

// ---------------------------------------------------------------------------
// Rank
// ---------------------------------------------------------------------------

int Rank::size() const { return job_->size(); }
Simulation& Rank::sim() { return job_->sim(); }

SimTime Rank::side_overhead(SimTime base, int peer) const {
  SimTime t = base + job_->tcp_params().stack_overhead;
  const bool lan = job_->pair_rtt(rank_, peer) < milliseconds(1);
  if (lan) {
    t += job_->profile().lan_extra_overhead;
  } else {
    t += job_->profile().wan_extra_overhead;
  }
  return t;
}

SimTime Rank::copy_time(double bytes) const {
  const double rate = job_->profile().memcpy_bytes_per_sec *
                      job_->grid().cpu_speed(host_);
  return from_seconds(bytes / rate);
}

Task<void> Rank::send(int dst, double bytes, int tag) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("bad destination");
  GRIDSIM_CHECK(tag >= 0, "Rank::send: negative tag %d (rank %d -> %d)", tag,
                rank_, dst);
  GRIDSIM_CHECK(bytes >= 0 && std::isfinite(bytes),
                "Rank::send: bad byte count %g (rank %d -> %d)", bytes, rank_,
                dst);
  const ImplProfile& p = job_->profile();
  // Send-site id: the site counter always advances (logged or not) so site
  // numbering is identical across logged and unlogged runs.
  const int site = send_seq_++;
  if (comm_ != nullptr) {
    CommEvent e;
    e.kind = CommEventKind::kSendPost;
    e.rank = rank_;
    e.peer = dst;
    e.tag = tag;
    e.bytes = bytes;
    e.site = site;
    comm_->push(e);
  }
  job_->record_payload(rank_, dst, bytes, tag);
  co_await sim().delay(side_overhead(p.send_overhead, dst));

  // MPICH-G2-style striping: a large message crossing the WAN goes eagerly
  // over several parallel connections (each with its own TCP window).
  const bool stripe = p.wan_parallel_streams > 1 &&
                      bytes > p.stripe_threshold &&
                      job_->pair_rtt(rank_, dst) >= milliseconds(1);
  if (stripe) {
    MsgMeta m;
    m.kind = MsgKind::kEager;
    m.src_rank = rank_;
    m.dst_rank = dst;
    m.tag = tag;
    m.bytes = bytes;
    m.order = next_order_to(dst);
    m.send_site = site;
    co_await job_->transmit_striped(rank_, dst, bytes + p.header_bytes, m,
                                    p.wan_parallel_streams);
    co_return;
  }

  if (bytes <= p.eager_threshold) {
    MsgMeta m;
    m.kind = MsgKind::kEager;
    m.src_rank = rank_;
    m.dst_rank = dst;
    m.tag = tag;
    m.bytes = bytes;
    m.order = next_order_to(dst);
    m.send_site = site;
    co_await job_->transmit_buffered(rank_, dst, bytes + p.header_bytes, m);
    co_return;
  }

  // Rendez-vous: RTS, wait for CTS, then the payload.
  const std::uint64_t seq = next_seq_++;
  Trigger cts(sim());
  cts_waiters_[seq] = &cts;
  MsgMeta rts;
  rts.kind = MsgKind::kRndvRts;
  rts.src_rank = rank_;
  rts.dst_rank = dst;
  rts.tag = tag;
  rts.bytes = bytes;
  rts.seq = seq;
  rts.order = next_order_to(dst);
  rts.send_site = site;
  job_->transmit(rank_, dst, p.control_bytes, rts);
  co_await cts.wait();
  cts_waiters_.erase(seq);
  if (comm_ != nullptr) {
    // The CTS resumption is a receiver -> sender happens-before edge: the
    // sender's continuation is causally after the receiver's kRecvCts.
    CommEvent e;
    e.kind = CommEventKind::kSendCts;
    e.rank = rank_;
    e.peer = dst;
    e.tag = tag;
    e.bytes = bytes;
    e.site = site;
    e.seq = seq;
    comm_->push(e);
  }

  MsgMeta data = rts;
  data.kind = MsgKind::kRndvData;
  co_await job_->transmit_buffered(rank_, dst, bytes + p.header_bytes, data);
}

Task<RecvInfo> Rank::recv(int src, int tag) {
  GRIDSIM_CHECK(src == kAnySource || (src >= 0 && src < size()),
                "Rank::recv: bad source rank %d (job size %d)", src, size());
  GRIDSIM_CHECK(tag == kAnyTag || tag >= 0, "Rank::recv: bad tag %d", tag);
  const ImplProfile& p = job_->profile();
  const bool defer_mode = job_->arbiter().defer_wildcards();
  const int rsite = recv_seq_++;
  if (comm_ != nullptr) {
    CommEvent e;
    e.kind = CommEventKind::kRecvPost;
    e.rank = rank_;
    e.want_src = src;
    e.want_tag = tag;
    e.site = rsite;
    comm_->push(e);
  }
  MsgMeta meta;
  bool unexpected = false;

  if (defer_mode && src == kAnySource) {
    // Deferred wildcard matching (model checker): park unconditionally.
    // The candidate set is computed at quiescence — when every in-flight
    // message has landed — so the arbiter sees every co-enabled choice,
    // not just whatever happened to have arrived by now. The match always
    // routes through the unexpected queue, hence the buffered-copy cost.
    Trigger done(sim());
    posted_.push_back(Posted{src, tag, &done, &meta, wildcard_seq_++});
    co_await done.wait();
    unexpected = true;
  } else {
    // Try the arrived (unexpected) queue first, in arrival order.
    auto it = std::find_if(
        arrived_.begin(), arrived_.end(), [&](const MsgMeta& m) {
          if (!matches(src, tag, m)) return false;
          if (defer_mode) {
            // Posted-order matching: a message also claimed by an
            // earlier-posted parked wildcard belongs to that wildcard;
            // this later receive must not steal it before the arbiter
            // decides.
            for (const Posted& pr : posted_)
              if (pr.src == kAnySource && matches(pr.src, pr.tag, m))
                return false;
          }
          return true;
        });
    if (it != arrived_.end()) {
      meta = *it;
      arrived_.erase(it);
      unexpected = true;
    } else {
      Trigger done(sim());
      posted_.push_back(Posted{src, tag, &done, &meta});
      co_await done.wait();
    }
  }

  // Every receive path (arrived queue, direct handoff, arbitrated wildcard)
  // converges here with `meta` filled: the single match-recording point.
  if (comm_ != nullptr) {
    CommEvent e;
    e.kind = CommEventKind::kRecvMatch;
    e.rank = rank_;
    e.peer = meta.src_rank;
    e.tag = meta.tag;
    e.want_src = src;
    e.want_tag = tag;
    e.site = rsite;
    e.peer_site = meta.send_site;
    e.bytes = meta.bytes;
    e.seq = meta.seq;
    comm_->push(e);
  }

  if (meta.kind == MsgKind::kEager) {
    SimTime cost = side_overhead(p.recv_overhead, meta.src_rank);
    if (unexpected) cost += copy_time(meta.bytes);  // Fig 4, arrow 2
    co_await sim().delay(cost);
    co_return RecvInfo{meta.src_rank, meta.tag, meta.bytes};
  }

  // Rendez-vous RTS: answer with CTS and wait for the payload.
  assert(meta.kind == MsgKind::kRndvRts);
  Trigger data_done(sim());
  MsgMeta data_meta;
  data_waiters_[meta.seq] = DataWaiter{&data_done, &data_meta};
  MsgMeta cts;
  cts.kind = MsgKind::kRndvCts;
  cts.src_rank = rank_;
  cts.dst_rank = meta.src_rank;
  cts.tag = meta.tag;
  cts.seq = meta.seq;
  job_->transmit(rank_, meta.src_rank, p.control_bytes, cts);
  if (comm_ != nullptr) {
    CommEvent e;
    e.kind = CommEventKind::kRecvCts;
    e.rank = rank_;
    e.peer = meta.src_rank;
    e.tag = meta.tag;
    e.site = rsite;
    e.seq = meta.seq;
    comm_->push(e);
  }
  co_await data_done.wait();
  data_waiters_.erase(meta.seq);
  if (comm_ != nullptr) {
    // Payload landed: the receiver's continuation is causally after the
    // sender's post-CTS data send (kSendCts).
    CommEvent e;
    e.kind = CommEventKind::kRecvData;
    e.rank = rank_;
    e.peer = data_meta.src_rank;
    e.tag = data_meta.tag;
    e.site = rsite;
    e.peer_site = data_meta.send_site;
    e.bytes = data_meta.bytes;
    e.seq = meta.seq;
    comm_->push(e);
  }
  co_await sim().delay(side_overhead(p.recv_overhead, meta.src_rank));
  co_return RecvInfo{data_meta.src_rank, data_meta.tag, data_meta.bytes};
}

int Rank::next_collective_tag() {
  const int tag = kCollectiveTagBase + coll_seq_;
  if (comm_ != nullptr) {
    CommEvent e;
    e.kind = CommEventKind::kCollPhase;
    e.rank = rank_;
    e.tag = tag;
    e.site = coll_seq_;
    comm_->push(e);
  }
  ++coll_seq_;
  return tag;
}

void Rank::on_arrival(const MsgMeta& meta) {
  GRIDSIM_CHECK(meta.src_rank >= 0 && meta.src_rank < size(),
                "rank %d: arrival from invalid rank %d (job size %d)", rank_,
                meta.src_rank, size());
  GRIDSIM_DCHECK(meta.dst_rank == rank_,
                 "rank %d: arrival addressed to rank %d", rank_,
                 meta.dst_rank);
  switch (meta.kind) {
    case MsgKind::kEager:
    case MsgKind::kRndvRts: {
      // Restore per-peer send order before matching: striped messages use
      // several TCP connections and can physically overtake.
      const auto src = static_cast<size_t>(meta.src_rank);
      if (order_in_.size() <= src) {
        order_in_.resize(src + 1, 0);
        reorder_.resize(src + 1);
      }
      if (meta.order != order_in_[src]) {
        reorder_[src].emplace(meta.order, meta);
        break;
      }
      deliver_in_order(meta);
      ++order_in_[src];
      auto& stash = reorder_[src];
      for (auto it = stash.find(order_in_[src]); it != stash.end();
           it = stash.find(order_in_[src])) {
        deliver_in_order(it->second);
        stash.erase(it);
        ++order_in_[src];
      }
      break;
    }
    case MsgKind::kRndvCts: {
      auto it = cts_waiters_.find(meta.seq);
      GRIDSIM_CHECK(it != cts_waiters_.end(),
                    "rank %d: CTS for unknown rendez-vous seq %llu", rank_,
                    static_cast<unsigned long long>(meta.seq));
      it->second->fire();
      break;
    }
    case MsgKind::kRndvData: {
      auto it = data_waiters_.find(meta.seq);
      GRIDSIM_CHECK(it != data_waiters_.end(),
                    "rank %d: payload for unknown rendez-vous seq %llu",
                    rank_, static_cast<unsigned long long>(meta.seq));
      *it->second.slot = meta;
      it->second.done->fire();
      break;
    }
  }
}

void Rank::deliver_in_order(const MsgMeta& meta) {
  auto it = std::find_if(
      posted_.begin(), posted_.end(),
      [&](const Posted& pr) { return matches(pr.src, pr.tag, meta); });
  // Under deferred matching, a message whose first matching receive (in
  // posted order) is a parked wildcard must wait in the unexpected queue:
  // handing it to a later-posted specific receive would violate MPI's
  // posted-order matching, and consuming it here would decide the race
  // before the arbiter does.
  if (it != posted_.end() &&
      !(it->src == kAnySource && job_->arbiter().defer_wildcards())) {
    *it->slot = meta;
    Trigger* done = it->done;
    posted_.erase(it);
    done->fire();
    return;
  }
  arrived_.push_back(meta);
  // The message is now visible in the unexpected queue: wake matching
  // probers (without consuming it).
  for (auto pb = probers_.begin(); pb != probers_.end();) {
    if (matches(pb->src, pb->tag, meta)) {
      *pb->slot = meta;
      Trigger* done = pb->done;
      pb = probers_.erase(pb);
      done->fire();
    } else {
      ++pb;
    }
  }
}

bool Rank::mc_resolve_one(MatchArbiter& arbiter) {
  // Oldest-posted wildcard with at least one candidate resolves first —
  // the same precedence posted-order matching gives it in a real run.
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (it->src != kAnySource) continue;
    MatchDecision decision;
    decision.dst_rank = rank_;
    decision.recv_seq = it->wseq;
    decision.want_tag = it->tag;
    std::vector<std::size_t> positions;
    for (std::size_t i = 0; i < arrived_.size(); ++i) {
      const MsgMeta& m = arrived_[i];
      if (!matches(kAnySource, it->tag, m)) continue;
      bool seen = false;
      for (const MatchCandidate& c : decision.candidates)
        if (c.src_rank == m.src_rank) {
          seen = true;
          break;
        }
      // Non-overtaking: only each source's earliest matching message is
      // co-enabled; later ones can never legally match before it.
      if (seen) continue;
      decision.candidates.push_back(
          MatchCandidate{m.src_rank, m.tag, m.bytes, m.order, m.send_site});
      positions.push_back(i);
    }
    if (decision.candidates.empty()) continue;
    const std::size_t pick = arbiter.choose(decision);
    GRIDSIM_CHECK(pick < decision.candidates.size(),
                  "rank %d: arbiter chose candidate %zu of only %zu", rank_,
                  pick, decision.candidates.size());
    const MsgMeta meta = arrived_[positions[pick]];
    arrived_.erase(arrived_.begin() +
                   static_cast<std::ptrdiff_t>(positions[pick]));
    *it->slot = meta;
    Trigger* done = it->done;
    posted_.erase(it);
    done->fire();
    mc_rematch();
    return true;
  }
  return false;
}

void Rank::mc_rematch() {
  // Messages parked behind the just-resolved wildcard may now belong to
  // later-posted specific receives; deliver them in arrival order until a
  // fixpoint. Parked wildcards keep deferring to the idle hook.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < arrived_.size(); ++i) {
      const MsgMeta meta = arrived_[i];
      auto it = std::find_if(
          posted_.begin(), posted_.end(),
          [&](const Posted& pr) { return matches(pr.src, pr.tag, meta); });
      if (it == posted_.end() || it->src == kAnySource) continue;
      arrived_.erase(arrived_.begin() + static_cast<std::ptrdiff_t>(i));
      *it->slot = meta;
      Trigger* done = it->done;
      posted_.erase(it);
      done->fire();
      progress = true;
      break;
    }
  }
}

void Rank::report_blocked(std::vector<std::string>* out) const {
  const auto src_str = [](int src) {
    return src == kAnySource ? std::string("*") : std::to_string(src);
  };
  const auto tag_str = [](int tag) {
    return tag == kAnyTag ? std::string("*") : std::to_string(tag);
  };
  for (const Posted& pr : posted_)
    out->push_back("rank " + std::to_string(rank_) + ": recv(src=" +
                   src_str(pr.src) + ", tag=" + tag_str(pr.tag) +
                   ") blocked; " + std::to_string(arrived_.size()) +
                   " unexpected message(s) queued");
  for (const Prober& pb : probers_)
    out->push_back("rank " + std::to_string(rank_) + ": probe(src=" +
                   src_str(pb.src) + ", tag=" + tag_str(pb.tag) +
                   ") blocked");
  // The rendez-vous maps are unordered; emit in seq order so a deadlock
  // report (and any witness built from it) is reproducible.
  std::vector<std::uint64_t> seqs;
  for (const auto& [seq, waiter] : cts_waiters_) seqs.push_back(seq);
  std::sort(seqs.begin(), seqs.end());
  for (const std::uint64_t seq : seqs)
    out->push_back("rank " + std::to_string(rank_) +
                   ": rendez-vous send awaiting CTS (seq " +
                   std::to_string(seq) + ")");
  seqs.clear();
  for (const auto& [seq, waiter] : data_waiters_) seqs.push_back(seq);
  std::sort(seqs.begin(), seqs.end());
  for (const std::uint64_t seq : seqs)
    out->push_back("rank " + std::to_string(rank_) +
                   ": rendez-vous receive awaiting payload (seq " +
                   std::to_string(seq) + ")");
}

void Rank::record_finalize(JobCommTrace& log) const {
  for (const MsgMeta& m : arrived_) {
    CommEvent e;
    e.kind = CommEventKind::kUnmatchedSend;
    e.rank = rank_;
    e.peer = m.src_rank;
    e.tag = m.tag;
    e.bytes = m.bytes;
    e.peer_site = m.send_site;
    log.push(e);
  }
  for (const Posted& pr : posted_) {
    CommEvent e;
    e.kind = CommEventKind::kUnmatchedRecv;
    e.rank = rank_;
    e.want_src = pr.src;
    e.want_tag = pr.tag;
    log.push(e);
  }
  for (const Prober& pb : probers_) {
    CommEvent e;
    e.kind = CommEventKind::kUnmatchedRecv;
    e.rank = rank_;
    e.want_src = pb.src;
    e.want_tag = pb.tag;
    log.push(e);
  }
}

Task<RecvInfo> Rank::probe(int src, int tag) {
  RecvInfo info;
  if (iprobe(src, tag, &info)) co_return info;
  Trigger done(sim());
  MsgMeta meta;
  probers_.push_back(Prober{src, tag, &done, &meta});
  co_await done.wait();
  co_return RecvInfo{meta.src_rank, meta.tag, meta.bytes};
}

bool Rank::iprobe(int src, int tag, RecvInfo* out) const {
  const auto it =
      std::find_if(arrived_.begin(), arrived_.end(),
                   [&](const MsgMeta& m) { return matches(src, tag, m); });
  if (it == arrived_.end()) return false;
  if (out) *out = RecvInfo{it->src_rank, it->tag, it->bytes};
  return true;
}

namespace {

Task<void> isend_body(Rank* self, int dst, double bytes, int tag,
                      std::shared_ptr<Trigger> done) {
  co_await self->send(dst, bytes, tag);
  done->fire();
}

Task<void> irecv_body(Rank* self, int src, int tag,
                      std::shared_ptr<Trigger> done,
                      std::shared_ptr<RecvInfo> info) {
  *info = co_await self->recv(src, tag);
  done->fire();
}

}  // namespace

Request Rank::isend(int dst, double bytes, int tag) {
  Request r;
  r.done_ = std::make_shared<Trigger>(sim());
  sim().spawn(isend_body(this, dst, bytes, tag, r.done_));
  return r;
}

Request Rank::irecv(int src, int tag) {
  Request r;
  r.done_ = std::make_shared<Trigger>(sim());
  r.info_ = std::make_shared<RecvInfo>();
  sim().spawn(irecv_body(this, src, tag, r.done_, r.info_));
  return r;
}

Task<RecvInfo> Rank::wait(Request req) {
  if (!req.valid()) throw std::invalid_argument("wait on empty Request");
  co_await req.done_->wait();
  co_return req.info_ ? *req.info_ : RecvInfo{};
}

Task<void> Rank::wait_all(std::vector<Request> reqs) {
  for (auto& r : reqs) (void)co_await wait(r);
}

Task<RecvInfo> Rank::sendrecv(int dst, double send_bytes, int send_tag,
                              int src, int recv_tag) {
  Request s = isend(dst, send_bytes, send_tag);
  const RecvInfo info = co_await recv(src, recv_tag);
  (void)co_await wait(s);
  co_return info;
}

namespace {

Task<void> wait_any_watcher(Rank* self, Request req,
                            std::shared_ptr<OneShot<int>> first, int index) {
  (void)co_await self->wait(req);
  if (!first->ready()) first->set(index);
}

}  // namespace

Task<int> Rank::wait_any(std::vector<Request> reqs) {
  if (reqs.empty()) throw std::invalid_argument("wait_any on empty set");
  // Fast path: something already finished.
  for (std::size_t i = 0; i < reqs.size(); ++i)
    if (reqs[i].complete()) co_return static_cast<int>(i);
  auto first = std::make_shared<OneShot<int>>(sim());
  for (std::size_t i = 0; i < reqs.size(); ++i)
    sim().spawn(
        wait_any_watcher(this, reqs[i], first, static_cast<int>(i)));
  co_return co_await first->wait();
}

Task<void> Rank::compute(double ref_seconds) {
  if (ref_seconds <= 0) co_return;
  co_await sim().delay(
      from_seconds(ref_seconds / job_->grid().cpu_speed(host_)));
}

// ---------------------------------------------------------------------------
// Job
// ---------------------------------------------------------------------------

Job::Job(topo::Grid& grid, std::vector<net::HostId> placement,
         ImplProfile profile, tcp::KernelTunables kernel,
         tcp::TcpModelParams tcp_params)
    : grid_(&grid),
      profile_(std::move(profile)),
      kernel_(kernel),
      tcp_params_(tcp_params),
      arbiter_(ambient_arbiter() != nullptr ? ambient_arbiter()
                                            : &arrival_order_arbiter()) {
  if (placement.empty()) throw std::invalid_argument("empty placement");
  if (CommLog* log = ambient_comm_log(); log != nullptr)
    comm_trace_ = log->open_job(static_cast<int>(placement.size()));
  int r = 0;
  for (net::HostId h : placement) {
    ranks_.push_back(std::unique_ptr<Rank>(new Rank(*this, r++, h)));
    ranks_.back()->comm_ = comm_trace_;
  }
  idle_hook_id_ = sim().add_idle_hook([this] { return mc_resolve_one(); });
  blocked_reporter_id_ = sim().add_blocked_reporter(
      [this](std::vector<std::string>* out) { report_blocked(out); });
}

Job::~Job() {
  // Finalize-time leak sweep (lint rule R3): whatever is still queued or
  // posted when the job is torn down was never consumed. Runs even when the
  // scenario unwinds from a deadlock or timeout, which is exactly when the
  // leftovers are most interesting.
  if (comm_trace_ != nullptr)
    for (const auto& r : ranks_) r->record_finalize(*comm_trace_);
  Simulation& s = sim();
  s.remove_idle_hook(idle_hook_id_);
  s.remove_blocked_reporter(blocked_reporter_id_);
}

bool Job::mc_resolve_one() {
  if (!arbiter_->defer_wildcards()) return false;
  for (auto& r : ranks_)
    if (r->mc_resolve_one(*arbiter_)) return true;
  return false;
}

void Job::report_blocked(std::vector<std::string>* out) const {
  for (const auto& r : ranks_) r->report_blocked(out);
}

Task<void> Job::run_rank(std::function<Task<void>(Rank&)> main, Rank* rank) {
  co_await main(*rank);
}

void Job::launch(std::function<Task<void>(Rank&)> rank_main) {
  for (auto& r : ranks_) sim().spawn(run_rank(rank_main, r.get()));
}

tcp::TcpChannel& Job::channel(int from, int to, int stream) {
  // Streams beyond 0 share the (from, to) direction but get independent
  // TCP state; encode the stream in the key's upper bits.
  const auto key = std::make_pair(from + (stream << 20), to);
  auto it = channels_.find(key);
  if (it != channels_.end()) return *it->second;

  tcp::SocketOptions opts;
  switch (profile_.buffers) {
    case BufferStrategy::kAutoTune:
      break;
    case BufferStrategy::kLockToInitial:
      opts.lock_buffers_to_initial = true;
      break;
    case BufferStrategy::kSetsockopt:
      opts.sndbuf = opts.rcvbuf = profile_.setsockopt_bytes;
      break;
  }
  opts.pacing = profile_.pacing;
  auto ch = std::make_unique<tcp::TcpChannel>(
      grid_->network(), rank(from).host(), rank(to).host(), kernel_, kernel_,
      opts, tcp_params_);
  auto* ptr = ch.get();
  channels_.emplace(key, std::move(ch));
  return *ptr;
}

void Job::transmit(int from, int to, double wire_bytes, MsgMeta meta) {
  if (meta.kind == MsgKind::kRndvCts ||
      (meta.kind == MsgKind::kRndvRts)) {
    ++traffic_.control_messages;
  }
  Rank* dst = ranks_.at(static_cast<size_t>(to)).get();
  channel(from, to).send(wire_bytes, nullptr,
                         [dst, meta] { dst->on_arrival(meta); });
}

Task<void> Job::transmit_buffered(int from, int to, double wire_bytes,
                                  MsgMeta meta) {
  Rank* dst = ranks_.at(static_cast<size_t>(to)).get();
  Trigger buffered(sim());
  channel(from, to).send(wire_bytes, [&buffered] { buffered.fire(); },
                         [dst, meta] { dst->on_arrival(meta); });
  co_await buffered.wait();
}

namespace {

/// Shared completion state for a striped transfer.
struct StripeState {
  explicit StripeState(Simulation& sim) : buffered(sim) {}
  Trigger buffered;
  int buffered_left = 0;
  int delivered_left = 0;
};

}  // namespace

Task<void> Job::transmit_striped(int from, int to, double wire_bytes,
                                 MsgMeta meta, int streams) {
  assert(streams >= 1);
  Rank* dst = ranks_.at(static_cast<size_t>(to)).get();
  auto state = std::make_shared<StripeState>(sim());
  state->buffered_left = streams;
  state->delivered_left = streams;
  const double chunk = wire_bytes / streams;
  for (int s = 0; s < streams; ++s) {
    channel(from, to, s).send(
        chunk,
        [state] {
          if (--state->buffered_left == 0) state->buffered.fire();
        },
        [state, dst, meta] {
          if (--state->delivered_left == 0) dst->on_arrival(meta);
        });
  }
  co_await state->buffered.wait();
}

SimTime Job::pair_rtt(int r1, int r2) const {
  return grid_->rtt(ranks_.at(static_cast<size_t>(r1))->host(),
                    ranks_.at(static_cast<size_t>(r2))->host());
}

void Job::record_payload(int src, int dst, double bytes, int tag) {
  if (recorder_) recorder_(sim().now(), src, dst, bytes, tag);
  if (sim().tracer().enabled(TraceKind::kMessage)) {
    sim().tracer().record(sim().now(), TraceKind::kMessage,
                          tag >= kCollectiveTagBase ? "collective" : "p2p",
                          bytes);
  }
  traffic_.pair_bytes[{src, dst}] += bytes;
  const auto size_key = static_cast<long long>(std::llround(bytes));
  if (tag >= kCollectiveTagBase) {
    ++traffic_.collective_messages;
    traffic_.collective_bytes += bytes;
    ++traffic_.collective_sizes[size_key];
  } else {
    ++traffic_.p2p_messages;
    traffic_.p2p_bytes += bytes;
    ++traffic_.p2p_sizes[size_key];
  }
}

std::vector<net::HostId> cyclic_placement(const topo::Grid& grid,
                                          int nranks) {
  std::vector<net::HostId> out;
  out.reserve(static_cast<size_t>(nranks));
  std::vector<int> next_node(static_cast<size_t>(grid.site_count()), 0);
  int site = 0;
  for (int r = 0; r < nranks; ++r) {
    // Find the next site (starting from `site`) with a free node.
    int tried = 0;
    while (tried < grid.site_count() &&
           next_node[static_cast<size_t>(site)] >= grid.nodes_at(site)) {
      site = (site + 1) % grid.site_count();
      ++tried;
    }
    if (tried == grid.site_count())
      throw std::invalid_argument("not enough nodes for requested ranks");
    out.push_back(grid.node(site, next_node[static_cast<size_t>(site)]++));
    site = (site + 1) % grid.site_count();
  }
  return out;
}

std::vector<net::HostId> block_placement(const topo::Grid& grid, int nranks) {
  std::vector<net::HostId> out;
  out.reserve(static_cast<size_t>(nranks));
  int remaining = nranks;
  for (int s = 0; s < grid.site_count() && remaining > 0; ++s) {
    for (int n = 0; n < grid.nodes_at(s) && remaining > 0; ++n) {
      out.push_back(grid.node(s, n));
      --remaining;
    }
  }
  if (remaining > 0)
    throw std::invalid_argument("not enough nodes for requested ranks");
  return out;
}

}  // namespace gridsim::mpi
