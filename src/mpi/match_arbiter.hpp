// Match-arbiter interface: the MPI engine's only source of nondeterminism.
//
// With deterministic per-(src,dst) ordering (non-overtaking is enforced by
// the reorder buffers in mpi.cpp), the single point where "any legal MPI
// schedule" can diverge from "the schedule this run happened to produce" is
// a wildcard receive: a `recv(kAnySource, tag)` may legally match the
// earliest unconsumed message of *any* source that has one. Arrival order
// picks one winner; WAN jitter could have picked another.
//
// `MatchArbiter` reifies that choice. The default arbiter reproduces
// today's behavior exactly (wildcards match in arrival order, decided at
// arrival/post time), so the engine's pinned trace digests are unchanged.
// The model-checker (src/simmc) installs a deferring arbiter: wildcard
// receives park until the simulation is quiescent, at which point the full
// candidate set (one message per source, each forced to its earliest
// in-order message) is known, and `choose` selects the winner — the
// branch point the DPOR-lite exploration backtracks over.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gridsim::mpi {

/// One matchable message for a pending wildcard receive. At most one
/// candidate per source rank: non-overtaking forces each source's earliest
/// matching message, so later messages of the same source are never
/// co-enabled with it.
struct MatchCandidate {
  int src_rank = -1;
  int tag = 0;
  double bytes = 0;
  std::uint64_t order = 0;  ///< per-(src,dst) match-order stamp
  /// Source-rank send-site index (MsgMeta::send_site): which of the
  /// source's sends produced this candidate. The model-checker's
  /// HB-derived persistent sets use it to ask the happens-before analysis
  /// whether two candidates genuinely race (src/simlint).
  int send_site = -1;
};

/// A wildcard receive whose match is being decided, with every co-enabled
/// candidate in arrival order (index 0 = what arrival order would pick).
struct MatchDecision {
  int dst_rank = -1;   ///< rank owning the receive
  int recv_seq = -1;   ///< per-rank wildcard posting index (stable site id)
  int want_tag = -1;   ///< the receive's tag (kAnyTag = -1)
  std::vector<MatchCandidate> candidates;
};

class MatchArbiter {
 public:
  virtual ~MatchArbiter() = default;

  /// True: wildcard receives never match eagerly; they park until the
  /// engine is quiescent and are resolved one at a time through choose().
  /// False (default): arrival-order matching, decided immediately.
  virtual bool defer_wildcards() const { return false; }

  /// Index into decision.candidates of the message to match. Only called
  /// when defer_wildcards() is true and at least one candidate exists.
  virtual std::size_t choose(const MatchDecision& decision);
};

/// The default arbiter: today's arrival-order behavior (a singleton; every
/// Job without an ambient arbiter shares it).
MatchArbiter& arrival_order_arbiter();

/// The arbiter Jobs constructed on this thread will adopt (nullptr = the
/// default). Thread-local so campaign worker threads stay isolated.
MatchArbiter* ambient_arbiter();

/// Installs `arbiter` as this thread's ambient arbiter for the guard's
/// lifetime (restores the previous one on destruction). The model-checker
/// wraps each scenario execution in one of these; the Job(s) the scenario
/// constructs internally pick it up without any signature change.
class ScopedArbiter {
 public:
  explicit ScopedArbiter(MatchArbiter* arbiter);
  ~ScopedArbiter();
  ScopedArbiter(const ScopedArbiter&) = delete;
  ScopedArbiter& operator=(const ScopedArbiter&) = delete;

 private:
  MatchArbiter* previous_;
};

}  // namespace gridsim::mpi
