// Implementation profiles: the per-MPI-implementation parameters the paper
// compares and tunes (Tables 1, 4, 5 and Section 4.2).
//
// One message-passing engine (see rank.hpp) is parameterised by an
// `ImplProfile`; the four profiles in src/profiles model MPICH2, GridMPI,
// MPICH-Madeleine and OpenMPI.
#pragma once

#include <limits>
#include <string>

#include "mpi/coll_rules.hpp"
#include "simcore/time.hpp"

namespace gridsim::mpi {

/// How the implementation sizes its TCP socket buffers (Section 4.2.1).
enum class BufferStrategy {
  kAutoTune,       ///< no setsockopt: kernel auto-tuning (MPICH2, Madeleine)
  kLockToInitial,  ///< frozen at tcp_*mem[1] (GridMPI)
  kSetsockopt,     ///< explicit SO_SNDBUF/SO_RCVBUF (OpenMPI btl_tcp_*buf)
};

enum class BcastAlgo {
  kBinomial,          ///< log2(p) tree, WAN-oblivious
  kVanDeGeijn,        ///< scatter + ring allgather (MPICH2/OpenMPI large)
  kHierarchical,      ///< one WAN transfer per site, parallel streams
  kPipeline,          ///< segmented chain in rank order (OpenMPI large alt)
};

enum class AllreduceAlgo {
  kRecursiveDoubling,
  kRabenseifner,      ///< reduce-scatter + allgather (GridMPI)
  kHierarchical,      ///< per-site reduce, WAN exchange, per-site bcast
};

enum class AlltoallAlgo {
  kPairwise,
  kRing,
  kBruck,  ///< log2(p) rounds of aggregated blocks; wins for tiny payloads
};

enum class BarrierAlgo {
  kDissemination,  ///< log2(p) rounds, every rank active each round
  kTree,           ///< binomial reduce + binomial broadcast of a token
};

struct CollectiveSuite {
  BcastAlgo bcast = BcastAlgo::kBinomial;
  AllreduceAlgo allreduce = AllreduceAlgo::kRecursiveDoubling;
  AlltoallAlgo alltoall = AlltoallAlgo::kPairwise;
  BarrierAlgo barrier = BarrierAlgo::kDissemination;
  /// WAN-aware algorithms split the communicator by site and use multiple
  /// simultaneous node-to-node connections across the WAN (GridMPI [21]).
  bool topology_aware = false;
  /// Declarative selection rules, scanned first-match-wins before the
  /// default tables the enums above imply (collectives/selector.hpp). Empty
  /// (the default) means the enum-derived behaviour, unchanged.
  CollRules selector;
};

/// Everything that distinguishes one MPI implementation from another in
/// this model.
struct ImplProfile {
  std::string name;

  // --- point-to-point software costs (Table 4) ---------------------------
  /// CPU time per MPI_Send / MPI_Recv call (per side, excludes the 3 us
  /// kernel stack cost modelled separately).
  SimTime send_overhead = microseconds(2);
  SimTime recv_overhead = microseconds(2);
  /// Extra per-side cost on low-latency paths only: MPICH-Madeleine's
  /// thread-based progression engine costs ~3.5 us per side that is hidden
  /// under WAN latency but visible on a cluster (Table 4: +21 us LAN vs
  /// +14 us WAN round trip).
  SimTime lan_extra_overhead = 0;
  /// Extra per-side cost on WAN paths only: the gateway/copy cost of
  /// heterogeneity management when intra-site traffic rides a native
  /// fabric and inter-site messages must be forwarded onto TCP (the
  /// paper's Section 5 question).
  SimTime wan_extra_overhead = 0;

  // --- eager / rendez-vous (Section 4.2.2, Table 5) ----------------------
  /// Messages <= threshold are sent eagerly; larger ones use rendez-vous.
  double eager_threshold = 256 * 1024;
  /// Implementation cap on the threshold knob (OpenMPI: 32 MB).
  double eager_threshold_max = std::numeric_limits<double>::infinity();

  // --- TCP behaviour (Section 4.2.1) --------------------------------------
  BufferStrategy buffers = BufferStrategy::kAutoTune;
  /// For kSetsockopt: the default request (OpenMPI: 128 kB).
  double setsockopt_bytes = 128 * 1024;
  /// GridMPI software pacing.
  bool pacing = false;

  // --- parallel WAN streams (MPICH-G2, Section 2.1.5) --------------------
  /// Messages above `stripe_threshold` crossing a WAN path are striped
  /// over this many TCP connections (GridFTP-style; each stream has its
  /// own window, multiplying window-limited throughput). 1 = disabled.
  int wan_parallel_streams = 1;
  double stripe_threshold = 256 * 1024;

  // --- collectives (Table 1) ----------------------------------------------
  CollectiveSuite collectives;

  // --- constants shared by all implementations ---------------------------
  /// Per-message protocol header bytes (match header + envelope).
  double header_bytes = 40;
  /// Control message size for RTS / CTS in rendez-vous mode.
  double control_bytes = 64;
  /// Memory copy bandwidth for the receiver-side "extra copy" of an
  /// unexpected eager message (Fig 4, arrow 2), on a reference node.
  double memcpy_bytes_per_sec = 2e9;
};

}  // namespace gridsim::mpi
