// Declarative collective-selection rules.
//
// A `CollRule` names a registered collective algorithm (see
// collectives/registry.hpp) and the conditions under which the selector may
// use it: operation, message-size band, communicator-size band and topology
// scope. An `ImplProfile` carries an ordered list of rules in its
// `CollectiveSuite`; the first matching rule wins, and a call no rule
// matches falls back to the suite's per-operation enum policy (the
// WAN-oblivious/-aware defaults of Table 1).
//
// The types are plain data on purpose: the mpi layer stores and transports
// rules, the collectives layer interprets them. This mirrors OpenMPI's
// decision tables (smpi_openmpi_selector.cpp in SimGrid reproduces them)
// where each (operation, size, communicator) cell names an algorithm.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace gridsim::mpi {

/// Operations the selector dispatches on. Rooted fan-in/fan-out collectives
/// (reduce, gather, scatter, ...) have a single registered algorithm each
/// and bypass the selector.
enum class CollOp {
  kBcast,
  kAllreduce,
  kAlltoall,
  kBarrier,
};

std::string to_string(CollOp op);

/// Topology predicate of a rule. "Site" is the grid notion: a cluster
/// behind one WAN uplink (topo::Grid::site_of).
enum class TopoScope {
  kAny,         ///< matches every deployment
  kSingleSite,  ///< only when all ranks share one site (no WAN crossing)
  kMultiSite,   ///< only when the job spans at least two sites
};

std::string to_string(TopoScope scope);

/// One decision rule: "for this operation, in this size/ranks band, on this
/// topology shape, use the algorithm registered under `algo`".
struct CollRule {
  CollOp op = CollOp::kBcast;
  /// Registry name of the algorithm ("binomial", "scatter-ring",
  /// "hierarchical", "pipeline", "recursive-doubling", "rabenseifner",
  /// "pairwise", "ring", "bruck", "dissemination", "tree").
  std::string algo;
  /// Message-size band, inclusive on both ends (bytes). For alltoall the
  /// size tested is the total send volume of the calling rank; barrier
  /// rules match any size.
  double min_bytes = 0;
  double max_bytes = std::numeric_limits<double>::infinity();
  /// Communicator-size band, inclusive on both ends.
  int min_ranks = 0;
  int max_ranks = std::numeric_limits<int>::max();
  TopoScope topo = TopoScope::kAny;
};

/// Ordered rule list; first match wins.
using CollRules = std::vector<CollRule>;

inline std::string to_string(CollOp op) {
  switch (op) {
    case CollOp::kBcast:
      return "bcast";
    case CollOp::kAllreduce:
      return "allreduce";
    case CollOp::kAlltoall:
      return "alltoall";
    case CollOp::kBarrier:
      return "barrier";
  }
  return "?";
}

inline std::string to_string(TopoScope scope) {
  switch (scope) {
    case TopoScope::kAny:
      return "any";
    case TopoScope::kSingleSite:
      return "single-site";
    case TopoScope::kMultiSite:
      return "multi-site";
  }
  return "?";
}

}  // namespace gridsim::mpi
