#include "mpi/match_arbiter.hpp"

namespace gridsim::mpi {

namespace {
thread_local MatchArbiter* g_ambient_arbiter = nullptr;
}  // namespace

std::size_t MatchArbiter::choose(const MatchDecision&) { return 0; }

MatchArbiter& arrival_order_arbiter() {
  static MatchArbiter arbiter;
  return arbiter;
}

MatchArbiter* ambient_arbiter() { return g_ambient_arbiter; }

ScopedArbiter::ScopedArbiter(MatchArbiter* arbiter)
    : previous_(g_ambient_arbiter) {
  g_ambient_arbiter = arbiter;
}

ScopedArbiter::~ScopedArbiter() { g_ambient_arbiter = previous_; }

}  // namespace gridsim::mpi
