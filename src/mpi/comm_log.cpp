#include "mpi/comm_log.hpp"

namespace gridsim::mpi {

namespace {
thread_local CommLog* g_ambient_comm_log = nullptr;
}  // namespace

CommLog* ambient_comm_log() { return g_ambient_comm_log; }

ScopedCommLog::ScopedCommLog(CommLog* log) : previous_(g_ambient_comm_log) {
  g_ambient_comm_log = log;
}

ScopedCommLog::~ScopedCommLog() { g_ambient_comm_log = previous_; }

}  // namespace gridsim::mpi
