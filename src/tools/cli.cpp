#include "tools/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace gridsim::cli {

namespace {

/// Strict full-token numeric parses: trailing garbage ("12x") and empty
/// tokens are errors, not silent truncations.
bool parse_real(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_int(const std::string& s, int* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

OptionParser::OptionParser(std::string command, std::string summary)
    : command_(std::move(command)), summary_(std::move(summary)) {}

OptionParser& OptionParser::declare(const std::string& name, Kind kind,
                                    void* out, const std::string& help,
                                    std::string default_str) {
  if (find(name) != nullptr)
    throw std::logic_error("duplicate option --" + name);
  options_.push_back(Option{name, kind, out, help, std::move(default_str)});
  return *this;
}

OptionParser& OptionParser::flag(const std::string& name, bool* out,
                                 const std::string& help) {
  return declare(name, Kind::kFlag, out, help, "");
}

OptionParser& OptionParser::string_opt(const std::string& name,
                                       std::string* out,
                                       const std::string& help) {
  return declare(name, Kind::kString, out, help, *out);
}

OptionParser& OptionParser::int_opt(const std::string& name, int* out,
                                    const std::string& help) {
  return declare(name, Kind::kInt, out, help, std::to_string(*out));
}

OptionParser& OptionParser::u64_opt(const std::string& name,
                                    std::uint64_t* out,
                                    const std::string& help) {
  return declare(name, Kind::kU64, out, help, std::to_string(*out));
}

OptionParser& OptionParser::real_opt(const std::string& name, double* out,
                                     const std::string& help) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", *out);
  return declare(name, Kind::kReal, out, help, buf);
}

const OptionParser::Option* OptionParser::find(const std::string& name) const {
  for (const auto& opt : options_)
    if (opt.name == name) return &opt;
  return nullptr;
}

bool OptionParser::assign(const Option& opt, const std::string& value) const {
  switch (opt.kind) {
    case Kind::kFlag:
      return false;  // flags never take a value
    case Kind::kString:
      *static_cast<std::string*>(opt.out) = value;
      return true;
    case Kind::kInt:
      return parse_int(value, static_cast<int*>(opt.out));
    case Kind::kU64:
      return parse_u64(value, static_cast<std::uint64_t*>(opt.out));
    case Kind::kReal:
      return parse_real(value, static_cast<double*>(opt.out));
  }
  return false;
}

std::string OptionParser::help() const {
  std::string out = "usage: gridsim " + command_;
  if (!options_.empty()) out += " [options]";
  out += "\n\n" + summary_ + "\n";
  if (options_.empty()) return out;
  out += "\noptions:\n";
  std::size_t width = 0;
  std::vector<std::string> lefts;
  for (const auto& opt : options_) {
    std::string left = "--" + opt.name;
    if (opt.kind != Kind::kFlag) left += " VALUE";
    width = std::max(width, left.size());
    lefts.push_back(std::move(left));
  }
  for (std::size_t i = 0; i < options_.size(); ++i) {
    const auto& opt = options_[i];
    out += "  " + lefts[i] + std::string(width + 2 - lefts[i].size(), ' ') +
           opt.help;
    if (opt.kind != Kind::kFlag && !opt.default_str.empty())
      out += " (default: " + opt.default_str + ")";
    out += "\n";
  }
  out += "  --help" + std::string(width + 2 - 6, ' ') +
         "show this message and exit\n";
  return out;
}

OptionParser::Result OptionParser::parse(int argc, char** argv) const {
  const auto fail = [this](const std::string& message) {
    std::fprintf(stderr, "gridsim %s: %s\n", command_.c_str(),
                 message.c_str());
    std::string valid = "valid options:";
    for (const auto& opt : options_) valid += " --" + opt.name;
    valid += " --help";
    std::fprintf(stderr, "%s\n", valid.c_str());
    return Result::kError;
  };

  for (int i = 0; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0)
      return fail("unexpected argument '" + token + "'");
    std::string key = token.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = key.find('='); eq != std::string::npos) {
      inline_value = key.substr(eq + 1);
      key = key.substr(0, eq);
      has_inline = true;
    }
    if (key == "help") {
      std::fputs(help().c_str(), stdout);
      return Result::kHelp;
    }
    const Option* opt = find(key);
    if (opt == nullptr) return fail("unknown option '--" + key + "'");
    if (opt->kind == Kind::kFlag) {
      if (has_inline)
        return fail("option --" + key + " takes no value");
      *static_cast<bool*>(opt->out) = true;
      continue;
    }
    std::string value;
    if (has_inline) {
      value = inline_value;
    } else {
      // A value option always consumes the next token, even one starting
      // with '-' (negative numbers, literal strings).
      if (i + 1 >= argc) return fail("option --" + key + " needs a value");
      value = argv[++i];
    }
    if (!assign(*opt, value))
      return fail("option --" + key + ": invalid value '" + value + "'");
  }
  return Result::kOk;
}

}  // namespace gridsim::cli
