// gridsim — command-line driver for the simulator.
//
//   gridsim pingpong  [--impl NAME] [--tuning default|tcp|full] [--cluster]
//                     [--min BYTES] [--max BYTES] [--rounds N]
//   gridsim latency   [--impl NAME] [--tuning ...]
//   gridsim nas       [--kernel K] [--class S|A|B] [--ranks N]
//                     [--impl NAME] [--tuning ...] [--cluster]
//   gridsim ray2mesh  [--master SITE] [--rays N] [--impl NAME]
//   gridsim simri     [--object N] [--nodes N]
//   gridsim slowstart [--impl NAME] [--messages N] [--cross-traffic]
//   gridsim audit     [--scenario pingpong|nas|ray2mesh|all] [--seed N]
//                     [--expect HEXDIGEST]
//   gridsim bench     [--quick] [--out DIR] [--reps N]
//
// `audit` is the determinism auditor: it runs each scenario twice with the
// same seed, hashes the structured event trace and exits non-zero if the
// two digests diverge (or if --expect names a different digest).
//
// `bench` runs the engine micro-benchmarks (event-queue churn, coroutine
// ping-pong, packet-level TCP) and a representative figure subset, and
// writes BENCH_micro.json / BENCH_figs.json into --out (default: the
// current directory). --quick shrinks every workload for CI smoke runs.
// The JSON schema is documented in docs/usage.md.
//
// Implementations: TCP, MPICH2, GridMPI, MPICH-Madeleine, OpenMPI,
// MPICH-G2.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "apps/ray2mesh.hpp"
#include "apps/simri.hpp"
#include "bench/common.hpp"
#include "harness/determinism.hpp"
#include "harness/npb_campaign.hpp"
#include "harness/pingpong.hpp"
#include "harness/report.hpp"
#include "profiles/profiles.hpp"

namespace {

using namespace gridsim;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.count(name); }
  std::string get(const std::string& name, const std::string& dflt) const {
    auto it = options.find(name);
    return it == options.end() ? dflt : it->second;
  }
  double num(const std::string& name, double dflt) const {
    auto it = options.find(name);
    return it == options.end() ? dflt : std::atof(it->second.c_str());
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc > 1) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
      std::exit(2);
    }
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      a.options[key] = argv[++i];
    } else {
      a.options[key] = "";
    }
  }
  return a;
}

mpi::ImplProfile impl_by_name(const std::string& name) {
  if (name == "TCP") return profiles::raw_tcp();
  if (name == "MPICH-G2") return profiles::mpich_g2();
  for (const auto& p : profiles::all_implementations())
    if (p.name == name) return p;
  std::fprintf(stderr,
               "unknown implementation '%s' (TCP, MPICH2, GridMPI, "
               "MPICH-Madeleine, OpenMPI, MPICH-G2)\n",
               name.c_str());
  std::exit(2);
}

profiles::TuningLevel tuning_by_name(const std::string& name) {
  if (name == "default") return profiles::TuningLevel::kDefault;
  if (name == "tcp") return profiles::TuningLevel::kTcpTuned;
  if (name == "full") return profiles::TuningLevel::kFullyTuned;
  std::fprintf(stderr, "unknown tuning level '%s' (default, tcp, full)\n",
               name.c_str());
  std::exit(2);
}

int cmd_pingpong(const Args& a) {
  const auto impl = impl_by_name(a.get("impl", "MPICH2"));
  const auto cfg =
      profiles::configure(impl, tuning_by_name(a.get("tuning", "full")));
  const bool cluster = a.flag("cluster");
  const auto spec = cluster ? topo::GridSpec::single_cluster(2)
                            : topo::GridSpec::rennes_nancy(1);
  const harness::PingpongEndpoints ends =
      cluster ? harness::PingpongEndpoints{0, 0, 0, 1}
              : harness::PingpongEndpoints{0, 0, 1, 0};
  harness::PingpongOptions opt;
  opt.sizes = harness::pow2_sizes(a.num("min", 1024),
                                  a.num("max", 64.0 * 1024 * 1024));
  opt.rounds = static_cast<int>(a.num("rounds", 12));
  std::printf("# pingpong %s (%s, %s)\n", impl.name.c_str(),
              cluster ? "cluster" : "grid", a.get("tuning", "full").c_str());
  std::printf("%10s %14s %16s\n", "size", "latency (us)", "bandwidth (Mbps)");
  for (const auto& p : harness::pingpong_sweep(spec, ends, cfg, opt)) {
    std::printf("%10s %14.1f %16.1f\n",
                harness::format_bytes(p.bytes).c_str(),
                to_microseconds(p.min_one_way), p.max_bandwidth_mbps);
  }
  return 0;
}

int cmd_latency(const Args& a) {
  const auto impl = impl_by_name(a.get("impl", "MPICH2"));
  const auto cfg =
      profiles::configure(impl, tuning_by_name(a.get("tuning", "default")));
  const SimTime lan = harness::pingpong_min_latency(
      topo::GridSpec::single_cluster(2), {0, 0, 0, 1}, cfg);
  const SimTime wan = harness::pingpong_min_latency(
      topo::GridSpec::rennes_nancy(1), {0, 0, 1, 0}, cfg);
  std::printf("%s: cluster %.1f us, grid %.1f us (one-way)\n",
              impl.name.c_str(), to_microseconds(lan), to_microseconds(wan));
  return 0;
}

int cmd_nas(const Args& a) {
  const std::string kname = a.get("kernel", "CG");
  npb::Kernel kernel = npb::Kernel::kCG;
  bool found = false;
  for (auto k : npb::all_kernels())
    if (npb::name(k) == kname) {
      kernel = k;
      found = true;
    }
  if (!found) {
    std::fprintf(stderr, "unknown kernel '%s'\n", kname.c_str());
    return 2;
  }
  const std::string cname = a.get("class", "A");
  const npb::Class cls = cname == "S"   ? npb::Class::kS
                         : cname == "B" ? npb::Class::kB
                                        : npb::Class::kA;
  const int ranks = static_cast<int>(a.num("ranks", 16));
  npb::validate_ranks(kernel, ranks);
  const auto impl = impl_by_name(a.get("impl", "MPICH2"));
  const auto cfg =
      profiles::configure(impl, tuning_by_name(a.get("tuning", "tcp")));
  const bool cluster = a.flag("cluster");
  const auto spec = cluster ? topo::GridSpec::single_cluster(ranks)
                            : topo::GridSpec::rennes_nancy((ranks + 1) / 2);
  const auto res = harness::run_npb(spec, ranks, kernel, cls, cfg);
  std::printf("NPB %s class %s, %d ranks, %s, %s: %.2f s\n", kname.c_str(),
              cname.c_str(), ranks, impl.name.c_str(),
              cluster ? "cluster" : "grid", to_seconds(res.makespan));
  std::printf("  p2p: %llu msgs / %.1f MB; collective: %llu msgs / %.1f MB\n",
              static_cast<unsigned long long>(res.traffic.p2p_messages),
              res.traffic.p2p_bytes / 1e6,
              static_cast<unsigned long long>(res.traffic.collective_messages),
              res.traffic.collective_bytes / 1e6);
  return 0;
}

int cmd_ray2mesh(const Args& a) {
  const auto spec = topo::GridSpec::ray2mesh_quad(8);
  int master = 0;
  const std::string want = a.get("master", "rennes");
  for (int s = 0; s < static_cast<int>(spec.sites.size()); ++s)
    if (spec.sites[static_cast<size_t>(s)].name == want) master = s;
  apps::Ray2MeshConfig app;
  app.total_rays = static_cast<int>(a.num("rays", 1e6));
  const auto impl = impl_by_name(a.get("impl", "GridMPI"));
  const auto cfg = profiles::configure(impl, profiles::TuningLevel::kTcpTuned);
  const auto res = apps::run_ray2mesh(spec, master, cfg, app);
  std::printf("ray2mesh, master=%s: compute %.1f s, merge %.1f s, total %.1f s\n",
              want.c_str(), to_seconds(res.compute_time),
              to_seconds(res.merge_time), to_seconds(res.total_time));
  for (int s = 0; s < static_cast<int>(res.rays_per_site.size()); ++s)
    std::printf("  %-9s %d rays\n",
                spec.sites[static_cast<size_t>(s)].name.c_str(),
                res.rays_per_site[static_cast<size_t>(s)]);
  return 0;
}

int cmd_simri(const Args& a) {
  apps::SimriConfig app;
  app.object_n = static_cast<int>(a.num("object", 256));
  const int nodes = static_cast<int>(a.num("nodes", 8));
  const auto cfg = profiles::configure(profiles::mpich2(),
                                       profiles::TuningLevel::kDefault);
  const auto res =
      apps::run_simri(topo::GridSpec::single_cluster(16), nodes, cfg, app);
  std::printf(
      "simri %dx%d on %d nodes: total %.2f s, comm %.2f%%, speedup %.2f, "
      "efficiency %.2f\n",
      app.object_n, app.object_n, nodes, to_seconds(res.total_time),
      res.comm_fraction * 100, res.speedup, res.efficiency);
  return 0;
}

int cmd_slowstart(const Args& a) {
  const auto impl = impl_by_name(a.get("impl", "TCP"));
  const auto cfg = profiles::configure(impl,
                                       profiles::TuningLevel::kFullyTuned);
  auto spec = topo::GridSpec::rennes_nancy(2);
  harness::CrossTraffic cross;
  if (a.flag("cross-traffic")) {
    for (auto& site : spec.sites) site.uplink_bps = 1e9;
    cross.burst_bytes = 24e6;
    cross.period = milliseconds(600);
  }
  const int count = static_cast<int>(a.num("messages", 200));
  const auto series =
      harness::slowstart_series(spec, {0, 0, 1, 0}, cfg, 1e6, count, cross);
  std::printf("# t_s,mbps (%s)\n", impl.name.c_str());
  for (const auto& s : series)
    std::printf("%.3f,%.1f\n", to_seconds(s.at), s.mbps);
  return 0;
}

int cmd_audit(const Args& a) {
  const std::string which = a.get("scenario", "all");
  std::vector<std::string> scenarios;
  if (which == "all") {
    scenarios = harness::audit_scenario_names();
  } else {
    scenarios.push_back(which);
  }
  // Strict parse: an audit against a silently-mangled seed would compare
  // the wrong run and still report success.
  std::uint64_t seed = 1;
  if (const std::string s = a.get("seed", ""); !s.empty()) {
    std::size_t pos = 0;
    try {
      seed = std::stoull(s, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != s.size()) {
      std::fprintf(stderr, "error: --seed expects an unsigned integer, got '%s'\n",
                   s.c_str());
      return 1;
    }
  }
  bool ok = true;
  for (const auto& name : scenarios) {
    const auto res = harness::audit_determinism(name, seed);
    std::printf("audit %-9s seed=%" PRIu64 " events=%" PRIu64
                " digest=%016" PRIx64 " %s\n",
                name.c_str(), seed, res.first.events, res.first.digest,
                res.deterministic ? "DETERMINISTIC" : "DIVERGED");
    if (!res.deterministic) {
      std::fprintf(stderr,
                   "audit %s: second run digest=%016" PRIx64 " events=%" PRIu64
                   " (first run digest=%016" PRIx64 " events=%" PRIu64 ")\n",
                   name.c_str(), res.second.digest, res.second.events,
                   res.first.digest, res.first.events);
      ok = false;
      continue;
    }
    if (a.flag("expect")) {
      const std::uint64_t want =
          std::strtoull(a.get("expect", "0").c_str(), nullptr, 16);
      if (res.first.digest != want) {
        std::fprintf(stderr,
                     "audit %s: digest %016" PRIx64 " != expected %016" PRIx64
                     "\n",
                     name.c_str(), res.first.digest, want);
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}

int cmd_bench(const Args& a) {
  const bool quick = a.flag("quick");
  const std::string out_dir = a.get("out", ".");
  const int reps = std::max(1, static_cast<int>(a.num("reps", 3)));
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);  // best effort; fopen
                                                     // reports real failures

  const auto print_records = [](const char* title,
                                const std::vector<bench::BenchRecord>& recs) {
    std::printf("# %s\n", title);
    for (const auto& r : recs) {
      std::printf(
          "%-20s %12llu events  %8.3f s  %12.0f ev/s  peak depth %llu  "
          "heap payloads %llu  pool misses %llu  %s\n",
          r.name.c_str(), static_cast<unsigned long long>(r.events), r.wall_s,
          r.events_per_sec, static_cast<unsigned long long>(r.peak_queue_depth),
          static_cast<unsigned long long>(r.heap_payloads),
          static_cast<unsigned long long>(r.pool_misses), r.note.c_str());
    }
  };

  const auto micro = bench::run_micro_suite(quick, reps);
  print_records("micro-sim (best of reps, by events/sec)", micro);
  const std::string micro_path = out_dir + "/BENCH_micro.json";
  if (!bench::write_bench_json(micro_path, "gridsim-bench-micro/1", quick,
                               micro)) {
    std::fprintf(stderr, "error: cannot write %s\n", micro_path.c_str());
    return 1;
  }

  const auto figs = bench::run_figure_suite(quick);
  print_records("figure subset (single run)", figs);
  const std::string figs_path = out_dir + "/BENCH_figs.json";
  if (!bench::write_bench_json(figs_path, "gridsim-bench-figs/1", quick,
                               figs)) {
    std::fprintf(stderr, "error: cannot write %s\n", figs_path.c_str());
    return 1;
  }

  std::printf("wrote %s and %s\n", micro_path.c_str(), figs_path.c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: gridsim <pingpong|latency|nas|ray2mesh|simri|"
               "slowstart|audit|bench> [--options]\n"
               "see the header of src/tools/gridsim_cli.cpp\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  try {
    if (a.command == "pingpong") return cmd_pingpong(a);
    if (a.command == "latency") return cmd_latency(a);
    if (a.command == "nas") return cmd_nas(a);
    if (a.command == "ray2mesh") return cmd_ray2mesh(a);
    if (a.command == "simri") return cmd_simri(a);
    if (a.command == "slowstart") return cmd_slowstart(a);
    if (a.command == "audit") return cmd_audit(a);
    if (a.command == "bench") return cmd_bench(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
