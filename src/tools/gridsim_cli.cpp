// gridsim — command-line driver for the simulator.
//
//   gridsim pingpong  [--impl NAME] [--tuning default|tcp|full] [--cluster]
//                     [--min BYTES] [--max BYTES] [--rounds N]
//   gridsim latency   [--impl NAME] [--tuning ...]
//   gridsim nas       [--kernel K] [--class S|A|B] [--ranks N]
//                     [--impl NAME] [--tuning ...] [--cluster]
//   gridsim ray2mesh  [--master SITE] [--rays N] [--impl NAME]
//   gridsim simri     [--object N] [--nodes N]
//   gridsim slowstart [--impl NAME] [--messages N] [--cross-traffic]
//   gridsim audit     [--scenario pingpong|nas|ray2mesh|all] [--seed N]
//                     [--expect HEXDIGEST]
//   gridsim bench     [--quick] [--out DIR] [--reps N]
//   gridsim campaign  [--filter GLOB] [--jobs N] [--out DIR] [--seed N]
//                     [--timeout-s N] [--render] [--list]
//   gridsim mc        [--scenario GLOB] [--max-execs N] [--ranks-cap K]
//                     [--seed N] [--out DIR] [--no-hb] [--list]
//   gridsim lint      [--scenario GLOB] [--seed N] [--max-findings N]
//                     [--json OUT] [--list]
//   gridsim coll      [--list] [--verify] [--impl NAME] [--quick]
//                     [--misrule] [--json OUT]
//   gridsim replay    --witness FILE [--reps N]
//
// Every subcommand parses its flags through the typed OptionParser
// (tools/cli.hpp): declared options with defaults, `--key=value`, strict
// numeric validation, unknown-flag errors and generated `--help`.
//
// `audit` is the determinism auditor: it runs each scenario twice with the
// same seed, hashes the structured event trace and exits non-zero if the
// two digests diverge (or if --expect names a different digest).
//
// `bench` runs the engine micro-benchmarks (event-queue churn, coroutine
// ping-pong, packet-level TCP) and a representative figure subset, and
// writes BENCH_micro.json / BENCH_figs.json into --out (default: the
// current directory). --quick shrinks every workload for CI smoke runs.
//
// `campaign` runs the paper's full experiment catalog (or a --filter glob
// subset) on a worker-thread pool, trace-digesting every scenario, and
// writes one consolidated CAMPAIGN.json report (schema "gridsim-campaign/1",
// documented in docs/usage.md). Per-scenario digests are independent of
// --jobs: `--jobs 8` must equal `--jobs 1` byte for byte, which CI checks.
// --timeout-s arms a per-scenario wall-clock watchdog: a scenario that
// exceeds it is reported with "status": "timeout" and the campaign exits
// non-zero without aborting the remaining scenarios.
//
// `mc` is the DPOR-lite ordering model-checker (simmc/mc.hpp,
// docs/model-checking.md): it re-executes each matched scenario under every
// legal wildcard matching order (up to --max-execs) and asserts no
// interleaving deadlocks or changes the scenario's result digest. A found
// deadlock is minimized and written as a witness file that `replay`
// reproduces deterministically. Writes MC.json (schema "gridsim-mc/1").
// --no-hb disables the happens-before persistent-set reduction (simlint).
//
// `lint` is the happens-before communication-race analyzer (simlint,
// docs/race-detection.md): it runs each matched scenario once with
// comm-event recording, attaches vector clocks, and reports
// wildcard-receive races (R1, both racing send sites named),
// causally-dependent sends (R2) and resource leaks / tag conflicts (R3).
// Exits non-zero unless every scenario is "clean" or "expected-races".
// --json writes a consolidated "gridsim-lint/1" report.
//
// `coll` exposes the collective-algorithm layer (docs/collectives.md):
// --list prints the registered algorithms and each implementation's
// selector decision table; --verify runs the Hunold-style performance
// guideline sweep (composition + size monotonicity) over profile x size x
// topology and exits non-zero on any violation. --misrule swaps in the
// deliberately inverted bcast rule table, the negative fixture CI uses to
// prove the harness can catch a bad selector.
//
// Implementations: TCP, MPICH2, GridMPI, MPICH-Madeleine, OpenMPI,
// MPICH-G2.
#include <algorithm>
#include <cinttypes>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "apps/ray2mesh.hpp"
#include "apps/simri.hpp"
#include "bench/common.hpp"
#include "collectives/guidelines.hpp"
#include "collectives/registry.hpp"
#include "collectives/selector.hpp"
#include "harness/campaign.hpp"
#include "harness/determinism.hpp"
#include "harness/npb_campaign.hpp"
#include "harness/pingpong.hpp"
#include "harness/report.hpp"
#include "profiles/profiles.hpp"
#include "scenarios/catalog.hpp"
#include "simlint/lint.hpp"
#include "simmc/mc.hpp"
#include "tools/cli.hpp"

namespace {

using namespace gridsim;
using cli::OptionParser;

/// Exit status shared by every subcommand after OptionParser::parse.
bool parse_or_exit(const OptionParser& parser, int argc, char** argv,
                   int* status) {
  switch (parser.parse(argc, argv)) {
    case OptionParser::Result::kOk:
      return true;
    case OptionParser::Result::kHelp:
      *status = 0;
      return false;
    case OptionParser::Result::kError:
      break;
  }
  *status = 2;
  return false;
}

mpi::ImplProfile impl_by_name(const std::string& name) {
  if (name == "TCP") return profiles::raw_tcp();
  if (name == "MPICH-G2") return profiles::mpich_g2();
  for (const auto& p : profiles::all_implementations())
    if (p.name == name) return p;
  std::fprintf(stderr,
               "unknown implementation '%s' (TCP, MPICH2, GridMPI, "
               "MPICH-Madeleine, OpenMPI, MPICH-G2)\n",
               name.c_str());
  std::exit(2);
}

profiles::TuningLevel tuning_by_name(const std::string& name) {
  if (name == "default") return profiles::TuningLevel::kDefault;
  if (name == "tcp") return profiles::TuningLevel::kTcpTuned;
  if (name == "full") return profiles::TuningLevel::kFullyTuned;
  std::fprintf(stderr, "unknown tuning level '%s' (default, tcp, full)\n",
               name.c_str());
  std::exit(2);
}

int cmd_pingpong(int argc, char** argv) {
  std::string impl_name = "MPICH2", tuning = "full";
  bool cluster = false;
  double min_bytes = 1024, max_bytes = 64.0 * 1024 * 1024;
  int rounds = 12;
  OptionParser parser("pingpong",
                      "Ping-pong latency/bandwidth sweep (Figs 3/5/6/7).");
  parser.string_opt("impl", &impl_name, "implementation name")
      .string_opt("tuning", &tuning, "tuning level: default|tcp|full")
      .flag("cluster", &cluster, "run inside one cluster instead of the grid")
      .real_opt("min", &min_bytes, "smallest message size (bytes)")
      .real_opt("max", &max_bytes, "largest message size (bytes)")
      .int_opt("rounds", &rounds, "round trips per size");
  int status = 0;
  if (!parse_or_exit(parser, argc, argv, &status)) return status;

  const auto impl = impl_by_name(impl_name);
  const profiles::ExperimentConfig cfg =
      profiles::experiment(impl).tuning(tuning_by_name(tuning));
  const auto spec = cluster ? topo::GridSpec::single_cluster(2)
                            : topo::GridSpec::rennes_nancy(1);
  const harness::PingpongEndpoints ends =
      cluster ? harness::PingpongEndpoints{0, 0, 0, 1}
              : harness::PingpongEndpoints{0, 0, 1, 0};
  harness::PingpongOptions opt;
  opt.sizes = harness::pow2_sizes(min_bytes, max_bytes);
  opt.rounds = rounds;
  std::printf("# pingpong %s (%s, %s)\n", impl.name.c_str(),
              cluster ? "cluster" : "grid", tuning.c_str());
  std::printf("%10s %14s %16s\n", "size", "latency (us)", "bandwidth (Mbps)");
  for (const auto& p : harness::pingpong_sweep(spec, ends, cfg, opt)) {
    std::printf("%10s %14.1f %16.1f\n",
                harness::format_bytes(p.bytes).c_str(),
                to_microseconds(p.min_one_way), p.max_bandwidth_mbps);
  }
  return 0;
}

int cmd_latency(int argc, char** argv) {
  std::string impl_name = "MPICH2", tuning = "default";
  OptionParser parser("latency", "One-way 1-byte latency (Table 4).");
  parser.string_opt("impl", &impl_name, "implementation name")
      .string_opt("tuning", &tuning, "tuning level: default|tcp|full");
  int status = 0;
  if (!parse_or_exit(parser, argc, argv, &status)) return status;

  const auto impl = impl_by_name(impl_name);
  const profiles::ExperimentConfig cfg =
      profiles::experiment(impl).tuning(tuning_by_name(tuning));
  const SimTime lan = harness::pingpong_min_latency(
      topo::GridSpec::single_cluster(2), {0, 0, 0, 1}, cfg);
  const SimTime wan = harness::pingpong_min_latency(
      topo::GridSpec::rennes_nancy(1), {0, 0, 1, 0}, cfg);
  std::printf("%s: cluster %.1f us, grid %.1f us (one-way)\n",
              impl.name.c_str(), to_microseconds(lan), to_microseconds(wan));
  return 0;
}

int cmd_nas(int argc, char** argv) {
  std::string kname = "CG", cname = "A", impl_name = "MPICH2", tuning = "tcp";
  int ranks = 16;
  bool cluster = false;
  OptionParser parser("nas", "One NPB kernel run (Figs 10-13 cells).");
  parser.string_opt("kernel", &kname, "NPB kernel: EP|CG|MG|LU|SP|BT|IS|FT")
      .string_opt("class", &cname, "problem class: S|A|B")
      .int_opt("ranks", &ranks, "number of MPI ranks")
      .string_opt("impl", &impl_name, "implementation name")
      .string_opt("tuning", &tuning, "tuning level: default|tcp|full")
      .flag("cluster", &cluster, "run inside one cluster instead of 8+8");
  int status = 0;
  if (!parse_or_exit(parser, argc, argv, &status)) return status;

  npb::Kernel kernel = npb::Kernel::kCG;
  bool found = false;
  for (auto k : npb::all_kernels())
    if (npb::name(k) == kname) {
      kernel = k;
      found = true;
    }
  if (!found) {
    std::fprintf(stderr, "unknown kernel '%s'\n", kname.c_str());
    return 2;
  }
  const npb::Class cls = cname == "S"   ? npb::Class::kS
                         : cname == "B" ? npb::Class::kB
                                        : npb::Class::kA;
  npb::validate_ranks(kernel, ranks);
  const auto impl = impl_by_name(impl_name);
  const profiles::ExperimentConfig cfg =
      profiles::experiment(impl).tuning(tuning_by_name(tuning));
  const auto spec = cluster ? topo::GridSpec::single_cluster(ranks)
                            : topo::GridSpec::rennes_nancy((ranks + 1) / 2);
  const auto res = harness::run_npb(spec, ranks, kernel, cls, cfg);
  std::printf("NPB %s class %s, %d ranks, %s, %s: %.2f s\n", kname.c_str(),
              cname.c_str(), ranks, impl.name.c_str(),
              cluster ? "cluster" : "grid", to_seconds(res.makespan));
  std::printf("  p2p: %llu msgs / %.1f MB; collective: %llu msgs / %.1f MB\n",
              static_cast<unsigned long long>(res.traffic.p2p_messages),
              res.traffic.p2p_bytes / 1e6,
              static_cast<unsigned long long>(res.traffic.collective_messages),
              res.traffic.collective_bytes / 1e6);
  return 0;
}

int cmd_ray2mesh(int argc, char** argv) {
  std::string master_name = "rennes", impl_name = "GridMPI";
  double rays = 1e6;
  OptionParser parser("ray2mesh",
                      "The paper's seismic ray tracer (Tables 6/7).");
  parser.string_opt("master", &master_name,
                    "master site: rennes|nancy|sophia|toulouse")
      .real_opt("rays", &rays, "total rays to trace")
      .string_opt("impl", &impl_name, "implementation name");
  int status = 0;
  if (!parse_or_exit(parser, argc, argv, &status)) return status;

  const auto spec = topo::GridSpec::ray2mesh_quad(8);
  int master = 0;
  for (int s = 0; s < static_cast<int>(spec.sites.size()); ++s)
    if (spec.sites[static_cast<size_t>(s)].name == master_name) master = s;
  apps::Ray2MeshConfig app;
  app.total_rays = static_cast<int>(rays);
  const profiles::ExperimentConfig cfg =
      profiles::experiment(impl_by_name(impl_name))
          .tuning(profiles::TuningLevel::kTcpTuned);
  const auto res = apps::run_ray2mesh(spec, master, cfg, app);
  std::printf(
      "ray2mesh, master=%s: compute %.1f s, merge %.1f s, total %.1f s\n",
      master_name.c_str(), to_seconds(res.compute_time),
      to_seconds(res.merge_time), to_seconds(res.total_time));
  for (int s = 0; s < static_cast<int>(res.rays_per_site.size()); ++s)
    std::printf("  %-9s %d rays\n",
                spec.sites[static_cast<size_t>(s)].name.c_str(),
                res.rays_per_site[static_cast<size_t>(s)]);
  return 0;
}

int cmd_simri(int argc, char** argv) {
  int object_n = 256, nodes = 8;
  OptionParser parser("simri", "MRI simulator scaling run (Section 2.2.2).");
  parser.int_opt("object", &object_n, "object grid size (NxN)")
      .int_opt("nodes", &nodes, "worker nodes");
  int status = 0;
  if (!parse_or_exit(parser, argc, argv, &status)) return status;

  apps::SimriConfig app;
  app.object_n = object_n;
  const profiles::ExperimentConfig cfg =
      profiles::experiment(profiles::mpich2());
  const auto res =
      apps::run_simri(topo::GridSpec::single_cluster(16), nodes, cfg, app);
  std::printf(
      "simri %dx%d on %d nodes: total %.2f s, comm %.2f%%, speedup %.2f, "
      "efficiency %.2f\n",
      app.object_n, app.object_n, nodes, to_seconds(res.total_time),
      res.comm_fraction * 100, res.speedup, res.efficiency);
  return 0;
}

int cmd_slowstart(int argc, char** argv) {
  std::string impl_name = "TCP";
  int messages = 200;
  bool cross_traffic = false;
  OptionParser parser("slowstart",
                      "Cold-connection per-message bandwidth series (Fig 9).");
  parser.string_opt("impl", &impl_name, "implementation name")
      .int_opt("messages", &messages, "number of back-to-back 1 MB messages")
      .flag("cross-traffic", &cross_traffic,
            "add bursty cross traffic on 1 Gbps uplinks");
  int status = 0;
  if (!parse_or_exit(parser, argc, argv, &status)) return status;

  const auto impl = impl_by_name(impl_name);
  const profiles::ExperimentConfig cfg =
      profiles::experiment(impl).tuning(profiles::TuningLevel::kFullyTuned);
  auto spec = topo::GridSpec::rennes_nancy(2);
  harness::CrossTraffic cross;
  if (cross_traffic) {
    for (auto& site : spec.sites) site.uplink_bps = 1e9;
    cross.burst_bytes = 24e6;
    cross.period = milliseconds(600);
  }
  const auto series =
      harness::slowstart_series(spec, {0, 0, 1, 0}, cfg, 1e6, messages,
                                cross);
  std::printf("# t_s,mbps (%s)\n", impl.name.c_str());
  for (const auto& s : series)
    std::printf("%.3f,%.1f\n", to_seconds(s.at), s.mbps);
  return 0;
}

int cmd_audit(int argc, char** argv) {
  std::string which = "all", expect;
  std::uint64_t seed = 1;
  OptionParser parser(
      "audit",
      "Determinism auditor: run each scenario twice, compare trace digests.");
  parser.string_opt("scenario", &which,
                    "scenario name (pingpong|nas|ray2mesh) or 'all'")
      .u64_opt("seed", &seed, "workload seed folded into both runs")
      .string_opt("expect", &expect, "expected digest (16 hex digits)");
  int status = 0;
  if (!parse_or_exit(parser, argc, argv, &status)) return status;

  std::vector<std::string> scenarios;
  if (which == "all") {
    scenarios = harness::audit_scenario_names();
  } else {
    scenarios.push_back(which);
  }
  bool ok = true;
  for (const auto& name : scenarios) {
    const auto res = harness::audit_determinism(name, seed);
    std::printf("audit %-9s seed=%" PRIu64 " events=%" PRIu64
                " digest=%016" PRIx64 " %s\n",
                name.c_str(), seed, res.first.events, res.first.digest,
                res.deterministic ? "DETERMINISTIC" : "DIVERGED");
    if (!res.deterministic) {
      std::fprintf(stderr,
                   "audit %s: second run digest=%016" PRIx64 " events=%" PRIu64
                   " (first run digest=%016" PRIx64 " events=%" PRIu64 ")\n",
                   name.c_str(), res.second.digest, res.second.events,
                   res.first.digest, res.first.events);
      ok = false;
      continue;
    }
    if (!expect.empty()) {
      const std::uint64_t want =
          std::strtoull(expect.c_str(), nullptr, 16);
      if (res.first.digest != want) {
        std::fprintf(stderr,
                     "audit %s: digest %016" PRIx64 " != expected %016" PRIx64
                     "\n",
                     name.c_str(), res.first.digest, want);
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}

int cmd_bench(int argc, char** argv) {
  bool quick = false;
  std::string out_dir = ".";
  int reps = 3;
  OptionParser parser(
      "bench",
      "Engine micro-benchmarks + figure subset, written as BENCH_*.json.");
  parser.flag("quick", &quick, "shrink workloads for CI smoke runs")
      .string_opt("out", &out_dir, "output directory")
      .int_opt("reps", &reps, "repetitions (best by events/sec)");
  int status = 0;
  if (!parse_or_exit(parser, argc, argv, &status)) return status;
  reps = std::max(1, reps);

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);  // best effort; fopen
                                                     // reports real failures

  const auto print_records = [](const char* title,
                                const std::vector<bench::BenchRecord>& recs) {
    std::printf("# %s\n", title);
    for (const auto& r : recs) {
      std::printf(
          "%-20s %12llu events  %8.3f s  %12.0f ev/s  peak depth %llu  "
          "heap payloads %llu  pool misses %llu  %s\n",
          r.name.c_str(), static_cast<unsigned long long>(r.events), r.wall_s,
          r.events_per_sec, static_cast<unsigned long long>(r.peak_queue_depth),
          static_cast<unsigned long long>(r.heap_payloads),
          static_cast<unsigned long long>(r.pool_misses), r.note.c_str());
    }
  };

  const auto micro = bench::run_micro_suite(quick, reps);
  print_records("micro-sim (best of reps, by events/sec)", micro);
  const std::string micro_path = out_dir + "/BENCH_micro.json";
  if (!bench::write_bench_json(micro_path, "gridsim-bench-micro/1", quick,
                               micro)) {
    std::fprintf(stderr, "error: cannot write %s\n", micro_path.c_str());
    return 1;
  }

  const auto figs = bench::run_figure_suite(quick);
  print_records("figure subset (single run)", figs);
  const std::string figs_path = out_dir + "/BENCH_figs.json";
  if (!bench::write_bench_json(figs_path, "gridsim-bench-figs/1", quick,
                               figs)) {
    std::fprintf(stderr, "error: cannot write %s\n", figs_path.c_str());
    return 1;
  }

  std::printf("wrote %s and %s\n", micro_path.c_str(), figs_path.c_str());
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  std::string filter = "*", out_dir = ".";
  int jobs = 0;
  std::uint64_t seed = 1;
  double timeout_s = 0;
  bool render = false, list = false;
  OptionParser parser(
      "campaign",
      "Run the paper's experiment catalog concurrently; write CAMPAIGN.json.\n"
      "Per-scenario trace digests are independent of --jobs.");
  parser.string_opt("filter", &filter,
                    "glob over scenario names and groups ('table4*', 'fig?')")
      .int_opt("jobs", &jobs, "worker threads; 0 = hardware concurrency")
      .string_opt("out", &out_dir, "output directory for CAMPAIGN.json")
      .u64_opt("seed", &seed, "seed folded into every scenario digest")
      .real_opt("timeout-s", &timeout_s,
                "per-scenario wall-clock watchdog in seconds; 0 = none")
      .flag("render", &render, "print each group's figure/table after the run")
      .flag("list", &list, "list matching scenarios and exit");
  int status = 0;
  if (!parse_or_exit(parser, argc, argv, &status)) return status;

  const auto& registry = scenarios::paper_registry();
  const auto selected = registry.match(filter);
  if (selected.empty()) {
    std::fprintf(stderr, "no scenario matches '%s'\n", filter.c_str());
    return 2;
  }
  if (list) {
    for (std::size_t idx : selected) {
      const auto& spec = registry.scenarios()[idx];
      std::printf("%-40s %s\n", spec.name.c_str(), spec.description.c_str());
    }
    std::printf("%zu scenarios\n", selected.size());
    return 0;
  }

  harness::CampaignOptions options;
  options.filter = filter;
  options.jobs = jobs;
  options.seed = seed;
  options.timeout_s = timeout_s;
  const std::size_t total = selected.size();
  std::size_t done = 0;
  // The campaign runner serializes progress callbacks, so the counter and
  // stdout need no further locking.
  const auto progress = [&done, total](const harness::ScenarioOutcome& o) {
    ++done;
    if (o.ok) {
      std::printf("[%3zu/%zu] %-40s ok    digest=%016" PRIx64 " %.2fs\n",
                  done, total, o.name.c_str(), o.digest, o.wall_s);
    } else {
      std::printf("[%3zu/%zu] %-40s %s  %s\n", done, total, o.name.c_str(),
                  o.status == "timeout" ? "TIMEOUT" : "FAIL", o.error.c_str());
    }
    std::fflush(stdout);
  };
  const auto report = harness::run_campaign(registry, options, progress);

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string json_path = out_dir + "/CAMPAIGN.json";
  if (!harness::write_campaign_json(json_path, report)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }

  if (render) {
    std::vector<std::string> seen;
    for (const auto& outcome : report.outcomes) {
      if (std::find(seen.begin(), seen.end(), outcome.group) != seen.end())
        continue;
      seen.push_back(outcome.group);
      std::fputs(
          harness::render_group(registry, outcome.group, report).c_str(),
          stdout);
    }
  }

  std::printf("campaign: %zu scenarios, %zu failed, jobs=%d, %.2fs; wrote %s\n",
              report.outcomes.size(), report.failures(), report.jobs,
              report.wall_s, json_path.c_str());
  return report.failures() == 0 ? 0 : 1;
}

int cmd_mc(int argc, char** argv) {
  std::string filter = "mc/*", out_dir = ".";
  int max_execs = 64, ranks_cap = 8, minimize_budget = 32;
  std::uint64_t seed = 1;
  bool list = false, no_hb = false;
  OptionParser parser(
      "mc",
      "DPOR-lite ordering model-checker: explore every legal wildcard\n"
      "matching order of each matched scenario; assert no interleaving\n"
      "deadlocks or changes the result digest. Writes MC.json and, for a\n"
      "found deadlock, a minimized witness file for `gridsim replay`.");
  parser.string_opt("scenario", &filter,
                    "glob over scenario names and groups (default 'mc/*')")
      .int_opt("max-execs", &max_execs, "execution budget per scenario")
      .int_opt("ranks-cap", &ranks_cap,
               "skip scenarios with more (or undeclared) ranks")
      .int_opt("minimize-budget", &minimize_budget,
               "extra executions allowed for witness minimization")
      .u64_opt("seed", &seed, "scenario seed used for every execution")
      .string_opt("out", &out_dir,
                  "output directory for MC.json and witness files")
      .flag("no-hb", &no_hb,
            "disable the happens-before persistent-set reduction")
      .flag("list", &list, "list matching scenarios and exit");
  int status = 0;
  if (!parse_or_exit(parser, argc, argv, &status)) return status;

  const auto& registry = scenarios::paper_registry();
  const auto selected = registry.match(filter);
  if (selected.empty()) {
    std::fprintf(stderr, "no scenario matches '%s'\n", filter.c_str());
    return 2;
  }
  if (list) {
    for (std::size_t idx : selected) {
      const auto& spec = registry.scenarios()[idx];
      std::printf("%-40s ranks=%d  %s\n", spec.name.c_str(), spec.ranks,
                  spec.description.c_str());
    }
    std::printf("%zu scenarios\n", selected.size());
    return 0;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  simmc::McOptions mc_options;
  mc_options.max_execs = max_execs;
  mc_options.seed = seed;
  mc_options.minimize_budget = minimize_budget;
  mc_options.hb_sets = !no_hb;

  std::vector<simmc::McReport> reports;
  std::size_t done = 0;
  for (std::size_t idx : selected) {
    const auto& spec = registry.scenarios()[idx];
    ++done;
    if (spec.ranks <= 0 || spec.ranks > ranks_cap) {
      simmc::McReport rep;
      rep.scenario = spec.name;
      rep.status = "skipped";
      rep.detail = spec.ranks <= 0
                       ? "scenario declares no rank count"
                       : std::to_string(spec.ranks) + " ranks > cap " +
                             std::to_string(ranks_cap);
      std::printf("[%3zu/%zu] %-40s skipped (%s)\n", done, selected.size(),
                  spec.name.c_str(), rep.detail.c_str());
      reports.push_back(std::move(rep));
      continue;
    }
    simmc::McReport rep = simmc::explore(spec, mc_options);
    if (rep.status == "deadlock") {
      std::string fname = spec.name;
      std::replace(fname.begin(), fname.end(), '/', '-');
      const std::string wpath = out_dir + "/" + fname + ".witness";
      if (rep.witness.save(wpath)) {
        rep.witness_path = wpath;
      } else {
        std::fprintf(stderr, "error: cannot write witness %s\n",
                     wpath.c_str());
      }
    }
    std::printf("[%3zu/%zu] %-40s %-17s execs=%-4d races=%-2d pruned=%-3d "
                "hb_pruned=%-3d %s\n",
                done, selected.size(), spec.name.c_str(), rep.status.c_str(),
                rep.executions, rep.race_points, rep.pruned, rep.hb_pruned,
                rep.detail.c_str());
    std::fflush(stdout);
    reports.push_back(std::move(rep));
  }

  const std::string json_path = out_dir + "/MC.json";
  if (!simmc::write_mc_json(json_path, filter, mc_options, ranks_cap,
                            reports)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::size_t failures = 0;
  for (const auto& rep : reports)
    if (!rep.ok()) ++failures;
  std::printf("mc: %zu scenarios, %zu failed; wrote %s\n", reports.size(),
              failures, json_path.c_str());
  return failures == 0 ? 0 : 1;
}

int cmd_lint(int argc, char** argv) {
  std::string filter = "*", out_path;
  std::uint64_t seed = 1;
  int max_findings = 16;
  bool list = false;
  OptionParser parser(
      "lint",
      "Happens-before communication-race analyzer: run each matched\n"
      "scenario once with comm-event recording, attach vector clocks, and\n"
      "report wildcard-receive races (R1), causally-dependent sends (R2)\n"
      "and resource leaks / tag conflicts (R3). Exits non-zero unless\n"
      "every scenario is 'clean' or 'expected-races'.");
  parser.string_opt("scenario", &filter,
                    "glob over scenario names and groups (default '*')")
      .u64_opt("seed", &seed, "scenario seed for the analyzed run")
      .int_opt("max-findings", &max_findings,
               "findings reported per scenario (counters stay exact)")
      .string_opt("json", &out_path,
                  "write a consolidated gridsim-lint/1 report to this path")
      .flag("list", &list, "list matching scenarios and exit");
  int status = 0;
  if (!parse_or_exit(parser, argc, argv, &status)) return status;

  const auto& registry = scenarios::paper_registry();
  const auto selected = registry.match(filter);
  if (selected.empty()) {
    std::fprintf(stderr, "no scenario matches '%s'\n", filter.c_str());
    return 2;
  }
  if (list) {
    for (std::size_t idx : selected) {
      const auto& spec = registry.scenarios()[idx];
      std::printf("%-40s %s%s\n", spec.name.c_str(),
                  spec.races_expected ? "[races-expected] " : "",
                  spec.description.c_str());
    }
    std::printf("%zu scenarios\n", selected.size());
    return 0;
  }

  std::vector<simlint::ScenarioLintEntry> entries;
  std::size_t done = 0, failures = 0;
  for (std::size_t idx : selected) {
    const auto& spec = registry.scenarios()[idx];
    ++done;
    simlint::ScenarioLintEntry entry;
    entry.name = spec.name;
    entry.group = spec.group;
    mpi::CommLog comm_log;
    try {
      const mpi::ScopedCommLog scope(&comm_log);
      harness::ScenarioContext ctx;
      ctx.seed = seed;
      (void)spec.run(ctx);
      entry.lint = simlint::analyze(
          comm_log, static_cast<std::size_t>(std::max(0, max_findings)));
      entry.status = simlint::lint_status(entry.lint, spec.races_expected);
    } catch (const std::exception& e) {
      entry.status = "error";
      entry.error = e.what();
    }
    if (!simlint::lint_status_ok(entry.status)) ++failures;
    std::printf("[%3zu/%zu] %-40s %-15s races=%-2d causal=%-2d leaks=%-2d "
                "hb_edges=%llu\n",
                done, selected.size(), spec.name.c_str(),
                entry.status.c_str(), entry.lint.races,
                entry.lint.causal_sends, entry.lint.leaks,
                static_cast<unsigned long long>(entry.lint.hb_edges));
    for (const auto& finding : entry.lint.findings)
      std::printf("    [%s] %s: %s\n", finding.severity.c_str(),
                  finding.rule.c_str(), finding.message.c_str());
    if (!entry.error.empty())
      std::printf("    error: %s\n", entry.error.c_str());
    std::fflush(stdout);
    entries.push_back(std::move(entry));
  }

  if (!out_path.empty()) {
    const auto parent = std::filesystem::path(out_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);  // best effort; fopen
    }
    if (!simlint::write_lint_json(out_path, filter, seed, entries)) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("lint: wrote %s\n", out_path.c_str());
  }
  std::printf("lint: %zu scenarios, %zu with unexpected races/leaks\n",
              entries.size(), failures);
  return failures == 0 ? 0 : 1;
}

/// One row of the `coll --list` decision table.
void print_rules(const mpi::CollectiveSuite& suite, mpi::CollOp op) {
  for (const auto& r : coll::Selector::effective_rules(suite, op)) {
    std::string bytes_band = "any size";
    const bool has_min = r.min_bytes > 0;
    const bool has_max = r.max_bytes < 1e18;
    if (has_min || has_max) {
      bytes_band =
          (has_min ? std::to_string(static_cast<long long>(r.min_bytes))
                   : std::string("0")) +
          ".." +
          (has_max ? std::to_string(static_cast<long long>(r.max_bytes))
                   : std::string("inf")) +
          " B";
    }
    std::string extras;
    if (r.min_ranks > 0 || r.max_ranks < INT_MAX)
      extras += "  ranks " + std::to_string(r.min_ranks) + ".." +
                (r.max_ranks < INT_MAX ? std::to_string(r.max_ranks) : "inf");
    if (r.topo != mpi::TopoScope::kAny)
      extras += std::string("  [") + mpi::to_string(r.topo) + "]";
    std::printf("    %-9s -> %-18s %s%s\n", mpi::to_string(r.op).c_str(),
                r.algo.c_str(), bytes_band.c_str(), extras.c_str());
  }
}

int cmd_coll(int argc, char** argv) {
  std::string impl_name = "all", out_path;
  bool list = false, verify = false, quick = false, misrule = false;
  OptionParser parser(
      "coll",
      "Collective-algorithm registry and selector guideline verifier.\n"
      "--list prints the registered algorithms and each implementation's\n"
      "decision table; --verify sweeps profile x size x topology and flags\n"
      "self-contradictory selections (composition and size-monotonicity\n"
      "guidelines, docs/collectives.md). Exits non-zero on any violation.");
  parser.flag("list", &list, "print the registry and decision tables")
      .flag("verify", &verify, "run the guideline sweep")
      .string_opt("impl", &impl_name, "implementation name, or 'all'")
      .flag("quick", &quick, "two probe sizes instead of three (CI smoke)")
      .flag("misrule", &misrule,
            "swap in the deliberately inverted bcast rule table (the\n"
            "negative fixture: --verify must then FAIL on the grid)")
      .string_opt("json", &out_path,
                  "write a consolidated gridsim-coll/1 report to this path");
  int status = 0;
  if (!parse_or_exit(parser, argc, argv, &status)) return status;
  if (!verify) list = true;  // default action

  std::vector<mpi::ImplProfile> impls;
  if (impl_name == "all") {
    impls = profiles::all_implementations();
  } else {
    impls.push_back(impl_by_name(impl_name));
  }
  if (misrule)
    for (auto& impl : impls)
      impl.collectives.selector = coll::misruled_selector();

  if (list) {
    const auto& reg = coll::AlgorithmRegistry::instance();
    std::printf("# registered algorithms\n");
    const auto print_entry = [](const char* op, const auto& a) {
      std::string name = a.name;
      for (const auto& alias : a.aliases) name += " (alias: " + alias + ")";
      std::printf("  %-9s %-32s %s%s\n", op, name.c_str(),
                  a.wan_aware ? "[wan-aware] " : "", a.description.c_str());
    };
    for (const auto& a : reg.bcast()) print_entry("bcast", a);
    for (const auto& a : reg.allreduce()) print_entry("allreduce", a);
    for (const auto& a : reg.alltoall()) print_entry("alltoall", a);
    for (const auto& a : reg.barrier()) print_entry("barrier", a);
    for (const auto& impl : impls) {
      std::printf("\n# decision table: %s%s (first match wins)\n",
                  impl.name.c_str(), misrule ? " [misruled]" : "");
      for (auto op : {mpi::CollOp::kBcast, mpi::CollOp::kAllreduce,
                      mpi::CollOp::kAlltoall, mpi::CollOp::kBarrier})
        print_rules(impl.collectives, op);
    }
  }

  if (!verify) return 0;

  coll::GuidelineReport all;
  // Deployments: one cluster, the 8+8 grid with block placement, and the
  // same grid with ranks interleaved across sites — the adversarial order
  // where rank-ordered algorithms cross the WAN on ~every step.
  const std::vector<std::tuple<std::string, topo::GridSpec, bool>>
      deployments = {
          {"cluster", topo::GridSpec::single_cluster(16), false},
          {"grid", topo::GridSpec::rennes_nancy(8), false},
          {"grid-cyclic", topo::GridSpec::rennes_nancy(8), true}};
  for (const auto& impl : impls) {
    const profiles::ExperimentConfig cfg =
        profiles::experiment(impl).tuning(profiles::TuningLevel::kTcpTuned);
    for (const auto& [label, spec, cyclic] : deployments) {
      coll::GuidelineOptions opt;
      if (quick) opt.sizes = {1e3, 64e3};
      opt.cyclic = cyclic;
      const coll::GuidelineReport rep = coll::verify_guidelines(
          spec, label, cfg.profile, cfg.kernel, opt);
      std::printf("coll verify %-16s %-8s %2zu cells, %d violation(s)\n",
                  impl.name.c_str(), label.c_str(), rep.cells.size(),
                  rep.violations());
      for (const auto& c : rep.cells)
        if (c.violated)
          std::printf("    VIOLATION %-32s %8.0f B  ratio %.2f > %.2f  (%s)\n",
                      c.guideline.c_str(), c.bytes, c.ratio, c.tolerance,
                      c.detail.c_str());
      all.cells.insert(all.cells.end(), rep.cells.begin(), rep.cells.end());
    }
  }

  if (!out_path.empty()) {
    if (!coll::write_coll_json(out_path, all)) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("coll: wrote %s\n", out_path.c_str());
  }
  std::printf("coll: %zu cells, %d violation(s)\n", all.cells.size(),
              all.violations());
  return all.violations() == 0 ? 0 : 1;
}

int cmd_replay(int argc, char** argv) {
  std::string witness_path;
  int reps = 2;
  OptionParser parser(
      "replay",
      "Re-execute a model-checker deadlock witness. Exits 0 only if every\n"
      "replay deadlocks with an identical blocked report.");
  parser.string_opt("witness", &witness_path,
                    "witness file written by `gridsim mc`")
      .int_opt("reps", &reps, "number of replays to compare");
  int status = 0;
  if (!parse_or_exit(parser, argc, argv, &status)) return status;
  if (witness_path.empty()) {
    std::fprintf(stderr, "replay: --witness FILE is required\n");
    return 2;
  }
  reps = std::max(1, reps);

  simmc::Witness witness;
  std::string error;
  if (!simmc::Witness::load(witness_path, &witness, &error)) {
    std::fprintf(stderr, "replay: %s\n", error.c_str());
    return 2;
  }
  const auto* spec = scenarios::paper_registry().find(witness.scenario);
  if (spec == nullptr) {
    std::fprintf(stderr, "replay: unknown scenario '%s'\n",
                 witness.scenario.c_str());
    return 2;
  }

  std::printf("replay: %s, seed=%" PRIu64 ", %zu forced choice(s)\n",
              witness.scenario.c_str(), witness.seed,
              witness.choices.size());
  std::vector<std::string> first_blocked;
  for (int rep = 0; rep < reps; ++rep) {
    const simmc::ExecutionRecord rec =
        simmc::run_scripted(*spec, witness.choices, witness.seed);
    if (rec.failed) {
      std::fprintf(stderr, "replay %d: execution failed: %s\n", rep + 1,
                   rec.error.c_str());
      return 1;
    }
    if (!rec.deadlocked) {
      std::fprintf(stderr,
                   "replay %d: completed WITHOUT deadlocking — the witness "
                   "does not reproduce\n",
                   rep + 1);
      return 1;
    }
    if (rep == 0) {
      first_blocked = rec.blocked;
      for (const auto& line : rec.blocked)
        std::printf("  %s\n", line.c_str());
    } else if (rec.blocked != first_blocked) {
      std::fprintf(stderr,
                   "replay %d: deadlocked with a DIFFERENT blocked report — "
                   "replay is not deterministic\n",
                   rep + 1);
      return 1;
    }
  }
  std::printf("replay: deadlock reproduced identically %d/%d times\n", reps,
              reps);
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: gridsim <command> [--options]\n"
      "commands:\n"
      "  pingpong   ping-pong latency/bandwidth sweep (Figs 3/5/6/7)\n"
      "  latency    one-way 1-byte latency (Table 4)\n"
      "  nas        one NPB kernel run (Figs 10-13 cells)\n"
      "  ray2mesh   the paper's seismic ray tracer (Tables 6/7)\n"
      "  simri      MRI simulator scaling run\n"
      "  slowstart  cold-connection bandwidth series (Fig 9)\n"
      "  audit      determinism auditor (trace digests)\n"
      "  bench      engine micro-benchmarks -> BENCH_*.json\n"
      "  campaign   parallel experiment campaign -> CAMPAIGN.json\n"
      "  mc         ordering model-checker over wildcard matches -> MC.json\n"
      "  lint       happens-before communication-race analyzer\n"
      "  coll       collective-algorithm registry + guideline verifier\n"
      "  replay     re-execute a model-checker deadlock witness\n"
      "run 'gridsim <command> --help' for the command's options\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const int opt_argc = argc - 2;
  char** opt_argv = argv + 2;
  try {
    if (command == "pingpong") return cmd_pingpong(opt_argc, opt_argv);
    if (command == "latency") return cmd_latency(opt_argc, opt_argv);
    if (command == "nas") return cmd_nas(opt_argc, opt_argv);
    if (command == "ray2mesh") return cmd_ray2mesh(opt_argc, opt_argv);
    if (command == "simri") return cmd_simri(opt_argc, opt_argv);
    if (command == "slowstart") return cmd_slowstart(opt_argc, opt_argv);
    if (command == "audit") return cmd_audit(opt_argc, opt_argv);
    if (command == "bench") return cmd_bench(opt_argc, opt_argv);
    if (command == "campaign") return cmd_campaign(opt_argc, opt_argv);
    if (command == "mc") return cmd_mc(opt_argc, opt_argv);
    if (command == "lint") return cmd_lint(opt_argc, opt_argv);
    if (command == "coll") return cmd_coll(opt_argc, opt_argv);
    if (command == "replay") return cmd_replay(opt_argc, opt_argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
