// Typed command-line option parser for the gridsim driver.
//
// Each subcommand declares its flags up front — name, type, default,
// one-line help — and parsing then rejects unknown flags (listing the valid
// ones), validates numeric values strictly (the whole token must parse),
// supports both `--key value` and `--key=value`, and generates `--help`
// output from the declarations. A value-taking option always consumes the
// next token, even one starting with `-`, so negative numbers and literal
// `--`-prefixed strings work (the old stringly parser silently swallowed
// them into empty values).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gridsim::cli {

class OptionParser {
 public:
  /// `command` names the subcommand in usage/help text; `summary` is the
  /// one-line description printed by --help.
  OptionParser(std::string command, std::string summary);

  /// Boolean flag: present = true, takes no value.
  OptionParser& flag(const std::string& name, bool* out,
                     const std::string& help);
  OptionParser& string_opt(const std::string& name, std::string* out,
                           const std::string& help);
  OptionParser& int_opt(const std::string& name, int* out,
                        const std::string& help);
  OptionParser& u64_opt(const std::string& name, std::uint64_t* out,
                        const std::string& help);
  OptionParser& real_opt(const std::string& name, double* out,
                         const std::string& help);

  enum class Result {
    kOk,    ///< options parsed, command should run
    kHelp,  ///< --help was requested and printed; exit 0
    kError, ///< bad invocation, message printed to stderr; exit 2
  };

  /// Parses the option tokens (argv past the subcommand name). Bound
  /// variables keep their initial values for options that are absent —
  /// the initial value is the default and appears in --help.
  Result parse(int argc, char** argv) const;

  /// The generated --help text.
  std::string help() const;

 private:
  enum class Kind { kFlag, kString, kInt, kU64, kReal };
  struct Option {
    std::string name;
    Kind kind;
    void* out;
    std::string help;
    std::string default_str;
  };

  OptionParser& declare(const std::string& name, Kind kind, void* out,
                        const std::string& help, std::string default_str);
  const Option* find(const std::string& name) const;
  bool assign(const Option& opt, const std::string& value) const;

  std::string command_;
  std::string summary_;
  std::vector<Option> options_;
};

}  // namespace gridsim::cli
