#include "topology/grid5000.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

namespace gridsim::topo {

namespace {

// Site-to-site RTTs for the four ray2mesh sites (ms). The paper's Fig 8
// labels the six edges with {11.6, 14.5, 17.2, 17.8, 19.2, 19.9}; the text
// additionally gives Rennes--Sophia ~19 ms. The assignment below honours
// those constraints (order: Rennes, Nancy, Sophia, Toulouse).
constexpr double kQuadRtt[4][4] = {
    {0.0, 11.6, 19.2, 14.5},
    {11.6, 0.0, 17.2, 17.8},
    {19.2, 17.2, 0.0, 19.9},
    {14.5, 17.8, 19.9, 0.0},
};

}  // namespace

GridSpec GridSpec::rennes_nancy(int nodes_per_site) {
  GridSpec g;
  // Table 3: Rennes Opteron 248 @ 2.2 GHz, Nancy Opteron 246 @ 2.0 GHz.
  g.sites.push_back(SiteSpec{"rennes", nodes_per_site, 1.0, 1e9, 10e9});
  g.sites.push_back(SiteSpec{"nancy", nodes_per_site, 0.97, 1e9, 10e9});
  g.rtt_ms = {{0.0, 11.6}, {11.6, 0.0}};
  return g;
}

GridSpec GridSpec::single_cluster(int nodes, std::string name) {
  GridSpec g;
  g.sites.push_back(SiteSpec{std::move(name), nodes, 1.0, 1e9, 10e9});
  g.rtt_ms = {{0.0}};
  return g;
}

GridSpec GridSpec::ray2mesh_quad(int nodes_per_site) {
  GridSpec g;
  // Node capacity order from the paper: Nancy < Rennes, Toulouse < Sophia.
  // Speeds calibrated against Table 6's per-cluster ray throughput.
  g.sites.push_back(SiteSpec{"rennes", nodes_per_site, 1.00, 1e9, 10e9});
  g.sites.push_back(SiteSpec{"nancy", nodes_per_site, 0.97, 1e9, 10e9});
  g.sites.push_back(SiteSpec{"sophia", nodes_per_site, 1.21, 1e9, 10e9});
  g.sites.push_back(SiteSpec{"toulouse", nodes_per_site, 0.99, 1e9, 1e9});
  g.rtt_ms.assign(4, std::vector<double>(4, 0.0));
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) g.rtt_ms[static_cast<size_t>(i)][static_cast<size_t>(j)] = kQuadRtt[i][j];
  return g;
}

GridSpec GridSpec::grid5000_full(int nodes_per_site) {
  GridSpec g;
  // Order: bordeaux, grenoble, lille, lyon, nancy, orsay, rennes, sophia,
  // toulouse. Fig 1: lyon, nancy, orsay, rennes (and the core ring) on
  // 10 GbE; bordeaux, grenoble, lille, sophia, toulouse reached at 1 GbE.
  struct Row {
    const char* name;
    double speed;
    double uplink;
  };
  const Row rows[9] = {
      {"bordeaux", 1.0, 1e9},  {"grenoble", 1.0, 1e9}, {"lille", 1.0, 1e9},
      {"lyon", 1.05, 10e9},    {"nancy", 0.97, 10e9},  {"orsay", 1.0, 10e9},
      {"rennes", 1.0, 10e9},   {"sophia", 1.21, 1e9},  {"toulouse", 0.99, 1e9},
  };
  for (const Row& r : rows)
    g.sites.push_back(SiteSpec{r.name, nodes_per_site, r.speed, 1e9,
                               r.uplink});
  // Pairwise RTTs in ms. Published values where the paper gives them;
  // distance-based estimates elsewhere (RENATER star around Paris).
  const double rtt[9][9] = {
      //        bor   gre   lil   lyo   nan   ors   ren   sop   tou
      /*bor*/ {0.0, 14.0, 14.5, 11.0, 14.0, 9.5, 10.5, 15.5, 5.5},
      /*gre*/ {14.0, 0.0, 16.0, 3.5, 13.0, 11.5, 15.0, 7.0, 12.5},
      /*lil*/ {14.5, 16.0, 0.0, 12.0, 8.5, 5.0, 9.0, 19.5, 18.2},
      /*lyo*/ {11.0, 3.5, 12.0, 0.0, 10.0, 8.5, 12.0, 9.0, 10.0},
      /*nan*/ {14.0, 13.0, 8.5, 10.0, 0.0, 7.0, 11.6, 17.2, 17.8},
      /*ors*/ {9.5, 11.5, 5.0, 8.5, 7.0, 0.0, 7.5, 15.0, 13.0},
      /*ren*/ {10.5, 15.0, 9.0, 12.0, 11.6, 7.5, 0.0, 19.2, 14.5},
      /*sop*/ {15.5, 7.0, 19.5, 9.0, 17.2, 15.0, 19.2, 0.0, 19.9},
      /*tou*/ {5.5, 12.5, 18.2, 10.0, 17.8, 13.0, 14.5, 19.9, 0.0},
  };
  g.rtt_ms.assign(9, std::vector<double>(9, 0.0));
  for (int i = 0; i < 9; ++i)
    for (int j = 0; j < 9; ++j)
      g.rtt_ms[static_cast<size_t>(i)][static_cast<size_t>(j)] = rtt[i][j];
  return g;
}

Grid::Grid(Simulation& sim, const GridSpec& spec)
    : spec_(spec), network_(sim) {
  const auto nsites = spec_.sites.size();
  if (spec_.rtt_ms.size() != nsites)
    throw std::invalid_argument("rtt_ms matrix size != number of sites");

  struct SiteLinks {
    net::LinkId up = -1, down = -1;
    std::vector<net::LinkId> node_up, node_down;
    std::vector<net::LinkId> native_up, native_down;  ///< optional fabric
  };
  std::vector<SiteLinks> sl(nsites);

  // Hosts, NIC links and site uplinks.
  for (size_t s = 0; s < nsites; ++s) {
    const SiteSpec& site = spec_.sites[s];
    if (site.nodes <= 0) throw std::invalid_argument("site with no nodes");
    sl[s].up = network_.add_link(site.name + ".up",
                                 tcp::ethernet_goodput(site.uplink_bps),
                                 spec_.uplink_latency, spec_.queue_bytes);
    sl[s].down = network_.add_link(site.name + ".down",
                                   tcp::ethernet_goodput(site.uplink_bps),
                                   spec_.uplink_latency, spec_.queue_bytes);
    site_nodes_.emplace_back();
    for (int n = 0; n < site.nodes; ++n) {
      const std::string host_name = site.name + std::to_string(n);
      const net::HostId h = network_.add_host(host_name, site.cpu_speed);
      site_nodes_.back().push_back(h);
      host_site_.push_back(static_cast<int>(s));
      sl[s].node_up.push_back(network_.add_link(
          host_name + ".up", tcp::ethernet_goodput(site.nic_bps),
          spec_.nic_latency, spec_.queue_bytes));
      sl[s].node_down.push_back(network_.add_link(
          host_name + ".down", tcp::ethernet_goodput(site.nic_bps),
          spec_.nic_latency, spec_.queue_bytes));
      // Loopback for co-located processes: ~5 GB/s, 5 us one-way.
      const net::LinkId lo = network_.add_link(host_name + ".lo", 5e9,
                                               microseconds(5), 4e6);
      network_.add_route(h, h, {lo}, /*symmetric=*/false);
      // Optional native fabric ports (Myrinet/Infiniband class). Native
      // rates are used raw (no Ethernet framing overhead).
      if (spec_.prefer_native_intra && site.native_bps > 0) {
        sl[s].native_up.push_back(
            network_.add_link(host_name + ".mx.up", site.native_bps / 8.0,
                              site.native_latency, spec_.queue_bytes));
        sl[s].native_down.push_back(
            network_.add_link(host_name + ".mx.down", site.native_bps / 8.0,
                              site.native_latency, spec_.queue_bytes));
      }
    }
  }

  // Intra-site routes: the native fabric where configured and preferred,
  // otherwise up through the sender NIC and down the receiver NIC.
  for (size_t s = 0; s < nsites; ++s) {
    const auto& nodes = site_nodes_[s];
    const bool native = !sl[s].native_up.empty();
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (size_t j = 0; j < nodes.size(); ++j) {
        if (i == j) continue;
        if (native) {
          network_.add_route(nodes[i], nodes[j],
                             {sl[s].native_up[i], sl[s].native_down[j]},
                             /*symmetric=*/false);
        } else {
          network_.add_route(nodes[i], nodes[j],
                             {sl[s].node_up[i], sl[s].node_down[j]},
                             /*symmetric=*/false);
        }
      }
    }
  }

  // Inter-site WAN links and routes.
  for (size_t s1 = 0; s1 < nsites; ++s1) {
    for (size_t s2 = s1 + 1; s2 < nsites; ++s2) {
      const double rtt = spec_.rtt_ms[s1][s2];
      if (rtt <= 0)
        throw std::invalid_argument("missing RTT between sites");
      // One-way budget: NIC + uplink on each side already contribute
      // 17.5 + 10 us per side; the WAN link carries the rest.
      const SimTime one_way = from_seconds(rtt * 1e-3 / 2.0);
      const SimTime wan_lat =
          one_way - 2 * spec_.uplink_latency - 2 * spec_.nic_latency;
      if (wan_lat <= 0) throw std::invalid_argument("RTT too small");
      // The backbone itself is 10 Gbps (RENATER); site uplinks bottleneck.
      const std::string nm =
          spec_.sites[s1].name + "-" + spec_.sites[s2].name;
      const net::LinkId w12 = network_.add_link(
          nm, tcp::ethernet_goodput(10e9), wan_lat, 4e6);
      const net::LinkId w21 = network_.add_link(
          nm + ".rev", tcp::ethernet_goodput(10e9), wan_lat, 4e6);
      for (size_t i = 0; i < site_nodes_[s1].size(); ++i) {
        for (size_t j = 0; j < site_nodes_[s2].size(); ++j) {
          network_.add_route(site_nodes_[s1][i], site_nodes_[s2][j],
                             {sl[s1].node_up[i], sl[s1].up, w12, sl[s2].down,
                              sl[s2].node_down[j]},
                             /*symmetric=*/false);
          network_.add_route(site_nodes_[s2][j], site_nodes_[s1][i],
                             {sl[s2].node_up[j], sl[s2].up, w21, sl[s1].down,
                              sl[s1].node_down[i]},
                             /*symmetric=*/false);
        }
      }
    }
  }
}

int Grid::total_nodes() const {
  int n = 0;
  for (const auto& s : spec_.sites) n += s.nodes;
  return n;
}

net::HostId Grid::node(int site, int index) const {
  return site_nodes_.at(static_cast<size_t>(site))
      .at(static_cast<size_t>(index));
}

int Grid::site_of(net::HostId h) const {
  return host_site_.at(static_cast<size_t>(h));
}

SimTime Grid::rtt(net::HostId a, net::HostId b) const {
  return network_.path_latency(a, b) + network_.path_latency(b, a);
}

std::vector<std::pair<net::HostId, net::HostId>> wan_host_pairs(
    const Grid& grid) {
  std::vector<std::pair<net::HostId, net::HostId>> pairs;
  const int nsites = grid.site_count();
  if (nsites == 1) {
    // No WAN to cross: a ring of intra-site pairs keeps cross-traffic
    // meaningful on single-cluster deployments.
    const int n = grid.nodes_at(0);
    for (int i = 0; i < n && n > 1; ++i)
      pairs.emplace_back(grid.node(0, i), grid.node(0, (i + 1) % n));
    return pairs;
  }
  for (int s1 = 0; s1 < nsites; ++s1) {
    for (int s2 = 0; s2 < nsites; ++s2) {
      if (s1 == s2) continue;
      const int n = std::min(grid.nodes_at(s1), grid.nodes_at(s2));
      for (int k = 0; k < n; ++k)
        pairs.emplace_back(grid.node(s1, k), grid.node(s2, k));
    }
  }
  return pairs;
}

std::unique_ptr<simfault::FaultInjector> install_faults(
    Grid& grid, const simfault::FaultPlan& plan) {
  if (!plan.active()) return nullptr;
  return std::make_unique<simfault::FaultInjector>(grid.network(), plan,
                                                   wan_host_pairs(grid));
}

}  // namespace gridsim::topo
