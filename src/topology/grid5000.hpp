// Grid'5000 testbed model (paper Section 3.2).
//
// A deployment is a set of *sites*; each site has `nodes` hosts with one
// 1 GbE NIC each, connected to a site switch, which reaches the RENATER
// backbone through an uplink. Site pairs are joined by dedicated directed
// WAN links whose latency is derived from the paper's published RTTs
// (Fig 2: Rennes--Nancy 11.6 ms; Fig 8: the four ray2mesh sites).
//
// All links are directed (full-duplex Ethernet): each host has an up and a
// down link, each site an up/down uplink pair and each site pair two WAN
// links. Every host also gets a loopback route for co-located processes.
//
// Latency budget (matches Table 4): an intra-cluster TCP one-way time of
// 41 us = 2 x 17.5 us NIC/switch hops + 2 x 3 us kernel stack cost (the
// stack cost is applied by the messaging layer, not the links), and a grid
// one-way time of 5812 us for the 11.6 ms RTT pair.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "simcore/simulation.hpp"
#include "simfault/injector.hpp"
#include "simnet/network.hpp"
#include "simtcp/tcp.hpp"

namespace gridsim::topo {

/// One cluster of identical nodes.
struct SiteSpec {
  std::string name;
  int nodes = 8;
  /// Relative node speed; 1.0 = Rennes (AMD Opteron 248, 2.2 GHz).
  double cpu_speed = 1.0;
  double nic_bps = 1e9;     ///< raw NIC rate; Ethernet goodput applied
  double uplink_bps = 10e9; ///< site uplink to the backbone
  /// Optional high-speed intra-cluster fabric (Myrinet/Infiniband class).
  /// 0 disables it. Used only when GridSpec::prefer_native_intra is set —
  /// the paper's future-work question: is routing local traffic over the
  /// native network worth the heterogeneity-management overhead?
  double native_bps = 0;
  SimTime native_latency = microseconds(5);
};

struct GridSpec {
  std::vector<SiteSpec> sites;
  /// Symmetric site-to-site RTT in milliseconds; diagonal ignored.
  std::vector<std::vector<double>> rtt_ms;
  SimTime nic_latency = microseconds(17) + nanoseconds(500);  // 17.5 us
  SimTime uplink_latency = microseconds(10);
  double queue_bytes = 1e6;  ///< bottleneck queue per link
  /// Route intra-site traffic over each site's native fabric (where one is
  /// configured) instead of Ethernet. Inter-site traffic always uses
  /// Ethernet + the WAN.
  bool prefer_native_intra = false;

  /// The paper's main testbed: Rennes + Nancy, 11.6 ms RTT (Fig 2).
  static GridSpec rennes_nancy(int nodes_per_site = 8);
  /// One cluster only (the paper's intra-cluster reference runs).
  static GridSpec single_cluster(int nodes = 16, std::string name = "rennes");
  /// The four-site ray2mesh deployment of Fig 8 (8 nodes each).
  static GridSpec ray2mesh_quad(int nodes_per_site = 8);
  /// The full nine-site Grid'5000 backbone of Fig 1 (Bordeaux, Grenoble,
  /// Lille, Lyon, Nancy, Orsay, Rennes, Sophia, Toulouse). RTTs are
  /// derived from the paper's published pairs (Rennes-Nancy 11.6 ms,
  /// Rennes-Sophia ~19.2 ms, Toulouse-Lille 18.2 ms) and geographic
  /// distance estimates for the rest; sites on the 10 GbE ring get 10 Gbps
  /// uplinks, the others 1 Gbps.
  static GridSpec grid5000_full(int nodes_per_site = 2);
};

/// A built deployment: the network plus site/node bookkeeping.
class Grid {
 public:
  Grid(Simulation& sim, const GridSpec& spec);
  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  net::Network& network() { return network_; }
  const GridSpec& spec() const { return spec_; }

  int site_count() const { return static_cast<int>(spec_.sites.size()); }
  int nodes_at(int site) const {
    return spec_.sites.at(static_cast<size_t>(site)).nodes;
  }
  int total_nodes() const;
  net::HostId node(int site, int index) const;
  int site_of(net::HostId h) const;
  /// TCP round-trip time between two hosts (twice the path latency).
  SimTime rtt(net::HostId a, net::HostId b) const;
  double cpu_speed(net::HostId h) const { return network_.host(h).cpu_speed; }

 private:
  GridSpec spec_;
  net::Network network_;
  std::vector<std::vector<net::HostId>> site_nodes_;
  std::vector<int> host_site_;
};

/// Candidate (src, dst) host pairs for background cross-traffic on this
/// deployment: index-matched node pairs for every ordered pair of distinct
/// sites (traffic that crosses the WAN, like competing RENATER flows). On a
/// single-site grid, falls back to a ring of intra-site node pairs.
std::vector<std::pair<net::HostId, net::HostId>> wan_host_pairs(
    const Grid& grid);

/// Builds a FaultInjector over the grid's network, wiring cross-traffic
/// generators to wan_host_pairs(). Returns nullptr for an inactive plan —
/// callers hold the result until Simulation::run() drains. Note host names
/// carry no dash ("rennes0"), so the specs' default "*-*" glob selects
/// exactly the WAN backbone links ("rennes-nancy", "rennes-nancy.rev").
std::unique_ptr<simfault::FaultInjector> install_faults(
    Grid& grid, const simfault::FaultPlan& plan);

}  // namespace gridsim::topo
