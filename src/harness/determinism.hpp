// Determinism auditor.
//
// The paper's every figure and table assumes the simulator is a
// deterministic function of its inputs: events at equal timestamps fire in
// FIFO order, so two runs of the same scenario must produce bit-identical
// event traces. This module makes that promise checkable. It runs a named
// scenario with every trace category enabled, folds the structured event
// stream from `Tracer` plus the final engine state into a 64-bit FNV-1a
// digest, runs the scenario again and fails on divergence — the symptom of
// iteration-order nondeterminism, uninitialised reads or dangling-coroutine
// resumption corrupting the schedule.
//
// The built-in scenarios cover the paper's three workload shapes:
//   "pingpong"  the Section 3.1 micro-benchmark over the Rennes--Nancy WAN
//   "nas"       an NPB CG class-S run over two sites
//   "ray2mesh"  a reduced master/worker ray2mesh campaign over four sites
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/trace.hpp"

namespace gridsim::harness {

/// Order-sensitive 64-bit FNV-1a digest of a trace. Every event contributes
/// its timestamp, kind, subject, value bit pattern and detail string;
/// `basis` salts the fold (pass the scenario seed).
std::uint64_t trace_digest(const Tracer& tracer,
                           std::uint64_t basis = 0x6A09E667F3BCC908ULL);

/// Incremental-digest primitives: fold one value / one trace event into a
/// running FNV-1a hash. `trace_digest` is exactly a left fold of
/// `fold_trace_event` over the stored events, so a streaming consumer (a
/// `Tracer` observer with storage off — how the campaign runner digests
/// arbitrarily long scenarios in O(1) memory) produces the same digest as
/// hashing a stored trace.
void fold_digest(std::uint64_t& h, std::uint64_t v);
void fold_trace_event(std::uint64_t& h, const TraceEvent& e);

/// Names of the built-in auditable scenarios.
std::vector<std::string> audit_scenario_names();

/// One traced scenario execution.
struct AuditRun {
  std::uint64_t digest = 0;    ///< trace + engine-state digest
  std::uint64_t events = 0;    ///< trace events hashed
  std::int64_t final_time = 0; ///< virtual end time of the run (ns)
};

/// Runs scenario `name` once with full tracing and returns its digest.
/// Throws std::invalid_argument for an unknown scenario.
AuditRun run_audit_scenario(const std::string& name, std::uint64_t seed);

/// Verdict of a double-run comparison.
struct AuditResult {
  std::string scenario;
  AuditRun first;
  AuditRun second;
  bool deterministic = false;
};

/// Runs the scenario twice with identical seeds and compares digests.
AuditResult audit_determinism(const std::string& name, std::uint64_t seed = 1);

}  // namespace gridsim::harness
