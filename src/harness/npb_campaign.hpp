// Campaign runner for the NPB experiments (Figs 10-13, Table 2).
#pragma once

#include "mpi/mpi.hpp"
#include "npb/npb.hpp"
#include "profiles/profiles.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::harness {

struct NpbRunResult {
  SimTime makespan = 0;  ///< completion time of the slowest rank
  bool timed_out = false;  ///< the run exceeded the virtual-time limit
  mpi::TrafficStats traffic;
  /// TCP stall (RTO-like) events across the job (see mpi::Job); nonzero
  /// only under an active fault plan.
  int degraded_progress_events = 0;
};

/// Runs one kernel at one class over `nranks` block-placed ranks.
/// `timeout` bounds the *virtual* time, mirroring the paper's batch-system
/// walltime limit (their MPICH-Madeleine BT/SP runs "timed out"); 0 = no
/// limit. A timed-out result reports the partial traffic and
/// makespan = timeout.
NpbRunResult run_npb(const topo::GridSpec& spec, int nranks, npb::Kernel k,
                     npb::Class c, const profiles::ExperimentConfig& cfg,
                     SimTime timeout = 0, const SimHooks& hooks = {});

}  // namespace gridsim::harness
