#include "harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gridsim::harness {

namespace {

void print_row(const std::vector<std::string>& cells,
               const std::vector<std::size_t>& widths) {
  std::printf("  ");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s", static_cast<int>(widths[i] + 2), cells[i].c_str());
  }
  std::printf("\n");
}

}  // namespace

void print_table(const std::string& title,
                 const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows) {
  std::printf("\n# %s\n", title.c_str());
  std::vector<std::size_t> widths(headers.size(), 0);
  for (std::size_t i = 0; i < headers.size(); ++i)
    widths[i] = headers[i].size();
  for (const auto& row : rows)
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  print_row(headers, widths);
  std::vector<std::string> rule;
  for (auto w : widths) rule.push_back(std::string(w, '-'));
  print_row(rule, widths);
  for (const auto& row : rows) print_row(row, widths);
}

void print_csv(const std::string& title,
               const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows) {
  std::printf("\n# %s (csv)\n", title.c_str());
  for (std::size_t i = 0; i < headers.size(); ++i)
    std::printf("%s%s", i ? "," : "", headers[i].c_str());
  std::printf("\n");
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i)
      std::printf("%s%s", i ? "," : "", row[i].c_str());
    std::printf("\n");
  }
}

void print_ascii_chart(const std::string& title,
                       const std::vector<std::string>& series_names,
                       const std::vector<std::string>& x_labels,
                       const std::vector<std::vector<double>>& values,
                       double y_max, const std::string& unit) {
  constexpr int kWidth = 46;
  std::printf("\n# %s  (each bar: 0..%.0f %s)\n", title.c_str(), y_max,
              unit.c_str());
  for (std::size_t s = 0; s < series_names.size(); ++s) {
    std::printf("  -- %s --\n", series_names[s].c_str());
    for (std::size_t x = 0; x < x_labels.size(); ++x) {
      const double v = values[s][x];
      int bar = static_cast<int>(std::lround(v / y_max * kWidth));
      bar = std::clamp(bar, 0, kWidth);
      std::printf("  %8s |%-*s| %8.1f %s\n", x_labels[x].c_str(), kWidth,
                  std::string(static_cast<size_t>(bar), '#').c_str(), v,
                  unit.c_str());
    }
  }
}

std::string format_bytes(double bytes) {
  char buf[32];
  if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%gM", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof buf, "%gk", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%g", bytes);
  }
  return buf;
}

std::string format_double(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace gridsim::harness
