#include "harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gridsim::harness {

namespace {

void append_row(std::string& out, const std::vector<std::string>& cells,
                const std::vector<std::size_t>& widths) {
  out += "  ";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out += cells[i];
    if (i + 1 < cells.size() && i < widths.size()) {
      const std::size_t w = std::max(widths[i], cells[i].size());
      out.append(w + 2 - cells[i].size(), ' ');
    }
  }
  out += '\n';
}

}  // namespace

std::string render_table(const std::string& title,
                         const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows) {
  std::string out = "\n# " + title + "\n";
  std::vector<std::size_t> widths(headers.size(), 0);
  for (std::size_t i = 0; i < headers.size(); ++i)
    widths[i] = headers[i].size();
  for (const auto& row : rows)
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  append_row(out, headers, widths);
  std::vector<std::string> rule;
  for (auto w : widths) rule.push_back(std::string(w, '-'));
  append_row(out, rule, widths);
  for (const auto& row : rows) append_row(out, row, widths);
  return out;
}

std::string render_csv(const std::string& title,
                       const std::vector<std::string>& headers,
                       const std::vector<std::vector<std::string>>& rows) {
  std::string out = "\n# " + title + " (csv)\n";
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (i) out += ',';
    out += headers[i];
  }
  out += '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += row[i];
    }
    out += '\n';
  }
  return out;
}

std::string render_ascii_chart(const std::string& title,
                               const std::vector<std::string>& series_names,
                               const std::vector<std::string>& x_labels,
                               const std::vector<std::vector<double>>& values,
                               double y_max, const std::string& unit) {
  constexpr int kWidth = 46;
  char buf[160];
  std::snprintf(buf, sizeof buf, "\n# %s  (each bar: 0..%.0f %s)\n",
                title.c_str(), y_max, unit.c_str());
  std::string out = buf;
  for (std::size_t s = 0; s < series_names.size(); ++s) {
    out += "  -- " + series_names[s] + " --\n";
    for (std::size_t x = 0; x < x_labels.size(); ++x) {
      const double v = values[s][x];
      int bar = static_cast<int>(std::lround(v / y_max * kWidth));
      bar = std::clamp(bar, 0, kWidth);
      std::snprintf(buf, sizeof buf, "  %8s |%-*s| %8.1f %s\n",
                    x_labels[x].c_str(), kWidth,
                    std::string(static_cast<size_t>(bar), '#').c_str(), v,
                    unit.c_str());
      out += buf;
    }
  }
  return out;
}

std::string format_bytes(double bytes) {
  char buf[32];
  if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%gM", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof buf, "%gk", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%g", bytes);
  }
  return buf;
}

std::string format_double(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void print_table(const std::string& title,
                 const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows) {
  std::fputs(render_table(title, headers, rows).c_str(), stdout);
}

void print_csv(const std::string& title,
               const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows) {
  std::fputs(render_csv(title, headers, rows).c_str(), stdout);
}

void print_ascii_chart(const std::string& title,
                       const std::vector<std::string>& series_names,
                       const std::vector<std::string>& x_labels,
                       const std::vector<std::vector<double>>& values,
                       double y_max, const std::string& unit) {
  std::fputs(
      render_ascii_chart(title, series_names, x_labels, values, y_max, unit)
          .c_str(),
      stdout);
}

}  // namespace gridsim::harness
