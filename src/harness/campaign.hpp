// Campaign runner: executes registered scenarios concurrently.
//
// A campaign selects scenarios from a ScenarioRegistry by glob and runs
// them on a pool of worker threads — one Simulation (or simulation
// sequence) per worker, no shared mutable state — then aggregates results
// in registration order, so the report is independent of the thread
// schedule. Each scenario is trace-digested while it runs (streaming
// FNV-1a over every enabled trace event, O(1) memory): `--jobs N` must
// produce byte-identical per-scenario digests to `--jobs 1`, which the
// campaign-smoke CI job and tests/campaign_test.cpp verify with the same
// machinery the `gridsim audit` subcommand uses.
//
// Failure isolation: a scenario that throws (or violates its declared
// metric schema) is reported failed with its error text; the rest of the
// campaign completes normally.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace gridsim::harness {

struct CampaignOptions {
  std::string filter = "*";  ///< glob over scenario names and groups
  int jobs = 1;              ///< worker threads; <=0 = hardware concurrency
  std::uint64_t seed = 1;    ///< folded into every scenario digest
  /// Trace-digest every simulation the scenarios run. Off, scenarios run
  /// without tracing overhead and `digest`/`trace_events` stay zero (the
  /// bench shims use this; the campaign subcommand keeps it on).
  bool digests = true;
  /// Per-scenario wall-clock watchdog in seconds; 0 = none. A scenario that
  /// exceeds it is stopped at the next event boundary of whichever
  /// Simulation it is running (TimeoutError), reported with
  /// `status == "timeout"`, and the rest of the campaign proceeds.
  double timeout_s = 0;
  /// Record each scenario's comm-event log and run the simlint
  /// happens-before analysis over it, filling ScenarioOutcome::races and
  /// hb_edges (counters only — `gridsim lint` reports the sites). Off, the
  /// engine skips recording entirely (the bench shims use this).
  bool lint = true;
};

/// One scenario's execution record.
struct ScenarioOutcome {
  std::string name;
  std::string group;
  bool ok = false;
  /// "ok" | "failed" | "timeout" (the watchdog fired; see
  /// CampaignOptions::timeout_s). `ok == (status == "ok")`.
  std::string status = "failed";
  std::string error;         ///< exception text or schema violation
  ScenarioResult result;
  std::uint64_t digest = 0;       ///< streaming trace digest (see above)
  std::uint64_t trace_events = 0; ///< trace events folded into the digest
  std::uint64_t simulations = 0;  ///< Simulations the scenario ran
  std::int64_t final_time = 0;    ///< max virtual end time across them (ns)
  double wall_s = 0;
  int races = 0;                  ///< simlint R1 racing send pairs
  std::uint64_t hb_edges = 0;     ///< cross-rank happens-before edges
};

struct CampaignReport {
  std::vector<ScenarioOutcome> outcomes;  ///< registration order
  std::string filter;
  int jobs = 1;
  std::uint64_t seed = 1;
  double wall_s = 0;
  std::size_t failures() const;
};

/// Optional progress callback, invoked from worker threads as scenarios
/// finish (serialized internally; do not assume completion order).
using CampaignProgress = std::function<void(const ScenarioOutcome&)>;

/// Runs every scenario matching `options.filter`.
CampaignReport run_campaign(const ScenarioRegistry& registry,
                            const CampaignOptions& options = {},
                            const CampaignProgress& progress = {});

/// Writes the consolidated campaign report (schema "gridsim-campaign/1",
/// documented in docs/usage.md). One scenario object per line, so shell
/// tooling can diff digests without a JSON parser. Returns false if the
/// file cannot be written.
bool write_campaign_json(const std::string& path,
                         const CampaignReport& report);

/// Renders one group's figure/table text from campaign outcomes using the
/// registry's renderer; falls back to concatenating per-scenario text and
/// notes when the group has none. Failed scenarios are reported inline.
std::string render_group(const ScenarioRegistry& registry,
                         const std::string& group,
                         const CampaignReport& report);

}  // namespace gridsim::harness
