// The paper's ping-pong micro-benchmark (Section 3.1).
//
// One process MPI_Sends messages to a peer that MPI_Recvs and echoes them.
// For each size the harness reports the minimum one-way latency and the
// maximum per-message bandwidth over the configured number of round trips
// (the paper uses min/max over 200 round trips to reject interference; the
// simulator is deterministic, so fewer rounds suffice — the min/max still
// matter because TCP ramps up across rounds).
#pragma once

#include <vector>

#include "profiles/profiles.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::harness {

struct PingpongPoint {
  double bytes = 0;
  SimTime min_one_way = 0;        ///< best one-way time (round trip / 2)
  double max_bandwidth_mbps = 0;  ///< best bytes / (round trip / 2)
};

struct PingpongEndpoints {
  int site_a = 0, node_a = 0;
  int site_b = 0, node_b = 1;
};

struct PingpongOptions {
  std::vector<double> sizes;  ///< message sizes, swept in order
  int rounds = 30;            ///< round trips per size
};

/// Power-of-two sizes from `from` to `to` inclusive (the paper: 1 kB..64 MB).
std::vector<double> pow2_sizes(double from, double to);

/// Runs a full sweep in one job (TCP connections stay warm across sizes,
/// like a real ping-pong binary).
std::vector<PingpongPoint> pingpong_sweep(const topo::GridSpec& spec,
                                          const PingpongEndpoints& ends,
                                          const profiles::ExperimentConfig& cfg,
                                          const PingpongOptions& options,
                                          const SimHooks& hooks = {});

/// Minimum one-way latency for a 1-byte message (Table 4).
SimTime pingpong_min_latency(const topo::GridSpec& spec,
                             const PingpongEndpoints& ends,
                             const profiles::ExperimentConfig& cfg,
                             int rounds = 20, const SimHooks& hooks = {});

struct SlowstartSample {
  SimTime at = 0;      ///< send timestamp of this message
  double mbps = 0;     ///< per-message bandwidth bytes/(round trip / 2)
};

/// Periodic bursts from a second node pair sharing the WAN path, standing
/// in for the cross traffic of a shared testbed (Grid'5000's RENATER was
/// not dedicated to one experiment). Without contention a fluid model has
/// no early losses and slow start converges in a couple of round trips;
/// with it, the paper's seconds-long transient appears.
struct CrossTraffic {
  double burst_bytes = 0;  ///< 0 disables cross traffic
  SimTime period = seconds(1);
};

/// Fig 9: per-message bandwidth of `count` back-to-back messages of
/// `bytes`, starting from cold TCP connections.
std::vector<SlowstartSample> slowstart_series(
    const topo::GridSpec& spec, const PingpongEndpoints& ends,
    const profiles::ExperimentConfig& cfg, double bytes, int count,
    const CrossTraffic& cross = {}, const SimHooks& hooks = {});

}  // namespace gridsim::harness
