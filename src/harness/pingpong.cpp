#include "harness/pingpong.hpp"

#include <algorithm>
#include <memory>

#include "mpi/mpi.hpp"
#include "simcore/simulation.hpp"

namespace gridsim::harness {

namespace {

using mpi::Rank;

struct SweepState {
  const PingpongOptions* options;
  std::vector<PingpongPoint> points;
};

Task<void> ping_side(Rank& r, SweepState* state) {
  for (double size : state->options->sizes) {
    PingpongPoint point;
    point.bytes = size;
    point.min_one_way = kSimTimeNever;
    for (int round = 0; round < state->options->rounds; ++round) {
      const SimTime start = r.sim().now();
      co_await r.send(1, size, 0);
      (void)co_await r.recv(1, 0);
      const SimTime one_way = (r.sim().now() - start) / 2;
      point.min_one_way = std::min(point.min_one_way, one_way);
      const double mbps = size * 8.0 / to_seconds(std::max<SimTime>(
                                          one_way, 1)) / 1e6;
      point.max_bandwidth_mbps = std::max(point.max_bandwidth_mbps, mbps);
    }
    state->points.push_back(point);
  }
}

Task<void> pong_side(Rank& r, const PingpongOptions* options) {
  for (double size : options->sizes) {
    for (int round = 0; round < options->rounds; ++round) {
      (void)co_await r.recv(0, 0);
      co_await r.send(0, size, 0);
    }
  }
}

std::vector<net::HostId> endpoint_placement(const topo::Grid& grid,
                                            const PingpongEndpoints& ends) {
  return {grid.node(ends.site_a, ends.node_a),
          grid.node(ends.site_b, ends.node_b)};
}

}  // namespace

std::vector<double> pow2_sizes(double from, double to) {
  std::vector<double> sizes;
  for (double s = from; s <= to * 1.001; s *= 2) sizes.push_back(s);
  return sizes;
}

std::vector<PingpongPoint> pingpong_sweep(const topo::GridSpec& spec,
                                          const PingpongEndpoints& ends,
                                          const profiles::ExperimentConfig& cfg,
                                          const PingpongOptions& options,
                                          const SimHooks& hooks) {
  Simulation sim;
  if (hooks.on_start) hooks.on_start(sim);
  topo::Grid grid(sim, spec);
  auto faults = topo::install_faults(grid, cfg.faults);
  mpi::Job job(grid, endpoint_placement(grid, ends), cfg.profile, cfg.kernel);
  SweepState state;
  state.options = &options;
  sim.spawn(ping_side(job.rank(0), &state));
  sim.spawn(pong_side(job.rank(1), &options));
  sim.run();
  if (hooks.on_finish) hooks.on_finish(sim);
  return std::move(state.points);
}

SimTime pingpong_min_latency(const topo::GridSpec& spec,
                             const PingpongEndpoints& ends,
                             const profiles::ExperimentConfig& cfg,
                             int rounds, const SimHooks& hooks) {
  PingpongOptions options;
  options.sizes = {1.0};
  options.rounds = rounds;
  const auto points = pingpong_sweep(spec, ends, cfg, options, hooks);
  return points.at(0).min_one_way;
}

namespace {

struct SeriesState {
  double bytes;
  int count;
  std::vector<SlowstartSample> samples;
};

Task<void> series_ping(Rank& r, SeriesState* state) {
  for (int i = 0; i < state->count; ++i) {
    const SimTime start = r.sim().now();
    co_await r.send(1, state->bytes, 0);
    (void)co_await r.recv(1, 0);
    const SimTime one_way = (r.sim().now() - start) / 2;
    SlowstartSample s;
    s.at = start;
    s.mbps = state->bytes * 8.0 /
             to_seconds(std::max<SimTime>(one_way, 1)) / 1e6;
    state->samples.push_back(s);
  }
}

Task<void> series_pong(Rank& r, const SeriesState* state) {
  for (int i = 0; i < state->count; ++i) {
    (void)co_await r.recv(0, 0);
    co_await r.send(0, state->bytes, 0);
  }
}

}  // namespace

namespace {

/// Repeated bulk bursts over a dedicated TCP channel; stops itself once the
/// foreground experiment is expected to be over (count is bounded so the
/// simulation terminates).
Task<void> cross_traffic_body(Simulation* sim, tcp::TcpChannel* ch,
                              double burst, SimTime period, int bursts) {
  for (int i = 0; i < bursts; ++i) {
    co_await ch->send_delivered(burst);
    co_await sim->delay(period);
  }
}

}  // namespace

std::vector<SlowstartSample> slowstart_series(
    const topo::GridSpec& spec, const PingpongEndpoints& ends,
    const profiles::ExperimentConfig& cfg, double bytes, int count,
    const CrossTraffic& cross, const SimHooks& hooks) {
  Simulation sim;
  if (hooks.on_start) hooks.on_start(sim);
  topo::Grid grid(sim, spec);
  // Validate before spawning anything: a throw after spawn() would abandon
  // the suspended process frames (they only run and self-destroy once
  // sim.run() drains the queue).
  if (cross.burst_bytes > 0 &&
      (grid.nodes_at(ends.site_a) < 2 || grid.nodes_at(ends.site_b) < 2))
    throw std::invalid_argument("cross traffic needs 2 nodes per site");
  auto faults = topo::install_faults(grid, cfg.faults);
  mpi::Job job(grid, endpoint_placement(grid, ends), cfg.profile, cfg.kernel);
  SeriesState state;
  state.bytes = bytes;
  state.count = count;
  sim.spawn(series_ping(job.rank(0), &state));
  sim.spawn(series_pong(job.rank(1), &state));

  std::unique_ptr<tcp::TcpChannel> cross_channel;
  if (cross.burst_bytes > 0) {
    // The cross flow uses the next node of each site so it shares the WAN
    // uplinks but not the experiment NICs.
    tcp::SocketOptions opts;  // plain bulk TCP, auto-tuned
    cross_channel = std::make_unique<tcp::TcpChannel>(
        grid.network(), grid.node(ends.site_a, ends.node_a + 1),
        grid.node(ends.site_b, ends.node_b + 1), cfg.kernel, cfg.kernel,
        opts);
    // Enough bursts to outlive the measurement comfortably.
    const int bursts = 64;
    sim.spawn(cross_traffic_body(&sim, cross_channel.get(),
                                 cross.burst_bytes, cross.period, bursts));
  }
  sim.run();
  if (hooks.on_finish) hooks.on_finish(sim);
  return std::move(state.samples);
}

}  // namespace gridsim::harness
