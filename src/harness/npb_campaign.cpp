#include "harness/npb_campaign.hpp"

#include <algorithm>
#include <vector>

#include "simcore/simulation.hpp"

namespace gridsim::harness {

namespace {

Task<void> timed_kernel(mpi::Rank* r, npb::Kernel k, npb::Class c,
                        SimTime* finish) {
  co_await npb::run_kernel(*r, k, c);
  *finish = r->sim().now();
}

}  // namespace

NpbRunResult run_npb(const topo::GridSpec& spec, int nranks, npb::Kernel k,
                     npb::Class c, const profiles::ExperimentConfig& cfg,
                     SimTime timeout, const SimHooks& hooks) {
  npb::validate_ranks(k, nranks);
  Simulation sim;
  if (hooks.on_start) hooks.on_start(sim);
  topo::Grid grid(sim, spec);
  auto faults = topo::install_faults(grid, cfg.faults);
  mpi::Job job(grid, mpi::block_placement(grid, nranks), cfg.profile,
               cfg.kernel);
  std::vector<SimTime> finish(static_cast<size_t>(nranks), 0);
  for (int rank = 0; rank < nranks; ++rank) {
    sim.spawn(timed_kernel(&job.rank(rank), k, c,
                           &finish[static_cast<size_t>(rank)]));
  }
  NpbRunResult result;
  if (timeout > 0) {
    sim.run_until(timeout);
    result.timed_out = sim.live_processes() > 0;
  } else {
    sim.run();
    // A deadlocked program leaves processes blocked with no events.
    result.timed_out = sim.live_processes() > 0;
  }
  result.makespan = result.timed_out
                        ? (timeout > 0 ? timeout : sim.now())
                        : *std::max_element(finish.begin(), finish.end());
  result.traffic = job.traffic();
  result.degraded_progress_events = job.degraded_progress_events();
  if (hooks.on_finish) hooks.on_finish(sim);
  return result;
}

}  // namespace gridsim::harness
