#include "harness/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "harness/determinism.hpp"
#include "simcore/check.hpp"
#include "simcore/trace.hpp"
#include "simlint/lint.hpp"

namespace gridsim::harness {

namespace {

double now_wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Streaming digest state for one scenario. Lives on the worker's stack for
/// the duration of the scenario, so the hooks' raw pointer captures are
/// safe: every simulation a scenario runs completes inside its run().
struct DigestState {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t sims = 0;
  std::int64_t final_time = 0;
};

/// Per-scenario digest basis: the campaign seed and the scenario name salt
/// the fold, so equal-shaped scenarios still get distinct digests.
std::uint64_t digest_basis(std::uint64_t seed, const std::string& name) {
  std::uint64_t h = 0xCBF29CE484222325ULL ^ seed;
  for (const char c : name) fold_digest(h, static_cast<unsigned char>(c));
  return h;
}

/// Hooks that enable every trace category with storage off and fold each
/// event into `state` as it is recorded — the same per-event fold as
/// `trace_digest`, so a campaign digest is comparable across runs
/// regardless of trace length.
SimHooks digest_hooks(DigestState* state) {
  SimHooks hooks;
  hooks.on_start = [state](Simulation& sim) {
    Tracer& tracer = sim.tracer();
    for (std::uint8_t k = 0;
         k < static_cast<std::uint8_t>(TraceKind::kKindCount); ++k) {
      tracer.enable(static_cast<TraceKind>(k));
    }
    tracer.set_storage(false);
    tracer.set_observer([state](const TraceEvent& e) {
      fold_trace_event(state->digest, e);
      ++state->events;
    });
  };
  hooks.on_finish = [state](Simulation& sim) {
    // Fold the engine's final state so a run that diverges only in event
    // count or end time (identical trace prefix) is still caught.
    fold_digest(state->digest, sim.events_processed());
    fold_digest(state->digest, static_cast<std::uint64_t>(sim.now()));
    state->final_time = std::max(state->final_time, sim.now());
    ++state->sims;
  };
  return hooks;
}

ScenarioOutcome run_one(const ScenarioSpec& spec,
                        const CampaignOptions& options) {
  ScenarioOutcome out;
  out.name = spec.name;
  out.group = spec.group;

  DigestState state;
  state.digest = digest_basis(options.seed, spec.name);

  ScenarioContext ctx;
  ctx.seed = options.seed;
  if (options.digests) ctx.hooks = digest_hooks(&state);

  // Comm-event recording is passive (it never touches the Tracer or the
  // event order), so digests are identical with lint on or off.
  mpi::CommLog comm_log;
  std::optional<mpi::ScopedCommLog> log_scope;
  if (options.lint) log_scope.emplace(&comm_log);

  // Watchdog: one deadline for the whole scenario, armed on every
  // Simulation it constructs. The deadline is checked at event boundaries,
  // so the engine degrades gracefully — no thread is killed mid-update. A
  // timed-out run abandons its suspended coroutine frames on purpose,
  // hence the leak exemption.
  std::optional<ScopedLeakExemption> leak_exemption;
  if (options.timeout_s > 0) {
    leak_exemption.emplace();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options.timeout_s));
    const SimHooks inner = ctx.hooks;
    ctx.hooks.on_start = [inner, deadline](Simulation& sim) {
      sim.set_wall_deadline(deadline);
      if (inner.on_start) inner.on_start(sim);
    };
    ctx.hooks.on_finish = inner.on_finish;
  }

  const double t0 = now_wall_s();
  try {
    out.result = spec.run(ctx);
    out.ok = true;
    out.status = "ok";
    for (const std::string& want : spec.expected_metrics) {
      if (!out.result.has_metric(want)) {
        out.ok = false;
        out.status = "failed";
        out.error = "result violates scenario schema: missing metric '" +
                    want + "'";
        break;
      }
    }
  } catch (const TimeoutError& e) {
    out.ok = false;
    out.status = "timeout";
    out.error = e.what();
  } catch (const std::exception& e) {
    out.ok = false;
    out.status = "failed";
    out.error = e.what();
  } catch (...) {
    out.ok = false;
    out.status = "failed";
    out.error = "unknown exception";
  }
  out.wall_s = now_wall_s() - t0;

  if (options.digests && out.ok) {
    out.digest = state.digest;
    out.trace_events = state.events;
    out.simulations = state.sims;
    out.final_time = state.final_time;
  }
  if (options.lint && out.ok) {
    const simlint::LintSummary lint =
        simlint::analyze(comm_log, /*max_findings=*/0);
    out.races = lint.races;
    out.hb_edges = lint.hb_edges;
  }
  return out;
}

}  // namespace

std::size_t CampaignReport::failures() const {
  std::size_t n = 0;
  for (const ScenarioOutcome& o : outcomes)
    if (!o.ok) ++n;
  return n;
}

CampaignReport run_campaign(const ScenarioRegistry& registry,
                            const CampaignOptions& options,
                            const CampaignProgress& progress) {
  CampaignReport report;
  report.filter = options.filter;
  report.seed = options.seed;

  const std::vector<std::size_t> selected = registry.match(options.filter);
  report.outcomes.resize(selected.size());

  int jobs = options.jobs;
  if (jobs <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw == 0 ? 1 : static_cast<int>(hw);
  }
  jobs = std::max(1, std::min<int>(jobs, static_cast<int>(selected.size())));
  report.jobs = jobs;

  const double t0 = now_wall_s();
  // Work-stealing by atomic cursor: workers claim the next unstarted
  // scenario, write its outcome into the registration-order slot, and never
  // touch another slot — aggregation is deterministic by construction.
  std::atomic<std::size_t> cursor{0};
  std::mutex progress_mutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= selected.size()) return;
      const ScenarioSpec& spec = registry.scenarios()[selected[i]];
      report.outcomes[i] = run_one(spec, options);
      if (progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        progress(report.outcomes[i]);
      }
    }
  };
  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  report.wall_s = now_wall_s() - t0;
  return report;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

bool write_campaign_json(const std::string& path,
                         const CampaignReport& report) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n  \"schema\": \"gridsim-campaign/1\",\n"
               "  \"filter\": \"%s\",\n  \"jobs\": %d,\n"
               "  \"seed\": %llu,\n  \"wall_s\": %.6f,\n"
               "  \"scenarios\": %zu,\n  \"failures\": %zu,\n",
               json_escape(report.filter).c_str(), report.jobs,
               static_cast<unsigned long long>(report.seed), report.wall_s,
               report.outcomes.size(), report.failures());
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const ScenarioOutcome& o = report.outcomes[i];
    // One scenario per line (shell-diffable; see scripts/check_campaign.sh).
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"group\": \"%s\", \"ok\": %s, "
                 "\"digest\": \"%016llx\", \"trace_events\": %llu, "
                 "\"simulations\": %llu, \"final_time_ns\": %lld, "
                 "\"wall_s\": %.6f, \"status\": \"%s\", "
                 "\"races\": %d, \"hb_edges\": %llu",
                 json_escape(o.name).c_str(), json_escape(o.group).c_str(),
                 o.ok ? "true" : "false",
                 static_cast<unsigned long long>(o.digest),
                 static_cast<unsigned long long>(o.trace_events),
                 static_cast<unsigned long long>(o.simulations),
                 static_cast<long long>(o.final_time), o.wall_s,
                 json_escape(o.status).c_str(), o.races,
                 static_cast<unsigned long long>(o.hb_edges));
    if (!o.ok)
      std::fprintf(f, ", \"error\": \"%s\"", json_escape(o.error).c_str());
    if (!o.result.note.empty())
      std::fprintf(f, ", \"note\": \"%s\"",
                   json_escape(o.result.note).c_str());
    std::fprintf(f, ", \"metrics\": {");
    for (std::size_t m = 0; m < o.result.metrics.size(); ++m) {
      const Metric& metric = o.result.metrics[m];
      std::fprintf(f, "%s\"%s\": %.17g", m ? ", " : "",
                   json_escape(metric.name).c_str(), metric.value);
    }
    std::fprintf(f, "}}%s\n",
                 i + 1 < report.outcomes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  return std::fclose(f) == 0;
}

std::string render_group(const ScenarioRegistry& registry,
                         const std::string& group,
                         const CampaignReport& report) {
  std::vector<const ScenarioSpec*> specs;
  std::vector<const ScenarioResult*> results;
  std::string failures;
  for (const ScenarioOutcome& o : report.outcomes) {
    if (o.group != group) continue;
    const ScenarioSpec* spec = registry.find(o.name);
    if (spec == nullptr) continue;
    specs.push_back(spec);
    results.push_back(&o.result);
    if (!o.ok)
      failures += "  !! " + o.name + " FAILED: " + o.error + "\n";
  }
  if (specs.empty()) return {};

  std::string out;
  if (const GroupRenderer* render = registry.renderer(group);
      render != nullptr && failures.empty()) {
    // Renderers may index any metric their scenarios promise; with a failed
    // (empty) result in the group that contract is void, so fall back to
    // the generic rendering below instead.
    out = (*render)(specs, results);
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      out += results[i]->text;
      if (!results[i]->note.empty())
        out += "  " + specs[i]->name + ": " + results[i]->note + "\n";
    }
  }
  return failures + out;
}

}  // namespace gridsim::harness
