#include "harness/replay.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "harness/npb_campaign.hpp"
#include "mpi/mpi.hpp"
#include "simcore/simulation.hpp"

namespace gridsim::harness {

void CommTrace::save(std::ostream& out) const {
  out << "gridsim-trace 1 " << nranks << ' ' << messages.size() << '\n';
  for (const auto& m : messages)
    out << m.at << ' ' << m.src << ' ' << m.dst << ' ' << m.bytes << ' '
        << m.tag << '\n';
}

CommTrace CommTrace::load(std::istream& in) {
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  CommTrace t;
  in >> magic >> version >> t.nranks >> count;
  if (magic != "gridsim-trace" || version != 1 || !in)
    throw std::invalid_argument("not a gridsim-trace v1 stream");
  t.messages.resize(count);
  for (auto& m : t.messages) {
    in >> m.at >> m.src >> m.dst >> m.bytes >> m.tag;
    if (!in) throw std::invalid_argument("truncated gridsim-trace stream");
  }
  return t;
}

namespace {

Task<void> record_kernel(mpi::Rank* r, npb::Kernel k, npb::Class c) {
  co_await npb::run_kernel(*r, k, c);
}

}  // namespace

CommTrace record_npb(const topo::GridSpec& spec, int nranks, npb::Kernel k,
                     npb::Class c, const profiles::ExperimentConfig& cfg) {
  npb::validate_ranks(k, nranks);
  Simulation sim;
  topo::Grid grid(sim, spec);
  mpi::Job job(grid, mpi::block_placement(grid, nranks), cfg.profile,
               cfg.kernel);
  CommTrace trace;
  trace.nranks = nranks;
  job.set_message_recorder(
      [&trace](SimTime at, int src, int dst, double bytes, int tag) {
        trace.messages.push_back(RecordedMessage{at, src, dst, bytes, tag});
      });
  for (int rank = 0; rank < nranks; ++rank)
    sim.spawn(record_kernel(&job.rank(rank), k, c));
  sim.run();
  std::stable_sort(trace.messages.begin(), trace.messages.end(),
                   [](const RecordedMessage& a, const RecordedMessage& b) {
                     return a.at < b.at;
                   });
  return trace;
}

namespace {

struct ReplayPlan {
  // Per rank: the messages it sends, in timestamp order.
  std::vector<std::vector<RecordedMessage>> sends;
  // Per rank: (src, tag) of every message it receives, in send order.
  std::vector<std::vector<RecordedMessage>> recvs;
};

ReplayPlan build_plan(const CommTrace& trace) {
  ReplayPlan plan;
  plan.sends.resize(static_cast<size_t>(trace.nranks));
  plan.recvs.resize(static_cast<size_t>(trace.nranks));
  for (const auto& m : trace.messages) {
    if (m.src < 0 || m.src >= trace.nranks || m.dst < 0 ||
        m.dst >= trace.nranks)
      throw std::invalid_argument("trace rank out of range");
    plan.sends[static_cast<size_t>(m.src)].push_back(m);
    plan.recvs[static_cast<size_t>(m.dst)].push_back(m);
  }
  return plan;
}

Task<void> replay_sender(mpi::Rank* r,
                         const std::vector<RecordedMessage>* sends) {
  SimTime prev = 0;
  for (const auto& m : *sends) {
    // Preserve the recorded compute gap before this send.
    if (m.at > prev) co_await r->sim().delay(m.at - prev);
    prev = std::max(prev, m.at);
    co_await r->send(m.dst, m.bytes, m.tag);
  }
}

Task<void> replay_receiver(mpi::Rank* r,
                           const std::vector<RecordedMessage>* recvs,
                           SimTime* finish) {
  for (const auto& m : *recvs) (void)co_await r->recv(m.src, m.tag);
  *finish = r->sim().now();
}

}  // namespace

ReplayResult replay_trace(const CommTrace& trace, const topo::GridSpec& spec,
                          const profiles::ExperimentConfig& cfg) {
  if (trace.nranks <= 0) throw std::invalid_argument("empty trace");
  const ReplayPlan plan = build_plan(trace);
  Simulation sim;
  topo::Grid grid(sim, spec);
  mpi::Job job(grid, mpi::block_placement(grid, trace.nranks), cfg.profile,
               cfg.kernel);
  std::vector<SimTime> finish(static_cast<size_t>(trace.nranks), 0);
  for (int r = 0; r < trace.nranks; ++r) {
    sim.spawn(replay_sender(&job.rank(r), &plan.sends[static_cast<size_t>(r)]));
    sim.spawn(replay_receiver(&job.rank(r),
                              &plan.recvs[static_cast<size_t>(r)],
                              &finish[static_cast<size_t>(r)]));
  }
  sim.run();
  ReplayResult result;
  result.makespan = *std::max_element(finish.begin(), finish.end());
  return result;
}

}  // namespace gridsim::harness
