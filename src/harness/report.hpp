// Text output helpers for the experiment benches: aligned tables, CSV
// series and coarse ASCII charts, so each bench binary's stdout reads like
// the corresponding table/figure of the paper.
#pragma once

#include <string>
#include <vector>

namespace gridsim::harness {

/// `# title` followed by an aligned table, as a string. The render_*
/// variants exist so scenario workloads running on campaign worker threads
/// can produce their reports without interleaving stdout; the print_*
/// wrappers keep the direct-to-terminal convenience.
std::string render_table(const std::string& title,
                         const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows);

/// A CSV block (one header line + data lines) for plotting, as a string.
std::string render_csv(const std::string& title,
                       const std::vector<std::string>& headers,
                       const std::vector<std::vector<std::string>>& rows);

/// Log-x ASCII line chart: one row per x value, one column block per
/// series, bar length proportional to value / y_max. As a string.
std::string render_ascii_chart(const std::string& title,
                               const std::vector<std::string>& series_names,
                               const std::vector<std::string>& x_labels,
                               const std::vector<std::vector<double>>& values,
                               double y_max, const std::string& unit);

/// Prints `# title` followed by an aligned table.
void print_table(const std::string& title,
                 const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows);

/// Prints a CSV block (one header line + data lines) for plotting.
void print_csv(const std::string& title,
               const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows);

/// Log-x ASCII line chart, printed.
void print_ascii_chart(const std::string& title,
                       const std::vector<std::string>& series_names,
                       const std::vector<std::string>& x_labels,
                       const std::vector<std::vector<double>>& values,
                       double y_max, const std::string& unit);

std::string format_bytes(double bytes);
std::string format_double(double v, int precision = 2);

}  // namespace gridsim::harness
