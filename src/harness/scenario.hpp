// Scenario registry: first-class experiment descriptions.
//
// The paper's reproduction is a cross-product of message sizes, five
// implementations, three tuning levels and several topologies. Instead of
// one hand-rolled main() per figure, every experiment cell is registered
// once as a `ScenarioSpec` — a name, a workload closure and the schema of
// metrics it promises to produce — and every consumer (the per-figure bench
// shims, `gridsim campaign`, tests) selects scenarios from one
// `ScenarioRegistry` by glob. The campaign runner (campaign.hpp) executes
// registered scenarios concurrently; group renderers reassemble per-cell
// results into the paper's tables and charts.
//
// Contract for workload closures: a scenario builds its own Simulation(s)
// (directly or through a harness runner) and shares no mutable state with
// any other scenario, so N scenarios can run on N threads. Every simulation
// the closure runs must see `ScenarioContext::hooks` — pass it to the
// harness run_* call, or invoke `hooks.on_start` right after constructing a
// raw `Simulation` and `hooks.on_finish` after its run() returns. That is
// what lets the campaign runner trace-digest a scenario and prove the
// parallel schedule changed nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "simcore/simulation.hpp"

namespace gridsim::harness {

/// One named numeric result of a scenario (JSON-ready).
struct Metric {
  std::string name;
  double value = 0;
  std::string unit;
};

/// What a scenario produced. `metrics` is the machine-readable part and is
/// validated against the spec's `expected_metrics`; `cells` carries
/// preformatted row fragments for the group renderer; `text` is an optional
/// standalone rendering (e.g. a per-series CSV block).
struct ScenarioResult {
  std::vector<Metric> metrics;
  std::vector<std::string> cells;
  std::string text;
  std::string note;  ///< one-line human summary

  ScenarioResult& add(std::string name, double value, std::string unit = {}) {
    metrics.push_back(Metric{std::move(name), value, std::move(unit)});
    return *this;
  }
  /// Value of the named metric; throws std::out_of_range if absent.
  double metric(const std::string& name) const;
  bool has_metric(const std::string& name) const;
};

/// Per-run inputs handed to the workload closure.
struct ScenarioContext {
  SimHooks hooks;          ///< must observe every Simulation the scenario runs
  std::uint64_t seed = 1;  ///< for scenarios with stochastic inputs
};

using ScenarioFn = std::function<ScenarioResult(const ScenarioContext&)>;

/// One registered experiment cell.
struct ScenarioSpec {
  std::string name;         ///< unique, "group/variant" by convention
  std::string group;        ///< paper artifact ("fig3", "table4", ...)
  std::string description;  ///< one line for --list and reports
  /// Output schema: metric names the result must contain. The runner fails
  /// the scenario (without aborting the campaign) if one is missing.
  std::vector<std::string> expected_metrics;
  /// MPI ranks the workload simulates; 0 = not declared. Consumers that
  /// must bound state-space size (`gridsim mc --ranks-cap`) skip scenarios
  /// that do not declare a rank count within the cap.
  int ranks = 0;
  /// The workload intentionally contains wildcard-receive races (e.g. a
  /// master/worker pattern whose result is interleaving-invariant).
  /// `gridsim lint` reports them as "expected-races" (passing) instead of
  /// "races" (failing). Leaks (rule R3) always fail.
  bool races_expected = false;
  ScenarioFn run;
};

/// Reassembles one group's per-scenario results into the paper's
/// table/figure text. Results arrive in registration order, failed
/// scenarios as default-constructed ScenarioResults (check `ok`).
using GroupRenderer = std::function<std::string(
    const std::vector<const ScenarioSpec*>& specs,
    const std::vector<const ScenarioResult*>& results)>;

/// Shell-style glob match supporting `*` and `?` (no character classes).
bool glob_match(const std::string& pattern, const std::string& text);

class ScenarioRegistry {
 public:
  /// Registers a scenario. Throws std::invalid_argument on an empty name,
  /// a missing workload closure, or a name collision — silently shadowing
  /// an experiment would corrupt every downstream aggregate.
  void add(ScenarioSpec spec);

  /// Registers the renderer that turns a group's results back into the
  /// figure/table text. Throws std::invalid_argument on collision.
  void set_renderer(const std::string& group, GroupRenderer render);

  const std::vector<ScenarioSpec>& scenarios() const { return scenarios_; }

  /// Indices (registration order) of scenarios whose name or group matches
  /// the glob.
  std::vector<std::size_t> match(const std::string& pattern) const;

  /// nullptr if absent.
  const ScenarioSpec* find(const std::string& name) const;
  const GroupRenderer* renderer(const std::string& group) const;

  /// Distinct group names in first-registration order.
  std::vector<std::string> groups() const;

 private:
  std::vector<ScenarioSpec> scenarios_;
  std::map<std::string, std::size_t> by_name_;
  std::map<std::string, GroupRenderer> renderers_;
};

}  // namespace gridsim::harness
