// Communication-trace record & replay.
//
// The paper's authors "ran each NAS with a modified MPI implementation to
// find their communication pattern" (Section 3.1). This module does the
// same: record every application payload of a run (sender, receiver,
// size, tag, timestamp) and replay the trace on a different configuration
// — a different implementation profile, tuning level, or topology —
// preserving the original compute gaps between a rank's sends
// (time-independent trace replay).
//
// Replay semantics: each rank re-issues its sends in recorded order,
// sleeping the recorded inter-send interval first, while a companion
// coroutine posts receives for every message addressed to the rank in the
// senders' timestamp order. Payload matching relies on MPI non-overtaking
// per (source, tag), which the engine guarantees.
#pragma once

#include <iosfwd>
#include <vector>

#include "npb/npb.hpp"
#include "profiles/profiles.hpp"
#include "simcore/time.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::harness {

struct RecordedMessage {
  SimTime at = 0;  ///< send timestamp in the recorded run
  int src = 0;
  int dst = 0;
  double bytes = 0;
  int tag = 0;
};

struct CommTrace {
  int nranks = 0;
  std::vector<RecordedMessage> messages;  ///< in send-timestamp order

  /// Plain-text serialisation: one "at src dst bytes tag" line per message.
  void save(std::ostream& out) const;
  static CommTrace load(std::istream& in);
};

/// Runs one NPB kernel and records its communication trace.
CommTrace record_npb(const topo::GridSpec& spec, int nranks, npb::Kernel k,
                     npb::Class c, const profiles::ExperimentConfig& cfg);

struct ReplayResult {
  SimTime makespan = 0;
};

/// Replays a trace on `spec` with `cfg` (block placement).
ReplayResult replay_trace(const CommTrace& trace, const topo::GridSpec& spec,
                          const profiles::ExperimentConfig& cfg);

}  // namespace gridsim::harness
