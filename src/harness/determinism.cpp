#include "harness/determinism.hpp"

#include <cstring>
#include <stdexcept>

#include "apps/ray2mesh.hpp"
#include "harness/npb_campaign.hpp"
#include "harness/pingpong.hpp"
#include "npb/npb.hpp"
#include "profiles/profiles.hpp"
#include "simcore/check.hpp"
#include "simcore/simulation.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::harness {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

void fold_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fold_u64(std::uint64_t& h, std::uint64_t v) { fold_bytes(h, &v, 8); }

void fold_string(std::uint64_t& h, const std::string& s) {
  fold_u64(h, s.size());
  fold_bytes(h, s.data(), s.size());
}

/// The value field is hashed by bit pattern, not by rounded text rendering:
/// a single ULP of nondeterministic drift must change the digest.
void fold_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  fold_u64(h, bits);
}

/// Enables every trace category and wires digest collection. `out` must
/// outlive the scenario run.
SimHooks tracing_hooks(std::uint64_t seed, AuditRun* out) {
  SimHooks hooks;
  hooks.on_start = [](Simulation& sim) {
    for (std::uint8_t k = 0;
         k < static_cast<std::uint8_t>(TraceKind::kKindCount); ++k) {
      sim.tracer().enable(static_cast<TraceKind>(k));
    }
  };
  hooks.on_finish = [seed, out](Simulation& sim) {
    out->events = sim.tracer().size();
    out->final_time = sim.now();
    std::uint64_t h = trace_digest(sim.tracer(), seed ^ 0xCBF29CE484222325ULL);
    // Fold in the engine's final state: a run that diverges only in event
    // count or end time (identical trace prefix) must still be caught.
    fold_u64(h, sim.events_processed());
    fold_u64(h, static_cast<std::uint64_t>(sim.now()));
    out->digest = h;
  };
  return hooks;
}

void run_pingpong(const SimHooks& hooks) {
  const auto cfg = profiles::configure(profiles::mpich2(),
                                       profiles::TuningLevel::kFullyTuned);
  PingpongOptions opt;
  opt.sizes = pow2_sizes(1024, 1024 * 1024);
  opt.rounds = 4;
  (void)pingpong_sweep(topo::GridSpec::rennes_nancy(1), {0, 0, 1, 0}, cfg,
                       opt, hooks);
}

void run_nas(const SimHooks& hooks) {
  const auto cfg = profiles::configure(profiles::mpich2(),
                                       profiles::TuningLevel::kTcpTuned);
  (void)run_npb(topo::GridSpec::rennes_nancy(2), 4, npb::Kernel::kCG,
                npb::Class::kS, cfg, /*timeout=*/0, hooks);
}

void run_ray2mesh_scenario(const SimHooks& hooks) {
  const auto cfg = profiles::configure(profiles::gridmpi(),
                                       profiles::TuningLevel::kTcpTuned);
  apps::Ray2MeshConfig app;
  app.total_rays = 20'000;  // 20 sets: enough scheduling to be interesting
  app.merge_traffic_bytes = 2e6;
  app.merge_compute_seconds = 2.0;
  app.init_write_seconds = 1.0;
  (void)apps::run_ray2mesh(topo::GridSpec::ray2mesh_quad(2), 0, cfg, app,
                           hooks);
}

}  // namespace

std::uint64_t trace_digest(const Tracer& tracer, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const TraceEvent& e : tracer.events()) fold_trace_event(h, e);
  return h;
}

void fold_digest(std::uint64_t& h, std::uint64_t v) { fold_u64(h, v); }

void fold_trace_event(std::uint64_t& h, const TraceEvent& e) {
  fold_u64(h, static_cast<std::uint64_t>(e.at));
  fold_u64(h, static_cast<std::uint64_t>(e.kind));
  fold_string(h, e.subject);
  fold_double(h, e.value);
  fold_string(h, e.detail);
}

std::vector<std::string> audit_scenario_names() {
  return {"pingpong", "nas", "ray2mesh"};
}

AuditRun run_audit_scenario(const std::string& name, std::uint64_t seed) {
  AuditRun out;
  const SimHooks hooks = tracing_hooks(seed, &out);
  if (name == "pingpong") {
    run_pingpong(hooks);
  } else if (name == "nas") {
    run_nas(hooks);
  } else if (name == "ray2mesh") {
    run_ray2mesh_scenario(hooks);
  } else {
    throw std::invalid_argument("unknown audit scenario: " + name);
  }
  GRIDSIM_CHECK(out.events > 0,
                "audit scenario '%s' produced an empty trace", name.c_str());
  return out;
}

AuditResult audit_determinism(const std::string& name, std::uint64_t seed) {
  AuditResult r;
  r.scenario = name;
  r.first = run_audit_scenario(name, seed);
  r.second = run_audit_scenario(name, seed);
  r.deterministic = r.first.digest == r.second.digest &&
                    r.first.events == r.second.events &&
                    r.first.final_time == r.second.final_time;
  return r;
}

}  // namespace gridsim::harness
