#include "harness/scenario.hpp"

#include <stdexcept>

namespace gridsim::harness {

double ScenarioResult::metric(const std::string& name) const {
  for (const Metric& m : metrics)
    if (m.name == name) return m.value;
  throw std::out_of_range("no metric named '" + name + "'");
}

bool ScenarioResult::has_metric(const std::string& name) const {
  for (const Metric& m : metrics)
    if (m.name == name) return true;
  return false;
}

bool glob_match(const std::string& pattern, const std::string& text) {
  // Iterative matcher with the classic star-backtracking trick: remember
  // the last `*` and the text position it matched up to, and on mismatch
  // let the star absorb one more character.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  if (spec.name.empty())
    throw std::invalid_argument("scenario with empty name");
  if (!spec.run)
    throw std::invalid_argument("scenario '" + spec.name +
                                "' has no workload closure");
  if (by_name_.count(spec.name) != 0)
    throw std::invalid_argument("duplicate scenario name '" + spec.name +
                                "'");
  if (spec.group.empty()) spec.group = spec.name;
  by_name_[spec.name] = scenarios_.size();
  scenarios_.push_back(std::move(spec));
}

void ScenarioRegistry::set_renderer(const std::string& group,
                                    GroupRenderer render) {
  if (!render)
    throw std::invalid_argument("null renderer for group '" + group + "'");
  if (renderers_.count(group) != 0)
    throw std::invalid_argument("duplicate renderer for group '" + group +
                                "'");
  renderers_[group] = std::move(render);
}

std::vector<std::size_t> ScenarioRegistry::match(
    const std::string& pattern) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    const ScenarioSpec& s = scenarios_[i];
    if (glob_match(pattern, s.name) || glob_match(pattern, s.group))
      out.push_back(i);
  }
  return out;
}

const ScenarioSpec* ScenarioRegistry::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &scenarios_[it->second];
}

const GroupRenderer* ScenarioRegistry::renderer(
    const std::string& group) const {
  const auto it = renderers_.find(group);
  return it == renderers_.end() ? nullptr : &it->second;
}

std::vector<std::string> ScenarioRegistry::groups() const {
  std::vector<std::string> out;
  for (const ScenarioSpec& s : scenarios_) {
    bool seen = false;
    for (const auto& g : out) seen = seen || g == s.group;
    if (!seen) out.push_back(s.group);
  }
  return out;
}

}  // namespace gridsim::harness
