#include "simcore/simulation.hpp"

#include <cstdio>
#include <cstdlib>

namespace gridsim {

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "gridsim: unhandled exception in spawned process: %s\n",
               what);
  std::abort();
}

// Fire-and-forget driver coroutine. Its frame owns the user task; the frame
// self-destroys at completion (final_suspend = suspend_never).
struct Detached {
  struct promise_type {
    Detached get_return_object() {
      return Detached{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { die("exception escaped driver"); }
  };
  std::coroutine_handle<> handle;
};

Detached drive_impl(Task<void> user, int* live_counter) {
  try {
    co_await std::move(user);
  } catch (const std::exception& e) {
    die(e.what());
  } catch (...) {
    die("(non-std::exception)");
  }
  --*live_counter;
}

}  // namespace

Simulation::Simulation() {
  detail::install_check_context(this, &Simulation::check_context_of);
}

Simulation::~Simulation() { detail::uninstall_check_context(this); }

CheckContext Simulation::check_context_of(const void* self) {
  const auto* sim = static_cast<const Simulation*>(self);
  return CheckContext{sim->now_, sim->live_processes_, sim->queue_.size()};
}

void Simulation::spawn(Task<void> task) {
  if (!task.valid())
    throw std::invalid_argument("Simulation::spawn: empty task");
  ++live_processes_;
  Detached d = drive_impl(std::move(task), &live_processes_);
  post([h = d.handle] { h.resume(); });
}

SimTime Simulation::run() {
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++events_processed_;
  }
  return now_;
}

bool Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.next_time() <= t) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++events_processed_;
  }
  now_ = t;
  return !queue_.empty();
}

}  // namespace gridsim
