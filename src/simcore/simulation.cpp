#include "simcore/simulation.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace gridsim {

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "gridsim: unhandled exception in spawned process: %s\n",
               what);
  std::abort();
}

// Fire-and-forget driver coroutine. Its frame owns the user task; the frame
// self-destroys at completion (final_suspend = suspend_never).
struct Detached {
  struct promise_type {
    Detached get_return_object() {
      return Detached{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { die("exception escaped driver"); }
  };
  std::coroutine_handle<> handle;
};

Detached drive_impl(Task<void> user, int* live_counter) {
  try {
    co_await std::move(user);
  } catch (const std::exception& e) {
    die(e.what());
  } catch (...) {
    die("(non-std::exception)");
  }
  --*live_counter;
}

}  // namespace

Simulation::Simulation() {
  detail::install_check_context(this, &Simulation::check_context_of);
}

Simulation::~Simulation() { detail::uninstall_check_context(this); }

CheckContext Simulation::check_context_of(const void* self) {
  const auto* sim = static_cast<const Simulation*>(self);
  return CheckContext{sim->now_, sim->live_processes_, sim->queue_.size()};
}

void Simulation::spawn(Task<void> task) {
  if (!task.valid())
    throw std::invalid_argument("Simulation::spawn: empty task");
  ++live_processes_;
  Detached d = drive_impl(std::move(task), &live_processes_);
  post([h = d.handle] { h.resume(); });
}

SimTime Simulation::run() {
  for (;;) {
    while (!queue_.empty()) {
      now_ = queue_.next_time();
      queue_.run_next();
      ++events_processed_;
      maybe_check_wall_deadline();
    }
    if (live_processes_ == 0) return now_;
    // Quiescent with suspended processes: no queued event can ever resume
    // them. Idle hooks (the model-checker's deferred wildcard matching) get
    // one chance to schedule new work; otherwise this is a deadlock.
    if (wall_deadline_armed_) check_wall_deadline();
    if (!resolve_idle()) throw_deadlock();
  }
}

bool Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.next_time() <= t) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++events_processed_;
    maybe_check_wall_deadline();
  }
  now_ = t;
  return !queue_.empty();
}

std::uint64_t Simulation::add_idle_hook(IdleHook hook) {
  const std::uint64_t id = next_hook_id_++;
  idle_hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Simulation::remove_idle_hook(std::uint64_t id) {
  idle_hooks_.erase(
      std::remove_if(idle_hooks_.begin(), idle_hooks_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      idle_hooks_.end());
}

std::uint64_t Simulation::add_blocked_reporter(BlockedReporter reporter) {
  const std::uint64_t id = next_hook_id_++;
  blocked_reporters_.emplace_back(id, std::move(reporter));
  return id;
}

void Simulation::remove_blocked_reporter(std::uint64_t id) {
  blocked_reporters_.erase(
      std::remove_if(blocked_reporters_.begin(), blocked_reporters_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      blocked_reporters_.end());
}

bool Simulation::resolve_idle() {
  for (auto& [id, hook] : idle_hooks_) {
    if (hook()) return true;
  }
  return false;
}

void Simulation::throw_deadlock() {
  std::vector<std::string> blocked;
  for (auto& [id, reporter] : blocked_reporters_) reporter(&blocked);
  std::string what = "deadlock: event queue drained with " +
                     std::to_string(live_processes_) +
                     " live process(es) at t=" + std::to_string(now_) + " ns";
  if (blocked.empty()) {
    what += " (no blocked-state reporters registered)";
  } else {
    for (const std::string& line : blocked) what += "\n  " + line;
  }
  throw DeadlockError(what, std::move(blocked));
}

void Simulation::check_wall_deadline() {
  if (std::chrono::steady_clock::now() < wall_deadline_) return;
  wall_deadline_armed_ = false;  // throw once, not from every later check
  throw TimeoutError("wall-clock budget exceeded at virtual time " +
                     std::to_string(now_) + " ns (" +
                     std::to_string(events_processed_) +
                     " events processed)");
}

}  // namespace gridsim
