#include "simcore/time.hpp"

#include <cstdio>

namespace gridsim {

std::string format_time(SimTime t) {
  char buf[64];
  if (t == kSimTimeNever) return "never";
  if (t < microseconds(10)) {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(t));
  } else if (t < milliseconds(10)) {
    std::snprintf(buf, sizeof buf, "%.3f us", to_microseconds(t));
  } else if (t < seconds(10)) {
    std::snprintf(buf, sizeof buf, "%.3f ms", to_milliseconds(t));
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", to_seconds(t));
  }
  return buf;
}

}  // namespace gridsim
