#include "simcore/event_queue.hpp"

#include <cassert>

namespace gridsim {

void EventQueue::schedule(SimTime t, std::function<void()> fn) {
  assert(fn);
  heap_.push(Entry{t, next_seq_++, std::move(fn)});
}

SimTime EventQueue::next_time() const {
  return heap_.empty() ? kSimTimeNever : heap_.top().time;
}

SimTime EventQueue::run_next() {
  assert(!heap_.empty());
  // Move the callback out before popping; the const_cast is safe because the
  // entry is removed before anything can observe the moved-from state.
  auto& top = const_cast<Entry&>(heap_.top());
  const SimTime t = top.time;
  std::function<void()> fn = std::move(top.fn);
  heap_.pop();
  fn();
  return t;
}

}  // namespace gridsim
