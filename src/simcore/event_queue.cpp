#include "simcore/event_queue.hpp"

#include "simcore/check.hpp"

namespace gridsim {

void EventQueue::schedule(SimTime t, std::function<void()> fn) {
  GRIDSIM_CHECK(fn != nullptr, "EventQueue::schedule: null callback");
  GRIDSIM_CHECK(t >= floor_,
                "EventQueue::schedule: time travels backwards (t=%lld ns, "
                "last executed event at %lld ns)",
                static_cast<long long>(t), static_cast<long long>(floor_));
  heap_.push(Entry{t, next_seq_++, std::move(fn)});
}

SimTime EventQueue::next_time() const {
  return heap_.empty() ? kSimTimeNever : heap_.top().time;
}

SimTime EventQueue::run_next() {
  GRIDSIM_CHECK(!heap_.empty(), "EventQueue::run_next on an empty queue");
  // Move the callback out before popping; the const_cast is safe because the
  // entry is removed before anything can observe the moved-from state.
  auto& top = const_cast<Entry&>(heap_.top());
  const SimTime t = top.time;
  std::function<void()> fn = std::move(top.fn);
  heap_.pop();
  floor_ = t;
  fn();
  return t;
}

}  // namespace gridsim
