#include "simcore/event_queue.hpp"

namespace gridsim {

void EventQueue::sift_up(std::size_t idx) {
  if (idx == 0) return;
  std::size_t parent = (idx - 1) / 4;
  if (!before(heap_[idx], heap_[parent])) return;
  const Key key = heap_[idx];
  do {
    heap_[idx] = heap_[parent];
    idx = parent;
    parent = (idx - 1) / 4;
  } while (idx > 0 && before(key, heap_[parent]));
  heap_[idx] = key;
}

void EventQueue::pop_root() {
  const Key last = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  const std::size_t n = heap_.size();
  std::size_t idx = 0;
  for (;;) {
    const std::size_t first_child = idx * 4 + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], last)) break;
    heap_[idx] = heap_[best];
    idx = best;
  }
  heap_[idx] = last;
}

}  // namespace gridsim
