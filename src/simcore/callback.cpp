#include "simcore/callback.hpp"

namespace gridsim {

namespace {

// Payloads up to one pool block ride the free list; the block is a union so
// a free block stores its own next pointer. 128 bytes covers every capture
// the simulator schedules today with room to spare (the common oversized
// case is a captured std::function at ~32-48 bytes plus context).
constexpr std::size_t kPoolBlockSize = 128;

union Block {
  Block* next;
  alignas(std::max_align_t) std::byte bytes[kPoolBlockSize];
};

// The engine is single-threaded per simulation; thread_local keeps the pool
// lock-free while staying correct if tests ever run simulations on several
// threads. The destructor returns pooled blocks so leak checkers stay green.
struct Pool {
  Block* free_list = nullptr;
  ~Pool() {
    while (free_list != nullptr) {
      Block* b = free_list;
      free_list = b->next;
      ::operator delete(b);
    }
  }
};

thread_local Pool g_pool;
thread_local CallbackStats g_stats;

}  // namespace

namespace detail {

void* callback_alloc(std::size_t size) {
  ++g_stats.heap_payloads;
  if (size <= kPoolBlockSize) {
    if (Block* b = g_pool.free_list; b != nullptr) {
      g_pool.free_list = b->next;
      return b;
    }
    ++g_stats.pool_misses;
    return ::operator new(sizeof(Block));
  }
  ++g_stats.pool_misses;
  return ::operator new(size);
}

void callback_free(void* p, std::size_t size) noexcept {
  if (size <= kPoolBlockSize) {
    Block* b = static_cast<Block*>(p);
    b->next = g_pool.free_list;
    g_pool.free_list = b;
  } else {
    ::operator delete(p);
  }
}

}  // namespace detail

CallbackStats callback_stats() noexcept { return g_stats; }

void reset_callback_stats() noexcept { g_stats = CallbackStats{}; }

}  // namespace gridsim
