// Structured event tracing.
//
// Each Simulation owns a Tracer; components record typed events (message
// sends, congestion-window samples, loss events, flow lifecycle) when the
// corresponding category is enabled. Disabled categories cost one branch.
// Traces can be dumped as CSV for offline plotting (e.g. the cwnd
// trajectories behind Fig 9).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace gridsim {

enum class TraceKind : std::uint8_t {
  kMessage = 0,  ///< MPI-level payload send
  kCwnd,         ///< congestion window sample (bytes)
  kLoss,         ///< TCP loss event (cwnd before the loss)
  kFlow,         ///< fluid flow start/finish (bytes)
  kPhase,        ///< application phase marker
  kFault,        ///< injected fault or degraded-progress event (simfault)
  kKindCount,
};

std::string to_string(TraceKind kind);

struct TraceEvent {
  SimTime at = 0;
  TraceKind kind = TraceKind::kMessage;
  std::string subject;  ///< e.g. "rank0->rank3" or "tcp a->b"
  double value = 0;     ///< kind-specific: bytes, cwnd, ...
  std::string detail;
};

class Tracer {
 public:
  /// Streaming consumer of enabled events. With an observer installed and
  /// storage off, long campaigns can digest every event in O(1) memory
  /// instead of buffering the whole trace.
  using Observer = std::function<void(const TraceEvent&)>;

  void enable(TraceKind kind) { enabled_[index(kind)] = true; }
  void disable(TraceKind kind) { enabled_[index(kind)] = false; }
  bool enabled(TraceKind kind) const { return enabled_[index(kind)]; }

  /// Installs (or, with an empty function, removes) the streaming observer.
  /// It sees every enabled event in record order, before storage.
  void set_observer(Observer fn) { observer_ = std::move(fn); }
  /// Controls whether enabled events are appended to `events()` (default
  /// on). Turning storage off does not affect the observer or `seen()`.
  void set_storage(bool on) { store_ = on; }

  void record(SimTime at, TraceKind kind, std::string subject, double value,
              std::string detail = {}) {
    if (!enabled(kind)) return;
    ++seen_;
    TraceEvent e{at, kind, std::move(subject), value, std::move(detail)};
    if (observer_) observer_(e);
    if (store_) events_.push_back(std::move(e));
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  /// Enabled events recorded over the tracer's lifetime, stored or not.
  std::uint64_t seen() const { return seen_; }
  void clear() { events_.clear(); }

  /// Events of one kind, in record order.
  std::vector<TraceEvent> of_kind(TraceKind kind) const;

  /// CSV dump: time_s,kind,subject,value,detail
  void write_csv(std::ostream& out) const;

 private:
  static std::size_t index(TraceKind kind) {
    return static_cast<std::size_t>(kind);
  }
  bool enabled_[static_cast<std::size_t>(TraceKind::kKindCount)] = {};
  bool store_ = true;
  std::uint64_t seen_ = 0;
  Observer observer_;
  std::vector<TraceEvent> events_;
};

}  // namespace gridsim
