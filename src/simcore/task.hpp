// C++20 coroutine task type used to write simulated processes.
//
// A `Task<T>` is a lazy coroutine: it starts when awaited and resumes its
// awaiter by symmetric transfer when it finishes, so nested calls
// (`co_await sub_step()`) compose with zero scheduling overhead. Root
// processes are started with `Simulation::spawn`, which drives a task to
// completion through the event queue.
//
// Exceptions thrown inside a task propagate to the awaiter; an exception
// escaping a *spawned* (detached) task terminates the simulation, because a
// simulated process with no parent has nowhere to report failure.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>

#include "simcore/check.hpp"

namespace gridsim {

template <typename T>
class Task;

namespace detail {

class TaskPromiseBase {
 public:
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
};

template <typename T>
class TaskPromise final : public TaskPromiseBase {
 public:
  Task<T> get_return_object() noexcept;
  void return_value(T value) { value_ = std::move(value); }
  void unhandled_exception() { exception_ = std::current_exception(); }

  T take_result() {
    if (exception_) std::rethrow_exception(exception_);
    return std::move(value_);
  }

 private:
  T value_{};
  std::exception_ptr exception_;
};

template <>
class TaskPromise<void> final : public TaskPromiseBase {
 public:
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
  void unhandled_exception() { exception_ = std::current_exception(); }

  void take_result() {
    if (exception_) std::rethrow_exception(exception_);
  }

 private:
  std::exception_ptr exception_;
};

}  // namespace detail

/// Lazy coroutine returning T. Move-only; owns its coroutine frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) {
      // Destroying a task someone is awaiting would leave the awaiter's
      // handle dangling — its later resume would be use-after-free.
      GRIDSIM_DCHECK(handle_.done() || !handle_.promise().continuation,
                     "Task destroyed while a coroutine is awaiting it");
      handle_.destroy();
    }
  }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  /// Awaiting a task starts it and suspends the awaiter until it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // symmetric transfer: start the child now
      }
      T await_resume() {
        GRIDSIM_CHECK(static_cast<bool>(handle),
                      "co_await on an empty (moved-from) Task");
        return handle.promise().take_result();
      }
    };
    return Awaiter{handle_};
  }

  /// Escape hatch for the spawn driver; most code should co_await instead.
  Handle release() noexcept { return std::exchange(handle_, {}); }

 private:
  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace gridsim
