#include "simcore/trace.hpp"

namespace gridsim {

std::string to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kMessage: return "message";
    case TraceKind::kCwnd: return "cwnd";
    case TraceKind::kLoss: return "loss";
    case TraceKind::kFlow: return "flow";
    case TraceKind::kPhase: return "phase";
    case TraceKind::kFault: return "fault";
    case TraceKind::kKindCount: break;
  }
  return "?";
}

std::vector<TraceEvent> Tracer::of_kind(TraceKind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_)
    if (e.kind == kind) out.push_back(e);
  return out;
}

void Tracer::write_csv(std::ostream& out) const {
  out << "time_s,kind,subject,value,detail\n";
  for (const auto& e : events_) {
    out << to_seconds(e.at) << ',' << to_string(e.kind) << ',' << e.subject
        << ',' << e.value << ',' << e.detail << '\n';
  }
}

}  // namespace gridsim
