#include "simcore/check.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace gridsim::detail {

namespace {

struct ContextEntry {
  const void* self;
  CheckContextFn fn;
};

// Each engine is single-threaded, but the campaign runner executes several
// engines on concurrent worker threads, so the diagnostic stack must be
// per-thread (an engine installs and uninstalls itself from the thread it
// runs on). A function-local static avoids initialisation-order issues for
// checks that fire during static construction.
std::vector<ContextEntry>& context_stack() {
  thread_local std::vector<ContextEntry> stack;
  return stack;
}

}  // namespace

void install_check_context(const void* self, CheckContextFn fn) {
  context_stack().push_back(ContextEntry{self, fn});
}

void uninstall_check_context(const void* self) {
  auto& stack = context_stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->self == self) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

namespace {

[[noreturn]] void check_failed_impl(const char* file, int line,
                                    const char* expr, const char* message);

}  // namespace

void check_failed(const char* file, int line, const char* expr) {
  check_failed_impl(file, line, expr, nullptr);
}

void check_failed(const char* file, int line, const char* expr,
                  const char* fmt, ...) {
  char message[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(message, sizeof(message), fmt, args);
  va_end(args);
  check_failed_impl(file, line, expr, message);
}

namespace {

void check_failed_impl(const char* file, int line, const char* expr,
                       const char* message) {
  std::fprintf(stderr, "\n*** GRIDSIM_CHECK failed: %s\n***   at %s:%d\n",
               expr, file, line);
  if (message != nullptr && message[0] != '\0') {
    std::fprintf(stderr, "***   %s\n", message);
  }
  const auto& stack = context_stack();
  if (!stack.empty()) {
    const ContextEntry& top = stack.back();
    const CheckContext ctx = top.fn(top.self);
    std::fprintf(stderr,
                 "***   sim-time=%lld ns (%.9f s), live-processes=%d, "
                 "event-queue-depth=%zu\n",
                 static_cast<long long>(ctx.sim_time_ns),
                 static_cast<double>(ctx.sim_time_ns) * 1e-9,
                 ctx.live_processes, ctx.queue_depth);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

}  // namespace gridsim::detail
