// Deterministic pending-event set.
//
// Events at equal timestamps fire in insertion order (FIFO), which makes the
// whole simulation reproducible regardless of heap implementation details.
//
// The store is a hand-rolled 4-ary min-heap over small (time, seq, slot)
// keys; the callback payloads live in a side slot array recycled through a
// free list, so sift operations shuffle 24-byte trivially-copyable keys and
// never touch the payloads. Keys are unique (seq is a monotone counter), so
// the pop order — and therefore the determinism digest — is a pure function
// of the schedule() call sequence, independent of heap arity or sift
// details. 4-ary beats binary here: half the levels per sift and the four
// children of a node share a cache line pair.
//
// Payloads are a small-buffer-optimized `Callback` (simcore/callback.hpp):
// captures of up to 48 trivially-copyable bytes are stored inline, so the
// common path performs no heap allocation at all; larger captures come from
// a pooled free list. `callback_stats()` counts the spills.
//
// There is deliberately no cancel(): components that need to invalidate a
// scheduled event (e.g. a fluid-flow completion that a rate change made
// stale) guard their callback with a generation counter instead. This keeps
// the queue allocation-free per event and the common path fast.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "simcore/callback.hpp"
#include "simcore/check.hpp"
#include "simcore/time.hpp"

namespace gridsim {

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`.
  void schedule(SimTime t, Callback fn) {
    GRIDSIM_CHECK(static_cast<bool>(fn), "EventQueue::schedule: null callback");
    GRIDSIM_CHECK(t >= floor_,
                  "EventQueue::schedule: time travels backwards (t=%lld ns, "
                  "last executed event at %lld ns)",
                  static_cast<long long>(t), static_cast<long long>(floor_));
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::move(fn));
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(fn);
    }
    heap_.push_back(Key{t, next_seq_++, slot});
    sift_up(heap_.size() - 1);
    if (heap_.size() > peak_size_) peak_size_ = heap_.size();
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// High-water mark of size() over the queue's lifetime.
  std::size_t peak_size() const noexcept { return peak_size_; }

  /// Timestamp of the next event; kSimTimeNever when empty.
  SimTime next_time() const noexcept {
    return heap_.empty() ? kSimTimeNever : heap_.front().time;
  }

  /// Pops and runs the next event; returns its timestamp.
  /// Precondition: !empty().
  SimTime run_next() {
    GRIDSIM_CHECK(!heap_.empty(), "EventQueue::run_next on an empty queue");
    const Key top = heap_.front();
    // Detach the payload and retire the slot and key before invoking: the
    // callback may schedule new events and must never observe its own
    // half-removed entry.
    Callback fn = std::move(slots_[top.slot]);
    free_slots_.push_back(top.slot);
    pop_root();
    floor_ = top.time;
    fn();
    return top.time;
  }

  /// Timestamp of the most recently executed event. No later schedule()
  /// may target an earlier time — the engine's time-monotonicity floor.
  SimTime floor() const noexcept { return floor_; }

 private:
  struct Key {
    SimTime time;
    std::uint64_t seq;   // FIFO tiebreaker for equal timestamps
    std::uint32_t slot;  // index of the payload in slots_
  };

  static bool before(const Key& a, const Key& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t idx);
  /// Removes the root key and restores the heap property.
  void pop_root();

  std::vector<Key> heap_;  // 4-ary min-heap; children of i: 4i+1 .. 4i+4
  std::vector<Callback> slots_;           // payloads, addressed by Key::slot
  std::vector<std::uint32_t> free_slots_;  // recycled slot indices
  std::uint64_t next_seq_ = 0;
  std::size_t peak_size_ = 0;
  SimTime floor_ = 0;
};

}  // namespace gridsim
