// Deterministic pending-event set.
//
// Events at equal timestamps fire in insertion order (FIFO), which makes the
// whole simulation reproducible regardless of heap implementation details.
//
// There is deliberately no cancel(): components that need to invalidate a
// scheduled event (e.g. a fluid-flow completion that a rate change made
// stale) guard their callback with a generation counter instead. This keeps
// the queue allocation-free per event and the common path fast.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "simcore/time.hpp"

namespace gridsim {

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`.
  void schedule(SimTime t, std::function<void()> fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Timestamp of the next event; kSimTimeNever when empty.
  SimTime next_time() const;

  /// Pops and runs the next event; returns its timestamp.
  /// Precondition: !empty().
  SimTime run_next();

  /// Timestamp of the most recently executed event. No later schedule()
  /// may target an earlier time — the engine's time-monotonicity floor.
  SimTime floor() const { return floor_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // FIFO tiebreaker for equal timestamps
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime floor_ = 0;
};

}  // namespace gridsim
