// Runtime invariant checks for the simulation engine.
//
// `GRIDSIM_CHECK(cond)` / `GRIDSIM_CHECK(cond, "fmt", args...)` abort with
// the failed expression, file:line, an optional printf-style message and —
// when a Simulation is live — a snapshot of the engine state (virtual time,
// live-process count, event-queue depth). The snapshot is what makes a
// failure actionable: a dangling-coroutine resume or a conservation
// violation is meaningless without knowing *when* in virtual time it fired
// and how much work was still pending.
//
// `GRIDSIM_CHECK` is always on; use it for invariants whose violation would
// silently corrupt results (time monotonicity, byte conservation, matching
// of rendez-vous handshakes). `GRIDSIM_DCHECK` compiles to nothing unless
// `GRIDSIM_ENABLE_DCHECKS` is defined (Debug and sanitizer builds define
// it); use it on hot paths.
//
// Aborting (rather than throwing) is deliberate: a violated engine
// invariant means the simulation state is already wrong, and gtest death
// tests can assert on the diagnostic.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/lsan_interface.h>
#endif

namespace gridsim {

/// Snapshot of engine state printed alongside a failed check.
struct CheckContext {
  std::int64_t sim_time_ns = -1;
  int live_processes = -1;
  std::size_t queue_depth = 0;
};

/// RAII region whose heap allocations LeakSanitizer ignores. Abandoning a
/// running simulation (timing out an NPB run, destroying an engine with a
/// non-empty queue) leaves the suspended coroutine frames of its processes
/// unreachable: detached driver frames only self-destroy when the event
/// loop drains them. Callers that abandon a run *on purpose* wrap the run
/// in this guard; everything else keeps full leak detection. No-op when
/// AddressSanitizer is not enabled.
class ScopedLeakExemption {
 public:
#if defined(__SANITIZE_ADDRESS__)
  ScopedLeakExemption() { __lsan_disable(); }
  ~ScopedLeakExemption() { __lsan_enable(); }
#else
  ScopedLeakExemption() = default;
  ~ScopedLeakExemption() = default;
#endif
  ScopedLeakExemption(const ScopedLeakExemption&) = delete;
  ScopedLeakExemption& operator=(const ScopedLeakExemption&) = delete;
};

/// Tolerant `value <= bound` for conservation invariants over sums of
/// floating-point shares: true when `value` exceeds `bound` by no more than
/// `rel_tol * |bound|`. The network layer checks per-link rate conservation
/// with this after every incremental component re-solve (the sum of N fair
/// shares accumulates N rounding steps, so exact comparison is wrong).
constexpr bool approx_le(double value, double bound, double rel_tol = 1e-9) {
  const double abs_bound = bound < 0 ? -bound : bound;
  return value <= bound + rel_tol * abs_bound;
}

namespace detail {

/// Produces a CheckContext for the installing object (a live Simulation).
using CheckContextFn = CheckContext (*)(const void* self);

/// Registers `self` as the innermost live engine; nestable (LIFO).
void install_check_context(const void* self, CheckContextFn fn);
/// Removes `self` from the registry (any position; latest match wins).
void uninstall_check_context(const void* self);

[[noreturn]] void check_failed(const char* file, int line, const char* expr);
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace detail
}  // namespace gridsim

// __VA_OPT__ routes a message-less check to the two-argument overload, so a
// bare GRIDSIM_CHECK(cond) never trips -Wformat-zero-length while checks
// with a message keep full printf format checking.
#define GRIDSIM_CHECK(cond, ...)                                             \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      ::gridsim::detail::check_failed(__FILE__, __LINE__,                    \
                                      #cond __VA_OPT__(, ) __VA_ARGS__);     \
    }                                                                        \
  } while (0)

#if defined(GRIDSIM_ENABLE_DCHECKS)
#define GRIDSIM_DCHECK(cond, ...) \
  GRIDSIM_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#else
// Swallows the condition without evaluating it; sizeof keeps the operands
// name-checked so a DCHECK never rots.
#define GRIDSIM_DCHECK(cond, ...) \
  do {                            \
    (void)sizeof(!(cond));        \
  } while (0)
#endif
