// Small-buffer-optimized callback for the event engine hot path.
//
// Every scheduled event used to carry a `std::function<void()>`, which heap
// allocates for any capture over 16 bytes — and almost every interesting
// simulation callback (a component pointer plus a sequence number plus a
// generation counter) is bigger than that. `Callback` stores captures of up
// to `kCallbackInlineSize` (48) bytes inline, provided they are trivially
// copyable and trivially destructible, which covers every hot callback in
// the simulator. Oversized or non-trivial captures fall back to a pooled
// free list (`detail::callback_alloc`), so even the slow path does not hit
// the global allocator once the pool is warm.
//
// `Callback` is move-only and trivially relocatable by construction: every
// state is either a trivially copyable inline buffer or a raw owning
// pointer, so a move is a 64-byte copy plus nulling the source. The event
// queue exploits this to shuffle heap entries without indirect manager
// calls.
//
// Instrumentation: `callback_stats()` counts how many payloads spilled out
// of the inline buffer and how many pool requests missed the free list and
// had to call `operator new`. `gridsim bench` reports both, so an accidental
// regression of the zero-allocation property shows up in BENCH_micro.json.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace gridsim {

namespace detail {

inline constexpr std::size_t kCallbackInlineSize = 48;

/// Allocates storage for an out-of-line callback payload. Sizes up to the
/// pool block size are served from a free list; larger ones go straight to
/// `operator new`.
void* callback_alloc(std::size_t size);
/// Returns payload storage obtained from `callback_alloc`.
void callback_free(void* p, std::size_t size) noexcept;

}  // namespace detail

/// Allocation counters for the callback payload path (process-wide for the
/// simulating thread; reset with `reset_callback_stats`).
struct CallbackStats {
  std::uint64_t heap_payloads = 0;  ///< callbacks that did not fit inline
  std::uint64_t pool_misses = 0;    ///< heap payloads that hit operator new
};

CallbackStats callback_stats() noexcept;
void reset_callback_stats() noexcept;

/// Move-only type-erased `void()` callable with 48 bytes of inline storage.
class Callback {
 public:
  Callback() noexcept = default;
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function — scheduling reads `sim.at(t, [this] { ... })`.
  Callback(std::nullptr_t) noexcept {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor)
  Callback(F&& f) {  // NOLINT(bugprone-forwarding-reference-overload)
    using Fn = std::decay_t<F>;
    if constexpr (std::is_same_v<Fn, std::function<void()>>) {
      // Preserve std::function's null state so the engine's null-callback
      // check still fires for an empty wrapped function.
      if (!f) return;
    }
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callback captures are not supported");
    if constexpr (sizeof(Fn) <= detail::kCallbackInlineSize &&
                  std::is_trivially_copyable_v<Fn> &&
                  std::is_trivially_destructible_v<Fn> &&
                  alignof(Fn) <= alignof(Storage)) {
      ::new (static_cast<void*>(store_.inline_bytes)) Fn(std::forward<F>(f));
      invoke_ = &invoke_inline<Fn>;
    } else {
      void* mem = detail::callback_alloc(sizeof(Fn));
      try {
        store_.heap = ::new (mem) Fn(std::forward<F>(f));
      } catch (...) {
        detail::callback_free(mem, sizeof(Fn));
        throw;
      }
      invoke_ = &invoke_heap<Fn>;
      destroy_ = &destroy_heap<Fn>;
    }
  }

  // Moves copy the whole union regardless of how much of it the payload
  // uses; the tail bytes are indeterminate but only ever copied as raw
  // bytes, never interpreted. GCC's -Wmaybe-uninitialized cannot see that
  // and warns at inlined call sites, so it is silenced for these two
  // members only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  Callback(Callback&& other) noexcept
      : invoke_(other.invoke_), destroy_(other.destroy_) {
    std::memcpy(&store_, &other.store_, sizeof(store_));
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      if (destroy_ != nullptr) destroy_(&store_);
      invoke_ = other.invoke_;
      destroy_ = other.destroy_;
      std::memcpy(&store_, &other.store_, sizeof(store_));
      other.invoke_ = nullptr;
      other.destroy_ = nullptr;
    }
    return *this;
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() {
    if (destroy_ != nullptr) destroy_(&store_);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// Precondition: non-null.
  void operator()() { invoke_(&store_); }

 private:
  union Storage {
    alignas(std::max_align_t) std::byte inline_bytes[detail::kCallbackInlineSize];
    void* heap;
  };

  template <typename Fn>
  static void invoke_inline(void* s) {
    (*static_cast<Fn*>(s))();
  }
  template <typename Fn>
  static void invoke_heap(void* s) {
    (*static_cast<Fn*>(static_cast<Storage*>(s)->heap))();
  }
  template <typename Fn>
  static void destroy_heap(void* s) noexcept {
    Fn* fn = static_cast<Fn*>(static_cast<Storage*>(s)->heap);
    fn->~Fn();
    detail::callback_free(fn, sizeof(Fn));
  }

  using InvokeFn = void (*)(void*);
  using DestroyFn = void (*)(void*) noexcept;

  InvokeFn invoke_ = nullptr;
  DestroyFn destroy_ = nullptr;  ///< non-null only for heap payloads
  Storage store_;
};

}  // namespace gridsim
