// Deterministic pseudo-random number generation.
//
// std::mt19937 + <random> distributions are not bit-identical across
// standard libraries, so the simulator ships its own xoshiro256** generator
// and distribution helpers. Two runs with the same seed produce identical
// event traces on every platform.
#pragma once

#include <cassert>
#include <cstdint>

namespace gridsim {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9E3779B97f4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full range
    const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
    std::uint64_t v;
    do {
      v = next();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % span);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derives an independent stream (e.g. one per simulated rank).
  Rng split(std::uint64_t stream_id) {
    return Rng(next() ^ (stream_id * 0x9E3779B97f4A7C15ULL));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace gridsim
