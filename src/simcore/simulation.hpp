// The discrete-event simulation engine.
//
// One `Simulation` instance owns virtual time, the pending-event set and the
// root coroutine processes. All coroutine resumption funnels through the
// event queue (FIFO at equal timestamps), so a run is a deterministic
// function of its inputs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>

#include "simcore/callback.hpp"
#include "simcore/check.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"
#include "simcore/trace.hpp"

namespace gridsim {

class Simulation {
 public:
  /// Registers this engine with the GRIDSIM_CHECK diagnostic context, so a
  /// failed invariant anywhere in the process reports sim-time, live-process
  /// count and event-queue depth.
  Simulation();
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedules a callback at absolute virtual time `t` (must be >= now()).
  /// `Callback` stores small trivially-copyable captures inline, so the
  /// common scheduling path performs no heap allocation.
  void at(SimTime t, Callback fn) {
    if (t < now_) throw std::logic_error("Simulation::at: time in the past");
    queue_.schedule(t, std::move(fn));
  }
  /// Schedules a callback `dt` after now().
  void after(SimTime dt, Callback fn) { at(now_ + dt, std::move(fn)); }
  /// Schedules a callback at the current time, after already-queued events
  /// with the same timestamp.
  void post(Callback fn) { at(now_, std::move(fn)); }

  /// Starts a root process. The task begins executing when the event loop
  /// reaches the current timestamp; it is destroyed when it completes.
  void spawn(Task<void> task);

  /// Runs until the event queue is empty. Returns the final virtual time.
  SimTime run();

  /// Runs events with timestamp <= t, then sets now() = t.
  /// Returns true if the queue still has pending events.
  bool run_until(SimTime t);

  /// Number of processes spawned and not yet completed.
  int live_processes() const { return live_processes_; }

  std::uint64_t events_processed() const { return events_processed_; }

  /// Current and high-water pending-event counts (perf observability;
  /// `gridsim bench` records the peak per scenario).
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t peak_queue_depth() const { return queue_.peak_size(); }

  /// Structured event trace (categories disabled by default).
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Awaitable that suspends the current coroutine for `dt` of virtual time.
  auto delay(SimTime dt) {
    struct Awaiter {
      Simulation& sim;
      SimTime dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.after(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

 private:
  struct SpawnState;  // keeps the root task alive until it completes
  static Task<void> drive(Simulation& sim, std::shared_ptr<SpawnState> state);
  static CheckContext check_context_of(const void* self);

  SimTime now_ = 0;
  EventQueue queue_;
  int live_processes_ = 0;
  std::uint64_t events_processed_ = 0;
  Tracer tracer_;
};

/// Optional observation hooks for harness-owned simulations. Scenario
/// runners that construct their Simulation internally call `on_start` right
/// after the engine is built (before any process is spawned) and `on_finish`
/// once the event loop has drained, while the engine is still alive. The
/// determinism auditor uses them to enable tracing and hash the event trace
/// without the runners leaking their engine.
struct SimHooks {
  std::function<void(Simulation&)> on_start;
  std::function<void(Simulation&)> on_finish;
};

}  // namespace gridsim
