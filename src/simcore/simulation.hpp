// The discrete-event simulation engine.
//
// One `Simulation` instance owns virtual time, the pending-event set and the
// root coroutine processes. All coroutine resumption funnels through the
// event queue (FIFO at equal timestamps), so a run is a deterministic
// function of its inputs.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "simcore/callback.hpp"
#include "simcore/check.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"
#include "simcore/trace.hpp"

namespace gridsim {

/// Thrown by Simulation::run() when the event queue drains while spawned
/// processes are still suspended and no idle hook can make progress: no
/// future event exists that could ever resume them, so the simulation has
/// deadlocked. `blocked()` carries one line per blocked operation, collected
/// from registered blocked-state reporters (the MPI engine names the rank,
/// source and tag of every pending receive).
class DeadlockError : public std::runtime_error {
 public:
  DeadlockError(const std::string& what, std::vector<std::string> blocked)
      : std::runtime_error(what), blocked_(std::move(blocked)) {}
  const std::vector<std::string>& blocked() const { return blocked_; }

 private:
  std::vector<std::string> blocked_;
};

/// Thrown from inside the event loop when a wall-clock deadline set via
/// `set_wall_deadline` expires. The campaign runner's per-scenario watchdog
/// (`gridsim campaign --timeout-s N`) catches it and reports the scenario
/// as timed out instead of stalling the whole campaign.
class TimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Simulation {
 public:
  /// Registers this engine with the GRIDSIM_CHECK diagnostic context, so a
  /// failed invariant anywhere in the process reports sim-time, live-process
  /// count and event-queue depth.
  Simulation();
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedules a callback at absolute virtual time `t` (must be >= now()).
  /// `Callback` stores small trivially-copyable captures inline, so the
  /// common scheduling path performs no heap allocation.
  void at(SimTime t, Callback fn) {
    if (t < now_) throw std::logic_error("Simulation::at: time in the past");
    queue_.schedule(t, std::move(fn));
  }
  /// Schedules a callback `dt` after now().
  void after(SimTime dt, Callback fn) { at(now_ + dt, std::move(fn)); }
  /// Schedules a callback at the current time, after already-queued events
  /// with the same timestamp.
  void post(Callback fn) { at(now_, std::move(fn)); }

  /// Starts a root process. The task begins executing when the event loop
  /// reaches the current timestamp; it is destroyed when it completes.
  void spawn(Task<void> task);

  /// Runs until every spawned process has completed (or no process was ever
  /// spawned and the queue drains). Returns the final virtual time.
  ///
  /// If the queue drains while processes are still suspended, registered
  /// idle hooks run in registration order; a hook returning true claims to
  /// have made progress (typically by firing a trigger) and the loop
  /// resumes. If no hook makes progress the run has deadlocked and a
  /// DeadlockError is thrown instead of returning with the wedge hidden.
  SimTime run();

  /// Runs events with timestamp <= t, then sets now() = t.
  /// Returns true if the queue still has pending events. Unlike run(),
  /// never throws DeadlockError: callers use the returned horizon as their
  /// own watchdog (see tests/fault_properties_test.cpp).
  bool run_until(SimTime t);

  /// Registers a quiescence hook consulted by run() when the queue drains
  /// with live processes. Returns an id for remove_idle_hook. The hook must
  /// return true only if it scheduled new work (the model-checker's
  /// deferred wildcard matching resolves one receive per invocation).
  using IdleHook = std::function<bool()>;
  std::uint64_t add_idle_hook(IdleHook hook);
  void remove_idle_hook(std::uint64_t id);

  /// Registers a reporter that appends one human-readable line per blocked
  /// operation when a deadlock is diagnosed. Returns an id for
  /// remove_blocked_reporter.
  using BlockedReporter = std::function<void(std::vector<std::string>*)>;
  std::uint64_t add_blocked_reporter(BlockedReporter reporter);
  void remove_blocked_reporter(std::uint64_t id);

  /// Arms a wall-clock watchdog: once `deadline` passes, the event loop
  /// throws TimeoutError at the next check (every few thousand events, so
  /// the overhead on the hot path is a predicted-not-taken branch).
  void set_wall_deadline(std::chrono::steady_clock::time_point deadline) {
    wall_deadline_ = deadline;
    wall_deadline_armed_ = true;
  }
  void clear_wall_deadline() { wall_deadline_armed_ = false; }

  /// Number of processes spawned and not yet completed.
  int live_processes() const { return live_processes_; }

  std::uint64_t events_processed() const { return events_processed_; }

  /// Current and high-water pending-event counts (perf observability;
  /// `gridsim bench` records the peak per scenario).
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t peak_queue_depth() const { return queue_.peak_size(); }

  /// Structured event trace (categories disabled by default).
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Awaitable that suspends the current coroutine for `dt` of virtual time.
  auto delay(SimTime dt) {
    struct Awaiter {
      Simulation& sim;
      SimTime dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.after(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

 private:
  struct SpawnState;  // keeps the root task alive until it completes
  static Task<void> drive(Simulation& sim, std::shared_ptr<SpawnState> state);
  static CheckContext check_context_of(const void* self);

  bool resolve_idle();
  [[noreturn]] void throw_deadlock();
  void check_wall_deadline();
  void maybe_check_wall_deadline() {
    if (wall_deadline_armed_ && (events_processed_ & 0x3FFFu) == 0)
        [[unlikely]] {
      check_wall_deadline();
    }
  }

  SimTime now_ = 0;
  EventQueue queue_;
  int live_processes_ = 0;
  std::uint64_t events_processed_ = 0;
  Tracer tracer_;
  std::vector<std::pair<std::uint64_t, IdleHook>> idle_hooks_;
  std::vector<std::pair<std::uint64_t, BlockedReporter>> blocked_reporters_;
  std::uint64_t next_hook_id_ = 1;
  bool wall_deadline_armed_ = false;
  std::chrono::steady_clock::time_point wall_deadline_{};
};

/// Optional observation hooks for harness-owned simulations. Scenario
/// runners that construct their Simulation internally call `on_start` right
/// after the engine is built (before any process is spawned) and `on_finish`
/// once the event loop has drained, while the engine is still alive. The
/// determinism auditor uses them to enable tracing and hash the event trace
/// without the runners leaking their engine.
struct SimHooks {
  std::function<void(Simulation&)> on_start;
  std::function<void(Simulation&)> on_finish;
};

}  // namespace gridsim
