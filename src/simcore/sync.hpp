// Coroutine synchronisation primitives for simulated processes.
//
// All wake-ups are posted through the simulation's event queue so that the
// order in which blocked processes resume is deterministic (FIFO per
// primitive, FIFO across primitives fired at the same timestamp).
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "simcore/check.hpp"
#include "simcore/simulation.hpp"

namespace gridsim {

namespace detail {
// Liveness canary for synchronisation primitives. Coroutine code is the
// classic habitat of use-after-destroy bugs: a callback captures `&trigger`,
// the owning coroutine finishes and pops its frame, then the callback fires
// into freed memory. ASan catches that with poisoned heap; the canary
// catches most of it in every build. Debug/sanitizer builds verify it via
// GRIDSIM_DCHECK.
inline constexpr std::uint32_t kAliveCanary = 0xA11FE5A5u;
inline constexpr std::uint32_t kDeadCanary = 0xDEADDEADu;
}  // namespace detail

/// One-shot broadcast event: any number of waiters, released when fire()d.
/// Waiting on an already-fired trigger completes immediately.
class Trigger {
 public:
  explicit Trigger(Simulation& sim) : sim_(sim) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;
  ~Trigger() {
    GRIDSIM_DCHECK(waiters_.empty(),
                   "Trigger destroyed with %zu blocked waiters; they can "
                   "never be resumed",
                   waiters_.size());
    canary_ = detail::kDeadCanary;
  }

  bool fired() const { return fired_; }

  void fire() {
    GRIDSIM_DCHECK(canary_ == detail::kAliveCanary,
                   "Trigger::fire on a destroyed Trigger");
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) sim_.post([h] { h.resume(); });
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Trigger& t;
      bool await_ready() const noexcept { return t.fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        GRIDSIM_DCHECK(t.canary_ == detail::kAliveCanary,
                       "Trigger::wait on a destroyed Trigger");
        t.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulation& sim_;
  bool fired_ = false;
  std::uint32_t canary_ = detail::kAliveCanary;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Single-producer, single-consumer one-shot value. The consumer may wait
/// before or after the value is set.
template <typename T>
class OneShot {
 public:
  explicit OneShot(Simulation& sim) : sim_(sim) {}
  OneShot(const OneShot&) = delete;
  OneShot& operator=(const OneShot&) = delete;
  ~OneShot() {
    GRIDSIM_DCHECK(!waiter_,
                   "OneShot destroyed with a blocked waiter; it can never "
                   "be resumed");
    canary_ = detail::kDeadCanary;
  }

  bool ready() const { return value_.has_value(); }

  void set(T value) {
    GRIDSIM_CHECK(canary_ == detail::kAliveCanary,
                  "OneShot::set on a destroyed OneShot");
    GRIDSIM_CHECK(!value_.has_value(), "OneShot::set called twice");
    value_ = std::move(value);
    if (waiter_) {
      auto h = std::exchange(waiter_, {});
      sim_.post([h] { h.resume(); });
    }
  }

  auto wait() {
    struct Awaiter {
      OneShot& o;
      bool await_ready() const noexcept { return o.value_.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        GRIDSIM_DCHECK(o.canary_ == detail::kAliveCanary,
                       "OneShot::wait on a destroyed OneShot");
        GRIDSIM_CHECK(!o.waiter_, "OneShot supports a single waiter");
        o.waiter_ = h;
      }
      T await_resume() { return std::move(*o.value_); }
    };
    return Awaiter{*this};
  }

 private:
  Simulation& sim_;
  std::optional<T> value_;
  std::uint32_t canary_ = detail::kAliveCanary;
  std::coroutine_handle<> waiter_;
};

/// Unbounded FIFO channel. pop() suspends until an item is available;
/// multiple poppers are served in arrival order.
///
/// Invariant: items_ and waiters_ are never both non-empty — a push with
/// waiters present hands the item directly to the front waiter (reserving it
/// so an intervening pop() cannot steal it before the waiter resumes).
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulation& sim) : sim_(sim) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void push(T item) {
    if (!waiters_.empty()) {
      WaitNode w = waiters_.front();
      waiters_.pop_front();
      *w.slot = std::move(item);
      sim_.post([h = w.handle] { h.resume(); });
    } else {
      items_.push_back(std::move(item));
    }
  }

  auto pop() {
    struct Awaiter {
      Mailbox& m;
      std::optional<T> slot{};
      bool await_ready() const noexcept { return !m.items_.empty(); }
      void await_suspend(std::coroutine_handle<> h) {
        m.waiters_.push_back(WaitNode{h, &slot});
      }
      T await_resume() {
        if (slot.has_value()) return std::move(*slot);
        assert(!m.items_.empty());
        T v = std::move(m.items_.front());
        m.items_.pop_front();
        return v;
      }
    };
    return Awaiter{*this, std::nullopt};
  }

 private:
  struct WaitNode {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };

  Simulation& sim_;
  std::deque<T> items_;
  std::deque<WaitNode> waiters_;
};

/// Counting semaphore with FIFO wake-up.
class Semaphore {
 public:
  Semaphore(Simulation& sim, int initial) : sim_(sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  int count() const { return count_; }

  void release(int n = 1) {
    count_ += n;
    while (count_ > 0 && !waiters_.empty()) {
      --count_;
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.post([h] { h.resume(); });
    }
  }

  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() noexcept {
        if (s.count_ > 0 && s.waiters_.empty()) {
          --s.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        s.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulation& sim_;
  int count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace gridsim
