// Virtual-time representation for the discrete-event simulator.
//
// All simulation timestamps are integral nanoseconds so that event ordering
// is exact and runs are bit-reproducible. Durations derived from fluid-model
// rates are computed in double seconds and rounded up to the next nanosecond
// (a transfer never completes earlier than the fluid model allows).
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace gridsim {

/// Simulation time in nanoseconds since the start of the run.
using SimTime = std::int64_t;

inline constexpr SimTime kSimTimeNever = std::numeric_limits<SimTime>::max();

constexpr SimTime nanoseconds(std::int64_t ns) { return ns; }
constexpr SimTime microseconds(std::int64_t us) { return us * 1'000; }
constexpr SimTime milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr SimTime seconds(std::int64_t s) { return s * 1'000'000'000; }

/// Converts a duration in (possibly fractional) seconds to a SimTime,
/// rounding up so fluid-model completions are never early.
inline SimTime from_seconds(double s) {
  assert(s >= 0.0);
  const double ns = std::ceil(s * 1e9);
  if (ns >= static_cast<double>(kSimTimeNever)) return kSimTimeNever;
  return static_cast<SimTime>(ns);
}

inline double to_seconds(SimTime t) { return static_cast<double>(t) * 1e-9; }
inline double to_microseconds(SimTime t) {
  return static_cast<double>(t) * 1e-3;
}
inline double to_milliseconds(SimTime t) {
  return static_cast<double>(t) * 1e-6;
}

/// Human-readable rendering used by traces and experiment reports.
std::string format_time(SimTime t);

namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) {
  return static_cast<SimTime>(v);
}
constexpr SimTime operator""_us(unsigned long long v) {
  return microseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return milliseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace gridsim
