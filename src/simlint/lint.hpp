// Happens-before communication-race analyzer (`gridsim lint`).
//
// Consumes the comm-event log one instrumented execution records
// (mpi/comm_log.hpp), attaches a vector clock to every event, and derives
// the happens-before relation: per-rank program order, plus one cross-rank
// edge per receive match (send post -> match), per rendez-vous CTS
// (receiver CTS -> sender resumption) and per rendez-vous payload (sender
// post-CTS -> receiver resumption). Over that relation it runs three rules
// in the style of ISP's dynamic verification and MUST's communication-race
// lints (docs/race-detection.md):
//
//  R1 wildcard-receive race (warning): a kAnySource receive had a
//     candidate send, from another source, that is HB-concurrent with the
//     send it actually matched — WAN jitter could have swapped the winner.
//     Reported with both racing send sites.
//  R2 causally-dependent send (note): a wildcard-matched (or
//     wildcard-candidate) send whose issuance is HB-after some wildcard
//     match — exactly the shape for which the model-checker's
//     quiescence-computed candidate sets can be incomplete, so simmc
//     downgrades "verified" to "verified-incomplete" when R2 fires.
//  R3 resource leak / tag conflict (error): unmatched sends still queued
//     at finalize, posted receives or probes that never completed, and
//     wildcard-tag receives that captured collective-phase traffic.
//
// The race model is causal: two sends to the same receiver race iff
// neither happens-before the other. HB-ordered sends are reported as
// ordered even if the network could physically deliver them out of order;
// exploring those delivery orders is the model-checker's job (the HB
// persistent sets in src/simmc prune exactly the non-racing branches).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mpi/comm_log.hpp"

namespace gridsim::simlint {

/// One rule hit. `site_a` is the primary site (R1: the matched send);
/// `site_b` the secondary one (R1: the racing candidate), empty if none.
struct Finding {
  std::string rule;      ///< "R1-wildcard-race" | "R2-causal-send" |
                         ///< "R3-unmatched-send" | "R3-unmatched-recv" |
                         ///< "R3-tag-conflict"
  std::string severity;  ///< "error" | "warning" | "note"
  std::string site_a;
  std::string site_b;
  std::string message;   ///< one human-readable line naming both sites
};

/// "rank R send#K -> D (tag T)" — the stable name of a send site.
std::string send_site_name(int rank, int site, int dst, int tag);
/// "rank R recv#K (src=S|*, tag=T|*)" — the stable name of a receive site.
std::string recv_site_name(int rank, int site, int want_src, int want_tag);

/// Happens-before analysis of one Job's comm trace: vector clocks plus the
/// R1-R3 rule results. Counters are exact; `findings` is capped at the
/// `max_findings` passed to `analyze_job` (0 = counters only).
struct JobLint {
  int nranks = 0;
  std::uint64_t events = 0;    ///< comm events analyzed
  std::uint64_t hb_edges = 0;  ///< cross-rank HB edges (match + CTS + data)
  int races = 0;               ///< R1: distinct racing send pairs
  int causal_sends = 0;        ///< R2: sends HB-after a wildcard match
  int leaks = 0;               ///< R3: leaks + tag conflicts
  /// Analysis incomplete: event recording hit its cap, or the clock table
  /// was capped while wildcard receives are present (R1/R2 coverage lost).
  /// R3 is clock-free and always scans the full recorded trace, so a
  /// clock-capped wildcard-free job stays fully analyzed.
  bool truncated = false;
  std::vector<Finding> findings;

  /// HB order of two send sites: 1 if a happens-before b, -1 if b
  /// happens-before a, 0 if concurrent, -2 if either site is unknown
  /// (not in this job's trace, or the log was truncated).
  int send_order(int rank_a, int site_a, int rank_b, int site_b) const;

  // Retained clock state backing send_order() (internal layout: `vc` is
  // event-major, nranks-wide; `send_keys`/`send_events` map sorted
  // (rank<<32|site) keys to kSendPost event indices).
  std::vector<std::uint32_t> vc;
  std::vector<std::uint64_t> send_keys;
  std::vector<std::uint32_t> send_events;
};

JobLint analyze_job(const mpi::JobCommTrace& trace,
                    std::size_t max_findings);

/// Aggregate over every Job a scenario ran (counters summed, findings
/// concatenated under one shared cap, per-job clock state retained for
/// send_order queries).
struct LintSummary {
  std::uint64_t events = 0;
  std::uint64_t hb_edges = 0;
  int races = 0;
  int causal_sends = 0;
  int leaks = 0;
  bool truncated = false;
  std::vector<Finding> findings;
  std::vector<JobLint> jobs;

  /// True only if exactly one job's trace proves send a happens-before
  /// send b. Site ids restart at 0 per Job, so a pair resolved by more
  /// than one job is ambiguous; it reports false, like unknown sites —
  /// callers treating "not ordered" as "racing" stay conservative (the
  /// model-checker keeps the branch).
  bool send_happens_before(int rank_a, int site_a, int rank_b,
                           int site_b) const;
};

LintSummary analyze(const mpi::CommLog& log, std::size_t max_findings = 64);

/// Scenario verdict for the lint report: "leaks" if R3 fired, "races" if
/// R1 fired unexpectedly, "truncated" if a capped analysis would
/// otherwise pass (dropped tail events could hide finalize leaks), else
/// "expected-races" (by `races_expected`, see ScenarioSpec) or "clean".
/// R2 notes never fail a scenario — they refine the model-checker's
/// claim, not the scenario's.
std::string lint_status(const LintSummary& lint, bool races_expected);
/// Whether a status string counts as passing ("clean" | "expected-races").
bool lint_status_ok(const std::string& status);

/// One scenario's row in the "gridsim-lint/1" report.
struct ScenarioLintEntry {
  std::string name;
  std::string group;
  std::string status;  ///< lint_status(), or "error" if the run threw
  std::string error;   ///< exception text when status == "error"
  LintSummary lint;
};

/// Writes the consolidated "gridsim-lint/1" JSON report (one scenario
/// object per line, shell-diffable like the campaign report).
bool write_lint_json(const std::string& path, const std::string& filter,
                     std::uint64_t seed,
                     const std::vector<ScenarioLintEntry>& entries);

}  // namespace gridsim::simlint
