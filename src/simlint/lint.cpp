#include "simlint/lint.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "mpi/message.hpp"

namespace gridsim::simlint {

namespace {

using mpi::CommEvent;
using mpi::CommEventKind;

constexpr std::uint32_t kNone = 0xFFFFFFFFu;
/// Clock-table memory guard: nevents * nranks entries, 4 bytes each.
constexpr std::size_t kMaxClockEntries = std::size_t{1} << 25;

std::uint64_t site_key(int rank, int site) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank))
          << 32) |
         static_cast<std::uint32_t>(site);
}

/// Rendez-vous pairing key: the sender's rank + its per-rank handshake seq.
std::uint64_t seq_key(int sender, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sender))
          << 48) ^
         seq;
}

std::string src_str(int src) {
  return src == mpi::kAnySource ? std::string("*") : std::to_string(src);
}

std::string tag_str(int tag) {
  return tag == mpi::kAnyTag ? std::string("*") : std::to_string(tag);
}

/// Receive name for operations whose posting site was never recorded
/// (finalize leftovers carry only the filter).
std::string pending_recv_name(int rank, int want_src, int want_tag) {
  return "rank " + std::to_string(rank) + " recv(src=" + src_str(want_src) +
         ", tag=" + tag_str(want_tag) + ")";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string send_site_name(int rank, int site, int dst, int tag) {
  return "rank " + std::to_string(rank) + " send#" +
         (site < 0 ? std::string("?") : std::to_string(site)) + " -> " +
         std::to_string(dst) + " (tag " + std::to_string(tag) + ")";
}

std::string recv_site_name(int rank, int site, int want_src, int want_tag) {
  return "rank " + std::to_string(rank) + " recv#" + std::to_string(site) +
         " (src=" + src_str(want_src) + ", tag=" + tag_str(want_tag) + ")";
}

JobLint analyze_job(const mpi::JobCommTrace& trace,
                    std::size_t max_findings) {
  JobLint out;
  out.nranks = trace.nranks;
  const int n = trace.nranks;
  if (n <= 0) {
    out.truncated = trace.truncated || trace.dropped_wildcard;
    return out;
  }
  const std::size_t width = static_cast<std::size_t>(n);
  const std::size_t all_events = trace.events.size();
  std::size_t nevents = all_events;
  const bool clock_capped = nevents * width > kMaxClockEntries;
  if (clock_capped) nevents = kMaxClockEntries / width;

  // `truncated` reports lost *analysis*, not just lost events: R3 is
  // clock-free, scans the full recorded trace, and finalize leftovers
  // survive the recording cap (comm_log.hpp), so a cap only loses
  // coverage where wildcard receives — the sole trigger of R1/R2 and
  // tag-conflict checks — are involved. A capped wildcard-free trace
  // (the NPB kernels) stays fully analyzed.
  out.truncated = trace.dropped_wildcard;
  if ((trace.truncated || clock_capped) && !out.truncated) {
    for (const CommEvent& e : trace.events) {
      if ((e.kind == CommEventKind::kRecvPost ||
           e.kind == CommEventKind::kRecvMatch) &&
          (e.want_src == mpi::kAnySource || e.want_tag == mpi::kAnyTag)) {
        out.truncated = true;
        break;
      }
    }
  }
  out.events = all_events;

  // --- Pass 1: vector clocks --------------------------------------------
  // Events are recorded at their simulation moment, so the global record
  // order is a linear extension of causality: every join target is already
  // clocked when the joining event is processed. One forward pass suffices.
  out.vc.assign(nevents * width, 0);
  std::vector<std::uint32_t> running(width * width, 0);
  std::unordered_map<std::uint64_t, std::uint32_t> send_ix;
  std::unordered_map<std::uint64_t, std::uint32_t> recv_cts_ix;
  std::unordered_map<std::uint64_t, std::uint32_t> send_cts_ix;
  send_ix.reserve(nevents / 2 + 1);

  for (std::uint32_t i = 0; i < nevents; ++i) {
    const CommEvent& e = trace.events[i];
    if (e.rank < 0 || e.rank >= n) continue;  // defensive: zero clock
    std::uint32_t* mine =
        running.data() + static_cast<std::size_t>(e.rank) * width;
    mine[e.rank] += 1;
    std::uint32_t join = kNone;
    switch (e.kind) {
      case CommEventKind::kRecvMatch:
        if (e.peer_site >= 0) {
          const auto it = send_ix.find(site_key(e.peer, e.peer_site));
          if (it != send_ix.end()) join = it->second;
        }
        break;
      case CommEventKind::kSendCts: {
        const auto it = recv_cts_ix.find(seq_key(e.rank, e.seq));
        if (it != recv_cts_ix.end()) join = it->second;
        break;
      }
      case CommEventKind::kRecvData: {
        const auto it = send_cts_ix.find(seq_key(e.peer, e.seq));
        if (it != send_cts_ix.end()) join = it->second;
        break;
      }
      default:
        break;
    }
    if (join != kNone) {
      const std::uint32_t* other =
          out.vc.data() + static_cast<std::size_t>(join) * width;
      for (std::size_t r = 0; r < width; ++r)
        mine[r] = std::max(mine[r], other[r]);
      ++out.hb_edges;
    }
    std::copy(mine, mine + width,
              out.vc.data() + static_cast<std::size_t>(i) * width);
    switch (e.kind) {
      case CommEventKind::kSendPost:
        send_ix.emplace(site_key(e.rank, e.site), i);
        break;
      case CommEventKind::kRecvCts:
        recv_cts_ix.emplace(seq_key(e.peer, e.seq), i);
        break;
      case CommEventKind::kSendCts:
        send_cts_ix.emplace(seq_key(e.rank, e.seq), i);
        break;
      default:
        break;
    }
  }

  // Sorted (rank, site) -> event table backing send_order() queries.
  {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> entries(
        send_ix.begin(), send_ix.end());
    std::sort(entries.begin(), entries.end());
    out.send_keys.reserve(entries.size());
    out.send_events.reserve(entries.size());
    for (const auto& [key, ev] : entries) {
      out.send_keys.push_back(key);
      out.send_events.push_back(ev);
    }
  }

  /// a happens-before b (reflexive; call sites never pass a == b).
  const auto hb = [&](std::uint32_t a, std::uint32_t b) {
    const int ra = trace.events[a].rank;
    if (ra < 0 || ra >= n) return false;
    const std::size_t c = static_cast<std::size_t>(ra);
    return out.vc[static_cast<std::size_t>(b) * width + c] >=
           out.vc[static_cast<std::size_t>(a) * width + c];
  };

  // --- Pass 2: rule engine ----------------------------------------------
  const auto add_finding = [&](Finding f) {
    if (out.findings.size() < max_findings)
      out.findings.push_back(std::move(f));
  };
  const auto tag_ok = [](int want_tag, int tag) {
    return want_tag == mpi::kAnyTag || want_tag == tag;
  };

  // Per-(dst,src) send-site lists in issue order, plus consumption marks.
  std::vector<std::vector<std::uint32_t>> sends_to(width * width);
  std::vector<std::uint32_t> consumed_at(nevents, kNone);
  for (std::uint32_t i = 0; i < nevents; ++i) {
    const CommEvent& e = trace.events[i];
    if (e.kind == CommEventKind::kSendPost && e.peer >= 0 && e.peer < n &&
        e.rank >= 0 && e.rank < n) {
      sends_to[static_cast<std::size_t>(e.peer) * width +
               static_cast<std::size_t>(e.rank)]
          .push_back(i);
    } else if (e.kind == CommEventKind::kRecvMatch && e.peer_site >= 0) {
      const auto it = send_ix.find(site_key(e.peer, e.peer_site));
      if (it != send_ix.end()) consumed_at[it->second] = i;
    }
  }

  // R3 needs no clocks, so it scans the full trace even when the clock
  // table above was capped — finalize-time leak events sit at the tail
  // and must never fall off the analysis.
  for (std::size_t i = 0; i < all_events; ++i) {
    const CommEvent& e = trace.events[i];
    if (e.kind == CommEventKind::kUnmatchedSend) {
      ++out.leaks;
      const std::string site =
          send_site_name(e.peer, e.peer_site, e.rank, e.tag);
      add_finding({"R3-unmatched-send", "error", site, "",
                   "message " + site + " was never received (still queued " +
                       "at rank " + std::to_string(e.rank) +
                       " at finalize)"});
    } else if (e.kind == CommEventKind::kUnmatchedRecv) {
      ++out.leaks;
      const std::string site =
          pending_recv_name(e.rank, e.want_src, e.want_tag);
      add_finding({"R3-unmatched-recv", "error", site, "",
                   site + " never completed (no matching send)"});
    } else if (e.kind == CommEventKind::kRecvMatch &&
               e.want_tag == mpi::kAnyTag &&
               e.tag >= mpi::kCollectiveTagBase) {
      ++out.leaks;
      const std::string site =
          recv_site_name(e.rank, e.site, e.want_src, e.want_tag);
      add_finding({"R3-tag-conflict", "error", site, "",
                   site + " captured collective-phase traffic (tag " +
                       std::to_string(e.tag) + " from rank " +
                       std::to_string(e.peer) + ")"});
    }
  }

  // R1. Wildcard matches are processed in record order, so each
  // (dst,src) cursor advances monotonically past already-consumed sends.
  std::set<std::pair<std::uint32_t, std::uint32_t>> race_pairs;
  std::set<std::uint32_t> wrelevant;  // wildcard-matched or candidate sends
  std::vector<std::size_t> cursor(width * width, 0);
  for (std::uint32_t i = 0; i < nevents; ++i) {
    const CommEvent& e = trace.events[i];
    if (e.kind != CommEventKind::kRecvMatch) continue;
    if (e.want_src != mpi::kAnySource || e.rank < 0 || e.rank >= n)
      continue;

    // The wildcard match W = event i. Its candidate from source s is s's
    // earliest send to this rank that is unconsumed at W, tag-compatible,
    // and not HB-after the match itself (non-overtaking picks the earliest;
    // anything HB-after W could never have arrived in its place).
    std::uint32_t matched = kNone;
    if (e.peer_site >= 0) {
      const auto it = send_ix.find(site_key(e.peer, e.peer_site));
      if (it != send_ix.end()) matched = it->second;
    }
    if (matched != kNone) wrelevant.insert(matched);
    for (int s = 0; s < n; ++s) {
      if (s == e.rank || s == e.peer) continue;
      const std::size_t slot =
          static_cast<std::size_t>(e.rank) * width +
          static_cast<std::size_t>(s);
      const std::vector<std::uint32_t>& list = sends_to[slot];
      std::size_t& cur = cursor[slot];
      while (cur < list.size() && consumed_at[list[cur]] != kNone &&
             consumed_at[list[cur]] <= i)
        ++cur;
      for (std::size_t k = cur; k < list.size(); ++k) {
        const std::uint32_t cand = list[k];
        if (consumed_at[cand] != kNone && consumed_at[cand] <= i) continue;
        if (!tag_ok(e.want_tag, trace.events[cand].tag)) continue;
        // Sends HB-after the match (and, by program order, everything the
        // same source issues later) were not enabled: stop scanning.
        if (hb(i, cand)) break;
        wrelevant.insert(cand);
        if (matched != kNone && !hb(cand, matched) && !hb(matched, cand)) {
          const auto pair = std::minmax(matched, cand);
          if (race_pairs.insert({pair.first, pair.second}).second) {
            const CommEvent& ms = trace.events[matched];
            const CommEvent& cs = trace.events[cand];
            const std::string site_a =
                send_site_name(ms.rank, ms.site, ms.peer, ms.tag);
            const std::string site_b =
                send_site_name(cs.rank, cs.site, cs.peer, cs.tag);
            add_finding(
                {"R1-wildcard-race", "warning", site_a, site_b,
                 recv_site_name(e.rank, e.site, e.want_src, e.want_tag) +
                     " matched " + site_a + "; " + site_b +
                     " is HB-concurrent and races with it"});
          }
        }
        break;  // only the earliest enabled send per source is co-enabled
      }
    }
  }
  out.races = static_cast<int>(race_pairs.size());

  // R2: a wildcard-relevant send issued HB-after some rank's first
  // wildcard match. These are exactly the sends whose existence (or
  // ordering) can depend on how an earlier race was resolved — the shape
  // the model-checker's quiescence-computed candidate sets can miss.
  std::vector<std::uint32_t> wfirst_clock(width, 0);
  std::vector<std::uint32_t> wfirst_event(width, kNone);
  for (std::uint32_t i = 0; i < nevents; ++i) {
    const CommEvent& e = trace.events[i];
    if (e.kind == CommEventKind::kRecvMatch &&
        e.want_src == mpi::kAnySource && e.rank >= 0 && e.rank < n &&
        wfirst_event[static_cast<std::size_t>(e.rank)] == kNone) {
      const std::size_t r = static_cast<std::size_t>(e.rank);
      wfirst_event[r] = i;
      wfirst_clock[r] = out.vc[static_cast<std::size_t>(i) * width + r];
    }
  }
  for (const std::uint32_t send : wrelevant) {
    const CommEvent& cs = trace.events[send];
    for (std::size_t r = 0; r < width; ++r) {
      if (wfirst_event[r] == kNone) continue;
      if (out.vc[static_cast<std::size_t>(send) * width + r] <
          wfirst_clock[r])
        continue;
      ++out.causal_sends;
      const CommEvent& w = trace.events[wfirst_event[r]];
      const std::string site_a =
          send_site_name(cs.rank, cs.site, cs.peer, cs.tag);
      const std::string site_b =
          recv_site_name(w.rank, w.site, w.want_src, w.want_tag);
      add_finding({"R2-causal-send", "note", site_a, site_b,
                   site_a + " is enabled only after the wildcard match at " +
                       site_b + "; quiescence-computed candidate sets may " +
                       "be incomplete here"});
      break;
    }
  }
  return out;
}

int JobLint::send_order(int rank_a, int site_a, int rank_b,
                        int site_b) const {
  if (nranks <= 0 || vc.empty()) return -2;
  const std::size_t width = static_cast<std::size_t>(nranks);
  const auto find = [&](int rank, int site) -> std::int64_t {
    const std::uint64_t key = site_key(rank, site);
    const auto it =
        std::lower_bound(send_keys.begin(), send_keys.end(), key);
    if (it == send_keys.end() || *it != key) return -1;
    return send_events[static_cast<std::size_t>(it - send_keys.begin())];
  };
  const std::int64_t a = find(rank_a, site_a);
  const std::int64_t b = find(rank_b, site_b);
  if (a < 0 || b < 0) return -2;
  if (rank_a < 0 || rank_a >= nranks || rank_b < 0 || rank_b >= nranks)
    return -2;
  const std::uint32_t a_self =
      vc[static_cast<std::size_t>(a) * width + static_cast<std::size_t>(rank_a)];
  const std::uint32_t b_self =
      vc[static_cast<std::size_t>(b) * width + static_cast<std::size_t>(rank_b)];
  if (vc[static_cast<std::size_t>(b) * width +
         static_cast<std::size_t>(rank_a)] >= a_self)
    return 1;
  if (vc[static_cast<std::size_t>(a) * width +
         static_cast<std::size_t>(rank_b)] >= b_self)
    return -1;
  return 0;
}

LintSummary analyze(const mpi::CommLog& log, std::size_t max_findings) {
  LintSummary out;
  for (const mpi::JobCommTrace& trace : log.jobs()) {
    const std::size_t room = max_findings > out.findings.size()
                                 ? max_findings - out.findings.size()
                                 : 0;
    JobLint job = analyze_job(trace, room);
    out.events += job.events;
    out.hb_edges += job.hb_edges;
    out.races += job.races;
    out.causal_sends += job.causal_sends;
    out.leaks += job.leaks;
    out.truncated = out.truncated || job.truncated;
    for (Finding& f : job.findings) out.findings.push_back(std::move(f));
    job.findings.clear();
    out.jobs.push_back(std::move(job));
  }
  return out;
}

bool LintSummary::send_happens_before(int rank_a, int site_a, int rank_b,
                                      int site_b) const {
  // Site ids restart at 0 in every Job and callers carry no job identity,
  // so an answer is trustworthy only when exactly one job knows both
  // sites; an ambiguous pair stays "not ordered" (callers keep the
  // branch).
  int order = -2;
  for (const JobLint& job : jobs) {
    const int job_order = job.send_order(rank_a, site_a, rank_b, site_b);
    if (job_order == -2) continue;
    if (order != -2) return false;
    order = job_order;
  }
  return order == 1;
}

std::string lint_status(const LintSummary& lint, bool races_expected) {
  if (lint.leaks > 0) return "leaks";
  if (lint.races > 0 && !races_expected) return "races";
  // A capped analysis drops tail events (finalize-time R3 leaks first),
  // so it must not claim cleanliness.
  if (lint.truncated) return "truncated";
  return lint.races > 0 ? "expected-races" : "clean";
}

bool lint_status_ok(const std::string& status) {
  return status == "clean" || status == "expected-races";
}

bool write_lint_json(const std::string& path, const std::string& filter,
                     std::uint64_t seed,
                     const std::vector<ScenarioLintEntry>& entries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::size_t failures = 0;
  for (const ScenarioLintEntry& e : entries)
    if (!lint_status_ok(e.status)) ++failures;
  std::fprintf(f,
               "{\n  \"schema\": \"gridsim-lint/1\",\n"
               "  \"filter\": \"%s\",\n  \"seed\": %llu,\n"
               "  \"scenarios\": %zu,\n  \"failures\": %zu,\n",
               json_escape(filter).c_str(),
               static_cast<unsigned long long>(seed), entries.size(),
               failures);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ScenarioLintEntry& e = entries[i];
    // One scenario per line (shell-diffable, like the campaign report).
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"group\": \"%s\", "
                 "\"status\": \"%s\", \"races\": %d, "
                 "\"causal_sends\": %d, \"leaks\": %d, "
                 "\"hb_edges\": %llu, \"events\": %llu, "
                 "\"truncated\": %s",
                 json_escape(e.name).c_str(), json_escape(e.group).c_str(),
                 json_escape(e.status).c_str(), e.lint.races,
                 e.lint.causal_sends, e.lint.leaks,
                 static_cast<unsigned long long>(e.lint.hb_edges),
                 static_cast<unsigned long long>(e.lint.events),
                 e.lint.truncated ? "true" : "false");
    if (!e.error.empty())
      std::fprintf(f, ", \"error\": \"%s\"", json_escape(e.error).c_str());
    std::fprintf(f, ", \"findings\": [");
    for (std::size_t k = 0; k < e.lint.findings.size(); ++k) {
      const Finding& finding = e.lint.findings[k];
      std::fprintf(f,
                   "%s{\"rule\": \"%s\", \"severity\": \"%s\", "
                   "\"site_a\": \"%s\", \"site_b\": \"%s\", "
                   "\"message\": \"%s\"}",
                   k ? ", " : "", json_escape(finding.rule).c_str(),
                   json_escape(finding.severity).c_str(),
                   json_escape(finding.site_a).c_str(),
                   json_escape(finding.site_b).c_str(),
                   json_escape(finding.message).c_str());
    }
    std::fprintf(f, "]}%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  return std::fclose(f) == 0;
}

}  // namespace gridsim::simlint
