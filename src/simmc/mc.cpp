#include "simmc/mc.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "harness/determinism.hpp"
#include "simcore/check.hpp"
#include "simcore/simulation.hpp"

namespace gridsim::simmc {

namespace {

constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ULL;

void fold_string(std::uint64_t& h, const std::string& s) {
  harness::fold_digest(h, s.size());
  for (const char c : s)
    harness::fold_digest(h, static_cast<unsigned char>(c));
}

/// Order-independent hash of an execution's full choice assignment
/// (receive site -> matched source). Two executions with equal assignments
/// are identical continuations of a deterministic engine, so the second is
/// redundant — this is the checker's sleep-set-style reduction.
std::uint64_t assignment_hash(const std::vector<DecisionRecord>& trace) {
  std::vector<std::array<std::uint64_t, 4>> keys;
  keys.reserve(trace.size());
  for (const DecisionRecord& d : trace) {
    const mpi::MatchCandidate& c = d.candidates[d.chosen];
    keys.push_back({static_cast<std::uint64_t>(d.rank),
                    static_cast<std::uint64_t>(d.recv_seq),
                    static_cast<std::uint64_t>(c.src_rank), c.order});
  }
  std::sort(keys.begin(), keys.end());
  std::uint64_t h = kFnvBasis;
  for (const auto& k : keys)
    for (const std::uint64_t v : k) harness::fold_digest(h, v);
  return h;
}

std::uint64_t prefix_hash(const std::vector<std::size_t>& prefix) {
  std::uint64_t h = kFnvBasis ^ 0x9E3779B97F4A7C15ULL;
  harness::fold_digest(h, prefix.size());
  for (const std::size_t c : prefix) harness::fold_digest(h, c);
  return h;
}

std::vector<std::size_t> choices_of(
    const std::vector<DecisionRecord>& trace) {
  std::vector<std::size_t> out;
  out.reserve(trace.size());
  for (const DecisionRecord& d : trace) out.push_back(d.chosen);
  return out;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Greedy witness minimization: reset each forced (nonzero) choice to the
/// arrival-order default, left to right, keeping resets that preserve the
/// deadlock; then drop the trailing defaults (an absent script entry is 0).
Witness minimize_witness(const harness::ScenarioSpec& spec,
                         const ExecutionRecord& first,
                         const McOptions& options, int* executions) {
  std::vector<std::size_t> best = choices_of(first.trace);
  std::vector<std::string> blocked = first.blocked;
  while (!best.empty() && best.back() == 0) best.pop_back();
  int budget = options.minimize_budget;
  for (std::size_t i = 0; i < best.size() && budget > 0; ++i) {
    if (best[i] == 0) continue;
    std::vector<std::size_t> trial = best;
    trial[i] = 0;
    const ExecutionRecord rec = run_scripted(spec, trial, options.seed);
    ++*executions;
    --budget;
    if (rec.deadlocked) {
      best = std::move(trial);
      blocked = rec.blocked;
    }
  }
  while (!best.empty() && best.back() == 0) best.pop_back();
  Witness witness;
  witness.scenario = spec.name;
  witness.seed = options.seed;
  witness.choices = std::move(best);
  witness.blocked = std::move(blocked);
  return witness;
}

}  // namespace

std::size_t ScriptedArbiter::choose(const mpi::MatchDecision& decision) {
  GRIDSIM_CHECK(!decision.candidates.empty(),
                "ScriptedArbiter::choose with no candidates");
  const std::size_t index = trace_.size();
  std::size_t pick = index < script_.size() ? script_[index] : 0;
  if (pick >= decision.candidates.size()) pick = 0;
  DecisionRecord rec;
  rec.rank = decision.dst_rank;
  rec.recv_seq = decision.recv_seq;
  rec.want_tag = decision.want_tag;
  rec.candidates = decision.candidates;
  rec.chosen = pick;
  trace_.push_back(std::move(rec));
  return pick;
}

std::uint64_t result_digest(const harness::ScenarioResult& result) {
  std::vector<std::pair<std::string, double>> metrics;
  for (const harness::Metric& m : result.metrics)
    metrics.emplace_back(m.name, m.value);
  std::sort(metrics.begin(), metrics.end());
  std::uint64_t h = kFnvBasis;
  harness::fold_digest(h, metrics.size());
  for (const auto& [name, value] : metrics) {
    fold_string(h, name);
    // Fixed-point quantization: digests compare results, not the last ulp
    // of a double reduction.
    harness::fold_digest(
        h, static_cast<std::uint64_t>(std::llround(value * 4096.0)));
  }
  return h;
}

ExecutionRecord run_scripted(const harness::ScenarioSpec& spec,
                             const std::vector<std::size_t>& script,
                             std::uint64_t seed) {
  ExecutionRecord rec;
  ScriptedArbiter arbiter(script);
  mpi::ScopedArbiter ambient(&arbiter);
  // Record the comm-event log of this execution; its happens-before
  // analysis drives the persistent-set reduction and the R2 completeness
  // check in explore(). Deadlock unwinding still runs Job destructors, so
  // unmatched operations are in the log even for witness runs.
  mpi::CommLog comm_log;
  mpi::ScopedCommLog log_scope(&comm_log);
  harness::ScenarioContext ctx;
  ctx.seed = seed;
  // A deadlocking execution abandons its suspended coroutine frames (they
  // are only destroyed by the event loop draining them); that abandonment
  // is the point of the exploration, so exempt it from leak detection.
  [[maybe_unused]] ScopedLeakExemption leak_exemption;
  try {
    const harness::ScenarioResult result = spec.run(ctx);
    rec.digest = result_digest(result);
  } catch (const DeadlockError& e) {
    rec.deadlocked = true;
    rec.deadlock_report = e.what();
    rec.blocked = e.blocked();
  } catch (const std::exception& e) {
    rec.failed = true;
    rec.error = e.what();
  }
  rec.trace = arbiter.trace();
  rec.lint = simlint::analyze(comm_log, /*max_findings=*/0);
  return rec;
}

McReport explore(const harness::ScenarioSpec& spec,
                 const McOptions& options) {
  McReport report;
  report.scenario = spec.name;

  // Depth-first over forced-choice prefixes. The stack starts with the
  // empty prefix (= pure arrival-order execution); each execution schedules
  // the unexplored alternatives of every decision at or below its forced
  // depth, deepest last so they are explored first.
  std::vector<std::vector<std::size_t>> stack{{}};
  std::set<std::uint64_t> scheduled{prefix_hash({})};
  std::set<std::uint64_t> visited;
  std::set<std::uint64_t> digests;
  std::set<std::pair<int, int>> race_sites;

  while (!stack.empty() && report.executions < options.max_execs) {
    const std::vector<std::size_t> prefix = std::move(stack.back());
    stack.pop_back();
    const ExecutionRecord rec =
        run_scripted(spec, prefix, options.seed);
    ++report.executions;
    report.deepest_trace = std::max(
        report.deepest_trace, static_cast<int>(rec.trace.size()));
    // R2 (simlint): a send issued causally after a wildcard match means
    // the quiescence-computed candidate sets may have been incomplete in
    // some unexplored interleaving — the report must not claim otherwise.
    report.causal_sends =
        std::max(report.causal_sends, rec.lint.causal_sends);
    report.complete = report.causal_sends == 0;
    for (const DecisionRecord& d : rec.trace) {
      report.max_candidates = std::max(
          report.max_candidates, static_cast<int>(d.candidates.size()));
      if (d.candidates.size() >= 2)
        race_sites.insert({d.rank, d.recv_seq});
    }
    if (rec.failed) {
      report.status = "error";
      report.detail = rec.error;
      return report;
    }
    if (rec.deadlocked) {
      report.status = "deadlock";
      report.witness =
          minimize_witness(spec, rec, options, &report.executions);
      report.race_points = static_cast<int>(race_sites.size());
      report.digests.assign(digests.begin(), digests.end());
      report.detail = "deadlock witness with " +
                      std::to_string(report.witness.choices.size()) +
                      " forced choice(s); " +
                      (rec.blocked.empty() ? std::string("(no blocked info)")
                                           : rec.blocked.front());
      return report;
    }
    if (!visited.insert(assignment_hash(rec.trace)).second) {
      ++report.pruned;
      continue;
    }
    digests.insert(rec.digest);
    for (std::size_t depth = prefix.size(); depth < rec.trace.size();
         ++depth) {
      const DecisionRecord& decision = rec.trace[depth];
      const mpi::MatchCandidate& chosen =
          decision.candidates[decision.chosen];
      for (std::size_t alt = 1; alt < decision.candidates.size(); ++alt) {
        // HB persistent set: if the chosen send happens-before the
        // alternative's send, causal delivery forbids the alternative
        // overtaking it — forcing it replays an explored behaviour, so
        // the DFS only branches on genuinely racing (HB-concurrent)
        // candidates. Unknown order conservatively keeps the branch.
        if (options.hb_sets &&
            rec.lint.send_happens_before(
                chosen.src_rank, chosen.send_site,
                decision.candidates[alt].src_rank,
                decision.candidates[alt].send_site)) {
          ++report.hb_pruned;
          continue;
        }
        std::vector<std::size_t> child;
        child.reserve(depth + 1);
        for (std::size_t j = 0; j < depth; ++j)
          child.push_back(rec.trace[j].chosen);
        child.push_back(alt);
        if (scheduled.insert(prefix_hash(child)).second)
          stack.push_back(std::move(child));
      }
    }
  }

  report.race_points = static_cast<int>(race_sites.size());
  report.digests.assign(digests.begin(), digests.end());
  if (digests.size() <= 1) {
    report.status = "ok";
    report.detail =
        std::to_string(report.executions) + " execution(s), " +
        std::to_string(report.race_points) + " race point(s), digest " +
        (digests.empty() ? std::string("n/a") : hex16(*digests.begin())) +
        " stable" +
        (stack.empty() ? std::string()
                       : " (budget hit with " +
                             std::to_string(stack.size()) +
                             " prefix(es) unexplored)") +
        (report.complete
             ? std::string("; hb-complete")
             : "; verified-incomplete (" +
                   std::to_string(report.causal_sends) +
                   " causally-dependent send(s))");
  } else {
    report.status = "digest-divergence";
    report.detail = std::to_string(digests.size()) +
                    " distinct result digests across " +
                    std::to_string(report.executions) + " execution(s)";
  }
  return report;
}

// ---------------------------------------------------------------------------
// Witness files
// ---------------------------------------------------------------------------

bool Witness::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "gridsim-mc-witness/1\n");
  std::fprintf(f, "scenario %s\n", scenario.c_str());
  std::fprintf(f, "seed %llu\n", static_cast<unsigned long long>(seed));
  std::fprintf(f, "choices");
  for (const std::size_t c : choices)
    std::fprintf(f, " %zu", c);
  std::fprintf(f, "\n");
  for (const std::string& line : blocked)
    std::fprintf(f, "blocked %s\n", line.c_str());
  std::fprintf(f, "end\n");
  return std::fclose(f) == 0;
}

bool Witness::load(const std::string& path, Witness* out,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open '" + path + "'";
    return false;
  }
  std::string line;
  if (!std::getline(in, line) || line != "gridsim-mc-witness/1") {
    if (error) *error = "'" + path + "' is not a gridsim-mc-witness/1 file";
    return false;
  }
  Witness w;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "scenario") {
      fields >> std::ws;
      std::getline(fields, w.scenario);
    } else if (key == "seed") {
      fields >> w.seed;
    } else if (key == "choices") {
      std::size_t c = 0;
      while (fields >> c) w.choices.push_back(c);
    } else if (key == "blocked") {
      fields >> std::ws;
      std::string rest;
      std::getline(fields, rest);
      w.blocked.push_back(rest);
    } else if (!key.empty()) {
      if (error) *error = "unknown witness line: " + line;
      return false;
    }
  }
  if (!saw_end || w.scenario.empty()) {
    if (error) *error = "truncated witness file '" + path + "'";
    return false;
  }
  *out = std::move(w);
  return true;
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

bool write_mc_json(const std::string& path, const std::string& filter,
                   const McOptions& options, int ranks_cap,
                   const std::vector<McReport>& reports) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::size_t failures = 0;
  for (const McReport& r : reports)
    if (!r.ok()) ++failures;
  std::fprintf(f,
               "{\n  \"schema\": \"gridsim-mc/1\",\n"
               "  \"filter\": \"%s\",\n  \"max_execs\": %d,\n"
               "  \"ranks_cap\": %d,\n  \"seed\": %llu,\n"
               "  \"scenarios\": %zu,\n  \"failures\": %zu,\n",
               json_escape(filter).c_str(), options.max_execs, ranks_cap,
               static_cast<unsigned long long>(options.seed),
               reports.size(), failures);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const McReport& r = reports[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"status\": \"%s\", "
                 "\"executions\": %d, \"race_points\": %d, "
                 "\"max_candidates\": %d, \"pruned\": %d, "
                 "\"hb_pruned\": %d, \"causal_sends\": %d, "
                 "\"complete\": %s, "
                 "\"deepest_trace\": %d, \"digests\": [",
                 json_escape(r.scenario).c_str(),
                 json_escape(r.status).c_str(), r.executions,
                 r.race_points, r.max_candidates, r.pruned, r.hb_pruned,
                 r.causal_sends, r.complete ? "true" : "false",
                 r.deepest_trace);
    for (std::size_t d = 0; d < r.digests.size(); ++d)
      std::fprintf(f, "%s\"%s\"", d ? ", " : "",
                   hex16(r.digests[d]).c_str());
    std::fprintf(f, "]");
    if (!r.witness_path.empty())
      std::fprintf(f, ", \"witness\": \"%s\"",
                   json_escape(r.witness_path).c_str());
    std::fprintf(f, ", \"detail\": \"%s\"}%s\n",
                 json_escape(r.detail).c_str(),
                 i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  return std::fclose(f) == 0;
}

}  // namespace gridsim::simmc
