// DPOR-lite ordering model-checker over the scenario catalog.
//
// The determinism auditor proves "same seed, same answer". This subsystem
// upgrades the guarantee for wildcard-racing workloads to "any legal
// matching order, same answer — and no matching order deadlocks": it
// re-executes a scenario under a scripted MatchArbiter (mpi/match_arbiter.hpp)
// that defers every kAnySource receive to quiescence, records the decision
// trace (which source each wildcard matched, out of which candidates), and
// backtracks depth-first over the unexplored candidates of every decision.
//
// The state space is reduced two ways (hence DPOR-*lite*):
//  * only wildcard matches branch — everything else in the engine is a
//    deterministic function of the choices made so far, so two executions
//    with the same choice assignment are identical and need not be rerun;
//  * a sleep-set-style dedup hashes each execution's (receive site ->
//    matched source) assignment order-independently and prunes executions
//    that reach an already-visited assignment via a different choice
//    prefix.
//
// Known incompleteness, and how it is now checked rather than assumed
// (docs/model-checking.md, docs/race-detection.md): deferral resolves
// wildcards at quiescence in canonical order (lowest rank, oldest posted
// first), so interleavings in which a *later* resolution would have
// enlarged an earlier decision's candidate set are explored with the
// quiescent candidate set instead. Candidate sets are maximal whenever no
// send causally depends on a wildcard match outcome. The simlint
// happens-before analyzer verifies that property per execution (rule R2):
// every explored execution is re-analyzed, and any causally-dependent send
// downgrades the report from "hb-complete" to "verified-incomplete"
// (McReport::complete == false) instead of silently over-claiming. The
// registered mc/* catalog is R2-clean.
//
// The same analyzer powers a third reduction: HB persistent sets
// (McOptions::hb_sets, CLI --no-hb). A branch that forces candidate B in
// place of the chosen candidate A is pruned when A's send happens-before
// B's send — under causal delivery B cannot overtake A, so the branch
// replays an already-explored behaviour. Only genuinely racing
// (HB-concurrent) candidates branch; digests and race points are
// unchanged, with fewer executions.
//
// Per execution the checker asserts:
//  (a) no deadlock — a blocked-forever rank (Simulation::DeadlockError)
//      yields a witness: the forced-choice list, greedily minimized and
//      written to a replayable file (`gridsim replay --witness FILE`);
//  (b) result-digest stability — the scenario's metrics (which mc/*
//      scenarios define as interleaving-invariant reductions: counts, byte
//      totals, commutative checksums) hash to the same value under every
//      explored interleaving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "mpi/match_arbiter.hpp"
#include "simlint/lint.hpp"

namespace gridsim::simmc {

/// One arbitrated wildcard match as recorded during an execution.
struct DecisionRecord {
  int rank = -1;       ///< receiving rank
  int recv_seq = -1;   ///< per-rank wildcard posting index
  int want_tag = -1;   ///< the receive's tag filter
  std::vector<mpi::MatchCandidate> candidates;  ///< arrival order
  std::size_t chosen = 0;                       ///< index matched
};

/// Arbiter that defers wildcards and replays a choice script: decision i
/// takes candidate script[i] (clamped to the candidate count; decisions
/// past the script's end take candidate 0 = arrival order). Records every
/// decision for the explorer.
class ScriptedArbiter final : public mpi::MatchArbiter {
 public:
  explicit ScriptedArbiter(std::vector<std::size_t> script = {})
      : script_(std::move(script)) {}
  bool defer_wildcards() const override { return true; }
  std::size_t choose(const mpi::MatchDecision& decision) override;
  const std::vector<DecisionRecord>& trace() const { return trace_; }

 private:
  std::vector<std::size_t> script_;
  std::vector<DecisionRecord> trace_;
};

/// Outcome of one scripted execution of a scenario.
struct ExecutionRecord {
  std::vector<DecisionRecord> trace;
  std::uint64_t digest = 0;  ///< result digest (valid when !deadlocked)
  bool deadlocked = false;
  std::string deadlock_report;        ///< DeadlockError::what()
  std::vector<std::string> blocked;   ///< per-operation blocked lines
  bool failed = false;                ///< non-deadlock exception
  std::string error;
  simlint::LintSummary lint;  ///< HB analysis of this execution's comm log
};

/// A replayable deadlock schedule ("gridsim-mc-witness/1" on disk).
struct Witness {
  std::string scenario;
  std::uint64_t seed = 1;
  std::vector<std::size_t> choices;  ///< forced candidate per decision
  std::vector<std::string> blocked;  ///< blocked report of the witness run
  bool save(const std::string& path) const;
  static bool load(const std::string& path, Witness* out,
                   std::string* error);
};

struct McOptions {
  int max_execs = 64;        ///< exploration budget (executions)
  std::uint64_t seed = 1;    ///< ScenarioContext seed for every execution
  int minimize_budget = 32;  ///< extra executions for witness shrinking
  bool hb_sets = true;       ///< HB persistent-set reduction (CLI --no-hb)
};

/// Exploration summary for one scenario ("gridsim-mc/1" JSON element).
struct McReport {
  std::string scenario;
  /// "ok" | "digest-divergence" | "deadlock" | "error" | "skipped".
  std::string status;
  int executions = 0;      ///< scripted executions run (incl. minimization)
  int race_points = 0;     ///< decision sites that ever had >= 2 candidates
  int max_candidates = 0;  ///< widest candidate set seen
  int pruned = 0;          ///< executions elided by assignment dedup
  int hb_pruned = 0;       ///< branches elided by HB persistent sets
  int causal_sends = 0;    ///< max R2 causally-dependent sends (simlint)
  bool complete = true;    ///< no execution tripped R2: candidate sets
                           ///< were provably maximal ("hb-complete")
  int deepest_trace = 0;   ///< longest decision trace
  std::vector<std::uint64_t> digests;  ///< distinct result digests
  Witness witness;             ///< populated when status == "deadlock"
  std::string witness_path;    ///< where the CLI saved it (may be empty)
  std::string detail;          ///< one human-readable line
  bool ok() const { return status == "ok" || status == "skipped"; }
};

/// Interleaving-invariant result digest: FNV-1a over the scenario's metric
/// (name, value) pairs, sorted by name, values fixed-point quantized.
std::uint64_t result_digest(const harness::ScenarioResult& result);

/// Runs one execution of `spec` under a scripted deferring arbiter.
/// Deadlocking executions abandon their suspended coroutine frames on
/// purpose (leak-exempted under AddressSanitizer).
ExecutionRecord run_scripted(const harness::ScenarioSpec& spec,
                             const std::vector<std::size_t>& script,
                             std::uint64_t seed);

/// Explores alternative wildcard matching orders of `spec` depth-first up
/// to `options.max_execs` executions. Stops at the first deadlock with a
/// minimized witness.
McReport explore(const harness::ScenarioSpec& spec,
                 const McOptions& options);

/// Writes the consolidated "gridsim-mc/1" JSON report (one scenario object
/// per line, shell-diffable like the campaign report).
bool write_mc_json(const std::string& path, const std::string& filter,
                   const McOptions& options, int ranks_cap,
                   const std::vector<McReport>& reports);

}  // namespace gridsim::simmc
