#include "npb/npb.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "collectives/collectives.hpp"

namespace gridsim::npb {

namespace {

using mpi::Rank;

// ---------------------------------------------------------------------------
// Class parameter tables (NPB 2.4).
// ---------------------------------------------------------------------------

struct ClassRow {
  double ops_s, ops_w, ops_a, ops_b, ops_c;  ///< total operations per class
  int it_s, it_w, it_a, it_b, it_c;          ///< outer iterations per class
};

// Operation counts from the NPB reports (Mops x 1e6), iterations from the
// official problem definitions.
const ClassRow kRows[] = {
    /* EP */ {0.42e9, 3.4e9, 26.8e9, 107.2e9, 428.8e9, 1, 1, 1, 1, 1},
    /* CG */ {0.07e9, 0.40e9, 1.50e9, 54.9e9, 143.3e9, 15, 15, 15, 75, 75},
    /* MG */ {0.01e9, 0.50e9, 3.90e9, 18.7e9, 155.7e9, 4, 4, 4, 20, 20},
    /* LU */ {0.10e9, 9.0e9, 64.6e9, 403.5e9, 1604.8e9, 50, 300, 250, 250,
              250},
    /* SP */ {0.10e9, 12.0e9, 85.0e9, 447.1e9, 1785.0e9, 100, 400, 400, 400,
              400},
    /* BT */ {0.17e9, 25.0e9, 168.3e9, 721.5e9, 2879.2e9, 60, 200, 200, 200,
              200},
    /* IS */ {0.002e9, 0.10e9, 0.78e9, 3.30e9, 13.4e9, 10, 10, 10, 10, 10},
    /* FT */ {0.18e9, 2.0e9, 7.10e9, 92.8e9, 398.0e9, 6, 6, 6, 20, 20},
};

const ClassRow& row(Kernel k) { return kRows[static_cast<int>(k)]; }

double class_pick(const ClassRow& r, Class c, bool ops) {
  switch (c) {
    case Class::kS:
      return ops ? r.ops_s : r.it_s;
    case Class::kW:
      return ops ? r.ops_w : r.it_w;
    case Class::kA:
      return ops ? r.ops_a : r.it_a;
    case Class::kB:
      return ops ? r.ops_b : r.it_b;
    case Class::kC:
      return ops ? r.ops_c : r.it_c;
  }
  return 0;
}

/// Problem edge length per class for the grid-structured kernels.
int grid_n(Kernel k, Class c) {
  switch (k) {
    case Kernel::kMG:
      switch (c) {
        case Class::kS: return 32;
        case Class::kW: return 128;
        case Class::kA:
        case Class::kB: return 256;  // A and B both use 256^3
        case Class::kC: return 512;
      }
      return 0;
    case Kernel::kLU:
    case Kernel::kSP:
    case Kernel::kBT:
      switch (c) {
        case Class::kS: return 12;
        case Class::kW: return 33;
        case Class::kA: return 64;
        case Class::kB: return 102;
        case Class::kC: return 162;
      }
      return 0;
    case Kernel::kFT:
      switch (c) {
        case Class::kS: return 64;
        case Class::kW: return 128;
        case Class::kA: return 256;
        case Class::kB:
        case Class::kC: return 512;
      }
      return 0;
    default:
      return 0;
  }
}

/// CG matrix order per class.
int cg_na(Class c) {
  switch (c) {
    case Class::kS: return 1400;
    case Class::kW: return 7000;
    case Class::kA: return 14000;
    case Class::kB: return 75000;
    case Class::kC: return 150000;
  }
  return 0;
}

/// IS key volume in bytes per class (keys x 4 B).
double is_total_bytes(Class c) {
  double keys = 0;
  switch (c) {
    case Class::kS: keys = 1 << 16; break;
    case Class::kW: keys = 1 << 20; break;
    case Class::kA: keys = 1 << 23; break;
    case Class::kB: keys = 1 << 25; break;
    case Class::kC: keys = 1 << 27; break;
  }
  return keys * 4.0;
}

int isqrt(int p) {
  const int q = static_cast<int>(std::lround(std::sqrt(double(p))));
  if (q * q != p)
    throw std::invalid_argument(
        "this NPB kernel needs a perfect-square process count");
  return q;
}

/// Per-iteration compute on this rank, in reference seconds.
double iter_compute(Kernel k, Class c, int p) {
  return total_ops(k, c) / iterations(k, c) / p / kFlopsPerSecond;
}

// ---------------------------------------------------------------------------
// EP: compute, then a handful of tiny reductions (Table 2: 8 B and 80 B).
// ---------------------------------------------------------------------------

Task<void> run_ep(Rank& r, Class c) {
  co_await r.compute(total_ops(Kernel::kEP, c) / r.size() / kFlopsPerSecond);
  // Gaussian-pair counts (q array) and sums: 80 B + a few scalars.
  co_await coll::allreduce(r, 80);
  co_await coll::allreduce(r, 8);
  co_await coll::allreduce(r, 8);
  co_await coll::allreduce(r, 8);
}

// ---------------------------------------------------------------------------
// CG: 2D process grid (rows x cols). Each of the ~25 inner iterations does a
// matvec (log2(cols) row-sum exchanges of the local vector segment + one
// transpose exchange) and two dot products (log2(cols) 8-byte exchanges).
// ---------------------------------------------------------------------------

Task<void> sendrecv(Rank& r, int peer, double bytes, int tag) {
  mpi::Request req = r.isend(peer, bytes, tag);
  (void)co_await r.recv(peer, tag);
  (void)co_await r.wait(req);
}

Task<void> run_cg(Rank& r, Class c) {
  const int p = r.size();
  const int cols = isqrt(p);
  const int me = r.rank();
  const int my_row = me / cols;
  const int my_col = me % cols;
  const double seg_bytes = cg_na(c) / double(cols) * 8.0;  // ~147 kB at B/16
  // The transpose partner swaps row and column.
  const int transpose = my_col * cols + my_row;
  const int niter = iterations(Kernel::kCG, c);
  constexpr int kInner = 25;
  const double step_compute =
      iter_compute(Kernel::kCG, c, p) / (kInner + 1);

  for (int it = 0; it < niter; ++it) {
    for (int inner = 0; inner <= kInner; ++inner) {
      co_await r.compute(step_compute);
      // Matvec row sums: butterfly over the row.
      for (int d = 1; d < cols; d <<= 1) {
        const int peer = my_row * cols + (my_col ^ d);
        co_await sendrecv(r, peer, seg_bytes, 1);
      }
      // Transpose exchange.
      if (transpose != me) co_await sendrecv(r, transpose, seg_bytes, 2);
      // Two dot products: 8-byte butterflies over the row.
      for (int dot = 0; dot < 2; ++dot) {
        for (int d = 1; d < cols; d <<= 1) {
          const int peer = my_row * cols + (my_col ^ d);
          co_await sendrecv(r, peer, 8, 3);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// MG: 3D decomposition, V-cycles over ~log2(n) levels; halo exchanges in
// the three dimensions at each level, several passes per level.
// ---------------------------------------------------------------------------

struct Decomp3D {
  int px, py, pz;
};

Decomp3D decomp3d(int p) {
  // Split factors of two across dimensions, x first (matches NPB's
  // power-of-two layouts: 16 -> 4x2x2, 4 -> 2x2x1).
  Decomp3D d{1, 1, 1};
  int rem = p;
  int axis = 0;
  while (rem > 1) {
    if (rem % 2 != 0)
      throw std::invalid_argument("MG needs a power-of-two process count");
    (axis == 0 ? d.px : axis == 1 ? d.py : d.pz) *= 2;
    axis = (axis + 1) % 3;
    rem /= 2;
  }
  return d;
}

Task<void> run_mg(Rank& r, Class c) {
  const int p = r.size();
  const Decomp3D d = decomp3d(p);
  const int me = r.rank();
  const int ix = me % d.px;
  const int iy = (me / d.px) % d.py;
  const int iz = me / (d.px * d.py);
  const int n = grid_n(Kernel::kMG, c);
  const int niter = iterations(Kernel::kMG, c);
  int levels = 0;
  for (int sz = n; sz >= 4; sz /= 2) ++levels;
  const double level_compute =
      iter_compute(Kernel::kMG, c, p) / levels / 3.0;

  for (int it = 0; it < niter; ++it) {
    for (int pass = 0; pass < 3; ++pass) {  // restrict, smooth, prolongate
      for (int sz = n; sz >= 4; sz /= 2) {
        co_await r.compute(level_compute);
        // Halo exchange: two faces per dimension. Face area = product of
        // the local extents of the two orthogonal dimensions.
        const double lx = double(sz) / d.px;
        const double ly = double(sz) / d.py;
        const double lz = double(sz) / d.pz;
        const double areas[3] = {ly * lz, lx * lz, lx * ly};
        const int coords[3] = {ix, iy, iz};
        const int parts[3] = {d.px, d.py, d.pz};
        for (int dim = 0; dim < 3; ++dim) {
          if (parts[dim] == 1) continue;
          const double bytes = std::max(4.0, areas[dim] * 8.0);
          // Neighbour ranks along this dimension (periodic).
          int up_c[3] = {ix, iy, iz};
          int dn_c[3] = {ix, iy, iz};
          up_c[dim] = (coords[dim] + 1) % parts[dim];
          dn_c[dim] = (coords[dim] - 1 + parts[dim]) % parts[dim];
          const int up = up_c[0] + d.px * (up_c[1] + d.py * up_c[2]);
          const int dn = dn_c[0] + d.px * (dn_c[1] + d.py * dn_c[2]);
          mpi::Request s1 = r.isend(up, bytes, 10 + dim);
          mpi::Request s2 = r.isend(dn, bytes, 20 + dim);
          (void)co_await r.recv(dn, 10 + dim);
          (void)co_await r.recv(up, 20 + dim);
          co_await r.wait(s1);
          co_await r.wait(s2);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// LU: SSOR wavefront on a 2D grid. For every k plane the rank waits for its
// north and west neighbours, computes, and feeds south and east — the
// pipelined dependency chain makes LU the most latency-exposed kernel.
// ---------------------------------------------------------------------------

Task<void> run_lu(Rank& r, Class c) {
  const int p = r.size();
  const int q = isqrt(p);
  const int me = r.rank();
  const int my_row = me / q;
  const int my_col = me % q;
  const int north = my_row > 0 ? me - q : -1;
  const int south = my_row < q - 1 ? me + q : -1;
  const int west = my_col > 0 ? me - 1 : -1;
  const int east = my_col < q - 1 ? me + 1 : -1;
  const int n = grid_n(Kernel::kLU, c);
  const int niter = iterations(Kernel::kLU, c);
  // 5 doubles per boundary cell of the plane edge: 1020 B at class B on 16
  // ranks (Table 2: 960 B..1040 B).
  const double msg = double(n) / q * 5 * 8;
  const double plane_compute = iter_compute(Kernel::kLU, c, p) / (2.0 * n);

  for (int it = 0; it < niter; ++it) {
    // Lower-triangular sweep: NW -> SE.
    for (int k = 0; k < n; ++k) {
      if (north >= 0) (void)co_await r.recv(north, 40);
      if (west >= 0) (void)co_await r.recv(west, 41);
      co_await r.compute(plane_compute);
      if (south >= 0) co_await r.send(south, msg, 40);
      if (east >= 0) co_await r.send(east, msg, 41);
    }
    // Upper-triangular sweep: SE -> NW.
    for (int k = 0; k < n; ++k) {
      if (south >= 0) (void)co_await r.recv(south, 42);
      if (east >= 0) (void)co_await r.recv(east, 43);
      co_await r.compute(plane_compute);
      if (north >= 0) co_await r.send(north, msg, 42);
      if (west >= 0) co_await r.send(west, msg, 43);
    }
  }
}

// ---------------------------------------------------------------------------
// SP and BT: ADI with multi-partition: per iteration, a copy-faces halo
// phase then x/y/z line solves, each sweeping q-1 stages across the square
// process grid.
// ---------------------------------------------------------------------------

Task<void> run_adi(Rank& r, Class c, Kernel k) {
  const int p = r.size();
  const int q = isqrt(p);
  const int me = r.rank();
  const int my_row = me / q;
  const int my_col = me % q;
  const int n = grid_n(k, c);
  const int niter = iterations(k, c);
  const double cells_per_rank = double(n) * n * n / p;
  // Face payloads calibrated against Table 2 at class B on 16 ranks:
  // BT: 26 kB copy-faces + ~151 kB solver lines; SP: 50 kB + ~130 kB.
  const double copy_bytes =
      cells_per_rank / n * (k == Kernel::kBT ? 5.0 : 9.6) * 8.0;
  const double solve_bytes =
      cells_per_rank / n * (k == Kernel::kBT ? 29.0 : 25.0) * 8.0;
  const double stage_compute =
      iter_compute(k, c, p) / (3.0 * q + 1.0);

  const int row_next = my_row * q + (my_col + 1) % q;
  const int row_prev = my_row * q + (my_col - 1 + q) % q;
  const int col_next = ((my_row + 1) % q) * q + my_col;
  const int col_prev = ((my_row - 1 + q) % q) * q + my_col;

  for (int it = 0; it < niter; ++it) {
    // copy_faces: exchange with the four mesh neighbours.
    co_await r.compute(stage_compute);
    {
      mpi::Request s1 = r.isend(row_next, copy_bytes, 50);
      mpi::Request s2 = r.isend(col_next, copy_bytes, 51);
      (void)co_await r.recv(row_prev, 50);
      (void)co_await r.recv(col_prev, 51);
      co_await r.wait(s1);
      co_await r.wait(s2);
    }
    // Three ADI sweeps; x and z sweep along rows, y along columns.
    for (int dim = 0; dim < 3; ++dim) {
      const int next = dim == 1 ? col_next : row_next;
      const int prev = dim == 1 ? col_prev : row_prev;
      for (int stage = 0; stage < q - 1; ++stage) {
        co_await r.compute(stage_compute);
        // Non-blocking send: with a blocking one the stage ring deadlocks
        // under the rendez-vous protocol (every rank waits for a CTS that
        // only arrives once its peer posts a receive).
        mpi::Request req = r.isend(next, solve_bytes, 60 + dim);
        (void)co_await r.recv(prev, 60 + dim);
        (void)co_await r.wait(req);
      }
      co_await r.compute(stage_compute);
    }
  }
}

// ---------------------------------------------------------------------------
// IS: per iteration an 8-byte + 1 kB allreduce of bucket boundaries, a small
// alltoall of bucket counts, then the full key exchange (alltoallv).
// ---------------------------------------------------------------------------

Task<void> run_is(Rank& r, Class c) {
  const int p = r.size();
  const int niter = iterations(Kernel::kIS, c) + 1;  // +1 warmup round
  const double keys_bytes = is_total_bytes(c);
  const double per_pair = keys_bytes / p / p;
  std::vector<double> lens(static_cast<size_t>(p), per_pair);
  lens[static_cast<size_t>(r.rank())] = 0;
  const double compute = iter_compute(Kernel::kIS, c, p);
  for (int it = 0; it < niter; ++it) {
    co_await r.compute(compute);
    co_await coll::allreduce(r, 1024);        // bucket size distribution
    co_await coll::alltoall(r, p * 4.0);      // send counts
    co_await coll::alltoallv(r, lens);        // the keys
  }
  co_await coll::allreduce(r, 8);  // full verification
}

// ---------------------------------------------------------------------------
// FT: per the paper's Table 2, FT is broadcast-dominated: a tiny control
// broadcast plus several large data broadcasts per iteration.
// ---------------------------------------------------------------------------

Task<void> run_ft(Rank& r, Class c) {
  const int p = r.size();
  const int n = grid_n(Kernel::kFT, c);
  const int niter = iterations(Kernel::kFT, c);
  // Plane slice: ~131 kB at class A / 16 ranks (Table 2: 352 x 128 kB).
  const int nz = (c == Class::kB || c == Class::kC) ? 256 : n / 2;
  const double slab = double(n) * n * nz / (double(p) * 32.0) * 8.0 / n;
  const double bcast_bytes =
      slab * n / ((c == Class::kB || c == Class::kC) ? 4.0 : 1.0);
  const double compute = iter_compute(Kernel::kFT, c, p);
  for (int it = 0; it < niter; ++it) {
    co_await coll::bcast(r, it % p, 1);  // sync/control
    co_await r.compute(compute);
    for (int b = 0; b < 3; ++b)
      co_await coll::bcast(r, (it + b) % p, bcast_bytes);
    co_await coll::allreduce(r, 16);  // checksum
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

std::string name(Kernel k) {
  switch (k) {
    case Kernel::kEP: return "EP";
    case Kernel::kCG: return "CG";
    case Kernel::kMG: return "MG";
    case Kernel::kLU: return "LU";
    case Kernel::kSP: return "SP";
    case Kernel::kBT: return "BT";
    case Kernel::kIS: return "IS";
    case Kernel::kFT: return "FT";
  }
  return "?";
}

std::vector<Kernel> all_kernels() {
  return {Kernel::kEP, Kernel::kCG, Kernel::kMG, Kernel::kLU,
          Kernel::kSP, Kernel::kBT, Kernel::kIS, Kernel::kFT};
}

double total_ops(Kernel k, Class c) { return class_pick(row(k), c, true); }

int iterations(Kernel k, Class c) {
  return static_cast<int>(class_pick(row(k), c, false));
}

void validate_ranks(Kernel k, int nranks) {
  if (nranks <= 0) throw std::invalid_argument("nranks must be positive");
  const bool pow2 = (nranks & (nranks - 1)) == 0;
  switch (k) {
    case Kernel::kEP:
    case Kernel::kIS:
    case Kernel::kFT:
    case Kernel::kMG:
      if (!pow2)
        throw std::invalid_argument(name(k) +
                                    " needs a power-of-two process count");
      break;
    case Kernel::kCG:
    case Kernel::kLU:
    case Kernel::kSP:
    case Kernel::kBT:
      (void)isqrt(nranks);  // throws if not a perfect square
      break;
  }
}

Task<void> run_kernel(mpi::Rank& r, Kernel k, Class c) {
  switch (k) {
    case Kernel::kEP: co_await run_ep(r, c); break;
    case Kernel::kCG: co_await run_cg(r, c); break;
    case Kernel::kMG: co_await run_mg(r, c); break;
    case Kernel::kLU: co_await run_lu(r, c); break;
    case Kernel::kSP: co_await run_adi(r, c, Kernel::kSP); break;
    case Kernel::kBT: co_await run_adi(r, c, Kernel::kBT); break;
    case Kernel::kIS: co_await run_is(r, c); break;
    case Kernel::kFT: co_await run_ft(r, c); break;
  }
}

}  // namespace gridsim::npb
