// NAS Parallel Benchmark communication skeletons (NPB 2.4).
//
// The paper uses the NPB purely as communication-pattern generators
// (Section 3.1, Table 2): what matters for grid behaviour is each kernel's
// message sizes, counts and dependency structure, not its arithmetic. Each
// skeleton reproduces the real kernel's per-iteration communication
// topology --
//
//   EP  embarrassingly parallel: compute + a few tiny allreduces
//   CG  conjugate gradient: row-sum exchanges (~147 kB class B/16) and
//       8-byte dot-product reductions on a 2D process grid
//   MG  multigrid V-cycles: 3D halo exchanges from 4 B up to ~131 kB
//   LU  SSOR wavefront: ~1 kB north/west -> south/east pipelined messages,
//       by far the most messages of the suite
//   SP  ADI multi-partition sweeps, 45..160 kB faces
//   BT  ADI multi-partition sweeps, 26 kB copy-faces + ~150 kB solves
//   IS  bucket sort: allreduce + alltoall + large alltoallv,
//       the largest collective payloads of the suite
//   FT  3D FFT: large broadcasts (as characterised by the paper's Table 2)
//
// -- with synthetic compute calibrated from the official per-class Mop
// counts at ~500 Mflop/s per 2007 Opteron core.
#pragma once

#include <string>
#include <vector>

#include "mpi/mpi.hpp"
#include "simcore/task.hpp"

namespace gridsim::npb {

enum class Kernel { kEP, kCG, kMG, kLU, kSP, kBT, kIS, kFT };
enum class Class { kS, kW, kA, kB, kC };

std::string name(Kernel k);
std::vector<Kernel> all_kernels();

/// Total operation count for the kernel at this class (for compute
/// calibration; from the NPB reports).
double total_ops(Kernel k, Class c);

/// Outer iteration count at this class.
int iterations(Kernel k, Class c);

/// Reference node sustained rate used to convert ops to seconds.
inline constexpr double kFlopsPerSecond = 5e8;

/// Throws std::invalid_argument if `nranks` is not a valid process count
/// for this kernel: EP/IS/FT accept any power of two; MG needs a power of
/// two; CG, LU, SP and BT need a perfect square. Call before launching.
void validate_ranks(Kernel k, int nranks);

/// Runs the kernel on this rank. Every rank of the job must call this with
/// the same arguments; the job size must satisfy validate_ranks().
Task<void> run_kernel(mpi::Rank& r, Kernel k, Class c);

}  // namespace gridsim::npb
