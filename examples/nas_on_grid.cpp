// Run one NAS kernel on a cluster and on the grid and compare.
//
//   $ ./nas_on_grid [kernel] [class] [ranks]
//   $ ./nas_on_grid CG B 16
#include <cstdio>
#include <string>

#include "harness/npb_campaign.hpp"
#include "harness/report.hpp"
#include "profiles/profiles.hpp"

int main(int argc, char** argv) {
  using namespace gridsim;

  const std::string kernel_name = argc > 1 ? argv[1] : "CG";
  const std::string class_name = argc > 2 ? argv[2] : "A";
  const int nranks = argc > 3 ? std::atoi(argv[3]) : 16;

  npb::Kernel kernel = npb::Kernel::kCG;
  bool found = false;
  for (npb::Kernel k : npb::all_kernels()) {
    if (npb::name(k) == kernel_name) {
      kernel = k;
      found = true;
    }
  }
  if (!found || nranks <= 0 || nranks % 2 != 0) {
    std::fprintf(stderr,
                 "usage: nas_on_grid [EP|CG|MG|LU|SP|BT|IS|FT] [S|A|B] "
                 "[even rank count]\n");
    return 1;
  }
  const npb::Class cls = class_name == "S"   ? npb::Class::kS
                         : class_name == "B" ? npb::Class::kB
                                             : npb::Class::kA;
  try {
    npb::validate_ranks(kernel, nranks);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  std::printf("NPB %s class %s on %d processes (MPICH2 profile, TCP tuned)\n",
              kernel_name.c_str(), class_name.c_str(), nranks);
  const auto cfg = profiles::configure(profiles::mpich2(),
                                       profiles::TuningLevel::kTcpTuned);
  const auto cluster = harness::run_npb(
      topo::GridSpec::single_cluster(nranks), nranks, kernel, cls, cfg);
  const auto grid = harness::run_npb(topo::GridSpec::rennes_nancy(nranks / 2),
                                     nranks, kernel, cls, cfg);

  std::printf("  one cluster      : %8.2f s\n", to_seconds(cluster.makespan));
  std::printf("  split by the WAN : %8.2f s\n", to_seconds(grid.makespan));
  std::printf("  grid efficiency  : %8.2f\n",
              to_seconds(cluster.makespan) / to_seconds(grid.makespan));
  std::printf(
      "  traffic          : %llu p2p msgs (%.1f MB), %llu collective msgs "
      "(%.1f MB)\n",
      static_cast<unsigned long long>(grid.traffic.p2p_messages),
      grid.traffic.p2p_bytes / 1e6,
      static_cast<unsigned long long>(grid.traffic.collective_messages),
      grid.traffic.collective_bytes / 1e6);
  return 0;
}
