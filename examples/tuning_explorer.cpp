// Tuning explorer: show what each of the paper's tuning steps buys for a
// chosen MPI implementation on the grid.
//
//   $ ./tuning_explorer [MPICH2|GridMPI|MPICH-Madeleine|OpenMPI]
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/pingpong.hpp"
#include "harness/report.hpp"
#include "profiles/profiles.hpp"

int main(int argc, char** argv) {
  using namespace gridsim;

  const std::string want = argc > 1 ? argv[1] : "OpenMPI";
  mpi::ImplProfile impl;
  bool found = false;
  for (const auto& p : profiles::all_implementations()) {
    if (p.name == want) {
      impl = p;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr,
                 "unknown implementation '%s' (try MPICH2, GridMPI, "
                 "MPICH-Madeleine, OpenMPI)\n",
                 want.c_str());
    return 1;
  }

  const topo::GridSpec spec = topo::GridSpec::rennes_nancy(1);
  const harness::PingpongEndpoints ends{0, 0, 1, 0};
  harness::PingpongOptions options;
  options.sizes = harness::pow2_sizes(1024, 64.0 * 1024 * 1024);
  options.rounds = 10;

  std::printf("%s on the Rennes--Nancy path, by tuning level\n\n",
              impl.name.c_str());
  std::printf("%10s %14s %14s %14s\n", "size", "default", "tcp-tuned",
              "fully-tuned");
  std::vector<std::vector<harness::PingpongPoint>> runs;
  for (auto level :
       {profiles::TuningLevel::kDefault, profiles::TuningLevel::kTcpTuned,
        profiles::TuningLevel::kFullyTuned}) {
    runs.push_back(harness::pingpong_sweep(
        spec, ends, profiles::configure(impl, level), options));
  }
  for (std::size_t i = 0; i < options.sizes.size(); ++i) {
    std::printf("%10s %14.1f %14.1f %14.1f\n",
                harness::format_bytes(options.sizes[i]).c_str(),
                runs[0][i].max_bandwidth_mbps, runs[1][i].max_bandwidth_mbps,
                runs[2][i].max_bandwidth_mbps);
  }
  std::printf(
      "\nStep 1 (tcp-tuned): 4 MB socket buffers via this implementation's\n"
      "knob. Step 2 (fully-tuned): eager/rendez-vous threshold raised\n"
      "(Table 5), removing the dip above the default threshold.\n");
  return 0;
}
