// The full nine-site Grid'5000 backbone of the paper's Fig 1: print the
// site-to-site latency matrix and run a quick bandwidth probe between two
// 10 GbE sites and two 1 GbE sites.
//
//   $ ./nine_sites
#include <cstdio>

#include "harness/pingpong.hpp"
#include "harness/report.hpp"
#include "profiles/profiles.hpp"
#include "simcore/simulation.hpp"
#include "topology/grid5000.hpp"

int main() {
  using namespace gridsim;

  const auto spec = topo::GridSpec::grid5000_full(2);
  Simulation sim;
  topo::Grid grid(sim, spec);

  std::printf("Grid'5000 site-to-site RTT (ms):\n%10s", "");
  for (const auto& s : spec.sites) std::printf("%9.8s", s.name.c_str());
  std::printf("\n");
  for (int a = 0; a < grid.site_count(); ++a) {
    std::printf("%10s", spec.sites[static_cast<size_t>(a)].name.c_str());
    for (int b = 0; b < grid.site_count(); ++b) {
      if (a == b) {
        std::printf("%9s", "-");
      } else {
        std::printf("%9.1f",
                    to_milliseconds(grid.rtt(grid.node(a, 0),
                                             grid.node(b, 0))));
      }
    }
    std::printf("\n");
  }

  const auto cfg = profiles::configure(profiles::mpich2(),
                                       profiles::TuningLevel::kFullyTuned);
  harness::PingpongOptions opt;
  opt.sizes = {16.0 * 1024 * 1024};
  opt.rounds = 8;
  struct Probe {
    int a, b;
    const char* label;
  };
  // rennes(6) <-> nancy(4): both on the 10 GbE core.
  // sophia(7) <-> toulouse(8): both behind 1 GbE uplinks.
  const Probe probes[] = {{6, 4, "rennes  <-> nancy   (10G uplinks)"},
                          {7, 8, "sophia  <-> toulouse (1G uplinks)"}};
  std::printf("\n16 MB ping-pong bandwidth (fully tuned MPICH2):\n");
  for (const Probe& p : probes) {
    const auto points = harness::pingpong_sweep(
        spec, harness::PingpongEndpoints{p.a, 0, p.b, 0}, cfg, opt);
    std::printf("  %-36s %8.1f Mbps\n", p.label,
                points.at(0).max_bandwidth_mbps);
  }
  std::printf(
      "\nEvery node has a 1 GbE NIC, so single-flow bandwidth is NIC-bound\n"
      "on both pairs; the uplink difference shows up only under aggregate\n"
      "load (several concurrent node pairs).\n");
  return 0;
}
