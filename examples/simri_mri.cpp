// Simri MRI simulator (paper Section 2.2.2): master/slave static division.
//
//   $ ./simri_mri [object_n] [nodes]
//
// Reproduces the published observations: ~100% efficiency on an 8-node
// cluster (the master does not compute) and communication under ~1.5% of
// the runtime once the object reaches 256x256.
#include <cstdio>
#include <cstdlib>

#include "apps/simri.hpp"
#include "profiles/profiles.hpp"

int main(int argc, char** argv) {
  using namespace gridsim;

  apps::SimriConfig app;
  if (argc > 1) app.object_n = std::atoi(argv[1]);
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 8;
  if (app.object_n < 8 || nodes < 2 || nodes > 16) {
    std::fprintf(stderr, "usage: simri_mri [object_n >= 8] [2 <= nodes <= 16]\n");
    return 1;
  }

  const auto cfg = profiles::configure(profiles::mpich2(),
                                       profiles::TuningLevel::kDefault);
  std::printf("Simri: %dx%d object on %d nodes (1 master + %d slaves)\n\n",
              app.object_n, app.object_n, nodes, nodes - 1);
  std::printf("%8s %12s %12s %12s %12s\n", "object", "total (s)", "comm %",
              "speedup", "efficiency");
  for (int n = app.object_n / 4; n <= app.object_n; n *= 2) {
    apps::SimriConfig scaled = app;
    scaled.object_n = n;
    const auto res =
        apps::run_simri(topo::GridSpec::single_cluster(16), nodes, cfg,
                        scaled);
    std::printf("%5dx%-5d %10.2f %11.2f%% %12.2f %12.2f\n", n, n,
                to_seconds(res.total_time), res.comm_fraction * 100,
                res.speedup, res.efficiency);
  }
  std::printf(
      "\nPaper: with the object at 256x256 or larger, communication and\n"
      "synchronisation cost ~1.5%% and the efficiency approaches 100%%.\n");
  return 0;
}
