// Build a custom grid from scratch and drive the lower layers directly:
// the fluid network (max-min shared links) and the TCP channel model
// (windows, buffers, pacing) — the substrate the MPI layer sits on.
//
//   $ ./custom_topology
#include <cstdio>

#include "simcore/simulation.hpp"
#include "simnet/network.hpp"
#include "simtcp/tcp.hpp"

int main() {
  using namespace gridsim;
  using namespace gridsim::literals;

  Simulation sim;
  net::Network n(sim);

  // A three-node chain: two senders share one 1 GbE bottleneck toward a
  // common sink, 20 ms one-way.
  const auto a = n.add_host("sender-a");
  const auto b = n.add_host("sender-b");
  const auto sink = n.add_host("sink");
  const auto up_a = n.add_link("a.up", tcp::ethernet_goodput(1e9), 100_us, 1e6);
  const auto up_b = n.add_link("b.up", tcp::ethernet_goodput(1e9), 100_us, 1e6);
  const auto wan = n.add_link("wan", tcp::ethernet_goodput(1e9), 20_ms, 1e6);
  n.add_route(a, sink, {up_a, wan}, /*symmetric=*/true);
  n.add_route(b, sink, {up_b, wan}, /*symmetric=*/true);

  // Sender A: stock kernel. Sender B: tuned buffers + pacing.
  const auto stock = tcp::KernelTunables::linux_2_6_18_default();
  const auto tuned = tcp::KernelTunables::grid_tuned();
  tcp::SocketOptions paced;
  paced.pacing = true;
  tcp::TcpChannel cha(n, a, sink, stock, stock, {});
  tcp::TcpChannel chb(n, b, sink, tuned, tuned, paced);

  SimTime done_a = 0, done_b = 0;
  const double bytes = 256e6;
  cha.send(bytes, nullptr, [&] { done_a = sim.now(); });
  chb.send(bytes, nullptr, [&] { done_b = sim.now(); });
  sim.run();

  std::printf("256 MB over a shared 1 GbE path, 40 ms RTT\n");
  std::printf("  stock kernel : %6.2f s  (%.0f Mbps, %d losses)\n",
              to_seconds(done_a), bytes * 8 / to_seconds(done_a) / 1e6,
              cha.loss_events());
  std::printf("  tuned+paced  : %6.2f s  (%.0f Mbps, %d losses)\n",
              to_seconds(done_b), bytes * 8 / to_seconds(done_b) / 1e6,
              chb.loss_events());
  std::printf(
      "\nThe stock kernel's ~175 kB auto-tuning bound caps the window at\n"
      "~35 Mbps on a 40 ms RTT; the tuned sender takes the rest of the\n"
      "bottleneck (max-min fair sharing).\n");
  return 0;
}
