// Quickstart: simulate an MPI ping-pong between two Grid'5000 clusters.
//
//   $ ./quickstart
//
// Builds the paper's Rennes--Nancy testbed, runs MPICH2-like ping-pong
// with default and tuned configurations, and prints what the tuning buys.
#include <cstdio>

#include "harness/pingpong.hpp"
#include "harness/report.hpp"
#include "profiles/profiles.hpp"

int main() {
  using namespace gridsim;

  // 1. Describe the deployment: two 8-node clusters, 11.6 ms RTT WAN.
  const topo::GridSpec spec = topo::GridSpec::rennes_nancy(8);

  // 2. Pick an implementation profile and a tuning level.
  const mpi::ImplProfile impl = profiles::mpich2();

  // 3. Run a ping-pong sweep between one node of each cluster.
  const harness::PingpongEndpoints ends{/*site_a=*/0, /*node_a=*/0,
                                        /*site_b=*/1, /*node_b=*/0};
  harness::PingpongOptions options;
  options.sizes = harness::pow2_sizes(1024, 16.0 * 1024 * 1024);
  options.rounds = 10;

  std::printf("MPI ping-pong, Rennes -> Nancy (11.6 ms RTT, 1 GbE NICs)\n");
  std::printf("%10s %16s %16s\n", "size", "default (Mbps)", "tuned (Mbps)");
  const auto defaults = harness::pingpong_sweep(
      spec, ends,
      profiles::configure(impl, profiles::TuningLevel::kDefault), options);
  const auto tuned = harness::pingpong_sweep(
      spec, ends,
      profiles::configure(impl, profiles::TuningLevel::kFullyTuned), options);
  for (std::size_t i = 0; i < defaults.size(); ++i) {
    std::printf("%10s %16.1f %16.1f\n",
                harness::format_bytes(defaults[i].bytes).c_str(),
                defaults[i].max_bandwidth_mbps,
                tuned[i].max_bandwidth_mbps);
  }
  std::printf(
      "\nThe default kernel caps the TCP window at ~175 kB: on an 11.6 ms\n"
      "path that is ~120 Mbps no matter how fast the link is. Tuning the\n"
      "socket buffers to 4 MB and raising the eager/rendez-vous threshold\n"
      "recovers ~900 Mbps (the paper's Section 4.2).\n");
  return 0;
}
