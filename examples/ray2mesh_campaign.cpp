// Run the ray2mesh seismic-tomography application on the four-site grid
// and study the effect of the master's placement (the paper's Section 4.4).
//
//   $ ./ray2mesh_campaign [rays]
#include <cstdio>
#include <cstdlib>

#include "apps/ray2mesh.hpp"
#include "harness/report.hpp"
#include "profiles/profiles.hpp"

int main(int argc, char** argv) {
  using namespace gridsim;

  apps::Ray2MeshConfig app;
  if (argc > 1) app.total_rays = std::atoi(argv[1]);
  if (app.total_rays < app.rays_per_set) {
    std::fprintf(stderr, "need at least %d rays\n", app.rays_per_set);
    return 1;
  }
  // Keep the example quick by default: scale the workload down 10x from
  // the paper's 1M rays unless overridden.
  if (argc <= 1) {
    app.total_rays = 100'000;
    app.merge_compute_seconds = 16.0;
  }

  const auto spec = topo::GridSpec::ray2mesh_quad(8);
  const auto cfg = profiles::configure(profiles::gridmpi(),
                                       profiles::TuningLevel::kTcpTuned);

  std::printf(
      "ray2mesh: %d rays in sets of %d over 32 slaves on 4 clusters\n\n",
      app.total_rays, app.rays_per_set);
  std::printf("%-10s %12s %12s %12s %18s\n", "master", "compute(s)",
              "merge(s)", "total(s)", "rays/node by site");
  for (int master = 0; master < 4; ++master) {
    const auto res = apps::run_ray2mesh(spec, master, cfg, app);
    std::printf("%-10s %12.1f %12.1f %12.1f   ",
                spec.sites[static_cast<size_t>(master)].name.c_str(),
                to_seconds(res.compute_time), to_seconds(res.merge_time),
                to_seconds(res.total_time));
    for (int s = 0; s < 4; ++s)
      std::printf("%s=%d ", spec.sites[static_cast<size_t>(s)].name.c_str(),
                  res.rays_per_site[static_cast<size_t>(s)] /
                      spec.sites[static_cast<size_t>(s)].nodes);
    std::printf("\n");
  }
  std::printf(
      "\nFaster clusters (sophia) compute more rays; the master's location\n"
      "barely changes the totals (the paper's Tables 6 and 7).\n");
  return 0;
}
