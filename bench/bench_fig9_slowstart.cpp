// Fig 9: impact of TCP slow start / congestion avoidance. 200 messages of
// 1 MB between Rennes and Nancy from cold connections, with bursty cross
// traffic sharing the WAN path (Grid'5000's backbone was shared; in a
// contention-free fluid model no losses occur below the path BDP and the
// transient would collapse to a few round trips).
//
// Configuration: TCP + MPI fully tuned (the paper runs this experiment
// after Section 4.2's tuning), 1 Gbps site uplinks so the cross flow
// actually contends.
//
// Paper shape: raw TCP needs ~5 s to reach its maximum; the MPI
// implementations take ~4 s to reach 500 Mbps -- except GridMPI, whose
// pacing survives the burst losses and converges about twice as fast.
#include "common.hpp"

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  auto spec = topo::GridSpec::rennes_nancy(2);
  for (auto& site : spec.sites) site.uplink_bps = 1e9;  // shared bottleneck
  const harness::PingpongEndpoints ends{0, 0, 1, 0};
  harness::CrossTraffic cross;
  cross.burst_bytes = 24e6;
  cross.period = milliseconds(600);

  std::vector<std::string> headers{"impl", "t_500Mbps (s)", "paper (s)",
                                   "peak (Mbps)"};
  const char* paper_t500[] = {"~4-5 (max)", "~4", "~2", "~4", "~4"};
  std::vector<std::vector<std::string>> summary;

  int idx = 0;
  for (const auto& impl : profiles_with_tcp()) {
    const auto cfg =
        profiles::configure(impl, profiles::TuningLevel::kFullyTuned);
    const auto series =
        harness::slowstart_series(spec, ends, cfg, 1e6, 200, cross);
    std::vector<std::vector<std::string>> rows;
    double peak = 0;
    for (const auto& s : series) {
      rows.push_back({harness::format_double(to_seconds(s.at), 3),
                      harness::format_double(s.mbps, 1)});
      peak = std::max(peak, s.mbps);
    }
    // First time the per-message bandwidth durably exceeds 500 Mbps.
    double t500 = -1;
    for (const auto& s : series) {
      if (s.mbps >= 500) {
        t500 = to_seconds(s.at);
        break;
      }
    }
    harness::print_csv("Fig 9 series: " + impl.name + " (time s, Mbps)",
                       {"t", "mbps"}, rows);
    summary.push_back({impl.name,
                       t500 < 0 ? "never" : harness::format_double(t500, 2),
                       paper_t500[idx], harness::format_double(peak, 0)});
    ++idx;
  }
  harness::print_table(
      "Fig 9 summary: time to reach 500 Mbps per-message bandwidth", headers,
      summary);
  std::printf(
      "\nPaper shape: GridMPI reaches 500 Mbps ~2x sooner than the other\n"
      "implementations (pacing avoids the slow-start overshoot and burst\n"
      "losses); all implementations need seconds, not round trips.\n");
  return 0;
}
