// Fig 9: impact of TCP slow start under bursty cross traffic.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "fig9" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'fig9*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("fig9") == 0 ? 0 : 1;
}
