// Fig 13: speed-up of 8+8 grid nodes over 4 cluster nodes.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "fig13" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'fig13*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("fig13") == 0 ? 0 : 1;
}
