// Fig 13: for each implementation, the speed-up of 16 nodes split 8+8
// across the WAN over 4 nodes in one cluster (the grid's value
// proposition: 4x the resources, imperfectly coupled). A speed-up of 4
// means the WAN costs nothing.
//
// Paper shape: LU and BT close to 4; FT and SP at least 3; CG and MG barely
// above 1 (small messages are destroyed by the latency); every kernel still
// gains something from the extra nodes.
#include "nas_common.hpp"

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  const auto grid_spec = topo::GridSpec::rennes_nancy(8);
  const auto cluster_spec = topo::GridSpec::single_cluster(4);
  const auto impls = profiles::all_implementations();
  std::vector<std::map<npb::Kernel, double>> speedup;
  std::vector<std::string> names;
  for (const auto& impl : impls) {
    names.push_back(impl.name);
    const auto grid = nas_suite_seconds(grid_spec, 16, npb::Class::kB, impl);
    const auto cluster =
        nas_suite_seconds(cluster_spec, 4, npb::Class::kB, impl);
    std::map<npb::Kernel, double> r;
    for (npb::Kernel k : npb::all_kernels())
      r[k] = cluster.at(k) / grid.at(k);
    speedup.push_back(std::move(r));
  }
  print_kernel_table(
      "Fig 13: speed-up of 8+8 grid nodes over 4 cluster nodes (4.0 = "
      "perfect)",
      names, speedup);
  std::printf(
      "\nPaper shape: LU/BT near 4; FT/SP >= 3; CG/MG small; all > 1 --\n"
      "running on the grid pays off despite the latency.\n");
  return 0;
}
