// Fig 12: 8+8 grid nodes relative to 16 cluster nodes.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "fig12" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'fig12*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("fig12") == 0 ? 0 : 1;
}
