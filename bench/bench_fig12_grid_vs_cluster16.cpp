// Fig 12: for each implementation, the relative performance of 16 nodes
// split 8+8 across the WAN versus 16 nodes in one cluster (cluster runtime
// divided by grid runtime; 1.0 = the WAN costs nothing).
//
// Paper shape: EP ~ 1 (no communication); CG and MG poor (latency-bound
// small messages); LU good despite its message count (pipelined ~1 kB
// messages); SP/BT good (big messages); IS poor (huge collective volume);
// FT recovers only with GridMPI's broadcast.
#include "nas_common.hpp"

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  const auto grid_spec = topo::GridSpec::rennes_nancy(8);
  const auto cluster_spec = topo::GridSpec::single_cluster(16);
  const auto impls = profiles::all_implementations();
  std::vector<std::map<npb::Kernel, double>> ratio;
  std::vector<std::string> names;
  for (const auto& impl : impls) {
    names.push_back(impl.name);
    const auto grid = nas_suite_seconds(grid_spec, 16, npb::Class::kB, impl);
    const auto cluster =
        nas_suite_seconds(cluster_spec, 16, npb::Class::kB, impl);
    std::map<npb::Kernel, double> r;
    for (npb::Kernel k : npb::all_kernels())
      r[k] = cluster.at(k) / grid.at(k);
    ratio.push_back(std::move(r));
  }
  print_kernel_table(
      "Fig 12: 8+8 grid nodes relative to 16 cluster nodes (1.0 = no WAN "
      "penalty)",
      names, ratio);
  std::printf(
      "\nPaper shape: EP ~1; CG/MG low; LU/SP/BT high; IS low; FT better\n"
      "under GridMPI. Grid overhead < 20%% for about half the kernels.\n");
  return 0;
}
