// `gridsim bench` support: engine micro-benchmarks and a representative
// figure subset, instrumented end to end and written to BENCH_micro.json /
// BENCH_figs.json (see docs/usage.md for the schema).
//
// The per-figure bench binaries no longer use this header — they are thin
// shims over the scenario catalog (src/scenarios/).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/ray2mesh.hpp"
#include "harness/npb_campaign.hpp"
#include "harness/pingpong.hpp"
#include "profiles/profiles.hpp"
#include "simcore/callback.hpp"
#include "simcore/sync.hpp"
#include "simnet/network.hpp"
#include "simtcp/packet_sim.hpp"

namespace gridsim::bench {

/// One benchmark measurement. `events` is the number of engine events the
/// run processed; `heap_payloads`/`pool_misses` are the callback allocation
/// counters accumulated during the run (zero on the intended hot path).
struct BenchRecord {
  std::string name;
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t heap_payloads = 0;
  std::uint64_t pool_misses = 0;
  std::string note;  ///< human-oriented summary of the simulated result
};

namespace detail {

inline double now_wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Self-rescheduling event storm. Pure engine stress: delays come from a
/// multiplicative hash (no RNG object in the hot loop) and the five capture
/// classes exercise the callback inline sizes 8/16/32/48 bytes plus one
/// 64-byte overflow into the payload pool.
struct ChurnActor {
  Simulation& sim;
  std::uint64_t remaining;
  std::uint64_t step = 0;
  std::uint64_t checksum = 0;

  void next() {
    if (remaining == 0) return;
    --remaining;
    ++step;
    const auto delay =
        static_cast<SimTime>((step * 2654435761ULL) % 1000 + 1);
    switch (step % 5) {
      case 0:
        sim.after(delay, [this] {
          checksum += 1;
          next();
        });
        break;
      case 1: pad_event<1>(delay); break;
      case 2: pad_event<3>(delay); break;
      case 3: pad_event<5>(delay); break;
      default: pad_event<7>(delay); break;
    }
  }

  template <std::size_t Words>
  void pad_event(SimTime delay) {
    std::array<std::uint64_t, Words> pad;
    for (std::size_t i = 0; i < Words; ++i) pad[i] = step + i;
    sim.after(delay, [this, pad] {
      for (auto w : pad) checksum += w;
      next();
    });
  }
};

inline Task<void> bench_chatter(Simulation& sim, Mailbox<int>* in,
                                Mailbox<int>* out, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const int v = co_await in->pop();
    co_await sim.delay(1);
    out->push(v + 1);
  }
}

}  // namespace detail

/// Event-queue churn micro-sim: 64 concurrent self-rescheduling actors,
/// mixed capture sizes, hash-derived delays. Measures raw schedule/dispatch
/// throughput of the engine.
inline BenchRecord bench_queue_churn(bool quick) {
  const std::uint64_t events = quick ? 400'000 : 4'000'000;
  Simulation sim;
  detail::ChurnActor actor{sim, events};
  for (int i = 0; i < 64; ++i) actor.next();
  reset_callback_stats();
  const double t0 = detail::now_wall_s();
  sim.run();
  const double wall = detail::now_wall_s() - t0;
  const CallbackStats cs = callback_stats();
  BenchRecord r;
  r.name = "queue_churn";
  r.events = sim.events_processed();
  r.wall_s = wall;
  r.events_per_sec = static_cast<double>(r.events) / wall;
  r.peak_queue_depth = sim.peak_queue_depth();
  r.heap_payloads = cs.heap_payloads;
  r.pool_misses = cs.pool_misses;
  char buf[64];
  std::snprintf(buf, sizeof buf, "checksum=%llx",
                static_cast<unsigned long long>(actor.checksum));
  r.note = buf;
  return r;
}

/// Coroutine ping-pong micro-sim: pairs of processes exchanging mailbox
/// messages. Measures the spawn/await/resume path rather than the raw queue.
inline BenchRecord bench_coroutine_pingpong(bool quick) {
  const int pairs = quick ? 200 : 2'000;
  const int rounds = quick ? 25 : 50;
  Simulation sim;
  std::vector<std::unique_ptr<Mailbox<int>>> boxes;
  for (int i = 0; i < 2 * pairs; ++i)
    boxes.push_back(std::make_unique<Mailbox<int>>(sim));
  for (int i = 0; i < pairs; ++i) {
    const auto k = static_cast<std::size_t>(i);
    sim.spawn(detail::bench_chatter(sim, boxes[2 * k].get(),
                                    boxes[2 * k + 1].get(), rounds));
    sim.spawn(detail::bench_chatter(sim, boxes[2 * k + 1].get(),
                                    boxes[2 * k].get(), rounds));
    boxes[2 * k]->push(0);
  }
  reset_callback_stats();
  const double t0 = detail::now_wall_s();
  sim.run();
  const double wall = detail::now_wall_s() - t0;
  const CallbackStats cs = callback_stats();
  BenchRecord r;
  r.name = "coroutine_pingpong";
  r.events = sim.events_processed();
  r.wall_s = wall;
  r.events_per_sec = static_cast<double>(r.events) / wall;
  r.peak_queue_depth = sim.peak_queue_depth();
  r.heap_payloads = cs.heap_payloads;
  r.pool_misses = cs.pool_misses;
  return r;
}

/// Packet-level TCP micro-sim: one bulk transfer through the droptail
/// bottleneck. Exercises the timer re-arm discipline and ack batching.
inline BenchRecord bench_packet_tcp(bool quick) {
  const double bytes = quick ? 8e6 : 64e6;
  tcp::PacketSimConfig cfg;
  BenchRecord r;
  r.name = "packet_tcp";
  SimHooks hooks;
  hooks.on_finish = [&r](Simulation& sim) {
    r.events = sim.events_processed();
    r.peak_queue_depth = sim.peak_queue_depth();
  };
  reset_callback_stats();
  const double t0 = detail::now_wall_s();
  const auto res = tcp::packet_level_transfer(bytes, cfg, hooks);
  const double wall = detail::now_wall_s() - t0;
  const CallbackStats cs = callback_stats();
  r.wall_s = wall;
  r.events_per_sec = static_cast<double>(r.events) / wall;
  r.heap_payloads = cs.heap_payloads;
  r.pool_misses = cs.pool_misses;
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "%.0f MB, %d packets, %d losses, %d retransmits", bytes / 1e6,
                res.packets_sent, res.losses, res.retransmits);
  r.note = buf;
  return r;
}

/// Flow-churn micro-sim: `concurrent` long-lived flows in groups of 100
/// (each flow behind its own 40 MB/s uplink, each group sharing a 1 GB/s
/// WAN), mutated at ~10 us spacing — 50% rate-cap edits, 30%
/// cancel+restart, 20% uplink-capacity edits.
/// Measures solver mutations/s; with the incremental solver a mutation
/// re-solves one group's component (~100 flows) while the global-resolve
/// oracle re-solves all `concurrent` flows, so the incremental/oracle ratio
/// is the headline speedup. The note carries the peak dirty-component size
/// and the fast-path hit count.
inline BenchRecord bench_flow_churn(bool quick, int concurrent,
                                    net::SolverMode mode) {
  const int groups = concurrent / 100;
  Simulation sim;
  net::Network n(sim);
  n.set_solver_mode(mode);
  std::vector<net::FlowId> flows;
  std::vector<net::LinkId> uplinks;
  struct Endpoint {
    net::HostId src, dst;
  };
  std::vector<Endpoint> eps;
  flows.reserve(static_cast<std::size_t>(concurrent));
  for (int g = 0; g < groups; ++g) {
    const net::LinkId wan =
        n.add_link("wan" + std::to_string(g), 1e9, milliseconds(5), 1e6);
    for (int i = 0; i < 100; ++i) {
      const std::string suffix = std::to_string(g) + "_" + std::to_string(i);
      const net::HostId s = n.add_host("s" + suffix);
      const net::HostId d = n.add_host("d" + suffix);
      const net::LinkId up = n.add_link("up" + suffix, 4e7, 0, 1e6);
      n.add_route(s, d, {up, wan});
      flows.push_back(n.start_flow(s, d, 1e15, net::kUnlimitedRate, nullptr));
      uplinks.push_back(up);
      eps.push_back({s, d});
    }
  }
  // The oracle pays a full global re-solve per mutation (that is the
  // baseline being measured); fewer ops keep its wall-clock bounded and
  // the ops/s ratio is unaffected.
  const int ops = (quick ? 1000 : 4000) /
                  (mode == net::SolverMode::kGlobalOracle ? 5 : 1);
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;  // deterministic op stream
  const auto next = [&h] {
    h ^= h << 13;
    h ^= h >> 7;
    h ^= h << 17;
    return h;
  };
  const double t0 = detail::now_wall_s();
  for (int op = 0; op < ops; ++op) {
    sim.run_until(sim.now() + microseconds(10));
    const auto pick = static_cast<std::size_t>(next() % flows.size());
    const std::uint64_t kind = next() % 10;
    if (kind < 5) {
      n.set_rate_cap(flows[pick],
                     5e6 + 1e5 * static_cast<double>(next() % 100));
    } else if (kind < 8) {
      n.cancel_flow(flows[pick]);
      flows[pick] = n.start_flow(eps[pick].src, eps[pick].dst, 1e15,
                                 net::kUnlimitedRate, nullptr);
    } else {
      n.set_link_capacity(uplinks[pick],
                          3e7 + 1e5 * static_cast<double>(next() % 100));
    }
  }
  const double wall = detail::now_wall_s() - t0;
  const auto& stats = n.solver_stats();
  BenchRecord r;
  r.name = "flow_churn_" + std::to_string(concurrent / 1000) + "k" +
           (mode == net::SolverMode::kGlobalOracle ? "_oracle" : "");
  r.events = static_cast<std::uint64_t>(ops);  // solver mutations
  r.wall_s = wall;
  r.events_per_sec = static_cast<double>(r.events) / wall;
  r.peak_queue_depth = sim.peak_queue_depth();
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "peak_component=%zu solves=%llu fast=%llu",
                stats.peak_component_flows,
                static_cast<unsigned long long>(stats.solves),
                static_cast<unsigned long long>(stats.fast_solves));
  r.note = buf;
  return r;
}

/// Runs `fn` (which must accept a SimHooks) and packages the engine
/// counters it reports into a BenchRecord.
template <typename Fn>
inline BenchRecord bench_figure(const std::string& name, Fn&& fn) {
  BenchRecord r;
  r.name = name;
  SimHooks hooks;
  hooks.on_finish = [&r](Simulation& sim) {
    r.events += sim.events_processed();
    if (sim.peak_queue_depth() > r.peak_queue_depth)
      r.peak_queue_depth = sim.peak_queue_depth();
  };
  reset_callback_stats();
  const double t0 = detail::now_wall_s();
  r.note = fn(hooks);
  r.wall_s = detail::now_wall_s() - t0;
  const CallbackStats cs = callback_stats();
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
  r.heap_payloads = cs.heap_payloads;
  r.pool_misses = cs.pool_misses;
  return r;
}

/// The engine micro-benchmarks; best-of-`reps` by events/sec.
inline std::vector<BenchRecord> run_micro_suite(bool quick, int reps) {
  std::vector<BenchRecord> out;
  const auto best_of = [reps](auto&& bench_fn, bool q) {
    BenchRecord best = bench_fn(q);
    for (int i = 1; i < reps; ++i) {
      BenchRecord r = bench_fn(q);
      if (r.events_per_sec > best.events_per_sec) best = r;
    }
    return best;
  };
  out.push_back(best_of(bench_queue_churn, quick));
  out.push_back(best_of(bench_coroutine_pingpong, quick));
  out.push_back(best_of(bench_packet_tcp, quick));
  // Incremental-vs-oracle solver throughput at 1k and 10k concurrent flows
  // (single runs: the interesting number is the pairwise ratio, and the
  // oracle runs are slow enough without repetition).
  for (const int concurrent : {1000, 10000}) {
    out.push_back(
        bench_flow_churn(quick, concurrent, net::SolverMode::kIncremental));
    out.push_back(
        bench_flow_churn(quick, concurrent, net::SolverMode::kGlobalOracle));
  }
  return out;
}

/// A representative subset of the paper figures, instrumented end to end:
/// the grid ping-pong sweep (fig. 3 family), one NPB kernel and ray2mesh.
inline std::vector<BenchRecord> run_figure_suite(bool quick) {
  std::vector<BenchRecord> out;

  out.push_back(bench_figure("pingpong_grid", [quick](const SimHooks& hooks) {
    const auto spec = topo::GridSpec::rennes_nancy(1);
    const profiles::ExperimentConfig cfg = profiles::experiment(profiles::mpich2())
        .tuning(profiles::TuningLevel::kFullyTuned);
    harness::PingpongOptions opt;
    opt.sizes = harness::pow2_sizes(1024, quick ? 1024.0 * 1024
                                                : 64.0 * 1024 * 1024);
    opt.rounds = quick ? 4 : 12;
    const auto pts =
        harness::pingpong_sweep(spec, {0, 0, 1, 0}, cfg, opt, hooks);
    char buf[64];
    std::snprintf(buf, sizeof buf, "peak %.1f Mbps",
                  pts.empty() ? 0.0 : pts.back().max_bandwidth_mbps);
    return std::string(buf);
  }));

  out.push_back(bench_figure("npb_cg_grid", [quick](const SimHooks& hooks) {
    const profiles::ExperimentConfig cfg = profiles::experiment(profiles::mpich2())
        .tuning(profiles::TuningLevel::kTcpTuned);
    const auto cls = quick ? npb::Class::kS : npb::Class::kA;
    const auto res = harness::run_npb(topo::GridSpec::rennes_nancy(8), 16,
                                      npb::Kernel::kCG, cls, cfg, 0, hooks);
    char buf[64];
    std::snprintf(buf, sizeof buf, "class %s makespan %.2f s",
                  quick ? "S" : "A", to_seconds(res.makespan));
    return std::string(buf);
  }));

  out.push_back(bench_figure("ray2mesh_grid", [quick](const SimHooks& hooks) {
    const auto spec = topo::GridSpec::ray2mesh_quad(8);
    const profiles::ExperimentConfig cfg =
        profiles::experiment(profiles::gridmpi())
            .tuning(profiles::TuningLevel::kTcpTuned);
    apps::Ray2MeshConfig app;
    app.total_rays = quick ? 100'000 : 1'000'000;
    const auto res = apps::run_ray2mesh(spec, 0, cfg, app, hooks);
    char buf[64];
    std::snprintf(buf, sizeof buf, "total %.1f s", to_seconds(res.total_time));
    return std::string(buf);
  }));

  return out;
}

/// Minimal JSON escaping: the strings we emit are ASCII summaries, so only
/// quotes and backslashes (and control characters, defensively) need care.
inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Writes one BENCH_*.json document. Schema: docs/usage.md.
inline bool write_bench_json(const std::string& path,
                             const std::string& schema, bool quick,
                             const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"schema\": \"%s\",\n  \"quick\": %s,\n",
               json_escape(schema).c_str(), quick ? "true" : "false");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, \"wall_s\": %.6f, "
                 "\"events_per_sec\": %.0f, \"peak_queue_depth\": %llu, "
                 "\"heap_payloads\": %llu, \"pool_misses\": %llu, "
                 "\"note\": \"%s\"}%s\n",
                 json_escape(r.name).c_str(),
                 static_cast<unsigned long long>(r.events), r.wall_s,
                 r.events_per_sec,
                 static_cast<unsigned long long>(r.peak_queue_depth),
                 static_cast<unsigned long long>(r.heap_payloads),
                 static_cast<unsigned long long>(r.pool_misses),
                 json_escape(r.note).c_str(),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  return std::fclose(f) == 0;
}

}  // namespace gridsim::bench
