// Shared helpers for the experiment benches. Every bench binary prints the
// rows/series of one table or figure of the paper, with the paper's values
// quoted alongside for comparison.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/pingpong.hpp"
#include "harness/report.hpp"
#include "profiles/profiles.hpp"

namespace gridsim::bench {

/// TCP baseline + the four implementations, in the paper's order.
inline std::vector<mpi::ImplProfile> profiles_with_tcp() {
  std::vector<mpi::ImplProfile> v;
  v.push_back(profiles::raw_tcp());
  for (auto& p : profiles::all_implementations()) v.push_back(p);
  return v;
}

/// Runs the 1 kB..64 MB bandwidth sweep for every profile and prints the
/// figure as CSV + an ASCII chart.
inline void bandwidth_figure(const std::string& title, bool grid,
                             profiles::TuningLevel level) {
  const auto spec = grid ? topo::GridSpec::rennes_nancy(1)
                         : topo::GridSpec::single_cluster(2);
  const harness::PingpongEndpoints ends =
      grid ? harness::PingpongEndpoints{0, 0, 1, 0}
           : harness::PingpongEndpoints{0, 0, 0, 1};
  harness::PingpongOptions options;
  options.sizes = harness::pow2_sizes(1024, 64.0 * 1024 * 1024);
  options.rounds = 12;

  const auto impls = profiles_with_tcp();
  std::vector<std::string> series_names;
  std::vector<std::vector<double>> values;
  for (const auto& impl : impls) {
    const auto cfg = profiles::configure(impl, level);
    const auto points = harness::pingpong_sweep(spec, ends, cfg, options);
    series_names.push_back(impl.name + " on TCP");
    values.emplace_back();
    for (const auto& p : points) values.back().push_back(p.max_bandwidth_mbps);
  }

  std::vector<std::string> headers{"size"};
  for (const auto& n : series_names) headers.push_back(n);
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> x_labels;
  for (std::size_t i = 0; i < options.sizes.size(); ++i) {
    x_labels.push_back(harness::format_bytes(options.sizes[i]));
    rows.push_back({x_labels.back()});
    for (auto& v : values)
      rows.back().push_back(harness::format_double(v[i], 1));
  }
  harness::print_csv(title + " -- MPI bandwidth (Mbps)", headers, rows);
  harness::print_ascii_chart(title, series_names, x_labels, values, 1000,
                             "Mbps");
}

}  // namespace gridsim::bench
