// Fig 10: NPB class B on 8+8 nodes across the Rennes--Nancy WAN; per-kernel
// speed-up of each implementation relative to MPICH2 (ratio of MPICH2's
// runtime to the implementation's; > 1 means faster than MPICH2).
//
// Paper shape: GridMPI wins clearly on the collective-dominated kernels
// (FT via its WAN-aware broadcast, IS via pacing under the huge alltoallv
// bursts); the point-to-point kernels are close to even; MPICH-Madeleine
// struggles on the rendez-vous-heavy BT/SP (the paper's runs timed out).
#include "nas_common.hpp"

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  const auto spec = topo::GridSpec::rennes_nancy(8);
  const auto impls = profiles::all_implementations();
  std::vector<std::map<npb::Kernel, double>> seconds;
  std::vector<std::string> names;
  for (const auto& impl : impls) {
    names.push_back(impl.name);
    seconds.push_back(nas_suite_seconds(spec, 16, npb::Class::kB, impl));
  }
  print_kernel_table("NPB class B runtimes, 8+8 nodes across the WAN (s)",
                     names, seconds, 1);

  // Relative to MPICH2 (reference = 1.0).
  std::vector<std::map<npb::Kernel, double>> relative = seconds;
  for (auto& m : relative)
    for (auto& [k, v] : m) v = seconds[0].at(k) / v;
  print_kernel_table(
      "Fig 10: speed-up relative to MPICH2 (>1 = faster than MPICH2)", names,
      relative);
  std::printf(
      "\nPaper shape: GridMPI >> 1 on FT and IS; near 1 elsewhere;\n"
      "MPICH-Madeleine degraded on BT/SP (timed out in the paper).\n");
  return 0;
}
