// Fig 10: NPB class B on 8+8 nodes across the WAN.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "fig10" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'fig10*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("fig10") == 0 ? 0 : 1;
}
