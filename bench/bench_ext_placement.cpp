// Extension: block vs cyclic task placement for the NPB.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "ext_placement" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'ext_placement*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("ext_placement") == 0 ? 0 : 1;
}
