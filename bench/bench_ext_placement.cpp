// Extension: task placement on the grid. The paper's introduction notes
// that CPU heterogeneity and topology "could be of interest ... in the
// task placement phase"; this bench quantifies it for the NPB by
// comparing the paper's block placement (8 consecutive ranks per site)
// against a cyclic round-robin placement, which puts every nearest
// neighbour across the WAN.
#include "nas_common.hpp"

#include "simcore/simulation.hpp"

namespace {

using namespace gridsim;

Task<void> kernel_body(mpi::Rank& rank, npb::Kernel k, SimTime* out) {
  co_await npb::run_kernel(rank, k, npb::Class::kA);
  *out = rank.sim().now();
}

double run_with_placement(npb::Kernel k, bool cyclic) {
  Simulation sim;
  topo::Grid grid(sim, topo::GridSpec::rennes_nancy(8));
  const auto cfg = bench::nas_config(profiles::mpich2());
  const auto placement = cyclic ? mpi::cyclic_placement(grid, 16)
                                : mpi::block_placement(grid, 16);
  mpi::Job job(grid, placement, cfg.profile, cfg.kernel);
  std::vector<SimTime> finish(16, 0);
  for (int r = 0; r < 16; ++r)
    sim.spawn(kernel_body(job.rank(r), k, &finish[static_cast<size_t>(r)]));
  sim.run();
  return to_seconds(*std::max_element(finish.begin(), finish.end()));
}

}  // namespace

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  std::vector<std::vector<std::string>> rows;
  for (npb::Kernel k : {npb::Kernel::kCG, npb::Kernel::kMG, npb::Kernel::kLU,
                        npb::Kernel::kSP, npb::Kernel::kBT}) {
    const double block = run_with_placement(k, false);
    const double cyclic = run_with_placement(k, true);
    rows.push_back({npb::name(k), harness::format_double(block, 2),
                    harness::format_double(cyclic, 2),
                    harness::format_double(cyclic / block, 2)});
  }
  harness::print_table(
      "Extension: block vs cyclic placement, NPB class A, 8+8 nodes "
      "(MPICH2)",
      {"kernel", "block (s)", "cyclic (s)", "cyclic/block"}, rows);
  std::printf(
      "\nBlock placement keeps mesh neighbours on the same cluster; cyclic\n"
      "placement forces nearest-neighbour traffic across the 11.6 ms WAN.\n"
      "The gap is the value of topology-aware task placement.\n");
  return 0;
}
