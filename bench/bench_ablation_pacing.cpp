// Ablation: GridMPI's software pacing, isolated. Runs the Fig 9 slow-start
// scenario and the IS kernel with pacing toggled on an otherwise identical
// profile, quantifying how much of GridMPI's advantage pacing alone buys.
#include "common.hpp"

#include "harness/npb_campaign.hpp"

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  // --- Slow-start convergence (Fig 9 mechanism) -------------------------
  auto spec = topo::GridSpec::rennes_nancy(2);
  for (auto& site : spec.sites) site.uplink_bps = 1e9;
  harness::CrossTraffic cross;
  cross.burst_bytes = 24e6;
  cross.period = milliseconds(600);

  std::vector<std::vector<std::string>> rows;
  for (bool pacing : {false, true}) {
    mpi::ImplProfile p = profiles::gridmpi();
    p.name = pacing ? "GridMPI (pacing on)" : "GridMPI (pacing off)";
    p.pacing = pacing;
    const auto cfg = profiles::configure(p, profiles::TuningLevel::kTcpTuned);
    const auto series = harness::slowstart_series(spec, {0, 0, 1, 0}, cfg,
                                                  1e6, 200, cross);
    double t500 = -1;
    for (const auto& s : series)
      if (s.mbps >= 500) {
        t500 = to_seconds(s.at);
        break;
      }
    rows.push_back({p.name,
                    t500 < 0 ? "never" : harness::format_double(t500, 2)});
  }
  harness::print_table("Ablation: pacing vs slow-start convergence",
                       {"profile", "t_500Mbps (s)"}, rows);

  // --- IS under pacing (Fig 10 mechanism) --------------------------------
  std::vector<std::vector<std::string>> is_rows;
  for (bool pacing : {false, true}) {
    mpi::ImplProfile p = profiles::gridmpi();
    p.name = pacing ? "GridMPI (pacing on)" : "GridMPI (pacing off)";
    p.pacing = pacing;
    const auto cfg = profiles::configure(p, profiles::TuningLevel::kTcpTuned);
    const auto res = harness::run_npb(topo::GridSpec::rennes_nancy(8), 16,
                                      npb::Kernel::kIS, npb::Class::kB, cfg);
    is_rows.push_back(
        {p.name, harness::format_double(to_seconds(res.makespan), 2)});
  }
  harness::print_table("Ablation: pacing vs IS class B on 8+8 nodes",
                       {"profile", "runtime (s)"}, is_rows);
  return 0;
}
