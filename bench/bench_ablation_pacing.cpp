// Ablation: GridMPI's software pacing, isolated.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "ablation_pacing" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'ablation_pacing*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("ablation_pacing") == 0 ? 0 : 1;
}
