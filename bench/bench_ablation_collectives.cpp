// Ablation: collective algorithm suites on the grid.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary prints the algorithm registry and each implementation's selector
// decision table (the same data as `gridsim coll --list`), then selects
// the "ablation_collectives" group from the registry, runs it serially and
// prints the rendered figure/table. `gridsim campaign --filter
// 'ablation_collectives*'` runs the same cells concurrently with trace
// digests.
#include <cstdio>

#include "collectives/registry.hpp"
#include "collectives/selector.hpp"
#include "profiles/profiles.hpp"
#include "scenarios/catalog.hpp"

namespace {

using namespace gridsim;

void print_decision_tables() {
  const auto& registry = coll::AlgorithmRegistry::instance();
  std::printf("registered bcast algorithms:");
  for (const auto& a : registry.bcast())
    std::printf(" %s%s", a.name.c_str(), a.wan_aware ? "*" : "");
  std::printf("   allreduce:");
  for (const auto& a : registry.allreduce())
    std::printf(" %s%s", a.name.c_str(), a.wan_aware ? "*" : "");
  std::printf("   (* = WAN-aware)\n");
  for (const auto& impl : profiles::all_implementations()) {
    std::printf("%-16s", impl.name.c_str());
    for (auto op : {mpi::CollOp::kBcast, mpi::CollOp::kAllreduce}) {
      std::printf("  %s:", mpi::to_string(op).c_str());
      for (const auto& r :
           coll::Selector::effective_rules(impl.collectives, op)) {
        if (r.max_bytes < 1e18)
          std::printf(" %s<=%.0fkB,", r.algo.c_str(), r.max_bytes / 1e3);
        else
          std::printf(" %s", r.algo.c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  print_decision_tables();
  return gridsim::scenarios::run_and_print("ablation_collectives") == 0 ? 0
                                                                        : 1;
}
