// Ablation: collective algorithm suites on the grid, isolated from the
// rest of the profile. Runs FT's broadcast pattern and IS's exchange
// pattern under each bcast/allreduce algorithm on an otherwise identical
// MPICH2-like profile.
#include "common.hpp"

#include <algorithm>

#include "collectives/collectives.hpp"
#include "harness/npb_campaign.hpp"
#include "simcore/simulation.hpp"

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  const auto spec = topo::GridSpec::rennes_nancy(8);

  std::vector<std::vector<std::string>> rows;
  struct Case {
    const char* label;
    mpi::BcastAlgo bcast;
  };
  for (const Case c : {Case{"binomial tree", mpi::BcastAlgo::kBinomial},
                       Case{"scatter + ring allgather (WAN-oblivious)",
                            mpi::BcastAlgo::kVanDeGeijn},
                       Case{"segmented pipeline chain",
                            mpi::BcastAlgo::kPipeline},
                       Case{"hierarchical, parallel WAN streams (GridMPI)",
                            mpi::BcastAlgo::kHierarchical}}) {
    mpi::ImplProfile p = profiles::mpich2();
    p.collectives.bcast = c.bcast;
    const auto cfg = profiles::configure(p, profiles::TuningLevel::kTcpTuned);
    const auto res = harness::run_npb(spec, 16, npb::Kernel::kFT,
                                      npb::Class::kB, cfg);
    rows.push_back(
        {c.label, harness::format_double(to_seconds(res.makespan), 2)});
  }
  harness::print_table("Ablation: bcast algorithm vs FT class B on 8+8 nodes",
                       {"bcast algorithm", "FT runtime (s)"}, rows);

  std::vector<std::vector<std::string>> ar_rows;
  struct ArCase {
    const char* label;
    mpi::AllreduceAlgo algo;
  };
  for (const ArCase c :
       {ArCase{"recursive doubling", mpi::AllreduceAlgo::kRecursiveDoubling},
        ArCase{"Rabenseifner", mpi::AllreduceAlgo::kRabenseifner},
        ArCase{"hierarchical (GridMPI)", mpi::AllreduceAlgo::kHierarchical}}) {
    mpi::ImplProfile p = profiles::mpich2();
    p.collectives.allreduce = c.algo;
    const auto cfg = profiles::configure(p, profiles::TuningLevel::kTcpTuned);
    // 100 back-to-back 64 kB allreduces over 8+8 nodes, timed directly.
    Simulation sim;
    topo::Grid grid(sim, spec);
    mpi::Job job(grid, mpi::block_placement(grid, 16), cfg.profile,
                 cfg.kernel);
    std::vector<SimTime> finish(16, 0);
    for (int rank = 0; rank < 16; ++rank) {
      sim.spawn([](mpi::Rank& r, SimTime* out) -> Task<void> {
        for (int i = 0; i < 100; ++i) co_await coll::allreduce(r, 64e3);
        *out = r.sim().now();
      }(job.rank(rank), &finish[static_cast<size_t>(rank)]));
    }
    sim.run();
    const SimTime makespan =
        *std::max_element(finish.begin(), finish.end());
    ar_rows.push_back(
        {c.label, harness::format_double(to_seconds(makespan), 2)});
  }
  harness::print_table(
      "Ablation: allreduce algorithm, 100 x 64 kB allreduce on 8+8 nodes",
      {"allreduce algorithm", "total (s)"}, ar_rows);
  return 0;
}
