// Table 7: ray2mesh phase times (compute, merge, total) as a function of
// the master's location. Paper: ~185 s compute / ~166 s merge / ~361 s
// total, nearly independent of where the master runs.
#include "common.hpp"

#include "apps/ray2mesh.hpp"

int main() {
  using namespace gridsim;

  const auto spec = topo::GridSpec::ray2mesh_quad(8);
  const auto cfg =
      profiles::configure(profiles::gridmpi(), profiles::TuningLevel::kTcpTuned);

  const double paper_comp[4] = {185.11, 185.16, 186.03, 186.97};
  const double paper_merge[4] = {168.85, 162.59, 168.38, 165.99};
  const double paper_total[4] = {361.52, 355.14, 361.72, 360.24};
  // Table 7 columns: Nancy, Rennes, Sophia, Toulouse; our site indices:
  const int order[4] = {1, 0, 2, 3};

  std::vector<std::string> headers{"phase"};
  std::vector<std::vector<std::string>> rows{
      {"compute (s)"}, {"paper comp"}, {"merge (s)"}, {"paper merge"},
      {"total (s)"},   {"paper total"}};
  for (int col = 0; col < 4; ++col) {
    headers.push_back("master=" +
                      spec.sites[static_cast<size_t>(order[col])].name);
    const auto res = apps::run_ray2mesh(spec, order[col], cfg);
    rows[0].push_back(harness::format_double(to_seconds(res.compute_time), 1));
    rows[1].push_back(harness::format_double(paper_comp[col], 1));
    rows[2].push_back(harness::format_double(to_seconds(res.merge_time), 1));
    rows[3].push_back(harness::format_double(paper_merge[col], 1));
    rows[4].push_back(harness::format_double(to_seconds(res.total_time), 1));
    rows[5].push_back(harness::format_double(paper_total[col], 1));
  }
  harness::print_table("Table 7: ray2mesh phase times vs master location",
                       headers, rows);
  std::printf(
      "\nPaper shape: compute ~185 s and total ~360 s regardless of the\n"
      "master's location -- the task placement does not matter much.\n");
  return 0;
}
