// Table 7: ray2mesh phase times vs master location.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "table7" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'table7*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("table7") == 0 ? 0 : 1;
}
