// Extension (the paper's future work, Section 5: "study optimizations
// within TCP"): congestion-control algorithm comparison on the tuned grid
// path — BIC (the 2.6.18 default the paper ran) vs Reno — for bulk
// transfer completion and recovery after loss.
#include "common.hpp"

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  // Bulk transfer over the shared (1 Gbps uplink) path with cross traffic,
  // where losses actually happen.
  auto spec = topo::GridSpec::rennes_nancy(2);
  for (auto& site : spec.sites) site.uplink_bps = 1e9;
  harness::CrossTraffic cross;
  cross.burst_bytes = 24e6;
  cross.period = milliseconds(600);

  std::vector<std::vector<std::string>> rows;
  for (auto algo : {tcp::CongestionAlgo::kBic, tcp::CongestionAlgo::kReno,
                    tcp::CongestionAlgo::kCubic}) {
    auto cfg = profiles::configure(profiles::raw_tcp(),
                                   profiles::TuningLevel::kFullyTuned);
    cfg.kernel.algo = algo;
    const auto series = harness::slowstart_series(spec, {0, 0, 1, 0}, cfg,
                                                  1e6, 200, cross);
    double t500 = -1, mean = 0;
    for (const auto& s : series) {
      if (t500 < 0 && s.mbps >= 500) t500 = to_seconds(s.at);
      mean += s.mbps;
    }
    mean /= series.empty() ? 1 : double(series.size());
    const char* name = algo == tcp::CongestionAlgo::kBic    ? "BIC"
                       : algo == tcp::CongestionAlgo::kReno ? "Reno"
                                                            : "CUBIC";
    rows.push_back({name,
                    t500 < 0 ? "never" : harness::format_double(t500, 2),
                    harness::format_double(mean, 0)});
  }
  harness::print_table(
      "Extension: congestion control algorithm under burst losses",
      {"algorithm", "t_500Mbps (s)", "mean per-msg bandwidth (Mbps)"}, rows);
  std::printf(
      "\nBIC's binary-increase recovery reclaims the window faster after a\n"
      "burst loss than Reno's linear growth; on long-RTT paths that is the\n"
      "difference between seconds and tens of seconds of degraded\n"
      "bandwidth (the motivation for the 2.6-series kernels adopting it).\n");
  return 0;
}
