// Extension: congestion-control algorithm comparison.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "ablation_tcp_algo" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'ablation_tcp_algo*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("ablation_tcp_algo") == 0 ? 0 : 1;
}
