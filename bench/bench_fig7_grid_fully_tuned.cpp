// Fig 7: grid bandwidth after TCP tuning + MPI tuning.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "fig7" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'fig7*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("fig7") == 0 ? 0 : 1;
}
