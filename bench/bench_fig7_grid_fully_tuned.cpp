// Fig 7: MPI bandwidth between Rennes and Nancy after TCP tuning + raised
// eager/rendez-vous thresholds (Table 5). Paper: all implementations match
// raw TCP; OpenMPI drops for the largest messages (its threshold knob caps
// at 32 MB, so 64 MB messages still use rendez-vous).
#include "common.hpp"

int main() {
  gridsim::bench::bandwidth_figure(
      "Fig 7: grid (Rennes--Nancy), after TCP tuning + MPI tuning",
      /*grid=*/true, gridsim::profiles::TuningLevel::kFullyTuned);
  std::printf(
      "\nPaper shape: every curve tracks raw TCP; OpenMPI alone sags at\n"
      "64 MB (32 MB eager-limit cap).\n");
  return 0;
}
