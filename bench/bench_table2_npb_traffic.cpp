// Table 2: communication features of the NPB. The paper quotes message
// counts and sizes (from Faraj & Yuan's class A / 16-node characterisation
// plus their own instrumented runs); this bench instruments our skeletons
// the same way and prints both.
#include "nas_common.hpp"

namespace {

using namespace gridsim;

std::string size_range(const std::map<long long, std::uint64_t>& sizes) {
  if (sizes.empty()) return "-";
  const auto lo = sizes.begin()->first;
  const auto hi = sizes.rbegin()->first;
  if (lo == hi) return harness::format_bytes(double(lo)) + "B";
  return harness::format_bytes(double(lo)) + "B.." +
         harness::format_bytes(double(hi)) + "B";
}

}  // namespace

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  struct PaperRow {
    const char* type;
    const char* sizes;
  };
  const PaperRow paper[] = {
      {"P2P(coll impl)", "192 x 8 B + 68 x 80 B"},        // EP
      {"P. to P.", "126479 x 8 B + 86944 x 147 kB"},      // CG
      {"P. to P.", "50809 x 4 B .. 130 kB"},              // MG
      {"P. to P.", "1.2M x 960..1040 B"},                 // LU
      {"P. to P.", "57744 x 45-54 kB + 96336 x 100-160 kB"},  // SP
      {"P. to P.", "28944 x 26 kB + 48336 x 146-156 kB"},     // BT
      {"Collective", "176 x 1 kB + 176 x 30 MB(aggregate)"},  // IS
      {"Collective", "320 x 1 B + 352 x 128 kB"},             // FT
  };

  const auto cfg = nas_config(profiles::mpich2());
  const auto spec = topo::GridSpec::single_cluster(16);
  std::vector<std::vector<std::string>> rows;
  int i = 0;
  for (npb::Kernel k : npb::all_kernels()) {
    // The paper's Table 2 mixes class A (counts from [11]) and class B
    // (their instrumented sizes); we report class B except IS, whose
    // 30 MB aggregate matches class A.
    const npb::Class cls =
        (k == npb::Kernel::kIS) ? npb::Class::kA : npb::Class::kB;
    const auto res = harness::run_npb(spec, 16, k, cls, cfg);
    const auto& t = res.traffic;
    const bool collective = t.collective_messages > t.p2p_messages;
    char count[64];
    std::snprintf(count, sizeof count, "%llu",
                  static_cast<unsigned long long>(
                      collective ? t.collective_messages : t.p2p_messages));
    rows.push_back({npb::name(k), collective ? "Collective" : "P. to P.",
                    count,
                    size_range(collective ? t.collective_sizes : t.p2p_sizes),
                    paper[i].type, paper[i].sizes});
    ++i;
  }
  harness::print_table(
      "Table 2: NPB communication features (measured on our skeletons, 16 "
      "ranks)",
      {"kernel", "type", "messages", "sizes", "paper type", "paper counts"},
      rows);
  std::printf(
      "\nNote: paper counts aggregate differently per source ([11] counts\n"
      "class A point-to-point sends; IS volume is the aggregate alltoallv\n"
      "payload). The kernel ordering by message count and the size bands\n"
      "are the comparable quantities.\n");
  return 0;
}
