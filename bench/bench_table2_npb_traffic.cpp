// Table 2: communication features of the NPB.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "table2" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'table2*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("table2") == 0 ? 0 : 1;
}
