// Table 6: ray2mesh on four clusters (8 nodes each): rays computed per
// cluster as a function of the master's location. The self-scheduling
// master hands 1000-ray sets to whoever asks first, so faster clusters
// (Sophia) compute more, and slaves near the master win ties.
#include "common.hpp"

#include "apps/ray2mesh.hpp"

int main() {
  using namespace gridsim;

  const auto spec = topo::GridSpec::ray2mesh_quad(8);
  const auto cfg =
      profiles::configure(profiles::gridmpi(), profiles::TuningLevel::kTcpTuned);

  const double paper[4][4] = {
      // master: Nancy   Rennes   Sophia   Toulouse   (cluster rows)
      {29650, 27937.5, 29343.75, 28781.25},   // Nancy
      {30225, 30625, 29437.5, 29468.75},      // Rennes
      {35375, 36562.5, 37343.75, 36437.5},    // Sophia
      {29750, 29875, 28875, 30312.5},         // Toulouse
  };
  // Site order in our spec: rennes(0), nancy(1), sophia(2), toulouse(3);
  // Table 6 lists Nancy, Rennes, Sophia, Toulouse.
  const int table_order[4] = {1, 0, 2, 3};

  std::vector<std::vector<std::string>> rows(4);
  for (int row = 0; row < 4; ++row)
    rows[static_cast<size_t>(row)].push_back(
        spec.sites[static_cast<size_t>(table_order[row])].name);

  for (int master_row = 0; master_row < 4; ++master_row) {
    const int master_site = table_order[master_row];
    const auto res = apps::run_ray2mesh(spec, master_site, cfg);
    for (int row = 0; row < 4; ++row) {
      const int site = table_order[row];
      // Table 6 reports the *average rays per node* of each cluster (the
      // paper's columns sum to 1M / 8 nodes).
      const double rays =
          double(res.rays_per_site[static_cast<size_t>(site)]) /
          spec.sites[static_cast<size_t>(site)].nodes;
      rows[static_cast<size_t>(row)].push_back(
          harness::format_double(rays, 0) + " (" +
          harness::format_double(paper[row][master_row], 0) + ")");
    }
  }
  harness::print_table(
      "Table 6: rays computed per cluster vs master location -- model "
      "(paper)",
      {"cluster", "master=Nancy", "master=Rennes", "master=Sophia",
       "master=Toulouse"},
      rows);
  std::printf(
      "\nPaper shape: Sophia (fastest nodes) computes the most rays; a\n"
      "cluster computes slightly more when the master is local.\n");
  return 0;
}
