// Fig 5: MPI bandwidth inside the Rennes cluster with default parameters.
// Paper: every implementation reaches ~940 Mbps; a threshold artifact is
// visible around each implementation's eager/rendez-vous switch (except
// GridMPI, which has no rendez-vous mode by default).
#include "common.hpp"

int main() {
  gridsim::bench::bandwidth_figure(
      "Fig 5: cluster (Rennes), default parameters", /*grid=*/false,
      gridsim::profiles::TuningLevel::kDefault);
  std::printf(
      "\nPaper shape: all curves saturate at ~940 Mbps (1 GbE goodput);\n"
      "small dips above 64-256 kB mark each implementation's rendez-vous\n"
      "threshold; GridMPI has none.\n");
  return 0;
}
