// Fig 5: cluster (Rennes) bandwidth, default parameters.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "fig5" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'fig5*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("fig5") == 0 ? 0 : 1;
}
