// Extension (the paper's future work, Section 5): MPICH-G2 on the grid.
//
// MPICH-G2 stripes large messages over several TCP connections, so each
// stream brings its own congestion/buffer window: with *default* kernel
// tunables — where a single connection is pinned to ~120 Mbps by the
// 175 kB auto-tuning bound — four streams quadruple the large-message
// bandwidth without touching a sysctl. After full tuning the single-stream
// implementations catch up (the window is no longer the bottleneck).
#include "common.hpp"

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  const auto spec = topo::GridSpec::rennes_nancy(1);
  const harness::PingpongEndpoints ends{0, 0, 1, 0};
  harness::PingpongOptions options;
  options.sizes = harness::pow2_sizes(64e3, 64.0 * 1024 * 1024);
  options.rounds = 10;

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < options.sizes.size(); ++i)
    rows.push_back({harness::format_bytes(options.sizes[i])});

  std::vector<std::string> headers{"size"};
  for (auto level :
       {profiles::TuningLevel::kDefault, profiles::TuningLevel::kFullyTuned}) {
    for (const auto& impl : {profiles::mpich2(), profiles::mpich_g2()}) {
      headers.push_back(impl.name + " (" + profiles::to_string(level) + ")");
      const auto points = harness::pingpong_sweep(
          spec, ends, profiles::configure(impl, level), options);
      for (std::size_t i = 0; i < points.size(); ++i)
        rows[i].push_back(
            harness::format_double(points[i].max_bandwidth_mbps, 1));
    }
  }
  harness::print_table(
      "Extension: MPICH-G2 parallel WAN streams vs MPICH2 (Mbps)", headers,
      rows);
  std::printf(
      "\nExpected shape: with default kernels MPICH-G2's 4 streams lift\n"
      "large messages ~4x above the single-connection ceiling; with full\n"
      "tuning both implementations converge near line rate.\n");
  return 0;
}
