// Extension: MPICH-G2 parallel WAN streams vs MPICH2.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "ext_mpich_g2" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'ext_mpich_g2*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("ext_mpich_g2") == 0 ? 0 : 1;
}
