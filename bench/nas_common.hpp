// Shared helpers for the NAS campaign benches (Figs 10-13).
//
// The paper runs NPB 2.4 class B on 16 processes (8+8 across the WAN, or
// all 16 in one cluster) and on 4 processes, with the TCP tuning of
// Section 4.2.1 applied (the campaign postdates the tuning study).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "harness/npb_campaign.hpp"
#include "harness/report.hpp"
#include "profiles/profiles.hpp"

namespace gridsim::bench {

inline profiles::ExperimentConfig nas_config(const mpi::ImplProfile& impl) {
  return profiles::configure(impl, profiles::TuningLevel::kTcpTuned);
}

/// Runtime of every kernel for one implementation on one deployment.
inline std::map<npb::Kernel, double> nas_suite_seconds(
    const topo::GridSpec& spec, int nranks, npb::Class cls,
    const mpi::ImplProfile& impl) {
  std::map<npb::Kernel, double> out;
  const auto cfg = nas_config(impl);
  for (npb::Kernel k : npb::all_kernels()) {
    const auto res = harness::run_npb(spec, nranks, k, cls, cfg);
    out[k] = to_seconds(res.makespan);
  }
  return out;
}

/// Prints a kernel x implementation table of values.
inline void print_kernel_table(
    const std::string& title, const std::vector<std::string>& impl_names,
    const std::vector<std::map<npb::Kernel, double>>& per_impl,
    int precision = 2) {
  std::vector<std::string> headers{"kernel"};
  for (const auto& n : impl_names) headers.push_back(n);
  std::vector<std::vector<std::string>> rows;
  for (npb::Kernel k : npb::all_kernels()) {
    rows.push_back({npb::name(k)});
    for (const auto& m : per_impl)
      rows.back().push_back(harness::format_double(m.at(k), precision));
  }
  harness::print_table(title, headers, rows);
}

}  // namespace gridsim::bench
