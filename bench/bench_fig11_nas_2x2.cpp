// Fig 11: NPB class B on 2+2 nodes across the Rennes--Nancy WAN; per-kernel
// speed-up relative to MPICH2. With only four processes the collective
// optimisations have less to work with, so the implementations bunch up
// around 1.0 (the paper's bars all sit between ~0.8 and ~1.3).
#include "nas_common.hpp"

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  const auto spec = topo::GridSpec::rennes_nancy(2);
  const auto impls = profiles::all_implementations();
  std::vector<std::map<npb::Kernel, double>> seconds;
  std::vector<std::string> names;
  for (const auto& impl : impls) {
    names.push_back(impl.name);
    seconds.push_back(nas_suite_seconds(spec, 4, npb::Class::kB, impl));
  }
  print_kernel_table("NPB class B runtimes, 2+2 nodes across the WAN (s)",
                     names, seconds, 1);
  std::vector<std::map<npb::Kernel, double>> relative = seconds;
  for (auto& m : relative)
    for (auto& [k, v] : m) v = seconds[0].at(k) / v;
  print_kernel_table(
      "Fig 11: speed-up relative to MPICH2 (>1 = faster than MPICH2)", names,
      relative);
  return 0;
}
