// Fig 11: NPB class B on 2+2 nodes across the WAN.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "fig11" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'fig11*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("fig11") == 0 ? 0 : 1;
}
