// Fig 6: MPI bandwidth between Rennes and Nancy after TCP tuning (4 MB
// socket buffers via each implementation's knob). Paper: ~900 Mbps peak,
// half-bandwidth only around 1 MB, and the rendez-vous threshold dip is
// still visible (except for GridMPI).
#include "common.hpp"

int main() {
  gridsim::bench::bandwidth_figure(
      "Fig 6: grid (Rennes--Nancy), after TCP tuning", /*grid=*/true,
      gridsim::profiles::TuningLevel::kTcpTuned);
  std::printf(
      "\nPaper shape: peaks ~900 Mbps; half bandwidth around 1 MB (vs 8 kB\n"
      "in the cluster); deep dips above each implementation's eager limit\n"
      "(the rendez-vous handshake costs an extra 11.6 ms round trip);\n"
      "GridMPI closest to raw TCP.\n");
  return 0;
}
