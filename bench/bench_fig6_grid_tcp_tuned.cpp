// Fig 6: grid bandwidth after TCP tuning.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "fig6" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'fig6*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("fig6") == 0 ? 0 : 1;
}
