// Extension: where each NPB kernel's traffic goes.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "ext_traffic_matrix" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'ext_traffic_matrix*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("ext_traffic_matrix") == 0 ? 0 : 1;
}
