// Extension: where does each NPB kernel's traffic go? Splits every
// kernel's payload volume into intra-site and WAN bytes on the 8+8
// deployment — the quantity that, multiplied by the WAN's latency and
// bandwidth penalty, explains the whole of Fig 12.
#include "nas_common.hpp"

#include "simcore/simulation.hpp"

namespace {

using namespace gridsim;

Task<void> kernel_body(mpi::Rank* r, npb::Kernel k) {
  co_await npb::run_kernel(*r, k, npb::Class::kA);
}

}  // namespace

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  std::vector<std::vector<std::string>> rows;
  for (npb::Kernel k : npb::all_kernels()) {
    Simulation sim;
    topo::Grid grid(sim, topo::GridSpec::rennes_nancy(8));
    const auto cfg = nas_config(profiles::mpich2());
    mpi::Job job(grid, mpi::block_placement(grid, 16), cfg.profile,
                 cfg.kernel);
    for (int r = 0; r < 16; ++r) sim.spawn(kernel_body(&job.rank(r), k));
    sim.run();
    double lan = 0, wan = 0;
    std::uint64_t wan_pairs = 0;
    for (const auto& [pair, bytes] : job.traffic().pair_bytes) {
      const bool crosses =
          grid.site_of(job.rank(pair.first).host()) !=
          grid.site_of(job.rank(pair.second).host());
      (crosses ? wan : lan) += bytes;
      if (crosses) ++wan_pairs;
    }
    char pairs[16];
    std::snprintf(pairs, sizeof pairs, "%llu",
                  static_cast<unsigned long long>(wan_pairs));
    rows.push_back({npb::name(k), harness::format_double(lan / 1e6, 1),
                    harness::format_double(wan / 1e6, 1),
                    harness::format_double(
                        (lan + wan) > 0 ? wan / (lan + wan) * 100 : 0, 1) +
                        "%",
                    pairs});
  }
  harness::print_table(
      "Extension: traffic locality per kernel, class A, 8+8 block placement",
      {"kernel", "intra-site (MB)", "WAN (MB)", "WAN share", "WAN pairs"},
      rows);
  std::printf(
      "\nKernels whose WAN share is small and in large messages (LU, BT,\n"
      "SP) tolerate the grid; kernels pushing collective volume across the\n"
      "WAN (IS, FT) or many small messages (CG) do not -- Fig 12's story\n"
      "in bytes.\n");
  return 0;
}
