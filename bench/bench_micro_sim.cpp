// Microbenchmarks of the simulator itself (google-benchmark): event-queue
// throughput, max-min re-solve cost, TCP transfer simulation rate and
// end-to-end MPI message rate. These bound how large an experiment the
// harness can simulate per wall-clock second.
#include <benchmark/benchmark.h>

#include "mpi/mpi.hpp"
#include "profiles/profiles.hpp"
#include "simcore/simulation.hpp"
#include "simnet/network.hpp"
#include "simtcp/tcp.hpp"
#include "topology/grid5000.hpp"

namespace {

using namespace gridsim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i)
      q.schedule(i * 7 % 997, [&sink] { ++sink; });
    while (!q.empty()) q.run_next();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_MaxMinSolve(benchmark::State& state) {
  const int nflows = static_cast<int>(state.range(0));
  Simulation sim;
  net::Network n(sim);
  const auto wan = n.add_link("wan", 1e9, milliseconds(5), 1e6);
  std::vector<net::FlowId> flows;
  for (int i = 0; i < nflows; ++i) {
    const std::string suffix = std::to_string(i);
    const auto s = n.add_host("s" + suffix);
    const auto d = n.add_host("d" + suffix);
    const auto up = n.add_link("u" + suffix, 1e8, 0, 1e6);
    n.add_route(s, d, {up, wan});
    flows.push_back(n.start_flow(s, d, 1e15, 5e7, nullptr));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    // Each cap change triggers a full settle + re-solve.
    n.set_rate_cap(flows[i % flows.size()], 4e7 + double(i % 100));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaxMinSolve)->Arg(4)->Arg(16)->Arg(64);

void BM_TcpTransfer1MB(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    net::Network n(sim);
    const auto a = n.add_host("a");
    const auto b = n.add_host("b");
    const auto l = n.add_link("wan", tcp::ethernet_goodput(1e9),
                              microseconds(5800), 1e6);
    n.add_route(a, b, {l});
    const auto k = tcp::KernelTunables::grid_tuned();
    tcp::TcpChannel ch(n, a, b, k, k, {});
    ch.send(1e6, nullptr, nullptr);
    sim.run();
    benchmark::DoNotOptimize(ch.bytes_delivered());
  }
}
BENCHMARK(BM_TcpTransfer1MB);

void BM_MpiPingpongRound(benchmark::State& state) {
  Simulation sim;
  topo::Grid grid(sim, topo::GridSpec::rennes_nancy(1));
  const profiles::ExperimentConfig cfg =
      profiles::experiment(profiles::mpich2())
          .tuning(profiles::TuningLevel::kTcpTuned);
  mpi::Job job(grid, mpi::block_placement(grid, 2), cfg.profile, cfg.kernel);
  for (auto _ : state) {
    state.PauseTiming();
    Trigger done(sim);
    state.ResumeTiming();
    auto ping = [](mpi::Rank& r, Trigger* t) -> Task<void> {
      co_await r.send(1, 4096, 0);
      (void)co_await r.recv(1, 0);
      t->fire();
    };
    auto pong = [](mpi::Rank& r) -> Task<void> {
      (void)co_await r.recv(0, 0);
      co_await r.send(0, 4096, 0);
    };
    sim.spawn(ping(job.rank(0), &done));
    sim.spawn(pong(job.rank(1)));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpiPingpongRound);

}  // namespace

BENCHMARK_MAIN();
