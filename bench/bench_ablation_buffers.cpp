// Ablation: socket buffer size sweep on the Rennes--Nancy path -- the
// mechanism behind the Fig 3 -> Fig 6 recovery. Peak ping-pong bandwidth
// as a function of the (setsockopt-style) buffer size, against the
// window/RTT prediction.
#include "common.hpp"

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  const double rtt_s = 11.6e-3;
  std::vector<std::vector<std::string>> rows;
  for (double buf : {64e3, 128e3, 256e3, 512e3, 1024e3, 2048e3, 4096e3,
                     8192e3}) {
    mpi::ImplProfile p = profiles::openmpi();  // setsockopt strategy
    auto cfg = profiles::configure(p, profiles::TuningLevel::kTcpTuned);
    cfg.profile.setsockopt_bytes = buf;
    cfg.profile.eager_threshold = 1e12;  // isolate the buffer effect
    harness::PingpongOptions options;
    options.sizes = {64e6};
    options.rounds = 8;
    const auto points = harness::pingpong_sweep(
        topo::GridSpec::rennes_nancy(1), {0, 0, 1, 0}, cfg, options);
    const double predicted =
        std::min(buf * 8.0 / rtt_s, tcp::ethernet_goodput(1e9) * 8.0) / 1e6;
    rows.push_back({harness::format_bytes(buf) + "B",
                    harness::format_double(points[0].max_bandwidth_mbps, 1),
                    harness::format_double(predicted, 1)});
  }
  harness::print_table(
      "Ablation: socket buffer size vs peak grid bandwidth (64 MB messages)",
      {"buffer", "measured (Mbps)", "window/RTT bound (Mbps)"}, rows);
  std::printf(
      "\nThe paper's rule (Section 4.2.1): buffers must reach RTT x\n"
      "bandwidth = 1.45 MB on this path; 4 MB was chosen for headroom.\n");
  return 0;
}
