// Ablation: socket buffer size sweep on the Rennes--Nancy path.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "ablation_buffers" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'ablation_buffers*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("ablation_buffers") == 0 ? 0 : 1;
}
