// Extension (the paper's future work, Section 5): heterogeneity
// management. Route intra-site traffic over a Myrinet-class native fabric
// (2 Gbps, 5 us) instead of 1 GbE TCP, and sweep the per-message gateway
// cost that heterogeneity management adds on WAN messages.
//
// The paper's criterion: "the overhead introduced by the management of
// heterogeneity has to be less important than the TCP cost" — the sweep
// shows exactly where the native fabric stops paying off.
#include "common.hpp"

#include "harness/npb_campaign.hpp"

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  auto with_native = [](bool native) {
    auto spec = topo::GridSpec::rennes_nancy(8);
    if (native) {
      spec.prefer_native_intra = true;
      for (auto& site : spec.sites) site.native_bps = 2e9;  // Myrinet 2000
    }
    return spec;
  };

  // 1. What the native fabric buys on latency-sensitive kernels.
  std::vector<std::vector<std::string>> rows;
  for (npb::Kernel k : {npb::Kernel::kCG, npb::Kernel::kLU, npb::Kernel::kMG,
                        npb::Kernel::kBT}) {
    const auto cfg = profiles::configure(profiles::mpich_madeleine(),
                                         profiles::TuningLevel::kTcpTuned);
    const auto eth =
        harness::run_npb(with_native(false), 16, k, npb::Class::kA, cfg);
    const auto mx =
        harness::run_npb(with_native(true), 16, k, npb::Class::kA, cfg);
    rows.push_back({npb::name(k),
                    harness::format_double(to_seconds(eth.makespan), 2),
                    harness::format_double(to_seconds(mx.makespan), 2),
                    harness::format_double(to_seconds(eth.makespan) /
                                               to_seconds(mx.makespan),
                                           2)});
  }
  harness::print_table(
      "Extension: Myrinet-class intra-site fabric, MPICH-Madeleine, NPB "
      "class A 8+8",
      {"kernel", "ethernet (s)", "native intra (s)", "speed-up"}, rows);

  // 2. Gateway-cost sweep: how much per-message WAN overhead the gateway
  // may add before the native fabric is a net loss on CG.
  std::vector<std::vector<std::string>> sweep;
  const auto base_cfg = profiles::configure(profiles::mpich_madeleine(),
                                            profiles::TuningLevel::kTcpTuned);
  const auto eth_cg = harness::run_npb(with_native(false), 16,
                                       npb::Kernel::kCG, npb::Class::kA,
                                       base_cfg);
  for (double gw_us : {0.0, 25.0, 50.0, 100.0, 200.0, 400.0}) {
    auto cfg = base_cfg;
    cfg.profile.wan_extra_overhead = microseconds(
        static_cast<std::int64_t>(gw_us));
    const auto mx = harness::run_npb(with_native(true), 16, npb::Kernel::kCG,
                                     npb::Class::kA, cfg);
    sweep.push_back({harness::format_double(gw_us, 0) + " us",
                     harness::format_double(to_seconds(mx.makespan), 2),
                     to_seconds(mx.makespan) < to_seconds(eth_cg.makespan)
                         ? "yes"
                         : "no"});
  }
  harness::print_table(
      "Extension: gateway overhead sweep, CG class A (ethernet baseline: " +
          harness::format_double(to_seconds(eth_cg.makespan), 2) + " s)",
      {"gateway cost/msg", "runtime (s)", "native still wins?"}, sweep);
  return 0;
}
