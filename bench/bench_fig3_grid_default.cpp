// Fig 3: grid (Rennes--Nancy) bandwidth, default parameters.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "fig3" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'fig3*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("fig3") == 0 ? 0 : 1;
}
