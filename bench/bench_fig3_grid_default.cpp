// Fig 3: MPI bandwidth between Rennes and Nancy with default parameters.
// Paper: every implementation (and raw TCP) collapses below 120 Mbps.
#include "common.hpp"

int main() {
  gridsim::bench::bandwidth_figure(
      "Fig 3: grid (Rennes--Nancy), default parameters", /*grid=*/true,
      gridsim::profiles::TuningLevel::kDefault);
  std::printf(
      "\nPaper shape: no curve exceeds ~120 Mbps; the 174760 B auto-tuning\n"
      "bound caps the window on the 11.6 ms path.\n");
  return 0;
}
