// Table 4: one-way latency of a 1-byte message, within the Rennes cluster
// and across the Rennes--Nancy WAN, for raw TCP and the four MPI
// implementations (default configuration).
#include "common.hpp"

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  struct PaperRow {
    const char* name;
    double lan_us, wan_us;
  };
  const PaperRow paper[] = {{"TCP", 41, 5812},
                            {"MPICH2", 46, 5818},
                            {"GridMPI", 46, 5819},
                            {"MPICH-Madeleine", 62, 5826},
                            {"OpenMPI", 46, 5820}};

  std::vector<std::vector<std::string>> rows;
  int i = 0;
  for (const auto& impl : profiles_with_tcp()) {
    const auto cfg =
        profiles::configure(impl, profiles::TuningLevel::kDefault);
    const SimTime lan = harness::pingpong_min_latency(
        topo::GridSpec::single_cluster(2), {0, 0, 0, 1}, cfg);
    const SimTime wan = harness::pingpong_min_latency(
        topo::GridSpec::rennes_nancy(1), {0, 0, 1, 0}, cfg);
    rows.push_back({impl.name, harness::format_double(to_microseconds(lan), 1),
                    harness::format_double(paper[i].lan_us, 0),
                    harness::format_double(to_microseconds(wan), 1),
                    harness::format_double(paper[i].wan_us, 0)});
    ++i;
  }
  harness::print_table(
      "Table 4: one-way latency in a cluster and in the grid (us)",
      {"implementation", "cluster (model)", "cluster (paper)", "grid (model)",
       "grid (paper)"},
      rows);
  std::printf(
      "\nNote: the model attributes ~6 us less fixed kernel cost on the WAN\n"
      "path than the testbed measured; the per-implementation deltas are\n"
      "the quantity Table 4 demonstrates.\n");
  return 0;
}
