// Table 4: one-way latency in a cluster and in the grid.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "table4" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'table4*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("table4") == 0 ? 0 : 1;
}
