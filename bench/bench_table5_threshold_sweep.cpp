// Table 5: the ideal eager/rendez-vous threshold per implementation, found
// by sweeping the threshold and scoring a ping-pong over 1 kB..64 MB (TCP
// already tuned, receives pre-posted as the paper assumes).
//
// The paper's finding: with pre-posted receives the rendez-vous handshake
// is pure overhead for every size up to 64 MB, so the ideal threshold is
// "as high as the knob allows": 65 MB for MPICH2 and MPICH-Madeleine,
// 32 MB for OpenMPI (knob cap), and GridMPI needs no change (its default
// is already infinite).
#include <cmath>

#include "common.hpp"

namespace {

using namespace gridsim;

/// Sum of per-size transfer times: lower is better.
double sweep_score(const mpi::ImplProfile& base, double threshold,
                   const std::vector<double>& sizes) {
  auto cfg = profiles::configure(base, profiles::TuningLevel::kTcpTuned);
  cfg.profile.eager_threshold =
      std::min(threshold, base.eager_threshold_max);
  harness::PingpongOptions options;
  options.sizes = sizes;
  options.rounds = 6;
  const auto points = harness::pingpong_sweep(
      topo::GridSpec::rennes_nancy(1), {0, 0, 1, 0}, cfg, options);
  double total = 0;
  for (const auto& p : points) total += to_seconds(p.min_one_way);
  return total;
}

}  // namespace

int main() {
  using namespace gridsim;
  using namespace gridsim::bench;

  const auto sizes = harness::pow2_sizes(1024, 64.0 * 1024 * 1024);
  const std::vector<double> candidates = {
      64e3, 128e3, 256e3, 512e3, 1024e3, 4.0 * 1024 * 1024,
      32.0 * 1024 * 1024, 65.0 * 1024 * 1024};

  struct PaperRow {
    const char* original;
    const char* ideal;
  };
  const PaperRow paper[] = {{"256 kB", "65 MB"},
                            {"inf", "- (unchanged)"},
                            {"128 kB", "65 MB"},
                            {"64 kB", "32 MB"}};

  std::vector<std::vector<std::string>> rows;
  int i = 0;
  for (const auto& impl : profiles::all_implementations()) {
    double best = candidates.front();
    double best_score = 1e300;
    for (double cand : candidates) {
      const double score = sweep_score(impl, cand, sizes);
      if (score < best_score - 1e-9) {
        best_score = score;
        best = std::min(cand, impl.eager_threshold_max);
      }
    }
    const bool no_rndv = std::isinf(impl.eager_threshold);
    const std::string original =
        no_rndv ? "inf" : harness::format_bytes(impl.eager_threshold) + "B";
    // An implementation with no rendez-vous by default needs no tuning: any
    // threshold >= the largest message scores identically.
    const std::string ideal = no_rndv ? "- (unchanged)"
                                      : harness::format_bytes(best) + "B";
    rows.push_back({impl.name, original, paper[i].original, ideal,
                    paper[i].ideal});
    ++i;
  }
  harness::print_table(
      "Table 5: ideal eager/rndv threshold per implementation (grid)",
      {"implementation", "original (model)", "original (paper)",
       "ideal (model)", "ideal (paper)"},
      rows);
  return 0;
}
