// Table 5: ideal eager/rendez-vous threshold per implementation.
//
// Thin shim: the scenarios live in the catalog (src/scenarios/); this
// binary selects the "table5" group from the registry, runs it serially
// and prints the rendered figure/table. `gridsim campaign --filter
// 'table5*'` runs the same cells concurrently with trace digests.
#include "scenarios/catalog.hpp"

int main() {
  return gridsim::scenarios::run_and_print("table5") == 0 ? 0 : 1;
}
