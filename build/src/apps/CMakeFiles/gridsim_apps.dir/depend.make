# Empty dependencies file for gridsim_apps.
# This may be replaced when dependencies are built.
