file(REMOVE_RECURSE
  "libgridsim_apps.a"
)
