file(REMOVE_RECURSE
  "CMakeFiles/gridsim_apps.dir/ray2mesh.cpp.o"
  "CMakeFiles/gridsim_apps.dir/ray2mesh.cpp.o.d"
  "CMakeFiles/gridsim_apps.dir/simri.cpp.o"
  "CMakeFiles/gridsim_apps.dir/simri.cpp.o.d"
  "libgridsim_apps.a"
  "libgridsim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
