file(REMOVE_RECURSE
  "CMakeFiles/gridsim.dir/gridsim_cli.cpp.o"
  "CMakeFiles/gridsim.dir/gridsim_cli.cpp.o.d"
  "gridsim"
  "gridsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
