# Empty dependencies file for gridsim_simcore.
# This may be replaced when dependencies are built.
