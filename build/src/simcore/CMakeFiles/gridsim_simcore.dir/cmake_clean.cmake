file(REMOVE_RECURSE
  "CMakeFiles/gridsim_simcore.dir/event_queue.cpp.o"
  "CMakeFiles/gridsim_simcore.dir/event_queue.cpp.o.d"
  "CMakeFiles/gridsim_simcore.dir/simulation.cpp.o"
  "CMakeFiles/gridsim_simcore.dir/simulation.cpp.o.d"
  "CMakeFiles/gridsim_simcore.dir/time.cpp.o"
  "CMakeFiles/gridsim_simcore.dir/time.cpp.o.d"
  "CMakeFiles/gridsim_simcore.dir/trace.cpp.o"
  "CMakeFiles/gridsim_simcore.dir/trace.cpp.o.d"
  "libgridsim_simcore.a"
  "libgridsim_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsim_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
