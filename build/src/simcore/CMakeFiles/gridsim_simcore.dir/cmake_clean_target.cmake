file(REMOVE_RECURSE
  "libgridsim_simcore.a"
)
