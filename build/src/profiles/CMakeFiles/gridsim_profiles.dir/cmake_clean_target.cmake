file(REMOVE_RECURSE
  "libgridsim_profiles.a"
)
