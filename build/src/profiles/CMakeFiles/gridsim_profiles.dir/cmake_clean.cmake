file(REMOVE_RECURSE
  "CMakeFiles/gridsim_profiles.dir/profiles.cpp.o"
  "CMakeFiles/gridsim_profiles.dir/profiles.cpp.o.d"
  "libgridsim_profiles.a"
  "libgridsim_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsim_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
