# Empty compiler generated dependencies file for gridsim_profiles.
# This may be replaced when dependencies are built.
