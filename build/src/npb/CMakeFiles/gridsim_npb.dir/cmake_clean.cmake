file(REMOVE_RECURSE
  "CMakeFiles/gridsim_npb.dir/npb.cpp.o"
  "CMakeFiles/gridsim_npb.dir/npb.cpp.o.d"
  "libgridsim_npb.a"
  "libgridsim_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsim_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
