# Empty compiler generated dependencies file for gridsim_npb.
# This may be replaced when dependencies are built.
