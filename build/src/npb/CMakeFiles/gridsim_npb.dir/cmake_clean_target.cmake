file(REMOVE_RECURSE
  "libgridsim_npb.a"
)
