file(REMOVE_RECURSE
  "libgridsim_harness.a"
)
