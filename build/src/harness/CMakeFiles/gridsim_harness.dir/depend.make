# Empty dependencies file for gridsim_harness.
# This may be replaced when dependencies are built.
