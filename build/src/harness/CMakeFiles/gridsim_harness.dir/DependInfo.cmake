
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/npb_campaign.cpp" "src/harness/CMakeFiles/gridsim_harness.dir/npb_campaign.cpp.o" "gcc" "src/harness/CMakeFiles/gridsim_harness.dir/npb_campaign.cpp.o.d"
  "/root/repo/src/harness/pingpong.cpp" "src/harness/CMakeFiles/gridsim_harness.dir/pingpong.cpp.o" "gcc" "src/harness/CMakeFiles/gridsim_harness.dir/pingpong.cpp.o.d"
  "/root/repo/src/harness/replay.cpp" "src/harness/CMakeFiles/gridsim_harness.dir/replay.cpp.o" "gcc" "src/harness/CMakeFiles/gridsim_harness.dir/replay.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/harness/CMakeFiles/gridsim_harness.dir/report.cpp.o" "gcc" "src/harness/CMakeFiles/gridsim_harness.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profiles/CMakeFiles/gridsim_profiles.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/gridsim_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/npb/CMakeFiles/gridsim_npb.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/gridsim_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gridsim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/simtcp/CMakeFiles/gridsim_simtcp.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/gridsim_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/gridsim_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
