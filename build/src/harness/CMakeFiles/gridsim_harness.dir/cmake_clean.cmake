file(REMOVE_RECURSE
  "CMakeFiles/gridsim_harness.dir/npb_campaign.cpp.o"
  "CMakeFiles/gridsim_harness.dir/npb_campaign.cpp.o.d"
  "CMakeFiles/gridsim_harness.dir/pingpong.cpp.o"
  "CMakeFiles/gridsim_harness.dir/pingpong.cpp.o.d"
  "CMakeFiles/gridsim_harness.dir/replay.cpp.o"
  "CMakeFiles/gridsim_harness.dir/replay.cpp.o.d"
  "CMakeFiles/gridsim_harness.dir/report.cpp.o"
  "CMakeFiles/gridsim_harness.dir/report.cpp.o.d"
  "libgridsim_harness.a"
  "libgridsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
