# Empty dependencies file for gridsim_simtcp.
# This may be replaced when dependencies are built.
