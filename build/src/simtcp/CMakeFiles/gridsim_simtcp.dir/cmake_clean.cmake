file(REMOVE_RECURSE
  "CMakeFiles/gridsim_simtcp.dir/packet_sim.cpp.o"
  "CMakeFiles/gridsim_simtcp.dir/packet_sim.cpp.o.d"
  "CMakeFiles/gridsim_simtcp.dir/tcp.cpp.o"
  "CMakeFiles/gridsim_simtcp.dir/tcp.cpp.o.d"
  "libgridsim_simtcp.a"
  "libgridsim_simtcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsim_simtcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
