file(REMOVE_RECURSE
  "libgridsim_simtcp.a"
)
