# Empty compiler generated dependencies file for gridsim_mpi.
# This may be replaced when dependencies are built.
