file(REMOVE_RECURSE
  "libgridsim_mpi.a"
)
