file(REMOVE_RECURSE
  "CMakeFiles/gridsim_mpi.dir/mpi.cpp.o"
  "CMakeFiles/gridsim_mpi.dir/mpi.cpp.o.d"
  "libgridsim_mpi.a"
  "libgridsim_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsim_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
