file(REMOVE_RECURSE
  "CMakeFiles/gridsim_topology.dir/grid5000.cpp.o"
  "CMakeFiles/gridsim_topology.dir/grid5000.cpp.o.d"
  "libgridsim_topology.a"
  "libgridsim_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsim_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
