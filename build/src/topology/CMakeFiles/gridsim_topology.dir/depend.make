# Empty dependencies file for gridsim_topology.
# This may be replaced when dependencies are built.
