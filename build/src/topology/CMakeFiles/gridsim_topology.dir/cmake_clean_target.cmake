file(REMOVE_RECURSE
  "libgridsim_topology.a"
)
