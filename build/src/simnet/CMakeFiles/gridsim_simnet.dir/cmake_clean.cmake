file(REMOVE_RECURSE
  "CMakeFiles/gridsim_simnet.dir/network.cpp.o"
  "CMakeFiles/gridsim_simnet.dir/network.cpp.o.d"
  "libgridsim_simnet.a"
  "libgridsim_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsim_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
