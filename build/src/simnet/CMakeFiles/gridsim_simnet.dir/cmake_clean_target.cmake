file(REMOVE_RECURSE
  "libgridsim_simnet.a"
)
