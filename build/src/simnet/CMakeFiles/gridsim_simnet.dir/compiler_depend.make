# Empty compiler generated dependencies file for gridsim_simnet.
# This may be replaced when dependencies are built.
