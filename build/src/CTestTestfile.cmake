# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("simcore")
subdirs("simnet")
subdirs("simtcp")
subdirs("topology")
subdirs("mpi")
subdirs("collectives")
subdirs("profiles")
subdirs("harness")
subdirs("npb")
subdirs("apps")
subdirs("tools")
