file(REMOVE_RECURSE
  "CMakeFiles/gridsim_collectives.dir/collectives.cpp.o"
  "CMakeFiles/gridsim_collectives.dir/collectives.cpp.o.d"
  "libgridsim_collectives.a"
  "libgridsim_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsim_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
