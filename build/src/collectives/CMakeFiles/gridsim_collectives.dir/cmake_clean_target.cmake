file(REMOVE_RECURSE
  "libgridsim_collectives.a"
)
