# Empty compiler generated dependencies file for gridsim_collectives.
# This may be replaced when dependencies are built.
