# Empty compiler generated dependencies file for ray2mesh_campaign.
# This may be replaced when dependencies are built.
