file(REMOVE_RECURSE
  "CMakeFiles/ray2mesh_campaign.dir/ray2mesh_campaign.cpp.o"
  "CMakeFiles/ray2mesh_campaign.dir/ray2mesh_campaign.cpp.o.d"
  "ray2mesh_campaign"
  "ray2mesh_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ray2mesh_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
