file(REMOVE_RECURSE
  "CMakeFiles/simri_mri.dir/simri_mri.cpp.o"
  "CMakeFiles/simri_mri.dir/simri_mri.cpp.o.d"
  "simri_mri"
  "simri_mri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simri_mri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
