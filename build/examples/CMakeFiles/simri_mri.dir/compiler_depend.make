# Empty compiler generated dependencies file for simri_mri.
# This may be replaced when dependencies are built.
