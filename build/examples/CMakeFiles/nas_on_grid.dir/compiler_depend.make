# Empty compiler generated dependencies file for nas_on_grid.
# This may be replaced when dependencies are built.
