file(REMOVE_RECURSE
  "CMakeFiles/nas_on_grid.dir/nas_on_grid.cpp.o"
  "CMakeFiles/nas_on_grid.dir/nas_on_grid.cpp.o.d"
  "nas_on_grid"
  "nas_on_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_on_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
