file(REMOVE_RECURSE
  "CMakeFiles/nine_sites.dir/nine_sites.cpp.o"
  "CMakeFiles/nine_sites.dir/nine_sites.cpp.o.d"
  "nine_sites"
  "nine_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nine_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
