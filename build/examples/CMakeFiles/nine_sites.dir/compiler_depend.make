# Empty compiler generated dependencies file for nine_sites.
# This may be replaced when dependencies are built.
