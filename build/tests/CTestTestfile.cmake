# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simcore_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/simtcp_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/profiles_test[1]_include.cmake")
include("/root/repo/build/tests/npb_test[1]_include.cmake")
include("/root/repo/build/tests/ray2mesh_test[1]_include.cmake")
include("/root/repo/build/tests/simri_test[1]_include.cmake")
include("/root/repo/build/tests/striping_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_extra_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_extra_test[1]_include.cmake")
include("/root/repo/build/tests/heterogeneity_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_properties_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/degradation_test[1]_include.cmake")
include("/root/repo/build/tests/grid5000_full_test[1]_include.cmake")
include("/root/repo/build/tests/packet_sim_test[1]_include.cmake")
include("/root/repo/build/tests/npb_classes_test[1]_include.cmake")
include("/root/repo/build/tests/engine_stress_test[1]_include.cmake")
include("/root/repo/build/tests/probe_bruck_test[1]_include.cmake")
