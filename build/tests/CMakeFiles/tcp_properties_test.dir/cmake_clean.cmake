file(REMOVE_RECURSE
  "CMakeFiles/tcp_properties_test.dir/tcp_properties_test.cpp.o"
  "CMakeFiles/tcp_properties_test.dir/tcp_properties_test.cpp.o.d"
  "tcp_properties_test"
  "tcp_properties_test.pdb"
  "tcp_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
