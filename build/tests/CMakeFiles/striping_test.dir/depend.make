# Empty dependencies file for striping_test.
# This may be replaced when dependencies are built.
