file(REMOVE_RECURSE
  "CMakeFiles/probe_bruck_test.dir/probe_bruck_test.cpp.o"
  "CMakeFiles/probe_bruck_test.dir/probe_bruck_test.cpp.o.d"
  "probe_bruck_test"
  "probe_bruck_test.pdb"
  "probe_bruck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_bruck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
