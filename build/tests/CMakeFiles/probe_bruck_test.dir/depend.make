# Empty dependencies file for probe_bruck_test.
# This may be replaced when dependencies are built.
