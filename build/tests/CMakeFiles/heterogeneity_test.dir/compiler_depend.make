# Empty compiler generated dependencies file for heterogeneity_test.
# This may be replaced when dependencies are built.
