file(REMOVE_RECURSE
  "CMakeFiles/heterogeneity_test.dir/heterogeneity_test.cpp.o"
  "CMakeFiles/heterogeneity_test.dir/heterogeneity_test.cpp.o.d"
  "heterogeneity_test"
  "heterogeneity_test.pdb"
  "heterogeneity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
