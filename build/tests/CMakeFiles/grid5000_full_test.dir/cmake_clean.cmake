file(REMOVE_RECURSE
  "CMakeFiles/grid5000_full_test.dir/grid5000_full_test.cpp.o"
  "CMakeFiles/grid5000_full_test.dir/grid5000_full_test.cpp.o.d"
  "grid5000_full_test"
  "grid5000_full_test.pdb"
  "grid5000_full_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid5000_full_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
