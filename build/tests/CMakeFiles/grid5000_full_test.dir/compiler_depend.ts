# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for grid5000_full_test.
