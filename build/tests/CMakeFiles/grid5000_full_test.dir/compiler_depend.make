# Empty compiler generated dependencies file for grid5000_full_test.
# This may be replaced when dependencies are built.
