
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/replay_test.cpp" "tests/CMakeFiles/replay_test.dir/replay_test.cpp.o" "gcc" "tests/CMakeFiles/replay_test.dir/replay_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/gridsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/profiles/CMakeFiles/gridsim_profiles.dir/DependInfo.cmake"
  "/root/repo/build/src/npb/CMakeFiles/gridsim_npb.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/gridsim_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/gridsim_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gridsim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/simtcp/CMakeFiles/gridsim_simtcp.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/gridsim_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/gridsim_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
