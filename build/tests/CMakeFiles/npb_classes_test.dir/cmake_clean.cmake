file(REMOVE_RECURSE
  "CMakeFiles/npb_classes_test.dir/npb_classes_test.cpp.o"
  "CMakeFiles/npb_classes_test.dir/npb_classes_test.cpp.o.d"
  "npb_classes_test"
  "npb_classes_test.pdb"
  "npb_classes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npb_classes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
