# Empty dependencies file for npb_classes_test.
# This may be replaced when dependencies are built.
