# Empty dependencies file for simtcp_test.
# This may be replaced when dependencies are built.
