file(REMOVE_RECURSE
  "CMakeFiles/simtcp_test.dir/simtcp_test.cpp.o"
  "CMakeFiles/simtcp_test.dir/simtcp_test.cpp.o.d"
  "simtcp_test"
  "simtcp_test.pdb"
  "simtcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
