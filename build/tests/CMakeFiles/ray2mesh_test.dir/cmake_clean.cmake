file(REMOVE_RECURSE
  "CMakeFiles/ray2mesh_test.dir/ray2mesh_test.cpp.o"
  "CMakeFiles/ray2mesh_test.dir/ray2mesh_test.cpp.o.d"
  "ray2mesh_test"
  "ray2mesh_test.pdb"
  "ray2mesh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ray2mesh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
