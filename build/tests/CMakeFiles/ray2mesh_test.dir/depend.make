# Empty dependencies file for ray2mesh_test.
# This may be replaced when dependencies are built.
