# Empty dependencies file for simri_test.
# This may be replaced when dependencies are built.
