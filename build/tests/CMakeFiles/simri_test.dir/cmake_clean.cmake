file(REMOVE_RECURSE
  "CMakeFiles/simri_test.dir/simri_test.cpp.o"
  "CMakeFiles/simri_test.dir/simri_test.cpp.o.d"
  "simri_test"
  "simri_test.pdb"
  "simri_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simri_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
