file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_grid_default.dir/bench_fig3_grid_default.cpp.o"
  "CMakeFiles/bench_fig3_grid_default.dir/bench_fig3_grid_default.cpp.o.d"
  "bench_fig3_grid_default"
  "bench_fig3_grid_default.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_grid_default.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
