# Empty compiler generated dependencies file for bench_fig3_grid_default.
# This may be replaced when dependencies are built.
