file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_threshold_sweep.dir/bench_table5_threshold_sweep.cpp.o"
  "CMakeFiles/bench_table5_threshold_sweep.dir/bench_table5_threshold_sweep.cpp.o.d"
  "bench_table5_threshold_sweep"
  "bench_table5_threshold_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
