# Empty compiler generated dependencies file for bench_fig9_slowstart.
# This may be replaced when dependencies are built.
