file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pacing.dir/bench_ablation_pacing.cpp.o"
  "CMakeFiles/bench_ablation_pacing.dir/bench_ablation_pacing.cpp.o.d"
  "bench_ablation_pacing"
  "bench_ablation_pacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
