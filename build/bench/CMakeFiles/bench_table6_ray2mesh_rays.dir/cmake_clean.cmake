file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_ray2mesh_rays.dir/bench_table6_ray2mesh_rays.cpp.o"
  "CMakeFiles/bench_table6_ray2mesh_rays.dir/bench_table6_ray2mesh_rays.cpp.o.d"
  "bench_table6_ray2mesh_rays"
  "bench_table6_ray2mesh_rays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_ray2mesh_rays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
