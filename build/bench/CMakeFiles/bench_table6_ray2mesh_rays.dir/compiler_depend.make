# Empty compiler generated dependencies file for bench_table6_ray2mesh_rays.
# This may be replaced when dependencies are built.
