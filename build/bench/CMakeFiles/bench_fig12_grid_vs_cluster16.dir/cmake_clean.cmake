file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_grid_vs_cluster16.dir/bench_fig12_grid_vs_cluster16.cpp.o"
  "CMakeFiles/bench_fig12_grid_vs_cluster16.dir/bench_fig12_grid_vs_cluster16.cpp.o.d"
  "bench_fig12_grid_vs_cluster16"
  "bench_fig12_grid_vs_cluster16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_grid_vs_cluster16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
