# Empty compiler generated dependencies file for bench_fig12_grid_vs_cluster16.
# This may be replaced when dependencies are built.
