# Empty compiler generated dependencies file for bench_fig10_nas_8x8.
# This may be replaced when dependencies are built.
