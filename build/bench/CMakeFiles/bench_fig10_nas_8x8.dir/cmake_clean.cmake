file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_nas_8x8.dir/bench_fig10_nas_8x8.cpp.o"
  "CMakeFiles/bench_fig10_nas_8x8.dir/bench_fig10_nas_8x8.cpp.o.d"
  "bench_fig10_nas_8x8"
  "bench_fig10_nas_8x8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_nas_8x8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
