# Empty compiler generated dependencies file for bench_ext_traffic_matrix.
# This may be replaced when dependencies are built.
