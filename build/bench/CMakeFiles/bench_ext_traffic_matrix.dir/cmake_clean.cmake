file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_traffic_matrix.dir/bench_ext_traffic_matrix.cpp.o"
  "CMakeFiles/bench_ext_traffic_matrix.dir/bench_ext_traffic_matrix.cpp.o.d"
  "bench_ext_traffic_matrix"
  "bench_ext_traffic_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_traffic_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
