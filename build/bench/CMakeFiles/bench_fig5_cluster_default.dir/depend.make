# Empty dependencies file for bench_fig5_cluster_default.
# This may be replaced when dependencies are built.
