# Empty dependencies file for bench_ext_mpich_g2.
# This may be replaced when dependencies are built.
