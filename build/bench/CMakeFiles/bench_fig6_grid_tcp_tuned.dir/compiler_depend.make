# Empty compiler generated dependencies file for bench_fig6_grid_tcp_tuned.
# This may be replaced when dependencies are built.
