file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_grid_vs_cluster4.dir/bench_fig13_grid_vs_cluster4.cpp.o"
  "CMakeFiles/bench_fig13_grid_vs_cluster4.dir/bench_fig13_grid_vs_cluster4.cpp.o.d"
  "bench_fig13_grid_vs_cluster4"
  "bench_fig13_grid_vs_cluster4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_grid_vs_cluster4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
