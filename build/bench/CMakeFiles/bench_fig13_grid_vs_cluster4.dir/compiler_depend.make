# Empty compiler generated dependencies file for bench_fig13_grid_vs_cluster4.
# This may be replaced when dependencies are built.
