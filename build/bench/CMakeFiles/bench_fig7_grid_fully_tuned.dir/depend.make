# Empty dependencies file for bench_fig7_grid_fully_tuned.
# This may be replaced when dependencies are built.
