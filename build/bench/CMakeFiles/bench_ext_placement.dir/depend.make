# Empty dependencies file for bench_ext_placement.
# This may be replaced when dependencies are built.
