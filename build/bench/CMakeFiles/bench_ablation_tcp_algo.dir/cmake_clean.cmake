file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tcp_algo.dir/bench_ablation_tcp_algo.cpp.o"
  "CMakeFiles/bench_ablation_tcp_algo.dir/bench_ablation_tcp_algo.cpp.o.d"
  "bench_ablation_tcp_algo"
  "bench_ablation_tcp_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tcp_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
