# Empty dependencies file for bench_table7_ray2mesh_times.
# This may be replaced when dependencies are built.
