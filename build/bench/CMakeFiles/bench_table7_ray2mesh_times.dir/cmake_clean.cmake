file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_ray2mesh_times.dir/bench_table7_ray2mesh_times.cpp.o"
  "CMakeFiles/bench_table7_ray2mesh_times.dir/bench_table7_ray2mesh_times.cpp.o.d"
  "bench_table7_ray2mesh_times"
  "bench_table7_ray2mesh_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_ray2mesh_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
