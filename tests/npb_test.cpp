// Tests for the NPB communication skeletons: termination on cluster and
// grid deployments, traffic characteristics against the paper's Table 2,
// and qualitative grid-sensitivity ordering.
#include <gtest/gtest.h>

#include "harness/npb_campaign.hpp"
#include "npb/npb.hpp"
#include "profiles/profiles.hpp"

namespace gridsim::npb {
namespace {

using harness::run_npb;
using profiles::TuningLevel;

profiles::ExperimentConfig tuned_mpich2() {
  return profiles::experiment(profiles::mpich2())
      .tuning(TuningLevel::kTcpTuned);
}

TEST(Npb, NamesAndTables) {
  EXPECT_EQ(all_kernels().size(), 8u);
  EXPECT_EQ(name(Kernel::kEP), "EP");
  EXPECT_EQ(name(Kernel::kFT), "FT");
  EXPECT_GT(total_ops(Kernel::kBT, Class::kB), total_ops(Kernel::kBT, Class::kA));
  EXPECT_EQ(iterations(Kernel::kCG, Class::kB), 75);
  EXPECT_EQ(iterations(Kernel::kLU, Class::kA), 250);
}

class AllKernelsClassS : public ::testing::TestWithParam<Kernel> {};

TEST_P(AllKernelsClassS, RunsOnClusterAndGrid) {
  const Kernel k = GetParam();
  const auto cfg = tuned_mpich2();
  const auto cluster = run_npb(topo::GridSpec::single_cluster(4), 4, k,
                               Class::kS, cfg);
  EXPECT_GT(cluster.makespan, 0) << name(k);
  const auto grid =
      run_npb(topo::GridSpec::rennes_nancy(2), 4, k, Class::kS, cfg);
  EXPECT_GT(grid.makespan, 0) << name(k);
  // The grid never makes a kernel faster at equal rank count.
  EXPECT_GE(grid.makespan, cluster.makespan / 2) << name(k);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllKernelsClassS,
                         ::testing::Values(Kernel::kEP, Kernel::kCG,
                                           Kernel::kMG, Kernel::kLU,
                                           Kernel::kSP, Kernel::kBT,
                                           Kernel::kIS, Kernel::kFT));

TEST(Npb, NonSquareCountRejectedForGridKernels) {
  const auto cfg = tuned_mpich2();
  EXPECT_THROW(run_npb(topo::GridSpec::single_cluster(8), 8, Kernel::kCG,
                       Class::kS, cfg),
               std::invalid_argument);
}

TEST(Npb, LuSendsTheMostMessages) {
  // Table 2: LU ~1.2M messages, far above every other kernel.
  const auto cfg = tuned_mpich2();
  const auto lu = run_npb(topo::GridSpec::single_cluster(4), 4, Kernel::kLU,
                          Class::kS, cfg);
  const auto bt = run_npb(topo::GridSpec::single_cluster(4), 4, Kernel::kBT,
                          Class::kS, cfg);
  EXPECT_GT(lu.traffic.p2p_messages, 3 * bt.traffic.p2p_messages);
}

TEST(Npb, LuMessageSizeMatchesTable2) {
  // Class B on 16 ranks: LU messages between 960 B and 1040 B.
  const auto cfg = tuned_mpich2();
  const auto lu = run_npb(topo::GridSpec::single_cluster(16), 16, Kernel::kLU,
                          Class::kB, cfg);
  ASSERT_FALSE(lu.traffic.p2p_sizes.empty());
  for (const auto& [size, count] : lu.traffic.p2p_sizes) {
    EXPECT_GE(size, 900);
    EXPECT_LE(size, 1100);
  }
}

TEST(Npb, CgUsesSmallAndLargeMessages) {
  // Table 2: CG sends 8 B dot products and ~147 kB vector segments.
  const auto cfg = tuned_mpich2();
  const auto cg = run_npb(topo::GridSpec::single_cluster(16), 16, Kernel::kCG,
                          Class::kB, cfg);
  bool has_8 = false, has_large = false;
  for (const auto& [size, count] : cg.traffic.p2p_sizes) {
    if (size == 8) has_8 = true;
    if (size > 120'000 && size < 180'000) has_large = true;
  }
  EXPECT_TRUE(has_8);
  EXPECT_TRUE(has_large);
}

TEST(Npb, MgHaloSizesSpanTable2Range) {
  // Table 2: MG sends "various sizes from 4 B to 130 kB" (class A, 16).
  const auto cfg = tuned_mpich2();
  const auto mg = run_npb(topo::GridSpec::single_cluster(16), 16, Kernel::kMG,
                          Class::kA, cfg);
  ASSERT_FALSE(mg.traffic.p2p_sizes.empty());
  const auto smallest = mg.traffic.p2p_sizes.begin()->first;
  const auto largest = mg.traffic.p2p_sizes.rbegin()->first;
  EXPECT_LE(smallest, 256);
  EXPECT_GE(largest, 100e3);
  EXPECT_LE(largest, 160e3);
}

TEST(Npb, BtSpSendBigMessages) {
  const auto cfg = tuned_mpich2();
  const auto bt = run_npb(topo::GridSpec::single_cluster(16), 16, Kernel::kBT,
                          Class::kB, cfg);
  const auto largest = bt.traffic.p2p_sizes.rbegin()->first;
  EXPECT_GE(largest, 120e3);  // Table 2: 146..156 kB
  EXPECT_LE(largest, 180e3);
  const auto sp = run_npb(topo::GridSpec::single_cluster(16), 16, Kernel::kSP,
                          Class::kB, cfg);
  const auto sp_large = sp.traffic.p2p_sizes.rbegin()->first;
  EXPECT_GE(sp_large, 90e3);  // Table 2: 100..160 kB
  EXPECT_LE(sp_large, 180e3);
}

TEST(Npb, IsAndFtAreCollectiveOnly) {
  const auto cfg = tuned_mpich2();
  for (Kernel k : {Kernel::kIS, Kernel::kFT}) {
    const auto res = run_npb(topo::GridSpec::single_cluster(4), 4, k,
                             Class::kS, cfg);
    EXPECT_EQ(res.traffic.p2p_messages, 0u) << name(k);
    EXPECT_GT(res.traffic.collective_messages, 0u) << name(k);
  }
}

TEST(Npb, EpIsComputeBound) {
  // EP's communication is a handful of tiny reductions: its grid and
  // cluster runtimes must be nearly identical (paper Fig 12: EP ~ 1.0).
  const auto cfg = tuned_mpich2();
  const auto cluster = run_npb(topo::GridSpec::single_cluster(16), 16,
                               Kernel::kEP, Class::kA, cfg);
  const auto grid = run_npb(topo::GridSpec::rennes_nancy(8), 16, Kernel::kEP,
                            Class::kA, cfg);
  const double ratio = to_seconds(cluster.makespan) /
                       to_seconds(grid.makespan);
  EXPECT_GT(ratio, 0.9);
}

TEST(Npb, CgSuffersOnGridMoreThanBt) {
  // Paper Fig 12: kernels with many small messages (CG) lose much more on
  // the grid than kernels with big messages (BT).
  const auto cfg = tuned_mpich2();
  auto ratio = [&cfg](Kernel k) {
    const auto cluster =
        run_npb(topo::GridSpec::single_cluster(16), 16, k, Class::kA, cfg);
    const auto grid =
        run_npb(topo::GridSpec::rennes_nancy(8), 16, k, Class::kA, cfg);
    return to_seconds(cluster.makespan) / to_seconds(grid.makespan);
  };
  const double cg = ratio(Kernel::kCG);
  const double bt = ratio(Kernel::kBT);
  EXPECT_LT(cg, bt);
}

}  // namespace
}  // namespace gridsim::npb
