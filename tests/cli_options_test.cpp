// Tests for the typed option parser behind every gridsim subcommand.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "tools/cli.hpp"

namespace gridsim::cli {
namespace {

/// Runs parse() over a token list, managing the char*[] plumbing.
OptionParser::Result parse_tokens(const OptionParser& parser,
                                  std::vector<std::string> tokens) {
  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (auto& t : tokens) argv.push_back(t.data());
  return parser.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(OptionParser, TypedValuesAndDefaults) {
  int jobs = 4;
  double bytes = 1.5e6;
  std::uint64_t seed = 7;
  std::string out = "here";
  bool quick = false;
  OptionParser p("demo", "demo command");
  p.int_opt("jobs", &jobs, "worker threads")
      .real_opt("bytes", &bytes, "message size")
      .u64_opt("seed", &seed, "rng seed")
      .string_opt("out", &out, "output dir")
      .flag("quick", &quick, "quick mode");

  EXPECT_EQ(parse_tokens(p, {"--jobs", "8", "--bytes", "2e7", "--quick"}),
            OptionParser::Result::kOk);
  EXPECT_EQ(jobs, 8);
  EXPECT_DOUBLE_EQ(bytes, 2e7);
  EXPECT_TRUE(quick);
  // Untouched options keep their initial values.
  EXPECT_EQ(seed, 7u);
  EXPECT_EQ(out, "here");
}

TEST(OptionParser, KeyEqualsValueForm) {
  int jobs = 1;
  std::string filter = "*";
  OptionParser p("demo", "demo");
  p.int_opt("jobs", &jobs, "").string_opt("filter", &filter, "");
  EXPECT_EQ(parse_tokens(p, {"--jobs=12", "--filter=table4*"}),
            OptionParser::Result::kOk);
  EXPECT_EQ(jobs, 12);
  EXPECT_EQ(filter, "table4*");
  // An = in the value survives: only the first split counts.
  EXPECT_EQ(parse_tokens(p, {"--filter=a=b"}), OptionParser::Result::kOk);
  EXPECT_EQ(filter, "a=b");
}

TEST(OptionParser, ValueOptionConsumesDashedToken) {
  // Regression: the old stringly parser dropped values that started with
  // `--`, silently treating `--expect --foo` as an empty --expect.
  std::string expect;
  int delta = 0;
  OptionParser p("demo", "demo");
  p.string_opt("expect", &expect, "").int_opt("delta", &delta, "");
  EXPECT_EQ(parse_tokens(p, {"--expect", "--weird-value"}),
            OptionParser::Result::kOk);
  EXPECT_EQ(expect, "--weird-value");
  EXPECT_EQ(parse_tokens(p, {"--delta", "-3"}), OptionParser::Result::kOk);
  EXPECT_EQ(delta, -3);
}

TEST(OptionParser, RejectsUnknownAndMalformed) {
  int jobs = 1;
  bool quick = false;
  OptionParser p("demo", "demo");
  p.int_opt("jobs", &jobs, "").flag("quick", &quick, "");
  EXPECT_EQ(parse_tokens(p, {"--nope"}), OptionParser::Result::kError);
  EXPECT_EQ(parse_tokens(p, {"stray"}), OptionParser::Result::kError);
  EXPECT_EQ(parse_tokens(p, {"--jobs"}), OptionParser::Result::kError);
  EXPECT_EQ(parse_tokens(p, {"--jobs", "12x"}), OptionParser::Result::kError);
  EXPECT_EQ(parse_tokens(p, {"--jobs", ""}), OptionParser::Result::kError);
  EXPECT_EQ(parse_tokens(p, {"--quick=yes"}), OptionParser::Result::kError);
  // Failed parses leave earlier assignments applied but report the error.
  EXPECT_EQ(jobs, 1);
}

TEST(OptionParser, U64RejectsNegative) {
  std::uint64_t seed = 1;
  OptionParser p("demo", "demo");
  p.u64_opt("seed", &seed, "");
  EXPECT_EQ(parse_tokens(p, {"--seed", "-1"}), OptionParser::Result::kError);
  EXPECT_EQ(parse_tokens(p, {"--seed", "18446744073709551615"}),
            OptionParser::Result::kOk);
  EXPECT_EQ(seed, 18446744073709551615ull);
}

TEST(OptionParser, HelpListsOptionsAndDefaults) {
  int jobs = 4;
  bool quick = false;
  OptionParser p("demo", "runs the demo");
  p.int_opt("jobs", &jobs, "worker threads").flag("quick", &quick, "fast");
  EXPECT_EQ(parse_tokens(p, {"--help"}), OptionParser::Result::kHelp);
  const std::string h = p.help();
  EXPECT_NE(h.find("usage: gridsim demo"), std::string::npos);
  EXPECT_NE(h.find("runs the demo"), std::string::npos);
  EXPECT_NE(h.find("--jobs VALUE"), std::string::npos);
  EXPECT_NE(h.find("(default: 4)"), std::string::npos);
  EXPECT_NE(h.find("--quick"), std::string::npos);
  EXPECT_NE(h.find("--help"), std::string::npos);
}

TEST(OptionParser, DuplicateDeclarationThrows) {
  int a = 0, b = 0;
  OptionParser p("demo", "demo");
  p.int_opt("jobs", &a, "");
  EXPECT_THROW(p.int_opt("jobs", &b, ""), std::logic_error);
}

}  // namespace
}  // namespace gridsim::cli
