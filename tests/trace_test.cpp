// Tests for the structured tracing subsystem.
#include <gtest/gtest.h>

#include <sstream>

#include "mpi/mpi.hpp"
#include "profiles/profiles.hpp"
#include "simcore/simulation.hpp"
#include "simcore/trace.hpp"
#include "topology/grid5000.hpp"

namespace gridsim {
namespace {

TEST(Trace, DisabledByDefault) {
  Tracer t;
  for (int k = 0; k < static_cast<int>(TraceKind::kKindCount); ++k)
    EXPECT_FALSE(t.enabled(static_cast<TraceKind>(k)));
  t.record(0, TraceKind::kMessage, "x", 1);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Trace, RecordsWhenEnabled) {
  Tracer t;
  t.enable(TraceKind::kCwnd);
  t.record(100, TraceKind::kCwnd, "a->b", 2896);
  t.record(200, TraceKind::kMessage, "p2p", 64);  // still disabled
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.events()[0].at, 100);
  EXPECT_EQ(t.events()[0].subject, "a->b");
  EXPECT_DOUBLE_EQ(t.events()[0].value, 2896);
}

TEST(Trace, OfKindFilters) {
  Tracer t;
  t.enable(TraceKind::kCwnd);
  t.enable(TraceKind::kLoss);
  t.record(1, TraceKind::kCwnd, "c", 1);
  t.record(2, TraceKind::kLoss, "c", 2);
  t.record(3, TraceKind::kCwnd, "c", 3);
  EXPECT_EQ(t.of_kind(TraceKind::kCwnd).size(), 2u);
  EXPECT_EQ(t.of_kind(TraceKind::kLoss).size(), 1u);
}

TEST(Trace, CsvOutput) {
  Tracer t;
  t.enable(TraceKind::kPhase);
  t.record(seconds(1), TraceKind::kPhase, "merge", 0, "start");
  std::ostringstream out;
  t.write_csv(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("time_s,kind,subject,value,detail"), std::string::npos);
  EXPECT_NE(s.find("1,phase,merge,0,start"), std::string::npos);
}

TEST(Trace, KindNames) {
  EXPECT_EQ(to_string(TraceKind::kMessage), "message");
  EXPECT_EQ(to_string(TraceKind::kCwnd), "cwnd");
  EXPECT_EQ(to_string(TraceKind::kLoss), "loss");
}

TEST(Trace, TcpChannelEmitsCwndSamplesAndLosses) {
  Simulation sim;
  sim.tracer().enable(TraceKind::kCwnd);
  sim.tracer().enable(TraceKind::kLoss);
  net::Network n(sim);
  const auto a = n.add_host("a");
  const auto b = n.add_host("b");
  const auto l = n.add_link("wan", tcp::ethernet_goodput(1e9),
                            microseconds(5800), 1e6);
  n.add_route(a, b, {l});
  const auto k = tcp::KernelTunables::grid_tuned();
  tcp::TcpChannel ch(n, a, b, k, k, {});
  ch.send(256e6, nullptr, nullptr);
  sim.run();
  const auto cwnd = sim.tracer().of_kind(TraceKind::kCwnd);
  const auto losses = sim.tracer().of_kind(TraceKind::kLoss);
  EXPECT_GT(cwnd.size(), 10u);
  EXPECT_EQ(losses.size(), static_cast<size_t>(ch.loss_events()));
  EXPECT_EQ(cwnd.front().subject, "a->b");
  // Samples are time-ordered and start from the initial window.
  EXPECT_NEAR(cwnd.front().value, 2 * ch.params().mss, 1.0);
  for (size_t i = 1; i < cwnd.size(); ++i)
    EXPECT_GE(cwnd[i].at, cwnd[i - 1].at);
}

TEST(Trace, MpiPayloadsTraced) {
  Simulation sim;
  sim.tracer().enable(TraceKind::kMessage);
  topo::Grid grid(sim, topo::GridSpec::rennes_nancy(1));
  const profiles::ExperimentConfig cfg =
      profiles::experiment(profiles::mpich2())
          .tuning(profiles::TuningLevel::kTcpTuned);
  mpi::Job job(grid, mpi::block_placement(grid, 2), cfg.profile, cfg.kernel);
  sim.spawn([](mpi::Rank& r) -> Task<void> { co_await r.send(1, 777, 0); }(
      job.rank(0)));
  sim.spawn([](mpi::Rank& r) -> Task<void> { (void)co_await r.recv(0, 0); }(
      job.rank(1)));
  sim.run();
  const auto msgs = sim.tracer().of_kind(TraceKind::kMessage);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].subject, "p2p");
  EXPECT_DOUBLE_EQ(msgs[0].value, 777);
}

}  // namespace
}  // namespace gridsim
