// Tests for the experiment harness: report formatting, ping-pong sweep
// properties, slow-start series, and the NPB campaign runner.
#include <gtest/gtest.h>

#include "harness/npb_campaign.hpp"
#include "harness/pingpong.hpp"
#include "harness/report.hpp"
#include "profiles/profiles.hpp"

namespace gridsim::harness {
namespace {

TEST(Report, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512");
  EXPECT_EQ(format_bytes(1024), "1k");
  EXPECT_EQ(format_bytes(64 * 1024), "64k");
  EXPECT_EQ(format_bytes(1024 * 1024), "1M");
  EXPECT_EQ(format_bytes(64.0 * 1024 * 1024), "64M");
}

TEST(Report, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(10, 0), "10");
}

TEST(Report, Pow2SizesEndpoints) {
  const auto sizes = pow2_sizes(1024, 64.0 * 1024 * 1024);
  EXPECT_EQ(sizes.size(), 17u);  // 1k..64M inclusive
  EXPECT_DOUBLE_EQ(sizes.front(), 1024);
  EXPECT_DOUBLE_EQ(sizes.back(), 64.0 * 1024 * 1024);
}

profiles::ExperimentConfig tuned() {
  return profiles::experiment(profiles::mpich2()).tuning(profiles::TuningLevel::kFullyTuned);
}

TEST(Pingpong, LatencyIsRttBound) {
  const SimTime lat = pingpong_min_latency(topo::GridSpec::rennes_nancy(1),
                                           {0, 0, 1, 0}, tuned());
  EXPECT_GT(lat, milliseconds(5));   // at least the propagation delay
  EXPECT_LT(lat, milliseconds(6));   // plus small overheads only
}

TEST(Pingpong, BandwidthMonotoneUntilPlateau) {
  PingpongOptions options;
  options.sizes = pow2_sizes(1024, 16.0 * 1024 * 1024);
  options.rounds = 8;
  const auto points = pingpong_sweep(topo::GridSpec::rennes_nancy(1),
                                     {0, 0, 1, 0}, tuned(), options);
  // Bandwidth grows (weakly) with message size on a tuned path.
  for (size_t i = 1; i < points.size(); ++i)
    EXPECT_GE(points[i].max_bandwidth_mbps,
              points[i - 1].max_bandwidth_mbps * 0.85)
        << "at size " << points[i].bytes;
  EXPECT_GT(points.back().max_bandwidth_mbps, 700);
}

TEST(Pingpong, MinLatencyNotAboveAnyRoundTime) {
  PingpongOptions options;
  options.sizes = {4096};
  options.rounds = 20;
  const auto points = pingpong_sweep(topo::GridSpec::single_cluster(2),
                                     {0, 0, 0, 1}, tuned(), options);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_GT(points[0].min_one_way, 0);
  EXPECT_GT(points[0].max_bandwidth_mbps, 0);
}

TEST(Slowstart, SeriesHasOneSamplePerMessage) {
  const auto series = slowstart_series(topo::GridSpec::rennes_nancy(1),
                                       {0, 0, 1, 0}, tuned(), 1e6, 50);
  ASSERT_EQ(series.size(), 50u);
  for (size_t i = 1; i < series.size(); ++i)
    EXPECT_GT(series[i].at, series[i - 1].at);
  // Later messages are faster than the first (window ramp-up).
  EXPECT_GT(series.back().mbps, series.front().mbps);
}

TEST(Slowstart, CrossTrafficNeedsTwoNodes) {
  CrossTraffic cross;
  cross.burst_bytes = 1e6;
  EXPECT_THROW(slowstart_series(topo::GridSpec::rennes_nancy(1),
                                {0, 0, 1, 0}, tuned(), 1e6, 10, cross),
               std::invalid_argument);
}

TEST(Slowstart, CrossTrafficSlowsConvergence) {
  auto spec = topo::GridSpec::rennes_nancy(2);
  for (auto& site : spec.sites) site.uplink_bps = 1e9;
  const auto clean = slowstart_series(spec, {0, 0, 1, 0}, tuned(), 1e6, 100);
  CrossTraffic cross;
  cross.burst_bytes = 24e6;
  cross.period = milliseconds(500);
  const auto noisy =
      slowstart_series(spec, {0, 0, 1, 0}, tuned(), 1e6, 100, cross);
  double clean_mean = 0, noisy_mean = 0;
  for (const auto& s : clean) clean_mean += s.mbps;
  for (const auto& s : noisy) noisy_mean += s.mbps;
  EXPECT_GT(clean_mean, noisy_mean);
}

TEST(NpbCampaign, MakespanAndTrafficConsistent) {
  const auto res = run_npb(topo::GridSpec::single_cluster(4), 4,
                           npb::Kernel::kLU, npb::Class::kS, tuned());
  EXPECT_GT(res.makespan, 0);
  EXPECT_GT(res.traffic.p2p_messages, 0u);
  EXPECT_GT(res.traffic.p2p_bytes, 0);
  // Mean message size consistent with the histogram.
  double histo_bytes = 0;
  std::uint64_t histo_msgs = 0;
  for (const auto& [size, count] : res.traffic.p2p_sizes) {
    histo_bytes += double(size) * double(count);
    histo_msgs += count;
  }
  EXPECT_EQ(histo_msgs, res.traffic.p2p_messages);
  EXPECT_NEAR(histo_bytes, res.traffic.p2p_bytes,
              res.traffic.p2p_bytes * 0.01);
}

TEST(NpbCampaign, DeterministicAcrossRuns) {
  const auto a = run_npb(topo::GridSpec::rennes_nancy(2), 4, npb::Kernel::kCG,
                         npb::Class::kS, tuned());
  const auto b = run_npb(topo::GridSpec::rennes_nancy(2), 4, npb::Kernel::kCG,
                         npb::Class::kS, tuned());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.traffic.p2p_messages, b.traffic.p2p_messages);
}

}  // namespace
}  // namespace gridsim::harness
