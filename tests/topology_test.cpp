// Tests for the Grid'5000 topology builder.
#include <gtest/gtest.h>

#include "simcore/simulation.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::topo {
namespace {

using namespace gridsim::literals;

TEST(Grid5000, RennesNancyShape) {
  Simulation sim;
  Grid grid(sim, GridSpec::rennes_nancy(8));
  EXPECT_EQ(grid.site_count(), 2);
  EXPECT_EQ(grid.nodes_at(0), 8);
  EXPECT_EQ(grid.total_nodes(), 16);
  EXPECT_EQ(grid.site_of(grid.node(0, 3)), 0);
  EXPECT_EQ(grid.site_of(grid.node(1, 7)), 1);
}

TEST(Grid5000, IntraClusterLatencyBudget) {
  Simulation sim;
  Grid grid(sim, GridSpec::rennes_nancy(2));
  // Two NIC hops of 17.5 us: the 41 us of Table 4 minus 2 x 3 us stack.
  EXPECT_EQ(grid.network().path_latency(grid.node(0, 0), grid.node(0, 1)),
            35_us);
  EXPECT_EQ(grid.rtt(grid.node(0, 0), grid.node(0, 1)), 70_us);
}

TEST(Grid5000, InterClusterRttMatchesSpec) {
  Simulation sim;
  Grid grid(sim, GridSpec::rennes_nancy(2));
  const SimTime rtt = grid.rtt(grid.node(0, 0), grid.node(1, 0));
  EXPECT_EQ(rtt, from_seconds(11.6e-3));
}

TEST(Grid5000, PathCapacityIsNicBound) {
  Simulation sim;
  Grid grid(sim, GridSpec::rennes_nancy(2));
  const double cap = grid.network().path_capacity(grid.node(0, 0),
                                                  grid.node(1, 0));
  EXPECT_NEAR(cap * 8 / 1e6, 941.5, 1.0);  // 1 GbE goodput despite 10G WAN
}

TEST(Grid5000, LoopbackRouteExists) {
  Simulation sim;
  Grid grid(sim, GridSpec::rennes_nancy(2));
  const auto h = grid.node(0, 0);
  EXPECT_TRUE(grid.network().has_route(h, h));
  EXPECT_LE(grid.network().path_latency(h, h), 10_us);
}

TEST(Grid5000, AllPairsRouted) {
  Simulation sim;
  Grid grid(sim, GridSpec::ray2mesh_quad(4));
  for (int a = 0; a < grid.total_nodes(); ++a)
    for (int b = 0; b < grid.total_nodes(); ++b)
      EXPECT_TRUE(grid.network().has_route(a, b))
          << "missing route " << a << "->" << b;
}

TEST(Grid5000, QuadRttsHonourPaperValues) {
  Simulation sim;
  Grid grid(sim, GridSpec::ray2mesh_quad(1));
  // Rennes-Nancy 11.6 ms, Sophia-Toulouse 19.9 ms.
  EXPECT_EQ(grid.rtt(grid.node(0, 0), grid.node(1, 0)),
            from_seconds(11.6e-3));
  EXPECT_EQ(grid.rtt(grid.node(2, 0), grid.node(3, 0)),
            from_seconds(19.9e-3));
}

TEST(Grid5000, CpuSpeedOrdering) {
  Simulation sim;
  Grid grid(sim, GridSpec::ray2mesh_quad(1));
  const double rennes = grid.cpu_speed(grid.node(0, 0));
  const double nancy = grid.cpu_speed(grid.node(1, 0));
  const double sophia = grid.cpu_speed(grid.node(2, 0));
  const double toulouse = grid.cpu_speed(grid.node(3, 0));
  // Paper: Nancy < Rennes, Toulouse < Sophia.
  EXPECT_LT(nancy, rennes);
  EXPECT_LT(nancy, toulouse);
  EXPECT_GT(sophia, rennes);
  EXPECT_GT(sophia, toulouse);
}

TEST(Grid5000, SingleClusterHasNoWan) {
  Simulation sim;
  Grid grid(sim, GridSpec::single_cluster(16));
  EXPECT_EQ(grid.site_count(), 1);
  EXPECT_EQ(grid.total_nodes(), 16);
  EXPECT_EQ(grid.rtt(grid.node(0, 0), grid.node(0, 15)), 70_us);
}

TEST(Grid5000, InvalidSpecsThrow) {
  Simulation sim;
  GridSpec bad = GridSpec::rennes_nancy(2);
  bad.rtt_ms = {{0.0}};
  EXPECT_THROW(Grid(sim, bad), std::invalid_argument);
  GridSpec zero_nodes = GridSpec::single_cluster(0);
  EXPECT_THROW(Grid(sim, zero_nodes), std::invalid_argument);
}

TEST(Grid5000, WanContentionAtUplink) {
  // Eight concurrent node pairs Rennes->Nancy share the 10G uplink: each
  // still gets its full NIC rate (8 x 1G < 10G). With a 1G uplink
  // (Toulouse) they would contend.
  Simulation sim;
  Grid grid(sim, GridSpec::rennes_nancy(8));
  auto& net = grid.network();
  std::vector<net::FlowId> flows;
  for (int i = 0; i < 8; ++i)
    flows.push_back(net.start_flow(grid.node(0, i), grid.node(1, i), 1e9,
                                   net::kUnlimitedRate, nullptr));
  for (auto f : flows) {
    EXPECT_NEAR(net.flow_info(f).rate, tcp::ethernet_goodput(1e9), 1e4);
  }
}

}  // namespace
}  // namespace gridsim::topo
