// Tests for the full nine-site Grid'5000 topology (paper Fig 1) and the
// ring alltoall algorithm.
#include <gtest/gtest.h>

#include <functional>

#include "collectives/collectives.hpp"
#include "mpi/mpi.hpp"
#include "simcore/simulation.hpp"
#include "topology/grid5000.hpp"

namespace gridsim {
namespace {

using namespace gridsim::literals;

TEST(Grid5000Full, NineSites) {
  Simulation sim;
  topo::Grid grid(sim, topo::GridSpec::grid5000_full(2));
  EXPECT_EQ(grid.site_count(), 9);
  EXPECT_EQ(grid.total_nodes(), 18);
}

TEST(Grid5000Full, PublishedRttsHonoured) {
  Simulation sim;
  const auto spec = topo::GridSpec::grid5000_full(1);
  topo::Grid grid(sim, spec);
  auto site_index = [&spec](const std::string& name) {
    for (size_t i = 0; i < spec.sites.size(); ++i)
      if (spec.sites[i].name == name) return static_cast<int>(i);
    throw std::out_of_range(name);
  };
  const auto rtt_ms = [&](const std::string& a, const std::string& b) {
    return to_milliseconds(grid.rtt(grid.node(site_index(a), 0),
                                    grid.node(site_index(b), 0)));
  };
  EXPECT_NEAR(rtt_ms("rennes", "nancy"), 11.6, 0.01);    // Fig 2
  EXPECT_NEAR(rtt_ms("rennes", "sophia"), 19.2, 0.01);   // Section 3.2
  EXPECT_NEAR(rtt_ms("toulouse", "lille"), 18.2, 0.01);  // Section 3.2
}

TEST(Grid5000Full, AllPairsRoutedAndSymmetricRtt) {
  Simulation sim;
  topo::Grid grid(sim, topo::GridSpec::grid5000_full(1));
  for (int a = 0; a < grid.total_nodes(); ++a) {
    for (int b = 0; b < grid.total_nodes(); ++b) {
      ASSERT_TRUE(grid.network().has_route(a, b));
      EXPECT_EQ(grid.network().path_latency(a, b),
                grid.network().path_latency(b, a));
    }
  }
}

TEST(Grid5000Full, TenGigSitesHaveFasterUplinks) {
  const auto spec = topo::GridSpec::grid5000_full(1);
  double rennes_uplink = 0, sophia_uplink = 0;
  for (const auto& s : spec.sites) {
    if (s.name == "rennes") rennes_uplink = s.uplink_bps;
    if (s.name == "sophia") sophia_uplink = s.uplink_bps;
  }
  EXPECT_GT(rennes_uplink, sophia_uplink);
}

// --- ring alltoall --------------------------------------------------------

Task<void> alltoall_body(mpi::Rank& r, SimTime* out) {
  // Several rounds so TCP channels are warm and the algorithmic cost
  // dominates (a single cold round actually favours the ring: it reuses
  // one neighbour connection instead of opening p-1).
  for (int i = 0; i < 10; ++i) co_await coll::alltoall(r, 64e3);
  *out = r.sim().now();
}

SimTime run_alltoall(const char* algo, const topo::GridSpec& spec,
                     int nranks, mpi::TrafficStats* stats = nullptr) {
  Simulation sim;
  topo::Grid grid(sim, spec);
  mpi::ImplProfile p;
  p.eager_threshold = 1e12;
  p.collectives.selector = {
      mpi::CollRule{.op = mpi::CollOp::kAlltoall, .algo = algo}};
  mpi::Job job(grid, mpi::block_placement(grid, nranks), p,
               tcp::KernelTunables::grid_tuned());
  std::vector<SimTime> finish(static_cast<size_t>(nranks), 0);
  for (int r = 0; r < nranks; ++r)
    sim.spawn(alltoall_body(job.rank(r), &finish[static_cast<size_t>(r)]));
  sim.run();
  if (stats) *stats = job.traffic();
  return *std::max_element(finish.begin(), finish.end());
}

TEST(RingAlltoall, CompletesAndMovesMoreBytesThanPairwise) {
  mpi::TrafficStats ring_stats, pair_stats;
  const auto spec = topo::GridSpec::single_cluster(8);
  run_alltoall("ring", spec, 8, &ring_stats);
  run_alltoall("pairwise", spec, 8, &pair_stats);
  // Relaying multiplies the carried volume (blocks travel d hops).
  EXPECT_GT(ring_stats.collective_bytes, pair_stats.collective_bytes * 1.5);
}

TEST(RingAlltoall, PairwiseWinsOnTheClusterRingWinsOnTheGrid) {
  // On a cluster, relaying is pure overhead: pairwise wins. On the grid
  // with block placement the ring touches the WAN on only two boundary
  // edges and pipelines through them, while pairwise synchronises every
  // rank through four latency-bound WAN waves: the ring wins despite
  // carrying more bytes. (This is exactly why grid-aware alltoall
  // algorithms order ranks by site.)
  const auto cluster = topo::GridSpec::single_cluster(8);
  EXPECT_LT(run_alltoall("pairwise", cluster, 8),
            run_alltoall("ring", cluster, 8));
  const auto grid = topo::GridSpec::rennes_nancy(4);
  EXPECT_LT(run_alltoall("ring", grid, 8),
            run_alltoall("pairwise", grid, 8));
}

}  // namespace
}  // namespace gridsim
