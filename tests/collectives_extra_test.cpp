// Additional collective tests: gatherv/scatterv/reduce_scatter, size
// sweeps across algorithms, multi-site hierarchical behaviour.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "collectives/collectives.hpp"
#include "mpi/mpi.hpp"
#include "simcore/simulation.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::coll {
namespace {

using mpi::ImplProfile;
using mpi::Rank;

/// A suite whose selector unconditionally picks the named algorithm.
mpi::CollectiveSuite force(mpi::CollOp op, std::string algo) {
  mpi::CollectiveSuite suite;
  suite.selector = {mpi::CollRule{.op = op, .algo = std::move(algo)}};
  return suite;
}

Task<void> timed(std::function<Task<void>(Rank&)> body, Rank* r,
                 SimTime* finish) {
  co_await body(*r);
  *finish = r->sim().now();
}

SimTime run_group(const topo::GridSpec& spec, int nranks,
                  mpi::CollectiveSuite suite,
                  std::function<Task<void>(Rank&)> body,
                  mpi::TrafficStats* stats = nullptr) {
  Simulation sim;
  topo::Grid grid(sim, spec);
  ImplProfile p;
  p.eager_threshold = 1e12;
  p.collectives = suite;
  mpi::Job job(grid, mpi::block_placement(grid, nranks), p,
               tcp::KernelTunables::grid_tuned());
  std::vector<SimTime> finish(static_cast<size_t>(nranks), 0);
  for (int r = 0; r < nranks; ++r)
    sim.spawn(timed(body, &job.rank(r), &finish[static_cast<size_t>(r)]));
  sim.run();
  if (stats) *stats = job.traffic();
  return *std::max_element(finish.begin(), finish.end());
}

Task<void> gatherv_body(Rank& r) {
  std::vector<double> sizes(static_cast<size_t>(r.size()));
  for (int i = 0; i < r.size(); ++i)
    sizes[static_cast<size_t>(i)] = 1000.0 * (i + 1);
  co_await gatherv(r, 0, sizes);
}

TEST(CollectivesExtra, GathervMovesPerRankSizes) {
  mpi::TrafficStats stats;
  run_group(topo::GridSpec::single_cluster(4), 4, {}, gatherv_body, &stats);
  // Ranks 1..3 send 2000, 3000, 4000 bytes.
  EXPECT_DOUBLE_EQ(stats.collective_bytes, 9000);
  EXPECT_EQ(stats.collective_messages, 3u);
}

Task<void> scatterv_body(Rank& r) {
  std::vector<double> sizes(static_cast<size_t>(r.size()), 500.0);
  co_await scatterv(r, 1, sizes);
}

TEST(CollectivesExtra, ScattervFromNonZeroRoot) {
  mpi::TrafficStats stats;
  const SimTime end = run_group(topo::GridSpec::single_cluster(4), 4, {},
                                scatterv_body, &stats);
  EXPECT_GT(end, 0);
  EXPECT_DOUBLE_EQ(stats.collective_bytes, 1500);  // 3 x 500
}

Task<void> bad_gatherv_body(Rank& r, bool* threw) {
  const std::vector<double> too_short(1, 1.0);
  try {
    co_await gatherv(r, 0, too_short);
  } catch (const std::invalid_argument&) {
    *threw = true;
  }
}

TEST(CollectivesExtra, GathervValidatesSizes) {
  bool threw = false;
  run_group(topo::GridSpec::single_cluster(2), 2, {},
            [&threw](Rank& r) { return bad_gatherv_body(r, &threw); });
  EXPECT_TRUE(threw);
}

Task<void> reduce_scatter_body(Rank& r, double bytes) {
  co_await reduce_scatter(r, bytes);
}

class ReduceScatterSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReduceScatterSweep, CompletesOnVariousRankCounts) {
  const int nranks = GetParam();
  const SimTime end =
      run_group(topo::GridSpec::rennes_nancy(8), nranks, {},
                [](Rank& r) { return reduce_scatter_body(r, 128e3); });
  EXPECT_GT(end, 0);
}

INSTANTIATE_TEST_SUITE_P(Counts, ReduceScatterSweep,
                         ::testing::Values(2, 4, 6, 8, 16));

TEST(CollectivesExtra, ReduceScatterCheaperThanAllreduce) {
  // Reduce-scatter is the first half of Rabenseifner's allreduce: it must
  // not be slower than the full allreduce.
  const auto suite = force(mpi::CollOp::kAllreduce, "rabenseifner");
  const SimTime rs =
      run_group(topo::GridSpec::rennes_nancy(8), 16, suite,
                [](Rank& r) { return reduce_scatter_body(r, 1e6); });
  const SimTime ar = run_group(topo::GridSpec::rennes_nancy(8), 16, suite,
                               [](Rank& r) -> Task<void> {
                                 co_await allreduce(r, 1e6);
                               });
  EXPECT_LE(rs, ar);
}

// --- cross-algorithm size sweep: every bcast algorithm must deliver the
// payload to every rank for every size, on a 3-site grid. -----------------

struct SweepCase {
  const char* algo;  ///< registry name (see collectives/registry.hpp)
  double bytes;
};

class BcastSizeSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BcastSizeSweep, TrafficLowerBoundHolds) {
  const SweepCase c = GetParam();
  mpi::TrafficStats stats;
  auto spec = topo::GridSpec::ray2mesh_quad(4);  // 4 sites x 4 nodes
  run_group(spec, 16, force(mpi::CollOp::kBcast, c.algo),
            [&c](Rank& r) -> Task<void> { co_await bcast(r, 0, c.bytes); },
            &stats);
  // Information-theoretic lower bound: 15 ranks must each receive b bytes.
  EXPECT_GE(stats.collective_bytes, 15 * c.bytes * 0.99)
      << "algo=" << c.algo << " bytes=" << c.bytes;
  // And no algorithm should move more than ~3x the optimum.
  EXPECT_LE(stats.collective_bytes, 15 * c.bytes * 3.2);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgos, BcastSizeSweep,
    ::testing::Values(SweepCase{"binomial", 1e3}, SweepCase{"binomial", 1e6},
                      SweepCase{"scatter-ring", 64e3},
                      SweepCase{"scatter-ring", 1e6},
                      SweepCase{"hierarchical", 64e3},
                      SweepCase{"hierarchical", 1e6},
                      SweepCase{"pipeline", 64e3},
                      SweepCase{"pipeline", 1e6}));

TEST(CollectivesExtra, HierarchicalHandlesFourSites) {
  mpi::CollectiveSuite suite;
  suite.selector = {
      mpi::CollRule{.op = mpi::CollOp::kBcast, .algo = "hierarchical"},
      mpi::CollRule{.op = mpi::CollOp::kAllreduce, .algo = "hierarchical"}};
  const SimTime end = run_group(
      topo::GridSpec::ray2mesh_quad(4), 16, suite, [](Rank& r) -> Task<void> {
        co_await bcast(r, 3, 512e3);
        co_await allreduce(r, 64e3);
        co_await barrier(r);
      });
  EXPECT_GT(end, 0);
}

Task<void> barrier_only(Rank& r) { co_await barrier(r); }

TEST(CollectivesExtra, BothBarrierAlgorithmsSynchronise) {
  for (const char* algo : {"dissemination", "tree"}) {
    const SimTime end = run_group(topo::GridSpec::rennes_nancy(4), 8,
                                  force(mpi::CollOp::kBarrier, algo),
                                  [](Rank& r) { return barrier_only(r); });
    EXPECT_GT(end, 0) << algo;
    // A barrier costs at least one WAN crossing on a two-site job.
    EXPECT_GE(end, milliseconds(5)) << algo;
  }
}

TEST(CollectivesExtra, CollectiveTagsMonotonePerRank) {
  Simulation sim;
  topo::Grid grid(sim, topo::GridSpec::single_cluster(2));
  mpi::ImplProfile p;
  mpi::Job job(grid, mpi::block_placement(grid, 2), p,
               tcp::KernelTunables::grid_tuned());
  auto& r = job.rank(0);
  const int t1 = r.next_collective_tag();
  const int t2 = r.next_collective_tag();
  EXPECT_EQ(t2, t1 + 1);
  EXPECT_GE(t1, mpi::kCollectiveTagBase);
}

}  // namespace
}  // namespace gridsim::coll
