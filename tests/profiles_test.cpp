// Tests for the implementation profiles and tuning transforms, checked
// against the paper's published numbers (Tables 4 and 5, Figures 3/5/6/7).
#include <gtest/gtest.h>

#include "harness/pingpong.hpp"
#include "profiles/profiles.hpp"

namespace gridsim::profiles {
namespace {

using namespace gridsim::literals;
using harness::PingpongEndpoints;

TEST(Profiles, NamesAndOrder) {
  const auto impls = all_implementations();
  ASSERT_EQ(impls.size(), 4u);
  EXPECT_EQ(impls[0].name, "MPICH2");
  EXPECT_EQ(impls[1].name, "GridMPI");
  EXPECT_EQ(impls[2].name, "MPICH-Madeleine");
  EXPECT_EQ(impls[3].name, "OpenMPI");
}

TEST(Profiles, DefaultThresholdsMatchTable5) {
  EXPECT_DOUBLE_EQ(mpich2().eager_threshold, 256 * 1024);
  EXPECT_TRUE(std::isinf(gridmpi().eager_threshold));
  EXPECT_DOUBLE_EQ(mpich_madeleine().eager_threshold, 128 * 1024);
  EXPECT_DOUBLE_EQ(openmpi().eager_threshold, 64 * 1024);
}

TEST(Profiles, FullyTunedThresholdsMatchTable5) {
  // MPICH2 / Madeleine -> 65 MB, OpenMPI -> 32 MB (knob cap), GridMPI
  // untouched (no rendez-vous to begin with).
  EXPECT_DOUBLE_EQ(
      configure(mpich2(), TuningLevel::kFullyTuned).profile.eager_threshold,
      65.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(configure(mpich_madeleine(), TuningLevel::kFullyTuned)
                       .profile.eager_threshold,
                   65.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(
      configure(openmpi(), TuningLevel::kFullyTuned).profile.eager_threshold,
      32.0 * 1024 * 1024);
  EXPECT_TRUE(std::isinf(configure(gridmpi(), TuningLevel::kFullyTuned)
                             .profile.eager_threshold));
}

TEST(Profiles, TcpTuningSetsOpenMpiMcaBuffers) {
  EXPECT_DOUBLE_EQ(
      configure(openmpi(), TuningLevel::kDefault).profile.setsockopt_bytes,
      128 * 1024);
  EXPECT_DOUBLE_EQ(
      configure(openmpi(), TuningLevel::kTcpTuned).profile.setsockopt_bytes,
      4.0 * 1024 * 1024);
}

TEST(Profiles, KernelSelection) {
  const auto def = configure(mpich2(), TuningLevel::kDefault).kernel;
  EXPECT_DOUBLE_EQ(def.tcp_rmem[2], 174760);
  const auto tuned = configure(mpich2(), TuningLevel::kTcpTuned).kernel;
  EXPECT_DOUBLE_EQ(tuned.tcp_rmem[2], 4.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(tuned.tcp_rmem[1], 4.0 * 1024 * 1024);  // GridMPI's need
}

TEST(Profiles, ToStringCoversAllLevels) {
  EXPECT_EQ(to_string(TuningLevel::kDefault), "default");
  EXPECT_EQ(to_string(TuningLevel::kTcpTuned), "tcp-tuned");
  EXPECT_EQ(to_string(TuningLevel::kFullyTuned), "fully-tuned");
}

// --- Table 4: one-way latencies ------------------------------------------

struct Table4Case {
  const char* impl;
  double lan_expected_us;   // paper: in the Rennes cluster
  double wan_expected_us;   // paper: Rennes <-> Nancy
  double tolerance_us;
};

class Table4 : public ::testing::TestWithParam<Table4Case> {};

mpi::ImplProfile by_name(const std::string& name) {
  if (name == "TCP") return raw_tcp();
  for (auto& p : all_implementations())
    if (p.name == name) return p;
  throw std::out_of_range(name);
}

TEST_P(Table4, OneWayLatencyMatchesPaper) {
  const Table4Case c = GetParam();
  const auto cfg = configure(by_name(c.impl), TuningLevel::kDefault);
  const SimTime lan = harness::pingpong_min_latency(
      topo::GridSpec::single_cluster(2), PingpongEndpoints{0, 0, 0, 1}, cfg);
  const SimTime wan = harness::pingpong_min_latency(
      topo::GridSpec::rennes_nancy(1), PingpongEndpoints{0, 0, 1, 0}, cfg);
  EXPECT_NEAR(to_microseconds(lan), c.lan_expected_us, c.tolerance_us)
      << c.impl << " LAN";
  // The WAN column gets a wider tolerance: the paper's raw-TCP grid latency
  // (5812 us) carries ~6 us of kernel cost beyond the 11.6 ms ping RTT that
  // the model does not attribute (interrupts, coalescing). The *deltas*
  // between implementations are what Table 4 demonstrates and they are
  // checked by the per-impl expected values sharing this offset.
  EXPECT_NEAR(to_microseconds(wan), c.wan_expected_us - 6.0,
              c.tolerance_us + 2)
      << c.impl << " WAN";
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, Table4,
    ::testing::Values(Table4Case{"TCP", 41, 5812, 1.5},
                      Table4Case{"MPICH2", 46, 5818, 1.5},
                      Table4Case{"GridMPI", 46, 5819, 2.0},
                      Table4Case{"MPICH-Madeleine", 62, 5826, 2.0},
                      Table4Case{"OpenMPI", 46, 5820, 2.5}));

// --- Figures 3/5/6/7: bandwidth regimes ----------------------------------

double peak_bandwidth(const mpi::ImplProfile& impl, TuningLevel level,
                      bool grid) {
  const auto cfg = configure(impl, level);
  harness::PingpongOptions options;
  options.sizes = {64e6};
  options.rounds = 6;
  const auto spec = grid ? topo::GridSpec::rennes_nancy(1)
                         : topo::GridSpec::single_cluster(2);
  const PingpongEndpoints ends =
      grid ? PingpongEndpoints{0, 0, 1, 0} : PingpongEndpoints{0, 0, 0, 1};
  return harness::pingpong_sweep(spec, ends, cfg, options)
      .at(0)
      .max_bandwidth_mbps;
}

TEST(Figures, Fig5ClusterDefaultsReachLineRate) {
  for (const auto& impl : all_implementations()) {
    const double mbps = peak_bandwidth(impl, TuningLevel::kDefault, false);
    EXPECT_GT(mbps, 800) << impl.name;
    EXPECT_LT(mbps, 945) << impl.name;
  }
}

TEST(Figures, Fig3GridDefaultsCollapse) {
  for (const auto& impl : all_implementations()) {
    const double mbps = peak_bandwidth(impl, TuningLevel::kDefault, true);
    EXPECT_LT(mbps, 125) << impl.name;  // paper: none above 120 Mbps
    EXPECT_GT(mbps, 20) << impl.name;
  }
}

TEST(Figures, Fig6GridTcpTunedRecovers) {
  for (const auto& impl : all_implementations()) {
    const double mbps = peak_bandwidth(impl, TuningLevel::kTcpTuned, true);
    EXPECT_GT(mbps, 700) << impl.name;  // paper: ~900 Mbps
  }
}

TEST(Figures, Fig7FullTuningRemovesThresholdDip) {
  // At 256 kB (just above Madeleine's 128 kB default threshold), full
  // tuning must clearly beat TCP tuning alone for MPICH-Madeleine.
  const auto spec = topo::GridSpec::rennes_nancy(1);
  const PingpongEndpoints ends{0, 0, 1, 0};
  harness::PingpongOptions options;
  options.sizes = {256e3};
  options.rounds = 20;
  const auto tcp_only = harness::pingpong_sweep(
      spec, ends, configure(mpich_madeleine(), TuningLevel::kTcpTuned),
      options);
  const auto full = harness::pingpong_sweep(
      spec, ends, configure(mpich_madeleine(), TuningLevel::kFullyTuned),
      options);
  EXPECT_GT(full.at(0).max_bandwidth_mbps,
            tcp_only.at(0).max_bandwidth_mbps * 1.5);
}

TEST(Builder, MatchesConfigure) {
  // experiment(x).tuning(level) with no overrides is configure(x, level).
  for (const auto level : {TuningLevel::kDefault, TuningLevel::kTcpTuned,
                           TuningLevel::kFullyTuned}) {
    const ExperimentConfig built = experiment(openmpi()).tuning(level);
    const ExperimentConfig direct = configure(openmpi(), level);
    EXPECT_EQ(built.profile.name, direct.profile.name);
    EXPECT_DOUBLE_EQ(built.profile.eager_threshold,
                     direct.profile.eager_threshold);
    EXPECT_DOUBLE_EQ(built.profile.setsockopt_bytes,
                     direct.profile.setsockopt_bytes);
    EXPECT_DOUBLE_EQ(built.kernel.tcp_rmem[2], direct.kernel.tcp_rmem[2]);
  }
}

TEST(Builder, OverridesWinOverTuningLevel) {
  // kTcpTuned sets OpenMPI's socket buffers to 4 MB; a post-tuning override
  // must replace that, not be replaced by it.
  const ExperimentConfig cfg = experiment(openmpi())
                                   .tuning(TuningLevel::kTcpTuned)
                                   .setsockopt_bytes(512e3)
                                   .eager_threshold(1e12);
  EXPECT_DOUBLE_EQ(cfg.profile.setsockopt_bytes, 512e3);
  EXPECT_DOUBLE_EQ(cfg.profile.eager_threshold, 1e12);
  EXPECT_DOUBLE_EQ(cfg.kernel.tcp_rmem[2], 4.0 * 1024 * 1024);
}

TEST(Builder, IdentityKnobsApplyBeforeTuning) {
  const ExperimentConfig cfg = experiment(gridmpi())
                                   .label("GridMPI (pacing off)")
                                   .pacing(false)
                                   .tuning(TuningLevel::kFullyTuned);
  EXPECT_EQ(cfg.profile.name, "GridMPI (pacing off)");
  EXPECT_FALSE(cfg.profile.pacing);
  // Full tuning still leaves GridMPI without a rendez-vous threshold.
  EXPECT_TRUE(std::isinf(cfg.profile.eager_threshold));
}

TEST(Builder, KernelAndWanOverrides) {
  using namespace gridsim::literals;
  tcp::KernelTunables custom = tcp::KernelTunables::grid_tuned();
  custom.tcp_rmem[2] = 12345678;
  const ExperimentConfig cfg = experiment(mpich2())
                                   .tuning(TuningLevel::kTcpTuned)
                                   .kernel(custom)
                                   .wan_extra_overhead(250_us);
  EXPECT_DOUBLE_EQ(cfg.kernel.tcp_rmem[2], 12345678);
  EXPECT_EQ(cfg.profile.wan_extra_overhead, 250_us);
}

TEST(Figures, PingpongSweepSizesAreOrdered) {
  const auto sizes = harness::pow2_sizes(1024, 64e6 /* ~64 MB */);
  ASSERT_GE(sizes.size(), 16u);
  EXPECT_DOUBLE_EQ(sizes.front(), 1024);
  for (size_t i = 1; i < sizes.size(); ++i)
    EXPECT_DOUBLE_EQ(sizes[i], 2 * sizes[i - 1]);
}

}  // namespace
}  // namespace gridsim::profiles
