// Tests for the optional native intra-cluster fabric (the paper's
// heterogeneity future-work study).
#include <gtest/gtest.h>

#include "harness/npb_campaign.hpp"
#include "profiles/profiles.hpp"
#include "simcore/simulation.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::topo {
namespace {

using namespace gridsim::literals;

GridSpec myrinet_spec(bool prefer_native) {
  GridSpec spec = GridSpec::rennes_nancy(4);
  spec.prefer_native_intra = prefer_native;
  for (auto& site : spec.sites) {
    site.native_bps = 2e9;  // Myrinet 2000
    site.native_latency = microseconds(5);
  }
  return spec;
}

TEST(Heterogeneity, NativeFabricLowersIntraLatency) {
  Simulation sim_eth, sim_mx;
  Grid eth(sim_eth, myrinet_spec(false));
  Grid mx(sim_mx, myrinet_spec(true));
  // Ethernet intra: 2 x 17.5 us. Native: 2 x 5 us.
  EXPECT_EQ(eth.network().path_latency(eth.node(0, 0), eth.node(0, 1)),
            35_us);
  EXPECT_EQ(mx.network().path_latency(mx.node(0, 0), mx.node(0, 1)), 10_us);
}

TEST(Heterogeneity, NativeFabricRaisesIntraBandwidth) {
  Simulation sim;
  Grid mx(sim, myrinet_spec(true));
  const double cap =
      mx.network().path_capacity(mx.node(0, 0), mx.node(0, 1));
  EXPECT_NEAR(cap, 2e9 / 8.0, 1e3);  // raw 2 Gbps, no Ethernet framing
}

TEST(Heterogeneity, WanPathsUnchanged) {
  Simulation sim_eth, sim_mx;
  Grid eth(sim_eth, myrinet_spec(false));
  Grid mx(sim_mx, myrinet_spec(true));
  // Inter-site traffic still rides Ethernet + WAN: identical latency.
  EXPECT_EQ(eth.network().path_latency(eth.node(0, 0), eth.node(1, 0)),
            mx.network().path_latency(mx.node(0, 0), mx.node(1, 0)));
}

TEST(Heterogeneity, FabricIgnoredWithoutPreferFlag) {
  GridSpec spec = myrinet_spec(false);
  Simulation sim;
  Grid grid(sim, spec);
  EXPECT_EQ(grid.network().path_latency(grid.node(0, 0), grid.node(0, 1)),
            35_us);
}

TEST(Heterogeneity, LatencyBoundKernelGainsFromNativeFabric) {
  const profiles::ExperimentConfig cfg =
      profiles::experiment(profiles::mpich_madeleine())
          .tuning(profiles::TuningLevel::kTcpTuned);
  const auto eth = harness::run_npb(myrinet_spec(false), 4, npb::Kernel::kLU,
                                    npb::Class::kS, cfg);
  const auto mx = harness::run_npb(myrinet_spec(true), 4, npb::Kernel::kLU,
                                   npb::Class::kS, cfg);
  EXPECT_LT(mx.makespan, eth.makespan);
}

}  // namespace
}  // namespace gridsim::topo
