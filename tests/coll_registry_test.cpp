// Unit tests for the collective-algorithm registry, the declarative
// selector and the guideline harness: the API surface `gridsim coll`
// and the fluent builder knobs sit on. The registered algorithm set is
// pinned here — adding or renaming an algorithm is an API change and must
// update these expectations (and docs/collectives.md).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "collectives/guidelines.hpp"
#include "collectives/registry.hpp"
#include "collectives/selector.hpp"
#include "profiles/profiles.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::coll {
namespace {

using mpi::CollOp;
using mpi::CollRule;
using mpi::TopoScope;

// --- registry introspection ----------------------------------------------

TEST(Registry, PinsTheAlgorithmSet) {
  const auto& reg = AlgorithmRegistry::instance();
  EXPECT_EQ(reg.bcast().size(), 4u);
  EXPECT_EQ(reg.allreduce().size(), 3u);
  EXPECT_EQ(reg.alltoall().size(), 3u);
  EXPECT_EQ(reg.barrier().size(), 2u);
  EXPECT_EQ(reg.names("bcast"),
            (std::vector<std::string>{"binomial", "scatter-ring",
                                      "hierarchical", "pipeline"}));
  EXPECT_EQ(reg.names("allreduce"),
            (std::vector<std::string>{"recursive-doubling", "rabenseifner",
                                      "hierarchical"}));
  EXPECT_EQ(reg.names("alltoall"),
            (std::vector<std::string>{"pairwise", "ring", "bruck"}));
  EXPECT_EQ(reg.names("barrier"),
            (std::vector<std::string>{"dissemination", "tree"}));
  EXPECT_THROW(reg.names("gather"), std::invalid_argument);
}

TEST(Registry, FindsByNameAndAlias) {
  const auto& reg = AlgorithmRegistry::instance();
  ASSERT_NE(reg.find_bcast("scatter-ring"), nullptr);
  // "vandegeijn" is the historical alias the enum knob used.
  const auto* via_alias = reg.find_bcast("vandegeijn");
  ASSERT_NE(via_alias, nullptr);
  EXPECT_EQ(via_alias->name, "scatter-ring");
  EXPECT_EQ(reg.find_bcast("quantum"), nullptr);
  EXPECT_EQ(reg.find_allreduce("binomial"), nullptr);  // wrong operation
}

TEST(Registry, EntriesCarryMetadataAndRunners) {
  const auto& reg = AlgorithmRegistry::instance();
  for (const auto& a : reg.bcast()) {
    EXPECT_FALSE(a.description.empty()) << a.name;
    EXPECT_NE(a.run, nullptr) << a.name;
  }
  // Site-splitting algorithms are the WAN-aware ones.
  EXPECT_TRUE(reg.find_bcast("hierarchical")->wan_aware);
  EXPECT_FALSE(reg.find_bcast("binomial")->wan_aware);
  EXPECT_TRUE(reg.find_allreduce("hierarchical")->wan_aware);
}

TEST(Registry, PolicyNameBridgeRoundTrips) {
  EXPECT_EQ(bcast_policy_by_name("vandegeijn"), mpi::BcastAlgo::kVanDeGeijn);
  EXPECT_EQ(bcast_policy_by_name("scatter-ring"),
            mpi::BcastAlgo::kVanDeGeijn);
  EXPECT_EQ(name_of(mpi::BcastAlgo::kVanDeGeijn), "vandegeijn");
  for (auto algo :
       {mpi::BcastAlgo::kBinomial, mpi::BcastAlgo::kVanDeGeijn,
        mpi::BcastAlgo::kHierarchical, mpi::BcastAlgo::kPipeline})
    EXPECT_EQ(bcast_policy_by_name(name_of(algo)), algo);
  for (auto algo :
       {mpi::AllreduceAlgo::kRecursiveDoubling,
        mpi::AllreduceAlgo::kRabenseifner, mpi::AllreduceAlgo::kHierarchical})
    EXPECT_EQ(allreduce_policy_by_name(name_of(algo)), algo);
  for (auto algo : {mpi::AlltoallAlgo::kPairwise, mpi::AlltoallAlgo::kRing,
                    mpi::AlltoallAlgo::kBruck})
    EXPECT_EQ(alltoall_policy_by_name(name_of(algo)), algo);
  for (auto algo :
       {mpi::BarrierAlgo::kDissemination, mpi::BarrierAlgo::kTree})
    EXPECT_EQ(barrier_policy_by_name(name_of(algo)), algo);
  EXPECT_THROW(bcast_policy_by_name("quantum"), std::invalid_argument);
  EXPECT_THROW(allreduce_policy_by_name(""), std::invalid_argument);
}

// --- selector decision rules ---------------------------------------------

TEST(Selector, DefaultTablesHonourTheCutoffs) {
  mpi::CollectiveSuite suite;  // kVanDeGeijn bcast, kRabenseifner allreduce
  suite.bcast = bcast_policy_by_name("vandegeijn");
  suite.allreduce = allreduce_policy_by_name("rabenseifner");
  auto chosen = [&suite](CollOp op, double bytes) {
    return Selector::pick(suite, op, bytes, 16, 1).algo;
  };
  EXPECT_EQ(chosen(CollOp::kBcast, kBcastSmallCutoff), "binomial");
  EXPECT_EQ(chosen(CollOp::kBcast, kBcastSmallCutoff + 1), "scatter-ring");
  EXPECT_EQ(chosen(CollOp::kAllreduce, kAllreduceSmallCutoff),
            "recursive-doubling");
  EXPECT_EQ(chosen(CollOp::kAllreduce, kAllreduceSmallCutoff + 1),
            "rabenseifner");
}

TEST(Selector, DefaultTablesAreTotal) {
  mpi::CollectiveSuite suite;
  for (auto op : {CollOp::kBcast, CollOp::kAllreduce, CollOp::kAlltoall,
                  CollOp::kBarrier}) {
    const auto& rules = Selector::default_rules(suite, op);
    ASSERT_FALSE(rules.empty()) << mpi::to_string(op);
    // The last rule is unbounded, so pick always returns something.
    EXPECT_TRUE(Selector::matches(rules.back(), op, 1e18, 1 << 20, 64));
  }
}

TEST(Selector, FirstMatchingCustomRuleWins) {
  mpi::CollectiveSuite suite;
  suite.selector = {
      CollRule{.op = CollOp::kBcast, .algo = "pipeline", .max_bytes = 1e3},
      CollRule{.op = CollOp::kBcast, .algo = "hierarchical"}};
  EXPECT_EQ(Selector::pick(suite, CollOp::kBcast, 500, 16, 1).algo,
            "pipeline");
  EXPECT_EQ(Selector::pick(suite, CollOp::kBcast, 2e3, 16, 1).algo,
            "hierarchical");
  // Other operations fall through to the defaults untouched.
  EXPECT_EQ(Selector::pick(suite, CollOp::kAllreduce, 500, 16, 1).algo,
            "recursive-doubling");
}

TEST(Selector, RankBandsAndFallback) {
  mpi::CollectiveSuite suite;
  suite.selector = {CollRule{.op = CollOp::kAlltoall,
                             .algo = "bruck",
                             .min_ranks = 32}};
  EXPECT_EQ(Selector::pick(suite, CollOp::kAlltoall, 1e3, 64, 1).algo,
            "bruck");
  // Below the rank band no custom rule matches: enum default (pairwise).
  EXPECT_EQ(Selector::pick(suite, CollOp::kAlltoall, 1e3, 8, 1).algo,
            "pairwise");
}

TEST(Selector, TopologyScopeNeedsSites) {
  mpi::CollectiveSuite suite;
  suite.selector = {CollRule{.op = CollOp::kBcast,
                             .algo = "hierarchical",
                             .topo = TopoScope::kMultiSite},
                    CollRule{.op = CollOp::kBcast,
                             .algo = "scatter-ring",
                             .topo = TopoScope::kSingleSite}};
  EXPECT_TRUE(Selector::needs_sites(suite, CollOp::kBcast));
  EXPECT_FALSE(Selector::needs_sites(suite, CollOp::kAllreduce));
  EXPECT_EQ(Selector::pick(suite, CollOp::kBcast, 1e6, 16, 2).algo,
            "hierarchical");
  EXPECT_EQ(Selector::pick(suite, CollOp::kBcast, 1e6, 16, 1).algo,
            "scatter-ring");
}

TEST(Selector, EffectiveRulesListsCustomThenDefaults) {
  mpi::CollectiveSuite suite;
  suite.selector = {CollRule{.op = CollOp::kBcast, .algo = "pipeline"}};
  const auto rules = Selector::effective_rules(suite, CollOp::kBcast);
  ASSERT_GE(rules.size(), 2u);
  EXPECT_EQ(rules.front().algo, "pipeline");
  EXPECT_EQ(rules.back().algo,
            Selector::default_rules(suite, CollOp::kBcast).back().algo);
}

// --- fluent builder knobs --------------------------------------------------

TEST(BuilderKnobs, NamesResolveToEnumPolicies) {
  const profiles::ExperimentConfig cfg = profiles::experiment(profiles::mpich2())
                                             .bcast_algo("vandegeijn")
                                             .allreduce_algo("rabenseifner")
                                             .alltoall_algo("bruck")
                                             .barrier_algo("tree");
  EXPECT_EQ(cfg.profile.collectives.bcast, mpi::BcastAlgo::kVanDeGeijn);
  EXPECT_EQ(cfg.profile.collectives.allreduce,
            mpi::AllreduceAlgo::kRabenseifner);
  EXPECT_EQ(cfg.profile.collectives.alltoall, mpi::AlltoallAlgo::kBruck);
  EXPECT_EQ(cfg.profile.collectives.barrier, mpi::BarrierAlgo::kTree);
  EXPECT_THROW(profiles::experiment(profiles::mpich2()).bcast_algo("nope"),
               std::invalid_argument);
}

TEST(BuilderKnobs, SelectorKnobInstallsRules) {
  const profiles::ExperimentConfig cfg =
      profiles::experiment(profiles::gridmpi())
          .selector({CollRule{.op = CollOp::kBcast, .algo = "pipeline"}});
  ASSERT_EQ(cfg.profile.collectives.selector.size(), 1u);
  EXPECT_EQ(cfg.profile.collectives.selector[0].algo, "pipeline");
}

// --- guideline harness -----------------------------------------------------

TEST(Guidelines, CleanTableHasNoViolationsOnTheCluster) {
  GuidelineOptions opt;
  opt.sizes = {1e3, 64e3};  // quick probe set, spans the bcast cutoff
  const auto report =
      verify_guidelines(topo::GridSpec::single_cluster(16), "cluster",
                        profiles::mpich2(), tcp::KernelTunables::grid_tuned(),
                        opt);
  EXPECT_EQ(report.violations(), 0) << "first violated cell: " << [&] {
    for (const auto& c : report.cells)
      if (c.violated) return c.guideline + " " + c.detail;
    return std::string();
  }();
  // 2 sizes -> 3 composition cells each + 2 monotone cells for the pair.
  EXPECT_EQ(report.cells.size(), 8u);
}

TEST(Guidelines, MisruledSelectorIsCaughtOnTheCyclicGrid) {
  mpi::ImplProfile impl = profiles::mpich2();
  impl.collectives.selector = misruled_selector();
  GuidelineOptions opt;
  opt.sizes = {1e3, 64e3};
  opt.cyclic = true;  // interleave ranks across sites: the adversarial order
  const auto report =
      verify_guidelines(topo::GridSpec::rennes_nancy(8), "grid-cyclic", impl,
                        tcp::KernelTunables::grid_tuned(), opt);
  ASSERT_GT(report.violations(), 0);
  bool monotone_bcast = false;
  for (const auto& c : report.cells)
    if (c.violated && c.guideline == "monotone-bcast") monotone_bcast = true;
  EXPECT_TRUE(monotone_bcast)
      << "misrule must trip the named monotone-bcast guideline";
}

TEST(Guidelines, JsonReportCreatesParentDirectories) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "coll-json-test";
  std::filesystem::remove_all(dir);
  const std::filesystem::path out = dir / "nested" / "report.json";
  GuidelineReport report;
  report.cells.push_back(GuidelineCell{.guideline = "monotone-bcast",
                                       .profile = "MPICH2",
                                       .topology = "grid-cyclic",
                                       .bytes = 1e3,
                                       .lhs_s = 2,
                                       .rhs_s = 1,
                                       .ratio = 2,
                                       .tolerance = 1.25,
                                       .violated = true,
                                       .detail = "\"quoted\""});
  ASSERT_TRUE(write_coll_json(out.string(), report));
  ASSERT_TRUE(std::filesystem::exists(out));
  std::ifstream in(out);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"gridsim-coll/1\""), std::string::npos);
  EXPECT_NE(text.find("\"violations\": 1"), std::string::npos);
  EXPECT_NE(text.find("monotone-bcast"), std::string::npos);
  EXPECT_NE(text.find("\\\"quoted\\\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gridsim::coll
