// Tier-1 determinism audits: every auditable scenario must produce a
// bit-identical event-trace digest across repeated runs, and the digest for
// a fixed seed is pinned so silent behavioural drift of the engine shows up
// as a test failure rather than as quietly different paper numbers.
#include <cmath>

#include <gtest/gtest.h>

#include "harness/determinism.hpp"
#include "simcore/trace.hpp"

namespace gridsim::harness {
namespace {

class DeterminismAudit : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismAudit, RepeatedRunsProduceIdenticalDigests) {
  const AuditResult res = audit_determinism(GetParam(), /*seed=*/1);
  EXPECT_TRUE(res.deterministic)
      << res.scenario << ": first digest " << std::hex << res.first.digest
      << " second digest " << res.second.digest;
  EXPECT_GT(res.first.events, 0u);
  EXPECT_GT(res.first.final_time, 0);
  EXPECT_EQ(res.first.events, res.second.events);
  EXPECT_EQ(res.first.final_time, res.second.final_time);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, DeterminismAudit,
                         ::testing::Values("pingpong", "nas", "ray2mesh"),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

TEST(DeterminismAudit, UnknownScenarioThrows) {
  EXPECT_THROW(run_audit_scenario("no-such-scenario", 1),
               std::invalid_argument);
}

TEST(DeterminismAudit, SeedSaltsTheDigest) {
  const AuditRun a = run_audit_scenario("pingpong", 1);
  const AuditRun b = run_audit_scenario("pingpong", 2);
  EXPECT_NE(a.digest, b.digest);
  // The seed salts the fold; the simulated behaviour itself is unchanged.
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.final_time, b.final_time);
}

// Pinned digest for a fixed seed. If this fails, the engine's event
// schedule changed: either an intentional model change (re-pin the value
// and say so in the commit) or a nondeterminism/ordering bug (fix it).
TEST(DeterminismAudit, PingpongDigestIsPinnedForSeed42) {
  const AuditRun run = run_audit_scenario("pingpong", 42);
  EXPECT_EQ(run.digest, 0xfc83aed62525d432ULL)
      << "actual digest: " << std::hex << run.digest;
  EXPECT_EQ(run.events, 106u);
}

TEST(TraceDigest, SensitiveToEveryEventField) {
  Tracer base;
  base.enable(TraceKind::kMessage);
  base.record(10, TraceKind::kMessage, "p2p", 1024.0, "x");

  const std::uint64_t d0 = trace_digest(base);

  Tracer changed_time;
  changed_time.enable(TraceKind::kMessage);
  changed_time.record(11, TraceKind::kMessage, "p2p", 1024.0, "x");
  EXPECT_NE(trace_digest(changed_time), d0);

  Tracer changed_subject;
  changed_subject.enable(TraceKind::kMessage);
  changed_subject.record(10, TraceKind::kMessage, "collective", 1024.0, "x");
  EXPECT_NE(trace_digest(changed_subject), d0);

  Tracer changed_value_ulp;
  changed_value_ulp.enable(TraceKind::kMessage);
  changed_value_ulp.record(10, TraceKind::kMessage, "p2p",
                           std::nextafter(1024.0, 2048.0), "x");
  EXPECT_NE(trace_digest(changed_value_ulp), d0);

  Tracer changed_detail;
  changed_detail.enable(TraceKind::kMessage);
  changed_detail.record(10, TraceKind::kMessage, "p2p", 1024.0, "y");
  EXPECT_NE(trace_digest(changed_detail), d0);

  // Same events, different basis (seed) -> different digest.
  EXPECT_NE(trace_digest(base, 1), trace_digest(base, 2));
}

TEST(TraceDigest, EmptyTraceDigestIsTheBasis) {
  Tracer empty;
  EXPECT_EQ(trace_digest(empty, 123), 123u);
}

}  // namespace
}  // namespace gridsim::harness
