// Catalog completeness: the full scenario-name list is pinned so that a
// refactor cannot silently drop or rename an experiment. A legitimate
// addition updates the list (regenerate with `gridsim campaign --list`).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "scenarios/catalog.hpp"

namespace gridsim::scenarios {
namespace {

const std::vector<std::string>& expected_names() {
  static const std::vector<std::string> names = {
    "fig3/TCP",
    "fig3/MPICH2",
    "fig3/GridMPI",
    "fig3/MPICH-Madeleine",
    "fig3/OpenMPI",
    "fig5/TCP",
    "fig5/MPICH2",
    "fig5/GridMPI",
    "fig5/MPICH-Madeleine",
    "fig5/OpenMPI",
    "fig6/TCP",
    "fig6/MPICH2",
    "fig6/GridMPI",
    "fig6/MPICH-Madeleine",
    "fig6/OpenMPI",
    "fig7/TCP",
    "fig7/MPICH2",
    "fig7/GridMPI",
    "fig7/MPICH-Madeleine",
    "fig7/OpenMPI",
    "table4/TCP",
    "table4/MPICH2",
    "table4/GridMPI",
    "table4/MPICH-Madeleine",
    "table4/OpenMPI",
    "table5/MPICH2",
    "table5/GridMPI",
    "table5/MPICH-Madeleine",
    "table5/OpenMPI",
    "ablation_buffers/62.5kB",
    "ablation_buffers/125kB",
    "ablation_buffers/250kB",
    "ablation_buffers/500kB",
    "ablation_buffers/1000kB",
    "ablation_buffers/1.95312MB",
    "ablation_buffers/3.90625MB",
    "ablation_buffers/7.8125MB",
    "ext_mpich_g2/MPICH2 (default)",
    "ext_mpich_g2/MPICH-G2 (default)",
    "ext_mpich_g2/MPICH2 (fully-tuned)",
    "ext_mpich_g2/MPICH-G2 (fully-tuned)",
    "fig9/TCP",
    "fig9/MPICH2",
    "fig9/GridMPI",
    "fig9/MPICH-Madeleine",
    "fig9/OpenMPI",
    "ablation_pacing/slowstart-off",
    "ablation_pacing/slowstart-on",
    "ablation_pacing/is-off",
    "ablation_pacing/is-on",
    "ablation_tcp_algo/BIC",
    "ablation_tcp_algo/Reno",
    "ablation_tcp_algo/CUBIC",
    "table2/EP",
    "table2/CG",
    "table2/MG",
    "table2/LU",
    "table2/SP",
    "table2/BT",
    "table2/IS",
    "table2/FT",
    "fig10/MPICH2",
    "fig10/GridMPI",
    "fig10/MPICH-Madeleine",
    "fig10/OpenMPI",
    "fig11/MPICH2",
    "fig11/GridMPI",
    "fig11/MPICH-Madeleine",
    "fig11/OpenMPI",
    "fig12/MPICH2",
    "fig12/GridMPI",
    "fig12/MPICH-Madeleine",
    "fig12/OpenMPI",
    "fig13/MPICH2",
    "fig13/GridMPI",
    "fig13/MPICH-Madeleine",
    "fig13/OpenMPI",
    "ablation_collectives/bcast-binomial",
    "ablation_collectives/bcast-vandegeijn",
    "ablation_collectives/bcast-pipeline",
    "ablation_collectives/bcast-hierarchical",
    "ablation_collectives/allreduce-recursive-doubling",
    "ablation_collectives/allreduce-rabenseifner",
    "ablation_collectives/allreduce-hierarchical",
    "ablation_heterogeneity/fabric",
    "ablation_heterogeneity/gateway",
    "ext_placement/CG",
    "ext_placement/MG",
    "ext_placement/LU",
    "ext_placement/SP",
    "ext_placement/BT",
    "ext_traffic_matrix/EP",
    "ext_traffic_matrix/CG",
    "ext_traffic_matrix/MG",
    "ext_traffic_matrix/LU",
    "ext_traffic_matrix/SP",
    "ext_traffic_matrix/BT",
    "ext_traffic_matrix/IS",
    "ext_traffic_matrix/FT",
    "table6/master-nancy",
    "table6/master-rennes",
    "table6/master-sophia",
    "table6/master-toulouse",
    "table7/master-nancy",
    "table7/master-rennes",
    "table7/master-sophia",
    "table7/master-toulouse",
    "robust/loss-MPICH2",
    "robust/loss-GridMPI",
    "robust/loss-MPICH-Madeleine",
    "robust/loss-OpenMPI",
    "robust/jitter-pingpong",
    "robust/jitter-gridmpi",
    "robust/flap-pingpong",
    "robust/flap-ray2mesh",
    "robust/cross-traffic",
    "robust/packet-loss",
    "mc/pingpong-wild-MPICH2",
    "mc/pingpong-wild-GridMPI",
    "mc/bcast-MPICH2",
    "mc/allreduce-MPICH2",
    "mc/bcast-GridMPI",
    "mc/allreduce-GridMPI",
    "mc/cg-MPICH2",
    "mc/cg-GridMPI",
    "mc/is-MPICH2",
    "mc/is-GridMPI",
    "mc/deadlock-fixture",
    "lint/wildcard-race",
    "lint/scripted-order",
    "coll/verify-MPICH2",
    "coll/verify-GridMPI",
    "coll/verify-MPICH-Madeleine",
    "coll/verify-OpenMPI",
    "coll/misrule-fixture",
    "coll/equiv-bcast",
    "coll/equiv-allreduce",
    "coll/equiv-alltoall",
    "coll/equiv-barrier",
    "coll/decision-table",
    "coll/selector-rules",
    "coll/builder-knobs",
  };
  return names;
}

TEST(Catalog, PinsEveryScenarioName) {
  const auto& reg = paper_registry();
  std::vector<std::string> actual;
  for (const auto& spec : reg.scenarios()) actual.push_back(spec.name);
  EXPECT_EQ(actual, expected_names());
}

TEST(Catalog, RobustGroupIsComplete) {
  const auto& reg = paper_registry();
  std::set<std::string> robust;
  for (const auto& spec : reg.scenarios())
    if (spec.group == "robust") robust.insert(spec.name);
  const std::set<std::string> expected = {
      "robust/loss-MPICH2",       "robust/loss-GridMPI",
      "robust/loss-MPICH-Madeleine", "robust/loss-OpenMPI",
      "robust/jitter-pingpong",   "robust/jitter-gridmpi",
      "robust/flap-pingpong",     "robust/flap-ray2mesh",
      "robust/cross-traffic",     "robust/packet-loss",
  };
  EXPECT_EQ(robust, expected);
}

TEST(Catalog, McGroupIsComplete) {
  const auto& reg = paper_registry();
  std::set<std::string> mc;
  for (const auto& spec : reg.scenarios())
    if (spec.group == "mc") mc.insert(spec.name);
  const std::set<std::string> expected = {
      "mc/pingpong-wild-MPICH2", "mc/pingpong-wild-GridMPI",
      "mc/bcast-MPICH2",         "mc/bcast-GridMPI",
      "mc/allreduce-MPICH2",     "mc/allreduce-GridMPI",
      "mc/cg-MPICH2",            "mc/cg-GridMPI",
      "mc/is-MPICH2",            "mc/is-GridMPI",
      "mc/deadlock-fixture",
  };
  EXPECT_EQ(mc, expected);
}

TEST(Catalog, CollGroupIsComplete) {
  const auto& reg = paper_registry();
  std::set<std::string> coll;
  for (const auto& spec : reg.scenarios())
    if (spec.group == "coll") coll.insert(spec.name);
  const std::set<std::string> expected = {
      "coll/verify-MPICH2",    "coll/verify-GridMPI",
      "coll/verify-MPICH-Madeleine", "coll/verify-OpenMPI",
      "coll/misrule-fixture",  "coll/equiv-bcast",
      "coll/equiv-allreduce",  "coll/equiv-alltoall",
      "coll/equiv-barrier",    "coll/decision-table",
      "coll/selector-rules",   "coll/builder-knobs",
  };
  EXPECT_EQ(coll, expected);
  // Guideline sweeps are deterministic simulations with no wildcard
  // receives: none of them may declare expected races.
  for (const auto& spec : reg.scenarios()) {
    if (spec.group != "coll") continue;
    EXPECT_FALSE(spec.races_expected) << spec.name;
  }
}

TEST(Catalog, McScenariosDeclareSmallRankCounts) {
  // `gridsim mc` skips scenarios without a declared rank count within its
  // cap; every model-checking target must therefore declare one, and keep
  // it small enough for exhaustive exploration.
  const auto& reg = paper_registry();
  for (const auto& spec : reg.scenarios()) {
    if (spec.group != "mc") continue;
    EXPECT_GT(spec.ranks, 0) << spec.name;
    EXPECT_LE(spec.ranks, 4) << spec.name;
  }
}

TEST(Catalog, RacesExpectedCoversExactlyTheWildcardWorkloads) {
  // The declaration gates `gridsim lint`'s verdict ("expected-races" vs a
  // failing "races"), so it is pinned like the names: only workloads whose
  // wildcard races are the design (master/worker self-scheduling, the mc
  // racing fixtures) may carry it.
  const auto& reg = paper_registry();
  std::set<std::string> declared;
  for (const auto& spec : reg.scenarios())
    if (spec.races_expected) declared.insert(spec.name);
  const std::set<std::string> expected = {
      "mc/pingpong-wild-MPICH2", "mc/pingpong-wild-GridMPI",
      "mc/deadlock-fixture",     "table6/master-nancy",
      "table6/master-rennes",    "table6/master-sophia",
      "table6/master-toulouse",  "table7/master-nancy",
      "table7/master-rennes",    "table7/master-sophia",
      "table7/master-toulouse",  "robust/flap-ray2mesh",
      "lint/wildcard-race",
  };
  EXPECT_EQ(declared, expected);
}

TEST(Catalog, EverySpecIsWellFormed) {
  const auto& reg = paper_registry();
  for (const auto& spec : reg.scenarios()) {
    EXPECT_FALSE(spec.group.empty()) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    EXPECT_TRUE(static_cast<bool>(spec.run)) << spec.name;
    // "group/variant" convention: the name starts with its group.
    EXPECT_EQ(spec.name.rfind(spec.group + "/", 0), 0u) << spec.name;
  }
}

}  // namespace
}  // namespace gridsim::scenarios
