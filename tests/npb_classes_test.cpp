// Cross-class NPB properties: every kernel completes at every class on a
// small cluster, work scales monotonically with class, and traffic scales
// with problem size.
#include <gtest/gtest.h>

#include "harness/npb_campaign.hpp"
#include "npb/npb.hpp"
#include "profiles/profiles.hpp"
#include "simcore/check.hpp"

namespace gridsim::npb {
namespace {

profiles::ExperimentConfig cfg() {
  return profiles::experiment(profiles::mpich2())
      .tuning(profiles::TuningLevel::kTcpTuned);
}

class KernelClassSweep
    : public ::testing::TestWithParam<std::tuple<Kernel, Class>> {};

TEST_P(KernelClassSweep, CompletesOnFourRanks) {
  const auto [kernel, cls] = GetParam();
  const auto res = harness::run_npb(topo::GridSpec::single_cluster(4), 4,
                                    kernel, cls, cfg());
  EXPECT_GT(res.makespan, 0);
  EXPECT_FALSE(res.timed_out);
  EXPECT_GT(res.traffic.p2p_messages + res.traffic.collective_messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SmallClasses, KernelClassSweep,
    ::testing::Combine(::testing::Values(Kernel::kEP, Kernel::kCG,
                                         Kernel::kMG, Kernel::kLU,
                                         Kernel::kSP, Kernel::kBT,
                                         Kernel::kIS, Kernel::kFT),
                       ::testing::Values(Class::kS, Class::kW)));

TEST(NpbClasses, OpsMonotoneInClass) {
  for (Kernel k : all_kernels()) {
    double prev = 0;
    for (Class c : {Class::kS, Class::kW, Class::kA, Class::kB, Class::kC}) {
      const double ops = total_ops(k, c);
      EXPECT_GT(ops, prev) << name(k);
      prev = ops;
    }
  }
}

TEST(NpbClasses, RuntimeGrowsWithClass) {
  const auto s = harness::run_npb(topo::GridSpec::single_cluster(4), 4,
                                  Kernel::kMG, Class::kS, cfg());
  const auto w = harness::run_npb(topo::GridSpec::single_cluster(4), 4,
                                  Kernel::kMG, Class::kW, cfg());
  EXPECT_GT(w.makespan, s.makespan);
}

TEST(NpbClasses, TrafficGrowsWithClass) {
  const auto s = harness::run_npb(topo::GridSpec::single_cluster(4), 4,
                                  Kernel::kCG, Class::kS, cfg());
  const auto w = harness::run_npb(topo::GridSpec::single_cluster(4), 4,
                                  Kernel::kCG, Class::kW, cfg());
  EXPECT_GT(w.traffic.p2p_bytes, s.traffic.p2p_bytes);
}

TEST(NpbClasses, TimeoutReportsPartialRun) {
  // Class B LU on 4 ranks takes ~100 virtual seconds; a 1-second budget
  // must report a timeout with partial traffic. Timing out abandons the
  // still-suspended rank coroutines, so their frames are exempt from leak
  // detection for this run.
  [[maybe_unused]] ScopedLeakExemption abandoned_run_frames;
  const auto res = harness::run_npb(topo::GridSpec::single_cluster(4), 4,
                                    Kernel::kLU, Class::kB, cfg(),
                                    seconds(1));
  EXPECT_TRUE(res.timed_out);
  EXPECT_EQ(res.makespan, seconds(1));
  EXPECT_GT(res.traffic.p2p_messages, 0u);
}

TEST(NpbClasses, GenerousTimeoutDoesNotTrigger) {
  const auto res = harness::run_npb(topo::GridSpec::single_cluster(4), 4,
                                    Kernel::kMG, Class::kS, cfg(),
                                    seconds(3600));
  EXPECT_FALSE(res.timed_out);
}

}  // namespace
}  // namespace gridsim::npb
