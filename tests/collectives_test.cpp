// Tests for the collective algorithms: termination, traffic volumes, and
// the WAN-awareness properties the paper relies on. Algorithms are selected
// by registry name through declarative selector rules (coll_rules.hpp), the
// same path `ExperimentBuilder::bcast_algo(...)` and the shipped decision
// tables use.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "collectives/collectives.hpp"
#include "mpi/mpi.hpp"
#include "simcore/simulation.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::coll {
namespace {

using namespace gridsim::literals;
using mpi::ImplProfile;
using mpi::Rank;

ImplProfile profile_with(mpi::CollectiveSuite suite) {
  ImplProfile p;
  p.name = "test";
  p.send_overhead = microseconds(2);
  p.recv_overhead = microseconds(2);
  p.eager_threshold = 1e9;  // keep protocol out of the picture
  p.collectives = suite;
  return p;
}

/// A suite whose selector unconditionally picks the named algorithm.
mpi::CollectiveSuite force(mpi::CollOp op, std::string algo) {
  mpi::CollectiveSuite suite;
  suite.selector = {mpi::CollRule{.op = op, .algo = std::move(algo)}};
  return suite;
}

Task<void> timed_body(std::function<Task<void>(Rank&)> body, Rank* r,
                      SimTime* finish) {
  co_await body(*r);
  *finish = r->sim().now();
}

/// Runs `body` as an SPMD program over `nranks` on the given spec; returns
/// the completion time of the slowest rank (stale network bookkeeping
/// events may outlive the application, so sim.run()'s return value is not
/// the app's makespan).
SimTime run_spmd(const topo::GridSpec& spec, int nranks, ImplProfile profile,
                 std::function<Task<void>(Rank&)> body,
                 mpi::TrafficStats* stats_out = nullptr) {
  Simulation sim;
  topo::Grid grid(sim, spec);
  mpi::Job job(grid, mpi::block_placement(grid, nranks), std::move(profile),
               tcp::KernelTunables::grid_tuned());
  std::vector<SimTime> finish(static_cast<size_t>(nranks), 0);
  job.launch([&body, &finish, &job](Rank& r) {
    return timed_body(body, &r, &finish[static_cast<size_t>(r.rank())]);
  });
  sim.run();
  if (stats_out) *stats_out = job.traffic();
  return *std::max_element(finish.begin(), finish.end());
}

Task<void> staggered_barrier_body(Rank& r, std::vector<SimTime>* after) {
  // Stagger arrival: rank i waits i ms first.
  co_await r.sim().delay(milliseconds(r.rank()));
  co_await barrier(r);
  (*after)[static_cast<size_t>(r.rank())] = r.sim().now();
}

TEST(Collectives, BarrierSynchronisesAllRanks) {
  std::vector<SimTime> after(8, -1);
  run_spmd(topo::GridSpec::rennes_nancy(4), 8, profile_with({}),
           [&after](Rank& r) { return staggered_barrier_body(r, &after); });
  // Nobody leaves before the last arrival (7 ms).
  for (auto t : after) EXPECT_GE(t, 7_ms);
}

TEST(Collectives, BarrierSingleRankIsNoop) {
  const SimTime end = run_spmd(
      topo::GridSpec::single_cluster(1), 1, profile_with({}),
      [](Rank& r) -> Task<void> { co_await barrier(r); });
  EXPECT_EQ(end, 0);
}

Task<void> bcast_bytes_body(Rank& r, double bytes) {
  co_await bcast(r, 0, bytes);
}

Task<void> repeated_bcast_body(Rank& r, double bytes, int iters) {
  for (int i = 0; i < iters; ++i) co_await bcast(r, 0, bytes);
}

Task<void> repeated_allreduce_body(Rank& r, double bytes, int iters) {
  for (int i = 0; i < iters; ++i) co_await allreduce(r, bytes);
}

class BcastAlgos : public ::testing::TestWithParam<const char*> {};

TEST_P(BcastAlgos, CompletesAndMovesEnoughBytes) {
  mpi::TrafficStats stats;
  const double bytes = 256e3;
  run_spmd(topo::GridSpec::rennes_nancy(8), 16,
           profile_with(force(mpi::CollOp::kBcast, GetParam())),
           [bytes](Rank& r) { return bcast_bytes_body(r, bytes); }, &stats);
  // Every rank except the root must receive the payload at least once:
  // total collective traffic >= (p-1) * bytes.
  EXPECT_GE(stats.collective_bytes, 15 * bytes * 0.99);
  EXPECT_EQ(stats.p2p_messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(All, BcastAlgos,
                         ::testing::Values("binomial", "scatter-ring",
                                           "hierarchical"));

TEST(Collectives, BcastNonRootRootWorks) {
  const SimTime end = run_spmd(
      topo::GridSpec::rennes_nancy(4), 8,
      profile_with(force(mpi::CollOp::kBcast, "binomial")),
      [](Rank& r) -> Task<void> { co_await bcast(r, 5, 64e3); });
  EXPECT_GT(end, 0);
}

TEST(Collectives, HierarchicalBcastBeatsRingOnTheGrid) {
  // The paper's FT mechanism: a rank-ordered ring allgather pays the WAN
  // latency on ~every step; the hierarchical algorithm crosses the WAN once
  // with parallel streams.
  // 20 back-to-back 128 kB broadcasts (FT does hundreds): TCP channels are
  // warm after the first few, isolating the algorithmic difference.
  auto time_bcast = [](const char* algo) {
    return run_spmd(topo::GridSpec::rennes_nancy(8), 16,
                    profile_with(force(mpi::CollOp::kBcast, algo)),
                    [](Rank& r) { return repeated_bcast_body(r, 128e3, 20); });
  };
  const SimTime ring = time_bcast("scatter-ring");
  const SimTime hier = time_bcast("hierarchical");
  const SimTime binom = time_bcast("binomial");
  EXPECT_LT(hier, ring / 3);   // order-of-magnitude win over the WAN ring
  EXPECT_LT(hier, binom);      // parallel WAN streams also beat the tree
}

TEST(Collectives, HierarchicalBcastOnSingleClusterStillWorks) {
  const SimTime end = run_spmd(
      topo::GridSpec::single_cluster(16), 16,
      profile_with(force(mpi::CollOp::kBcast, "hierarchical")),
      [](Rank& r) -> Task<void> { co_await bcast(r, 0, 1e6); });
  EXPECT_GT(end, 0);
  EXPECT_LT(end, 1_s);
}

class AllreduceAlgos : public ::testing::TestWithParam<const char*> {};

TEST_P(AllreduceAlgos, CompletesOnPow2AndNonPow2) {
  for (int nranks : {4, 6, 16}) {
    const SimTime end = run_spmd(
        topo::GridSpec::rennes_nancy(8), nranks,
        profile_with(force(mpi::CollOp::kAllreduce, GetParam())),
        [](Rank& r) -> Task<void> { co_await allreduce(r, 64e3); });
    EXPECT_GT(end, 0) << "nranks=" << nranks;
  }
}

INSTANTIATE_TEST_SUITE_P(All, AllreduceAlgos,
                         ::testing::Values("recursive-doubling",
                                           "rabenseifner", "hierarchical"));

TEST(Collectives, HierarchicalAllreduceReducesWanTraffic) {
  // The hierarchical algorithm's benefit with two sites is WAN traffic: only
  // the two site leaders exchange payloads across the WAN (2 messages),
  // versus 16 full-size pair exchanges in recursive doubling.
  auto wan_bytes = [](const char* algo) {
    Simulation sim;
    topo::Grid grid(sim, topo::GridSpec::rennes_nancy(8));
    mpi::ImplProfile p = profile_with(force(mpi::CollOp::kAllreduce, algo));
    mpi::Job job(grid, mpi::block_placement(grid, 16), p,
                 tcp::KernelTunables::grid_tuned());
    job.launch(
        [](Rank& r) { return repeated_allreduce_body(r, 64e3, 5); });
    sim.run();
    const net::LinkId wan = grid.network().find_link("rennes-nancy");
    const net::LinkId rev = grid.network().find_link("rennes-nancy.rev");
    return grid.network().link(wan).bytes_carried +
           grid.network().link(rev).bytes_carried;
  };
  const double rd = wan_bytes("recursive-doubling");
  const double hier = wan_bytes("hierarchical");
  EXPECT_LT(hier, rd / 4);
  EXPECT_GT(hier, 0);
}

TEST(Collectives, ReduceGatherScatterAllgatherComplete) {
  const SimTime end = run_spmd(
      topo::GridSpec::rennes_nancy(4), 8, profile_with({}),
      [](Rank& r) -> Task<void> {
        co_await reduce(r, 0, 32e3);
        co_await gather(r, 0, 8e3);
        co_await scatter(r, 0, 8e3);
        co_await allgather(r, 8e3);
      });
  EXPECT_GT(end, 0);
}

TEST(Collectives, GatherMovesAggregateVolume) {
  mpi::TrafficStats stats;
  run_spmd(topo::GridSpec::single_cluster(8), 8, profile_with({}),
           [](Rank& r) -> Task<void> { co_await gather(r, 0, 1000); },
           &stats);
  // Binomial gather total traffic: each non-root block travels >= once.
  EXPECT_GE(stats.collective_bytes, 7 * 1000.0);
  // And no more than log2(p) hops per block.
  EXPECT_LE(stats.collective_bytes, 7 * 1000.0 * 3);
}

TEST(Collectives, AlltoallExchangesAllPairs) {
  mpi::TrafficStats stats;
  run_spmd(topo::GridSpec::single_cluster(8), 8, profile_with({}),
           [](Rank& r) -> Task<void> { co_await alltoall(r, 500); }, &stats);
  // 8 ranks x 7 peers x 500 B (self excluded, zero-byte fillers allowed).
  EXPECT_NEAR(stats.collective_bytes, 8 * 7 * 500.0, 1.0);
}

TEST(Collectives, AlltoallvHandlesAsymmetricSizes) {
  const SimTime end = run_spmd(
      topo::GridSpec::rennes_nancy(2), 4, profile_with({}),
      [](Rank& r) -> Task<void> {
        std::vector<double> sizes(4, 0.0);
        // Rank i sends i kB to every other rank.
        for (int d = 0; d < 4; ++d)
          if (d != r.rank()) sizes[static_cast<size_t>(d)] = r.rank() * 1e3;
        co_await alltoallv(r, sizes);
      });
  EXPECT_GT(end, 0);
}

Task<void> bad_alltoallv_body(Rank& r, bool* threw) {
  const std::vector<double> too_short(1, 1.0);
  try {
    co_await alltoallv(r, too_short);
  } catch (const std::invalid_argument&) {
    *threw = true;
  }
}

TEST(Collectives, AlltoallvValidatesSizes) {
  bool threw = false;
  run_spmd(topo::GridSpec::single_cluster(2), 2, profile_with({}),
           [&threw](Rank& r) { return bad_alltoallv_body(r, &threw); });
  EXPECT_TRUE(threw);
}

TEST(Collectives, CollectivesComposeInSequence) {
  // A mini NPB-like iteration: allreduce + bcast + barrier, several times.
  const SimTime end = run_spmd(
      topo::GridSpec::rennes_nancy(8), 16, profile_with({}),
      [](Rank& r) -> Task<void> {
        for (int i = 0; i < 5; ++i) {
          co_await allreduce(r, 8);
          co_await bcast(r, 0, 4e3);
          co_await barrier(r);
        }
      });
  EXPECT_GT(end, 5 * 11600_us);  // each iteration crosses the WAN
}

}  // namespace
}  // namespace gridsim::coll
