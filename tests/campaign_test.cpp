// Campaign engine tests: the parallel runner must be indistinguishable from
// the serial one (per-scenario trace digests, registration-order
// aggregation), and one misbehaving scenario must not take the campaign
// down with it.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "harness/campaign.hpp"
#include "harness/scenario.hpp"
#include "scenarios/catalog.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"
#include "simcore/trace.hpp"

namespace gridsim::harness {
namespace {

/// A small but genuinely event-driven workload: `depth` chained timers plus
/// a coroutine ping-pong, so each scenario folds a non-trivial trace into
/// its digest. Runs its own Simulation and reports through ctx.hooks, as
/// the scenario contract requires.
ScenarioResult timer_chain(const ScenarioContext& ctx, int depth) {
  Simulation sim;
  ctx.hooks.on_start(sim);
  std::uint64_t ticks = 0;
  std::function<void(int)> arm = [&](int remaining) {
    if (remaining == 0) return;
    sim.after(static_cast<SimTime>(remaining * 3 + 1), [&, remaining] {
      ++ticks;
      sim.tracer().record(sim.now(), TraceKind::kPhase, "tick",
                          static_cast<double>(remaining));
      arm(remaining - 1);
    });
  };
  arm(depth);
  Mailbox<int> a(sim), b(sim);
  sim.spawn([](Simulation& s, Mailbox<int>& in, Mailbox<int>& out,
               int rounds) -> Task<void> {
    for (int i = 0; i < rounds; ++i) {
      const int v = co_await in.pop();
      co_await s.delay(2);
      out.push(v + 1);
    }
  }(sim, a, b, depth));
  sim.spawn([](Mailbox<int>& in, Mailbox<int>& out, int rounds) -> Task<void> {
    for (int i = 0; i < rounds; ++i) out.push(co_await in.pop());
  }(b, a, depth));
  a.push(0);
  sim.run();
  ctx.hooks.on_finish(sim);
  ScenarioResult res;
  res.add("ticks", static_cast<double>(ticks));
  res.add("final_ns", static_cast<double>(sim.now()), "ns");
  res.note = "chain of depth " + std::to_string(depth) + " completed";
  return res;
}

ScenarioRegistry small_registry() {
  ScenarioRegistry reg;
  for (int depth : {5, 9, 13, 17, 21, 25}) {
    ScenarioSpec spec;
    spec.name = "chain/depth" + std::to_string(depth);
    spec.group = "chain";
    spec.description = "timer chain of depth " + std::to_string(depth);
    spec.expected_metrics = {"ticks", "final_ns"};
    spec.run = [depth](const ScenarioContext& ctx) {
      return timer_chain(ctx, depth);
    };
    reg.add(std::move(spec));
  }
  return reg;
}

TEST(GlobMatch, StarAndQuestionMark) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("fig3*", "fig3/MPICH2"));
  EXPECT_FALSE(glob_match("fig3*", "fig13/MPICH2"));
  EXPECT_TRUE(glob_match("table?", "table4"));
  EXPECT_FALSE(glob_match("table?", "table45"));
  EXPECT_TRUE(glob_match("*MPICH*", "fig3/MPICH2"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
}

TEST(ScenarioRegistry, RejectsNameCollisions) {
  ScenarioRegistry reg;
  ScenarioSpec spec;
  spec.name = "g/a";
  spec.group = "g";
  spec.run = [](const ScenarioContext&) { return ScenarioResult{}; };
  reg.add(spec);
  EXPECT_THROW(reg.add(spec), std::invalid_argument);
  ScenarioSpec unnamed;
  unnamed.run = spec.run;
  EXPECT_THROW(reg.add(unnamed), std::invalid_argument);
  ScenarioSpec no_fn;
  no_fn.name = "g/b";
  EXPECT_THROW(reg.add(no_fn), std::invalid_argument);
}

TEST(ScenarioRegistry, RejectsRendererCollisions) {
  ScenarioRegistry reg;
  reg.set_renderer("g", [](const auto&, const auto&) { return ""; });
  EXPECT_THROW(
      reg.set_renderer("g", [](const auto&, const auto&) { return ""; }),
      std::invalid_argument);
}

TEST(ScenarioRegistry, MatchByNameAndGroup) {
  const auto reg = small_registry();
  EXPECT_EQ(reg.match("*").size(), 6u);
  EXPECT_EQ(reg.match("chain").size(), 6u);  // group name matches too
  EXPECT_EQ(reg.match("chain/depth5").size(), 1u);
  EXPECT_TRUE(reg.match("nope*").empty());
  ASSERT_NE(reg.find("chain/depth13"), nullptr);
  EXPECT_EQ(reg.find("chain/depth999"), nullptr);
}

TEST(Campaign, ParallelDigestsMatchSerial) {
  const auto reg = small_registry();
  CampaignOptions options;
  options.filter = "*";
  options.seed = 42;
  options.jobs = 1;
  const auto serial = run_campaign(reg, options);
  ASSERT_EQ(serial.outcomes.size(), 6u);
  for (const auto& o : serial.outcomes) {
    EXPECT_TRUE(o.ok) << o.name << ": " << o.error;
    EXPECT_GT(o.trace_events, 0u) << o.name;
    EXPECT_NE(o.digest, 0u) << o.name;
  }
  for (int jobs : {2, 8}) {
    options.jobs = jobs;
    const auto parallel = run_campaign(reg, options);
    ASSERT_EQ(parallel.outcomes.size(), serial.outcomes.size());
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
      // Same registration order, same digest, bit for bit.
      EXPECT_EQ(parallel.outcomes[i].name, serial.outcomes[i].name);
      EXPECT_EQ(parallel.outcomes[i].digest, serial.outcomes[i].digest)
          << serial.outcomes[i].name << " at jobs=" << jobs;
      EXPECT_EQ(parallel.outcomes[i].trace_events,
                serial.outcomes[i].trace_events);
      EXPECT_EQ(parallel.outcomes[i].final_time,
                serial.outcomes[i].final_time);
    }
  }
}

TEST(Campaign, SeedChangesDigests) {
  const auto reg = small_registry();
  CampaignOptions options;
  options.jobs = 1;
  options.seed = 1;
  const auto one = run_campaign(reg, options);
  options.seed = 2;
  const auto two = run_campaign(reg, options);
  ASSERT_EQ(one.outcomes.size(), two.outcomes.size());
  EXPECT_NE(one.outcomes[0].digest, two.outcomes[0].digest);
}

TEST(Campaign, FailureIsolation) {
  auto reg = small_registry();
  ScenarioSpec throwing;
  throwing.name = "bad/throws";
  throwing.group = "bad";
  throwing.run = [](const ScenarioContext&) -> ScenarioResult {
    throw std::runtime_error("deliberate failure");
  };
  reg.add(std::move(throwing));
  ScenarioSpec missing;
  missing.name = "bad/schema";
  missing.group = "bad";
  missing.expected_metrics = {"never_produced"};
  missing.run = [](const ScenarioContext& ctx) {
    return timer_chain(ctx, 3);
  };
  reg.add(std::move(missing));

  CampaignOptions options;
  options.jobs = 4;
  const auto report = run_campaign(reg, options);
  ASSERT_EQ(report.outcomes.size(), 8u);
  EXPECT_EQ(report.failures(), 2u);
  // The six healthy scenarios still completed.
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_TRUE(report.outcomes[i].ok) << report.outcomes[i].name;
  EXPECT_FALSE(report.outcomes[6].ok);
  EXPECT_NE(report.outcomes[6].error.find("deliberate failure"),
            std::string::npos);
  EXPECT_FALSE(report.outcomes[7].ok);
  EXPECT_NE(report.outcomes[7].error.find("never_produced"),
            std::string::npos);
}

TEST(Campaign, TimeoutWatchdogDegradesGracefully) {
  auto reg = small_registry();
  ScenarioSpec spinning;
  spinning.name = "bad/spins";
  spinning.group = "bad";
  spinning.run = [](const ScenarioContext& ctx) -> ScenarioResult {
    // A runaway workload: virtual time advances forever, so only the
    // wall-clock watchdog can stop it.
    Simulation sim;
    ctx.hooks.on_start(sim);
    std::function<void()> spin = [&] { sim.after(10, spin); };
    spin();
    sim.run();
    ctx.hooks.on_finish(sim);
    return ScenarioResult{};
  };
  reg.add(std::move(spinning));

  CampaignOptions options;
  options.jobs = 2;
  options.timeout_s = 0.05;
  const auto report = run_campaign(reg, options);
  ASSERT_EQ(report.outcomes.size(), 7u);
  // The six healthy scenarios finish well inside the budget...
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(report.outcomes[i].ok) << report.outcomes[i].name;
    EXPECT_EQ(report.outcomes[i].status, "ok") << report.outcomes[i].name;
  }
  // ...and the runaway one is reported as a timeout, not a crash.
  const auto& timed_out = report.outcomes[6];
  EXPECT_FALSE(timed_out.ok);
  EXPECT_EQ(timed_out.status, "timeout");
  EXPECT_NE(timed_out.error.find("wall-clock budget"), std::string::npos)
      << timed_out.error;
  EXPECT_EQ(report.failures(), 1u);

  // The JSON report carries the status for shell tooling.
  const std::string path = ::testing::TempDir() + "campaign_timeout.json";
  ASSERT_TRUE(write_campaign_json(path, report));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("\"status\": \"timeout\""), std::string::npos);
  EXPECT_NE(doc.find("\"status\": \"ok\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Campaign, StatusFieldIsOkWithoutWatchdog) {
  const auto reg = small_registry();
  CampaignOptions options;
  options.filter = "chain/depth5";
  const auto report = run_campaign(reg, options);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].status, "ok");
}

TEST(Campaign, FilterSelectsSubset) {
  const auto reg = small_registry();
  CampaignOptions options;
  options.filter = "chain/depth1?";
  const auto report = run_campaign(reg, options);
  ASSERT_EQ(report.outcomes.size(), 2u);  // depths 13 and 17
  EXPECT_EQ(report.filter, "chain/depth1?");
}

TEST(Campaign, JsonReportRoundTrip) {
  const auto reg = small_registry();
  CampaignOptions options;
  options.filter = "chain/depth5";
  const auto report = run_campaign(reg, options);
  const std::string path = ::testing::TempDir() + "campaign_test.json";
  ASSERT_TRUE(write_campaign_json(path, report));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("\"gridsim-campaign/1\""), std::string::npos);
  EXPECT_NE(doc.find("\"chain/depth5\""), std::string::npos);
  EXPECT_NE(doc.find("\"digest\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Campaign, RenderGroupFallsBackWithoutRenderer) {
  const auto reg = small_registry();
  CampaignOptions options;
  options.filter = "chain/depth5";
  const auto report = run_campaign(reg, options);
  const std::string text = render_group(reg, "chain", report);
  EXPECT_NE(text.find("chain/depth5"), std::string::npos);
}

// --- Golden-digest determinism for the fault-injection catalog -------------
//
// The robust/* scenarios exercise every injector (loss episodes, jitter,
// flap, cross traffic, packet-level loss). Their digests must be
// byte-identical across job counts and across reruns with the same seed, and
// must move when the seed moves — otherwise "seeded fault schedule" would be
// an empty promise. These run the real paper registry, so they are the
// slowest tests in this binary; the subset is kept to the cheap robust
// scenarios plus a spot-check pair of expensive ones.

TEST(RobustCatalog, DigestsStableAcrossJobsAndReruns) {
  const auto& reg = scenarios::paper_registry();
  CampaignOptions options;
  options.filter = "robust/*";
  options.seed = 42;
  options.jobs = 1;
  const auto serial = run_campaign(reg, options);
  ASSERT_EQ(serial.outcomes.size(), 10u);
  for (const auto& o : serial.outcomes) {
    EXPECT_TRUE(o.ok) << o.name << ": " << o.error;
    EXPECT_GT(o.trace_events, 0u) << o.name;
    EXPECT_NE(o.digest, 0u) << o.name;
  }
  for (int jobs : {2, 8}) {
    options.jobs = jobs;
    const auto parallel = run_campaign(reg, options);
    ASSERT_EQ(parallel.outcomes.size(), serial.outcomes.size());
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
      EXPECT_EQ(parallel.outcomes[i].name, serial.outcomes[i].name);
      EXPECT_EQ(parallel.outcomes[i].digest, serial.outcomes[i].digest)
          << serial.outcomes[i].name << " at jobs=" << jobs;
      EXPECT_EQ(parallel.outcomes[i].trace_events,
                serial.outcomes[i].trace_events)
          << serial.outcomes[i].name << " at jobs=" << jobs;
      EXPECT_EQ(parallel.outcomes[i].final_time, serial.outcomes[i].final_time)
          << serial.outcomes[i].name << " at jobs=" << jobs;
    }
  }
  // Rerun at jobs=1: a second process-local run must reproduce every digest.
  options.jobs = 1;
  const auto rerun = run_campaign(reg, options);
  ASSERT_EQ(rerun.outcomes.size(), serial.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i)
    EXPECT_EQ(rerun.outcomes[i].digest, serial.outcomes[i].digest)
        << serial.outcomes[i].name;
}

TEST(RobustCatalog, SeedMovesFaultSchedules) {
  const auto& reg = scenarios::paper_registry();
  CampaignOptions options;
  // One fluid-level and one packet-level scenario keep this test fast while
  // covering both injection paths.
  options.filter = "robust/flap-pingpong";
  options.jobs = 1;
  options.seed = 42;
  const auto a = run_campaign(reg, options);
  options.seed = 7;
  const auto b = run_campaign(reg, options);
  ASSERT_EQ(a.outcomes.size(), 1u);
  ASSERT_EQ(b.outcomes.size(), 1u);
  EXPECT_TRUE(a.outcomes[0].ok) << a.outcomes[0].error;
  EXPECT_TRUE(b.outcomes[0].ok) << b.outcomes[0].error;
  EXPECT_NE(a.outcomes[0].digest, b.outcomes[0].digest);

  options.filter = "robust/packet-loss";
  options.seed = 42;
  const auto c = run_campaign(reg, options);
  options.seed = 7;
  const auto d = run_campaign(reg, options);
  ASSERT_EQ(c.outcomes.size(), 1u);
  ASSERT_EQ(d.outcomes.size(), 1u);
  EXPECT_TRUE(c.outcomes[0].ok) << c.outcomes[0].error;
  EXPECT_TRUE(d.outcomes[0].ok) << d.outcomes[0].error;
  EXPECT_NE(c.outcomes[0].digest, d.outcomes[0].digest);
}

}  // namespace
}  // namespace gridsim::harness
