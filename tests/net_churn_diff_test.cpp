// Differential property suite for the incremental max-min solver: one
// Simulation drives two Networks — the incremental solver and the retained
// global-resolve oracle — through identical seeded churn schedules (flow
// arrivals/departures, cap changes, link-capacity changes, time advances).
// After every step the two must agree EXACTLY (bitwise doubles, not within
// a tolerance): same active flows, same rates, same remaining bytes, same
// link utilizations. Conservation is checked on every link at every step.
//
// Runs under the "stress" ctest label (64 seeds x ~150 ops); CI runs it
// under ASan+UBSan in the net-smoke job.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "simcore/check.hpp"
#include "simcore/simulation.hpp"
#include "simnet/network.hpp"

namespace gridsim::net {
namespace {

using namespace gridsim::literals;

struct NetUnderTest {
  Network net;
  std::set<FlowId> active;
  explicit NetUnderTest(Simulation& sim, SolverMode mode) : net(sim) {
    net.set_solver_mode(mode);
  }
};

class ChurnDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ChurnDifferential, IncrementalMatchesOracleExactly) {
  const unsigned seed = static_cast<unsigned>(GetParam());
  std::mt19937 rng(seed ^ 0x9e3779b9u);

  Simulation sim;
  NetUnderTest inc(sim, SolverMode::kIncremental);
  NetUnderTest ora(sim, SolverMode::kGlobalOracle);

  // Random dumbbell-ish topology: H hosts behind access links, sharing K
  // backbone links; route(i, j) = {acc_i, bb_(i+j mod K), acc_j}. Both
  // networks get the identical build sequence.
  const int hosts = 4 + static_cast<int>(rng() % 7);
  const int backbones = 1 + static_cast<int>(rng() % 3);
  std::vector<double> acc_caps, bb_caps;
  for (int i = 0; i < hosts; ++i)
    acc_caps.push_back(1e7 * static_cast<double>(1 + rng() % 20));
  for (int k = 0; k < backbones; ++k)
    bb_caps.push_back(2e7 * static_cast<double>(1 + rng() % 50));
  std::vector<LinkId> acc, bb;
  std::vector<HostId> host_ids;
  const auto build = [&](Network& n) {
    std::vector<LinkId> a, b;
    for (int i = 0; i < hosts; ++i) {
      host_ids.push_back(n.add_host("h" + std::to_string(i)));
      a.push_back(n.add_link("acc" + std::to_string(i),
                             acc_caps[static_cast<size_t>(i)], 1_ms, 1e6));
    }
    for (int k = 0; k < backbones; ++k)
      b.push_back(n.add_link("bb" + std::to_string(k),
                             bb_caps[static_cast<size_t>(k)], 5_ms, 1e6));
    for (int i = 0; i < hosts; ++i)
      for (int j = 0; j < hosts; ++j) {
        if (i == j) continue;
        n.add_route(i, j,
                    {a[static_cast<size_t>(i)],
                     b[static_cast<size_t>((i + j) % backbones)],
                     a[static_cast<size_t>(j)]},
                    /*symmetric=*/false);
      }
    acc = a;
    bb = b;
  };
  build(inc.net);
  build(ora.net);

  // Route links by flow id, tracked for the per-link conservation check
  // (identical for both networks by construction).
  std::map<FlowId, std::vector<LinkId>> flow_links;

  const auto check_agreement = [&](const char* what) {
    ASSERT_EQ(inc.active, ora.active) << what << " seed=" << seed;
    for (FlowId f : inc.active) {
      const FlowInfo a = inc.net.flow_info(f);
      const FlowInfo b = ora.net.flow_info(f);
      // Bitwise equality: the incremental solver replicates the oracle's
      // floating-point arithmetic, not just its limit.
      ASSERT_EQ(a.rate, b.rate) << what << " flow=" << f << " seed=" << seed;
      ASSERT_EQ(a.remaining, b.remaining)
          << what << " flow=" << f << " seed=" << seed;
      ASSERT_EQ(a.achievable_rate, b.achievable_rate)
          << what << " flow=" << f << " seed=" << seed;
    }
    for (int l = 0; l < inc.net.link_count(); ++l) {
      const double u_inc = inc.net.link_utilization(l);
      const double u_ora = ora.net.link_utilization(l);
      ASSERT_EQ(u_inc, u_ora) << what << " link=" << l << " seed=" << seed;
      // Conservation, and utilization == sum of the crossing flows' own
      // reported rates (the persistent per-link list regression).
      ASSERT_TRUE(approx_le(u_inc, inc.net.link(l).capacity))
          << what << " link=" << l << " util=" << u_inc
          << " cap=" << inc.net.link(l).capacity << " seed=" << seed;
      double sum = 0;
      for (const auto& [f, links] : flow_links) {
        if (!inc.active.count(f)) continue;
        for (LinkId fl : links)
          if (fl == l) sum += inc.net.flow_info(f).rate;
      }
      // Near, not bitwise: link_utilization adds in per-link list order,
      // this loop in flow-id order, and FP addition is order-sensitive.
      ASSERT_NEAR(u_inc, sum, 1e-9 * std::max(1.0, sum))
          << what << " link=" << l << " seed=" << seed;
    }
  };

  const auto pick_active = [&]() -> FlowId {
    auto it = inc.active.begin();
    std::advance(it, static_cast<long>(rng() % inc.active.size()));
    return *it;
  };

  const int ops = 150;
  for (int op = 0; op < ops; ++op) {
    // Advance virtual time (0 keeps same-timestamp mutation bursts in the
    // mix); completion events for both networks fire inside run_until.
    if (rng() % 4 != 0)
      sim.run_until(sim.now() + static_cast<SimTime>(rng() % 20000) * 1_us);

    const auto kind = static_cast<unsigned>(rng() % 100);
    if (kind < 45 || inc.active.empty()) {
      // Start the same flow on both networks.
      const int i = static_cast<int>(rng() % static_cast<unsigned>(hosts));
      int j = static_cast<int>(rng() % static_cast<unsigned>(hosts));
      if (j == i) j = (j + 1) % hosts;
      std::uniform_real_distribution<double> mag(3.0, 8.0);
      const double bytes = std::pow(10.0, mag(rng));
      const double cap =
          (rng() % 2 == 0) ? kUnlimitedRate : 1e6 * static_cast<double>(1 + rng() % 1000);
      const FlowId fi = inc.net.start_flow(i, j, bytes, cap, nullptr);
      const FlowId fo = ora.net.start_flow(i, j, bytes, cap, nullptr);
      ASSERT_EQ(fi, fo);
      inc.active.insert(fi);
      ora.active.insert(fo);
      flow_links[fi] = inc.net.route(i, j).links;
    } else if (kind < 70) {
      const FlowId f = pick_active();
      const double cap =
          (rng() % 4 == 0) ? kUnlimitedRate : 1e6 * static_cast<double>(1 + rng() % 1000);
      inc.net.set_rate_cap(f, cap);
      ora.net.set_rate_cap(f, cap);
    } else if (kind < 85) {
      const FlowId f = pick_active();
      inc.net.cancel_flow(f);
      ora.net.cancel_flow(f);
      inc.active.erase(f);
      ora.active.erase(f);
    } else {
      const bool backbone = rng() % 2 == 0;
      const LinkId l = backbone
                           ? bb[rng() % bb.size()]
                           : acc[rng() % acc.size()];
      std::uniform_real_distribution<double> scale(0.3, 2.0);
      const double cap = inc.net.link(l).capacity * scale(rng);
      inc.net.set_link_capacity(l, cap);
      ora.net.set_link_capacity(l, cap);
    }

    // Completion callbacks are not wired into the active sets (the nets
    // must stay in lockstep even through completions), so sync via
    // flow_active — asserting both networks finished the same flows.
    for (auto it = inc.active.begin(); it != inc.active.end();) {
      const bool ai = inc.net.flow_active(*it);
      const bool ao = ora.net.flow_active(*it);
      ASSERT_EQ(ai, ao) << "completion drift, flow=" << *it
                        << " seed=" << seed;
      if (!ai) {
        ora.active.erase(*it);
        it = inc.active.erase(it);
      } else {
        ++it;
      }
    }

    check_agreement("post-op");
  }

  // Drain: cancel everything and verify both end empty and idle.
  for (FlowId f : std::vector<FlowId>(inc.active.begin(), inc.active.end())) {
    inc.net.cancel_flow(f);
    ora.net.cancel_flow(f);
    inc.active.erase(f);
    ora.active.erase(f);
  }
  check_agreement("post-drain");
  EXPECT_EQ(inc.net.active_flow_count(), 0);
  EXPECT_EQ(ora.net.active_flow_count(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnDifferential, ::testing::Range(0, 64));

}  // namespace
}  // namespace gridsim::net
