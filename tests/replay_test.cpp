// Tests for communication-trace record & replay.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/npb_campaign.hpp"
#include "harness/replay.hpp"
#include "profiles/profiles.hpp"

namespace gridsim::harness {
namespace {

profiles::ExperimentConfig cfg(profiles::TuningLevel level =
                                   profiles::TuningLevel::kTcpTuned) {
  return profiles::experiment(profiles::mpich2()).tuning(level);
}

TEST(Replay, RecordCapturesEveryPayload) {
  const auto spec = topo::GridSpec::single_cluster(4);
  const auto trace =
      record_npb(spec, 4, npb::Kernel::kCG, npb::Class::kS, cfg());
  const auto direct = run_npb(spec, 4, npb::Kernel::kCG, npb::Class::kS,
                              cfg());
  EXPECT_EQ(trace.nranks, 4);
  EXPECT_EQ(trace.messages.size(),
            direct.traffic.p2p_messages + direct.traffic.collective_messages);
  // Timestamps are sorted.
  for (size_t i = 1; i < trace.messages.size(); ++i)
    EXPECT_GE(trace.messages[i].at, trace.messages[i - 1].at);
}

TEST(Replay, SaveLoadRoundTrip) {
  const auto trace = record_npb(topo::GridSpec::single_cluster(4), 4,
                                npb::Kernel::kMG, npb::Class::kS, cfg());
  std::stringstream buffer;
  trace.save(buffer);
  const auto loaded = CommTrace::load(buffer);
  ASSERT_EQ(loaded.messages.size(), trace.messages.size());
  EXPECT_EQ(loaded.nranks, trace.nranks);
  for (size_t i = 0; i < trace.messages.size(); ++i) {
    EXPECT_EQ(loaded.messages[i].at, trace.messages[i].at);
    EXPECT_EQ(loaded.messages[i].src, trace.messages[i].src);
    EXPECT_EQ(loaded.messages[i].dst, trace.messages[i].dst);
    EXPECT_DOUBLE_EQ(loaded.messages[i].bytes, trace.messages[i].bytes);
    EXPECT_EQ(loaded.messages[i].tag, trace.messages[i].tag);
  }
}

TEST(Replay, LoadRejectsGarbage) {
  std::stringstream s1("not-a-trace 9");
  EXPECT_THROW(CommTrace::load(s1), std::invalid_argument);
  std::stringstream s2("gridsim-trace 1 4 100\n1 2 3");  // truncated
  EXPECT_THROW(CommTrace::load(s2), std::invalid_argument);
}

TEST(Replay, ReplayOnSameConfigApproximatesOriginal) {
  const auto spec = topo::GridSpec::single_cluster(4);
  const auto trace =
      record_npb(spec, 4, npb::Kernel::kLU, npb::Class::kS, cfg());
  const auto direct =
      run_npb(spec, 4, npb::Kernel::kLU, npb::Class::kS, cfg());
  const auto replayed = replay_trace(trace, spec, cfg());
  // Time-independent replay reproduces the makespan within 25% (dependency
  // structure is approximated by recorded send gaps).
  const double ratio =
      to_seconds(replayed.makespan) / to_seconds(direct.makespan);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.3);
}

TEST(Replay, ReplayOnGridSlowerThanCluster) {
  const auto cluster = topo::GridSpec::single_cluster(4);
  const auto grid = topo::GridSpec::rennes_nancy(2);
  const auto trace =
      record_npb(cluster, 4, npb::Kernel::kCG, npb::Class::kS, cfg());
  const auto on_cluster = replay_trace(trace, cluster, cfg());
  const auto on_grid = replay_trace(trace, grid, cfg());
  EXPECT_GT(on_grid.makespan, on_cluster.makespan);
}

TEST(Replay, EmptyTraceRejected) {
  CommTrace t;
  EXPECT_THROW(replay_trace(t, topo::GridSpec::single_cluster(2), cfg()),
               std::invalid_argument);
}

TEST(Replay, OutOfRangeRankRejected) {
  CommTrace t;
  t.nranks = 2;
  t.messages.push_back(RecordedMessage{0, 0, 5, 100, 0});
  EXPECT_THROW(replay_trace(t, topo::GridSpec::single_cluster(2), cfg()),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridsim::harness
