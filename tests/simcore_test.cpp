// Unit tests for the discrete-event engine, coroutine tasks and sync
// primitives.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace gridsim {
namespace {

using namespace gridsim::literals;

TEST(Time, Conversions) {
  EXPECT_EQ(microseconds(3), 3000);
  EXPECT_EQ(milliseconds(2), 2'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(from_seconds(1.0), seconds(1));
  EXPECT_EQ(from_seconds(0.0), 0);
  // Rounds up: a fluid transfer never finishes early.
  EXPECT_EQ(from_seconds(1e-9 * 1.5), 2);
  EXPECT_DOUBLE_EQ(to_seconds(1'500'000'000), 1.5);
}

TEST(Time, Literals) {
  EXPECT_EQ(5_us, microseconds(5));
  EXPECT_EQ(11_ms, milliseconds(11));
  EXPECT_EQ(2_s, seconds(2));
}

TEST(Time, Format) {
  EXPECT_EQ(format_time(5), "5 ns");
  EXPECT_EQ(format_time(kSimTimeNever), "never");
  EXPECT_NE(format_time(milliseconds(100)).find("ms"), std::string::npos);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimestampsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) q.schedule(42, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.run_next();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTime) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kSimTimeNever);
  q.schedule(7, [] {});
  EXPECT_EQ(q.next_time(), 7);
}

TEST(Simulation, NowAdvancesWithEvents) {
  Simulation sim;
  SimTime seen = -1;
  sim.at(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.at(100, [] {});
  sim.run();
  EXPECT_THROW(sim.at(50, [] {}), std::logic_error);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(20, [&] { ++fired; });
  sim.at(30, [&] { ++fired; });
  EXPECT_TRUE(sim.run_until(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_FALSE(sim.run_until(100));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  std::vector<SimTime> times;
  sim.at(10, [&] {
    times.push_back(sim.now());
    sim.after(15, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 25}));
}

Task<void> record_delays(Simulation& sim, std::vector<SimTime>& out) {
  out.push_back(sim.now());
  co_await sim.delay(100);
  out.push_back(sim.now());
  co_await sim.delay(50);
  out.push_back(sim.now());
}

TEST(Coroutine, DelayAdvancesVirtualTime) {
  Simulation sim;
  std::vector<SimTime> times;
  sim.spawn(record_delays(sim, times));
  EXPECT_EQ(sim.live_processes(), 1);
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{0, 100, 150}));
  EXPECT_EQ(sim.live_processes(), 0);
}

Task<int> add_later(Simulation& sim, int a, int b) {
  co_await sim.delay(10);
  co_return a + b;
}

Task<void> nested_caller(Simulation& sim, int& out) {
  const int x = co_await add_later(sim, 2, 3);
  const int y = co_await add_later(sim, x, 10);
  out = y;
}

TEST(Coroutine, NestedTasksReturnValues) {
  Simulation sim;
  int out = 0;
  sim.spawn(nested_caller(sim, out));
  sim.run();
  EXPECT_EQ(out, 15);
  EXPECT_EQ(sim.now(), 20);
}

Task<int> throws_after_delay(Simulation& sim) {
  co_await sim.delay(5);
  throw std::runtime_error("boom");
}

Task<void> catches(Simulation& sim, bool& caught) {
  try {
    (void)co_await throws_after_delay(sim);
  } catch (const std::runtime_error& e) {
    caught = std::string(e.what()) == "boom";
  }
}

TEST(Coroutine, ExceptionsPropagateToAwaiter) {
  Simulation sim;
  bool caught = false;
  sim.spawn(catches(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Coroutine, ManyProcessesInterleaveDeterministically) {
  Simulation sim;
  std::vector<int> order;
  auto worker = [](Simulation& s, std::vector<int>& ord, int id,
                   SimTime step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(step);
      ord.push_back(id);
    }
  };
  sim.spawn(worker(sim, order, 0, 10));
  sim.spawn(worker(sim, order, 1, 10));
  sim.run();
  // Same timestamps resolve in spawn order every iteration.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

Task<void> wait_trigger(Trigger& t, Simulation& sim, std::vector<SimTime>& out) {
  co_await t.wait();
  out.push_back(sim.now());
}

TEST(Sync, TriggerReleasesAllWaiters) {
  Simulation sim;
  Trigger t(sim);
  std::vector<SimTime> woke;
  sim.spawn(wait_trigger(t, sim, woke));
  sim.spawn(wait_trigger(t, sim, woke));
  sim.at(500, [&] { t.fire(); });
  sim.run();
  EXPECT_EQ(woke, (std::vector<SimTime>{500, 500}));
  EXPECT_TRUE(t.fired());
}

TEST(Sync, TriggerAlreadyFiredCompletesImmediately) {
  Simulation sim;
  Trigger t(sim);
  t.fire();
  std::vector<SimTime> woke;
  sim.at(100, [&] { sim.spawn(wait_trigger(t, sim, woke)); });
  sim.run();
  EXPECT_EQ(woke, (std::vector<SimTime>{100}));
}

TEST(Sync, OneShotDeliversValueSetBeforeWait) {
  Simulation sim;
  OneShot<int> slot(sim);
  slot.set(41);
  int got = 0;
  auto reader = [](OneShot<int>& s, int& g) -> Task<void> {
    g = co_await s.wait();
  };
  sim.spawn(reader(slot, got));
  sim.run();
  EXPECT_EQ(got, 41);
}

TEST(Sync, OneShotDeliversValueSetAfterWait) {
  Simulation sim;
  OneShot<std::string> slot(sim);
  std::string got;
  auto reader = [](OneShot<std::string>& s, std::string& g) -> Task<void> {
    g = co_await s.wait();
  };
  sim.spawn(reader(slot, got));
  sim.at(300, [&] { slot.set("hello"); });
  sim.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(sim.now(), 300);
}

TEST(Sync, MailboxBuffersWhenNoWaiter) {
  Simulation sim;
  Mailbox<int> box(sim);
  box.push(1);
  box.push(2);
  std::vector<int> got;
  auto reader = [](Mailbox<int>& b, std::vector<int>& g) -> Task<void> {
    g.push_back(co_await b.pop());
    g.push_back(co_await b.pop());
  };
  sim.spawn(reader(box, got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Sync, MailboxServesWaitersFifo) {
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<std::pair<int, int>> got;  // (reader id, value)
  auto reader = [](Mailbox<int>& b, std::vector<std::pair<int, int>>& g,
                   int id) -> Task<void> {
    const int v = co_await b.pop();
    g.emplace_back(id, v);
  };
  sim.spawn(reader(box, got, 0));
  sim.spawn(reader(box, got, 1));
  sim.at(10, [&] {
    box.push(100);
    box.push(200);
  });
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::make_pair(0, 100));
  EXPECT_EQ(got[1], std::make_pair(1, 200));
}

TEST(Sync, MailboxPushedItemIsReservedForWokenWaiter) {
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<std::pair<int, int>> got;
  auto reader = [](Mailbox<int>& b, std::vector<std::pair<int, int>>& g,
                   int id) -> Task<void> {
    const int v = co_await b.pop();
    g.emplace_back(id, v);
  };
  sim.spawn(reader(box, got, 0));  // blocks first
  sim.at(10, [&] {
    box.push(7);
    // Reader 1 starts at the same timestamp, after the push: it must not
    // steal the item already assigned to reader 0.
    sim.spawn(reader(box, got, 1));
    box.push(8);
  });
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::make_pair(0, 7));
  EXPECT_EQ(got[1], std::make_pair(1, 8));
}

TEST(Sync, SemaphoreLimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 2);
  int active = 0;
  int peak = 0;
  auto worker = [](Simulation& s, Semaphore& sm, int& act,
                   int& pk) -> Task<void> {
    co_await sm.acquire();
    ++act;
    pk = std::max(pk, act);
    co_await s.delay(100);
    --act;
    sm.release();
  };
  for (int i = 0; i < 6; ++i) sim.spawn(worker(sim, sem, active, peak));
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sim.now(), 300);  // three waves of two
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitStreamsDiffer) {
  Rng a(1);
  Rng s1 = a.split(1);
  Rng s2 = a.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (s1.next() == s2.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(7);
  bool seen[11] = {};
  for (int i = 0; i < 1000; ++i) seen[r.uniform_int(0, 10)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng r(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace gridsim
