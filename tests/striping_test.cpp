// Tests for MPICH-G2-style parallel WAN streams: throughput effect, MPI
// ordering preservation under striping, and profile wiring.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/mpi.hpp"
#include "profiles/profiles.hpp"
#include "simcore/simulation.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::mpi {
namespace {

using namespace gridsim::literals;

struct G2Fixture {
  Simulation sim;
  topo::Grid grid;
  Job job;
  explicit G2Fixture(profiles::TuningLevel level = profiles::TuningLevel::kDefault,
                     ImplProfile profile = profiles::mpich_g2())
      : grid(sim, topo::GridSpec::rennes_nancy(1)),
        job(grid, block_placement(grid, 2),
            profiles::configure(profile, level).profile,
            profiles::configure(profile, level).kernel) {}
};

Task<void> send_one(Rank& r, int dst, double bytes, int tag) {
  co_await r.send(dst, bytes, tag);
}

Task<void> recv_n(Rank& r, int src, int n, std::vector<RecvInfo>* out,
                  SimTime* done) {
  for (int i = 0; i < n; ++i) out->push_back(co_await r.recv(src, kAnyTag));
  *done = r.sim().now();
}

SimTime one_way_time(const ImplProfile& impl, double bytes) {
  G2Fixture f(profiles::TuningLevel::kDefault, impl);
  std::vector<RecvInfo> got;
  SimTime done = -1;
  f.sim.spawn(send_one(f.job.rank(0), 1, bytes, 0));
  f.sim.spawn(recv_n(f.job.rank(1), 0, 1, &got, &done));
  f.sim.run();
  return done;
}

TEST(Striping, ParallelStreamsBeatSingleConnectionAtDefaults) {
  // 16 MB across the WAN with default (175 kB-capped) kernels: four
  // streams should be ~4x faster than MPICH2's single connection.
  const SimTime g2 = one_way_time(profiles::mpich_g2(), 16e6);
  ImplProfile single = profiles::mpich_g2();
  single.wan_parallel_streams = 1;
  single.eager_threshold = 1e12;  // same protocol, one connection
  const SimTime one = one_way_time(single, 16e6);
  EXPECT_LT(to_seconds(g2) * 2.5, to_seconds(one));
}

TEST(Striping, SmallMessagesAreNotStriped) {
  // Below the stripe threshold the behaviour must match a single stream.
  const SimTime g2 = one_way_time(profiles::mpich_g2(), 64e3);
  ImplProfile single = profiles::mpich_g2();
  single.wan_parallel_streams = 1;
  const SimTime one = one_way_time(single, 64e3);
  EXPECT_EQ(g2, one);
}

TEST(Striping, IntraClusterMessagesAreNotStriped) {
  // Striping only applies on WAN paths (rtt >= 1 ms).
  Simulation sim;
  topo::Grid grid(sim, topo::GridSpec::single_cluster(2));
  const profiles::ExperimentConfig cfg =
      profiles::experiment(profiles::mpich_g2())
          .tuning(profiles::TuningLevel::kDefault);
  Job job(grid, block_placement(grid, 2), cfg.profile, cfg.kernel);
  std::vector<RecvInfo> got;
  SimTime done = -1;
  sim.spawn(send_one(job.rank(0), 1, 16e6, 0));
  sim.spawn(recv_n(job.rank(1), 0, 1, &got, &done));
  sim.run();
  // One stream 0 channel only: stream 1 channel must not exist (the lazy
  // map would have created it on use). Indirect check: delivery time equals
  // single-connection time on the LAN where buffers dwarf the BDP.
  EXPECT_GT(done, 0);
  EXPECT_LT(to_seconds(done), 0.25);  // ~16 MB at ~941 Mbps
}

TEST(Striping, OrderingPreservedAcrossMixedSizes) {
  // A large striped message followed by small eager messages on the same
  // (src, tag): MPI's non-overtaking order must hold even though the small
  // messages physically arrive first.
  G2Fixture f;
  std::vector<RecvInfo> got;
  SimTime done = -1;
  auto sender = [](Rank& r) -> Task<void> {
    Request big = r.isend(1, 8e6, 5);   // striped, slow
    Request s1 = r.isend(1, 100, 5);    // eager, fast
    Request s2 = r.isend(1, 200, 5);
    co_await r.wait(big);
    co_await r.wait(s1);
    co_await r.wait(s2);
  };
  f.sim.spawn(sender(f.job.rank(0)));
  f.sim.spawn(recv_n(f.job.rank(1), 0, 3, &got, &done));
  f.sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_DOUBLE_EQ(got[0].bytes, 8e6);  // sent first, must match first
  EXPECT_DOUBLE_EQ(got[1].bytes, 100);
  EXPECT_DOUBLE_EQ(got[2].bytes, 200);
}

TEST(Striping, ManyStripedMessagesFifo) {
  G2Fixture f;
  std::vector<RecvInfo> got;
  SimTime done = -1;
  auto sender = [](Rank& r) -> Task<void> {
    for (int i = 1; i <= 5; ++i) co_await r.send(1, 1e6 * i, 9);
  };
  f.sim.spawn(sender(f.job.rank(0)));
  f.sim.spawn(recv_n(f.job.rank(1), 0, 5, &got, &done));
  f.sim.run();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(got[static_cast<size_t>(i)].bytes, 1e6 * (i + 1));
}

TEST(Striping, ProfileWiring) {
  const auto p = profiles::mpich_g2();
  EXPECT_EQ(p.name, "MPICH-G2");
  EXPECT_EQ(p.wan_parallel_streams, 4);
  EXPECT_TRUE(p.collectives.topology_aware);
  // Not one of the paper's four evaluated implementations.
  for (const auto& q : profiles::all_implementations())
    EXPECT_NE(q.name, "MPICH-G2");
}

}  // namespace
}  // namespace gridsim::mpi
