// Additional MPI engine tests: sendrecv, wait_any/test, eager threshold
// boundary behaviour, wildcard combinations and request edge cases.
#include <gtest/gtest.h>

#include "mpi/mpi.hpp"
#include "profiles/profiles.hpp"
#include "simcore/simulation.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::mpi {
namespace {

using namespace gridsim::literals;

struct Fixture {
  Simulation sim;
  topo::Grid grid;
  Job job;
  explicit Fixture(ImplProfile p = profiles::mpich2())
      : grid(sim, topo::GridSpec::rennes_nancy(2)),
        job(grid, block_placement(grid, 4), std::move(p),
            tcp::KernelTunables::grid_tuned()) {}
};

TEST(MpiExtra, SendrecvExchanges) {
  Fixture f;
  RecvInfo got0, got1;
  auto body = [](Rank& r, int peer, RecvInfo* out) -> Task<void> {
    *out = co_await r.sendrecv(peer, 1000 + r.rank(), 7, peer, 7);
  };
  f.sim.spawn(body(f.job.rank(0), 1, &got0));
  f.sim.spawn(body(f.job.rank(1), 0, &got1));
  f.sim.run();
  EXPECT_DOUBLE_EQ(got0.bytes, 1001);  // from rank 1
  EXPECT_DOUBLE_EQ(got1.bytes, 1000);  // from rank 0
}

TEST(MpiExtra, WaitAnyReturnsFirstCompletion) {
  Fixture f;
  int first = -1;
  f.sim.spawn([](Rank& r, int* out) -> Task<void> {
    // Request 0: from the WAN peer (slow); request 1: local (fast).
    Request slow = r.irecv(2, 1);
    Request fast = r.irecv(1, 1);
    std::vector<Request> reqs{slow, fast};
    *out = co_await r.wait_any(reqs);
  }(f.job.rank(0), &first));
  f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(0, 10, 1); }(
      f.job.rank(1)));
  f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(0, 10, 1); }(
      f.job.rank(2)));
  f.sim.run();
  EXPECT_EQ(first, 1);  // the local sender arrives first
}

TEST(MpiExtra, WaitAnyFastPathForCompletedRequest) {
  Fixture f;
  int idx = -1;
  f.sim.spawn([](Rank& r, int* out) -> Task<void> {
    Request s = r.isend(1, 100, 0);
    co_await r.sim().delay(10_ms);  // let it complete
    EXPECT_TRUE(Rank::test(s));
    std::vector<Request> reqs{s};
    *out = co_await r.wait_any(reqs);
  }(f.job.rank(0), &idx));
  f.sim.spawn([](Rank& r) -> Task<void> { (void)co_await r.recv(0, 0); }(
      f.job.rank(1)));
  f.sim.run();
  EXPECT_EQ(idx, 0);
}

TEST(MpiExtra, WaitAnyEmptyThrows) {
  Fixture f;
  bool threw = false;
  f.sim.spawn([](Rank& r, bool* out) -> Task<void> {
    try {
      (void)co_await r.wait_any({});
    } catch (const std::invalid_argument&) {
      *out = true;
    }
  }(f.job.rank(0), &threw));
  f.sim.run();
  EXPECT_TRUE(threw);
}

TEST(MpiExtra, TestReportsPendingThenComplete) {
  Fixture f;
  bool pending_seen = false, complete_seen = false;
  f.sim.spawn([](Rank& r, bool* pending, bool* complete) -> Task<void> {
    Request rq = r.irecv(2, 3);
    *pending = !Rank::test(rq);
    (void)co_await r.wait(rq);
    *complete = Rank::test(rq);
  }(f.job.rank(0), &pending_seen, &complete_seen));
  f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(0, 10, 3); }(
      f.job.rank(2)));
  f.sim.run();
  EXPECT_TRUE(pending_seen);
  EXPECT_TRUE(complete_seen);
}

// --- eager threshold boundary ------------------------------------------

class ThresholdBoundary : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdBoundary, ExactThresholdIsEagerAboveIsRendezvous) {
  const double threshold = GetParam();
  ImplProfile p = profiles::mpich2();
  p.eager_threshold = threshold;
  auto one_way = [&p](double bytes) {
    Simulation sim;
    topo::Grid grid(sim, topo::GridSpec::rennes_nancy(1));
    Job job(grid, block_placement(grid, 2), p,
            tcp::KernelTunables::grid_tuned());
    SimTime done = -1;
    sim.spawn([](Rank& r, double b) -> Task<void> {
      co_await r.send(1, b, 0);
    }(job.rank(0), bytes));
    sim.spawn([](Rank& r, SimTime* t) -> Task<void> {
      (void)co_await r.recv(0, 0);
      *t = r.sim().now();
    }(job.rank(1), &done));
    sim.run();
    return done;
  };
  const SimTime at = one_way(threshold);        // <=: eager
  const SimTime above = one_way(threshold + 1);  // >: rendez-vous
  // The rendez-vous handshake costs at least one extra WAN RTT.
  EXPECT_GT(above - at, 11_ms);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ThresholdBoundary,
                         ::testing::Values(64e3, 128e3, 256e3, 1024e3));

TEST(MpiExtra, AnyTagMatchesInOrder) {
  Fixture f;
  std::vector<int> tags;
  f.sim.spawn([](Rank& r) -> Task<void> {
    co_await r.send(1, 10, 42);
    co_await r.send(1, 10, 17);
  }(f.job.rank(0)));
  f.sim.spawn([](Rank& r, std::vector<int>* out) -> Task<void> {
    out->push_back((co_await r.recv(0, kAnyTag)).tag);
    out->push_back((co_await r.recv(0, kAnyTag)).tag);
  }(f.job.rank(1), &tags));
  f.sim.run();
  EXPECT_EQ(tags, (std::vector<int>{42, 17}));
}

TEST(MpiExtra, ZeroByteMessage) {
  Fixture f;
  RecvInfo got;
  got.bytes = -1;
  f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(1, 0, 0); }(
      f.job.rank(0)));
  f.sim.spawn([](Rank& r, RecvInfo* out) -> Task<void> {
    *out = co_await r.recv(0, 0);
  }(f.job.rank(1), &got));
  f.sim.run();
  EXPECT_DOUBLE_EQ(got.bytes, 0);
}

TEST(MpiExtra, SendToInvalidRankThrows) {
  Fixture f;
  bool threw = false;
  f.sim.spawn([](Rank& r, bool* out) -> Task<void> {
    try {
      co_await r.send(99, 10, 0);
    } catch (const std::out_of_range&) {
      *out = true;
    }
  }(f.job.rank(0), &threw));
  f.sim.run();
  EXPECT_TRUE(threw);
}

TEST(MpiExtra, ManyOutstandingIrecvsFillFifo) {
  Fixture f;
  std::vector<double> sizes;
  f.sim.spawn([](Rank& r, std::vector<double>* out) -> Task<void> {
    std::vector<Request> reqs;
    for (int i = 0; i < 20; ++i) reqs.push_back(r.irecv(1, 6));
    for (auto& rq : reqs) out->push_back((co_await r.wait(rq)).bytes);
  }(f.job.rank(0), &sizes));
  f.sim.spawn([](Rank& r) -> Task<void> {
    for (int i = 0; i < 20; ++i) co_await r.send(0, 100 + i, 6);
  }(f.job.rank(1)));
  f.sim.run();
  ASSERT_EQ(sizes.size(), 20u);
  for (int i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(sizes[static_cast<size_t>(i)], 100 + i);
}

TEST(MpiExtra, WanExtraOverheadAppliedOnWanOnly) {
  ImplProfile p = profiles::mpich2();
  p.wan_extra_overhead = microseconds(100);
  Fixture base;
  Fixture gw(p);
  auto one_way = [](Fixture& f, int dst) {
    SimTime done = -1;
    f.sim.spawn([](Rank& r, int d) -> Task<void> { co_await r.send(d, 1, 0); }(
        f.job.rank(0), dst));
    f.sim.spawn([](Rank& r, SimTime* t) -> Task<void> {
      (void)co_await r.recv(0, 0);
      *t = r.sim().now();
    }(f.job.rank(dst), &done));
    f.sim.run();
    return done;
  };
  // WAN peer: rank 2 (other site). +100 us per side = +200 us one way.
  const SimTime wan_base = one_way(base, 2);
  const SimTime wan_gw = one_way(gw, 2);
  EXPECT_NEAR(static_cast<double>(wan_gw - wan_base), 200e3, 2e3);
}

}  // namespace
}  // namespace gridsim::mpi
