// Unit and property tests for the fluid network model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simcore/simulation.hpp"
#include "simnet/network.hpp"

namespace gridsim::net {
namespace {

using namespace gridsim::literals;

struct TwoHosts {
  Simulation sim;
  Network network{sim};
  HostId a, b;
  LinkId ab;
  TwoHosts(double capacity = 1e9, SimTime latency = 1_ms,
           double queue = 1e6) {
    a = network.add_host("a");
    b = network.add_host("b");
    ab = network.add_link("a-b", capacity, latency, queue);
    network.add_route(a, b, {ab});
  }
};

TEST(Network, TopologyAccessors) {
  TwoHosts t(2e9, 3_ms, 5e5);
  EXPECT_EQ(t.network.host_count(), 2);
  EXPECT_EQ(t.network.host(t.a).name, "a");
  EXPECT_TRUE(t.network.has_route(t.a, t.b));
  EXPECT_TRUE(t.network.has_route(t.b, t.a));  // symmetric by default
  EXPECT_FALSE(t.network.has_route(t.a, t.a));
  EXPECT_EQ(t.network.path_latency(t.a, t.b), 3_ms);
  EXPECT_DOUBLE_EQ(t.network.path_capacity(t.a, t.b), 2e9);
  EXPECT_DOUBLE_EQ(t.network.path_queue(t.a, t.b), 5e5);
}

TEST(Network, MissingRouteThrows) {
  Simulation sim;
  Network n(sim);
  const HostId a = n.add_host("a");
  const HostId b = n.add_host("b");
  EXPECT_THROW(n.route(a, b), std::out_of_range);
  EXPECT_THROW(n.start_flow(a, b, 100, kUnlimitedRate, nullptr),
               std::out_of_range);
}

TEST(Network, SingleFlowTransferTime) {
  TwoHosts t(1e8 /* 100 MB/s */);
  SimTime done = -1;
  t.network.start_flow(t.a, t.b, 1e8, kUnlimitedRate,
                       [&] { done = t.sim.now(); });
  t.sim.run();
  EXPECT_EQ(done, 1_s);  // 100 MB at 100 MB/s
}

TEST(Network, RateCapLimitsThroughput) {
  TwoHosts t(1e8);
  SimTime done = -1;
  t.network.start_flow(t.a, t.b, 1e7, 1e7 /* 10 MB/s cap */,
                       [&] { done = t.sim.now(); });
  t.sim.run();
  EXPECT_EQ(done, 1_s);
}

TEST(Network, TwoFlowsShareBottleneckEqually) {
  TwoHosts t(1e8);
  std::vector<SimTime> done(2, -1);
  t.network.start_flow(t.a, t.b, 1e8, kUnlimitedRate,
                       [&] { done[0] = t.sim.now(); });
  t.network.start_flow(t.a, t.b, 1e8, kUnlimitedRate,
                       [&] { done[1] = t.sim.now(); });
  t.sim.run();
  // Each gets 50 MB/s; both finish at 2 s.
  EXPECT_EQ(done[0], 2_s);
  EXPECT_EQ(done[1], 2_s);
}

TEST(Network, ShortFlowFinishesThenLongFlowSpeedsUp) {
  TwoHosts t(1e8);
  std::vector<SimTime> done(2, -1);
  t.network.start_flow(t.a, t.b, 5e7, kUnlimitedRate,
                       [&] { done[0] = t.sim.now(); });
  t.network.start_flow(t.a, t.b, 1e8, kUnlimitedRate,
                       [&] { done[1] = t.sim.now(); });
  t.sim.run();
  // Flow 0: 50 MB at 50 MB/s -> 1 s. Flow 1: 50 MB in the first second,
  // then the remaining 50 MB at full 100 MB/s -> 1.5 s.
  EXPECT_EQ(done[0], 1_s);
  EXPECT_EQ(done[1], 1500_ms);
}

TEST(Network, CappedFlowLeavesBandwidthToOthers) {
  TwoHosts t(1e8);
  std::vector<SimTime> done(2, -1);
  t.network.start_flow(t.a, t.b, 1e7, 1e7, [&] { done[0] = t.sim.now(); });
  t.network.start_flow(t.a, t.b, 9e7, kUnlimitedRate,
                       [&] { done[1] = t.sim.now(); });
  t.sim.run();
  // Max-min: capped flow 10 MB/s, other 90 MB/s; both finish at 1 s.
  EXPECT_EQ(done[0], 1_s);
  EXPECT_EQ(done[1], 1_s);
}

TEST(Network, SetRateCapMidFlight) {
  TwoHosts t(1e8);
  SimTime done = -1;
  const FlowId f = t.network.start_flow(t.a, t.b, 1e8, kUnlimitedRate,
                                        [&] { done = t.sim.now(); });
  // After 0.5 s (50 MB moved), throttle to 25 MB/s: 50 MB left -> 2 s more.
  t.sim.at(500_ms, [&] { t.network.set_rate_cap(f, 2.5e7); });
  t.sim.run();
  EXPECT_EQ(done, 2500_ms);
}

TEST(Network, CancelFlowReleasesBandwidth) {
  TwoHosts t(1e8);
  std::vector<SimTime> done(2, -1);
  const FlowId f0 = t.network.start_flow(t.a, t.b, 1e9, kUnlimitedRate,
                                         [&] { done[0] = t.sim.now(); });
  t.network.start_flow(t.a, t.b, 1e8, kUnlimitedRate,
                       [&] { done[1] = t.sim.now(); });
  t.sim.at(1_s, [&] { t.network.cancel_flow(f0); });
  t.sim.run();
  EXPECT_EQ(done[0], -1);  // cancelled: no completion callback
  // Flow 1: 50 MB in first second (sharing), then 50 MB at 100 MB/s.
  EXPECT_EQ(done[1], 1500_ms);
}

TEST(Network, ZeroByteFlowCompletesImmediately) {
  TwoHosts t;
  SimTime done = -1;
  t.network.start_flow(t.a, t.b, 0, kUnlimitedRate,
                       [&] { done = t.sim.now(); });
  t.sim.run();
  EXPECT_EQ(done, 0);
}

TEST(Network, MultiLinkRouteUsesBottleneck) {
  Simulation sim;
  Network n(sim);
  const HostId a = n.add_host("a");
  const HostId b = n.add_host("b");
  const LinkId fast = n.add_link("fast", 1e9, 1_ms, 1e6);
  const LinkId slow = n.add_link("slow", 1e7, 2_ms, 1e6);
  n.add_route(a, b, {fast, slow});
  EXPECT_EQ(n.path_latency(a, b), 3_ms);
  EXPECT_DOUBLE_EQ(n.path_capacity(a, b), 1e7);
  SimTime done = -1;
  n.start_flow(a, b, 1e7, kUnlimitedRate, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, 1_s);
}

TEST(Network, DumbbellIsMaxMinFair) {
  // a0 -> b0 crosses {acc0, wan}; a1 -> b1 crosses {acc1, wan}.
  // acc0 is 10 MB/s, acc1 100 MB/s, wan 60 MB/s.
  // Max-min: flow0 = 10 (capped by acc0), flow1 = 50 (wan residual).
  Simulation sim;
  Network n(sim);
  const HostId a0 = n.add_host("a0");
  const HostId a1 = n.add_host("a1");
  const HostId b0 = n.add_host("b0");
  const HostId b1 = n.add_host("b1");
  const LinkId acc0 = n.add_link("acc0", 1e7, 0, 1e6);
  const LinkId acc1 = n.add_link("acc1", 1e8, 0, 1e6);
  const LinkId wan = n.add_link("wan", 6e7, 10_ms, 1e6);
  n.add_route(a0, b0, {acc0, wan});
  n.add_route(a1, b1, {acc1, wan});
  std::vector<SimTime> done(2, -1);
  n.start_flow(a0, b0, 1e7, kUnlimitedRate, [&] { done[0] = sim.now(); });
  n.start_flow(a1, b1, 5e7, kUnlimitedRate, [&] { done[1] = sim.now(); });
  // Both at their max-min rate for exactly 1 s.
  EXPECT_NEAR(n.link_utilization(wan), 6e7, 1.0);
  sim.run();
  EXPECT_EQ(done[0], 1_s);
  EXPECT_EQ(done[1], 1_s);
}

TEST(Network, AchievableRateReportsSlack) {
  TwoHosts t(1e8);
  const FlowId f = t.network.start_flow(t.a, t.b, 1e9, 2e7, nullptr);
  const FlowInfo info = t.network.flow_info(f);
  EXPECT_DOUBLE_EQ(info.rate, 2e7);
  // The link has 80 MB/s spare: an uncapped window could take it all.
  EXPECT_DOUBLE_EQ(info.achievable_rate, 1e8);
}

TEST(Network, AchievableRateEqualsRateWhenLinkLimited) {
  TwoHosts t(1e8);
  const FlowId f0 =
      t.network.start_flow(t.a, t.b, 1e9, kUnlimitedRate, nullptr);
  t.network.start_flow(t.a, t.b, 1e9, kUnlimitedRate, nullptr);
  const FlowInfo info = t.network.flow_info(f0);
  EXPECT_DOUBLE_EQ(info.rate, 5e7);
  EXPECT_DOUBLE_EQ(info.achievable_rate, 5e7);
}

TEST(Network, FlowInfoUnknownIdIsZero) {
  TwoHosts t;
  const FlowInfo info = t.network.flow_info(9999);
  EXPECT_EQ(info.rate, 0);
  EXPECT_EQ(info.remaining, 0);
}

// ---------------------------------------------------------------------------
// Property-style sweeps: capacity conservation and work conservation for
// random-ish flow sets on a dumbbell.
// ---------------------------------------------------------------------------

class MaxMinProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinProperty, ConservationAndFairness) {
  const int nflows = GetParam();
  Simulation sim;
  Network n(sim);
  std::vector<HostId> senders, receivers;
  std::vector<LinkId> uplinks;
  const LinkId wan = n.add_link("wan", 1e8, 5_ms, 1e6);
  for (int i = 0; i < nflows; ++i) {
    const std::string suffix = std::to_string(i);
    senders.push_back(n.add_host("s" + suffix));
    receivers.push_back(n.add_host("r" + suffix));
    uplinks.push_back(n.add_link("up" + suffix, 4e7, 1_ms, 1e6));
    n.add_route(senders.back(), receivers.back(), {uplinks.back(), wan});
  }
  std::vector<FlowId> flows;
  for (int i = 0; i < nflows; ++i) {
    // Alternate capped and uncapped flows.
    const double cap = (i % 2 == 0) ? 5e6 : kUnlimitedRate;
    flows.push_back(
        n.start_flow(senders[static_cast<size_t>(i)],
                     receivers[static_cast<size_t>(i)], 1e12, cap, nullptr));
  }
  // Conservation: no link carries more than its capacity.
  EXPECT_LE(n.link_utilization(wan), 1e8 * (1 + 1e-9));
  for (LinkId l : uplinks) EXPECT_LE(n.link_utilization(l), 4e7 * (1 + 1e-9));
  // Uncapped flows all get the same (fair) rate; capped flows get
  // min(cap, fair level).
  double uncapped_rate = -1;
  for (int i = 1; i < nflows; i += 2) {
    const FlowInfo info = n.flow_info(flows[static_cast<size_t>(i)]);
    if (uncapped_rate < 0) uncapped_rate = info.rate;
    EXPECT_NEAR(info.rate, uncapped_rate, 1.0);
  }
  for (int i = 0; i < nflows; i += 2) {
    const FlowInfo info = n.flow_info(flows[static_cast<size_t>(i)]);
    const double expected =
        uncapped_rate < 0 ? 5e6 : std::min(5e6, uncapped_rate);
    EXPECT_NEAR(info.rate, expected, 1.0);
  }
  // Work conservation: the WAN is saturated whenever demand exceeds it.
  double total_demand = 0;
  for (int i = 0; i < nflows; ++i)
    total_demand += (i % 2 == 0) ? 5e6 : 4e7;
  if (total_demand >= 1e8) {
    EXPECT_NEAR(n.link_utilization(wan), 1e8, 10.0);
  } else {
    EXPECT_NEAR(n.link_utilization(wan), total_demand, 10.0);
  }
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, MaxMinProperty,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

TEST(Network, ManySequentialFlowsLinkStats) {
  TwoHosts t(1e8);
  int completed = 0;
  // 100 back-to-back 1 MB transfers.
  std::function<void()> launch = [&] {
    if (completed == 100) return;
    t.network.start_flow(t.a, t.b, 1e6, kUnlimitedRate, [&] {
      ++completed;
      launch();
    });
  };
  launch();
  t.sim.run();
  EXPECT_EQ(completed, 100);
  EXPECT_EQ(t.sim.now(), 1_s);
  EXPECT_NEAR(t.network.link(t.ab).bytes_carried, 1e8, 1e3);
}

}  // namespace
}  // namespace gridsim::net
