// Tests for the ray2mesh master/worker application model (Tables 6 and 7).
#include <gtest/gtest.h>

#include <numeric>

#include "apps/ray2mesh.hpp"
#include "profiles/profiles.hpp"

namespace gridsim::apps {
namespace {

using profiles::TuningLevel;

profiles::ExperimentConfig cfg() {
  return profiles::experiment(profiles::gridmpi())
      .tuning(TuningLevel::kTcpTuned);
}

/// A small config so tests run fast: 10k rays, light merge.
Ray2MeshConfig small_app() {
  Ray2MeshConfig a;
  a.total_rays = 10'000;
  a.rays_per_set = 100;
  // Keep the compute:communication ratio of the real deployment (seconds
  // of compute per set vs tens of ms of turnaround) so heterogeneity, not
  // proximity, dominates the distribution — as in the paper.
  a.ray_compute_seconds = 1e-2;
  a.merge_traffic_bytes = 4e6;
  a.merge_compute_seconds = 2.0;
  a.init_write_seconds = 1.0;
  return a;
}

TEST(Ray2Mesh, AllRaysComputedExactlyOnce) {
  const auto res = run_ray2mesh(topo::GridSpec::ray2mesh_quad(2), 0, cfg(),
                                small_app());
  const int total = std::accumulate(res.rays_per_slave.begin(),
                                    res.rays_per_slave.end(), 0);
  EXPECT_EQ(total, 10'000);
  EXPECT_EQ(res.rays_per_slave.size(), 8u);  // 4 sites x 2 nodes
  const int site_total = std::accumulate(res.rays_per_site.begin(),
                                         res.rays_per_site.end(), 0);
  EXPECT_EQ(site_total, 10'000);
}

TEST(Ray2Mesh, PhasesAreOrdered) {
  const auto res = run_ray2mesh(topo::GridSpec::ray2mesh_quad(2), 1, cfg(),
                                small_app());
  EXPECT_GT(res.compute_time, 0);
  EXPECT_GT(res.merge_time, 0);
  EXPECT_GT(res.total_time, res.compute_time + res.merge_time / 2);
}

TEST(Ray2Mesh, FasterClusterComputesMoreRays) {
  // Sophia's nodes are the fastest (Table 6: ~36.5k rays vs ~29-30k).
  const auto res = run_ray2mesh(topo::GridSpec::ray2mesh_quad(2), 0, cfg(),
                                small_app());
  const int rennes = res.rays_per_site[0];
  const int nancy = res.rays_per_site[1];
  const int sophia = res.rays_per_site[2];
  EXPECT_GT(sophia, rennes);
  EXPECT_GT(sophia, nancy);
  EXPECT_GE(rennes, nancy);
}

TEST(Ray2Mesh, MasterLocationDoesNotChangeTotalsMuch) {
  // Table 7: total time depends only weakly on the master's location.
  SimTime totals[2];
  for (int master = 0; master < 2; ++master) {
    totals[master] = run_ray2mesh(topo::GridSpec::ray2mesh_quad(2), master,
                                  cfg(), small_app())
                         .total_time;
  }
  const double ratio = to_seconds(totals[0]) / to_seconds(totals[1]);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(Ray2Mesh, SelfSchedulingBalancesTurnaround) {
  // Every slave computes a share within 3x of every other (self-scheduling
  // tolerates heterogeneity but never starves anyone).
  const auto res = run_ray2mesh(topo::GridSpec::ray2mesh_quad(2), 0, cfg(),
                                small_app());
  const auto [mn, mx] = std::minmax_element(res.rays_per_slave.begin(),
                                            res.rays_per_slave.end());
  EXPECT_GT(*mn, 0);
  EXPECT_LT(*mx, 3 * *mn);
}

}  // namespace
}  // namespace gridsim::apps
