// Tests for the happens-before communication-race analyzer
// (simlint/lint.hpp): vector-clock construction over synthetic comm
// traces, the R1/R2/R3 rule engine over real engine runs, the catalog
// fixture verdicts (the racy wildcard workload and its race-free twin),
// and the gridsim-lint/1 report writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/scenario.hpp"
#include "mpi/comm_log.hpp"
#include "mpi/message.hpp"
#include "mpi/mpi.hpp"
#include "profiles/profiles.hpp"
#include "scenarios/catalog.hpp"
#include "simcore/check.hpp"
#include "simcore/simulation.hpp"
#include "simlint/lint.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::simlint {
namespace {

using mpi::CommEvent;
using mpi::CommEventKind;

/// Runs a registered scenario once with comm-event recording, like
/// `gridsim lint` does, and returns the analysis.
LintSummary lint_scenario(const harness::ScenarioSpec& spec) {
  mpi::CommLog log;
  {
    const mpi::ScopedCommLog scope(&log);
    harness::ScenarioContext ctx;
    (void)spec.run(ctx);
  }
  return analyze(log, 64);
}

// ---------------------------------------------------------------------------
// Vector clocks over synthetic traces
// ---------------------------------------------------------------------------

TEST(LintClocks, MatchEdgeOrdersSendsAcrossRanks) {
  mpi::JobCommTrace trace;
  trace.nranks = 2;
  using K = CommEventKind;
  // rank 0 sends (site 0); rank 1 matches it, then sends back (site 0).
  trace.events.push_back(
      {K::kSendPost, /*rank=*/0, /*peer=*/1, /*tag=*/1, 0, 0, /*site=*/0});
  trace.events.push_back({K::kRecvPost, 1, -1, 0, /*want_src=*/0,
                          /*want_tag=*/1, /*site=*/0});
  trace.events.push_back({K::kRecvMatch, 1, /*peer=*/0, 1, 0, 1, /*site=*/0,
                          /*peer_site=*/0});
  trace.events.push_back({K::kSendPost, 1, /*peer=*/0, /*tag=*/2, 0, 0,
                          /*site=*/0});

  const JobLint lint = analyze_job(trace, 64);
  EXPECT_EQ(lint.hb_edges, 1u);
  // rank 0's send happens-before rank 1's reply...
  EXPECT_EQ(lint.send_order(0, 0, 1, 0), 1);
  // ...and symmetrically the reply is after it.
  EXPECT_EQ(lint.send_order(1, 0, 0, 0), -1);
  // An unknown site is reported as such, not guessed.
  EXPECT_EQ(lint.send_order(0, 5, 1, 0), -2);
}

TEST(LintClocks, UnrelatedSendsAreConcurrent) {
  mpi::JobCommTrace trace;
  trace.nranks = 3;
  using K = CommEventKind;
  trace.events.push_back({K::kSendPost, 1, 0, 1, 0, 0, /*site=*/0});
  trace.events.push_back({K::kSendPost, 2, 0, 1, 0, 0, /*site=*/0});
  const JobLint lint = analyze_job(trace, 64);
  EXPECT_EQ(lint.hb_edges, 0u);
  EXPECT_EQ(lint.send_order(1, 0, 2, 0), 0);
}

TEST(LintClocks, RendezvousCtsAndDataEdgesAreJoined) {
  mpi::JobCommTrace trace;
  trace.nranks = 2;
  using K = CommEventKind;
  const std::uint64_t seq = 7;
  // Full rendez-vous: RTS arrives (match), receiver grants CTS, sender
  // resumes, payload lands. Three cross-rank edges.
  trace.events.push_back({K::kSendPost, 0, 1, 3, 0, 0, 0, -1, 1e6});
  trace.events.push_back({K::kRecvPost, 1, -1, 0, 0, 3, 0});
  trace.events.push_back({K::kRecvMatch, 1, 0, 3, 0, 3, 0, 0, 1e6, seq});
  trace.events.push_back({K::kRecvCts, 1, 0, 3, 0, 0, 0, -1, 0, seq});
  trace.events.push_back({K::kSendCts, 0, 1, 3, 0, 0, 0, -1, 1e6, seq});
  trace.events.push_back({K::kRecvData, 1, 0, 3, 0, 0, 0, 0, 1e6, seq});
  const JobLint lint = analyze_job(trace, 64);
  EXPECT_EQ(lint.hb_edges, 3u);
}

TEST(LintClocks, MultiJobSitePairsStayConservative) {
  // Site ids restart at 0 in every Job, so two jobs can resolve the same
  // (rank, site) keys — here with opposite orders. The summary must not
  // pick one: an ambiguous pair reports "not ordered" (the model-checker
  // keeps the branch).
  mpi::CommLog log;
  using K = CommEventKind;
  mpi::JobCommTrace* a = log.open_job(2);
  a->push({K::kSendPost, 0, 1, 1, 0, 0, /*site=*/0});
  a->push({K::kRecvMatch, 1, /*peer=*/0, 1, 0, 1, /*site=*/0,
           /*peer_site=*/0});
  a->push({K::kSendPost, 1, 0, 2, 0, 0, /*site=*/0});
  a->push({K::kSendPost, 1, 0, 3, 0, 0, /*site=*/1});
  mpi::JobCommTrace* b = log.open_job(2);
  b->push({K::kSendPost, 1, 0, 1, 0, 0, /*site=*/0});
  b->push({K::kRecvMatch, 0, /*peer=*/1, 1, 0, 1, /*site=*/0,
           /*peer_site=*/0});
  b->push({K::kSendPost, 0, 1, 2, 0, 0, /*site=*/0});

  const LintSummary lint = analyze(log, 64);
  ASSERT_EQ(lint.jobs.size(), 2u);
  // Each job alone proves an order — and they disagree.
  EXPECT_EQ(lint.jobs[0].send_order(0, 0, 1, 0), 1);
  EXPECT_EQ(lint.jobs[1].send_order(0, 0, 1, 0), -1);
  // The ambiguous pair stays unordered in both directions...
  EXPECT_FALSE(lint.send_happens_before(0, 0, 1, 0));
  EXPECT_FALSE(lint.send_happens_before(1, 0, 0, 0));
  // ...while a pair only the first job knows still answers.
  EXPECT_TRUE(lint.send_happens_before(0, 0, 1, 1));
}

// ---------------------------------------------------------------------------
// Rules over real engine runs
// ---------------------------------------------------------------------------

TEST(LintRules, UnmatchedSendAtFinalizeIsALeak) {
  mpi::CommLog log;
  {
    const mpi::ScopedCommLog scope(&log);
    Simulation sim;
    topo::Grid grid(sim, topo::GridSpec::rennes_nancy(2));
    {
      mpi::Job job(grid, mpi::block_placement(grid, 2), profiles::mpich2(),
                   tcp::KernelTunables::grid_tuned());
      job.launch([](mpi::Rank& r) -> Task<void> {
        if (r.rank() == 1) co_await r.send(0, 512, /*tag=*/9);
        co_return;  // rank 0 never posts the receive
      });
      sim.run();
    }
  }
  const LintSummary lint = analyze(log, 64);
  EXPECT_EQ(lint.leaks, 1);
  EXPECT_EQ(lint_status(lint, false), "leaks");
  EXPECT_FALSE(lint_status_ok("leaks"));
  ASSERT_FALSE(lint.findings.empty());
  EXPECT_EQ(lint.findings.front().rule, "R3-unmatched-send");
  EXPECT_NE(lint.findings.front().message.find("rank 1 send#0"),
            std::string::npos)
      << lint.findings.front().message;
}

TEST(LintRules, UnmatchedPostedReceiveIsALeak) {
  mpi::CommLog log;
  {
    const mpi::ScopedCommLog scope(&log);
    // The starved receive deadlocks the simulation; the abandoned
    // coroutine frames are the scenario's point.
    [[maybe_unused]] ScopedLeakExemption leak_exemption;
    Simulation sim;
    topo::Grid grid(sim, topo::GridSpec::rennes_nancy(2));
    bool deadlocked = false;
    try {
      mpi::Job job(grid, mpi::block_placement(grid, 2), profiles::mpich2(),
                   tcp::KernelTunables::grid_tuned());
      job.launch([](mpi::Rank& r) -> Task<void> {
        if (r.rank() == 0) (void)co_await r.recv(1, /*tag=*/5);
        co_return;  // rank 1 never sends
      });
      sim.run();
    } catch (const DeadlockError&) {
      deadlocked = true;
    }
    ASSERT_TRUE(deadlocked);
  }
  const LintSummary lint = analyze(log, 64);
  EXPECT_GE(lint.leaks, 1);
  EXPECT_EQ(lint_status(lint, false), "leaks");
  bool found = false;
  for (const Finding& f : lint.findings)
    if (f.rule == "R3-unmatched-recv") found = true;
  EXPECT_TRUE(found);
}

TEST(LintRules, WildcardTagCapturingCollectiveTrafficIsAConflict) {
  mpi::JobCommTrace trace;
  trace.nranks = 2;
  using K = CommEventKind;
  const int coll_tag = mpi::kCollectiveTagBase;
  trace.events.push_back(
      {K::kSendPost, 0, 1, coll_tag, 0, 0, /*site=*/0});
  trace.events.push_back({K::kRecvPost, 1, -1, 0, mpi::kAnySource,
                          mpi::kAnyTag, /*site=*/0});
  trace.events.push_back({K::kRecvMatch, 1, 0, coll_tag, mpi::kAnySource,
                          mpi::kAnyTag, /*site=*/0, /*peer_site=*/0});
  const JobLint lint = analyze_job(trace, 64);
  EXPECT_EQ(lint.leaks, 1);
  ASSERT_FALSE(lint.findings.empty());
  EXPECT_EQ(lint.findings.front().rule, "R3-tag-conflict");
}

TEST(LintRules, TruncatedAnalysisCannotClaimClean) {
  // Tail events are dropped first when a trace hits its cap, and
  // finalize-time R3 leaks live at the tail — a capped analysis that
  // found nothing must not pass the gate.
  LintSummary lint;
  lint.truncated = true;
  EXPECT_EQ(lint_status(lint, false), "truncated");
  EXPECT_EQ(lint_status(lint, true), "truncated");
  EXPECT_FALSE(lint_status_ok("truncated"));
  // Findings that did survive keep their more specific verdicts.
  lint.races = 1;
  EXPECT_EQ(lint_status(lint, false), "races");
  lint.leaks = 1;
  EXPECT_EQ(lint_status(lint, false), "leaks");
  // Expected races on a truncated trace still cannot pass.
  lint.leaks = 0;
  EXPECT_EQ(lint_status(lint, true), "truncated");
}

TEST(LintRules, CapsOnlyTruncateAnalysisWhereWildcardsAreInvolved) {
  using K = CommEventKind;
  // A capped recording with no wildcard receives anywhere stays fully
  // analyzed: R3 is clock-free and finalize leftovers survive the cap,
  // and R1/R2 have nothing to trigger on — the verdict may claim clean.
  {
    mpi::CommLog log;
    mpi::JobCommTrace* job = log.open_job(2);
    job->truncated = true;
    job->push({K::kSendPost, 0, 1, 1, 0, 0, /*site=*/0});
    EXPECT_FALSE(analyze(log, 64).truncated);
  }
  // A recorded wildcard receive on a capped trace: racing candidate
  // sends may have been dropped, so the analysis is incomplete.
  {
    mpi::CommLog log;
    mpi::JobCommTrace* job = log.open_job(2);
    job->truncated = true;
    job->push({K::kRecvPost, 0, -1, 0, mpi::kAnySource, 1, /*site=*/0});
    EXPECT_TRUE(analyze(log, 64).truncated);
  }
  // A wildcard receive among the dropped events is flagged at recording
  // time and makes the analysis incomplete even though no recorded
  // event shows it.
  {
    mpi::CommLog log;
    log.open_job(2)->dropped_wildcard = true;
    EXPECT_TRUE(analyze(log, 64).truncated);
  }
  // Finalize leftovers bypass the recording cap, so R3 still fires on a
  // saturated trace.
  {
    mpi::JobCommTrace trace;
    trace.nranks = 2;
    trace.max_events = 1;
    trace.push({K::kSendPost, 0, 1, 1, 0, 0, /*site=*/0});
    trace.push({K::kSendPost, 0, 1, 1, 0, 0, /*site=*/1});  // dropped
    trace.push({K::kUnmatchedSend, /*rank=*/1, /*peer=*/0, 1, 0, 0, -1,
                /*peer_site=*/0});
    EXPECT_TRUE(trace.truncated);
    ASSERT_EQ(trace.events.size(), 2u);
    const JobLint lint = analyze_job(trace, 64);
    EXPECT_EQ(lint.leaks, 1);
    EXPECT_FALSE(lint.truncated);  // no wildcards: analysis is complete
    ASSERT_FALSE(lint.findings.empty());
    EXPECT_EQ(lint.findings.front().rule, "R3-unmatched-send");
  }
}

// ---------------------------------------------------------------------------
// Catalog fixtures: the verdict boundary from both sides
// ---------------------------------------------------------------------------

TEST(LintCatalog, WildcardRaceFixtureFiresR1NamingBothSites) {
  const auto* spec = scenarios::paper_registry().find("lint/wildcard-race");
  ASSERT_NE(spec, nullptr);
  EXPECT_TRUE(spec->races_expected);
  const LintSummary lint = lint_scenario(*spec);
  EXPECT_EQ(lint.races, 1);
  EXPECT_EQ(lint.leaks, 0);
  EXPECT_EQ(lint_status(lint, spec->races_expected), "expected-races");
  EXPECT_TRUE(lint_status_ok("expected-races"));
  // Without the declaration the same analysis fails the scenario.
  EXPECT_EQ(lint_status(lint, false), "races");
  ASSERT_FALSE(lint.findings.empty());
  const Finding& f = lint.findings.front();
  EXPECT_EQ(f.rule, "R1-wildcard-race");
  // Both racing send sites are named.
  EXPECT_NE(f.message.find("rank 1 send#0"), std::string::npos)
      << f.message;
  EXPECT_NE(f.message.find("rank 2 send#0"), std::string::npos)
      << f.message;
}

TEST(LintCatalog, ScriptedOrderTwinIsClean) {
  const auto* spec = scenarios::paper_registry().find("lint/scripted-order");
  ASSERT_NE(spec, nullptr);
  EXPECT_FALSE(spec->races_expected);
  const LintSummary lint = lint_scenario(*spec);
  EXPECT_EQ(lint.races, 0);
  EXPECT_EQ(lint.causal_sends, 0);
  EXPECT_EQ(lint.leaks, 0);
  EXPECT_TRUE(lint.findings.empty());
  EXPECT_EQ(lint_status(lint, false), "clean");
  // The token adds a third cross-rank edge on top of the two matches.
  EXPECT_GE(lint.hb_edges, 3u);
}

// ---------------------------------------------------------------------------
// Report writer
// ---------------------------------------------------------------------------

TEST(LintReport, WritesTheLintJsonSchema) {
  ScenarioLintEntry clean;
  clean.name = "lint/scripted-order";
  clean.group = "lint";
  clean.status = "clean";
  ScenarioLintEntry racy;
  racy.name = "lint/wildcard-race";
  racy.group = "lint";
  racy.status = "races";
  racy.lint.races = 1;
  racy.lint.findings.push_back({"R1-wildcard-race", "warning", "a", "b",
                                "a races b"});
  const std::string path =
      ::testing::TempDir() + "lint_report_test.json";
  ASSERT_TRUE(write_lint_json(path, "lint/*", 1, {clean, racy}));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::remove(path.c_str());
  EXPECT_NE(text.find("\"schema\": \"gridsim-lint/1\""), std::string::npos);
  EXPECT_NE(text.find("\"failures\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"status\": \"clean\""), std::string::npos);
  EXPECT_NE(text.find("\"rule\": \"R1-wildcard-race\""), std::string::npos);
}

}  // namespace
}  // namespace gridsim::simlint
