// Tests for the MPI point-to-point engine: matching semantics, eager vs
// rendez-vous behaviour, non-blocking operations, and Table 4 latencies.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/mpi.hpp"
#include "simcore/simulation.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::mpi {
namespace {

using namespace gridsim::literals;

ImplProfile test_profile() {
  ImplProfile p;
  p.name = "test";
  p.send_overhead = microseconds(2) + nanoseconds(500);
  p.recv_overhead = microseconds(2) + nanoseconds(500);
  p.eager_threshold = 256 * 1024;
  return p;
}

struct Fixture {
  Simulation sim;
  topo::Grid grid;
  Job job;
  explicit Fixture(int nodes_per_site = 2,
                   ImplProfile profile = test_profile(),
                   tcp::KernelTunables kernel =
                       tcp::KernelTunables::grid_tuned(),
                   int nranks = -1)
      : grid(sim, topo::GridSpec::rennes_nancy(nodes_per_site)),
        job(grid, block_placement(grid, nranks < 0 ? 2 * nodes_per_site
                                                   : nranks),
            std::move(profile), kernel) {}
};

TEST(Mpi, JobSetup) {
  Fixture f;
  EXPECT_EQ(f.job.size(), 4);
  EXPECT_EQ(f.job.rank(0).rank(), 0);
  EXPECT_EQ(f.job.rank(0).size(), 4);
  // Block placement: ranks 0,1 in Rennes; 2,3 in Nancy.
  EXPECT_EQ(f.grid.site_of(f.job.rank(1).host()), 0);
  EXPECT_EQ(f.grid.site_of(f.job.rank(2).host()), 1);
}

TEST(Mpi, PlacementValidation) {
  Simulation sim;
  topo::Grid grid(sim, topo::GridSpec::rennes_nancy(2));
  EXPECT_THROW(block_placement(grid, 10), std::invalid_argument);
  EXPECT_THROW(Job(grid, {}, test_profile(), tcp::KernelTunables{}),
               std::invalid_argument);
}

TEST(Mpi, EagerSendRecvIntraCluster) {
  Fixture f;
  SimTime recv_done = -1;
  RecvInfo info;
  f.sim.spawn([](Rank& r) -> Task<void> {
    co_await r.send(1, 1000, 7);
  }(f.job.rank(0)));
  f.sim.spawn([](Rank& r, RecvInfo& out, SimTime& t) -> Task<void> {
    out = co_await r.recv(0, 7);
    t = r.sim().now();
  }(f.job.rank(1), info, recv_done));
  f.sim.run();
  EXPECT_EQ(info.source, 0);
  EXPECT_EQ(info.tag, 7);
  EXPECT_DOUBLE_EQ(info.bytes, 1000);
  // One-way time ~ send_ov + stack + 35us wire + transfer + stack + recv_ov.
  EXPECT_GT(recv_done, 40_us);
  EXPECT_LT(recv_done, 80_us);
}

TEST(Mpi, SmallMessageLatencyMatchesTable4Budget) {
  // MPICH2-style 2.5us overheads: one-way = 2.5 + 3 + 35 + 3 + 2.5 = 46 us.
  Fixture f;
  SimTime recv_done = -1;
  f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(1, 1, 0); }(
      f.job.rank(0)));
  f.sim.spawn([](Rank& r, SimTime& t) -> Task<void> {
    (void)co_await r.recv(0, 0);
    t = r.sim().now();
  }(f.job.rank(1), recv_done));
  f.sim.run();
  EXPECT_NEAR(static_cast<double>(recv_done), 46000, 500);
}

TEST(Mpi, GridLatencyAddsWanPropagation) {
  Fixture f;
  SimTime recv_done = -1;
  f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(2, 1, 0); }(
      f.job.rank(0)));
  f.sim.spawn([](Rank& r, SimTime& t) -> Task<void> {
    (void)co_await r.recv(0, 0);
    t = r.sim().now();
  }(f.job.rank(2), recv_done));
  f.sim.run();
  // 5800 us one-way + 11 us overheads.
  EXPECT_NEAR(static_cast<double>(recv_done), 5811000, 2000);
}

TEST(Mpi, TagMatchingIsSelective) {
  Fixture f;
  std::vector<int> recv_order;
  f.sim.spawn([](Rank& r) -> Task<void> {
    co_await r.send(1, 100, /*tag=*/5);
    co_await r.send(1, 100, /*tag=*/6);
  }(f.job.rank(0)));
  f.sim.spawn([](Rank& r, std::vector<int>& order) -> Task<void> {
    // Recv tag 6 first even though tag 5 arrives first.
    auto a = co_await r.recv(0, 6);
    order.push_back(a.tag);
    auto b = co_await r.recv(0, 5);
    order.push_back(b.tag);
  }(f.job.rank(1), recv_order));
  f.sim.run();
  EXPECT_EQ(recv_order, (std::vector<int>{6, 5}));
}

TEST(Mpi, NonOvertakingSameTag) {
  Fixture f;
  std::vector<double> sizes;
  f.sim.spawn([](Rank& r) -> Task<void> {
    co_await r.send(1, 111, 3);
    co_await r.send(1, 222, 3);
    co_await r.send(1, 333, 3);
  }(f.job.rank(0)));
  f.sim.spawn([](Rank& r, std::vector<double>& out) -> Task<void> {
    for (int i = 0; i < 3; ++i) out.push_back((co_await r.recv(0, 3)).bytes);
  }(f.job.rank(1), sizes));
  f.sim.run();
  EXPECT_EQ(sizes, (std::vector<double>{111, 222, 333}));
}

TEST(Mpi, AnySourceReceivesFromWhoeverArrivesFirst) {
  Fixture f;
  std::vector<int> sources;
  // Rank 1 (same cluster) arrives before rank 2 (across the WAN).
  f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(0, 10, 1); }(
      f.job.rank(1)));
  f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(0, 10, 1); }(
      f.job.rank(2)));
  f.sim.spawn([](Rank& r, std::vector<int>& out) -> Task<void> {
    out.push_back((co_await r.recv(kAnySource, 1)).source);
    out.push_back((co_await r.recv(kAnySource, 1)).source);
  }(f.job.rank(0), sources));
  f.sim.run();
  EXPECT_EQ(sources, (std::vector<int>{1, 2}));
}

TEST(Mpi, RendezvousUsedAboveThreshold) {
  // A >threshold message across the WAN costs an extra round trip for the
  // RTS/CTS handshake compared with an eager message of the same size.
  auto one_way = [](double eager_threshold) {
    Simulation sim;
    topo::Grid grid(sim, topo::GridSpec::rennes_nancy(1));
    ImplProfile p = test_profile();
    p.eager_threshold = eager_threshold;
    Job job(grid, block_placement(grid, 2), p,
            tcp::KernelTunables::grid_tuned());
    SimTime done = -1;
    sim.spawn([](Rank& r) -> Task<void> { co_await r.send(1, 512e3, 0); }(
        job.rank(0)));
    sim.spawn([](Rank& r, SimTime& t) -> Task<void> {
      (void)co_await r.recv(0, 0);
      t = r.sim().now();
    }(job.rank(1), done));
    sim.run();
    return done;
  };
  const SimTime eager = one_way(1e9);
  const SimTime rndv = one_way(64e3);
  ASSERT_GT(eager, 0);
  ASSERT_GT(rndv, 0);
  // The rendez-vous handshake costs one extra WAN round trip (11.6 ms).
  EXPECT_GT(rndv - eager, 11000_us);
  EXPECT_LT(rndv - eager, 13000_us);
}

TEST(Mpi, EagerSendReturnsBeforeDelivery) {
  Fixture f;
  SimTime send_done = -1, recv_done = -1;
  f.sim.spawn([](Rank& r, SimTime& t) -> Task<void> {
    co_await r.send(2, 1000, 0);  // across the WAN
    t = r.sim().now();
  }(f.job.rank(0), send_done));
  f.sim.spawn([](Rank& r, SimTime& t) -> Task<void> {
    (void)co_await r.recv(0, 0);
    t = r.sim().now();
  }(f.job.rank(2), recv_done));
  f.sim.run();
  // Fire-and-forget: the sender completes in microseconds, the receiver
  // waits for WAN propagation.
  EXPECT_LT(send_done, 100_us);
  EXPECT_GT(recv_done, 5800_us);
}

TEST(Mpi, UnexpectedEagerMessagePaysCopy) {
  // Receiver posts late: message waits in the MPI buffer and pays a copy.
  auto recv_time_after_post = [](bool post_late) {
    Simulation sim;
    topo::Grid grid(sim, topo::GridSpec::rennes_nancy(1));
    Job job(grid, block_placement(grid, 2), test_profile(),
            tcp::KernelTunables::grid_tuned());
    SimTime posted_at = -1, done = -1;
    const SimTime delay = post_late ? 100_ms : 0_ms;
    sim.spawn([](Rank& r) -> Task<void> { co_await r.send(1, 200e3, 0); }(
        job.rank(0)));
    sim.spawn([](Rank& r, SimTime d, SimTime& post,
                 SimTime& fin) -> Task<void> {
      co_await r.sim().delay(d);
      post = r.sim().now();
      (void)co_await r.recv(0, 0);
      fin = r.sim().now();
    }(job.rank(1), delay, posted_at, done));
    sim.run();
    return done - posted_at;
  };
  const SimTime posted_first = recv_time_after_post(false);
  const SimTime posted_late = recv_time_after_post(true);
  // Late post: the message has already arrived, so the recv completes in
  // roughly the copy time (200 kB at 2 GB/s ~ 100 us), far below the wire
  // time seen when posting first.
  EXPECT_LT(posted_late, posted_first);
  EXPECT_GT(posted_late, 50_us);
}

TEST(Mpi, IsendIrecvWait) {
  Fixture f;
  RecvInfo got;
  f.sim.spawn([](Rank& r) -> Task<void> {
    Request s = r.isend(1, 4096, 9);
    co_await r.wait(s);
  }(f.job.rank(0)));
  f.sim.spawn([](Rank& r, RecvInfo& out) -> Task<void> {
    Request rq = r.irecv(0, 9);
    out = co_await r.wait(rq);
  }(f.job.rank(1), got));
  f.sim.run();
  EXPECT_EQ(got.source, 0);
  EXPECT_DOUBLE_EQ(got.bytes, 4096);
}

TEST(Mpi, WaitAllCompletesEverything) {
  Fixture f;
  int received = 0;
  f.sim.spawn([](Rank& r) -> Task<void> {
    std::vector<Request> reqs;
    for (int i = 0; i < 10; ++i) reqs.push_back(r.isend(1, 1000, i));
    co_await r.wait_all(std::move(reqs));
  }(f.job.rank(0)));
  f.sim.spawn([](Rank& r, int& count) -> Task<void> {
    std::vector<Request> reqs;
    for (int i = 0; i < 10; ++i) reqs.push_back(r.irecv(0, i));
    co_await r.wait_all(std::move(reqs));
    count = 10;
  }(f.job.rank(1), received));
  f.sim.run();
  EXPECT_EQ(received, 10);
}

TEST(Mpi, WaitOnInvalidRequestThrows) {
  Fixture f;
  bool threw = false;
  f.sim.spawn([](Rank& r, bool& out) -> Task<void> {
    try {
      (void)co_await r.wait(Request{});
    } catch (const std::invalid_argument&) {
      out = true;
    }
  }(f.job.rank(0), threw));
  f.sim.run();
  EXPECT_TRUE(threw);
}

TEST(Mpi, ComputeScalesWithCpuSpeed) {
  Fixture f;
  SimTime rennes_done = -1, nancy_done = -1;
  f.sim.spawn([](Rank& r, SimTime& t) -> Task<void> {
    co_await r.compute(1.0);
    t = r.sim().now();
  }(f.job.rank(0), rennes_done));
  f.sim.spawn([](Rank& r, SimTime& t) -> Task<void> {
    co_await r.compute(1.0);
    t = r.sim().now();
  }(f.job.rank(2), nancy_done));
  f.sim.run();
  EXPECT_EQ(rennes_done, 1_s);           // speed 1.0
  EXPECT_GT(nancy_done, rennes_done);    // Nancy is slower (0.97)
}

TEST(Mpi, TrafficStatsClassifyTags) {
  Fixture f;
  f.sim.spawn([](Rank& r) -> Task<void> {
    co_await r.send(1, 100, 0);                       // p2p
    co_await r.send(1, 200, kCollectiveTagBase + 1);  // collective
  }(f.job.rank(0)));
  f.sim.spawn([](Rank& r) -> Task<void> {
    (void)co_await r.recv(0, 0);
    (void)co_await r.recv(0, kCollectiveTagBase + 1);
  }(f.job.rank(1)));
  f.sim.run();
  EXPECT_EQ(f.job.traffic().p2p_messages, 1u);
  EXPECT_DOUBLE_EQ(f.job.traffic().p2p_bytes, 100);
  EXPECT_EQ(f.job.traffic().collective_messages, 1u);
  EXPECT_DOUBLE_EQ(f.job.traffic().collective_bytes, 200);
  EXPECT_EQ(f.job.traffic().p2p_sizes.at(100), 1u);
}

TEST(Mpi, SendToSelfViaLoopback) {
  Fixture f;
  RecvInfo got;
  f.sim.spawn([](Rank& r, RecvInfo& out) -> Task<void> {
    Request rq = r.irecv(0, 42);
    co_await r.send(0, 512, 42);
    out = co_await r.wait(rq);
  }(f.job.rank(0), got));
  f.sim.run();
  EXPECT_EQ(got.source, 0);
  EXPECT_DOUBLE_EQ(got.bytes, 512);
}

TEST(Mpi, LaunchRunsEveryRank) {
  Fixture f;
  std::vector<int> ran;
  f.job.launch([&ran](Rank& r) -> Task<void> {
    ran.push_back(r.rank());
    co_return;
  });
  f.sim.run();
  std::sort(ran.begin(), ran.end());
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Mpi, PingPongManyRounds) {
  Fixture f;
  int rounds_done = 0;
  constexpr int kRounds = 50;
  f.sim.spawn([](Rank& r, int& done) -> Task<void> {
    for (int i = 0; i < kRounds; ++i) {
      co_await r.send(2, 1024, 0);
      (void)co_await r.recv(2, 0);
      ++done;
    }
  }(f.job.rank(0), rounds_done));
  f.sim.spawn([](Rank& r) -> Task<void> {
    for (int i = 0; i < kRounds; ++i) {
      (void)co_await r.recv(0, 0);
      co_await r.send(0, 1024, 0);
    }
  }(f.job.rank(2)));
  f.sim.run();
  EXPECT_EQ(rounds_done, kRounds);
  // Each round crosses the WAN twice: >= 11.6 ms per round.
  EXPECT_GT(f.sim.now(), kRounds * 11600_us);
}

// ---------------------------------------------------------------------------
// Wildcard matching order under an explicit MatchArbiter (the engine's
// model-checking hook; see mpi/match_arbiter.hpp).
// ---------------------------------------------------------------------------

/// Deferring arbiter that forces candidate `pick` at the first decision and
/// arrival order everywhere after.
struct FirstPickArbiter final : MatchArbiter {
  explicit FirstPickArbiter(std::size_t pick) : pick_(pick) {}
  bool defer_wildcards() const override { return true; }
  std::size_t choose(const MatchDecision& decision) override {
    ++decisions;
    first_candidates =
        first_candidates ? first_candidates : decision.candidates.size();
    const std::size_t p = decisions == 1 ? pick_ : 0;
    return p < decision.candidates.size() ? p : 0;
  }
  std::size_t pick_;
  int decisions = 0;
  std::size_t first_candidates = 0;
};

TEST(Mpi, WildcardMatchingBothOrdersAreLegal) {
  // Two concurrent senders into one kAnySource receive: MPI allows either
  // matching order. Forcing each via the arbiter must deliver the matched
  // sender's payload intact — source and bytes stay consistent.
  const auto run = [](std::size_t pick) {
    FirstPickArbiter arbiter(pick);
    ScopedArbiter ambient(&arbiter);
    Fixture f;  // the Job adopts the thread's ambient arbiter
    std::vector<int> sources;
    std::vector<double> bytes;
    f.sim.spawn([](Rank& r, std::vector<int>& srcs,
                   std::vector<double>& sizes) -> Task<void> {
      for (int i = 0; i < 2; ++i) {
        const RecvInfo info = co_await r.recv(kAnySource, 1);
        srcs.push_back(info.source);
        sizes.push_back(info.bytes);
      }
    }(f.job.rank(0), sources, bytes));
    f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(0, 111, 1); }(
        f.job.rank(1)));
    f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(0, 222, 1); }(
        f.job.rank(2)));
    f.sim.run();
    EXPECT_EQ(arbiter.first_candidates, 2u);  // both senders co-enabled
    return std::make_pair(sources, bytes);
  };
  const auto order0 = run(0);
  EXPECT_EQ(order0.first, (std::vector<int>{1, 2}));
  EXPECT_EQ(order0.second, (std::vector<double>{111, 222}));
  const auto order1 = run(1);
  EXPECT_EQ(order1.first, (std::vector<int>{2, 1}));
  EXPECT_EQ(order1.second, (std::vector<double>{222, 111}));
}

TEST(Mpi, WildcardUnexpectedQueueKeepsArrivalOrder) {
  // Default (arrival-order) arbiter, receiver posts late: both messages sit
  // in the unexpected queue, and the wildcard receives drain it strictly in
  // arrival order — LAN sender (rank 1) first, WAN sender (rank 2) second.
  Fixture f;
  std::vector<int> sources;
  f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(0, 10, 1); }(
      f.job.rank(1)));
  f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(0, 10, 1); }(
      f.job.rank(2)));
  f.sim.spawn([](Rank& r, std::vector<int>& out) -> Task<void> {
    co_await r.sim().delay(100_ms);  // both messages are queued by now
    out.push_back((co_await r.recv(kAnySource, 1)).source);
    out.push_back((co_await r.recv(kAnySource, 1)).source);
  }(f.job.rank(0), sources));
  f.sim.run();
  EXPECT_EQ(sources, (std::vector<int>{1, 2}));
}

TEST(Mpi, DeferredWildcardDoesNotStealFromSpecificRecv) {
  // Deferral soundness: while a wildcard is parked, a specific receive that
  // also matches a parked message must not steal a message the
  // earlier-posted wildcard could take — posted order wins. With the
  // wildcard forced to rank 2's message, the specific recv(1) still gets
  // rank 1's.
  FirstPickArbiter arbiter(1);
  ScopedArbiter ambient(&arbiter);
  Fixture f;
  int wild_src = -1, specific_src = -1;
  f.sim.spawn([](Rank& r, int& wild, int& specific) -> Task<void> {
    const Request wildcard = r.irecv(kAnySource, 1);
    const Request from1 = r.irecv(1, 1);
    wild = (co_await r.wait(wildcard)).source;
    specific = (co_await r.wait(from1)).source;
  }(f.job.rank(0), wild_src, specific_src));
  f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(0, 111, 1); }(
      f.job.rank(1)));
  f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(0, 222, 1); }(
      f.job.rank(2)));
  f.sim.run();
  EXPECT_EQ(wild_src, 2);
  EXPECT_EQ(specific_src, 1);
}

}  // namespace
}  // namespace gridsim::mpi
