// Closed-form max-min allocations on hand-built topologies, pinned for both
// the incremental solver and the global-resolve oracle, plus unit coverage
// of the incremental machinery (fast path, component isolation, the
// bipartite index) that the differential churn suite exercises only
// statistically.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "simcore/simulation.hpp"
#include "simnet/maxmin.hpp"
#include "simnet/network.hpp"

namespace gridsim::net {
namespace {

using namespace gridsim::literals;

// Every closed-form case runs under both solvers: the expected rates are
// what progressive filling computes, so any disagreement is a solver bug,
// not a tolerance artifact.
class MaxMinClosedForm : public ::testing::TestWithParam<SolverMode> {
 protected:
  Simulation sim;
  Network net{sim};
  void SetUp() override { net.set_solver_mode(GetParam()); }
};

TEST_P(MaxMinClosedForm, SingleBottleneckEqualShares) {
  // Three uncapped flows on one 90 MB/s link: 30 MB/s each.
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  const LinkId ab = net.add_link("ab", 9e7, 1_ms, 1e6);
  net.add_route(a, b, {ab});
  std::vector<FlowId> flows;
  for (int i = 0; i < 3; ++i)
    flows.push_back(net.start_flow(a, b, 1e12, kUnlimitedRate, nullptr));
  for (FlowId f : flows) EXPECT_DOUBLE_EQ(net.flow_info(f).rate, 3e7);
  EXPECT_DOUBLE_EQ(net.link_utilization(ab), 9e7);
}

TEST_P(MaxMinClosedForm, ChainSharesTheMiddleLink) {
  // l0 --- l1 --- l2, all 90 MB/s. f0 crosses {l0,l1}, f1 crosses {l1,l2},
  // f2 crosses {l1} only. l1 carries three flows -> everyone freezes at
  // 30 MB/s (no tighter constraint exists).
  const HostId h0 = net.add_host("h0");
  const HostId h1 = net.add_host("h1");
  const HostId h2 = net.add_host("h2");
  const LinkId l0 = net.add_link("l0", 9e7, 1_ms, 1e6);
  const LinkId l1 = net.add_link("l1", 9e7, 1_ms, 1e6);
  const LinkId l2 = net.add_link("l2", 9e7, 1_ms, 1e6);
  net.add_route(h0, h1, {l0, l1});
  net.add_route(h1, h2, {l1, l2});
  net.add_route(h0, h2, {l1});
  const FlowId f0 = net.start_flow(h0, h1, 1e12, kUnlimitedRate, nullptr);
  const FlowId f1 = net.start_flow(h1, h2, 1e12, kUnlimitedRate, nullptr);
  const FlowId f2 = net.start_flow(h0, h2, 1e12, kUnlimitedRate, nullptr);
  EXPECT_DOUBLE_EQ(net.flow_info(f0).rate, 3e7);
  EXPECT_DOUBLE_EQ(net.flow_info(f1).rate, 3e7);
  EXPECT_DOUBLE_EQ(net.flow_info(f2).rate, 3e7);
  // The outer links have 60 MB/s slack each; the middle link has none.
  EXPECT_DOUBLE_EQ(net.flow_info(f0).achievable_rate, 3e7);
  EXPECT_DOUBLE_EQ(net.link_utilization(l0), 3e7);
  EXPECT_DOUBLE_EQ(net.link_utilization(l1), 9e7);
}

TEST_P(MaxMinClosedForm, CrossTrafficStarUplinkThenWanBottleneck) {
  // Four senders, each behind a 40 MB/s uplink, all crossing a 100 MB/s
  // WAN. Four flows: WAN share 25 MB/s is the bottleneck. After two cancel,
  // the uplinks (40 < 100/2) become the bottleneck.
  const LinkId wan = net.add_link("wan", 1e8, 5_ms, 1e6);
  std::vector<FlowId> flows;
  std::vector<LinkId> ups;
  for (int i = 0; i < 4; ++i) {
    const std::string s = std::to_string(i);
    const HostId src = net.add_host("s" + s);
    const HostId dst = net.add_host("r" + s);
    ups.push_back(net.add_link("up" + s, 4e7, 1_ms, 1e6));
    net.add_route(src, dst, {ups.back(), wan});
    flows.push_back(net.start_flow(src, dst, 1e12, kUnlimitedRate, nullptr));
  }
  for (FlowId f : flows) EXPECT_DOUBLE_EQ(net.flow_info(f).rate, 2.5e7);
  EXPECT_DOUBLE_EQ(net.link_utilization(wan), 1e8);
  net.cancel_flow(flows[2]);
  net.cancel_flow(flows[3]);
  EXPECT_DOUBLE_EQ(net.flow_info(flows[0]).rate, 4e7);
  EXPECT_DOUBLE_EQ(net.flow_info(flows[1]).rate, 4e7);
  EXPECT_DOUBLE_EQ(net.link_utilization(wan), 8e7);
  EXPECT_DOUBLE_EQ(net.link_utilization(ups[0]), 4e7);
}

TEST_P(MaxMinClosedForm, CapLimitedFlowDonatesItsShare) {
  // One 100 MB/s link, three flows, one capped at 10 MB/s: the capped flow
  // freezes first and the other two split the 90 MB/s residual.
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  const LinkId ab = net.add_link("ab", 1e8, 1_ms, 1e6);
  net.add_route(a, b, {ab});
  const FlowId capped = net.start_flow(a, b, 1e12, 1e7, nullptr);
  const FlowId f1 = net.start_flow(a, b, 1e12, kUnlimitedRate, nullptr);
  const FlowId f2 = net.start_flow(a, b, 1e12, kUnlimitedRate, nullptr);
  EXPECT_DOUBLE_EQ(net.flow_info(capped).rate, 1e7);
  EXPECT_DOUBLE_EQ(net.flow_info(f1).rate, 4.5e7);
  EXPECT_DOUBLE_EQ(net.flow_info(f2).rate, 4.5e7);
  // Raising the cap past the fair level re-levels everyone.
  net.set_rate_cap(capped, kUnlimitedRate);
  const double third = std::max(0.0, 1e8) / 3;
  EXPECT_DOUBLE_EQ(net.flow_info(capped).rate, third);
  EXPECT_DOUBLE_EQ(net.flow_info(f1).rate, third);
}

TEST_P(MaxMinClosedForm, LinklessFlowRunsAtItsCap) {
  // A same-host (loopback) route crosses no links: the flow is constrained
  // only by its cap.
  const HostId a = net.add_host("a");
  net.add_route(a, a, {});
  SimTime done = -1;
  net.start_flow(a, a, 1e6, 1e8, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, 10_ms);  // 1 MB at 100 MB/s
}

TEST_P(MaxMinClosedForm, TransferTimesMatchAllocations) {
  // Integration over time, not just instantaneous rates: short flow done at
  // 1 s (50 MB at 50 MB/s), long flow speeds up to 100 MB/s afterwards.
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  const LinkId ab = net.add_link("ab", 1e8, 1_ms, 1e6);
  net.add_route(a, b, {ab});
  std::vector<SimTime> done(2, -1);
  net.start_flow(a, b, 5e7, kUnlimitedRate, [&] { done[0] = sim.now(); });
  net.start_flow(a, b, 1e8, kUnlimitedRate, [&] { done[1] = sim.now(); });
  sim.run();
  EXPECT_EQ(done[0], 1_s);
  EXPECT_EQ(done[1], 1500_ms);
}

INSTANTIATE_TEST_SUITE_P(BothSolvers, MaxMinClosedForm,
                         ::testing::Values(SolverMode::kIncremental,
                                           SolverMode::kGlobalOracle),
                         [](const auto& param_info) {
                           return param_info.param == SolverMode::kIncremental
                                      ? "incremental"
                                      : "oracle";
                         });

// ---------------------------------------------------------------------------
// Incremental-machinery unit tests (solver stats, component isolation, the
// bipartite index) — these run on the incremental solver only.
// ---------------------------------------------------------------------------

TEST(MaxMinIncremental, UncontendedFlowTakesFastPath) {
  Simulation sim;
  Network net(sim);
  net.set_solver_mode(SolverMode::kIncremental);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  const LinkId ab = net.add_link("ab", 1e8, 1_ms, 1e6);
  net.add_route(a, b, {ab});
  const FlowId f = net.start_flow(a, b, 1e12, 2e7, nullptr);
  const auto& stats = net.solver_stats();
  EXPECT_EQ(stats.solves, 1u);
  EXPECT_EQ(stats.fast_solves, 1u);  // alone on its link
  EXPECT_DOUBLE_EQ(net.flow_info(f).rate, 2e7);
  EXPECT_DOUBLE_EQ(net.flow_info(f).achievable_rate, 1e8);
  // A second flow on the same link forces the general path.
  net.start_flow(a, b, 1e12, kUnlimitedRate, nullptr);
  EXPECT_EQ(stats.solves, 2u);
  EXPECT_EQ(stats.fast_solves, 1u);
  EXPECT_EQ(stats.peak_component_flows, 2u);
}

TEST(MaxMinIncremental, DisjointComponentsDoNotTouchEachOther) {
  Simulation sim;
  Network net(sim);
  net.set_solver_mode(SolverMode::kIncremental);
  // Two independent dumbbells; mutating one must not enlarge the dirty
  // component beyond it or perturb the other's rates.
  std::vector<FlowId> flows;
  for (int g = 0; g < 2; ++g) {
    const std::string s = std::to_string(g);
    const HostId src = net.add_host("s" + s);
    const HostId dst = net.add_host("r" + s);
    const LinkId l = net.add_link("l" + s, 1e8, 1_ms, 1e6);
    net.add_route(src, dst, {l});
    flows.push_back(net.start_flow(src, dst, 1e12, kUnlimitedRate, nullptr));
    flows.push_back(net.start_flow(src, dst, 1e12, kUnlimitedRate, nullptr));
  }
  EXPECT_EQ(net.solver_stats().peak_component_flows, 2u);
  const double other_before = net.flow_info(flows[2]).rate;
  net.set_rate_cap(flows[0], 1e7);
  // Still 2: the re-solve saw only dumbbell 0.
  EXPECT_EQ(net.solver_stats().peak_component_flows, 2u);
  EXPECT_EQ(net.flow_info(flows[2]).rate, other_before);  // bit-identical
  EXPECT_DOUBLE_EQ(net.flow_info(flows[1]).rate, 9e7);
}

TEST(MaxMinIncremental, RouteCrossingALinkTwiceIsRejected) {
  Simulation sim;
  Network net(sim);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  const LinkId ab = net.add_link("ab", 1e8, 1_ms, 1e6);
  EXPECT_THROW(net.add_route(a, b, {ab, ab}), std::invalid_argument);
}

TEST(MaxMinIncremental, SolverModeSwitchRequiresIdleNetwork) {
  Simulation sim;
  Network net(sim);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  const LinkId ab = net.add_link("ab", 1e8, 1_ms, 1e6);
  net.add_route(a, b, {ab});
  net.start_flow(a, b, 1e12, kUnlimitedRate, nullptr);
  EXPECT_DEATH(net.set_solver_mode(SolverMode::kGlobalOracle),
               "no flows are active");
}

TEST(MaxMinIncremental, LinkUtilizationMatchesFlowInfoSum) {
  // Regression: link_utilization() must read the persistent per-link flow
  // list, i.e. agree exactly with summing the flows' own reported rates.
  Simulation sim;
  Network net(sim);
  const LinkId wan = net.add_link("wan", 1e8, 5_ms, 1e6);
  std::vector<FlowId> flows;
  std::vector<LinkId> ups;
  for (int i = 0; i < 5; ++i) {
    const std::string s = std::to_string(i);
    const HostId src = net.add_host("s" + s);
    const HostId dst = net.add_host("r" + s);
    ups.push_back(net.add_link("up" + s, 4e7, 1_ms, 1e6));
    net.add_route(src, dst, {ups.back(), wan});
    const double cap = (i % 2 == 0) ? 1.5e7 : kUnlimitedRate;
    flows.push_back(net.start_flow(src, dst, 1e12, cap, nullptr));
  }
  double sum = 0;
  for (FlowId f : flows) sum += net.flow_info(f).rate;
  EXPECT_EQ(net.link_utilization(wan), sum);
  for (std::size_t i = 0; i < ups.size(); ++i)
    EXPECT_EQ(net.link_utilization(ups[i]), net.flow_info(flows[i]).rate);
  net.cancel_flow(flows[1]);
  sum = 0;
  for (FlowId f : flows)
    if (net.flow_active(f)) sum += net.flow_info(f).rate;
  EXPECT_EQ(net.link_utilization(wan), sum);
}

// ---------------------------------------------------------------------------
// Direct solver-primitive tests (no Network, no Simulation).
// ---------------------------------------------------------------------------

TEST(BipartiteIndex, SwapPopRemoveRepairsBackReferences) {
  maxmin::BipartiteIndex index;
  index.ensure_links(2);
  maxmin::FlowState f0, f1, f2;
  f0.links = {0, 1};
  f1.links = {0};
  f2.links = {0, 1};
  index.add(&f0);
  index.add(&f1);
  index.add(&f2);
  ASSERT_EQ(index.flows_on(0).size(), 3u);
  // Removing the middle entry swap-pops f2 into its slot; f2's back-refs
  // must be repaired or a later remove corrupts the list.
  index.remove(&f1);
  ASSERT_EQ(index.flows_on(0).size(), 2u);
  EXPECT_EQ(index.flows_on(0)[1], &f2);
  index.remove(&f2);
  ASSERT_EQ(index.flows_on(0).size(), 1u);
  EXPECT_EQ(index.flows_on(0)[0], &f0);
  EXPECT_EQ(index.flows_on(1).size(), 1u);
  index.remove(&f0);
  EXPECT_TRUE(index.flows_on(0).empty());
  EXPECT_TRUE(index.flows_on(1).empty());
}

TEST(MaxMinSolver, ComponentSolveMatchesGlobalReference) {
  // Two disjoint components solved one at a time must reproduce the global
  // pass bit-for-bit (the incremental scheme's core claim, in miniature).
  const std::vector<double> capacity = {9e7, 5e7, 1e8};
  const auto build = [](std::vector<maxmin::FlowState>& fs) {
    fs.resize(4);
    fs[0].links = {0, 1};
    fs[1].links = {1};
    fs[2].links = {2};
    fs[3].links = {2};
    fs[2].rate_cap = 2e7;
    for (std::size_t i = 0; i < fs.size(); ++i) fs[i].order = i;
  };
  std::vector<maxmin::FlowState> ref;
  build(ref);
  std::vector<maxmin::FlowState*> by_order;
  for (auto& f : ref) by_order.push_back(&f);
  maxmin::solve_global_reference(by_order, capacity.size(), capacity);

  std::vector<maxmin::FlowState> inc;
  build(inc);
  maxmin::BipartiteIndex index;
  index.ensure_links(capacity.size());
  for (auto& f : inc) index.add(&f);
  maxmin::Solver solver;
  solver.ensure_links(capacity.size());
  solver.collect_component(index, {0}, nullptr);
  EXPECT_EQ(solver.comp_flows().size(), 2u);
  solver.solve_component(capacity);
  solver.collect_component(index, {2}, nullptr);
  EXPECT_EQ(solver.comp_flows().size(), 2u);
  solver.solve_component(capacity);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(inc[i].rate, ref[i].rate) << "flow " << i;
    EXPECT_EQ(inc[i].achievable, ref[i].achievable) << "flow " << i;
  }
}

}  // namespace
}  // namespace gridsim::net
